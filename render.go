package bfskel

import (
	"fmt"
	"io"

	"bfskel/internal/render"
)

// RenderStage selects which pipeline artifact RenderResult draws.
type RenderStage int

// Stages available to RenderResult, mirroring the panels of paper Fig. 1
// and Fig. 3.
const (
	// StageNetwork draws the deployment and its links (Fig. 1a).
	StageNetwork RenderStage = iota + 1
	// StageSites marks the critical skeleton nodes (Fig. 1b).
	StageSites
	// StageSegments marks segment and Voronoi nodes (Fig. 1c).
	StageSegments
	// StageCoarse overlays the coarse skeleton (Fig. 1d).
	StageCoarse
	// StageFinal overlays the refined skeleton (Fig. 1h).
	StageFinal
	// StageCells colors nodes by Voronoi cell (Fig. 3a).
	StageCells
	// StageBoundary marks the boundary by-product (Fig. 3b).
	StageBoundary
)

// cellPalette colors Voronoi cells; cells cycle through it.
var cellPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// RenderNetwork writes an SVG of the deployment field, nodes and links.
func RenderNetwork(net *Network, w io.Writer) error {
	s := newScene(net)
	drawLinks(s, net, "#d9d9d9", 0.5)
	s.Nodes(net.Points, nil, "#555555", 0)
	_, err := s.WriteTo(w)
	return err
}

// RenderResult writes an SVG of one pipeline stage.
func RenderResult(net *Network, res *Result, stage RenderStage, w io.Writer) error {
	s := newScene(net)
	switch stage {
	case StageNetwork:
		drawLinks(s, net, "#d9d9d9", 0.5)
		s.Nodes(net.Points, nil, "#555555", 0)
	case StageSites:
		s.Nodes(net.Points, nil, "#cccccc", 0)
		s.Nodes(net.Points, maskOf(res.Sites, net.N()), "#d62728", 4)
	case StageSegments:
		s.Nodes(net.Points, nil, "#cccccc", 0)
		s.Nodes(net.Points, maskOf(res.SegmentNodes, net.N()), "#1f77b4", 2.5)
		s.Nodes(net.Points, maskOf(res.VoronoiNodes, net.N()), "#9467bd", 4)
		s.Nodes(net.Points, maskOf(res.Sites, net.N()), "#d62728", 4)
	case StageCoarse:
		s.Nodes(net.Points, nil, "#dddddd", 0)
		drawSkeleton(s, net, res.Coarse, "#d62728")
		s.Nodes(net.Points, maskOf(res.Sites, net.N()), "#d62728", 3.5)
	case StageFinal:
		s.Nodes(net.Points, nil, "#dddddd", 0)
		drawSkeleton(s, net, res.Skeleton, "#d62728")
	case StageCells:
		for v := 0; v < net.N(); v++ {
			cell := res.CellOf[v]
			color := "#cccccc"
			if cell >= 0 {
				color = cellPalette[int(cell)%len(cellPalette)]
			}
			s.Nodes(net.Points[v:v+1], nil, color, 0)
		}
		s.Nodes(net.Points, maskOf(res.Sites, net.N()), "#000000", 4)
	case StageBoundary:
		s.Nodes(net.Points, nil, "#dddddd", 0)
		s.Nodes(net.Points, maskOf(res.Boundary, net.N()), "#2ca02c", 2.5)
	default:
		return fmt.Errorf("bfskel: unknown render stage %d", stage)
	}
	_, err := s.WriteTo(w)
	return err
}

func newScene(net *Network) *render.Scene {
	return render.NewScene(net.Spec.Shape.Poly.Bounds(), render.DefaultStyle())
}

func drawLinks(s *render.Scene, net *Network, color string, width float64) {
	var pairs [][2]int32
	for v := 0; v < net.N(); v++ {
		for _, u := range net.Graph.Neighbors(v) {
			if int32(v) < u {
				pairs = append(pairs, [2]int32{int32(v), u})
			}
		}
	}
	s.Edges(net.Points, pairs, color, width)
}

func drawSkeleton(s *render.Scene, net *Network, sk *Skeleton, color string) {
	var pairs [][2]int32
	for _, v := range sk.Nodes() {
		for _, u := range sk.Neighbors(v) {
			if v < u {
				pairs = append(pairs, [2]int32{v, u})
			}
		}
	}
	s.Edges(net.Points, pairs, color, 2.5)
	s.Nodes(net.Points, sk.Mask(), color, 2)
}

func maskOf(ids []int32, n int) []bool {
	mask := make([]bool, n)
	for _, v := range ids {
		mask[v] = true
	}
	return mask
}
