package bfskel

import (
	"io"

	"bfskel/internal/core"
	"bfskel/internal/obs"
	"bfskel/internal/protocol"
	"bfskel/internal/skeleton"
)

// Re-exported observability types. A Tracer emits structured spans and
// events to a pluggable sink; a MetricsRegistry accumulates counters,
// gauges and histograms with JSON-snapshot and Prometheus-text exposition.
// Both are nil-safe throughout: a nil Tracer or MetricsRegistry on any API
// below records nothing and costs (nearly) nothing.
type (
	// Tracer assigns span IDs and fans records out to its sink.
	Tracer = obs.Tracer
	// Span is an in-flight traced operation; child spans and events hang
	// off it.
	Span = obs.Span
	// TraceRecord is one span-start, span-end or event record.
	TraceRecord = obs.Record
	// TraceAttr is one key/value attribute on a record.
	TraceAttr = obs.Attr
	// TraceSink receives the records a Tracer emits.
	TraceSink = obs.Sink
	// JSONLSink streams records as JSON lines to a writer.
	JSONLSink = obs.JSONLSink
	// RingSink keeps the last records in memory (tests, postmortems).
	RingSink = obs.RingSink
	// MetricsRegistry names and stores counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-marshalable registry dump.
	MetricsSnapshot = obs.Snapshot
	// ProtocolOptions configures an observed distributed protocol run.
	ProtocolOptions = protocol.Options
	// SimEngine selects the simnet round engine behind the protocol phases
	// (ProtocolOptions.Engine): the serial reference loop or the
	// allocation-free parallel arena engine. Outputs are bit-identical.
	SimEngine = protocol.Engine
)

// Re-exported trace record kinds (TraceRecord.Kind).
const (
	TraceSpanStart = obs.KindSpanStart
	TraceSpanEnd   = obs.KindSpanEnd
	TraceEvent     = obs.KindEvent
)

// Round-engine selector values (ProtocolOptions.Engine); SimEngineAuto, the
// zero value, picks per phase by graph size.
const (
	SimEngineAuto     = protocol.EngineAuto
	SimEngineSerial   = protocol.EngineSerial
	SimEngineParallel = protocol.EngineParallel
)

// NewTracer builds a tracer emitting to the given sink.
func NewTracer(sink TraceSink) *Tracer { return obs.NewTracer(sink) }

// NewJSONLSink builds a buffered JSONL sink over w; call Flush (or Close,
// when w is also a closer) when the run is done.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewRingSink builds an in-memory sink retaining the last capacity records.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ParseTraceJSONL decodes one line previously written by a JSONLSink.
func ParseTraceJSONL(line []byte) (TraceRecord, error) { return obs.ParseJSONL(line) }

// ObsScope bundles the two observability handles threaded through the
// library: a tracer for structured spans/events and a registry for
// metrics. The zero value is fully inert.
type ObsScope struct {
	Tracer  *Tracer
	Metrics *MetricsRegistry
}

// Instrument attaches the scope to an extraction engine: every subsequent
// Extract emits one span per stage plus guard/election/flood events, and
// accumulates bfskel_* metrics.
func (s ObsScope) Instrument(e *Extractor) {
	e.Tracer = s.Tracer
	e.Metrics = s.Metrics
}

// ExtractorObs returns a staged extraction engine bound to the network's
// graph with the scope's tracer and metrics attached.
func (n *Network) ExtractorObs(sc ObsScope) *Extractor {
	e := n.Extractor()
	sc.Instrument(e)
	return e
}

// RunProtocolPhasesObs is RunProtocolPhases with full observability
// control: tracing ("protocol" and "phase.<name>" spans with per-round
// events), metrics, per-round stats and per-node counters (see
// ProtocolOptions).
func RunProtocolPhasesObs(net *Network, k, l, scope int, alpha int32, opts ProtocolOptions) (*DistributedResult, error) {
	return protocol.RunOpts(net.Graph, k, l, scope, alpha, opts)
}

// ExtractBatchObs is ExtractBatch with the scope's tracer and metrics
// attached and per-item backend routing: each item runs through the
// registered backend it names (empty means "bfskel", bit-identical to the
// core pipeline), emitting its own "extract" span tree. Zero-value item
// params mean the paper defaults (BackendParams semantics); for items on
// non-"bfskel" backends the returned Result carries only the fields the
// backend produces (Skeleton, CellOf, Boundary, Stats).
func ExtractBatchObs(items []BatchItem, sc ObsScope) ([]*Result, error) {
	jobs := make([]skeleton.BatchJob, len(items))
	for i, it := range items {
		jobs[i] = skeleton.BatchJob{
			G:       it.Network.Graph,
			Backend: it.Backend,
			Params:  skeleton.Params{Core: it.Params, Tracer: sc.Tracer, Metrics: sc.Metrics},
		}
	}
	sres, err := skeleton.ExtractBatch(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(sres))
	for i, r := range sres {
		if r.Core != nil {
			out[i] = r.Core
			continue
		}
		out[i] = &core.Result{
			Params:   jobs[i].Params.EffectiveCore(),
			Skeleton: r.Skeleton,
			CellOf:   r.CellOf,
			Boundary: r.Boundary,
			Stats:    r.Stats,
		}
	}
	return out, nil
}
