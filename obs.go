package bfskel

import (
	"io"

	"bfskel/internal/core"
	"bfskel/internal/obs"
	"bfskel/internal/obshttp"
	"bfskel/internal/protocol"
	"bfskel/internal/skeleton"
)

// Re-exported observability types. A Tracer emits structured spans and
// events to a pluggable sink; a MetricsRegistry accumulates counters,
// gauges and histograms with JSON-snapshot and Prometheus-text exposition.
// Both are nil-safe throughout: a nil Tracer or MetricsRegistry on any API
// below records nothing and costs (nearly) nothing.
type (
	// Tracer assigns span IDs and fans records out to its sink.
	Tracer = obs.Tracer
	// Span is an in-flight traced operation; child spans and events hang
	// off it.
	Span = obs.Span
	// TraceRecord is one span-start, span-end or event record.
	TraceRecord = obs.Record
	// TraceAttr is one key/value attribute on a record.
	TraceAttr = obs.Attr
	// TraceSink receives the records a Tracer emits.
	TraceSink = obs.Sink
	// JSONLSink streams records as JSON lines to a writer.
	JSONLSink = obs.JSONLSink
	// RingSink keeps the last records in memory (tests, postmortems).
	RingSink = obs.RingSink
	// MetricsRegistry names and stores counters, gauges and histograms.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-marshalable registry dump.
	MetricsSnapshot = obs.Snapshot
	// FlightRecorder is a bounded ring of completed run records — the
	// recent-past introspection behind the /runs and /profile endpoints.
	FlightRecorder = obs.Recorder
	// RunRecord is one completed run retained by the flight recorder: run
	// ID, backend, params digest, span profile, metrics snapshot, wall
	// time.
	RunRecord = obs.RunRecord
	// FlightRecorderSink feeds a FlightRecorder from a tracer's records.
	FlightRecorderSink = obs.RecorderSink
	// TraceStream fans live trace records out to subscribers without
	// back-pressuring the traced hot path (the /trace substrate).
	TraceStream = obs.StreamSink
	// TraceSubscription is one live tap on a TraceStream.
	TraceSubscription = obs.Subscription
	// SpanProfile is a per-span-name count/total/self aggregation tree,
	// exportable as folded stacks for flamegraph tools.
	SpanProfile = obs.Profile
	// SpanProfileNode is one span call path of a SpanProfile.
	SpanProfileNode = obs.ProfileNode
	// ObsServer is a running live-observability HTTP endpoint (metrics,
	// runs, trace stream, span profile, pprof).
	ObsServer = obshttp.Server
	// ProtocolOptions configures an observed distributed protocol run.
	ProtocolOptions = protocol.Options
	// SimEngine selects the simnet round engine behind the protocol phases
	// (ProtocolOptions.Engine): the serial reference loop or the
	// allocation-free parallel arena engine. Outputs are bit-identical.
	SimEngine = protocol.Engine
)

// Re-exported trace record kinds (TraceRecord.Kind).
const (
	TraceSpanStart = obs.KindSpanStart
	TraceSpanEnd   = obs.KindSpanEnd
	TraceEvent     = obs.KindEvent
)

// Round-engine selector values (ProtocolOptions.Engine); SimEngineAuto, the
// zero value, picks per phase by graph size.
const (
	SimEngineAuto     = protocol.EngineAuto
	SimEngineSerial   = protocol.EngineSerial
	SimEngineParallel = protocol.EngineParallel
)

// NewTracer builds a tracer emitting to the given sink.
func NewTracer(sink TraceSink) *Tracer { return obs.NewTracer(sink) }

// NewJSONLSink builds a buffered JSONL sink over w; call Flush (or Close,
// when w is also a closer) when the run is done.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewRingSink builds an in-memory sink retaining the last capacity records.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewFlightRecorder builds a flight recorder retaining up to capacity
// completed runs (<= 0 means the default capacity).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewRecorder(capacity) }

// NewFlightRecorderSink builds a sink that groups a tracer's records into
// runs and records each completed run into rec; when metrics is non-nil
// every record carries a registry snapshot.
func NewFlightRecorderSink(rec *FlightRecorder, metrics *MetricsRegistry) *FlightRecorderSink {
	return obs.NewRecorderSink(rec, metrics)
}

// NewTraceStream builds a live fan-out sink with no subscribers.
func NewTraceStream() *TraceStream { return obs.NewStreamSink() }

// BuildSpanProfile aggregates a record slice (a parsed trace file, a ring
// sink's contents) into a span profile.
func BuildSpanProfile(recs []TraceRecord) *SpanProfile { return obs.BuildProfile(recs) }

// ParseTraceJSONL decodes one line previously written by a JSONLSink.
func ParseTraceJSONL(line []byte) (TraceRecord, error) { return obs.ParseJSONL(line) }

// EncodeTraceJSONL renders one record in the JSONL trace encoding (no
// trailing newline) — the inverse of ParseTraceJSONL.
func EncodeTraceJSONL(rec TraceRecord) ([]byte, error) { return obs.EncodeJSONL(rec) }

// ObsScope bundles the observability handles threaded through the library:
// a tracer for structured spans/events and a registry for metrics, plus —
// when built by NewLiveObsScope — the flight recorder and live trace
// stream the HTTP plane serves. The zero value is fully inert.
type ObsScope struct {
	Tracer  *Tracer
	Metrics *MetricsRegistry
	// Recorder retains recent completed runs for /runs and /profile; nil
	// unless wired (NewLiveObsScope wires it as a tracer sink).
	Recorder *FlightRecorder
	// Stream is the live /trace fan-out; nil unless wired.
	Stream *TraceStream
}

// NewLiveObsScope builds a fully live scope: a metrics registry, a flight
// recorder (runCapacity completed runs, <= 0 = default), a live trace
// stream, and a tracer fanning out to the recorder, the stream and any
// extra sinks (e.g. a JSONL file sink). Serve exposes the scope over HTTP.
func NewLiveObsScope(runCapacity int, extra ...TraceSink) ObsScope {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(runCapacity)
	stream := obs.NewStreamSink()
	sinks := obs.MultiSink{obs.NewRecorderSink(rec, reg), stream}
	for _, s := range extra {
		if s != nil {
			sinks = append(sinks, s)
		}
	}
	return ObsScope{
		Tracer:   obs.NewTracer(sinks),
		Metrics:  reg,
		Recorder: rec,
		Stream:   stream,
	}
}

// Serve exposes the scope's live observability plane over HTTP on addr
// (":0" picks a free port; query the returned server's Addr): Prometheus
// /metrics, flight-recorder /runs and /runs/{id}, the merged span /profile
// (JSON or folded flamegraph stacks), the live /trace stream, /healthz and
// net/http/pprof. Endpoints whose backing handle is nil serve empty
// responses, so a partially wired scope is fine. Close the server when
// done.
func (s ObsScope) Serve(addr string) (*ObsServer, error) {
	return obshttp.Serve(addr, obshttp.Options{
		Metrics:  s.Metrics,
		Recorder: s.Recorder,
		Stream:   s.Stream,
	})
}

// Instrument attaches the scope to an extraction engine: every subsequent
// Extract emits one span per stage plus guard/election/flood events, and
// accumulates bfskel_* metrics.
func (s ObsScope) Instrument(e *Extractor) {
	e.Tracer = s.Tracer
	e.Metrics = s.Metrics
}

// ExtractorObs returns a staged extraction engine bound to the network's
// graph with the scope's tracer and metrics attached.
func (n *Network) ExtractorObs(sc ObsScope) *Extractor {
	e := n.Extractor()
	sc.Instrument(e)
	return e
}

// RunProtocolPhasesObs is RunProtocolPhases with full observability
// control: tracing ("protocol" and "phase.<name>" spans with per-round
// events), metrics, per-round stats and per-node counters (see
// ProtocolOptions).
func RunProtocolPhasesObs(net *Network, k, l, scope int, alpha int32, opts ProtocolOptions) (*DistributedResult, error) {
	return protocol.RunOpts(net.Graph, k, l, scope, alpha, opts)
}

// ExtractBatchObs is ExtractBatch with the scope's tracer and metrics
// attached and per-item backend routing: each item runs through the
// registered backend it names (empty means "bfskel", bit-identical to the
// core pipeline), emitting its own "extract" span tree. Zero-value item
// params mean the paper defaults (BackendParams semantics); for items on
// non-"bfskel" backends the returned Result carries only the fields the
// backend produces (Skeleton, CellOf, Boundary, Stats).
func ExtractBatchObs(items []BatchItem, sc ObsScope) ([]*Result, error) {
	jobs := make([]skeleton.BatchJob, len(items))
	for i, it := range items {
		jobs[i] = skeleton.BatchJob{
			G:       it.Network.Graph,
			Backend: it.Backend,
			Params:  skeleton.Params{Core: it.Params, Tracer: sc.Tracer, Metrics: sc.Metrics},
		}
	}
	sres, err := skeleton.ExtractBatch(jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(sres))
	for i, r := range sres {
		if r.Core != nil {
			out[i] = r.Core
			continue
		}
		out[i] = &core.Result{
			Params:   jobs[i].Params.EffectiveCore(),
			Skeleton: r.Skeleton,
			CellOf:   r.CellOf,
			Boundary: r.Boundary,
			Stats:    r.Stats,
		}
	}
	return out, nil
}
