package bfskel

import (
	"bfskel/internal/boundary"
	"bfskel/internal/casex"
	"bfskel/internal/core"
	"bfskel/internal/geom"
	"bfskel/internal/mapax"
	"bfskel/internal/metrics"
	"bfskel/internal/protocol"
	"bfskel/internal/route"
	"bfskel/internal/segment"
)

// Re-exported analysis types.
type (
	// SkeletonReport scores an extracted skeleton against ground truth.
	SkeletonReport = metrics.SkeletonReport
	// SegmentationReport scores the Voronoi-cell by-product.
	SegmentationReport = metrics.SegmentationReport
	// MedialPoint is a ground-truth medial axis sample.
	MedialPoint = geom.MedialPoint
	// BoundaryResult is a detected boundary (nodes + cycles).
	BoundaryResult = boundary.Result
	// MAPResult is the MAP baseline's output.
	MAPResult = mapax.Result
	// CASEResult is the CASE baseline's output.
	CASEResult = casex.Result
	// DistributedResult carries the distributed protocol run's outputs and
	// message/round statistics.
	DistributedResult = protocol.Result
	// Router computes node paths (see NewSkeletonRouter, NewShortestPathRouter).
	Router = route.Router
	// LoadReport summarises a routing workload.
	LoadReport = route.LoadReport
	// Segmentation is a shape-segmentation result (labels + sinks).
	Segmentation = segment.Result
)

// GroundTruthMedialAxis approximates the continuous medial axis of the
// shape for use as evaluation ground truth.
func GroundTruthMedialAxis(shape Shape) []MedialPoint {
	return geom.MedialAxis(shape.Poly, geom.MedialAxisOptions{})
}

// Evaluate scores an extraction result against the network's shape.
// coverageRadius defaults to 3 radio ranges when zero.
func Evaluate(net *Network, res *Result, medial []MedialPoint, coverageRadius float64) SkeletonReport {
	if coverageRadius <= 0 {
		coverageRadius = 3 * net.Radio.MaxRange()
	}
	return metrics.EvaluateSkeleton(net.Spec.Shape.Poly, net.Points, res.Skeleton, medial, coverageRadius)
}

// EvaluateSegmentation scores the Voronoi-cell by-product.
func EvaluateSegmentation(res *Result) SegmentationReport {
	return metrics.EvaluateSegmentation(res.CellOf)
}

// SkeletonStability measures the symmetric mean distance between two
// skeletons of the same field (paper Figs. 5-7 stability claims).
func SkeletonStability(a *Network, ra *Result, b *Network, rb *Result) float64 {
	return metrics.Stability(a.Points, ra.Skeleton, b.Points, rb.Skeleton)
}

// BoundaryPrecisionRecall scores boundary nodes against the geometric truth
// band (band defaults to 1.5 radio ranges when zero).
func BoundaryPrecisionRecall(net *Network, nodes []int32, band float64) (precision, recall float64) {
	if band <= 0 {
		band = 1.5 * net.Radio.MaxRange()
	}
	return metrics.BoundaryPR(net.Spec.Shape.Poly, net.Points, nodes, band)
}

// DetectBoundary runs the neighborhood-size boundary detector (the
// substrate MAP and CASE assume as given input).
func DetectBoundary(net *Network) *BoundaryResult {
	return boundary.Detect(net.Graph, boundary.Options{})
}

// RunMAP extracts a medial axis with the MAP baseline from a detected
// boundary. It is a thin wrapper over the backend registry.
//
// Deprecated: call ExtractBackend(net, "map", BackendParams{Boundary:
// StaticBoundary(b)}) and use the canonical BackendResult; the native
// *MAPResult stays available as BackendResult.Native.
func RunMAP(net *Network, b *BoundaryResult) *MAPResult {
	res, _, err := ExtractBackend(net, "map", BackendParams{Boundary: StaticBoundary(b)})
	if err != nil {
		return nil
	}
	return res.Native.(*MAPResult)
}

// RunCASE extracts a skeleton with the CASE baseline from a detected
// boundary. It is a thin wrapper over the backend registry.
//
// Deprecated: call ExtractBackend(net, "case", BackendParams{Boundary:
// StaticBoundary(b)}) and use the canonical BackendResult; the native
// *CASEResult stays available as BackendResult.Native.
func RunCASE(net *Network, b *BoundaryResult) *CASEResult {
	res, _, err := ExtractBackend(net, "case", BackendParams{Boundary: StaticBoundary(b)})
	if err != nil {
		return nil
	}
	return res.Native.(*CASEResult)
}

// RunProtocolPhases runs phases 1-2 as true message-passing node programs
// on the simulated network and reports transmissions and rounds; to match a
// centralized run, pass its effective radii (Result.EffectiveK /
// Result.EffectiveScope).
func RunProtocolPhases(net *Network, k, l, scope int, alpha int32) (*DistributedResult, error) {
	return protocol.Run(net.Graph, k, l, scope, alpha)
}

// ExtractDistributed performs the complete extraction with phases 1-2
// executed as distributed node programs (counting every transmission and
// round) and phases 3-4 computed from their outputs. Unlike Extract, no
// saturation guard applies: the protocols run exactly at the configured
// radii, as real sensor firmware would.
func ExtractDistributed(net *Network, p Params) (*Result, *DistributedResult, error) {
	dres, err := protocol.Run(net.Graph, p.K, p.L, p.Scope(), p.Alpha)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.CompleteFromVoronoi(net.Graph, p, dres.KHop, dres.Index, dres.Sites, dres.Records)
	if err != nil {
		return nil, dres, err
	}
	return res, dres, nil
}

// NewSkeletonRouter builds the skeleton-aided naming/routing scheme.
func NewSkeletonRouter(net *Network, skel *Skeleton) (Router, error) {
	return route.NewSkeleton(net.Graph, skel)
}

// NewShortestPathRouter builds the shortest-path baseline router.
func NewShortestPathRouter(net *Network) Router {
	return route.NewShortestPath(net.Graph)
}

// MeasureLoad routes random pairs and reports stretch and per-node load.
func MeasureLoad(net *Network, r Router, pairs int, seed int64, isBoundary []bool) (LoadReport, error) {
	return route.MeasureLoad(net.Graph, r, pairs, seed, isBoundary)
}

// SegmentByCells runs the skeleton-based shape segmentation: Voronoi cells
// whose sites lie within mergeRadius hops along the skeleton merge into one
// segment (the application sketched in the paper's introduction).
func SegmentByCells(res *Result, mergeRadius int) *Segmentation {
	return segment.MergeCells(res, mergeRadius)
}

// SegmentByFlow runs the distance-transform segmentation (Zhu et al.):
// nodes flow uphill in boundary distance to sinks; sinks within mergeRadius
// hops merge. boundaryNodes is typically Result.Boundary (the by-product).
func SegmentByFlow(net *Network, boundaryNodes []int32, mergeRadius int) *Segmentation {
	return segment.FlowToSinks(net.Graph, boundaryNodes, mergeRadius)
}

// PruneLeafBranches is re-exported for post-processing custom skeletons.
func PruneLeafBranches(skel *Skeleton, minLen int) {
	core.PruneLeafBranches(skel, minLen)
}
