package bfskel

import (
	"fmt"
	"runtime"
	"time"

	"bfskel/internal/geom"
	"bfskel/internal/metrics"
	"bfskel/internal/skeleton"

	// Every skeleton backend registers itself on import; pulling them in
	// here is what makes Backends() list the full set.
	_ "bfskel/internal/casex"
	_ "bfskel/internal/localsep"
	_ "bfskel/internal/mapax"
)

// Re-exported backend-registry types. A backend is one skeleton-extraction
// algorithm (the paper's pipeline, the MAP/CASE baselines, local
// separators) behind a single seam: same graph in, same canonical result
// and span shape out.
type (
	// SkeletonBackend is one algorithm behind the registry seam.
	SkeletonBackend = skeleton.Backend
	// BackendCapabilities declares a backend's substrate needs and
	// by-products.
	BackendCapabilities = skeleton.Capabilities
	// BackendParams is the cross-backend configuration (zero value: paper
	// defaults, boundary detection on demand, no observability).
	BackendParams = skeleton.Params
	// BackendResult is the canonical cross-backend extraction result.
	BackendResult = skeleton.Result
	// BoundaryProvider resolves the boundary substrate for backends that
	// need one (see SharedBoundaryDetector, StaticBoundary).
	BoundaryProvider = skeleton.BoundaryProvider
	// BoundaryDetector is a memoizing connectivity-based provider: share
	// one across backends to compute the substrate once per graph.
	BoundaryDetector = skeleton.Detector
	// BackendScore is one (scenario, backend) cell of the scorecard.
	BackendScore = skeleton.Score
	// Scorecard is the machine-readable cross-backend comparison.
	Scorecard = skeleton.Scorecard
)

// Backends lists the registered skeleton backends in deterministic order.
func Backends() []string { return skeleton.List() }

// BackendByName looks up a registered backend.
func BackendByName(name string) (SkeletonBackend, error) { return skeleton.Get(name) }

// StaticBoundary wraps a precomputed boundary as a provider (noise
// experiments, stored substrates).
func StaticBoundary(b *BoundaryResult) BoundaryProvider { return skeleton.Static(b) }

// ExtractBackend runs the named backend over the network. The zero
// BackendParams gives paper-default parameters with boundary detection on
// demand; see BackendParams for substrate and observability control.
func ExtractBackend(net *Network, name string, p BackendParams) (*BackendResult, *Stats, error) {
	b, err := skeleton.Get(name)
	if err != nil {
		return nil, nil, err
	}
	return b.Extract(net.Graph, p)
}

// ScorecardScenario is one deployment of the scorecard matrix.
type ScorecardScenario struct {
	// Name labels the scenario in the scorecard (typically the shape name).
	Name string
	// Spec is the network to build.
	Spec NetworkSpec
}

// RunScorecard runs every named backend over every scenario through one
// quality harness and returns the filled scorecard: per-backend cost (wall
// time, heap allocation) plus the shared quality metrics — structure and
// homotopy against the field's holes, clearance and distance against the
// geometric medial axis, and distance against the bfskel reference
// skeleton of the very same network. Backends that need a boundary share
// one memoizing detector per scenario, so the substrate is computed once.
// A failing backend records Score.Err and the matrix continues; only
// scenario construction errors abort.
func RunScorecard(scenarios []ScorecardScenario, backendNames []string, sc ObsScope) (*Scorecard, error) {
	card := &Scorecard{Backends: backendNames}
	for _, s := range scenarios {
		card.Scenarios = append(card.Scenarios, s.Name)
	}
	if len(scenarios) > 0 {
		card.Seed = scenarios[0].Spec.Seed
	}
	for _, scen := range scenarios {
		net, err := BuildNetwork(scen.Spec)
		if err != nil {
			return nil, fmt.Errorf("scorecard scenario %q: %w", scen.Name, err)
		}
		medial := geom.MedialAxis(net.Spec.Shape.Poly, geom.MedialAxisOptions{})
		covR := 3 * net.Radio.MaxRange()

		// One memoized boundary per scenario, shared across backends; one
		// bfskel reference skeleton every backend is scored against.
		p := BackendParams{Boundary: &BoundaryDetector{}, Tracer: sc.Tracer, Metrics: sc.Metrics}
		ref, _, err := ExtractBackend(net, "bfskel", p)
		if err != nil {
			return nil, fmt.Errorf("scorecard scenario %q: bfskel reference: %w", scen.Name, err)
		}

		for _, name := range backendNames {
			score := BackendScore{Backend: name, Scenario: scen.Name, N: net.N(), AvgDeg: net.AvgDegree()}
			// Best of three measured runs: a single-shot wall reading on a
			// busy box swings 2x, which makes scorecard deltas flaky.
			var res *BackendResult
			var stats *Stats
			var err error
			for rep := 0; rep < 3; rep++ {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				allocs, bytes := ms.Mallocs, ms.TotalAlloc
				start := time.Now() //lint:allow determinism Score.MsPerOp is wall-clock timing, not part of the result
				r, st, e := ExtractBackend(net, name, p)
				wall := float64(time.Since(start)) / float64(time.Millisecond)
				runtime.ReadMemStats(&ms)
				if e != nil {
					err = e
					break
				}
				if rep == 0 || wall < score.MsPerOp {
					score.MsPerOp = wall
					score.AllocsPerOp, score.BytesPerOp = ms.Mallocs-allocs, ms.TotalAlloc-bytes
					res, stats = r, st
				}
			}
			if err != nil {
				score.Err = err.Error()
				card.Scores = append(card.Scores, score)
				continue
			}
			score.StageMs = make(map[string]float64, len(stats.Phases))
			for _, ph := range stats.Phases {
				score.StageMs[ph.Name] += float64(ph.Duration) / float64(time.Millisecond)
			}
			rep := metrics.EvaluateSkeleton(net.Spec.Shape.Poly, net.Points, res.Skeleton, medial, covR)
			score.Nodes, score.Edges, score.Components = rep.Nodes, rep.Edges, rep.Components
			score.CycleRank, score.Holes, score.HomotopyOK = rep.CycleRank, rep.Holes, rep.HomotopyOK
			if rep.NetworkClearance > 0 {
				score.ClearanceRatio = rep.MeanClearance / rep.NetworkClearance
			}
			score.MedialCoverage = rep.MedialCoverage
			score.MeanDistToMedial, score.HausdorffToMedial = rep.MeanDistToMedial, rep.HausdorffToMedial
			score.MeanDistToRef, score.HausdorffToRef = metrics.SkeletonDistance(net.Points, res.Skeleton, ref.Skeleton)
			card.Scores = append(card.Scores, score)
		}
	}
	return card, nil
}
