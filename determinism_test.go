package bfskel

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
)

// fingerprint flattens every result artifact that defines the extraction
// outcome — sites, cell assignment, distances, coarse edges, loops, final
// skeleton adjacency, boundary — into one comparable string. Stats is
// deliberately excluded: timings differ run to run.
func fingerprint(res *Result) string {
	var sb []byte
	add := func(format string, args ...any) {
		sb = append(sb, fmt.Sprintf(format, args...)...)
	}
	add("k=%d scope=%d\n", res.EffectiveK, res.EffectiveScope)
	add("sites=%v\n", res.Sites)
	add("cellOf=%v\n", res.CellOf)
	add("dist=%v\n", res.DistToSite)
	for _, e := range res.Edges {
		add("edge %d-%d conn=%d ends=%v segs=%d path=%v\n",
			e.Pair.A, e.Pair.B, e.Connector, e.EndNodes, e.SegmentCount, e.Path)
	}
	for _, l := range res.Loops {
		add("loop kind=%v sites=%v hub=%d len=%d\n", l.Kind, l.Sites, l.Hub, l.EndLoopLen)
	}
	for _, v := range res.Skeleton.Nodes() {
		nbrs := append([]int32(nil), res.Skeleton.Neighbors(v)...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		add("skel %d: %v\n", v, nbrs)
	}
	add("boundary=%v\n", res.Boundary)
	return string(sb)
}

// TestExtractDeterministicUnderParallelism pins the determinism contract:
// the chunked worker pools must produce byte-identical results whether the
// sweeps run on one core or many.
func TestExtractDeterministicUnderParallelism(t *testing.T) {
	for _, shape := range []string{"window", "onehole"} {
		t.Run(shape, func(t *testing.T) {
			net := testNetwork(t, shape, 800, 7, 3)
			p := DefaultParams()

			prev := runtime.GOMAXPROCS(1)
			serial, errSerial := net.Extract(p)
			runtime.GOMAXPROCS(prev)
			if errSerial != nil {
				t.Fatalf("serial extract: %v", errSerial)
			}

			parallel, err := net.Extract(p)
			if err != nil {
				t.Fatalf("parallel extract: %v", err)
			}
			if got, want := fingerprint(parallel), fingerprint(serial); got != want {
				t.Errorf("GOMAXPROCS=1 and GOMAXPROCS=%d results differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
					prev, want, got)
			}
		})
	}
}

// TestExtractorReuseMatchesFresh pins the engine reuse contract: a pooled
// Extractor run repeatedly over varying parameters must match what fresh
// one-shot extractions produce, proving no scratch state leaks into results.
func TestExtractorReuseMatchesFresh(t *testing.T) {
	net := testNetwork(t, "window", 800, 7, 3)
	x := net.Extractor()

	var params []Params
	for _, k := range []int{3, 4, 5} {
		p := DefaultParams()
		p.K, p.L = k, k
		params = append(params, p)
	}
	// Repeat the first parameter set so a same-parameter rerun over warm
	// pools is covered too.
	params = append(params, params[0])

	for i, p := range params {
		reused, err := x.Extract(p)
		if err != nil {
			t.Fatalf("run %d (K=%d) reused: %v", i, p.K, err)
		}
		fresh, err := net.Extract(p)
		if err != nil {
			t.Fatalf("run %d (K=%d) fresh: %v", i, p.K, err)
		}
		if got, want := fingerprint(reused), fingerprint(fresh); got != want {
			t.Errorf("run %d (K=%d): reused engine result differs from fresh extraction", i, p.K)
		}
	}
}

// TestExtractBatchMatchesIndividual pins ExtractBatch: one shared engine
// over mixed networks and parameter sets must reproduce the individual
// extractions element for element.
func TestExtractBatchMatchesIndividual(t *testing.T) {
	window := testNetwork(t, "window", 800, 7, 3)
	onehole := testNetwork(t, "onehole", 800, 7, 3)

	p4 := DefaultParams()
	p3 := DefaultParams()
	p3.K, p3.L = 3, 3
	items := []BatchItem{
		{Network: window, Params: p4},
		{Network: window, Params: p3},
		{Network: onehole, Params: p4},
		{Network: window, Params: p4}, // rebind back to a previous graph
	}

	batch, err := ExtractBatch(items)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(batch) != len(items) {
		t.Fatalf("batch returned %d results for %d items", len(batch), len(items))
	}
	for i, it := range items {
		single, err := it.Network.Extract(it.Params)
		if err != nil {
			t.Fatalf("item %d individual extract: %v", i, err)
		}
		if got, want := fingerprint(batch[i]), fingerprint(single); got != want {
			t.Errorf("item %d: batch result differs from individual extraction", i)
		}
	}
}
