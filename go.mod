module bfskel

go 1.22
