package bfskel

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON encodings below make networks and extraction results durable
// artifacts: a network can be saved and re-loaded for exact reproduction,
// and a result can be consumed by external tooling (plotters, GIS, other
// languages) without re-running the pipeline.

// networkJSON is the wire form of a Network.
type networkJSON struct {
	Shape  string       `json:"shape"`
	Radio  radioJSON    `json:"radio"`
	Points [][2]float64 `json:"points"`
	Edges  [][2]int32   `json:"edges"`
}

// radioJSON is the wire form of a radio model.
type radioJSON struct {
	Kind    string  `json:"kind"`
	R       float64 `json:"r"`
	Alpha   float64 `json:"alpha,omitempty"`
	P       float64 `json:"p,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
}

// SaveNetwork writes the network (positions, links and radio model) as
// JSON; LoadNetwork restores it bit-exactly, so experiments can be pinned
// to a stored artifact instead of a (seed, version) pair.
func SaveNetwork(net *Network, w io.Writer) error {
	out := networkJSON{
		Shape:  net.Spec.Shape.Name,
		Points: make([][2]float64, net.N()),
	}
	switch m := net.Radio.(type) {
	case UDG:
		out.Radio = radioJSON{Kind: "udg", R: m.R}
	case QUDG:
		out.Radio = radioJSON{Kind: "qudg", R: m.R, Alpha: m.Alpha, P: m.P}
	case LogNormal:
		out.Radio = radioJSON{Kind: "lognormal", R: m.R, Epsilon: m.Epsilon}
	default:
		return fmt.Errorf("bfskel: cannot serialise radio model %T", net.Radio)
	}
	for i, p := range net.Points {
		out.Points[i] = [2]float64{p.X, p.Y}
	}
	for v := 0; v < net.N(); v++ {
		for _, u := range net.Graph.Neighbors(v) {
			if int32(v) < u {
				out.Edges = append(out.Edges, [2]int32{int32(v), u})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadNetwork restores a network saved by SaveNetwork.
func LoadNetwork(r io.Reader) (*Network, error) {
	var in networkJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("bfskel: decode network: %w", err)
	}
	shape, err := ShapeByName(in.Shape)
	if err != nil {
		return nil, err
	}
	var model RadioModel
	switch in.Radio.Kind {
	case "udg":
		model = UDG{R: in.Radio.R}
	case "qudg":
		model = QUDG{R: in.Radio.R, Alpha: in.Radio.Alpha, P: in.Radio.P}
	case "lognormal":
		model = LogNormal{R: in.Radio.R, Epsilon: in.Radio.Epsilon}
	default:
		return nil, fmt.Errorf("bfskel: unknown radio kind %q", in.Radio.Kind)
	}
	pts := make([]Point, len(in.Points))
	for i, xy := range in.Points {
		pts[i] = Point{X: xy[0], Y: xy[1]}
	}
	g := newGraphFromEdges(len(pts), in.Edges)
	if g == nil {
		return nil, fmt.Errorf("bfskel: network has an edge referencing a node outside 0..%d", len(pts)-1)
	}
	return &Network{
		Spec:   NetworkSpec{Shape: shape, N: len(pts), Radio: model, KeepWholeGraph: true},
		Points: pts,
		Graph:  g,
		Radio:  model,
	}, nil
}

// resultJSON is the wire form of an extraction result's consumable parts.
type resultJSON struct {
	Params        Params       `json:"params"`
	Sites         []int32      `json:"sites"`
	SkeletonNodes []int32      `json:"skeletonNodes"`
	SkeletonEdges [][2]int32   `json:"skeletonEdges"`
	CycleRank     int          `json:"cycleRank"`
	Components    int          `json:"components"`
	CellOf        []int32      `json:"cellOf"`
	Boundary      []int32      `json:"boundary"`
	Loops         []loopJSON   `json:"loops"`
	Positions     [][2]float64 `json:"positions,omitempty"`
}

// loopJSON is the wire form of a classified loop.
type loopJSON struct {
	Kind  string  `json:"kind"`
	Sites []int32 `json:"sites"`
}

// WriteResultJSON exports the consumable artifacts of an extraction —
// skeleton structure, cells, boundary, loop classification — as JSON. When
// net is non-nil, node positions are included so external tools can draw
// the result.
func WriteResultJSON(net *Network, res *Result, w io.Writer) error {
	out := resultJSON{
		Params:        res.Params,
		Sites:         res.Sites,
		SkeletonNodes: res.Skeleton.Nodes(),
		CycleRank:     res.Skeleton.CycleRank(),
		Components:    res.Skeleton.Components(),
		CellOf:        res.CellOf,
		Boundary:      res.Boundary,
	}
	for _, v := range out.SkeletonNodes {
		for _, u := range res.Skeleton.Neighbors(v) {
			if v < u {
				out.SkeletonEdges = append(out.SkeletonEdges, [2]int32{v, u})
			}
		}
	}
	for _, l := range res.Loops {
		out.Loops = append(out.Loops, loopJSON{Kind: l.Kind.String(), Sites: l.Sites})
	}
	if net != nil {
		out.Positions = make([][2]float64, net.N())
		for i, p := range net.Points {
			out.Positions[i] = [2]float64{p.X, p.Y}
		}
	}
	return json.NewEncoder(w).Encode(out)
}

// newGraphFromEdges builds a graph from an explicit edge list; nil when an
// endpoint is out of range.
func newGraphFromEdges(n int, edges [][2]int32) *Graph {
	g := newGraph(n)
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= n || int(e[1]) >= n {
			return nil
		}
		g.AddEdge(int(e[0]), int(e[1]))
	}
	g.SortAdjacency()
	return g
}
