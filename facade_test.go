package bfskel

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func testNetwork(t testing.TB, shape string, n int, deg float64, seed int64) *Network {
	t.Helper()
	net, err := BuildNetwork(NetworkSpec{
		Shape: MustShape(shape), N: n, TargetDeg: deg, Seed: seed, Layout: LayoutGrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildNetworkErrors(t *testing.T) {
	if _, err := BuildNetwork(NetworkSpec{N: 10}); err != ErrNoShape {
		t.Errorf("missing shape err = %v", err)
	}
	if _, err := BuildNetwork(NetworkSpec{Shape: MustShape("star"), N: 0}); err == nil {
		t.Error("zero N accepted")
	}
}

func TestBuildNetworkCalibration(t *testing.T) {
	for _, deg := range []float64{6, 12, 20} {
		net := testNetwork(t, "window", 2000, deg, 1)
		if got := net.AvgDegree(); math.Abs(got-deg)/deg > 0.05 {
			t.Errorf("target %v: realised degree %.2f", deg, got)
		}
	}
}

func TestBuildNetworkLayouts(t *testing.T) {
	grid := testNetwork(t, "star", 1000, 7, 1)
	uni, err := BuildNetwork(NetworkSpec{
		Shape: MustShape("star"), N: 1000, TargetDeg: 7, Seed: 1, Layout: LayoutUniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if grid.N() == 0 || uni.N() == 0 {
		t.Fatal("empty networks")
	}
	// Grid layouts retain nearly every node at this degree.
	if float64(grid.N()) < 0.97*1000 {
		t.Errorf("grid kept %d of 1000", grid.N())
	}
	for _, p := range grid.Points {
		if !grid.Spec.Shape.Poly.Contains(p) {
			t.Fatalf("node outside the field: %v", p)
		}
	}
}

func TestBuildNetworkKeepWhole(t *testing.T) {
	whole, err := BuildNetwork(NetworkSpec{
		Shape: MustShape("window"), N: 2000, TargetDeg: 5, Seed: 1, KeepWholeGraph: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if whole.N() != 2000 {
		t.Errorf("KeepWholeGraph dropped nodes: %d", whole.N())
	}
}

func TestBuildNetworkExplicitRadio(t *testing.T) {
	net, err := BuildNetwork(NetworkSpec{
		Shape: MustShape("star"), N: 800, Seed: 1, Layout: LayoutGrid,
		Radio: UDG{R: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	udg, ok := net.Radio.(UDG)
	if !ok || udg.R != 4 {
		t.Errorf("explicit radio was modified: %v", net.Radio)
	}
	// With TargetDeg set, the explicit model is calibrated.
	cal, err := BuildNetwork(NetworkSpec{
		Shape: MustShape("star"), N: 800, Seed: 1, Layout: LayoutGrid,
		Radio: QUDG{R: 2, Alpha: 0.4, P: 0.3}, TargetDeg: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cal.AvgDegree(); math.Abs(got-8) > 0.8 {
		t.Errorf("calibrated QUDG degree = %.2f, want ~8", got)
	}
}

func TestRadioRangeForDegree(t *testing.T) {
	if got := RadioRangeForDegree(0, 10, 5); got != 0 {
		t.Errorf("zero area = %v", got)
	}
	r := RadioRangeForDegree(10000, 1000, 8)
	want := math.Sqrt(8 * 10000 / (math.Pi * 1000))
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("range = %v, want %v", r, want)
	}
}

func TestShapeLookup(t *testing.T) {
	if _, err := ShapeByName("nonesuch"); err == nil {
		t.Error("unknown shape accepted")
	}
	if len(ShapeNames()) != 11 {
		t.Errorf("shapes = %v", ShapeNames())
	}
}

func TestRenderStages(t *testing.T) {
	net := testNetwork(t, "star", 600, 7, 1)
	res, err := net.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	stages := []RenderStage{
		StageNetwork, StageSites, StageSegments, StageCoarse,
		StageFinal, StageCells, StageBoundary,
	}
	for _, st := range stages {
		var svg, png bytes.Buffer
		if err := RenderResult(net, res, st, &svg); err != nil {
			t.Errorf("svg stage %d: %v", st, err)
		}
		if !strings.Contains(svg.String(), "<svg") {
			t.Errorf("stage %d produced no SVG", st)
		}
		if err := RenderResultPNG(net, res, st, &png); err != nil {
			t.Errorf("png stage %d: %v", st, err)
		}
		if png.Len() == 0 {
			t.Errorf("stage %d produced no PNG", st)
		}
	}
	var buf bytes.Buffer
	if err := RenderResult(net, res, RenderStage(99), &buf); err == nil {
		t.Error("unknown stage accepted")
	}
	if err := RenderResultPNG(net, res, RenderStage(99), &buf); err == nil {
		t.Error("unknown PNG stage accepted")
	}
	if err := RenderNetwork(net, &buf); err != nil {
		t.Errorf("RenderNetwork: %v", err)
	}
}

func TestAnalysisWrappers(t *testing.T) {
	net := testNetwork(t, "onehole", 1500, 7, 1)
	res, err := net.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	medial := GroundTruthMedialAxis(net.Spec.Shape)
	if len(medial) == 0 {
		t.Fatal("no medial ground truth")
	}
	rep := Evaluate(net, res, medial, 0)
	if rep.Holes != 1 {
		t.Errorf("holes = %d", rep.Holes)
	}
	seg := EvaluateSegmentation(res)
	if seg.Cells != len(res.Sites) {
		t.Errorf("cells = %d, sites = %d", seg.Cells, len(res.Sites))
	}
	p, r := BoundaryPrecisionRecall(net, res.Boundary, 0)
	if p <= 0 || p > 1 || r <= 0 || r > 1 {
		t.Errorf("boundary PR = %v, %v", p, r)
	}
	if s := SkeletonStability(net, res, net, res); s != 0 {
		t.Errorf("self-stability = %v", s)
	}
	b := DetectBoundary(net)
	if len(b.Nodes) == 0 {
		t.Error("no boundary detected")
	}
	if m := RunMAP(net, b); len(m.MedialNodes) == 0 {
		t.Error("MAP found nothing")
	}
	if c := RunCASE(net, b); len(c.SkeletonNodes) == 0 {
		t.Error("CASE found nothing")
	}
	d, err := RunProtocolPhases(net, res.EffectiveK, res.Params.L, res.EffectiveScope, res.Params.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalMessages() == 0 || d.TotalRounds() == 0 {
		t.Error("distributed run reported no cost")
	}
}

func TestScenarioMachinery(t *testing.T) {
	if len(Fig4Scenarios()) != 10 {
		t.Errorf("Fig4Scenarios = %d", len(Fig4Scenarios()))
	}
	if len(Fig5Degrees()) != 4 || len(Fig7Epsilons()) != 4 {
		t.Error("sweep tables wrong")
	}
	if _, err := RunFigure("nonesuch", 1); err == nil {
		t.Error("unknown figure accepted")
	}
	if len(FigureNames()) != 12 {
		t.Errorf("figures = %v", FigureNames())
	}
	// One real figure end to end.
	rows, err := RunFigure("fig1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Homotopy {
		t.Errorf("fig1 rows = %+v", rows)
	}
	if rows[0].String() == "" {
		t.Error("empty row string")
	}
}

func TestBadScenario(t *testing.T) {
	if _, err := BuildScenario(Scenario{ShapeName: "nope", N: 10, Deg: 6}, 1); err == nil {
		t.Error("unknown shape scenario accepted")
	}
	if _, err := BuildScenario(Scenario{ShapeName: "star", N: 100, Deg: 6, RadioKind: "warp"}, 1); err == nil {
		t.Error("unknown radio kind accepted")
	}
}

func TestSegmentationFacade(t *testing.T) {
	net := testNetwork(t, "cactus", 1800, 7, 1)
	res, err := net.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cells := SegmentByCells(res, 9)
	if cells.NumSegments() < 2 {
		t.Errorf("cell segmentation: %d segments", cells.NumSegments())
	}
	flow := SegmentByFlow(net, res.Boundary, 6)
	if flow.NumSegments() < 2 {
		t.Errorf("flow segmentation: %d segments", flow.NumSegments())
	}
	// Both label every node that the other labels (full assignment).
	for v := 0; v < net.N(); v++ {
		if cells.SegmentOf[v] < 0 {
			t.Fatalf("cell segmentation left node %d unassigned", v)
		}
	}
}
