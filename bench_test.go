package bfskel

import (
	"fmt"
	"testing"
)

// The benchmarks below regenerate every figure/claim of the paper's
// evaluation (see DESIGN.md's experiment index). Run them with
//
//	go test -bench=. -benchmem
//
// Each iteration performs the complete experiment — network construction,
// extraction, evaluation — so ns/op measures the cost of reproducing the
// figure, and the reported metrics (printed once per benchmark) are the
// measured counterparts of the paper's results.

// benchFigure runs one experiment per iteration and reports its rows once.
func benchFigure(b *testing.B, figure string) {
	b.Helper()
	var rows []ExperimentRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunFigure(figure, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.Log(r.String())
	}
}

// BenchmarkFig1PipelineWindow reproduces Fig. 1: the full pipeline on the
// Window network (2592 nodes, avg.deg 5.96).
func BenchmarkFig1PipelineWindow(b *testing.B) { benchFigure(b, "fig1") }

// BenchmarkFig3ByProducts reproduces Fig. 3: the segmentation and boundary
// by-products of the Window run.
func BenchmarkFig3ByProducts(b *testing.B) { benchFigure(b, "fig3") }

// BenchmarkFig4Scenarios reproduces Fig. 4: the ten deployment fields with
// the paper's node counts and degrees.
func BenchmarkFig4Scenarios(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig5Density reproduces Fig. 5: the Window density sweep
// (avg.deg 9.95-22.72) with stability vs. the Fig. 1 reference.
func BenchmarkFig5Density(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6QUDG reproduces Fig. 6: quasi-UDG (alpha=0.4, p=0.3) on the
// Window and Star fields.
func BenchmarkFig6QUDG(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7LogNormal reproduces Fig. 7: the log-normal shadowing sweep
// (epsilon 0-3) on the Window field.
func BenchmarkFig7LogNormal(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8Skewed reproduces Fig. 8: skewed nodal distributions on the
// Window (vertical density gradient) and Star (half-plane thinning) fields.
func BenchmarkFig8Skewed(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkComplexityScaling reproduces Sec. V-A: distributed message and
// round counts across network sizes, against the O((k+l+1)n) and O(sqrt(n))
// claims.
func BenchmarkComplexityScaling(b *testing.B) { benchFigure(b, "complexity") }

// BenchmarkParameterSensitivity reproduces Sec. V-B: k = l in 2..6 on the
// Window field.
func BenchmarkParameterSensitivity(b *testing.B) { benchFigure(b, "params") }

// BenchmarkBaselines reproduces the Sec. I/VI comparison: our boundary-free
// skeleton vs. MAP and CASE with detected boundaries, plus the
// boundary-noise sensitivity probe.
func BenchmarkBaselines(b *testing.B) { benchFigure(b, "baselines") }

// BenchmarkRoutingLoadBalance reproduces the motivating application:
// skeleton-aided routing vs. shortest paths (stretch and boundary load).
func BenchmarkRoutingLoadBalance(b *testing.B) { benchFigure(b, "routing") }

// BenchmarkAblation isolates the implementation's design knobs: Alpha,
// local-maximum scope, and pruning (DESIGN.md experiment index).
func BenchmarkAblation(b *testing.B) { benchFigure(b, "ablation") }

// BenchmarkExtract measures the core pipeline alone (no evaluation) across
// network sizes — the library's headline cost. It reuses one staged engine
// per size, the intended steady-state mode: scratch pools amortize and only
// per-result allocations remain.
func BenchmarkExtract(b *testing.B) {
	for _, n := range []int{648, 2592, 10368} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net, err := BuildNetwork(NetworkSpec{
				Shape: MustShape("window"), N: n, TargetDeg: 7, Seed: 1, Layout: LayoutGrid,
			})
			if err != nil {
				b.Fatal(err)
			}
			x := net.Extractor()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := x.Extract(DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFloodKernels pins the two flood kernels against each other on the
// headline network: identical pipelines, identical results, only the
// all-sources BFS implementation differs. The walker/batched gap is the
// MS-BFS win in isolation (KernelAuto picks batched at this size).
func BenchmarkFloodKernels(b *testing.B) {
	for _, n := range []int{2592, 10368} {
		net, err := BuildNetwork(NetworkSpec{
			Shape: MustShape("window"), N: n, TargetDeg: 7, Seed: 1, Layout: LayoutGrid,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, kern := range []FloodKernel{KernelWalker, KernelBatched} {
			b.Run(fmt.Sprintf("n=%d/%v", n, kern), func(b *testing.B) {
				p := DefaultParams()
				p.FloodKernel = kern
				x := net.Extractor()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := x.Extract(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkProtocolPhases measures the four distributed protocol phases
// (neighborhood, centrality, election, Voronoi) on the simnet substrate,
// pinning the serial reference engine against the allocation-free parallel
// arena engine on the same networks. Both produce bit-identical results
// (the engine-parity tests enforce it); the gap is pure simulator cost.
func BenchmarkProtocolPhases(b *testing.B) {
	for _, n := range []int{2592, 10368} {
		net, err := BuildNetwork(NetworkSpec{
			Shape: MustShape("window"), N: n, TargetDeg: 7, Seed: 1, Layout: LayoutGrid,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := net.Extract(DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		k, l, scope, alpha := res.EffectiveK, res.Params.L, res.EffectiveScope, res.Params.Alpha
		for _, eng := range []SimEngine{SimEngineSerial, SimEngineParallel} {
			b.Run(fmt.Sprintf("n=%d/%v", n, eng), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := RunProtocolPhasesObs(net, k, l, scope, alpha,
						ProtocolOptions{Engine: eng}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExtractFresh measures the one-shot compatibility path: a
// throwaway engine per call, as net.Extract does. The gap to
// BenchmarkExtract is the cold-start cost the pooled engine saves.
func BenchmarkExtractFresh(b *testing.B) {
	for _, n := range []int{648, 2592, 10368} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net, err := BuildNetwork(NetworkSpec{
				Shape: MustShape("window"), N: n, TargetDeg: 7, Seed: 1, Layout: LayoutGrid,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.Extract(DefaultParams()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildNetwork measures deployment plus graph realisation.
func BenchmarkBuildNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildNetwork(NetworkSpec{
			Shape: MustShape("window"), N: 2592, TargetDeg: 6, Seed: 1, Layout: LayoutGrid,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
