// Failures: the paper notes that skeleton loops can be caused by "obstacles
// (or nodes failure, etc.)" — this example kills a disk of sensors inside a
// solid region and re-extracts: the dead zone becomes a hole and the
// skeleton grows a new genuine loop around it, with no reconfiguration or
// boundary input.
//
//	go run ./examples/failures
package main

import (
	"fmt"
	"log"
	"os"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := bfskel.BuildNetwork(bfskel.NetworkSpec{
		Shape:     bfskel.MustShape("onehole"),
		N:         2734,
		TargetDeg: 6.54,
		Seed:      1,
		Layout:    bfskel.LayoutGrid,
	})
	if err != nil {
		return err
	}
	before, err := net.Extract(bfskel.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("before: %d nodes, skeleton loops %d (field holes %d)\n",
		net.N(), before.Skeleton.CycleRank(), net.Spec.Shape.Holes())

	// A battery blackout kills every sensor within 10 units of (80, 20).
	failed := bfskel.NodesWithin(net, bfskel.Point{X: 80, Y: 20}, 10)
	after := bfskel.FailNodes(net, failed)
	fmt.Printf("blackout: %d sensors died around (80,20)\n", len(failed))

	res, err := after.Extract(bfskel.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("after:  %d nodes, skeleton loops %d — the dead zone is detected as a new hole\n",
		after.N(), res.Skeleton.CycleRank())
	for _, l := range res.Loops {
		fmt.Printf("  loop (%s) through %d sites\n", l.Kind, len(l.Sites))
	}

	f, err := os.Create("failures-after.svg")
	if err != nil {
		return err
	}
	renderErr := bfskel.RenderResult(after, res, bfskel.StageFinal, f)
	if closeErr := f.Close(); renderErr == nil {
		renderErr = closeErr
	}
	if renderErr != nil {
		return renderErr
	}
	fmt.Println("wrote failures-after.svg")
	return nil
}
