// Boundary: the boundary by-product (paper Fig. 3b) and the comparison the
// paper's introduction frames — MAP and CASE need boundaries as input;
// this pipeline produces them as output. The example detects boundaries
// statistically, runs MAP and CASE on top of them, and shows how injected
// boundary noise inflates MAP's medial set while the boundary-free pipeline
// is untouched by construction.
//
//	go run ./examples/boundary
package main

import (
	"fmt"
	"log"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := bfskel.BuildNetwork(bfskel.NetworkSpec{
		Shape:     bfskel.MustShape("star"),
		N:         1394,
		TargetDeg: 6.59,
		Seed:      1,
		Layout:    bfskel.LayoutGrid,
	})
	if err != nil {
		return err
	}

	// Our pipeline: boundary comes out as a by-product.
	res, err := net.Extract(bfskel.DefaultParams())
	if err != nil {
		return err
	}
	prec, rec := bfskel.BoundaryPrecisionRecall(net, res.Boundary, 0)
	fmt.Printf("boundary by-product: %d nodes, precision %.2f, recall %.2f\n", len(res.Boundary), prec, rec)

	// The baselines: boundary must go in as input.
	b := bfskel.DetectBoundary(net)
	prec, rec = bfskel.BoundaryPrecisionRecall(net, b.Nodes, 0)
	fmt.Printf("dedicated detector:  %d nodes, precision %.2f, recall %.2f, %d cycles\n",
		len(b.Nodes), prec, rec, len(b.Cycles))

	mres := bfskel.RunMAP(net, b)
	cres := bfskel.RunCASE(net, b)
	fmt.Printf("\nwith this boundary as input:\n")
	fmt.Printf("  MAP  medial axis: %d nodes\n", len(mres.MedialNodes))
	fmt.Printf("  CASE skeleton:    %d nodes (%d boundary branches)\n", len(cres.SkeletonNodes), cres.NumBranches)
	fmt.Printf("  ours (no boundary input): %d skeleton nodes\n", res.Skeleton.NumNodes())

	// Boundary noise: promote a few interior nodes to fake boundary nodes.
	noisy := bfskel.DetectBoundary(net)
	maxClear := 0.0
	for v := 0; v < net.N(); v++ {
		if c := net.Spec.Shape.Poly.BoundaryDist(net.Points[v]); c > maxClear {
			maxClear = c
		}
	}
	added := 0
	for v := 0; v < net.N() && added < 8; v++ {
		if !noisy.IsBoundary[v] && net.Spec.Shape.Poly.BoundaryDist(net.Points[v]) > maxClear/2 {
			noisy.IsBoundary[v] = true
			noisy.Nodes = append(noisy.Nodes, int32(v))
			noisy.Cycles = append(noisy.Cycles, []int32{int32(v)})
			added++
		}
	}
	mNoisy := bfskel.RunMAP(net, noisy)
	fmt.Printf("\nafter injecting %d fake boundary nodes:\n", added)
	fmt.Printf("  MAP  medial axis: %d -> %d nodes (boundary-noise sensitivity)\n",
		len(mres.MedialNodes), len(mNoisy.MedialNodes))
	fmt.Printf("  ours: unchanged — the pipeline never consumes boundary input\n")
	return nil
}
