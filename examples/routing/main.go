// Routing: the skeleton-aided naming and routing application the paper
// motivates in Sec. I. Every node is named by its nearest skeleton node;
// messages travel to the source's anchor, along the skeleton, and out to
// the destination. Compared with shortest-path routing, traffic moves off
// the boundary nodes (whose batteries geographic routing exhausts first)
// while staying within a small stretch factor.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := bfskel.BuildNetwork(bfskel.NetworkSpec{
		Shape:     bfskel.MustShape("window"),
		N:         2592,
		TargetDeg: 6,
		Seed:      1,
		Layout:    bfskel.LayoutGrid,
	})
	if err != nil {
		return err
	}
	res, err := net.Extract(bfskel.DefaultParams())
	if err != nil {
		return err
	}

	isBoundary := make([]bool, net.N())
	for _, v := range res.Boundary {
		isBoundary[v] = true
	}

	const pairs = 500
	shortest := bfskel.NewShortestPathRouter(net)
	spLoad, err := bfskel.MeasureLoad(net, shortest, pairs, 7, isBoundary)
	if err != nil {
		return err
	}
	skeleton, err := bfskel.NewSkeletonRouter(net, res.Skeleton)
	if err != nil {
		return err
	}
	skLoad, err := bfskel.MeasureLoad(net, skeleton, pairs, 7, isBoundary)
	if err != nil {
		return err
	}

	fmt.Printf("routed %d random pairs over %d nodes (avg.deg %.2f)\n\n", pairs, net.N(), net.AvgDegree())
	fmt.Printf("%-16s %-8s %-8s %-8s %s\n", "router", "stretch", "maxload", "p99load", "boundary share")
	fmt.Printf("%-16s %-8.2f %-8d %-8d %.3f\n", "shortest-path", spLoad.MeanStretch, spLoad.MaxLoad, spLoad.P99Load, spLoad.BoundaryShare)
	fmt.Printf("%-16s %-8.2f %-8d %-8d %.3f\n", "skeleton-aided", skLoad.MeanStretch, skLoad.MaxLoad, skLoad.P99Load, skLoad.BoundaryShare)
	fmt.Println("\nskeleton routing keeps traffic off boundary nodes (the paper's load-balance goal)")
	fmt.Println("while the mean path stays within a small stretch of the shortest path.")
	return nil
}
