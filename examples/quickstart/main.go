// Quickstart: build a simulated sensor network in the paper's Window field,
// extract its skeleton from pure connectivity, and print what came out.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Deploy ~2600 sensors in a window-shaped field with average degree
	//    about 6 — the exact setting of the paper's Fig. 1.
	net, err := bfskel.BuildNetwork(bfskel.NetworkSpec{
		Shape:     bfskel.MustShape("window"),
		N:         2592,
		TargetDeg: 5.96,
		Seed:      1,
		Layout:    bfskel.LayoutGrid,
	})
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes, average degree %.2f\n", net.N(), net.AvgDegree())

	// 2. Extract the skeleton. Only connectivity is used: no positions, no
	//    boundary information.
	res, err := net.Extract(bfskel.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("critical skeleton nodes (sites): %d\n", len(res.Sites))
	fmt.Printf("segment nodes: %d, Voronoi nodes: %d\n", len(res.SegmentNodes), len(res.VoronoiNodes))
	fmt.Printf("final skeleton: %d nodes, %d independent loops (field has %d holes)\n",
		res.Skeleton.NumNodes(), res.Skeleton.CycleRank(), net.Spec.Shape.Holes())
	fmt.Printf("loops: %d fake deleted, %d genuine kept\n", res.NumFakeLoops(), res.NumGenuineLoops())
	fmt.Printf("by-products: %d boundary nodes, %d Voronoi cells\n",
		len(res.Boundary), len(res.Sites))

	// 3. Score against the geometric ground truth.
	medial := bfskel.GroundTruthMedialAxis(net.Spec.Shape)
	rep := bfskel.Evaluate(net, res, medial, 0)
	fmt.Printf("homotopy preserved: %v; skeleton covers %.0f%% of the true medial axis\n",
		rep.HomotopyOK, 100*rep.MedialCoverage)

	// 4. Render the stages (the panels of the paper's Fig. 1).
	for _, stage := range []struct {
		name string
		s    bfskel.RenderStage
	}{
		{"network", bfskel.StageNetwork},
		{"sites", bfskel.StageSites},
		{"skeleton", bfskel.StageFinal},
	} {
		path := "quickstart-" + stage.name + ".svg"
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		renderErr := bfskel.RenderResult(net, res, stage.s, f)
		if closeErr := f.Close(); renderErr == nil {
			renderErr = closeErr
		}
		if renderErr != nil {
			return renderErr
		}
		fmt.Println("wrote", path)
	}
	return nil
}
