// Segmentation: the location-free shape segmentation application the paper
// motivates (Sec. I, by-product of Fig. 3a). Two connectivity-only methods
// are compared on the cactus field:
//
//   - skeleton-based (SegmentByCells): Voronoi cells whose sites are close
//     along the skeleton merge into one segment per structural part;
//
//   - flow-based (SegmentByFlow): nodes flow uphill in boundary distance
//     to sinks, using the pipeline's boundary by-product as input.
//
//     go run ./examples/segmentation
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := bfskel.BuildNetwork(bfskel.NetworkSpec{
		Shape:     bfskel.MustShape("cactus"),
		N:         2172,
		TargetDeg: 6.7,
		Seed:      1,
		Layout:    bfskel.LayoutGrid,
	})
	if err != nil {
		return err
	}
	res, err := net.Extract(bfskel.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("network: %d nodes; %d Voronoi cells\n\n", net.N(), len(res.Sites))

	cells := bfskel.SegmentByCells(res, 9)
	fmt.Printf("skeleton-based segmentation (merge radius 9): %d segments\n", cells.NumSegments())
	printSizes(cells, net.N())

	flow := bfskel.SegmentByFlow(net, res.Boundary, 6)
	fmt.Printf("\nflow-based segmentation (boundary by-product, sink merge 6): %d segments\n", flow.NumSegments())
	printSizes(flow, net.N())

	// Render the skeleton-based result: reuse the cell renderer with the
	// merged labels.
	view := *res
	view.CellOf = cells.SegmentOf
	f, err := os.Create("segmentation.svg")
	if err != nil {
		return err
	}
	renderErr := bfskel.RenderResult(net, &view, bfskel.StageCells, f)
	if closeErr := f.Close(); renderErr == nil {
		renderErr = closeErr
	}
	if renderErr != nil {
		return renderErr
	}
	fmt.Println("\nwrote segmentation.svg")
	return nil
}

func printSizes(seg *bfskel.Segmentation, total int) {
	sizes := seg.Sizes()
	sinks := make([]int32, 0, len(sizes))
	for s := range sizes {
		sinks = append(sinks, s)
	}
	sort.Slice(sinks, func(i, j int) bool { return sizes[sinks[i]] > sizes[sinks[j]] })
	for _, s := range sinks {
		fmt.Printf("  segment at node %-5d %5d nodes (%2.0f%%)\n", s, sizes[s], 100*float64(sizes[s])/float64(total))
	}
}
