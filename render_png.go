package bfskel

import (
	"fmt"
	"image/color"
	"io"

	"bfskel/internal/render"
)

// RenderResultPNG writes one pipeline stage as a PNG bitmap; it mirrors
// RenderResult for environments without an SVG viewer.
func RenderResultPNG(net *Network, res *Result, stage RenderStage, w io.Writer) error {
	r := render.NewRaster(net.Spec.Shape.Poly.Bounds(), 8)
	for _, ring := range net.Spec.Shape.Poly.Rings() {
		r.Ring(ring, render.Gray)
	}
	switch stage {
	case StageNetwork:
		for v := 0; v < net.N(); v++ {
			for _, u := range net.Graph.Neighbors(v) {
				if int32(v) < u {
					r.Line(net.Points[v], net.Points[u], render.Dim)
				}
			}
		}
		for _, p := range net.Points {
			r.Dot(p, 1.5, render.Black)
		}
	case StageSites:
		for _, p := range net.Points {
			r.Dot(p, 1.2, render.Dim)
		}
		if res != nil {
			for _, v := range res.Sites {
				r.Dot(net.Points[v], 4, render.Red)
			}
		}
	case StageSegments:
		for _, p := range net.Points {
			r.Dot(p, 1.2, render.Dim)
		}
		if res != nil {
			for _, v := range res.SegmentNodes {
				r.Dot(net.Points[v], 2.5, render.Blue)
			}
			for _, v := range res.VoronoiNodes {
				r.Dot(net.Points[v], 4, render.Purple)
			}
			for _, v := range res.Sites {
				r.Dot(net.Points[v], 4, render.Red)
			}
		}
	case StageCoarse, StageFinal:
		for _, p := range net.Points {
			r.Dot(p, 1.2, render.Dim)
		}
		if res != nil {
			sk := res.Skeleton
			if stage == StageCoarse {
				sk = res.Coarse
			}
			for _, v := range sk.Nodes() {
				for _, u := range sk.Neighbors(v) {
					if v < u {
						r.ThickLine(net.Points[v], net.Points[u], 2, render.Red)
					}
				}
				r.Dot(net.Points[v], 2, render.Red)
			}
		}
	case StageBoundary:
		for _, p := range net.Points {
			r.Dot(p, 1.2, render.Dim)
		}
		if res != nil {
			for _, v := range res.Boundary {
				r.Dot(net.Points[v], 2.5, render.Green)
			}
		}
	case StageCells:
		if res != nil {
			for v := 0; v < net.N(); v++ {
				c := render.Dim
				if cell := res.CellOf[v]; cell >= 0 {
					pal := cellPalette[int(cell)%len(cellPalette)]
					c = parseHex(pal)
				}
				r.Dot(net.Points[v], 2, c)
			}
			for _, v := range res.Sites {
				r.Dot(net.Points[v], 4, render.Black)
			}
		}
	default:
		return fmt.Errorf("bfskel: unknown render stage %d", stage)
	}
	return r.EncodePNG(w)
}

// parseHex converts "#rrggbb" to an RGBA color; malformed input yields gray.
func parseHex(s string) (c color.RGBA) {
	c.A = 0xff
	if len(s) != 7 || s[0] != '#' {
		c.R, c.G, c.B = 0x80, 0x80, 0x80
		return c
	}
	hex := func(b byte) uint8 {
		switch {
		case b >= '0' && b <= '9':
			return b - '0'
		case b >= 'a' && b <= 'f':
			return b - 'a' + 10
		case b >= 'A' && b <= 'F':
			return b - 'A' + 10
		}
		return 0
	}
	c.R = hex(s[1])<<4 | hex(s[2])
	c.G = hex(s[3])<<4 | hex(s[4])
	c.B = hex(s[5])<<4 | hex(s[6])
	return c
}
