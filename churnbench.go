package bfskel

import (
	"fmt"
	"runtime"
	"time"

	"bfskel/internal/skeleton"
)

// ChurnRow is one churn rate's throughput row (see RunChurnBench).
type ChurnRow = skeleton.ChurnRow

// ChurnHistBounds exposes the dirty-fraction histogram bucket bounds of
// ChurnRow.DirtyHist.
var ChurnHistBounds = skeleton.ChurnHistBounds

// ChurnBenchConfig parameterises a churn-throughput run.
type ChurnBenchConfig struct {
	// Shape names the deployment field (default "window").
	Shape string
	// N is the requested node count (default 100000).
	N int
	// TargetDeg is the calibrated average degree (default 7).
	TargetDeg float64
	// Seed drives deployment, links and the churn schedule.
	Seed int64
	// Params are the extraction parameters; the zero value means
	// DefaultParams.
	Params Params
	// Rates are the churn fractions per batch, run in order; each rate
	// streams Batches updates of max(1, round(rate*N)) failures through
	// one ChurnSession.
	Rates []float64
	// Batches is the number of timed updates per rate (default 20).
	Batches int
	// Warmup is the number of untimed steady-state updates run per rate
	// before timing starts (default 2; negative disables). The first updates
	// after a session (re)start pay one-off costs — cold flood caches, first
	// tuple-array build — that sustained-throughput numbers should not carry.
	Warmup int
}

// churnLCG is the deterministic node picker behind the churn schedule.
type churnLCG struct{ state uint64 }

func (c *churnLCG) next(n int) int {
	c.state = c.state*6364136223846793005 + 1442695040888963407
	return int((c.state >> 33) % uint64(n))
}

// RunChurnBench measures sustained incremental-update throughput: it builds
// one field, times from-scratch extraction as the baseline, then per rate
// streams steady-state churn batches (each update fails a fresh batch and
// recovers the previous one, so the dead population stays ~one batch)
// through a ChurnSession, recording updates/sec, fallbacks and the
// dirty-fraction histogram. Every rate starts from the pristine field.
func RunChurnBench(cfg ChurnBenchConfig) ([]ChurnRow, error) {
	if cfg.Shape == "" {
		cfg.Shape = "window"
	}
	if cfg.N == 0 {
		cfg.N = 100000
	}
	if cfg.TargetDeg == 0 {
		cfg.TargetDeg = 7
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 20
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 2
	} else if cfg.Warmup < 0 {
		cfg.Warmup = 0
	}
	shape, err := ShapeByName(cfg.Shape)
	if err != nil {
		return nil, err
	}
	net, err := BuildNetwork(NetworkSpec{
		Shape: shape, N: cfg.N, TargetDeg: cfg.TargetDeg,
		Seed: cfg.Seed, Layout: LayoutGrid,
	})
	if err != nil {
		return nil, err
	}

	// Settle the heap before timing anything: earlier phases of a combined
	// run (e.g. the scale ladder) can leave allocator state that skews both
	// the baseline and the update means.
	runtime.GC()

	// From-scratch baseline: best of two pooled-engine runs, so the churn
	// speedups compare against a warmed engine, not a cold start.
	eng := net.Extractor()
	fullMs := 0.0
	for i := 0; i < 2; i++ {
		start := time.Now() //lint:allow determinism ChurnRow.FullExtractMs is wall-clock timing, not part of the result
		if _, err := eng.Extract(cfg.Params); err != nil {
			return nil, fmt.Errorf("baseline extract: %w", err)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		if i == 0 || ms < fullMs {
			fullMs = ms
		}
	}

	s, err := net.ChurnSession(cfg.Params)
	if err != nil {
		return nil, err
	}
	rows := make([]ChurnRow, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		row := ChurnRow{
			Shape: cfg.Shape, N: cfg.N, Nodes: net.N(), AvgDeg: net.AvgDegree(),
			Rate: rate, Batches: cfg.Batches, FullExtractMs: fullMs,
		}
		if st := s.Result().Stats; st != nil {
			row.Kernel = st.FloodKernel
		}
		size := int(rate*float64(net.N()) + 0.5)
		if size < 1 {
			size = 1
		}
		row.BatchSize = size
		plan := &churnLCG{state: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(size)}
		pick := func() []int32 {
			seen := make(map[int32]bool, size)
			batch := make([]int32, 0, size)
			for guard := 0; len(batch) < size && guard < 100*size+1000; guard++ {
				v := int32(plan.next(net.N()))
				if s.Alive(v) && !seen[v] {
					seen[v] = true
					batch = append(batch, v)
				}
			}
			return batch
		}

		var prev []int32
		var total time.Duration
		row.DirtyHist = make([]int, len(ChurnHistBounds))
		for b := 0; b < cfg.Warmup && row.Err == ""; b++ {
			batch := pick()
			if _, err := s.Step(batch, prev); err != nil {
				row.Err = fmt.Sprintf("warmup %d: %v", b, err)
				break
			}
			prev = batch
		}
		for b := 0; b < cfg.Batches && row.Err == ""; b++ {
			batch := pick()
			start := time.Now() //lint:allow determinism ChurnRow update timings are wall-clock, not part of the result
			_, err := s.Step(batch, prev)
			dt := time.Since(start)
			if err != nil {
				row.Err = fmt.Sprintf("batch %d: %v", b, err)
				break
			}
			total += dt
			ms := float64(dt) / float64(time.Millisecond)
			row.MeanUpdateMs += ms
			if ms > row.MaxUpdateMs {
				row.MaxUpdateMs = ms
			}
			u := s.LastUpdate()
			if u.Fallback {
				row.Fallbacks++
			}
			row.MeanDirtyFrac += u.DirtyFraction
			for i, bound := range ChurnHistBounds {
				if u.DirtyFraction <= bound {
					row.DirtyHist[i]++
					break
				}
			}
			prev = batch
		}
		// Reset to the pristine field for the next rate (untimed).
		if _, err := s.Restore(prev); err != nil && row.Err == "" {
			row.Err = fmt.Sprintf("restore: %v", err)
		}
		if row.Err == "" {
			row.MeanUpdateMs /= float64(cfg.Batches)
			row.MeanDirtyFrac /= float64(cfg.Batches)
			if sec := total.Seconds(); sec > 0 {
				row.UpdatesPerSec = float64(cfg.Batches) / sec
			}
			if row.MeanUpdateMs > 0 {
				row.Speedup = row.FullExtractMs / row.MeanUpdateMs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
