package bfskel

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// BenchCell is one comparable cost measurement of a benchmark document: a
// key naming what ran ("backend/scenario" for scorecards,
// "figure/scenario" for figure reports) plus wall time and heap cost.
// Allocs is 0 when the source format does not record allocation counts
// (figure reports); such dimensions are skipped in comparisons.
type BenchCell struct {
	Key    string  `json:"key"`
	Ms     float64 `json:"ms"`
	Allocs uint64  `json:"allocs,omitempty"`
	Bytes  uint64  `json:"bytes,omitempty"`
}

// BenchDeltaRow is one key's baseline-vs-current comparison. Ratios are
// fractional changes (new/old - 1): +0.25 reads "25% more than baseline".
type BenchDeltaRow struct {
	Key         string  `json:"key"`
	MsOld       float64 `json:"msOld"`
	MsNew       float64 `json:"msNew"`
	MsRatio     float64 `json:"msRatio"`
	AllocsOld   uint64  `json:"allocsOld,omitempty"`
	AllocsNew   uint64  `json:"allocsNew,omitempty"`
	AllocsRatio float64 `json:"allocsRatio,omitempty"`
	BytesOld    uint64  `json:"bytesOld,omitempty"`
	BytesNew    uint64  `json:"bytesNew,omitempty"`
	BytesRatio  float64 `json:"bytesRatio,omitempty"`
	// Regressed lists the dimensions ("ms", "allocs", "bytes") whose
	// increase exceeded the tolerance.
	Regressed []string `json:"regressed,omitempty"`
}

// BenchDelta is the machine-readable regression report of a benchmark
// comparison — skelbench -compare emits it into the CI job log.
type BenchDelta struct {
	Baseline  string          `json:"baseline"`
	Tolerance float64         `json:"tolerance"`
	Rows      []BenchDeltaRow `json:"rows"`
	// Regressions counts rows with at least one regressed dimension.
	Regressions int `json:"regressions"`
	// OnlyInBaseline / OnlyInCurrent list keys without a counterpart.
	OnlyInBaseline []string `json:"onlyInBaseline,omitempty"`
	OnlyInCurrent  []string `json:"onlyInCurrent,omitempty"`
}

// benchMsNoiseFloor suppresses regression flags on cells whose wall time is
// too small to measure reliably in one shot.
const benchMsNoiseFloor = 0.5

// CompareBenchCells diffs current against baseline key by key. A dimension
// regresses when it grew by more than tolerance (fractional, e.g. 0.3 =
// 30%); wall times under half a millisecond on both sides never flag
// (single-shot timing noise). Rows come back sorted by key.
func CompareBenchCells(baseline, current []BenchCell, baselineName string, tolerance float64) *BenchDelta {
	d := &BenchDelta{Baseline: baselineName, Tolerance: tolerance}
	old := make(map[string]BenchCell, len(baseline))
	for _, c := range baseline {
		old[c.Key] = c
	}
	seen := make(map[string]bool, len(current))
	for _, c := range current {
		seen[c.Key] = true
		b, ok := old[c.Key]
		if !ok {
			d.OnlyInCurrent = append(d.OnlyInCurrent, c.Key)
			continue
		}
		row := BenchDeltaRow{
			Key:   c.Key,
			MsOld: b.Ms, MsNew: c.Ms,
			AllocsOld: b.Allocs, AllocsNew: c.Allocs,
			BytesOld: b.Bytes, BytesNew: c.Bytes,
		}
		row.MsRatio = ratio(b.Ms, c.Ms)
		if b.Ms > 0 && row.MsRatio > tolerance && (b.Ms >= benchMsNoiseFloor || c.Ms >= benchMsNoiseFloor) {
			row.Regressed = append(row.Regressed, "ms")
		}
		if b.Allocs > 0 && c.Allocs > 0 {
			row.AllocsRatio = ratio(float64(b.Allocs), float64(c.Allocs))
			if row.AllocsRatio > tolerance {
				row.Regressed = append(row.Regressed, "allocs")
			}
		}
		if b.Bytes > 0 && c.Bytes > 0 {
			row.BytesRatio = ratio(float64(b.Bytes), float64(c.Bytes))
			if row.BytesRatio > tolerance {
				row.Regressed = append(row.Regressed, "bytes")
			}
		}
		if len(row.Regressed) > 0 {
			d.Regressions++
		}
		d.Rows = append(d.Rows, row)
	}
	for key := range old {
		if !seen[key] {
			d.OnlyInBaseline = append(d.OnlyInBaseline, key)
		}
	}
	sort.Slice(d.Rows, func(i, j int) bool { return d.Rows[i].Key < d.Rows[j].Key })
	sort.Strings(d.OnlyInBaseline)
	sort.Strings(d.OnlyInCurrent)
	return d
}

func ratio(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return new/old - 1
}

// String renders the delta as the aligned table skelbench prints; regressed
// rows lead with "REGRESSION" so they grep out of a CI job log.
func (d *BenchDelta) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark delta vs %s (tolerance %+.0f%%):\n", d.Baseline, d.Tolerance*100)
	for _, r := range d.Rows {
		tag := "ok        "
		if len(r.Regressed) > 0 {
			tag = "REGRESSION"
		}
		fmt.Fprintf(&b, "  %s %-28s ms %9.2f -> %9.2f (%+6.1f%%)", tag, r.Key, r.MsOld, r.MsNew, r.MsRatio*100)
		if r.AllocsOld > 0 && r.AllocsNew > 0 {
			fmt.Fprintf(&b, "  allocs %8d -> %8d (%+6.1f%%)", r.AllocsOld, r.AllocsNew, r.AllocsRatio*100)
		}
		if r.BytesOld > 0 && r.BytesNew > 0 {
			fmt.Fprintf(&b, "  bytes %10d -> %10d (%+6.1f%%)", r.BytesOld, r.BytesNew, r.BytesRatio*100)
		}
		if len(r.Regressed) > 0 {
			fmt.Fprintf(&b, "  [%s]", strings.Join(r.Regressed, ","))
		}
		b.WriteByte('\n')
	}
	for _, k := range d.OnlyInBaseline {
		fmt.Fprintf(&b, "  missing   %-28s (in baseline only)\n", k)
	}
	for _, k := range d.OnlyInCurrent {
		fmt.Fprintf(&b, "  new       %-28s (no baseline)\n", k)
	}
	fmt.Fprintf(&b, "  %d/%d rows regressed", d.Regressions, len(d.Rows))
	return b.String()
}

// BenchCellsFromScorecard flattens a scorecard into comparable cells keyed
// "backend/scenario" — plus "churn/shape@rate" cells (mean update wall
// time) when the card embeds churn rows. Failed cells (Err set) are
// skipped.
func BenchCellsFromScorecard(card *Scorecard) []BenchCell {
	cells := make([]BenchCell, 0, len(card.Scores)+len(card.Churn))
	for _, s := range card.Scores {
		if s.Err != "" {
			continue
		}
		cells = append(cells, BenchCell{
			Key:    s.Backend + "/" + s.Scenario,
			Ms:     s.MsPerOp,
			Allocs: s.AllocsPerOp,
			Bytes:  s.BytesPerOp,
		})
	}
	for _, r := range card.Churn {
		if r.Err != "" {
			continue
		}
		cells = append(cells, BenchCell{
			Key: fmt.Sprintf("churn/%s@%g", r.Shape, r.Rate),
			Ms:  r.MeanUpdateMs,
		})
	}
	return cells
}

// BenchCellsFromRows flattens one experiment's rows into comparable cells
// keyed "figure/scenario": wall time is the summed per-phase duration and
// bytes the summed per-phase allocation (rows without stats are skipped;
// figure reports carry no allocation counts).
func BenchCellsFromRows(figure string, rows []ExperimentRow) []BenchCell {
	var cells []BenchCell
	for _, r := range rows {
		if r.Stats == nil {
			continue
		}
		var ms float64
		var bytes uint64
		for _, ph := range r.Stats.Phases {
			ms += float64(ph.Duration) / float64(time.Millisecond)
			bytes += ph.BytesAlloc
		}
		cells = append(cells, BenchCell{Key: figure + "/" + r.Scenario, Ms: ms, Bytes: bytes})
	}
	return cells
}

// ParseBenchBaseline reads a checked-in benchmark baseline — either a
// scorecard (BENCH_pr6.json and later) or a skelbench -json figure report
// (BENCH_pr4/5.json) — into comparable cells, reporting which format it
// found ("scorecard" or "report").
func ParseBenchBaseline(data []byte) ([]BenchCell, string, error) {
	var probe struct {
		Scores  []json.RawMessage `json:"scores"`
		Figures []struct {
			Figure string          `json:"figure"`
			Rows   []ExperimentRow `json:"rows"`
		} `json:"figures"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, "", fmt.Errorf("bench baseline: %w", err)
	}
	if len(probe.Scores) > 0 {
		var card Scorecard
		if err := json.Unmarshal(data, &card); err != nil {
			return nil, "", fmt.Errorf("bench baseline scorecard: %w", err)
		}
		return BenchCellsFromScorecard(&card), "scorecard", nil
	}
	if len(probe.Figures) > 0 {
		var cells []BenchCell
		for _, f := range probe.Figures {
			cells = append(cells, BenchCellsFromRows(f.Figure, f.Rows)...)
		}
		return cells, "report", nil
	}
	return nil, "", fmt.Errorf("bench baseline: neither a scorecard (scores) nor a figure report (figures)")
}
