package bfskel

import (
	"strings"
	"testing"
)

// traceOf runs one observed extraction plus one observed distributed
// protocol run on a freshly built network and returns the canonical
// (timestamp-free) trace.
func traceOf(t *testing.T, seed int64) string {
	t.Helper()
	net := testNetwork(t, "window", 800, 7, seed)
	ring := NewRingSink(0)
	ob := ObsScope{Tracer: NewTracer(ring)}
	res, err := net.ExtractorObs(ob).Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProtocolPhasesObs(net, res.EffectiveK, res.Params.L, res.EffectiveScope, res.Params.Alpha,
		ProtocolOptions{Tracer: ob.Tracer, RecordRounds: true, RecordPerNode: true}); err != nil {
		t.Fatal(err)
	}
	return ring.Canon()
}

// TestTraceDeterminism pins the tracing determinism contract (mirroring
// determinism_test.go for results): with a fixed seed, two runs emit
// identical span/event sequences — same records, same order, same IDs, same
// attributes — up to the excluded wall-clock fields. This holds because
// events fire only from single-threaded orchestration points and parallel
// BFS work is aggregated into order-independent sums.
func TestTraceDeterminism(t *testing.T) {
	a, b := traceOf(t, 3), traceOf(t, 3)
	if a == b {
		return
	}
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			t.Fatalf("traces diverge at record %d:\n  run1: %s\n  run2: %s", i, al[i], at(bl, i))
		}
	}
	t.Fatalf("trace lengths differ: %d vs %d records", len(al), len(bl))
}

func at(lines []string, i int) string {
	if i >= len(lines) {
		return "(missing)"
	}
	return lines[i]
}

// TestTraceContainsTaxonomy pins the documented span taxonomy end to end:
// a traced extraction + protocol run contains all five stage spans and all
// four phase spans (the same names CI's skeltrace -check requires).
func TestTraceContainsTaxonomy(t *testing.T) {
	trace := traceOf(t, 3)
	for _, name := range []string{
		"name=extract",
		"name=stage.identify", "name=stage.voronoi", "name=stage.coarse",
		"name=stage.refine", "name=stage.boundary",
		"name=protocol",
		"name=phase.neighborhood", "name=phase.centrality",
		"name=phase.election", "name=phase.voronoi",
		"name=round", "name=election", "name=floods",
	} {
		if !strings.Contains(trace, name) {
			t.Errorf("trace lacks %s", name)
		}
	}
}
