package bfskel

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bfskel/internal/skeleton"
)

// LadderRung is one row of the scale ladder (see RunLadder).
type LadderRung = skeleton.LadderRung

// LadderConfig parameterises a scale-ladder run.
type LadderConfig struct {
	// Shape names the deployment field (default "window").
	Shape string
	// Sizes are the requested node counts, run in order (ascending keeps
	// the per-rung peak-RSS numbers meaningful).
	Sizes []int
	// TargetDeg is the average degree every rung is calibrated to
	// (default 7).
	TargetDeg float64
	// Seed is the deployment/link seed.
	Seed int64
	// Params are the extraction parameters; the zero value means
	// DefaultParams.
	Params Params
}

// RunLadder probes extraction capacity across network sizes: per rung it
// builds one field, runs one extraction, and records build/extract wall
// time, the per-stage breakdown, and the process peak RSS. A failing rung
// records its error and the ladder continues — capacity probes should
// report how far they got, not die at the first out-of-reach size.
func RunLadder(cfg LadderConfig) ([]LadderRung, error) {
	if cfg.Shape == "" {
		cfg.Shape = "window"
	}
	if cfg.TargetDeg == 0 {
		cfg.TargetDeg = 7
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	shape, err := ShapeByName(cfg.Shape)
	if err != nil {
		return nil, err
	}
	rungs := make([]LadderRung, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		rung := LadderRung{Shape: cfg.Shape, N: n}
		buildStart := time.Now() //lint:allow determinism LadderRung.BuildMs is wall-clock timing, not part of the result
		net, err := BuildNetwork(NetworkSpec{
			Shape: shape, N: n, TargetDeg: cfg.TargetDeg,
			Seed: cfg.Seed, Layout: LayoutGrid,
		})
		rung.BuildMs = float64(time.Since(buildStart)) / float64(time.Millisecond)
		if err != nil {
			rung.Err = fmt.Sprintf("build: %v", err)
			rungs = append(rungs, rung)
			continue
		}
		rung.Nodes = net.N()
		rung.AvgDeg = net.AvgDegree()
		extractStart := time.Now() //lint:allow determinism LadderRung.ExtractMs is wall-clock timing, not part of the result
		res, err := net.Extract(cfg.Params)
		rung.ExtractMs = float64(time.Since(extractStart)) / float64(time.Millisecond)
		rung.PeakRSSMB = PeakRSSMB()
		if err != nil {
			rung.Err = fmt.Sprintf("extract: %v", err)
			rungs = append(rungs, rung)
			continue
		}
		if st := res.Stats; st != nil {
			rung.Kernel = st.FloodKernel
			rung.StageMs = make(map[string]float64, len(st.Phases))
			for _, ph := range st.Phases {
				rung.StageMs[ph.Name] = float64(ph.Duration) / float64(time.Millisecond)
			}
		}
		rung.Sites = len(res.Sites)
		rung.SkelNodes = res.Skeleton.NumNodes()
		rungs = append(rungs, rung)
	}
	return rungs, nil
}

// PeakRSSMB returns the process peak resident set size in MiB (VmHWM from
// /proc/self/status), or 0 where the proc filesystem is unavailable.
func PeakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
