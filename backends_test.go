package bfskel

import (
	"strings"
	"testing"
)

// TestBackendsEmitUniformSpanShape pins the observability contract: every
// backend emits one root "extract" span (attribute backend=<name>) whose
// children are "stage.<name>" spans — the same shape the core engine
// established, now uniform across the registry.
func TestBackendsEmitUniformSpanShape(t *testing.T) {
	net := testNetwork(t, "window", 1200, 6.5, 1)
	for _, name := range []string{"bfskel", "map", "case", "localsep"} {
		sink := NewRingSink(0)
		_, _, err := ExtractBackend(net, name, BackendParams{Tracer: NewTracer(sink)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var roots, stages, other int
		for _, rec := range sink.Records() {
			if rec.Kind != TraceSpanStart {
				continue
			}
			switch {
			case rec.Name == "extract" && rec.Parent == 0:
				roots++
			case strings.HasPrefix(rec.Name, "stage."):
				stages++
			default:
				other++
			}
		}
		if roots != 1 {
			t.Errorf("%s: want exactly one root extract span, got %d", name, roots)
		}
		if stages == 0 {
			t.Errorf("%s: no stage.* child spans", name)
		}
		if other > 0 {
			t.Errorf("%s: %d spans outside the extract/stage.* shape", name, other)
		}
	}
}

// TestBackendsRegistered pins the registry contract: importing the facade
// links every built-in backend, visible in deterministic order.
func TestBackendsRegistered(t *testing.T) {
	got := Backends()
	want := []string{"bfskel", "case", "localsep", "map"}
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("backend %q not registered (got %v)", name, got)
		}
	}
	if len(got) < 4 {
		t.Errorf("want >= 4 backends, got %v", got)
	}
}

// TestBfskelBackendBitIdentical pins the tentpole's no-regression property:
// the "bfskel" backend is a pure wrapper, producing a Result bit-identical
// to a direct core engine run with the same parameters.
func TestBfskelBackendBitIdentical(t *testing.T) {
	net := testNetwork(t, "twoholes", 1500, 7.0, 1)
	direct, err := net.Extractor().Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := ExtractBackend(net, "bfskel", BackendParams{Core: DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Core == nil {
		t.Fatal("bfskel backend did not attach the native core result")
	}
	if got, want := fingerprint(res.Core), fingerprint(direct); got != want {
		t.Error("bfskel backend result differs from a direct core.Extractor run")
	}
	if stats == nil || stats != res.Stats {
		t.Error("returned Stats must alias Result.Stats")
	}
	if len(res.Nodes) != res.Skeleton.NumNodes() {
		t.Errorf("Nodes has %d entries, skeleton %d", len(res.Nodes), res.Skeleton.NumNodes())
	}
}

// TestCrossBackendScorecard runs the full backend matrix over the figure-8
// and spiral fields through the shared quality harness and sanity-checks
// every cell.
func TestCrossBackendScorecard(t *testing.T) {
	if testing.Short() {
		t.Skip("scorecard matrix in -short mode")
	}
	scenarios := []ScorecardScenario{
		{Name: "twoholes", Spec: NetworkSpec{Shape: MustShape("twoholes"), N: 1200, TargetDeg: 6.79, Seed: 1, Layout: LayoutGrid}},
		{Name: "spiral", Spec: NetworkSpec{Shape: MustShape("spiral"), N: 1200, TargetDeg: 9.6, Seed: 1, Layout: LayoutGrid}},
	}
	backends := []string{"bfskel", "map", "case", "localsep"}
	card, err := RunScorecard(scenarios, backends, ObsScope{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(scenarios) * len(backends); len(card.Scores) != want {
		t.Fatalf("want %d scores, got %d", want, len(card.Scores))
	}
	for _, s := range card.Scores {
		if s.Err != "" {
			t.Errorf("%s/%s failed: %s", s.Backend, s.Scenario, s.Err)
			continue
		}
		if s.Nodes == 0 {
			t.Errorf("%s/%s produced an empty skeleton", s.Backend, s.Scenario)
		}
		if s.MsPerOp <= 0 {
			t.Errorf("%s/%s has no cost measurement", s.Backend, s.Scenario)
		}
		if s.ClearanceRatio <= 0 {
			t.Errorf("%s/%s has no clearance ratio", s.Backend, s.Scenario)
		}
		if s.Backend == "bfskel" {
			if !s.HomotopyOK {
				t.Errorf("bfskel/%s lost homotopy: cycles=%d holes=%d comps=%d",
					s.Scenario, s.CycleRank, s.Holes, s.Components)
			}
			if s.MeanDistToRef != 0 || s.HausdorffToRef != 0 {
				t.Errorf("bfskel/%s should be at distance 0 from itself, got %v/%v",
					s.Scenario, s.MeanDistToRef, s.HausdorffToRef)
			}
		}
	}
}

// TestExtractBatchObsBackendRouting pins the batch path's per-item backend
// selection: empty means bfskel (bit-identical to the core pipeline), and
// baseline backends come back as synthesized core Results carrying their
// skeleton and stats.
func TestExtractBatchObsBackendRouting(t *testing.T) {
	net := testNetwork(t, "window", 1200, 6.5, 1)
	items := []BatchItem{
		{Network: net, Params: DefaultParams()},
		{Network: net, Params: DefaultParams(), Backend: "map"},
		{Network: net, Params: DefaultParams(), Backend: "localsep"},
	}
	results, err := ExtractBatchObs(items, ObsScope{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(items) {
		t.Fatalf("want %d results, got %d", len(items), len(results))
	}
	direct, err := net.Extractor().Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(results[0]), fingerprint(direct); got != want {
		t.Error("default-backend batch item differs from a direct core run")
	}
	for i, r := range results {
		if r.Skeleton == nil || r.Skeleton.NumNodes() == 0 {
			t.Errorf("item %d (%q): empty skeleton", i, items[i].Backend)
		}
		if r.Stats == nil || len(r.Stats.Phases) == 0 {
			t.Errorf("item %d (%q): missing stage stats", i, items[i].Backend)
		}
	}

	if _, err := ExtractBatchObs([]BatchItem{{Network: net, Backend: "nope"}}, ObsScope{}); err == nil {
		t.Error("unknown backend name did not error")
	}
}
