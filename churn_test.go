package bfskel

import (
	"testing"

	"bfskel/internal/core"
)

// TestChurnSessionFailDisk: a failure disk streamed through a ChurnSession
// patches the skeleton in place — the result matches a from-scratch
// extraction on the overlayed graph, IDs stay stable, and restoring the
// disk returns the network to its pre-failure skeleton.
func TestChurnSessionFailDisk(t *testing.T) {
	net := testNetwork(t, "onehole", 2500, 7, 1)
	p := DefaultParams()
	s, err := net.ChurnSession(p)
	if err != nil {
		t.Fatal(err)
	}
	seed := s.Result()
	preRank := seed.Skeleton.CycleRank()

	failed, res, err := s.FailDisk(Point{X: 80, Y: 20}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) < 30 {
		t.Fatalf("only %d nodes in the failure disk", len(failed))
	}
	for _, v := range failed {
		if s.Alive(v) {
			t.Fatalf("node %d still alive after FailDisk", v)
		}
	}
	if got := res.Skeleton.CycleRank(); got != preRank+1 {
		t.Errorf("post-failure rank = %d, want %d (hole grew a loop)", got, preRank+1)
	}
	// The patched result must equal a from-scratch extraction on the same
	// overlayed graph.
	want, err := core.Extract(net.Graph, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skeleton.CycleRank() != want.Skeleton.CycleRank() ||
		res.Skeleton.NumNodes() != want.Skeleton.NumNodes() {
		t.Fatalf("patched skeleton (%d nodes, rank %d) != from-scratch (%d nodes, rank %d)",
			res.Skeleton.NumNodes(), res.Skeleton.CycleRank(),
			want.Skeleton.NumNodes(), want.Skeleton.CycleRank())
	}

	// Restoring the disk returns to the pre-failure skeleton.
	back, err := s.Restore(failed)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Skeleton.CycleRank(); got != preRank {
		t.Errorf("post-restore rank = %d, want %d", got, preRank)
	}
	if u := s.LastUpdate(); u.Revived != len(failed) {
		t.Errorf("LastUpdate.Revived = %d, want %d", u.Revived, len(failed))
	}
}

// TestChurnSessionObs: updates through an instrumented session emit update
// spans and bfskel_update_* metrics.
func TestChurnSessionObs(t *testing.T) {
	net := testNetwork(t, "window", 900, 7, 3)
	ring := NewRingSink(4096)
	sc := ObsScope{Tracer: NewTracer(ring), Metrics: NewMetricsRegistry()}
	s, err := net.ChurnSessionObs(DefaultParams(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fail([]int32{3}); err != nil {
		t.Fatal(err)
	}
	var sawUpdate bool
	for _, rec := range ring.Records() {
		if rec.Name == "update" {
			sawUpdate = true
		}
	}
	if !sawUpdate {
		t.Error(`no "update" span recorded`)
	}
	snap := sc.Metrics.Snapshot()
	if snap.Counters["bfskel_update_runs_total"] < 1 {
		t.Errorf("bfskel_update_runs_total missing from snapshot: %+v", snap.Counters)
	}
}

// TestFailNodesReport: the report names the affected-node set — failed,
// disconnected and survivor IDs partition the original network.
func TestFailNodesReport(t *testing.T) {
	net := testNetwork(t, "star", 800, 7, 1)
	failed := NodesWithin(net, net.Points[0], 12)
	after, rep := FailNodesReport(net, failed)
	if len(rep.Failed) != len(failed) {
		t.Fatalf("report.Failed = %d ids, requested %d", len(rep.Failed), len(failed))
	}
	if len(rep.Survivors) != after.N() {
		t.Fatalf("report.Survivors = %d ids, survivor network has %d", len(rep.Survivors), after.N())
	}
	if got := len(rep.Failed) + len(rep.Disconnected) + len(rep.Survivors); got != net.N() {
		t.Fatalf("failed+disconnected+survivors = %d, want %d", got, net.N())
	}
	seen := make(map[int32]bool, net.N())
	for _, set := range [][]int32{rep.Failed, rep.Disconnected, rep.Survivors} {
		for i, v := range set {
			if seen[v] {
				t.Fatalf("node %d appears in two report sets", v)
			}
			seen[v] = true
			if i > 0 && set[i-1] >= v {
				t.Fatalf("report set not ascending at %d", v)
			}
		}
	}
	// Survivors carries the dense-ID mapping: positions must line up.
	for newID, oldID := range rep.Survivors {
		if after.Points[newID] != net.Points[oldID] {
			t.Fatalf("survivor %d: position mismatch with original %d", newID, oldID)
		}
	}
}
