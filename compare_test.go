package bfskel

import (
	"strings"
	"testing"
)

func TestCompareBenchCells(t *testing.T) {
	base := []BenchCell{
		{Key: "bfskel/window", Ms: 10, Allocs: 1000, Bytes: 100000},
		{Key: "map/window", Ms: 20, Allocs: 2000, Bytes: 200000},
		{Key: "case/window", Ms: 30, Allocs: 3000, Bytes: 300000},
		{Key: "gone/window", Ms: 5},
	}
	cur := []BenchCell{
		{Key: "bfskel/window", Ms: 11, Allocs: 1050, Bytes: 101000}, // within 30%
		{Key: "map/window", Ms: 30, Allocs: 2000, Bytes: 200000},    // ms +50% regression
		{Key: "case/window", Ms: 30, Allocs: 4500, Bytes: 300000},   // allocs +50% regression
		{Key: "fresh/window", Ms: 1},
	}
	d := CompareBenchCells(base, cur, "BENCH_test.json", 0.30)
	if len(d.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(d.Rows))
	}
	if d.Regressions != 2 {
		t.Errorf("regressions = %d, want 2", d.Regressions)
	}
	byKey := map[string]BenchDeltaRow{}
	for _, r := range d.Rows {
		byKey[r.Key] = r
	}
	if r := byKey["bfskel/window"]; len(r.Regressed) != 0 {
		t.Errorf("bfskel/window flagged: %v", r.Regressed)
	}
	if r := byKey["map/window"]; len(r.Regressed) != 1 || r.Regressed[0] != "ms" {
		t.Errorf("map/window regressed = %v, want [ms]", r.Regressed)
	}
	if r := byKey["case/window"]; len(r.Regressed) != 1 || r.Regressed[0] != "allocs" {
		t.Errorf("case/window regressed = %v, want [allocs]", r.Regressed)
	}
	if len(d.OnlyInBaseline) != 1 || d.OnlyInBaseline[0] != "gone/window" {
		t.Errorf("onlyInBaseline = %v", d.OnlyInBaseline)
	}
	if len(d.OnlyInCurrent) != 1 || d.OnlyInCurrent[0] != "fresh/window" {
		t.Errorf("onlyInCurrent = %v", d.OnlyInCurrent)
	}
	out := d.String()
	if !strings.Contains(out, "REGRESSION map/window") {
		t.Errorf("report missing REGRESSION line:\n%s", out)
	}
	if !strings.Contains(out, "2/3 rows regressed") {
		t.Errorf("report missing summary:\n%s", out)
	}
}

func TestCompareBenchNoiseFloor(t *testing.T) {
	// Sub-half-millisecond cells never flag on ms, whatever the ratio.
	d := CompareBenchCells(
		[]BenchCell{{Key: "k", Ms: 0.05}},
		[]BenchCell{{Key: "k", Ms: 0.4}},
		"b", 0.30)
	if d.Regressions != 0 {
		t.Errorf("noise-floor cell flagged: %+v", d.Rows)
	}
}

func TestParseBenchBaselineFormats(t *testing.T) {
	scorecard := `{"seed":1,"backends":["bfskel"],"scenarios":["window"],
		"scores":[{"backend":"bfskel","scenario":"window","msPerOp":6.8,"allocsPerOp":4699,"bytesPerOp":655504},
		          {"backend":"map","scenario":"window","err":"boom"}]}`
	cells, format, err := ParseBenchBaseline([]byte(scorecard))
	if err != nil || format != "scorecard" {
		t.Fatalf("scorecard parse: %v / %s", err, format)
	}
	if len(cells) != 1 || cells[0].Key != "bfskel/window" || cells[0].Allocs != 4699 {
		t.Errorf("scorecard cells = %+v", cells)
	}

	report := `{"seed":1,"figures":[{"figure":"complexity","rows":[
		{"Scenario":"window-n648","Stats":{"Phases":[
			{"Name":"identify","Duration":2000000,"BytesAlloc":1024},
			{"Name":"voronoi","Duration":1000000,"BytesAlloc":512}]}},
		{"Scenario":"nostats"}]}]}`
	cells, format, err = ParseBenchBaseline([]byte(report))
	if err != nil || format != "report" {
		t.Fatalf("report parse: %v / %s", err, format)
	}
	if len(cells) != 1 || cells[0].Key != "complexity/window-n648" {
		t.Fatalf("report cells = %+v", cells)
	}
	if cells[0].Ms != 3 || cells[0].Bytes != 1536 || cells[0].Allocs != 0 {
		t.Errorf("report cell values = %+v", cells[0])
	}

	if _, _, err := ParseBenchBaseline([]byte(`{"neither":true}`)); err == nil {
		t.Error("unknown format accepted")
	}
}
