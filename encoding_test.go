package bfskel

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNetworkRoundTrip: SaveNetwork + LoadNetwork restores the exact graph.
func TestNetworkRoundTrip(t *testing.T) {
	net := testNetwork(t, "smile", 1200, 7, 3)
	var buf bytes.Buffer
	if err := SaveNetwork(net, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != net.N() {
		t.Fatalf("N = %d, want %d", got.N(), net.N())
	}
	if got.Graph.NumEdges() != net.Graph.NumEdges() {
		t.Fatalf("edges = %d, want %d", got.Graph.NumEdges(), net.Graph.NumEdges())
	}
	for v := 0; v < net.N(); v++ {
		if got.Points[v] != net.Points[v] {
			t.Fatalf("point %d moved", v)
		}
		a, b := net.Graph.Neighbors(v), got.Graph.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d adjacency differs at %d", v, i)
			}
		}
	}
	// The restored network extracts the identical skeleton.
	want, err := net.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := got.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Skeleton.NumNodes() != want.Skeleton.NumNodes() ||
		res.Skeleton.CycleRank() != want.Skeleton.CycleRank() {
		t.Error("restored network extracts a different skeleton")
	}
}

// TestNetworkRoundTripModels: every radio model survives the round trip.
func TestNetworkRoundTripModels(t *testing.T) {
	for _, m := range []RadioModel{
		UDG{R: 3},
		QUDG{R: 3, Alpha: 0.4, P: 0.3},
		LogNormal{R: 3, Epsilon: 2},
	} {
		net, err := BuildNetwork(NetworkSpec{
			Shape: MustShape("star"), N: 400, Seed: 1, Layout: LayoutGrid, Radio: m,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveNetwork(net, &buf); err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, err := LoadNetwork(&buf)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if got.Radio.String() != net.Radio.String() {
			t.Errorf("radio %v restored as %v", net.Radio, got.Radio)
		}
	}
}

func TestLoadNetworkErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"shape":"nope","radio":{"kind":"udg","r":1},"points":[],"edges":[]}`,
		`{"shape":"star","radio":{"kind":"warp","r":1},"points":[],"edges":[]}`,
		`{"shape":"star","radio":{"kind":"udg","r":1},"points":[[0,0]],"edges":[[0,5]]}`,
	}
	for i, c := range cases {
		if _, err := LoadNetwork(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

// TestWriteResultJSON: the export carries a consistent skeleton structure.
func TestWriteResultJSON(t *testing.T) {
	net := testNetwork(t, "onehole", 1200, 7, 1)
	res, err := net.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResultJSON(net, res, &buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Sites         []int32    `json:"sites"`
		SkeletonNodes []int32    `json:"skeletonNodes"`
		SkeletonEdges [][2]int32 `json:"skeletonEdges"`
		CycleRank     int        `json:"cycleRank"`
		CellOf        []int32    `json:"cellOf"`
		Positions     [][2]float64
		Loops         []struct {
			Kind string `json:"kind"`
		} `json:"loops"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Sites) != len(res.Sites) {
		t.Errorf("sites = %d", len(out.Sites))
	}
	if len(out.SkeletonNodes) != res.Skeleton.NumNodes() {
		t.Errorf("skeleton nodes = %d", len(out.SkeletonNodes))
	}
	if len(out.SkeletonEdges) != res.Skeleton.NumEdges() {
		t.Errorf("skeleton edges = %d, want %d", len(out.SkeletonEdges), res.Skeleton.NumEdges())
	}
	if out.CycleRank != 1 {
		t.Errorf("cycle rank = %d", out.CycleRank)
	}
	if len(out.CellOf) != net.N() || len(out.Positions) != net.N() {
		t.Error("per-node arrays wrong length")
	}
	for _, l := range out.Loops {
		if l.Kind != "genuine" && l.Kind != "fake" {
			t.Errorf("loop kind %q", l.Kind)
		}
	}
	// Without a network, positions are omitted.
	buf.Reset()
	if err := WriteResultJSON(nil, res, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "positions") {
		t.Error("positions present without a network")
	}
}
