package bfskel

// Failure injection: the paper notes that skeleton loops may be caused by
// "obstacles (or nodes failure, etc.) in the sensing field". These helpers
// simulate such events — regions of dead sensors — so the pipeline's
// adaptation can be exercised: a failed disk inside a solid region becomes
// a hole, and re-extraction grows a new genuine loop around it.
//
// One-shot rebuilds go through FailNodesReport / FailNodes; streams of
// failure batches against one network go through ChurnSession (churn.go),
// which keeps node IDs stable and repairs the skeleton incrementally.

// NodesWithin returns the IDs of nodes within the given distance of a
// point.
func NodesWithin(net *Network, center Point, radius float64) []int32 {
	r2 := radius * radius
	var out []int32
	for v, p := range net.Points {
		if p.Dist2(center) <= r2 {
			out = append(out, int32(v))
		}
	}
	return out
}

// FailureReport names exactly which nodes a failure event affected, all in
// the original network's IDs. Failed∪Disconnected and Survivors partition
// the original node set.
type FailureReport struct {
	// Failed lists the requested nodes that existed and were removed,
	// ascending and de-duplicated.
	Failed []int32
	// Disconnected lists survivors that were additionally dropped because
	// the failures cut them off from the largest remaining component
	// (empty when Spec.KeepWholeGraph is set), ascending.
	Disconnected []int32
	// Survivors maps the returned network's dense IDs back to the
	// original ones: Survivors[newID] = oldID, ascending.
	Survivors []int32
}

// FailNodesReport returns a new network with the given nodes removed plus a
// report of the affected-node set. Survivors keep their positions and
// surviving links, restricted to the largest connected component (dead
// nodes cannot forward messages, so the network the protocol sees is
// exactly this) unless Spec.KeepWholeGraph is set. Node IDs are re-assigned
// densely; FailureReport.Survivors carries the mapping.
func FailNodesReport(net *Network, failed []int32) (*Network, *FailureReport) {
	dead := make(map[int32]bool, len(failed))
	for _, v := range failed {
		if v >= 0 && int(v) < net.N() {
			dead[v] = true
		}
	}
	rep := &FailureReport{}
	var keep []int32
	for v := 0; v < net.N(); v++ {
		if dead[int32(v)] {
			rep.Failed = append(rep.Failed, int32(v))
		} else {
			keep = append(keep, int32(v))
		}
	}
	sub, orig := net.Graph.Subgraph(keep)
	pts := make([]Point, len(orig))
	for i, v := range orig {
		pts[i] = net.Points[v]
	}
	survivor := &Network{Spec: net.Spec, Points: pts, Graph: sub, Radio: net.Radio}
	if !net.Spec.KeepWholeGraph {
		comp := sub.LargestComponent()
		if len(comp) < sub.N() {
			inComp := make([]bool, sub.N())
			for _, v := range comp {
				inComp[v] = true
			}
			for v := 0; v < sub.N(); v++ {
				if !inComp[v] {
					rep.Disconnected = append(rep.Disconnected, orig[v])
				}
			}
			sub2, orig2 := sub.Subgraph(comp)
			pts2 := make([]Point, len(orig2))
			final := make([]int32, len(orig2))
			for i, v := range orig2 {
				pts2[i] = pts[v]
				final[i] = orig[v]
			}
			survivor = &Network{Spec: net.Spec, Points: pts2, Graph: sub2, Radio: net.Radio}
			orig = final
		}
	}
	rep.Survivors = orig
	return survivor, rep
}

// FailNodes is FailNodesReport without the report, kept for callers that
// only need the surviving network.
func FailNodes(net *Network, failed []int32) *Network {
	survivor, _ := FailNodesReport(net, failed)
	return survivor
}
