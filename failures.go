package bfskel

// Failure injection: the paper notes that skeleton loops may be caused by
// "obstacles (or nodes failure, etc.) in the sensing field". These helpers
// simulate such events — regions of dead sensors — so the pipeline's
// adaptation can be exercised: a failed disk inside a solid region becomes
// a hole, and re-extraction grows a new genuine loop around it.

// NodesWithin returns the IDs of nodes within the given distance of a
// point.
func NodesWithin(net *Network, center Point, radius float64) []int32 {
	r2 := radius * radius
	var out []int32
	for v, p := range net.Points {
		if p.Dist2(center) <= r2 {
			out = append(out, int32(v))
		}
	}
	return out
}

// FailNodes returns a new network with the given nodes removed — the
// survivors keep their positions and surviving links, restricted to the
// largest connected component (dead nodes cannot forward messages, so the
// network the protocol sees is exactly this). Node IDs are re-assigned
// densely; the mapping is the order of surviving original IDs.
func FailNodes(net *Network, failed []int32) *Network {
	dead := make(map[int32]bool, len(failed))
	for _, v := range failed {
		dead[v] = true
	}
	var keep []int32
	for v := 0; v < net.N(); v++ {
		if !dead[int32(v)] {
			keep = append(keep, int32(v))
		}
	}
	sub, orig := net.Graph.Subgraph(keep)
	pts := make([]Point, len(orig))
	for i, v := range orig {
		pts[i] = net.Points[v]
	}
	survivor := &Network{Spec: net.Spec, Points: pts, Graph: sub, Radio: net.Radio}
	if !net.Spec.KeepWholeGraph {
		survivor = survivor.largestComponent()
	}
	return survivor
}
