package bfskel

import (
	"bfskel/internal/core"
)

// Churn types re-exported from the incremental engine.
type (
	// IncrementalExtractor is the delta extraction engine behind
	// ChurnSession: it repairs the Voronoi partition, re-elects landmarks
	// and splices the skeleton inside the churn-dirtied region only,
	// falling back to a full extraction when the dirty fraction exceeds
	// Params.DirtyFallback. Every result is bit-identical to a
	// from-scratch extraction on the mutated graph.
	IncrementalExtractor = core.IncrementalExtractor
	// UpdateStats describes one incremental update: churn sizes, dirty
	// region, repair effort, fallback outcome and wall time.
	UpdateStats = core.UpdateStats
)

// ChurnSession streams failure and recovery batches through the
// incremental extraction path. Opening a session freezes the network's
// graph and switches it into overlay mode: nodes die and revive in place,
// IDs stay stable (so NodesWithin keeps working mid-session), and each
// batch yields a freshly patched Result without re-running the full
// pipeline. Contrast with FailNodesReport, which rebuilds a re-numbered
// network per event.
//
// The session owns the graph's mutation rights: while it is open, mutate
// the network only through Fail/Restore/Step. Sessions are not safe for
// concurrent use.
type ChurnSession struct {
	net *Network
	ix  *core.IncrementalExtractor
}

// ChurnSession opens an incremental extraction session on the network and
// runs the seed extraction. See the ChurnSession type for the graph
// ownership rules.
func (n *Network) ChurnSession(p Params) (*ChurnSession, error) {
	return n.ChurnSessionObs(p, ObsScope{})
}

// ChurnSessionObs is ChurnSession with the scope's tracer and metrics
// attached before the seed extraction: the initial run and every update
// emit spans ("extract", "update") and accumulate bfskel_update_* metrics.
func (n *Network) ChurnSessionObs(p Params, sc ObsScope) (*ChurnSession, error) {
	ix, err := core.NewIncrementalExtractorObs(n.Graph, p, sc.Tracer, sc.Metrics)
	if err != nil {
		return nil, err
	}
	return &ChurnSession{net: n, ix: ix}, nil
}

// Step applies one churn batch — failures then recoveries — and returns
// the patched extraction result. Unknown or already-matching IDs are
// ignored; an empty batch returns the previous result untouched.
func (s *ChurnSession) Step(fail, restore []int32) (*Result, error) {
	return s.ix.Update(fail, restore)
}

// Fail kills the given nodes and returns the patched result.
func (s *ChurnSession) Fail(nodes []int32) (*Result, error) {
	return s.ix.Update(nodes, nil)
}

// Restore revives the given (currently dead) nodes and returns the
// patched result.
func (s *ChurnSession) Restore(nodes []int32) (*Result, error) {
	return s.ix.Update(nil, nodes)
}

// FailDisk kills every node within radius of center — the paper's
// "nodes failure" hole-forming event — returning the affected IDs and the
// patched result.
func (s *ChurnSession) FailDisk(center Point, radius float64) ([]int32, *Result, error) {
	nodes := NodesWithin(s.net, center, radius)
	res, err := s.ix.Update(nodes, nil)
	return nodes, res, err
}

// Result returns the current extraction result (the seed extraction's
// until the first Step).
func (s *ChurnSession) Result() *Result { return s.ix.Result() }

// LastUpdate reports statistics for the most recent Step.
func (s *ChurnSession) LastUpdate() UpdateStats { return s.ix.LastUpdate() }

// Network returns the session's network. Its graph reflects the current
// overlay state: dead nodes are excluded from adjacency but keep their
// IDs and positions.
func (s *ChurnSession) Network() *Network { return s.net }

// Alive reports whether a node is currently alive in the session.
func (s *ChurnSession) Alive(v int32) bool { return s.net.Graph.Alive(v) }
