package bfskel

import "testing"

// TestSmokeWindow runs the full pipeline on the paper's Fig. 1 network and
// checks the headline invariants: a non-trivial connected skeleton whose
// cycle rank equals the number of holes (homotopy preservation).
func TestSmokeWindow(t *testing.T) {
	net, err := BuildNetwork(NetworkSpec{
		Shape:     MustShape("window"),
		N:         2592,
		TargetDeg: 5.96,
		Seed:      1,
		Layout:    LayoutGrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d avg.deg=%.2f", net.N(), net.AvgDegree())
	res, err := net.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sites=%d segment=%d voronoi=%d edges=%d", len(res.Sites), len(res.SegmentNodes), len(res.VoronoiNodes), len(res.Edges))
	t.Logf("coarse: nodes=%d edges=%d rank=%d comps=%d", res.Coarse.NumNodes(), res.Coarse.NumEdges(), res.Coarse.CycleRank(), res.Coarse.Components())
	t.Logf("final:  nodes=%d edges=%d rank=%d comps=%d", res.Skeleton.NumNodes(), res.Skeleton.NumEdges(), res.Skeleton.CycleRank(), res.Skeleton.Components())
	t.Logf("loops: %d fake, %d genuine", res.NumFakeLoops(), res.NumGenuineLoops())
	if res.Skeleton.NumNodes() == 0 {
		t.Fatal("empty skeleton")
	}
	wantHoles := MustShape("window").Holes()
	if got := res.Skeleton.CycleRank(); got != wantHoles {
		t.Errorf("cycle rank = %d, want %d (homotopy)", got, wantHoles)
	}
	if comps := res.Skeleton.Components(); comps != 1 {
		t.Errorf("skeleton components = %d, want 1", comps)
	}
}

// TestFig1Regression pins the exact headline numbers of the Fig. 1
// reproduction. These values are deterministic for (seed 1, jittered grid,
// default params); a change here means the pipeline's behaviour changed —
// update deliberately, alongside EXPERIMENTS.md.
func TestFig1Regression(t *testing.T) {
	net, res, err := RunScenario(Fig1Scenario(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 2594 {
		t.Errorf("n = %d, want 2594", net.N())
	}
	if len(res.Sites) != 22 {
		t.Errorf("sites = %d, want 22", len(res.Sites))
	}
	if res.Skeleton.NumNodes() != 283 {
		t.Errorf("skeleton nodes = %d, want 283", res.Skeleton.NumNodes())
	}
	if res.Skeleton.CycleRank() != 4 {
		t.Errorf("cycle rank = %d, want 4", res.Skeleton.CycleRank())
	}
	if res.NumFakeLoops() != 3 || res.NumGenuineLoops() != 4 {
		t.Errorf("loops = %d fake / %d genuine, want 3/4", res.NumFakeLoops(), res.NumGenuineLoops())
	}
}
