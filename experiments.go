package bfskel

import (
	"fmt"
	"sort"
	"sync"

	"bfskel/internal/obs"
)

// Scenario is one experiment configuration, typically taken from the
// paper's evaluation section.
type Scenario struct {
	// Figure tags the paper figure the scenario reproduces.
	Figure string
	// Name labels the row.
	Name string
	// ShapeName selects the deployment field.
	ShapeName string
	// N is the deployed node count; Deg the target average degree.
	N   int
	Deg float64
	// RadioKind selects "udg" (default), "qudg" or "lognormal".
	RadioKind string
	// QAlpha/QP parameterise QUDG; Eps parameterises log-normal. For
	// log-normal the base range is fixed at the UDG calibration for Deg
	// (the paper's Fig. 7 construction) and the measured degree rises
	// with Eps.
	QAlpha, QP, Eps float64
	// Accept optionally skews the deployment (Fig. 8).
	Accept func(Point) float64
	// Params overrides; zero means DefaultParams.
	Params Params
}

// ExperimentRow is one measured line of a figure reproduction.
type ExperimentRow struct {
	Figure   string
	Scenario string
	// Network facts.
	N      int
	AvgDeg float64
	// Pipeline facts.
	Sites     int
	SkelNodes int
	Cycles    int
	Holes     int
	Homotopy  bool
	// Quality metrics (field units; ratios dimensionless).
	ClearanceRatio   float64
	MedialCoverage   float64
	MeanDistToMedial float64
	// Stability vs. the figure's reference run (0 for the reference).
	Stability float64
	// Distributed cost (complexity experiment only).
	Messages, Rounds int
	// Notes carries experiment-specific extras.
	Notes string
	// Stats carries the extraction run's per-phase instrumentation (nil
	// for rows not produced by the staged engine, e.g. baselines).
	Stats *Stats `json:",omitempty"`
}

// String renders the row for the text harness.
func (r ExperimentRow) String() string {
	s := fmt.Sprintf("%-11s %-22s n=%-5d deg=%-5.2f sites=%-3d skel=%-4d cycles=%d/%d homotopy=%-5v clr=%.2f cov=%.2f dmed=%.2f",
		r.Figure, r.Scenario, r.N, r.AvgDeg, r.Sites, r.SkelNodes, r.Cycles, r.Holes, r.Homotopy,
		r.ClearanceRatio, r.MedialCoverage, r.MeanDistToMedial)
	if r.Stability > 0 {
		s += fmt.Sprintf(" stab=%.2f", r.Stability)
	}
	if r.Messages > 0 {
		s += fmt.Sprintf(" msgs=%d rounds=%d", r.Messages, r.Rounds)
	}
	if r.Notes != "" {
		s += " " + r.Notes
	}
	return s
}

// Fig4Scenarios are the ten fields of paper Fig. 4 with their published
// node counts and average degrees.
func Fig4Scenarios() []Scenario {
	mk := func(name, shape string, n int, deg float64) Scenario {
		return Scenario{Figure: "fig4", Name: name, ShapeName: shape, N: n, Deg: deg}
	}
	return []Scenario{
		mk("a-onehole", "onehole", 2734, 6.54),
		mk("b-flower", "flower", 2422, 5.75),
		mk("c-smile", "smile", 2924, 6.35),
		mk("d-music", "music", 1301, 6.5),
		mk("e-airplane", "airplane", 2157, 7.86),
		mk("f-cactus", "cactus", 2172, 6.70),
		mk("g-starhole", "starhole", 2893, 8.99),
		mk("h-spiral", "spiral", 2812, 9.60),
		mk("i-twoholes", "twoholes", 3346, 6.79),
		mk("j-star", "star", 1394, 6.59),
	}
}

// Fig1Scenario is the Window network of paper Fig. 1.
func Fig1Scenario() Scenario {
	return Scenario{Figure: "fig1", Name: "window", ShapeName: "window", N: 2592, Deg: 5.96}
}

// Fig5Degrees are the density-sweep average degrees of paper Fig. 5.
func Fig5Degrees() []float64 { return []float64{9.95, 14.24, 19.23, 22.72} }

// Fig7Epsilons are the log-normal epsilon values of paper Fig. 7.
func Fig7Epsilons() []float64 { return []float64{0, 1, 2, 3} }

// BuildScenario realises a scenario's network (jittered-grid layout — see
// DESIGN.md's substitution note: uniform deployments fragment below average
// degree ~7 under UDG, whereas the paper's networks are connected).
func BuildScenario(sc Scenario, seed int64) (*Network, error) {
	shape, err := ShapeByName(sc.ShapeName)
	if err != nil {
		return nil, err
	}
	spec := NetworkSpec{
		Shape:     shape,
		N:         sc.N,
		TargetDeg: sc.Deg,
		Seed:      seed,
		Layout:    LayoutGrid,
		Accept:    sc.Accept,
	}
	switch sc.RadioKind {
	case "", "udg":
	case "qudg":
		r := RadioRangeForDegree(shape.Poly.Area(), sc.N, sc.Deg)
		spec.Radio = QUDG{R: r, Alpha: sc.QAlpha, P: sc.QP}
	case "lognormal":
		// Calibrate a UDG range for Deg, then fix it and let the tail grow
		// the degree (paper Fig. 7 construction).
		probe, err := BuildNetwork(NetworkSpec{Shape: shape, N: sc.N, TargetDeg: sc.Deg, Seed: seed, Layout: LayoutGrid})
		if err != nil {
			return nil, err
		}
		udg, ok := probe.Radio.(UDG)
		if !ok {
			return nil, fmt.Errorf("probe radio is %T, want UDG", probe.Radio)
		}
		spec.Radio = LogNormal{R: udg.R, Epsilon: sc.Eps}
		spec.TargetDeg = 0
	default:
		return nil, fmt.Errorf("unknown radio kind %q", sc.RadioKind)
	}
	return BuildNetwork(spec)
}

// RunScenario builds the network and extracts the skeleton.
func RunScenario(sc Scenario, seed int64) (*Network, *Result, error) {
	return RunScenarioObs(sc, seed, ObsScope{})
}

// RunScenarioObs is RunScenario with the scope's tracer and metrics
// attached to the extraction engine (one "extract" span tree per run).
func RunScenarioObs(sc Scenario, seed int64, ob ObsScope) (*Network, *Result, error) {
	net, err := BuildScenario(sc, seed)
	if err != nil {
		return nil, nil, err
	}
	params := sc.Params
	if params.K == 0 {
		params = DefaultParams()
	}
	res, err := net.ExtractorObs(ob).Extract(params)
	if err != nil {
		return net, nil, fmt.Errorf("extract %s: %w", sc.Name, err)
	}
	return net, res, nil
}

// medialCache holds the expensive ground-truth medial axes, one per shape.
var medialCache sync.Map // string -> []MedialPoint

// cachedMedial returns the ground-truth medial axis for a shape.
func cachedMedial(name string) []MedialPoint {
	if v, ok := medialCache.Load(name); ok {
		if pts, ok := v.([]MedialPoint); ok {
			return pts
		}
	}
	pts := GroundTruthMedialAxis(MustShape(name))
	medialCache.Store(name, pts)
	return pts
}

// rowFor evaluates one finished run into a row.
func rowFor(sc Scenario, net *Network, res *Result) ExperimentRow {
	rep := Evaluate(net, res, cachedMedial(sc.ShapeName), 0)
	clr := 0.0
	if rep.NetworkClearance > 0 {
		clr = rep.MeanClearance / rep.NetworkClearance
	}
	return ExperimentRow{
		Figure:           sc.Figure,
		Scenario:         sc.Name,
		N:                net.N(),
		AvgDeg:           net.AvgDegree(),
		Sites:            len(res.Sites),
		SkelNodes:        rep.Nodes,
		Cycles:           rep.CycleRank,
		Holes:            rep.Holes,
		Homotopy:         rep.HomotopyOK,
		ClearanceRatio:   clr,
		MedialCoverage:   rep.MedialCoverage,
		MeanDistToMedial: rep.MeanDistToMedial,
		Stats:            res.Stats,
	}
}

// RunFigure reproduces one experiment (see DESIGN.md's experiment index)
// and returns its measured rows. Known figures: fig1, fig3, fig4, fig5,
// fig6, fig7, fig8, complexity, params, baselines, routing.
func RunFigure(figure string, seed int64) ([]ExperimentRow, error) {
	return RunFigureObs(figure, seed, ObsScope{})
}

// RunFigureObs is RunFigure with observability: the whole experiment runs
// inside a "figure" span, every extraction emits its stage spans, and the
// complexity experiment runs its distributed phases with per-round and
// per-node recording.
func RunFigureObs(figure string, seed int64, ob ObsScope) (rows []ExperimentRow, err error) {
	span := ob.Tracer.StartSpan("figure", obs.Str("figure", figure), obs.Int64("seed", seed))
	defer func() {
		if err != nil {
			span.End(obs.Str("error", err.Error()))
			return
		}
		span.End(obs.Int("rows", len(rows)))
	}()
	switch figure {
	case "fig1":
		return runFig1(seed, ob)
	case "fig3":
		return runFig3(seed, ob)
	case "fig4":
		return runFig4(seed, ob)
	case "fig5":
		return runFig5(seed, ob)
	case "fig6":
		return runFig6(seed, ob)
	case "fig7":
		return runFig7(seed, ob)
	case "fig8":
		return runFig8(seed, ob)
	case "complexity":
		return runComplexity(seed, ob)
	case "params":
		return runParams(seed, ob)
	case "baselines":
		return runBaselines(seed, ob)
	case "routing":
		return runRouting(seed, ob)
	case "ablation":
		return runAblation(seed, ob)
	default:
		return nil, fmt.Errorf("unknown figure %q (known: %v)", figure, FigureNames())
	}
}

// FigureNames lists the implemented experiments.
func FigureNames() []string {
	names := []string{
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"complexity", "params", "baselines", "routing", "ablation",
	}
	sort.Strings(names)
	return names
}

func runFig1(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	sc := Fig1Scenario()
	net, res, err := RunScenarioObs(sc, seed, ob)
	if err != nil {
		return nil, err
	}
	row := rowFor(sc, net, res)
	row.Notes = fmt.Sprintf("segment=%d voronoi=%d fake=%d genuine=%d",
		len(res.SegmentNodes), len(res.VoronoiNodes), res.NumFakeLoops(), res.NumGenuineLoops())
	return []ExperimentRow{row}, nil
}

func runFig3(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	sc := Fig1Scenario()
	sc.Figure = "fig3"
	net, res, err := RunScenarioObs(sc, seed, ob)
	if err != nil {
		return nil, err
	}
	seg := EvaluateSegmentation(res)
	prec, rec := BoundaryPrecisionRecall(net, res.Boundary, 0)
	row := rowFor(sc, net, res)
	row.Notes = fmt.Sprintf("cells=%d balance=%.2f assigned=%.2f boundaryP=%.2f boundaryR=%.2f",
		seg.Cells, seg.Balance, seg.Assigned, prec, rec)
	return []ExperimentRow{row}, nil
}

func runFig4(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	var rows []ExperimentRow
	for _, sc := range Fig4Scenarios() {
		net, res, err := RunScenarioObs(sc, seed, ob)
		if err != nil {
			return rows, err
		}
		rows = append(rows, rowFor(sc, net, res))
	}
	return rows, nil
}

func runFig5(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	ref := Fig1Scenario()
	ref.Figure = "fig5"
	refNet, refRes, err := RunScenarioObs(ref, seed, ob)
	if err != nil {
		return nil, err
	}
	refRow := rowFor(ref, refNet, refRes)
	refRow.Scenario = "window-5.96-ref"
	rows := []ExperimentRow{refRow}
	for _, deg := range Fig5Degrees() {
		sc := ref
		sc.Deg = deg
		sc.Name = fmt.Sprintf("window-%.2f", deg)
		net, res, err := RunScenarioObs(sc, seed, ob)
		if err != nil {
			return rows, err
		}
		row := rowFor(sc, net, res)
		row.Stability = SkeletonStability(refNet, refRes, net, res)
		rows = append(rows, row)
	}
	return rows, nil
}

func runFig6(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	// QUDG alpha=0.4, p=0.3, range enlarged so the network stays overall
	// connected (the paper's setting); target degree ~8.3 realises that.
	mk := func(name, shape string, n int) Scenario {
		return Scenario{
			Figure: "fig6", Name: name, ShapeName: shape, N: n, Deg: 8.3,
			RadioKind: "qudg", QAlpha: 0.4, QP: 0.3,
		}
	}
	var rows []ExperimentRow
	for _, sc := range []Scenario{
		mk("a-window-qudg", "window", 2592),
		mk("b-star-qudg", "star", 1394),
	} {
		net, res, err := RunScenarioObs(sc, seed, ob)
		if err != nil {
			return rows, err
		}
		rows = append(rows, rowFor(sc, net, res))
	}
	return rows, nil
}

func runFig7(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	var rows []ExperimentRow
	for _, eps := range Fig7Epsilons() {
		sc := Scenario{
			Figure: "fig7", Name: fmt.Sprintf("window-eps%.0f", eps),
			ShapeName: "window", N: 2592, Deg: 5.19,
			RadioKind: "lognormal", Eps: eps,
		}
		net, res, err := RunScenarioObs(sc, seed, ob)
		if err != nil {
			return rows, err
		}
		rows = append(rows, rowFor(sc, net, res))
	}
	return rows, nil
}

func runFig8(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	window := MustShape("window")
	star := MustShape("star")
	scs := []Scenario{
		{
			Figure: "fig8", Name: "a-window-gradient", ShapeName: "window",
			N: 2592, Deg: 8.15,
			Accept: verticalGradient(window.Poly.Bounds(), 0.45, 1.0),
		},
		{
			Figure: "fig8", Name: "b-star-halfplane", ShapeName: "star",
			N: 1394, Deg: 7.16,
			Accept: halfPlane(star.Poly.Bounds(), 0.65, 1.0),
		},
	}
	var rows []ExperimentRow
	for _, sc := range scs {
		net, res, err := RunScenarioObs(sc, seed, ob)
		if err != nil {
			return rows, err
		}
		rows = append(rows, rowFor(sc, net, res))
	}
	return rows, nil
}

// verticalGradient mirrors deploy.VerticalGradient at facade level.
func verticalGradient(b Rect, bottomProb, topProb float64) func(Point) float64 {
	span := b.Max.Y - b.Min.Y
	return func(p Point) float64 {
		t := (p.Y - b.Min.Y) / span
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return bottomProb + t*(topProb-bottomProb)
	}
}

// halfPlane mirrors deploy.HalfPlane at facade level.
func halfPlane(b Rect, leftProb, rightProb float64) func(Point) float64 {
	split := (b.Min.X + b.Max.X) / 2
	return func(p Point) float64 {
		if p.X < split {
			return leftProb
		}
		return rightProb
	}
}

func runComplexity(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	var rows []ExperimentRow
	for _, n := range []int{648, 1296, 2592, 5184} {
		sc := Scenario{Figure: "complexity", Name: fmt.Sprintf("window-n%d", n), ShapeName: "window", N: n, Deg: 7}
		net, res, err := RunScenarioObs(sc, seed, ob)
		if err != nil {
			return rows, err
		}
		dres, err := RunProtocolPhasesObs(net, res.EffectiveK, res.Params.L, res.EffectiveScope, res.Params.Alpha,
			ProtocolOptions{
				Tracer:        ob.Tracer,
				Metrics:       ob.Metrics,
				RecordRounds:  ob.Tracer != nil || ob.Metrics != nil,
				RecordPerNode: ob.Tracer != nil,
			})
		if err != nil {
			return rows, err
		}
		row := rowFor(sc, net, res)
		row.Messages = dres.TotalMessages()
		row.Rounds = dres.TotalRounds()
		bound := (res.Params.K + res.Params.L + 1) * net.N()
		row.Notes = fmt.Sprintf("msgs/(k+l+1)n=%.2f", float64(row.Messages)/float64(bound))
		rows = append(rows, row)
	}
	return rows, nil
}

func runParams(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	// One Fig. 1 network serves every parameter point (the deployment does
	// not depend on K/L), so the sweep runs as a batch over one pooled
	// extraction engine.
	base := Fig1Scenario()
	base.Figure = "params"
	net, err := BuildScenario(base, seed)
	if err != nil {
		return nil, err
	}
	kls := []int{2, 3, 4, 5, 6}
	scs := make([]Scenario, len(kls))
	items := make([]BatchItem, len(kls))
	for i, kl := range kls {
		sc := base
		sc.Name = fmt.Sprintf("window-k%d-l%d", kl, kl)
		params := DefaultParams()
		params.K, params.L = kl, kl
		sc.Params = params
		scs[i] = sc
		items[i] = BatchItem{Network: net, Params: params}
	}
	results, err := ExtractBatchObs(items, ob)
	if err != nil {
		return nil, err
	}
	rows := make([]ExperimentRow, len(results))
	for i, res := range results {
		rows[i] = rowFor(scs[i], net, res)
	}
	return rows, nil
}

func runBaselines(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	sc := Fig1Scenario()
	sc.Figure = "baselines"
	net, res, err := RunScenarioObs(sc, seed, ob)
	if err != nil {
		return nil, err
	}
	medial := cachedMedial(sc.ShapeName)
	rows := []ExperimentRow{rowFor(sc, net, res)}
	rows[0].Scenario = "ours-boundary-free"

	// Every alternative runs through the backend registry: the boundary
	// consumers share the detected substrate via a static provider, and the
	// boundary-free local-separator backend rides the same seam.
	b := DetectBoundary(net)
	bp := BackendParams{Boundary: StaticBoundary(b), Tracer: ob.Tracer, Metrics: ob.Metrics}
	var mres *MAPResult
	var cres *CASEResult
	for _, entry := range []struct {
		backend string
		name    string
	}{
		{"map", "map-known-boundary"},
		{"case", "case-known-boundary"},
		{"localsep", "localsep-boundary-free"},
	} {
		bres, _, err := ExtractBackend(net, entry.backend, bp)
		if err != nil {
			return nil, err
		}
		switch native := bres.Native.(type) {
		case *MAPResult:
			mres = native
		case *CASEResult:
			cres = native
		}
		rep := Evaluate(net, &Result{Skeleton: bres.Skeleton, CellOf: res.CellOf}, medial, 0)
		clr := 0.0
		if rep.NetworkClearance > 0 {
			clr = rep.MeanClearance / rep.NetworkClearance
		}
		rows = append(rows, ExperimentRow{
			Figure: "baselines", Scenario: entry.name,
			N: net.N(), AvgDeg: net.AvgDegree(),
			SkelNodes: rep.Nodes, Cycles: rep.CycleRank, Holes: rep.Holes,
			ClearanceRatio: clr, MedialCoverage: rep.MedialCoverage,
			MeanDistToMedial: rep.MeanDistToMedial,
		})
	}

	// Noise sensitivity: promote interior nodes to fake boundary nodes and
	// measure medial-set inflation (the paper's criticism of MAP).
	noisy := DetectBoundary(net)
	// Noise nodes go at half the field's maximum clearance, i.e. well off
	// the real boundary.
	maxClear := 0.0
	for v := 0; v < net.N(); v++ {
		if c := net.Spec.Shape.Poly.BoundaryDist(net.Points[v]); c > maxClear {
			maxClear = c
		}
	}
	added := 0
	for v := 0; v < net.N() && added < 8; v++ {
		if !noisy.IsBoundary[v] && net.Spec.Shape.Poly.BoundaryDist(net.Points[v]) > maxClear/2 {
			noisy.IsBoundary[v] = true
			noisy.Nodes = append(noisy.Nodes, int32(v))
			noisy.Cycles = append(noisy.Cycles, []int32{int32(v)})
			added++
		}
	}
	mNoisy := RunMAP(net, noisy)
	cNoisy := RunCASE(net, noisy)
	rows = append(rows, ExperimentRow{
		Figure: "baselines", Scenario: "noise-inflation",
		N: net.N(), AvgDeg: net.AvgDegree(),
		Notes: fmt.Sprintf("map %d->%d nodes (+%.0f%%), case %d->%d (+%.0f%%), ours unaffected (no boundary input)",
			len(mres.MedialNodes), len(mNoisy.MedialNodes),
			inflation(len(mres.MedialNodes), len(mNoisy.MedialNodes)),
			len(cres.SkeletonNodes), len(cNoisy.SkeletonNodes),
			inflation(len(cres.SkeletonNodes), len(cNoisy.SkeletonNodes))),
	})
	return rows, nil
}

func inflation(before, after int) float64 {
	if before == 0 {
		return 0
	}
	return 100 * float64(after-before) / float64(before)
}

// runAblation isolates the implementation's design knobs (DESIGN.md's
// per-experiment index): the segment-node slack Alpha, the local-maximum
// scope, and branch pruning.
func runAblation(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	// Every knob variant runs on the same Fig. 1 network, so the whole
	// ablation is one batch over one pooled extraction engine.
	base := Fig1Scenario()
	base.Figure = "ablation"
	net, err := BuildScenario(base, seed)
	if err != nil {
		return nil, err
	}
	var scs []Scenario
	var items []BatchItem
	add := func(name string, mutate func(*Params)) {
		sc := base
		sc.Name = name
		params := DefaultParams()
		mutate(&params)
		sc.Params = params
		scs = append(scs, sc)
		items = append(items, BatchItem{Network: net, Params: params})
	}
	for _, alpha := range []int32{0, 1, 2} {
		a := alpha
		add(fmt.Sprintf("alpha=%d", a), func(p *Params) { p.Alpha = a })
	}
	for _, scope := range []int{2, 3, 4, 5} {
		sc := scope
		add(fmt.Sprintf("scope=%d", sc), func(p *Params) { p.LocalMaxScope = sc })
	}
	for _, prune := range []int{1, 0, 8} { // 1 = no pruning, 0 = auto, 8 = aggressive
		pl := prune
		name := fmt.Sprintf("prune=%d", pl)
		if pl == 0 {
			name = "prune=auto"
		}
		add(name, func(p *Params) { p.PruneLen = pl })
	}
	results, err := ExtractBatchObs(items, ob)
	if err != nil {
		return nil, err
	}
	rows := make([]ExperimentRow, len(results))
	for i, res := range results {
		row := rowFor(scs[i], net, res)
		row.Notes = fmt.Sprintf("segment=%d edges=%d", len(res.SegmentNodes), len(res.Edges))
		rows[i] = row
	}
	return rows, nil
}

func runRouting(seed int64, ob ObsScope) ([]ExperimentRow, error) {
	sc := Fig1Scenario()
	sc.Figure = "routing"
	net, res, err := RunScenarioObs(sc, seed, ob)
	if err != nil {
		return nil, err
	}
	isBoundary := make([]bool, net.N())
	for _, v := range res.Boundary {
		isBoundary[v] = true
	}
	const pairs = 400
	sp := NewShortestPathRouter(net)
	spLoad, err := MeasureLoad(net, sp, pairs, seed, isBoundary)
	if err != nil {
		return nil, err
	}
	sk, err := NewSkeletonRouter(net, res.Skeleton)
	if err != nil {
		return nil, err
	}
	skLoad, err := MeasureLoad(net, sk, pairs, seed, isBoundary)
	if err != nil {
		return nil, err
	}
	mkRow := func(name string, l LoadReport) ExperimentRow {
		return ExperimentRow{
			Figure: "routing", Scenario: name, N: net.N(), AvgDeg: net.AvgDegree(),
			Notes: fmt.Sprintf("stretch=%.2f maxload=%d p99=%d boundaryShare=%.3f",
				l.MeanStretch, l.MaxLoad, l.P99Load, l.BoundaryShare),
		}
	}
	return []ExperimentRow{
		mkRow("shortest-path", spLoad),
		mkRow("skeleton-aided", skLoad),
	}, nil
}
