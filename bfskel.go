// Package bfskel is a Go implementation of "Connectivity-based and
// Boundary-Free Skeleton Extraction in Sensor Networks" (Liu, Jiang, Wang,
// Liu, Yang, Liu, Li — ICDCS 2012).
//
// The library simulates large sensor networks deployed in irregular fields
// under several radio models and extracts the network skeleton (medial
// axis) from pure local connectivity — no boundary information, no node
// positions. Network boundaries and a segmentation of the network are
// produced as by-products, exactly as in the paper.
//
// The typical flow builds a network once and runs the staged extraction
// engine over it; the engine pools its scratch state, so hold on to it when
// extracting more than once (parameter sweeps, repeated runs):
//
//	shape := bfskel.MustShape("window")
//	net, err := bfskel.BuildNetwork(bfskel.NetworkSpec{
//	    Shape:     shape,
//	    N:         2592,
//	    TargetDeg: 6,
//	    Seed:      1,
//	})
//	x := net.Extractor()
//	res, err := x.Extract(bfskel.DefaultParams())
//	fmt.Println(res.Skeleton.NumNodes(), res.Skeleton.CycleRank())
//	fmt.Println(res.Stats) // per-phase wall time and pipeline counters
//
// One-shot callers can keep using the equivalent net.Extract(params);
// batches over many networks or parameter sets go through ExtractBatch,
// which amortizes one engine across all runs.
//
// Everything underneath lives in internal packages; this package is the
// supported API surface.
package bfskel

import (
	"errors"
	"fmt"
	"math"

	"bfskel/internal/core"
	"bfskel/internal/deploy"
	"bfskel/internal/geom"
	"bfskel/internal/graph"
	"bfskel/internal/radio"
	"bfskel/internal/shapes"
)

// Re-exported result and configuration types. The aliases keep one set of
// types across the facade and the internal pipeline.
type (
	// Params configures the extraction pipeline (paper defaults: K=L=4,
	// Alpha=1).
	Params = core.Params
	// Result carries every artifact of an extraction run.
	Result = core.Result
	// Extractor is the staged extraction engine: it pools scratch state
	// (BFS buffers, Walkers, per-node arrays) across runs and instruments
	// every phase. Create one per goroutine via Network.Extractor.
	Extractor = core.Extractor
	// Stats instruments one extraction run: per-phase wall time, BFS and
	// flood counts, guard adjustments, and outcome counters.
	Stats = core.Stats
	// PhaseStats is one named stage's timing inside Stats.
	PhaseStats = core.PhaseStats
	// Skeleton is the node-level skeleton graph.
	Skeleton = core.Skeleton
	// SiteEdge is a coarse-skeleton connection between two sites.
	SiteEdge = core.SiteEdge
	// Loop is an identified skeleton loop with its genuine/fake label.
	Loop = core.Loop
	// Shape is a named deployment field.
	Shape = shapes.Shape
	// Point is a planar location.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Polygon is a region with holes.
	Polygon = geom.Polygon
	// Graph is the connectivity graph.
	Graph = graph.Graph
	// RadioModel decides link existence from distance.
	RadioModel = radio.Model
	// FloodKernel selects the BFS implementation behind the pipeline's
	// all-sources flooding passes (Params.FloodKernel).
	FloodKernel = graph.Kernel
)

// Flood-kernel choices for Params.FloodKernel. KernelAuto (the zero value)
// cuts over to the bit-parallel multi-source BFS kernel on large frozen
// graphs and keeps the per-node walker otherwise; the explicit values force
// one path. Results are identical across kernels.
const (
	KernelAuto    = graph.KernelAuto
	KernelWalker  = graph.KernelWalker
	KernelBatched = graph.KernelBatched
)

// Re-exported radio models.
type (
	// UDG is the unit-disk graph model.
	UDG = radio.UDG
	// QUDG is the quasi unit-disk graph model.
	QUDG = radio.QUDG
	// LogNormal is the log-normal shadowing model (paper Eq. 2).
	LogNormal = radio.LogNormal
)

// DefaultParams returns the paper's parameters (K = L = 4, Alpha = 1).
func DefaultParams() Params { return core.DefaultParams() }

// newGraph constructs an empty connectivity graph (used by LoadNetwork).
func newGraph(n int) *Graph { return graph.New(n) }

// ShapeByName looks up one of the paper's deployment fields; see ShapeNames.
func ShapeByName(name string) (Shape, error) { return shapes.ByName(name) }

// MustShape is ShapeByName that panics on unknown names.
func MustShape(name string) Shape { return shapes.MustByName(name) }

// ShapeNames lists the available deployment fields.
func ShapeNames() []string { return shapes.Names() }

// Layout selects the node-placement strategy.
type Layout int

// Available layouts.
const (
	// LayoutUniform places nodes uniformly at random (the paper's stated
	// model). Under UDG with average degree below ~7, uniform deployments
	// fragment inside narrow corridors, so the largest component may not
	// cover the whole field.
	LayoutUniform Layout = iota
	// LayoutGrid places nodes on a jittered grid (common practice in the
	// MAP/CASE line of work and visually indistinguishable from the
	// paper's figures); it keeps low-degree networks connected across
	// narrow corridors.
	LayoutGrid
)

// NetworkSpec describes a simulated sensor network to build.
type NetworkSpec struct {
	// Shape is the deployment field.
	Shape Shape
	// N is the number of deployed nodes.
	N int
	// Layout selects uniform-random (default) or jittered-grid placement.
	Layout Layout
	// Seed makes deployment and probabilistic links reproducible.
	Seed int64
	// Radio is the link model. If nil, a UDG whose range is derived from
	// TargetDeg is used.
	Radio RadioModel
	// TargetDeg is the desired average node degree; used only when Radio
	// is nil. It sets R = sqrt(TargetDeg*Area/(pi*N)).
	TargetDeg float64
	// Accept optionally skews the deployment: candidate positions are
	// kept with probability Accept(p) (see deploy.VerticalGradient and
	// deploy.HalfPlane for the paper's Fig. 8 settings).
	Accept func(Point) float64
	// KeepWholeGraph disables the default restriction to the largest
	// connected component. Sparse random deployments routinely leave a few
	// stragglers; the paper's networks are "overall connected".
	KeepWholeGraph bool
}

// Network is a realised sensor network: positions plus connectivity.
type Network struct {
	// Spec echoes the specification.
	Spec NetworkSpec
	// Points holds node positions (index = node ID).
	Points []Point
	// Graph is the connectivity graph over Points.
	Graph *Graph
	// Radio is the effective link model used.
	Radio RadioModel
}

// ErrNoShape is returned when a NetworkSpec lacks a deployment field.
var ErrNoShape = errors.New("bfskel: NetworkSpec.Shape is required")

// RadioRangeForDegree returns the UDG range that yields the target average
// degree for n nodes uniform in a region of the given area, ignoring border
// effects: R = sqrt(deg*area/(pi*n)).
func RadioRangeForDegree(area float64, n int, deg float64) float64 {
	if n <= 0 || area <= 0 || deg <= 0 {
		return 0
	}
	return math.Sqrt(deg * area / (math.Pi * float64(n)))
}

// BuildNetwork deploys nodes and realises the connectivity graph. Unless
// KeepWholeGraph is set, the network is restricted to its largest connected
// component (node IDs are re-assigned densely).
func BuildNetwork(spec NetworkSpec) (*Network, error) {
	if spec.Shape.Poly == nil {
		return nil, ErrNoShape
	}
	if spec.N <= 0 {
		return nil, fmt.Errorf("bfskel: N must be positive, got %d", spec.N)
	}
	var pts []geom.Point
	switch spec.Layout {
	case LayoutGrid:
		spacing := math.Sqrt(spec.Shape.Poly.Area() / float64(spec.N))
		pts = deploy.PerturbedGrid(spec.Shape.Poly, spacing, 0.45*spacing, spec.Seed)
		if spec.Accept != nil {
			pts = deploy.Thin(pts, spec.Seed+1, spec.Accept)
		}
		if len(pts) == 0 {
			return nil, deploy.ErrNoCapacity
		}
	default:
		var err error
		pts, err = deploy.Weighted(spec.Shape.Poly, spec.N, spec.Seed, spec.Accept)
		if err != nil {
			return nil, fmt.Errorf("deploy %q: %w", spec.Shape.Name, err)
		}
	}
	deg := spec.TargetDeg
	model := spec.Radio
	if model == nil {
		if deg <= 0 {
			deg = 8
		}
		model = radio.UDG{R: RadioRangeForDegree(spec.Shape.Poly.Area(), spec.N, deg)}
	}
	var g *graph.Graph
	if r, ok := radio.BaseRange(model); ok && deg > 0 {
		// The analytic range sqrt(deg*A/(pi*n)) undershoots in narrow
		// corridors (border effects), so calibrate the range against the
		// realised average degree of this very deployment. This applies to
		// any model with a scalable base range (UDG, QUDG, log-normal).
		for iter := 0; iter < 4; iter++ {
			g = graph.Build(pts, model, spec.Seed)
			actual := g.AvgDegree()
			if actual <= 0 {
				r *= 1.5
			} else {
				if math.Abs(actual-deg)/deg < 0.01 {
					break
				}
				r *= math.Sqrt(deg / actual)
			}
			if scaled, ok := radio.WithRange(model, r); ok {
				model = scaled
			}
		}
	}
	g = graph.Build(pts, model, spec.Seed)
	net := &Network{Spec: spec, Points: pts, Graph: g, Radio: model}
	if !spec.KeepWholeGraph {
		net = net.largestComponent()
	}
	return net, nil
}

// largestComponent returns the network induced by the largest connected
// component, with dense re-numbered node IDs.
func (n *Network) largestComponent() *Network {
	keep := n.Graph.LargestComponent()
	if len(keep) == n.Graph.N() {
		return n
	}
	sub, orig := n.Graph.Subgraph(keep)
	pts := make([]Point, len(orig))
	for i, v := range orig {
		pts[i] = n.Points[v]
	}
	return &Network{Spec: n.Spec, Points: pts, Graph: sub, Radio: n.Radio}
}

// N returns the number of nodes.
func (n *Network) N() int { return n.Graph.N() }

// AvgDegree returns the realised average node degree.
func (n *Network) AvgDegree() float64 { return n.Graph.AvgDegree() }

// Extract runs the boundary-free skeleton extraction pipeline. It is the
// one-shot form of the staged engine — equivalent to
// n.Extractor().Extract(p) — and pays the engine's cold-start allocations
// every call; repeated extractions should reuse one Extractor.
func (n *Network) Extract(p Params) (*Result, error) {
	return core.Extract(n.Graph, p)
}

// Extractor returns a staged extraction engine bound to the network's
// graph. The engine reuses its scratch pools across Extract calls (every
// returned Result stays independent of the engine), but is not safe for
// concurrent use — create one per goroutine.
func (n *Network) Extractor() *Extractor {
	return core.NewExtractor(n.Graph)
}

// BatchItem is one extraction of a batch: a network plus its parameters.
// Backend optionally names a registered skeleton backend for the
// observability batch path (ExtractBatchObs); empty means "bfskel".
// ExtractBatch itself always runs the core pipeline.
type BatchItem struct {
	Network *Network
	Params  Params
	Backend string
}

// ExtractBatch runs every item through a single pooled extraction engine,
// amortizing scratch allocations across many networks and parameter sets
// (the experiment harness's sweeps run through this). Consecutive items on
// the same network reuse the full pool, so group items by network. It
// fails fast on the first erroring item.
func ExtractBatch(items []BatchItem) ([]*Result, error) {
	jobs := make([]core.BatchJob, len(items))
	for i, it := range items {
		jobs[i] = core.BatchJob{G: it.Network.Graph, P: it.Params}
	}
	return core.ExtractBatch(jobs)
}
