// Command skellint runs the repository's static-analysis suite
// (internal/lint): stdlib-only analyzers that machine-check the invariants
// the codebase depends on — seed determinism in the pipeline packages, the
// nil-safe observability contract, sync.Pool scratch hygiene, and
// consistent sync/atomic usage.
//
// Usage:
//
//	go run ./cmd/skellint [flags] [packages]
//
//	skellint ./...                     # lint the whole module
//	skellint -json ./...               # machine-readable output (CI)
//	skellint -checks determinism ./internal/core
//	skellint -list                     # describe the analyzers
//
// Findings are suppressed in source with
//
//	//lint:allow <check> <reason>
//
// on the flagged line or the line above it. Exit status: 0 clean,
// 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bfskel/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		checks  = flag.String("checks", "", "comma-separated checks to run (default: all)")
		list    = flag.Bool("list", false, "list the analyzers and exit")
		dir     = flag.String("C", ".", "directory to resolve the module root from")
		verbose = flag.Bool("v", false, "report type-check problems to stderr")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skellint:", err)
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skellint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skellint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, errs := loader.LoadPatterns(patterns)
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "skellint:", e)
		}
		return 2
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "skellint: typecheck %s: %v\n", pkg.Path, te)
			}
		}
	}

	res := lint.Run(pkgs, analyzers, lint.DefaultConfig())
	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "skellint:", err)
			return 2
		}
	} else if err := res.WriteHuman(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skellint:", err)
		return 2
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
