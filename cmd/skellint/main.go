// Command skellint runs the repository's static-analysis suite
// (internal/lint): stdlib-only analyzers that machine-check the invariants
// the codebase depends on — seed determinism in the pipeline packages, the
// nil-safe observability contract, sync.Pool scratch hygiene, consistent
// sync/atomic usage, paired span lifecycles, chunk-callback write ownership,
// lock-hold hygiene, and init-time-only registration — plus the
// escape-analysis allocation gate for the hot-path packages.
//
// Usage:
//
//	go run ./cmd/skellint [flags] [packages]
//
//	skellint ./...                     # lint the whole module
//	skellint -json ./...               # machine-readable output (CI)
//	skellint -sarif ./...              # SARIF 2.1.0 for PR annotations
//	skellint -checks determinism ./internal/core
//	skellint -list                     # describe the analyzers
//
//	skellint -allocgate                # diff hot-path heap escapes vs baseline
//	skellint -allocgate -allocgate-out escape-diff.json   # also write report
//	skellint -allocgate-write          # regenerate ALLOC_BASELINE.json
//
// Findings are suppressed in source with
//
//	//lint:allow <check> <reason>
//
// on the flagged line or the line above it. The allocation gate has no
// in-source suppression: intended allocation growth is sanctioned by
// regenerating the baseline, which shows up in review as an
// ALLOC_BASELINE.json diff. Exit status: 0 clean, 1 findings, 2 usage or
// load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bfskel/internal/lint"
	"bfskel/internal/lint/allocgate"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		sarifOut = flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
		checks   = flag.String("checks", "", "comma-separated checks to run (default: all)")
		list     = flag.Bool("list", false, "list the analyzers and exit")
		dir      = flag.String("C", ".", "directory to resolve the module root from")
		verbose  = flag.Bool("v", false, "report type-check problems to stderr")

		gate      = flag.Bool("allocgate", false, "run the escape-analysis allocation gate instead of the analyzers")
		gateWrite = flag.Bool("allocgate-write", false, "regenerate the allocation baseline and exit")
		gateOut   = flag.String("allocgate-out", "", "also write the allocation gate report (JSON) to this file")
		baseline  = flag.String("baseline", "", "allocation baseline path (default: ALLOC_BASELINE.json at the module root)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skellint:", err)
		return 2
	}

	if *gate || *gateWrite {
		return runAllocGate(root, *baseline, *gateOut, *gateWrite)
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skellint:", err)
		return 2
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skellint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, errs := loader.LoadPatterns(patterns)
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "skellint:", e)
		}
		return 2
	}
	if *verbose {
		for _, pkg := range pkgs {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "skellint: typecheck %s: %v\n", pkg.Path, te)
			}
		}
	}

	res := lint.Run(pkgs, analyzers, lint.DefaultConfig())
	var writeErr error
	switch {
	case *sarifOut:
		writeErr = res.WriteSARIF(os.Stdout)
	case *jsonOut:
		writeErr = res.WriteJSON(os.Stdout)
	default:
		writeErr = res.WriteHuman(os.Stdout)
	}
	if writeErr != nil {
		fmt.Fprintln(os.Stderr, "skellint:", writeErr)
		return 2
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// runAllocGate collects current hot-path escapes and either rewrites the
// baseline (write mode) or diffs against it, failing on regressions.
func runAllocGate(root, baselinePath, reportPath string, write bool) int {
	if baselinePath == "" {
		baselinePath = filepath.Join(root, "ALLOC_BASELINE.json")
	}
	packages := allocgate.DefaultPackages
	if !write {
		if b, err := allocgate.Load(baselinePath); err == nil {
			packages = b.Packages // gate exactly what the baseline covers
		}
	}
	current, err := allocgate.Collect(root, packages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skellint:", err)
		return 2
	}
	if write {
		if err := current.Save(baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "skellint:", err)
			return 2
		}
		fmt.Printf("skellint: wrote %s (%d functions with heap escapes across %d packages)\n",
			baselinePath, len(current.Functions), len(current.Packages))
		return 0
	}
	base, err := allocgate.Load(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skellint: %v (generate it with -allocgate-write)\n", err)
		return 2
	}
	if base.GoVersion != current.GoVersion {
		fmt.Fprintf(os.Stderr, "skellint: warning: baseline from %s, current toolchain %s — "+
			"escape analysis may differ\n", base.GoVersion, current.GoVersion)
	}
	rep := allocgate.Diff(base, current)
	if reportPath != "" {
		if err := rep.Save(reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "skellint:", err)
			return 2
		}
	}
	for _, imp := range rep.Improvements {
		fmt.Printf("skellint: allocgate: improved: %s no longer produces %d escape(s)\n",
			imp.Function, len(imp.Gone))
	}
	if len(rep.Regressions) == 0 {
		fmt.Printf("skellint: allocgate ok (%d functions with sanctioned escapes across %v)\n",
			len(current.Functions), current.Packages)
		return 0
	}
	for _, r := range rep.Regressions {
		for _, msg := range r.New {
			fmt.Printf("skellint: allocgate: %s: new heap escape: %s\n", r.Function, msg)
		}
	}
	fmt.Printf("skellint: allocgate: %d function(s) gained heap escapes; shrink them or "+
		"regenerate the baseline with -allocgate-write and justify the diff in review\n",
		len(rep.Regressions))
	return 1
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
