// Command skelextract runs the boundary-free skeleton extraction pipeline
// on one scenario and reports statistics; with -svg it also writes the
// pipeline stages as SVG files (the panels of paper Figs. 1 and 3).
//
// Usage:
//
//	skelextract -shape window -n 2592 -deg 6 -seed 1 -svg out/
//	skelextract -shape twoholes -obs 127.0.0.1:0   # live /metrics /runs /trace /profile
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skelextract:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		shapeName = flag.String("shape", "window", "deployment field (see -list)")
		backendNm = flag.String("backend", "bfskel", "skeleton backend (bfskel, map, case, localsep)")
		n         = flag.Int("n", 2592, "number of deployed nodes")
		deg       = flag.Float64("deg", 6, "target average degree (UDG)")
		seed      = flag.Int64("seed", 1, "deployment/link seed")
		k         = flag.Int("k", 4, "neighborhood-size radius K")
		l         = flag.Int("l", 4, "centrality radius L")
		scope     = flag.Int("scope", 0, "local-maximum scope (0 = use L)")
		grid      = flag.Bool("grid", false, "jittered-grid layout instead of uniform")
		radioKind = flag.String("radio", "udg", "radio model: udg, qudg, lognormal")
		qAlpha    = flag.Float64("qalpha", 0.4, "QUDG alpha")
		qP        = flag.Float64("qp", 0.3, "QUDG link probability in the gray zone")
		lnEps     = flag.Float64("eps", 1, "log-normal epsilon = sigma/eta")
		rangeMul  = flag.Float64("rangemul", 1, "multiply the calibrated UDG range (QUDG/log-normal)")
		svgDir    = flag.String("svg", "", "directory to write stage SVGs into")
		pngDir    = flag.String("png", "", "directory to write stage PNGs into")
		list      = flag.Bool("list", false, "list available shapes and exit")
		jsonPath  = flag.String("json", "", "write the extraction result as JSON")
		netPath   = flag.String("savenet", "", "write the network (positions+links) as JSON")
		tracePath = flag.String("trace", "", "write a structured span/event trace as JSONL")
		metricsOn = flag.Bool("metrics", false, "dump Prometheus-text metrics on exit")
		obsAddr   = flag.String("obs", "", "serve the live observability plane on this address (e.g. 127.0.0.1:0): /metrics, /runs, /trace, /profile, /healthz, /debug/pprof")
		pprofAddr = flag.String("pprof", "", "deprecated alias for -obs (the obs server includes /debug/pprof)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		fmt.Fprintln(os.Stderr, "skelextract: -pprof is deprecated; use -obs (same address, pprof included)")
		if *obsAddr == "" {
			*obsAddr = *pprofAddr
		}
	}

	var traceSink *bfskel.JSONLSink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = bfskel.NewJSONLSink(f)
		defer traceSink.Flush()
	}
	var ob bfskel.ObsScope
	if *obsAddr != "" {
		ob = bfskel.NewLiveObsScope(0, traceSink)
		srv, err := ob.Serve(*obsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving on http://%s/ (metrics, runs, trace, profile, pprof)\n", srv.Addr())
	} else if traceSink != nil {
		ob.Tracer = bfskel.NewTracer(traceSink)
	}
	if *metricsOn {
		if ob.Metrics == nil {
			ob.Metrics = bfskel.NewMetricsRegistry()
		}
		defer func() { ob.Metrics.WritePrometheus(os.Stdout) }()
	}

	if *list {
		for _, name := range bfskel.ShapeNames() {
			s := bfskel.MustShape(name)
			fmt.Printf("%-10s holes=%d  %s\n", name, s.Holes(), s.Description)
		}
		return nil
	}

	shape, err := bfskel.ShapeByName(*shapeName)
	if err != nil {
		return err
	}
	layout := bfskel.LayoutUniform
	if *grid {
		layout = bfskel.LayoutGrid
	}
	spec := bfskel.NetworkSpec{
		Shape: shape, N: *n, TargetDeg: *deg, Seed: *seed, Layout: layout,
	}
	switch *radioKind {
	case "udg":
		// calibrated from TargetDeg
	case "qudg":
		r := bfskel.RadioRangeForDegree(shape.Poly.Area(), *n, *deg) * *rangeMul
		spec.Radio = bfskel.QUDG{R: r, Alpha: *qAlpha, P: *qP}
	case "lognormal":
		// The paper fixes the base range at its epsilon=0 (UDG) value and
		// lets the shadowing tail raise the average degree (Fig. 7), so
		// calibrate a UDG range for -deg first and disable re-calibration.
		probe, err := bfskel.BuildNetwork(spec)
		if err != nil {
			return err
		}
		udg, ok := probe.Radio.(bfskel.UDG)
		if !ok {
			return fmt.Errorf("probe network has unexpected radio %T", probe.Radio)
		}
		spec.Radio = bfskel.LogNormal{R: udg.R * *rangeMul, Epsilon: *lnEps}
		spec.TargetDeg = 0
	default:
		return fmt.Errorf("unknown radio model %q", *radioKind)
	}
	net, err := bfskel.BuildNetwork(spec)
	if err != nil {
		return err
	}
	params := bfskel.DefaultParams()
	params.K, params.L = *k, *l
	params.LocalMaxScope = *scope
	if *backendNm != "bfskel" {
		if *svgDir != "" || *pngDir != "" || *jsonPath != "" {
			return fmt.Errorf("-svg/-png/-json need the full pipeline result; they only work with -backend bfskel")
		}
		return runBackend(net, shape, *backendNm, params, ob, *n)
	}
	engine := net.ExtractorObs(ob)
	engine.CollectMemStats = true
	res, err := engine.Extract(params)
	if err != nil {
		return err
	}

	fmt.Printf("shape=%s nodes=%d (largest component of %d deployed) avg.deg=%.2f\n",
		shape.Name, net.N(), *n, net.AvgDegree())
	fmt.Printf("sites=%d segment=%d voronoi=%d edges=%d\n",
		len(res.Sites), len(res.SegmentNodes), len(res.VoronoiNodes), len(res.Edges))
	fmt.Printf("coarse skeleton: nodes=%d cycles=%d components=%d\n",
		res.Coarse.NumNodes(), res.Coarse.CycleRank(), res.Coarse.Components())
	fmt.Printf("final skeleton:  nodes=%d cycles=%d components=%d (field holes=%d)\n",
		res.Skeleton.NumNodes(), res.Skeleton.CycleRank(), res.Skeleton.Components(), shape.Holes())
	fmt.Printf("loops: %d fake deleted, %d genuine kept; boundary nodes=%d\n",
		res.NumFakeLoops(), res.NumGenuineLoops(), len(res.Boundary))
	if st := res.Stats; st != nil {
		fmt.Println("phase timings:")
		for _, ph := range st.Phases {
			fmt.Printf("  %-9s %10s  %8.1f KB\n",
				ph.Name, ph.Duration.Round(time.Microsecond), float64(ph.BytesAlloc)/1024)
		}
		fmt.Printf("  %-9s %10s\n", "total", st.Total.Round(time.Microsecond))
		fmt.Printf("work: bfs=%d floods=%d electionRounds=%d kEff=%d scopeEff=%d (adjusted %d/%d) medianKhop=%d pruned=%d\n",
			st.BFSSweeps, st.Floods, st.ElectionRounds,
			res.EffectiveK, res.EffectiveScope, st.KAdjustments, st.ScopeAdjustments,
			st.MedianKHopBall, st.PrunedNodes)
	}

	if *jsonPath != "" {
		if err := writeStage(*jsonPath, func(f *os.File) error {
			return bfskel.WriteResultJSON(net, res, f)
		}); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonPath)
	}
	if *netPath != "" {
		if err := writeStage(*netPath, func(f *os.File) error {
			return bfskel.SaveNetwork(net, f)
		}); err != nil {
			return err
		}
		fmt.Println("wrote", *netPath)
	}

	stages := []struct {
		name  string
		stage bfskel.RenderStage
	}{
		{"a-network", bfskel.StageNetwork},
		{"b-sites", bfskel.StageSites},
		{"c-segments", bfskel.StageSegments},
		{"d-coarse", bfskel.StageCoarse},
		{"h-final", bfskel.StageFinal},
		{"cells", bfskel.StageCells},
		{"boundary", bfskel.StageBoundary},
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		for _, st := range stages {
			path := filepath.Join(*svgDir, fmt.Sprintf("%s-%s.svg", shape.Name, st.name))
			if err := writeStage(path, func(f *os.File) error {
				return bfskel.RenderResult(net, res, st.stage, f)
			}); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}
	if *pngDir != "" {
		if err := os.MkdirAll(*pngDir, 0o755); err != nil {
			return err
		}
		for _, st := range stages {
			path := filepath.Join(*pngDir, fmt.Sprintf("%s-%s.png", shape.Name, st.name))
			if err := writeStage(path, func(f *os.File) error {
				return bfskel.RenderResultPNG(net, res, st.stage, f)
			}); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}
	return nil
}

// runBackend extracts through a registered non-default skeleton backend and
// prints the cross-backend summary the canonical result supports.
func runBackend(net *bfskel.Network, shape bfskel.Shape, name string, params bfskel.Params, ob bfskel.ObsScope, deployed int) error {
	res, stats, err := bfskel.ExtractBackend(net, name, bfskel.BackendParams{
		Core: params, Tracer: ob.Tracer, Metrics: ob.Metrics,
	})
	if err != nil {
		return fmt.Errorf("backend %s: %w (registered: %v)", name, err, bfskel.Backends())
	}
	fmt.Printf("shape=%s nodes=%d (largest component of %d deployed) avg.deg=%.2f backend=%s\n",
		shape.Name, net.N(), deployed, net.AvgDegree(), name)
	fmt.Printf("skeleton: nodes=%d cycles=%d components=%d (field holes=%d)\n",
		res.Skeleton.NumNodes(), res.Skeleton.CycleRank(), res.Skeleton.Components(), shape.Holes())
	if res.Boundary != nil {
		fmt.Printf("boundary substrate: %d nodes\n", len(res.Boundary))
	}
	if stats != nil {
		fmt.Println("stage timings:")
		for _, ph := range stats.Phases {
			fmt.Printf("  %-10s %10s\n", ph.Name, ph.Duration.Round(time.Microsecond))
		}
		fmt.Printf("  %-10s %10s\n", "total", stats.Total.Round(time.Microsecond))
	}
	return nil
}

// writeStage renders into a freshly created file, folding the close error.
func writeStage(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	renderErr := render(f)
	if closeErr := f.Close(); renderErr == nil {
		renderErr = closeErr
	}
	if renderErr != nil {
		return fmt.Errorf("render %s: %w", path, renderErr)
	}
	return nil
}
