// Command skeltrace summarizes a JSONL trace emitted by skelextract or
// skelbench (-trace): per-span duration statistics, the round-by-round
// message curve of every distributed protocol phase, and the hottest nodes
// by per-node send/receive counters.
//
// Usage:
//
//	skeltrace trace.jsonl
//	skeltrace -top 10 trace.jsonl
//	skeltrace -folded trace.jsonl > stacks.folded   # flamegraph.pl / inferno input
//	skeltrace -check -require-stages identify,voronoi,coarse,refine,boundary \
//	    -require-phases neighborhood,centrality,election,voronoi trace.jsonl
//
// With -folded the command emits the trace's span-aggregation profile as
// folded stacks (one "root;child;leaf self-microseconds" line per call
// path), the input format of flamegraph.pl, inferno and speedscope — the
// same output the live /profile?format=folded endpoint serves.
//
// With -check the command validates the trace instead of describing it: it
// must be non-empty and fully parseable, every required stage/phase span
// must be present, and each protocol phase's per-round message counts must
// sum to the phase span's total. Any violation exits non-zero — CI runs
// this against a freshly emitted trace.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skeltrace:", err)
		os.Exit(1)
	}
}

// span is one reconstructed span: its start/end records plus the events
// that fired inside it.
type span struct {
	id      uint64
	name    string
	dur     time.Duration
	ended   bool
	end     map[string]any // end-record attributes
	rounds  []roundEvent
	sent    []float64 // per-node sends ("nodes" event)
	recv    []float64
	elected int // "election" events (extract spans)
	guards  int // "guard.adjust" events
}

// roundEvent is one simnet "round" event.
type roundEvent struct {
	round, messages, deliveries, active int
}

// trace is the fully parsed file.
type trace struct {
	records int
	events  int
	spans   map[uint64]*span
	order   []uint64 // span IDs in start order
	// spanRecs retains the raw span start/end records (events are skipped:
	// they carry the bulky per-node arrays and profiles ignore them) so
	// -folded can rebuild the span-aggregation profile.
	spanRecs []bfskel.TraceRecord
}

func run() error {
	var (
		topK      = flag.Int("top", 5, "how many hottest nodes to list")
		check     = flag.Bool("check", false, "validate the trace instead of summarizing; exit non-zero on failure")
		folded    = flag.Bool("folded", false, "emit the span profile as folded stacks (flamegraph input) instead of summarizing")
		reqStages = flag.String("require-stages", "", "comma-separated stage names that must appear as stage.<name> spans (-check)")
		reqPhases = flag.String("require-phases", "", "comma-separated phase names that must appear as phase.<name> spans (-check)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: skeltrace [flags] trace.jsonl")
	}

	tr, err := parseFile(flag.Arg(0))
	if err != nil {
		return err
	}
	if *check {
		return validate(tr, splitNames(*reqStages), splitNames(*reqPhases))
	}
	if *folded {
		return bfskel.BuildSpanProfile(tr.spanRecs).WriteFolded(os.Stdout)
	}
	summarize(tr, *topK)
	return nil
}

// parseFile reads and reconstructs a JSONL trace.
func parseFile(path string) (*trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	tr := &trace{spans: make(map[uint64]*span)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26) // "nodes" events carry whole per-node arrays
	line := 0
	for sc.Scan() {
		line++
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		rec, err := bfskel.ParseTraceJSONL(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		tr.records++
		attrs := attrMap(rec.Attrs)
		switch rec.Kind {
		case bfskel.TraceSpanStart:
			tr.spans[rec.ID] = &span{id: rec.ID, name: rec.Name}
			tr.order = append(tr.order, rec.ID)
			tr.spanRecs = append(tr.spanRecs, rec)
		case bfskel.TraceSpanEnd:
			tr.spanRecs = append(tr.spanRecs, rec)
			sp := tr.spans[rec.ID]
			if sp == nil { // end without start: tolerate, spans parse standalone
				sp = &span{id: rec.ID, name: rec.Name}
				tr.spans[rec.ID] = sp
				tr.order = append(tr.order, rec.ID)
			}
			sp.ended, sp.dur, sp.end = true, rec.Dur, attrs
		case bfskel.TraceEvent:
			tr.events++
			sp := tr.spans[rec.Span]
			if sp == nil {
				continue
			}
			switch rec.Name {
			case "round":
				sp.rounds = append(sp.rounds, roundEvent{
					round:      num(attrs, "round"),
					messages:   num(attrs, "messages"),
					deliveries: num(attrs, "deliveries"),
					active:     num(attrs, "active"),
				})
			case "nodes":
				sp.sent = floats(attrs["sent"])
				sp.recv = floats(attrs["recv"])
			case "election":
				sp.elected++
			case "guard.adjust":
				sp.guards++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// attrMap flattens parsed attributes for keyed lookup.
func attrMap(attrs []bfskel.TraceAttr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// num reads an integer-valued attribute (JSON numbers decode as float64).
func num(m map[string]any, key string) int {
	if v, ok := m[key].(float64); ok {
		return int(v)
	}
	return 0
}

// floats coerces a decoded JSON array into a float slice.
func floats(v any) []float64 {
	arr, ok := v.([]any)
	if !ok {
		return nil
	}
	out := make([]float64, 0, len(arr))
	for _, e := range arr {
		f, _ := e.(float64)
		out = append(out, f)
	}
	return out
}

func splitNames(csv string) []string {
	if csv == "" {
		return nil
	}
	var names []string
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// durStats aggregates the durations of same-named spans.
type durStats struct {
	count              int
	total, min, max    time.Duration
	rounds, messages   int
	hasRounds, hasMsgs bool
}

func summarize(tr *trace, topK int) {
	fmt.Printf("trace: %d records, %d spans, %d events\n", tr.records, len(tr.spans), tr.events)
	if len(tr.spans) == 0 {
		return
	}

	// Per-name duration table.
	byName := make(map[string]*durStats)
	var names []string
	for _, id := range tr.order {
		sp := tr.spans[id]
		if !sp.ended {
			continue
		}
		st := byName[sp.name]
		if st == nil {
			st = &durStats{min: sp.dur, max: sp.dur}
			byName[sp.name] = st
			names = append(names, sp.name)
		}
		st.count++
		st.total += sp.dur
		if sp.dur < st.min {
			st.min = sp.dur
		}
		if sp.dur > st.max {
			st.max = sp.dur
		}
		if v, ok := sp.end["rounds"]; ok {
			st.rounds += int(v.(float64))
			st.hasRounds = true
		}
		if v, ok := sp.end["messages"]; ok {
			st.messages += int(v.(float64))
			st.hasMsgs = true
		}
	}
	sort.Strings(names)
	fmt.Println("\nspan durations:")
	for _, name := range names {
		st := byName[name]
		avg := st.total / time.Duration(st.count)
		line := fmt.Sprintf("  %-22s n=%-3d total=%-12s min=%-12s avg=%-12s max=%s",
			name, st.count, round(st.total), round(st.min), round(avg), round(st.max))
		if st.hasMsgs {
			line += fmt.Sprintf("  messages=%d", st.messages)
		}
		if st.hasRounds {
			line += fmt.Sprintf(" rounds=%d", st.rounds)
		}
		fmt.Println(line)
	}

	// Round-by-round message curve of every protocol phase instance.
	printed := false
	for _, id := range tr.order {
		sp := tr.spans[id]
		if !strings.HasPrefix(sp.name, "phase.") || len(sp.rounds) == 0 {
			continue
		}
		if !printed {
			fmt.Println("\nper-phase message curve (messages per round, round 0 = init):")
			printed = true
		}
		total := 0
		curve := make([]string, 0, len(sp.rounds))
		for _, r := range sp.rounds {
			total += r.messages
			if len(curve) < 24 {
				curve = append(curve, fmt.Sprintf("%d", r.messages))
			}
		}
		ell := ""
		if len(sp.rounds) > 24 {
			ell = " …"
		}
		eng := ""
		if e, ok := sp.end["engine"].(string); ok && e != "" {
			eng = " engine=" + e
		}
		fmt.Printf("  %-22s #%-4d rounds=%-4d messages=%-7d%s curve: %s%s\n",
			sp.name, sp.id, len(sp.rounds)-1, total, eng, strings.Join(curve, " "), ell)
	}

	// Hottest nodes over all per-node counter events. Walk spans in start
	// order (tr.order), not map order, so the tallies — and therefore the
	// report — are identical across runs; grow each tally to its own
	// length so neither one silently drops the other's tail.
	var sent, recv []float64
	for _, id := range tr.order {
		sp := tr.spans[id]
		for i, v := range sp.sent {
			if i >= len(sent) {
				sent = append(sent, make([]float64, i+1-len(sent))...)
			}
			sent[i] += v
		}
		for i, v := range sp.recv {
			if i >= len(recv) {
				recv = append(recv, make([]float64, i+1-len(recv))...)
			}
			recv[i] += v
		}
	}
	if len(recv) < len(sent) {
		recv = append(recv, make([]float64, len(sent)-len(recv))...)
	} else if len(sent) < len(recv) {
		sent = append(sent, make([]float64, len(recv)-len(sent))...)
	}
	if len(sent) > 0 && topK > 0 {
		type hot struct {
			node int
			load float64
		}
		hots := make([]hot, len(sent))
		for i := range sent {
			hots[i] = hot{node: i, load: sent[i] + recv[i]}
		}
		sort.Slice(hots, func(i, j int) bool {
			if hots[i].load != hots[j].load {
				return hots[i].load > hots[j].load
			}
			return hots[i].node < hots[j].node
		})
		if topK > len(hots) {
			topK = len(hots)
		}
		fmt.Printf("\nhottest nodes (sent+received, %d tracked):\n", len(sent))
		for _, h := range hots[:topK] {
			fmt.Printf("  node %-6d sent=%-7.0f recv=%-7.0f total=%.0f\n",
				h.node, sent[h.node], recv[h.node], h.load)
		}
	}
}

// round trims sub-microsecond noise for display.
func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }

// validate enforces the -check contract.
func validate(tr *trace, stages, phases []string) error {
	if tr.records == 0 {
		return fmt.Errorf("check: trace is empty")
	}
	have := make(map[string]bool)
	for _, sp := range tr.spans {
		if sp.ended {
			have[sp.name] = true
		}
	}
	for _, s := range stages {
		if !have["stage."+s] {
			return fmt.Errorf("check: missing stage span %q", "stage."+s)
		}
	}
	for _, p := range phases {
		if !have["phase."+p] {
			return fmt.Errorf("check: missing phase span %q", "phase."+p)
		}
	}
	// Every phase span with per-round events must account for its exact
	// message total.
	checked := 0
	for _, id := range tr.order {
		sp := tr.spans[id]
		if !strings.HasPrefix(sp.name, "phase.") || !sp.ended || len(sp.rounds) == 0 {
			continue
		}
		want, ok := sp.end["messages"].(float64)
		if !ok {
			return fmt.Errorf("check: span %s #%d has round events but no messages total", sp.name, sp.id)
		}
		sum := 0
		for _, r := range sp.rounds {
			sum += r.messages
		}
		if sum != int(want) {
			return fmt.Errorf("check: span %s #%d per-round messages sum to %d, span total is %d", sp.name, sp.id, sum, int(want))
		}
		checked++
	}
	fmt.Printf("check ok: %d records, %d spans, %d phase spans with exact round accounting\n",
		tr.records, len(tr.spans), checked)
	return nil
}
