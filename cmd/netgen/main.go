// Command netgen generates and inspects simulated sensor networks: node
// counts, realised degrees, connectivity, hop diameter, and optional
// network renders — useful for choosing scenario parameters.
//
// Usage:
//
//	netgen -shape spiral -n 2812 -deg 9.6 -seed 1 -svg spiral.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		shapeName = flag.String("shape", "window", "deployment field")
		n         = flag.Int("n", 2592, "number of deployed nodes")
		deg       = flag.Float64("deg", 6, "target average degree")
		seed      = flag.Int64("seed", 1, "deployment/link seed")
		uniform   = flag.Bool("uniform", false, "uniform-random layout instead of jittered grid")
		whole     = flag.Bool("whole", false, "keep the whole graph (not just the largest component)")
		svgPath   = flag.String("svg", "", "write the network as SVG")
		pngPath   = flag.String("png", "", "write the network as PNG")
	)
	flag.Parse()

	shape, err := bfskel.ShapeByName(*shapeName)
	if err != nil {
		return err
	}
	layout := bfskel.LayoutGrid
	if *uniform {
		layout = bfskel.LayoutUniform
	}
	buildStart := time.Now() //lint:allow determinism build wall-time report; network content is keyed by Seed
	net, err := bfskel.BuildNetwork(bfskel.NetworkSpec{
		Shape: shape, N: *n, TargetDeg: *deg, Seed: *seed,
		Layout: layout, KeepWholeGraph: *whole,
	})
	buildMs := float64(time.Since(buildStart)) / float64(time.Millisecond)
	if err != nil {
		return err
	}

	fmt.Printf("shape=%s (%d holes, area %.0f)\n", shape.Name, shape.Holes(), shape.Poly.Area())
	fmt.Printf("nodes=%d (of %d deployed) avg.deg=%.2f connected=%v\n",
		net.N(), *n, net.AvgDegree(), net.Graph.IsConnected())
	fmt.Printf("radio=%v hop-diameter>=%d\n", net.Radio, net.Graph.DiameterLowerBound(0))
	fmt.Printf("build=%.1fms peak-rss=%.1fMB\n", buildMs, bfskel.PeakRSSMB())

	write := func(path string, render func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		renderErr := render(f)
		if closeErr := f.Close(); renderErr == nil {
			renderErr = closeErr
		}
		if renderErr != nil {
			return renderErr
		}
		fmt.Println("wrote", path)
		return nil
	}
	if *svgPath != "" {
		if err := write(*svgPath, func(f *os.File) error {
			return bfskel.RenderNetwork(net, f)
		}); err != nil {
			return err
		}
	}
	if *pngPath != "" {
		if err := write(*pngPath, func(f *os.File) error {
			return bfskel.RenderResultPNG(net, nil, bfskel.StageNetwork, f)
		}); err != nil {
			return err
		}
	}
	return nil
}
