// Command skelbench regenerates the data series behind every figure and
// claim of the paper's evaluation (Figs. 1, 3-8, Sec. V complexity and
// parameter analyses) plus the baseline and routing comparisons. Each row
// prints the measured counterparts of what the paper reports: node counts,
// average degrees, skeleton size, loop structure (homotopy), medial
// quality, stability, and distributed cost.
//
// Usage:
//
//	skelbench            # run every experiment
//	skelbench -fig fig5  # run one experiment
//	skelbench -seed 7    # change the deployment seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skelbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig  = flag.String("fig", "", "experiment to run (empty = all); one of "+strings.Join(bfskel.FigureNames(), ", "))
		seed = flag.Int64("seed", 1, "deployment/link seed")
	)
	flag.Parse()

	figures := bfskel.FigureNames()
	if *fig != "" {
		figures = []string{*fig}
	}
	for _, f := range figures {
		rows, err := bfskel.RunFigure(f, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		fmt.Printf("== %s ==\n", f)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
	}
	return nil
}
