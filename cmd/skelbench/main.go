// Command skelbench regenerates the data series behind every figure and
// claim of the paper's evaluation (Figs. 1, 3-8, Sec. V complexity and
// parameter analyses) plus the baseline and routing comparisons. Each row
// prints the measured counterparts of what the paper reports: node counts,
// average degrees, skeleton size, loop structure (homotopy), medial
// quality, stability, and distributed cost.
//
// Usage:
//
//	skelbench                 # run every experiment
//	skelbench -fig fig5       # run one experiment
//	skelbench -seed 7         # change the deployment seed
//	skelbench -json out.json  # also dump rows (with per-phase stats) as JSON
//	skelbench -note "..."     # record a free-form note in the JSON report
//	skelbench -trace t.jsonl  # emit a structured span/event trace (see cmd/skeltrace)
//	skelbench -metrics        # dump Prometheus-text metrics on exit
//	skelbench -obs 127.0.0.1:0          # serve the live observability plane
//	                                    # (/metrics /runs /trace /profile /debug/pprof)
//	skelbench -obs :6060 -obs-wait      # keep serving after the run, until interrupted
//	skelbench -scorecard card.json -compare BENCH_pr7.json  # delta vs a checked-in baseline
//	skelbench -ladder 10000,100000,1000000              # scale ladder: build/extract wall time + peak RSS per size
//	skelbench -ladder 100000 -ladder-ceiling 120 -ladder-out ladder.json  # CI capacity gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skelbench:", err)
		os.Exit(1)
	}
}

// figureDump is one experiment's rows in the machine-readable report.
type figureDump struct {
	Figure string                 `json:"figure"`
	Rows   []bfskel.ExperimentRow `json:"rows"`
}

// report is the top-level JSON document written by -json.
type report struct {
	Date string `json:"date"`
	Seed int64  `json:"seed"`
	// Note is free-form operator context (-note), e.g. which commit or
	// benchmark delta the report documents.
	Note    string       `json:"note,omitempty"`
	Figures []figureDump `json:"figures"`
	// Metrics is the final registry snapshot; present whenever the run
	// collected metrics (-metrics, or any -json run).
	Metrics *bfskel.MetricsSnapshot `json:"metrics,omitempty"`
}

func run() error {
	var (
		fig       = flag.String("fig", "", "experiment to run (empty = all); one of "+strings.Join(bfskel.FigureNames(), ", "))
		seed      = flag.Int64("seed", 1, "deployment/link seed")
		jsonPath  = flag.String("json", "", "write all rows (including per-phase stats) as JSON")
		note      = flag.String("note", "", "free-form note recorded in the -json report")
		tracePath = flag.String("trace", "", "write a structured span/event trace as JSONL (see cmd/skeltrace)")
		metricsOn = flag.Bool("metrics", false, "dump Prometheus-text metrics on exit")
		obsAddr   = flag.String("obs", "", "serve the live observability plane on this address (e.g. 127.0.0.1:0): /metrics, /runs, /trace, /profile, /healthz, /debug/pprof")
		obsWait   = flag.Bool("obs-wait", false, "with -obs: keep serving after the run completes, until interrupted")
		pprofAddr = flag.String("pprof", "", "deprecated alias for -obs (the obs server includes /debug/pprof)")
		engine    = flag.String("engine", "", "force the simnet round engine for the protocol phases: serial or parallel (empty = auto)")
		scorePath = flag.String("scorecard", "", "run the cross-backend scorecard instead of the figures and write it as JSON to this path")
		backends  = flag.String("backends", "bfskel,map,case,localsep", "comma-separated skeleton backends for -scorecard")
		shapesF   = flag.String("shapes", "window,twoholes,spiral", "comma-separated shapes for -scorecard")
		nOverride = flag.Int("n", 0, "override the node count of every -scorecard scenario (0 = per-shape paper defaults)")
		comparePt = flag.String("compare", "", "compare against a checked-in baseline (BENCH_prN.json, scorecard or figure report) and print a delta report")
		tolerance = flag.Float64("tolerance", 0.30, "fractional regression tolerance for -compare (0.30 = flag >30% growth)")
		cmpOut    = flag.String("compare-out", "", "also write the -compare delta report as JSON to this path")
		cmpStrict = flag.Bool("compare-strict", false, "exit non-zero when -compare finds regressions")
		ladderF   = flag.String("ladder", "", "comma-separated node counts for the scale ladder (e.g. 10000,100000,1000000); with -scorecard the rungs embed in the scorecard JSON")
		ladderSh  = flag.String("ladder-shape", "window", "deployment field for -ladder rungs")
		ladderDeg = flag.Float64("ladder-deg", 7, "target average degree for -ladder rungs")
		ladderOut = flag.String("ladder-out", "", "write the -ladder rungs as standalone JSON to this path (without -scorecard)")
		ladderMax = flag.Float64("ladder-ceiling", 0, "fail when any -ladder rung's extraction exceeds this many seconds (0 = no ceiling)")
		churnF    = flag.String("churn", "", "comma-separated churn rates (fraction of nodes failing per update batch, e.g. 0.0001,0.001,0.01): stream steady-state failure/recovery batches through the incremental extractor and report updates/sec vs from-scratch; with -scorecard the rows embed in the scorecard JSON")
		churnN    = flag.Int("churn-n", 100000, "node count of the -churn field")
		churnSh   = flag.String("churn-shape", "window", "deployment field for -churn")
		churnDeg  = flag.Float64("churn-deg", 7, "target average degree for -churn")
		churnB    = flag.Int("churn-batches", 20, "timed update batches per -churn rate")
		churnOut  = flag.String("churn-out", "", "write the -churn rows as standalone JSON to this path (without -scorecard)")
		churnMax  = flag.Float64("churn-ceiling", 0, "fail when the whole -churn run exceeds this many seconds of wall clock (0 = no ceiling)")
		churnMin  = flag.Float64("churn-floor", 0, "fail when any -churn rate's incremental speedup vs from-scratch falls below this factor (0 = no floor)")
	)
	flag.Parse()

	switch *engine {
	case "", "serial", "parallel":
		if *engine != "" {
			// The experiment drivers build their own simulators; the
			// process-wide override is how a forced engine reaches them.
			os.Setenv("BFSKEL_SIMNET_ENGINE", *engine)
		}
	default:
		return fmt.Errorf("unknown -engine %q (want serial or parallel)", *engine)
	}

	if *pprofAddr != "" {
		fmt.Fprintln(os.Stderr, "skelbench: -pprof is deprecated; use -obs (same address, pprof included)")
		if *obsAddr == "" {
			*obsAddr = *pprofAddr
		}
	}

	var traceSink *bfskel.JSONLSink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = bfskel.NewJSONLSink(f)
	}
	var ob bfskel.ObsScope
	if *obsAddr != "" {
		// The live plane needs the full wiring: recorder + stream + metrics,
		// with the optional file sink riding along.
		ob = bfskel.NewLiveObsScope(0, traceSink)
		srv, err := ob.Serve(*obsAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs: serving on http://%s/ (metrics, runs, trace, profile, pprof)\n", srv.Addr())
		if *obsWait {
			defer waitInterrupted(ob)
		}
	} else {
		if traceSink != nil {
			ob.Tracer = bfskel.NewTracer(traceSink)
		}
		if *metricsOn || *jsonPath != "" {
			ob.Metrics = bfskel.NewMetricsRegistry()
		}
	}

	compare := func(current []bfskel.BenchCell) error {
		if *comparePt == "" {
			return nil
		}
		return runCompare(*comparePt, current, *tolerance, *cmpOut, *cmpStrict)
	}

	// The ladder runs after any scorecard measurement: the 10^6-node rung
	// leaves a multi-hundred-MB heap behind, which would skew the GC-heavy
	// backends' wall times if it ran first.
	ladderFn := func() ([]bfskel.LadderRung, error) {
		if *ladderF == "" {
			return nil, nil
		}
		return runLadder(*ladderF, *ladderSh, *ladderDeg, *seed, *ladderMax, *ladderOut, *scorePath == "")
	}

	churnFn := func() ([]bfskel.ChurnRow, error) {
		if *churnF == "" {
			return nil, nil
		}
		return runChurn(*churnF, *churnSh, *churnN, *churnDeg, *churnB, *seed,
			*churnMax, *churnMin, *churnOut, *scorePath == "")
	}

	if *scorePath != "" {
		return runScorecard(*scorePath, *backends, *shapesF, *nOverride, *seed, ladderFn, churnFn, ob, *metricsOn, compare)
	}
	standalone := false
	if *ladderF != "" {
		if _, err := ladderFn(); err != nil {
			return err
		}
		standalone = true
	}
	if *churnF != "" {
		if _, err := churnFn(); err != nil {
			return err
		}
		standalone = true
	}
	if standalone && *fig == "" {
		// Ladder/churn-only invocation: don't drag the full figure sweep
		// along.
		return nil
	}

	figures := bfskel.FigureNames()
	if *fig != "" {
		figures = []string{*fig}
	}
	rep := report{Date: time.Now().UTC().Format(time.RFC3339), Seed: *seed, Note: *note} //lint:allow determinism report date stamp; results are keyed by Seed
	for _, f := range figures {
		rows, err := bfskel.RunFigureObs(f, *seed, ob)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		fmt.Printf("== %s ==\n", f)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		rep.Figures = append(rep.Figures, figureDump{Figure: f, Rows: rows})
	}
	var cells []bfskel.BenchCell
	for _, f := range rep.Figures {
		cells = append(cells, bfskel.BenchCellsFromRows(f.Figure, f.Rows)...)
	}
	if err := compare(cells); err != nil {
		return err
	}
	if ob.Metrics != nil {
		snap := ob.Metrics.Snapshot()
		rep.Metrics = &snap
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonPath)
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			return fmt.Errorf("trace %s: %w", *tracePath, err)
		}
		fmt.Println("wrote", *tracePath)
	}
	if *metricsOn {
		if err := ob.Metrics.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runLadder drives the scale ladder (-ladder): one build + one extraction
// per requested size, with wall-time, stage, and peak-RSS reporting. The
// rungs are returned for embedding in a scorecard; standalone invocations
// optionally write them to their own JSON file. A non-zero ceiling turns
// the ladder into a CI gate: any errored rung or extraction slower than the
// ceiling fails the run.
func runLadder(sizeList, shape string, deg float64, seed int64, ceiling float64, outPath string, standalone bool) ([]bfskel.LadderRung, error) {
	var sizes []int
	for _, f := range strings.Split(sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-ladder: bad size %q", f)
		}
		sizes = append(sizes, n)
	}
	rungs, err := bfskel.RunLadder(bfskel.LadderConfig{
		Shape: shape, Sizes: sizes, TargetDeg: deg, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	fmt.Println("== ladder ==")
	for _, r := range rungs {
		fmt.Println(" ", r)
	}
	if standalone && outPath != "" {
		card := bfskel.Scorecard{
			Date:   time.Now().UTC().Format(time.RFC3339), //lint:allow determinism report date stamp; results are keyed by Seed
			Seed:   seed,
			Ladder: rungs,
		}
		data, err := json.MarshalIndent(&card, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Println("wrote", outPath)
	}
	for _, r := range rungs {
		if r.Err != "" {
			return nil, fmt.Errorf("-ladder: rung n=%d failed: %s", r.N, r.Err)
		}
		if ceiling > 0 && r.ExtractMs > ceiling*1000 {
			return nil, fmt.Errorf("-ladder-ceiling: rung n=%d extracted in %.1fms, over the %.0fs ceiling", r.N, r.ExtractMs, ceiling)
		}
	}
	return rungs, nil
}

// runChurn drives the churn-throughput bench (-churn): a steady stream of
// failure/recovery batches per rate through the incremental extractor, with
// updates/sec, fallback and dirty-fraction reporting. A non-zero ceiling or
// floor turns the bench into a CI gate: the ceiling bounds the whole run's
// wall clock, the floor asserts a minimum incremental-vs-full speedup.
func runChurn(rateList, shape string, n int, deg float64, batches int, seed int64, ceiling, floor float64, outPath string, standalone bool) ([]bfskel.ChurnRow, error) {
	var rates []float64
	for _, f := range strings.Split(rateList, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 || r > 1 {
			return nil, fmt.Errorf("-churn: bad rate %q", f)
		}
		rates = append(rates, r)
	}
	start := time.Now() //lint:allow determinism churn wall-time report; results are keyed by Seed
	rows, err := bfskel.RunChurnBench(bfskel.ChurnBenchConfig{
		Shape: shape, N: n, TargetDeg: deg, Seed: seed,
		Rates: rates, Batches: batches,
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	fmt.Println("== churn ==")
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	if standalone && outPath != "" {
		card := bfskel.Scorecard{
			Date:  time.Now().UTC().Format(time.RFC3339), //lint:allow determinism report date stamp; results are keyed by Seed
			Seed:  seed,
			Churn: rows,
		}
		data, err := json.MarshalIndent(&card, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Println("wrote", outPath)
	}
	for _, r := range rows {
		if r.Err != "" {
			return nil, fmt.Errorf("-churn: rate %g failed: %s", r.Rate, r.Err)
		}
		if floor > 0 && r.Speedup < floor {
			return nil, fmt.Errorf("-churn-floor: rate %g sustained %.1fx vs from-scratch, below the %.0fx floor", r.Rate, r.Speedup, floor)
		}
	}
	if ceiling > 0 && elapsed > time.Duration(ceiling*float64(time.Second)) {
		return nil, fmt.Errorf("-churn-ceiling: run took %.1fs, over the %.0fs ceiling", elapsed.Seconds(), ceiling)
	}
	return rows, nil
}

// runScorecard drives the cross-backend comparison: every named backend
// over every named shape through the facade's quality harness, printed as
// an aligned table and written as machine-readable JSON.
func runScorecard(path, backendList, shapeList string, nOverride int, seed int64, ladderFn func() ([]bfskel.LadderRung, error), churnFn func() ([]bfskel.ChurnRow, error), ob bfskel.ObsScope, metricsOn bool, compare func([]bfskel.BenchCell) error) error {
	defaults := map[string]struct {
		n   int
		deg float64
	}{}
	fig1 := bfskel.Fig1Scenario()
	defaults[fig1.ShapeName] = struct {
		n   int
		deg float64
	}{fig1.N, fig1.Deg}
	for _, sc := range bfskel.Fig4Scenarios() {
		defaults[sc.ShapeName] = struct {
			n   int
			deg float64
		}{sc.N, sc.Deg}
	}

	var scenarios []bfskel.ScorecardScenario
	for _, name := range strings.Split(shapeList, ",") {
		name = strings.TrimSpace(name)
		shape, err := bfskel.ShapeByName(name)
		if err != nil {
			return err
		}
		d, ok := defaults[name]
		if !ok {
			d.n, d.deg = 2500, 7.0
		}
		if nOverride > 0 {
			d.n = nOverride
		}
		scenarios = append(scenarios, bfskel.ScorecardScenario{
			Name: name,
			Spec: bfskel.NetworkSpec{
				Shape: shape, N: d.n, TargetDeg: d.deg,
				Seed: seed, Layout: bfskel.LayoutGrid,
			},
		})
	}
	names := strings.Split(backendList, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	card, err := bfskel.RunScorecard(scenarios, names, ob)
	if err != nil {
		return err
	}
	card.Date = time.Now().UTC().Format(time.RFC3339) //lint:allow determinism report date stamp; results are keyed by Seed
	// Churn before the ladder: the ladder's million-node rung leaves the heap
	// inflated, which skews the churn means if it runs first.
	card.Churn, err = churnFn()
	if err != nil {
		return err
	}
	card.Ladder, err = ladderFn()
	if err != nil {
		return err
	}
	fmt.Println(card)
	data, err := json.MarshalIndent(card, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	if err := compare(bfskel.BenchCellsFromScorecard(card)); err != nil {
		return err
	}
	if metricsOn {
		return ob.Metrics.WritePrometheus(os.Stdout)
	}
	return nil
}

// runCompare diffs the just-measured cells against a checked-in baseline
// (scorecard or figure report) and prints the delta table. Regressions only
// fail the run under -compare-strict; by default they surface in the log.
func runCompare(path string, current []bfskel.BenchCell, tolerance float64, outPath string, strict bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-compare: %w", err)
	}
	baseline, format, err := bfskel.ParseBenchBaseline(data)
	if err != nil {
		return fmt.Errorf("-compare %s: %w", path, err)
	}
	d := bfskel.CompareBenchCells(baseline, current, path, tolerance)
	fmt.Printf("baseline %s (%s format)\n%s\n", path, format, d)
	if outPath != "" {
		j, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(j, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", outPath)
	}
	if strict && d.Regressions > 0 {
		return fmt.Errorf("-compare-strict: %d regressed rows vs %s (tolerance %+.0f%%)", d.Regressions, path, tolerance*100)
	}
	return nil
}

// waitInterrupted keeps the process alive until SIGINT so the obs server
// stays queryable after the sweep (-obs-wait). A side tracer emits heartbeat
// spans into the live stream only — not the flight recorder — so /trace
// always has traffic without polluting /runs.
func waitInterrupted(ob bfskel.ObsScope) {
	fmt.Fprintln(os.Stderr, "obs: run complete; serving until interrupted (-obs-wait)")
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	done := make(chan struct{})
	go func() {
		hb := bfskel.NewTracer(ob.Stream)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			hb.StartSpan("heartbeat", bfskel.TraceAttr{Key: "seq", Val: i}).End()
			time.Sleep(time.Second)
		}
	}()
	<-stop
	close(done)
	signal.Stop(stop)
	fmt.Fprintln(os.Stderr, "obs: interrupted, shutting down")
}
