// Command skelbench regenerates the data series behind every figure and
// claim of the paper's evaluation (Figs. 1, 3-8, Sec. V complexity and
// parameter analyses) plus the baseline and routing comparisons. Each row
// prints the measured counterparts of what the paper reports: node counts,
// average degrees, skeleton size, loop structure (homotopy), medial
// quality, stability, and distributed cost.
//
// Usage:
//
//	skelbench                 # run every experiment
//	skelbench -fig fig5       # run one experiment
//	skelbench -seed 7         # change the deployment seed
//	skelbench -json out.json  # also dump rows (with per-phase stats) as JSON
//	skelbench -note "..."     # record a free-form note in the JSON report
//	skelbench -trace t.jsonl  # emit a structured span/event trace (see cmd/skeltrace)
//	skelbench -metrics        # dump Prometheus-text metrics on exit
//	skelbench -pprof :6060    # serve net/http/pprof while running
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skelbench:", err)
		os.Exit(1)
	}
}

// figureDump is one experiment's rows in the machine-readable report.
type figureDump struct {
	Figure string                 `json:"figure"`
	Rows   []bfskel.ExperimentRow `json:"rows"`
}

// report is the top-level JSON document written by -json.
type report struct {
	Date string `json:"date"`
	Seed int64  `json:"seed"`
	// Note is free-form operator context (-note), e.g. which commit or
	// benchmark delta the report documents.
	Note    string       `json:"note,omitempty"`
	Figures []figureDump `json:"figures"`
	// Metrics is the final registry snapshot; present whenever the run
	// collected metrics (-metrics, or any -json run).
	Metrics *bfskel.MetricsSnapshot `json:"metrics,omitempty"`
}

func run() error {
	var (
		fig       = flag.String("fig", "", "experiment to run (empty = all); one of "+strings.Join(bfskel.FigureNames(), ", "))
		seed      = flag.Int64("seed", 1, "deployment/link seed")
		jsonPath  = flag.String("json", "", "write all rows (including per-phase stats) as JSON")
		note      = flag.String("note", "", "free-form note recorded in the -json report")
		tracePath = flag.String("trace", "", "write a structured span/event trace as JSONL (see cmd/skeltrace)")
		metricsOn = flag.Bool("metrics", false, "dump Prometheus-text metrics on exit")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		engine    = flag.String("engine", "", "force the simnet round engine for the protocol phases: serial or parallel (empty = auto)")
		scorePath = flag.String("scorecard", "", "run the cross-backend scorecard instead of the figures and write it as JSON to this path")
		backends  = flag.String("backends", "bfskel,map,case,localsep", "comma-separated skeleton backends for -scorecard")
		shapesF   = flag.String("shapes", "window,twoholes,spiral", "comma-separated shapes for -scorecard")
		nOverride = flag.Int("n", 0, "override the node count of every -scorecard scenario (0 = per-shape paper defaults)")
	)
	flag.Parse()

	switch *engine {
	case "", "serial", "parallel":
		if *engine != "" {
			// The experiment drivers build their own simulators; the
			// process-wide override is how a forced engine reaches them.
			os.Setenv("BFSKEL_SIMNET_ENGINE", *engine)
		}
	default:
		return fmt.Errorf("unknown -engine %q (want serial or parallel)", *engine)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "skelbench: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	var ob bfskel.ObsScope
	var traceSink *bfskel.JSONLSink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		traceSink = bfskel.NewJSONLSink(f)
		ob.Tracer = bfskel.NewTracer(traceSink)
	}
	if *metricsOn || *jsonPath != "" {
		ob.Metrics = bfskel.NewMetricsRegistry()
	}

	if *scorePath != "" {
		return runScorecard(*scorePath, *backends, *shapesF, *nOverride, *seed, ob, *metricsOn)
	}

	figures := bfskel.FigureNames()
	if *fig != "" {
		figures = []string{*fig}
	}
	rep := report{Date: time.Now().UTC().Format(time.RFC3339), Seed: *seed, Note: *note} //lint:allow determinism report date stamp; results are keyed by Seed
	for _, f := range figures {
		rows, err := bfskel.RunFigureObs(f, *seed, ob)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		fmt.Printf("== %s ==\n", f)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		rep.Figures = append(rep.Figures, figureDump{Figure: f, Rows: rows})
	}
	if ob.Metrics != nil {
		snap := ob.Metrics.Snapshot()
		rep.Metrics = &snap
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonPath)
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			return fmt.Errorf("trace %s: %w", *tracePath, err)
		}
		fmt.Println("wrote", *tracePath)
	}
	if *metricsOn {
		if err := ob.Metrics.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runScorecard drives the cross-backend comparison: every named backend
// over every named shape through the facade's quality harness, printed as
// an aligned table and written as machine-readable JSON.
func runScorecard(path, backendList, shapeList string, nOverride int, seed int64, ob bfskel.ObsScope, metricsOn bool) error {
	defaults := map[string]struct {
		n   int
		deg float64
	}{}
	fig1 := bfskel.Fig1Scenario()
	defaults[fig1.ShapeName] = struct {
		n   int
		deg float64
	}{fig1.N, fig1.Deg}
	for _, sc := range bfskel.Fig4Scenarios() {
		defaults[sc.ShapeName] = struct {
			n   int
			deg float64
		}{sc.N, sc.Deg}
	}

	var scenarios []bfskel.ScorecardScenario
	for _, name := range strings.Split(shapeList, ",") {
		name = strings.TrimSpace(name)
		shape, err := bfskel.ShapeByName(name)
		if err != nil {
			return err
		}
		d, ok := defaults[name]
		if !ok {
			d.n, d.deg = 2500, 7.0
		}
		if nOverride > 0 {
			d.n = nOverride
		}
		scenarios = append(scenarios, bfskel.ScorecardScenario{
			Name: name,
			Spec: bfskel.NetworkSpec{
				Shape: shape, N: d.n, TargetDeg: d.deg,
				Seed: seed, Layout: bfskel.LayoutGrid,
			},
		})
	}
	names := strings.Split(backendList, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	card, err := bfskel.RunScorecard(scenarios, names, ob)
	if err != nil {
		return err
	}
	card.Date = time.Now().UTC().Format(time.RFC3339) //lint:allow determinism report date stamp; results are keyed by Seed
	fmt.Println(card)
	data, err := json.MarshalIndent(card, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	if metricsOn {
		return ob.Metrics.WritePrometheus(os.Stdout)
	}
	return nil
}
