// Command skelbench regenerates the data series behind every figure and
// claim of the paper's evaluation (Figs. 1, 3-8, Sec. V complexity and
// parameter analyses) plus the baseline and routing comparisons. Each row
// prints the measured counterparts of what the paper reports: node counts,
// average degrees, skeleton size, loop structure (homotopy), medial
// quality, stability, and distributed cost.
//
// Usage:
//
//	skelbench                 # run every experiment
//	skelbench -fig fig5       # run one experiment
//	skelbench -seed 7         # change the deployment seed
//	skelbench -json out.json  # also dump rows (with per-phase stats) as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bfskel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "skelbench:", err)
		os.Exit(1)
	}
}

// figureDump is one experiment's rows in the machine-readable report.
type figureDump struct {
	Figure string                 `json:"figure"`
	Rows   []bfskel.ExperimentRow `json:"rows"`
}

// report is the top-level JSON document written by -json.
type report struct {
	Date    string       `json:"date"`
	Seed    int64        `json:"seed"`
	Figures []figureDump `json:"figures"`
}

func run() error {
	var (
		fig      = flag.String("fig", "", "experiment to run (empty = all); one of "+strings.Join(bfskel.FigureNames(), ", "))
		seed     = flag.Int64("seed", 1, "deployment/link seed")
		jsonPath = flag.String("json", "", "write all rows (including per-phase stats) as JSON")
	)
	flag.Parse()

	figures := bfskel.FigureNames()
	if *fig != "" {
		figures = []string{*fig}
	}
	rep := report{Date: time.Now().UTC().Format(time.RFC3339), Seed: *seed}
	for _, f := range figures {
		rows, err := bfskel.RunFigure(f, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		fmt.Printf("== %s ==\n", f)
		for _, r := range rows {
			fmt.Println(" ", r)
		}
		rep.Figures = append(rep.Figures, figureDump{Figure: f, Rows: rows})
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonPath)
	}
	return nil
}
