package bfskel

import "testing"

// TestFailureCreatesHole: killing a disk of sensors inside a solid region
// creates a hole; re-extraction detects it as a genuine skeleton loop (the
// paper's "loops caused by node failure are genuine" case).
func TestFailureCreatesHole(t *testing.T) {
	net := testNetwork(t, "onehole", 2500, 7, 1)
	before, err := net.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := before.Skeleton.CycleRank(); got != 1 {
		t.Fatalf("pre-failure rank = %d, want 1", got)
	}

	// Kill a disk in the solid lower-right quadrant, well away from the
	// existing hole.
	failed := NodesWithin(net, Point{X: 80, Y: 20}, 10)
	if len(failed) < 30 {
		t.Fatalf("only %d nodes in the failure disk", len(failed))
	}
	after := FailNodes(net, failed)
	if after.N() >= net.N()-len(failed)+5 {
		t.Fatalf("failure removed too few nodes: %d -> %d", net.N(), after.N())
	}
	res, err := after.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Skeleton.CycleRank(); got != 2 {
		t.Errorf("post-failure rank = %d, want 2 (original hole + failure hole)", got)
	}
	if comps := res.Skeleton.Components(); comps != 1 {
		t.Errorf("post-failure components = %d", comps)
	}
}

// TestFailNodesBookkeeping: survivors keep their positions and mutual
// links.
func TestFailNodesBookkeeping(t *testing.T) {
	net := testNetwork(t, "star", 800, 7, 1)
	failed := []int32{0, 5, 10}
	after := FailNodes(net, failed)
	if after.N() > net.N()-len(failed) {
		t.Errorf("N = %d after failing %d of %d", after.N(), len(failed), net.N())
	}
	// Every survivor position existed before.
	existing := make(map[Point]bool, net.N())
	for _, p := range net.Points {
		existing[p] = true
	}
	for _, p := range after.Points {
		if !existing[p] {
			t.Fatalf("survivor at unknown position %v", p)
		}
	}
}

// TestExtractDistributedMatchesCentralized: the full distributed pipeline
// produces the same sites and the same skeleton topology as the centralized
// one (node-level paths may differ where several shortest reverse paths are
// equally valid).
func TestExtractDistributedMatchesCentralized(t *testing.T) {
	net := testNetwork(t, "twoholes", 1800, 7, 2)
	cen, err := net.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cen.EffectiveK != DefaultParams().K {
		t.Skip("saturation guard engaged; radii not comparable")
	}
	dist, dres, err := ExtractDistributed(net, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Sites) != len(cen.Sites) {
		t.Fatalf("sites: distributed %d, centralized %d", len(dist.Sites), len(cen.Sites))
	}
	for i := range dist.Sites {
		if dist.Sites[i] != cen.Sites[i] {
			t.Fatalf("site %d differs", i)
		}
	}
	if got, want := dist.Skeleton.CycleRank(), cen.Skeleton.CycleRank(); got != want {
		t.Errorf("cycle rank: distributed %d, centralized %d", got, want)
	}
	if got, want := dist.Skeleton.Components(), cen.Skeleton.Components(); got != want {
		t.Errorf("components: distributed %d, centralized %d", got, want)
	}
	if dres.TotalMessages() == 0 {
		t.Error("no transmissions counted")
	}
}
