// Package mapax implements the MAP baseline (Bruck, Gao, Jiang: "MAP:
// Medial axis based geometric routing in sensor networks") to the fidelity
// the paper's comparison requires: given identified boundary nodes, MAP
// computes the hop distance transform, declares nodes equidistant to two
// well-separated boundary nodes as medial nodes, and connects them into a
// medial axis. Its defining weakness — sensitivity to boundary noise, where
// a small bump grows a long spurious branch — emerges naturally from this
// construction and is what experiment E10 measures.
package mapax

import (
	"bfskel/internal/boundary"
	"bfskel/internal/core"
	"bfskel/internal/graph"
)

// Options configures the baseline.
type Options struct {
	// TieSlack is the distance slack for recording several nearest
	// boundary nodes (default 1).
	TieSlack int32
	// SeparationFactor scales the stability test: two nearest boundary
	// nodes on the same cycle count as distinct only if their separation
	// along the cycle exceeds SeparationFactor x the node's boundary
	// distance (default 2).
	SeparationFactor float64
	// MinSeparation is the absolute minimum separation in hops
	// (default 6; below it, tie-set spread near the boundary band passes
	// the test spuriously).
	MinSeparation int
}

func (o Options) withDefaults() Options {
	if o.TieSlack <= 0 {
		o.TieSlack = 1
	}
	if o.SeparationFactor <= 0 {
		o.SeparationFactor = 2
	}
	if o.MinSeparation <= 0 {
		o.MinSeparation = 6
	}
	return o
}

// Result is the extracted medial axis.
type Result struct {
	// DistToBoundary is the hop distance transform.
	DistToBoundary []int32
	// MedialNodes are the nodes that passed the medial test, sorted.
	MedialNodes []int32
	// Skeleton is the connected medial-axis structure.
	Skeleton *core.Skeleton
}

// Extract runs the MAP baseline on a graph with known boundary.
func Extract(g *graph.Graph, b *boundary.Result, opts Options) *Result {
	return extractStaged(g, b, opts, func(_ string, fn func()) { fn() })
}

// extractStaged is the MAP pipeline split into named stages, each run
// through the given hook — inline for the plain Extract entry point, or
// under a timed "stage.<name>" span when driven by the registry backend.
func extractStaged(g *graph.Graph, b *boundary.Result, opts Options,
	stage func(name string, fn func())) *Result {

	opts = opts.withDefaults()
	res := &Result{Skeleton: core.NewSkeleton(g.N())}

	// Hop distance transform from the boundary, with tie records.
	var records [][]graph.SourceRecord
	stage("transform", func() {
		res.DistToBoundary, records = g.MultiSourceRecords(b.Nodes, opts.TieSlack)
	})

	// Medial test: nearest boundary nodes on different cycles or far apart.
	isMedial := make([]bool, g.N())
	stage("medial", func() {
		cycleOf := make(map[int32]int, len(b.Nodes))
		for ci, cycle := range b.Cycles {
			for _, v := range cycle {
				cycleOf[v] = ci
			}
		}
		sep := newSeparation(g)
		dmin := res.DistToBoundary
		for v := 0; v < g.N(); v++ {
			if b.IsBoundary[v] || dmin[v] == graph.Unreachable {
				continue
			}
			if medialAt(records[v], dmin[v], cycleOf, sep, opts) {
				isMedial[v] = true
				res.MedialNodes = append(res.MedialNodes, int32(v))
			}
		}
	})

	// Connect medial nodes into MAP's medial-axis representation.
	stage("connect", func() {
		core.ConnectWithin2(g, isMedial, res.Skeleton)
	})
	return res
}

// medialAt applies MAP's medial-node test: two recorded nearest boundary
// nodes on different boundary cycles, or far apart in hop distance along
// the network (the stability condition that suppresses boundary noise — up
// to the separation threshold, which is exactly where MAP's noise
// sensitivity lives).
func medialAt(recs []graph.SourceRecord, dist int32,
	cycleOf map[int32]int, sep *separation, opts Options) bool {

	minSep := int32(opts.SeparationFactor * float64(dist))
	if minSep < int32(opts.MinSeparation) {
		minSep = int32(opts.MinSeparation)
	}
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			ci, oki := cycleOf[recs[i].Source]
			cj, okj := cycleOf[recs[j].Source]
			if !oki || !okj {
				continue
			}
			if ci != cj {
				return true
			}
			if sep.atLeast(recs[i].Source, recs[j].Source, minSep) {
				return true
			}
		}
	}
	return false
}

// separation memoizes capped pairwise hop distances between boundary nodes.
type separation struct {
	g    *graph.Graph
	dist map[[2]int32]int32 // exact distance, or cap+1 meaning "> cap"
	cap  map[[2]int32]int32
}

func newSeparation(g *graph.Graph) *separation {
	return &separation{
		g:    g,
		dist: make(map[[2]int32]int32),
		cap:  make(map[[2]int32]int32),
	}
}

// atLeast reports whether the hop distance between a and b is >= want.
func (s *separation) atLeast(a, b, want int32) bool {
	if a == b {
		return want <= 0
	}
	key := [2]int32{a, b}
	if a > b {
		key = [2]int32{b, a}
	}
	if d, ok := s.dist[key]; ok {
		if d <= s.cap[key] {
			return d >= want // exact
		}
		if s.cap[key] >= want {
			return true // "> cap >= want"
		}
		// The cached bound is too weak; recompute below.
	}
	d := s.hopDistCapped(key[0], key[1], want)
	s.dist[key] = d
	s.cap[key] = want
	return d >= want
}

// hopDistCapped returns the hop distance, or cap+1 when it exceeds cap.
func (s *separation) hopDistCapped(a, b, cap int32) int32 {
	dist := map[int32]int32{a: 0}
	queue := []int32{a}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du >= cap {
			continue
		}
		for _, v := range s.g.Neighbors(int(u)) {
			if _, seen := dist[v]; seen {
				continue
			}
			if v == b {
				return du + 1
			}
			dist[v] = du + 1
			queue = append(queue, v)
		}
	}
	return cap + 1
}
