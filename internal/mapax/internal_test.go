package mapax

import (
	"testing"

	"bfskel/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	g.SortAdjacency()
	return g
}

func TestSeparationAtLeast(t *testing.T) {
	g := pathGraph(10)
	s := newSeparation(g)
	// dist(0,5) = 5.
	if !s.atLeast(0, 5, 5) {
		t.Error("5 >= 5 failed")
	}
	if s.atLeast(0, 5, 6) {
		t.Error("5 >= 6 succeeded")
	}
	if !s.atLeast(0, 5, 3) {
		t.Error("5 >= 3 failed")
	}
	if !s.atLeast(3, 3, 0) || s.atLeast(3, 3, 1) {
		t.Error("self distance handling")
	}
}

// TestSeparationMemoUpgrade: a weak cached bound ("> cap") must be
// recomputed when a later query needs a larger threshold.
func TestSeparationMemoUpgrade(t *testing.T) {
	g := pathGraph(20)
	s := newSeparation(g)
	// First query with a small want caches "> 3".
	if !s.atLeast(0, 10, 3) {
		t.Fatal("10 >= 3 failed")
	}
	// Now a query needing exactness beyond the cached cap.
	if s.atLeast(0, 10, 11) {
		t.Error("10 >= 11 succeeded after weak cache")
	}
	if !s.atLeast(0, 10, 10) {
		t.Error("10 >= 10 failed after recompute")
	}
	// Symmetric key: (10,0) hits the same cache entry.
	if !s.atLeast(10, 0, 10) {
		t.Error("symmetric lookup failed")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TieSlack != 1 || o.SeparationFactor != 2 || o.MinSeparation != 6 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestMedialAtDifferentCycles(t *testing.T) {
	sep := newSeparation(pathGraph(4))
	cycleOf := map[int32]int{0: 0, 3: 1}
	recs := []graph.SourceRecord{{Source: 0, D: 2}, {Source: 3, D: 2}}
	if !medialAt(recs, 2, cycleOf, sep, Options{}.withDefaults()) {
		t.Error("different-cycle pair not medial")
	}
	// Same cycle, close together: not medial.
	cycleOf[3] = 0
	if medialAt(recs, 2, cycleOf, sep, Options{}.withDefaults()) {
		t.Error("close same-cycle pair declared medial")
	}
	// Sources missing from any cycle are ignored.
	if medialAt([]graph.SourceRecord{{Source: 9, D: 1}, {Source: 8, D: 1}}, 1,
		cycleOf, sep, Options{}.withDefaults()) {
		t.Error("unknown sources declared medial")
	}
}
