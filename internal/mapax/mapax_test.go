package mapax_test

import (
	"testing"

	"bfskel/internal/boundary"
	"bfskel/internal/mapax"
	"bfskel/internal/nettest"
)

// TestExtractStar checks MAP's medial nodes lie medially: their mean
// geometric distance to the true boundary clearly exceeds the network-wide
// mean.
func TestExtractStar(t *testing.T) {
	net := nettest.Grid("star", 1394, 7, 1)
	b := boundary.Detect(net.Graph, boundary.Options{})
	res := mapax.Extract(net.Graph, b, mapax.Options{})
	if len(res.MedialNodes) == 0 {
		t.Fatal("no medial nodes")
	}

	var all, medial float64
	for v := 0; v < net.Graph.N(); v++ {
		all += net.Shape.Poly.BoundaryDist(net.Points[v])
	}
	all /= float64(net.Graph.N())
	for _, v := range res.MedialNodes {
		medial += net.Shape.Poly.BoundaryDist(net.Points[v])
	}
	medial /= float64(len(res.MedialNodes))
	t.Logf("medial nodes=%d, mean clearance %.2f vs network %.2f", len(res.MedialNodes), medial, all)
	if medial < 1.3*all {
		t.Errorf("medial mean clearance %.2f not clearly above network mean %.2f", medial, all)
	}
	if res.Skeleton.NumNodes() == 0 {
		t.Error("empty skeleton structure")
	}
}

// TestNoiseSensitivity reproduces MAP's defining weakness: flipping a few
// interior nodes into fake boundary nodes (boundary noise) inflates the
// medial set, because every noisy node forms a fresh one-node "cycle" that
// trivially passes the different-cycle test.
func TestNoiseSensitivity(t *testing.T) {
	net := nettest.Grid("star", 1394, 7, 1)
	clean := boundary.Detect(net.Graph, boundary.Options{})
	base := mapax.Extract(net.Graph, clean, mapax.Options{})

	noisy := boundary.Detect(net.Graph, boundary.Options{})
	// Promote a few interior nodes to boundary status.
	added := 0
	for v := 0; v < net.Graph.N() && added < 8; v++ {
		if !noisy.IsBoundary[v] && net.Shape.Poly.BoundaryDist(net.Points[v]) > 8 {
			noisy.IsBoundary[v] = true
			noisy.Nodes = append(noisy.Nodes, int32(v))
			noisy.Cycles = append(noisy.Cycles, []int32{int32(v)})
			added++
		}
	}
	perturbed := mapax.Extract(net.Graph, noisy, mapax.Options{})
	t.Logf("medial nodes: clean=%d noisy=%d", len(base.MedialNodes), len(perturbed.MedialNodes))
	if len(perturbed.MedialNodes) <= len(base.MedialNodes) {
		t.Errorf("boundary noise did not inflate MAP's medial set (%d <= %d)",
			len(perturbed.MedialNodes), len(base.MedialNodes))
	}
}
