package mapax

import (
	"bfskel/internal/boundary"
	"bfskel/internal/graph"
	"bfskel/internal/obs"
	"bfskel/internal/skeleton"
)

func init() { skeleton.Register(backend{}) }

// backend exposes MAP behind the registry seam. The boundary substrate MAP
// assumes as given input is resolved through the pluggable provider in
// skeleton.Params — by default the connectivity-based detector, but noise
// experiments and precomputed boundaries plug in the same way.
type backend struct {
	// Opts configures the baseline; the zero value uses the defaults.
	Opts Options
}

// Name implements skeleton.Backend.
func (backend) Name() string { return "map" }

// Capabilities implements skeleton.Backend: MAP consumes a boundary
// substrate and produces neither segmentation nor homotopy guarantees.
func (backend) Capabilities() skeleton.Capabilities {
	return skeleton.Capabilities{NeedsBoundary: true}
}

// Extract implements skeleton.Backend.
func (bk backend) Extract(g *graph.Graph, p skeleton.Params) (*skeleton.Result, *skeleton.Stats, error) {
	run := skeleton.NewRun(p, bk.Name(), g)
	var b *boundary.Result
	if err := run.Stage("boundary", func() (err error) {
		b, err = p.ResolveBoundary(g)
		return err
	}); err != nil {
		run.Fail(err)
		return nil, nil, err
	}
	res := extractStaged(g, b, bk.Opts, run.Hook())
	stats := run.Finish(
		obs.Int("medialNodes", len(res.MedialNodes)),
		obs.Int("skelNodes", res.Skeleton.NumNodes()))
	stats.BoundaryNodes = len(b.Nodes)
	out := &skeleton.Result{
		Backend:  bk.Name(),
		Nodes:    res.Skeleton.Nodes(),
		Skeleton: res.Skeleton,
		Boundary: b.Nodes,
		Stats:    stats,
		Native:   res,
	}
	return out, stats, nil
}
