package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces sync.Pool scratch hygiene: an object taken out of a
// pool must go back. Within a function, every Pool.Get needs a matching
// Put — ideally deferred, so early returns cannot leak the scratch (the
// staged Extractor's whole allocation win rests on this).
//
// The check also understands this package's accessor idiom: a function
// that returns the Get result (like Extractor.getWalker) is a pool
// accessor, and a function that Puts a parameter back (putWalker) is its
// releaser. Call sites of such wrappers are then held to the same Get/Put
// pairing rules, and a function that passes the accessor around as a
// method value must hand off the releaser with it.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc: "every sync.Pool.Get (or pool-accessor call) must be paired with " +
		"a Put on all return paths, typically via defer",
	Run: runPoolPair,
}

// poolOp is one Get or Put occurrence inside a function body.
type poolOp struct {
	call     *ast.CallExpr
	key      types.Object // pool variable/field, or accessor's pool key; nil if opaque
	label    string       // how to name the operation in diagnostics
	putLabel string       // for gets: the name of the matching release op
	accessor bool         // gets only: result escapes via return
	deferred bool         // puts only: runs under defer
	isParam  bool         // puts only: the released value is a parameter
	valueRef bool         // gets only: wrapper referenced as a value, not called
}

func runPoolPair(p *Pass) {
	info := p.Pkg.Info

	// Pass 1: classify package functions into pool accessors (return a
	// fresh Get) and releasers (Put a parameter back), keyed by the pool
	// object they wrap.
	accessors := make(map[types.Object]types.Object) // func -> pool key
	releasers := make(map[types.Object]types.Object) // func -> pool key
	releaserName := make(map[types.Object]string)    // pool key -> releaser name
	forEachFuncDecl(p, func(fd *ast.FuncDecl) {
		fobj := info.Defs[fd.Name]
		if fobj == nil {
			return
		}
		gets, puts := collectPoolOps(p, fd)
		for _, g := range gets {
			if g.accessor && g.key != nil {
				accessors[fobj] = g.key
			}
		}
		for _, pt := range puts {
			if pt.isParam && pt.key != nil {
				releasers[fobj] = pt.key
				releaserName[pt.key] = fd.Name.Name
			}
		}
	})

	// Pass 2: check every function's Get/Put pairing, with wrapper calls
	// folded in as synthetic ops.
	forEachFuncDecl(p, func(fd *ast.FuncDecl) {
		gets, puts := collectPoolOps(p, fd)
		wGets, wPuts := collectWrapperOps(p, fd, accessors, releasers, releaserName)
		checkPoolFunc(p, fd, append(gets, wGets...), append(puts, wPuts...))
	})
}

func forEachFuncDecl(p *Pass, fn func(*ast.FuncDecl)) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// collectPoolOps finds the raw sync.Pool Get/Put calls of one function
// (closures included: a Put inside a deferred literal still releases).
func collectPoolOps(p *Pass, fd *ast.FuncDecl) (gets, puts []poolOp) {
	info := p.Pkg.Info
	returns := collectReturns(fd.Body)
	defers := collectDefers(fd.Body)
	params := paramObjs(info, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || !isSyncPoolMethod(fn) {
			return true
		}
		key := rootObj(info, sel.X)
		switch fn.Name() {
		case "Get":
			op := poolOp{call: call, key: key, label: "sync.Pool.Get", putLabel: "Put"}
			op.accessor = escapesViaReturn(info, fd.Body, call, returns)
			gets = append(gets, op)
		case "Put":
			op := poolOp{call: call, key: key, label: "sync.Pool.Put"}
			op.deferred = underAnyDefer(defers, call.Pos())
			if len(call.Args) == 1 {
				if obj := rootObj(info, call.Args[0]); obj != nil && params[obj] {
					op.isParam = true
				}
			}
			puts = append(puts, op)
		}
		return true
	})
	return gets, puts
}

// collectWrapperOps finds calls to (and method-value references of) the
// package's pool accessors and releasers inside one function, turning them
// into synthetic Get/Put ops keyed by the wrapped pool.
func collectWrapperOps(p *Pass, fd *ast.FuncDecl,
	accessors, releasers map[types.Object]types.Object,
	releaserName map[types.Object]string) (gets, puts []poolOp) {

	info := p.Pkg.Info
	fobj := info.Defs[fd.Name]
	returns := collectReturns(fd.Body)
	defers := collectDefers(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn == fobj {
			return true // ignore recursion into the wrapper itself
		}
		if key, ok := accessors[fn]; ok {
			op := poolOp{call: call, key: key, label: fn.Name(),
				putLabel: releaserName[key]}
			op.accessor = escapesViaReturn(info, fd.Body, call, returns)
			gets = append(gets, op)
		}
		if key, ok := releasers[fn]; ok {
			puts = append(puts, poolOp{call: call, key: key, label: fn.Name(),
				deferred: underAnyDefer(defers, call.Pos())})
		}
		return true
	})

	// Method-value references: passing the accessor around without its
	// releaser hands someone a Get they cannot Put.
	var valueRefs []poolOp
	releaserRef := make(map[types.Object]bool) // pool key -> releaser referenced
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if key, ok := releasers[obj]; ok {
			releaserRef[key] = true
		}
		if key, ok := accessors[obj]; ok && !isCallee(fd.Body, id) {
			valueRefs = append(valueRefs, poolOp{key: key, label: obj.Name(),
				putLabel: releaserName[key], valueRef: true,
				call: &ast.CallExpr{Fun: id}})
		}
		return true
	})
	for _, ref := range valueRefs {
		if !releaserRef[ref.key] {
			p.Reportf(ref.call.Fun.Pos(), "pool accessor %s is passed around without its "+
				"releasing counterpart %s: the receiver cannot return the scratch to the pool",
				ref.label, ref.putLabel)
		}
	}
	return gets, puts
}

// checkPoolFunc applies the pairing rules to one function's merged ops.
func checkPoolFunc(p *Pass, fd *ast.FuncDecl, gets, puts []poolOp) {
	returns := collectReturns(fd.Body)
	for _, g := range gets {
		if g.accessor {
			continue // pool accessor: the caller owns the object now
		}
		var matching []poolOp
		for _, pt := range puts {
			if g.key == nil || pt.key == nil || g.key == pt.key {
				matching = append(matching, pt)
			}
		}
		if len(matching) == 0 {
			p.Reportf(g.call.Pos(), "%s result is never returned to the pool in %s: "+
				"add a matching %s, typically deferred", g.label, fd.Name.Name, g.putLabel)
			continue
		}
		deferred := false
		last := token.NoPos
		for _, pt := range matching {
			if pt.deferred {
				deferred = true
			}
			if pt.call.Pos() > last {
				last = pt.call.Pos()
			}
		}
		if deferred {
			continue
		}
		for _, ret := range returns {
			if ret.Pos() > g.call.End() && ret.End() < last {
				p.Reportf(ret.Pos(), "return between %s and its %s in %s: the pooled "+
					"object leaks on this path (release with defer)", g.label, g.putLabel,
					fd.Name.Name)
			}
		}
	}
}

// ---- small helpers ----

func isSyncPoolMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func paramObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func collectReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, r)
		}
		return true
	})
	return out
}

func collectDefers(body *ast.BlockStmt) []*ast.DeferStmt {
	var out []*ast.DeferStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			out = append(out, d)
		}
		return true
	})
	return out
}

func underAnyDefer(defers []*ast.DeferStmt, pos token.Pos) bool {
	for _, d := range defers {
		if within(d, pos) {
			return true
		}
	}
	return false
}

// escapesViaReturn reports whether the call's result is returned from the
// function: either the call sits inside a return statement, or it is
// assigned to a variable that some return statement mentions.
func escapesViaReturn(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr, returns []*ast.ReturnStmt) bool {
	for _, ret := range returns {
		if within(ret, call.Pos()) {
			return true
		}
	}
	var assigned types.Object
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || assigned != nil {
			return assigned == nil
		}
		for i, rhs := range as.Rhs {
			if within(rhs, call.Pos()) && i < len(as.Lhs) {
				assigned = rootObj(info, as.Lhs[i])
			}
		}
		return true
	})
	if assigned == nil {
		return false
	}
	for _, ret := range returns {
		for _, res := range ret.Results {
			if exprMentions(info, res, assigned) {
				return true
			}
		}
	}
	return false
}

// isCallee reports whether the identifier is the function position of some
// call expression in the body (as opposed to a method-value reference).
func isCallee(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun == id {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel == id {
				found = true
			}
		}
		return true
	})
	return found
}
