package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	Path   string // full import path (ModulePath[/Rel])
	Rel    string // module-relative directory; "" for the root package
	Dir    string // absolute directory
	ModDir string // absolute module root (for relativizing positions)
	Fset   *token.FileSet
	Files  []*ast.File // non-test files only
	Types  *types.Package
	Info   *types.Info
	// TypeErrors collects type-checking problems. Analysis continues past
	// them, but diagnostics that depend on the broken types may be missed,
	// so callers should surface these.
	TypeErrors []error
}

// Loader loads the packages of a single module from source and type-checks
// them, resolving standard-library imports through the stdlib source
// importer — no toolchain invocation, no export data, no x/tools. Packages
// are memoized per import path, so shared dependencies are checked once.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader creates a loader rooted at moduleDir, reading the module path
// from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleDir)
	}
	return NewLoaderAt(moduleDir, string(m[1])), nil
}

// NewLoaderAt creates a loader for a source tree that may not carry a
// go.mod (the analyzer test corpora), with an explicit module path.
func NewLoaderAt(moduleDir, modulePath string) *Loader {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		abs = moduleDir
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// Import implements types.Importer: module-internal paths load from source
// under ModuleDir; everything else goes to the stdlib source importer. An
// unresolvable path degrades to an empty placeholder package so one broken
// import cannot take the whole run down (the resulting type errors are
// recorded on the importing package).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	fake := types.NewPackage(path, name)
	fake.MarkComplete()
	return fake, nil
}

// LoadPatterns loads the packages matched by the given patterns. A pattern
// is a module-relative directory ("internal/core", "./cmd/skellint") or a
// recursive form ending in "/..." ("./...", "internal/..."). Load failures
// are returned alongside whatever did load.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, []error) {
	rels, err := l.expand(patterns)
	if err != nil {
		return nil, []error{err}
	}
	var (
		pkgs []*Package
		errs []error
	)
	for _, rel := range rels {
		path := l.ModulePath
		if rel != "" {
			path += "/" + rel
		}
		pkg, err := l.load(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, errs
}

// expand resolves patterns to the sorted set of module-relative package
// directories they cover.
func (l *Loader) expand(patterns []string) ([]string, error) {
	all, err := l.discover()
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == "":
			for _, rel := range all {
				set[rel] = true
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			matched := false
			for _, rel := range all {
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					set[rel] = true
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
			}
		default:
			rel := strings.TrimPrefix(pat, l.ModulePath)
			rel = strings.TrimPrefix(rel, "/")
			found := false
			for _, r := range all {
				if r == rel {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
			}
			set[rel] = true
		}
	}
	out := make([]string, 0, len(set))
	for rel := range set {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out, nil
}

// discover walks the module tree and returns every directory holding at
// least one non-test Go file, as module-relative slash paths.
func (l *Loader) discover() ([]string, error) {
	var rels []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if isLintableFile(e.Name()) {
				rel, err := filepath.Rel(l.ModuleDir, path)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				rels = append(rels, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", l.ModuleDir, err)
	}
	sort.Strings(rels)
	return rels, nil
}

func isLintableFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// load parses and type-checks one package by import path, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg := &Package{
		Path:   path,
		Rel:    rel,
		Dir:    dir,
		ModDir: l.ModuleDir,
		Fset:   l.fset,
		Files:  files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// The first error is also folded into TypeErrors by the handler above;
	// analysis proceeds on whatever type information survived.
	tpkg, _ := conf.Check(path, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every lintable file of one directory. Files whose package
// clause disagrees with the directory majority (stray tooling files) are
// skipped rather than fatal.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintableFile(e.Name()) {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) > 1 {
		name := files[0].Name.Name
		kept := files[:0]
		for _, f := range files {
			if f.Name.Name == name {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	return files, nil
}
