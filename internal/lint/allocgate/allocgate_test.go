package allocgate

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

const sampleBuildOutput = `
# bfskel/internal/graph
internal/graph/bfs.go:12:6: can inline tiny
internal/graph/bfs.go:20:13: make([]int, n) escapes to heap
internal/graph/bfs.go:21:9: moved to heap: frontier
internal/graph/bfs.go:99:2: leaking param: g
# bfskel/internal/obs
internal/obs/trace.go:40:10: &Span{...} escapes to heap
not a diagnostic line
`

func TestParseLines(t *testing.T) {
	got := parseLines(sampleBuildOutput)
	want := []escape{
		{file: "internal/graph/bfs.go", line: 20, msg: "make([]int, n) escapes to heap"},
		{file: "internal/graph/bfs.go", line: 21, msg: "moved to heap: frontier"},
		{file: "internal/obs/trace.go", line: 40, msg: "&Span{...} escapes to heap"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseLines:\n got %+v\nwant %+v", got, want)
	}
}

func TestAttribute(t *testing.T) {
	root := t.TempDir()
	src := `package p

func Alloc(n int) []int {
	return make([]int, n)
}

type Ring struct{ buf []byte }

func (r *Ring) Grow(n int) {
	r.buf = make([]byte, n)
}

var global = make([]int, 1)
`
	if err := os.MkdirAll(filepath.Join(root, "internal", "p"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "internal", "p", "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	escapes := []escape{
		{file: "internal/p/p.go", line: 4, msg: "make([]int, n) escapes to heap"},
		{file: "internal/p/p.go", line: 10, msg: "make([]byte, n) escapes to heap"},
		{file: "internal/p/p.go", line: 13, msg: "make([]int, 1) escapes to heap"},
	}
	fns, err := attribute(root, escapes)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"internal/p/p.go:Alloc":        {"make([]int, n) escapes to heap"},
		"internal/p/p.go:(*Ring).Grow": {"make([]byte, n) escapes to heap"},
		"internal/p/p.go":              {"make([]int, 1) escapes to heap"},
	}
	if !reflect.DeepEqual(fns, want) {
		t.Fatalf("attribute:\n got %+v\nwant %+v", fns, want)
	}
}

// TestDiffSeededRegression seeds a hot function with an escape the baseline
// does not sanction and asserts the gate fails on exactly that function —
// the acceptance scenario for the allocation budget.
func TestDiffSeededRegression(t *testing.T) {
	baseline := &Baseline{
		GoVersion: "go1.24.0",
		Packages:  []string{"internal/graph"},
		Functions: map[string][]string{
			"internal/graph/bfs.go:BFS":   {"make([]int, n) escapes to heap"},
			"internal/graph/walk.go:Walk": {"moved to heap: stack"},
		},
	}
	current := &Baseline{
		GoVersion: "go1.24.0",
		Packages:  []string{"internal/graph"},
		Functions: map[string][]string{
			// Seeded regression: BFS gains a second copy of the same escape
			// plus a brand-new one.
			"internal/graph/bfs.go:BFS": {
				"make([]int, n) escapes to heap",
				"make([]int, n) escapes to heap",
				"new(levelState) escapes to heap",
			},
			// New function with an escape: everything it does is a gain.
			"internal/graph/bfs.go:NewHelper": {"&helper{...} escapes to heap"},
			// Walk improved: its escape is gone.
		},
	}
	rep := Diff(baseline, current)
	wantReg := []Regression{
		{Function: "internal/graph/bfs.go:BFS", New: []string{
			"make([]int, n) escapes to heap",
			"new(levelState) escapes to heap",
		}},
		{Function: "internal/graph/bfs.go:NewHelper", New: []string{"&helper{...} escapes to heap"}},
	}
	if !reflect.DeepEqual(rep.Regressions, wantReg) {
		t.Fatalf("regressions:\n got %+v\nwant %+v", rep.Regressions, wantReg)
	}
	wantImp := []Improvement{
		{Function: "internal/graph/walk.go:Walk", Gone: []string{"moved to heap: stack"}},
	}
	if !reflect.DeepEqual(rep.Improvements, wantImp) {
		t.Fatalf("improvements:\n got %+v\nwant %+v", rep.Improvements, wantImp)
	}
}

func TestDiffCleanWhenEqual(t *testing.T) {
	b := &Baseline{Functions: map[string][]string{
		"f.go:F": {"x escapes to heap", "x escapes to heap"},
	}}
	rep := Diff(b, b)
	if len(rep.Regressions) != 0 || len(rep.Improvements) != 0 {
		t.Fatalf("self-diff not clean: %+v", rep)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := &Baseline{
		GoVersion: "go1.24.0",
		Packages:  []string{"internal/graph"},
		Functions: map[string][]string{"f.go:F": {"x escapes to heap"}},
	}
	path := filepath.Join(t.TempDir(), "ALLOC_BASELINE.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, b)
	}
}

// TestRepoGate is the integration check: the checked-in baseline must gate
// the current tree cleanly, so CI fails only when a hot function actually
// gains an escape.
func TestRepoGate(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go build in -short mode")
	}
	root := filepath.Join("..", "..", "..")
	baseline, err := Load(filepath.Join(root, "ALLOC_BASELINE.json"))
	if err != nil {
		t.Fatalf("loading checked-in baseline: %v", err)
	}
	current, err := Collect(root, baseline.Packages)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(baseline, current)
	for _, r := range rep.Regressions {
		t.Errorf("allocation regression in %s: %v (regenerate ALLOC_BASELINE.json with "+
			"`go run ./cmd/skellint -allocgate-write` if this growth is intended)", r.Function, r.New)
	}
}
