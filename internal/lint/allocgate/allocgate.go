// Package allocgate turns the Go compiler's escape analysis into a
// regression gate for the hot-path packages. It runs `go build -gcflags=-m`
// over the configured packages, attributes every "escapes to heap" /
// "moved to heap" diagnostic to the enclosing top-level function, and diffs
// the result against a checked-in baseline (ALLOC_BASELINE.json at the
// module root). A hot function that gains a heap escape the baseline does
// not sanction fails the gate; an escape that disappears is reported as an
// improvement and never fails.
//
// Messages are stored without positions, so reformatting or shifting a
// function does not churn the baseline — only a genuinely new escape (or a
// new escaping expression) does. Regenerate the baseline deliberately with
// `skellint -allocgate-write` after reviewing the diff.
package allocgate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// DefaultPackages are the hot-path packages the allocation budget covers:
// the chunk-parallel graph engine, the staged extractor, the simnet round
// engine, and the observability plane that instruments all three.
var DefaultPackages = []string{
	"internal/graph",
	"internal/core",
	"internal/simnet",
	"internal/obs",
}

// Baseline is the checked-in allocation budget: for every function in the
// gated packages, the multiset of escape-analysis messages it is allowed
// to produce.
type Baseline struct {
	// GoVersion records the toolchain that produced the baseline. Escape
	// analysis changes between releases, so a mismatch is surfaced as a
	// warning (not a failure) to explain otherwise-phantom diffs.
	GoVersion string `json:"go_version"`
	// Packages are the module-relative package directories the gate covers.
	Packages []string `json:"packages"`
	// Functions maps "file.go:FuncName" (methods as "(T).Name" or
	// "(*T).Name") to the sorted escape messages attributed to it.
	Functions map[string][]string `json:"functions"`
}

// escape is one escape-analysis diagnostic before attribution.
type escape struct {
	file string // module-relative, slash-separated
	line int
	msg  string
}

// Collect builds the gated packages with -gcflags=-m and returns the
// attributed baseline. root must be the module root; packages are
// module-relative directories.
func Collect(root string, packages []string) (*Baseline, error) {
	args := []string{"build", "-gcflags=-m"}
	for _, p := range packages {
		args = append(args, "./"+filepath.ToSlash(p))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out.String())
	}
	escapes := parseLines(out.String())
	fns, err := attribute(root, escapes)
	if err != nil {
		return nil, err
	}
	pkgs := append([]string(nil), packages...)
	sort.Strings(pkgs)
	return &Baseline{GoVersion: runtime.Version(), Packages: pkgs, Functions: fns}, nil
}

// parseLines extracts the heap-escape diagnostics from -gcflags=-m output.
// Inlining and other advisory lines are dropped; "# pkg" headers and any
// non-diagnostic noise are skipped.
func parseLines(output string) []escape {
	var escapes []escape
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		// Inlined stdlib bodies surface with absolute toolchain paths
		// (/usr/local/go/src/...); the budget covers module code only.
		if filepath.IsAbs(parts[0]) {
			continue
		}
		ln, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		escapes = append(escapes, escape{
			file: filepath.ToSlash(parts[0]),
			line: ln,
			msg:  strings.TrimSpace(parts[3]),
		})
	}
	return escapes
}

// attribute maps each escape to its enclosing top-level function by parsing
// the source file (syntax only — no type checking needed). Escapes outside
// any function (package-level initializers) key on the bare file name.
func attribute(root string, escapes []escape) (map[string][]string, error) {
	byFile := map[string][]escape{}
	for _, e := range escapes {
		byFile[e.file] = append(byFile[e.file], e)
	}
	fns := map[string][]string{}
	for file, list := range byFile {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(root, filepath.FromSlash(file)), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("allocgate: parsing %s: %v", file, err)
		}
		type span struct {
			name     string
			from, to int
		}
		var spans []span
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			spans = append(spans, span{
				name: funcKey(fset, fd),
				from: fset.Position(fd.Pos()).Line,
				to:   fset.Position(fd.End()).Line,
			})
		}
		for _, e := range list {
			key := e.file // fallback: package-level escape
			for _, s := range spans {
				if e.line >= s.from && e.line <= s.to {
					key = e.file + ":" + s.name
					break
				}
			}
			fns[key] = append(fns[key], e.msg)
		}
	}
	for _, msgs := range fns {
		sort.Strings(msgs)
	}
	return fns, nil
}

// funcKey names a function the way the baseline keys it: "Name" for
// functions, "(T).Name" / "(*T).Name" for methods.
func funcKey(fset *token.FileSet, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, fd.Recv.List[0].Type)
	return "(" + buf.String() + ")." + fd.Name.Name
}

// Regression is one function that gained heap escapes over the baseline.
type Regression struct {
	Function string   `json:"function"`
	New      []string `json:"new_escapes"`
}

// Improvement is one function that lost heap escapes since the baseline.
type Improvement struct {
	Function string   `json:"function"`
	Gone     []string `json:"gone_escapes"`
}

// Report is the outcome of gating current escapes against a baseline; it
// is the JSON artifact CI uploads.
type Report struct {
	GoVersion         string        `json:"go_version"`
	BaselineGoVersion string        `json:"baseline_go_version"`
	Packages          []string      `json:"packages"`
	Regressions       []Regression  `json:"regressions"`
	Improvements      []Improvement `json:"improvements"`
}

// Diff gates current against baseline. Regressions are messages present in
// current but absent (count-aware) from the baseline — including every
// escape of a function the baseline has never seen. Improvements are the
// reverse and are informational only.
func Diff(baseline, current *Baseline) *Report {
	rep := &Report{
		GoVersion:         current.GoVersion,
		BaselineGoVersion: baseline.GoVersion,
		Packages:          current.Packages,
		Regressions:       []Regression{},
		Improvements:      []Improvement{},
	}
	for fn, msgs := range current.Functions {
		if extra := multisetExtra(msgs, baseline.Functions[fn]); len(extra) > 0 {
			rep.Regressions = append(rep.Regressions, Regression{Function: fn, New: extra})
		}
	}
	for fn, msgs := range baseline.Functions {
		if gone := multisetExtra(msgs, current.Functions[fn]); len(gone) > 0 {
			rep.Improvements = append(rep.Improvements, Improvement{Function: fn, Gone: gone})
		}
	}
	sort.Slice(rep.Regressions, func(i, j int) bool { return rep.Regressions[i].Function < rep.Regressions[j].Function })
	sort.Slice(rep.Improvements, func(i, j int) bool { return rep.Improvements[i].Function < rep.Improvements[j].Function })
	return rep
}

// multisetExtra returns the elements of a that exceed their multiplicity
// in b, sorted.
func multisetExtra(a, b []string) []string {
	have := map[string]int{}
	for _, m := range b {
		have[m]++
	}
	var extra []string
	for _, m := range a {
		if have[m] > 0 {
			have[m]--
			continue
		}
		extra = append(extra, m)
	}
	sort.Strings(extra)
	return extra
}

// Load reads a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("allocgate: %s: %v", path, err)
	}
	if b.Functions == nil {
		b.Functions = map[string][]string{}
	}
	return &b, nil
}

// Save writes a baseline file with stable formatting (sorted keys, trailing
// newline) so regeneration diffs cleanly.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Save writes the gate report as the CI artifact JSON.
func (r *Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
