package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChunkShare polices the data-ownership rule of the chunk-parallel
// primitives (graph.ParallelNodes / ParallelRange / ParallelChunks): the
// callback runs concurrently across chunks, so it may only write state its
// own chunk owns. Concretely, a write to a variable captured from outside
// the callback is flagged unless it is
//
//   - indexed by a chunk-local variable (out[v] = ..., queues[ci].push(...):
//     per-index ownership, the invariant the MS-BFS kernel, localsep and the
//     simnet round engine are bit-identical by),
//   - routed through sync/atomic (atomic calls are not assignments and pass
//     untouched), or
//   - made under a mutex the callback itself locks.
//
// Writes into captured maps are always flagged: Go map writes race even on
// distinct keys.
var ChunkShare = &Analyzer{
	Name: "chunkshare",
	Doc: "inside graph.ParallelNodes/ParallelRange/ParallelChunks callbacks, " +
		"captured state may only be written via chunk-local indexing, " +
		"sync/atomic, or a locally held mutex",
	Run: runChunkShare,
}

func runChunkShare(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isParallelPrimitive(info, call) || len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
			if !ok {
				return true // named callback: analyzed as its own FuncDecl elsewhere
			}
			checkChunkCallback(p, lit)
			return true
		})
	}
}

// isParallelPrimitive reports whether call invokes one of the internal/graph
// chunk-parallel drivers.
func isParallelPrimitive(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "ParallelNodes", "ParallelRange", "ParallelChunks":
	default:
		return false
	}
	path := funcPkgPath(fn)
	return path == "internal/graph" || hasPathSuffix(path, "/internal/graph")
}

func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix) && path[len(path)-len(suffix):] == suffix
}

// checkChunkCallback flags non-chunk-owned writes inside one callback
// literal. Nested closures are included — a write races no matter how many
// literals deep it hides.
func checkChunkCallback(p *Pass, lit *ast.FuncLit) {
	info := p.Pkg.Info

	// Everything declared inside the literal (parameters, loop variables,
	// locals) is chunk-local; writes reached through it are owned.
	local := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})

	// Lexical positions of mutex acquisitions inside the callback: a write
	// after one is treated as guarded.
	var lockPositions []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, op := mutexOp(info, call); op == "Lock" || op == "RLock" {
				lockPositions = append(lockPositions, call.Pos())
			}
		}
		return true
	})
	guarded := func(pos token.Pos) bool {
		for _, lp := range lockPositions {
			if lp < pos {
				return true
			}
		}
		return false
	}

	report := func(expr ast.Expr, base types.Object, isMap bool) {
		if guarded(expr.Pos()) {
			return
		}
		if isMap {
			p.Reportf(expr.Pos(), "write into captured map %s inside a parallel chunk callback: "+
				"map writes race even on distinct keys; use a per-chunk map or merge after the join",
				base.Name())
			return
		}
		p.Reportf(expr.Pos(), "write to captured %s inside a parallel chunk callback without "+
			"chunk-local indexing, sync/atomic, or a held lock: chunks race and the result "+
			"depends on the schedule", base.Name())
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true // := declares chunk-locals
			}
			for _, lhs := range st.Lhs {
				checkChunkWrite(info, lhs, local, report)
			}
		case *ast.IncDecStmt:
			checkChunkWrite(info, st.X, local, report)
		}
		return true
	})
}

// checkChunkWrite classifies one write target. It unwraps the selector /
// index / dereference chain down to the base identifier: a base declared in
// the callback is owned; a captured base is sanctioned only when some index
// step on the path mentions a chunk-local variable (and the indexed
// container is not a map).
func checkChunkWrite(info *types.Info, lhs ast.Expr, local map[types.Object]bool,
	report func(ast.Expr, types.Object, bool)) {

	expr := ast.Unparen(lhs)
	localIndexed := false
	mapWrite := false
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[e.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					mapWrite = true
				}
			}
			if mentionsAnyLocal(info, e.Index, local) {
				localIndexed = true
			}
			expr = ast.Unparen(e.X)
		case *ast.StarExpr:
			expr = ast.Unparen(e.X)
		case *ast.SelectorExpr:
			expr = ast.Unparen(e.X)
		case *ast.Ident:
			if e.Name == "_" {
				return
			}
			obj := info.Uses[e]
			if obj == nil || local[obj] {
				return // chunk-local base: owned by this chunk
			}
			if v, ok := obj.(*types.Var); !ok || v == nil {
				return // not a variable (type name, package) — not a write target
			}
			if mapWrite {
				report(lhs, obj, true)
				return
			}
			if localIndexed {
				return // per-index ownership: sanctioned
			}
			report(lhs, obj, false)
			return
		default:
			return // index into call result etc.: no stable base to reason about
		}
	}
}

// mentionsAnyLocal reports whether expr references any chunk-local object.
func mentionsAnyLocal(info *types.Info, expr ast.Expr, local map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && local[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
