package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bfskel/internal/lint"
)

// The corpus under testdata/src/example.com/skel holds one positive and one
// suppressed/negative file per analyzer. Expectations are `// want "re"`
// comments on the line the diagnostic must land on; every diagnostic must
// match a want and every want must be matched.

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type want struct {
	pattern string
	re      *regexp.Regexp
	used    bool
}

func loadCorpus(t *testing.T) ([]*lint.Package, string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "example.com", "skel")
	l := lint.NewLoaderAt(dir, "example.com/skel")
	pkgs, errs := l.LoadPatterns([]string{"./..."})
	for _, err := range errs {
		t.Fatalf("loading corpus: %v", err)
	}
	for _, pkg := range pkgs {
		for _, te := range pkg.TypeErrors {
			t.Fatalf("corpus must type-check cleanly; %s: %v", pkg.Path, te)
		}
	}
	return pkgs, dir
}

func loadWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", rel, line, m[1], err)
				}
				key := fmt.Sprintf("%s:%d", rel, line)
				wants[key] = append(wants[key], &want{pattern: m[1], re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func TestAnalyzerCorpus(t *testing.T) {
	pkgs, dir := loadCorpus(t)
	wants := loadWants(t, dir)
	if len(wants) == 0 {
		t.Fatal("corpus has no want expectations; harness is broken")
	}

	res := lint.Run(pkgs, lint.All(), lint.DefaultConfig())
	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, list := range wants {
		for _, w := range list {
			if !w.used {
				t.Errorf("missing diagnostic at %s matching %q", key, w.pattern)
			}
		}
	}
	if res.Suppressed == 0 {
		t.Error("corpus exercises //lint:allow but nothing was suppressed")
	}
}

// TestCorpusPerCheck asserts each analyzer individually produces findings
// on its positive file and none on its suppressed/negative file — i.e.
// every check fails without its fix or annotation and passes with it.
func TestCorpusPerCheck(t *testing.T) {
	pkgs, _ := loadCorpus(t)
	positives := map[string]string{
		"determinism":  "internal/core/determinism_bad.go",
		"obsnil":       "internal/app/obsnil_bad.go",
		"poolpair":     "internal/app/poolpair_bad.go",
		"atomicmix":    "internal/app/atomicmix_bad.go",
		"spanpair":     "internal/app/spanpair_bad.go",
		"chunkshare":   "internal/app/chunkshare_bad.go",
		"lockhold":     "internal/app/lockhold_bad.go",
		"registration": "internal/app/registration_bad.go",
	}
	negatives := map[string]string{
		"determinism":  "internal/core/determinism_ok.go",
		"obsnil":       "internal/app/obsnil_ok.go",
		"poolpair":     "internal/app/poolpair_ok.go",
		"atomicmix":    "internal/app/atomicmix_ok.go",
		"spanpair":     "internal/app/spanpair_ok.go",
		"chunkshare":   "internal/app/chunkshare_ok.go",
		"lockhold":     "internal/app/lockhold_ok.go",
		"registration": "internal/app/registration_ok.go",
	}
	for _, a := range lint.All() {
		analyzers, err := lint.ByName(a.Name)
		if err != nil {
			t.Fatal(err)
		}
		res := lint.Run(pkgs, analyzers, lint.DefaultConfig())
		hitPositive := false
		for _, d := range res.Diagnostics {
			if d.File == positives[a.Name] {
				hitPositive = true
			}
			if d.File == negatives[a.Name] {
				t.Errorf("%s: finding on negative file: %s", a.Name, d)
			}
		}
		if !hitPositive {
			t.Errorf("%s: no finding on positive file %s", a.Name, positives[a.Name])
		}
		if res.Suppressed == 0 {
			t.Errorf("%s: suppressed case did not engage //lint:allow", a.Name)
		}
	}
}
