package lint

import (
	"path/filepath"
	"strings"
)

// allow is one parsed //lint:allow annotation.
type allow struct {
	check  string
	reason string
}

// allowIndex locates annotations by (module-relative file, line). A
// diagnostic is suppressed by a matching annotation on its own line (a
// trailing comment) or on the line directly above it.
type allowIndex struct {
	byFileLine map[string]map[int][]*allow
}

// collectAllows parses every //lint:allow comment of the package. Malformed
// annotations — missing reason, unknown check name, unknown directive — are
// returned as diagnostics under the check name "allow".
func collectAllows(pkg *Package, known map[string]bool) (*allowIndex, []Diagnostic) {
	idx := &allowIndex{byFileLine: make(map[string]map[int][]*allow)}
	var malformed []Diagnostic
	reportf := func(pos int, file string, line int, msg string) {
		malformed = append(malformed, Diagnostic{
			Check: "allow", File: file, Line: line, Col: pos, Message: msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:") {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				file := position.Filename
				if rel, err := filepath.Rel(pkg.ModDir, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = filepath.ToSlash(rel)
				}
				fields := strings.Fields(text)
				if fields[0] != "lint:allow" {
					reportf(position.Column, file, position.Line,
						"unknown lint directive "+fields[0]+"; only //lint:allow <check> <reason> is recognized")
					continue
				}
				if len(fields) < 3 {
					reportf(position.Column, file, position.Line,
						"malformed annotation: want //lint:allow <check> <reason>")
					continue
				}
				check := fields[1]
				if !known[check] {
					reportf(position.Column, file, position.Line,
						"//lint:allow names unknown check "+check)
					continue
				}
				lines := idx.byFileLine[file]
				if lines == nil {
					lines = make(map[int][]*allow)
					idx.byFileLine[file] = lines
				}
				lines[position.Line] = append(lines[position.Line],
					&allow{check: check, reason: strings.Join(fields[2:], " ")})
			}
		}
	}
	return idx, malformed
}

// suppress reports whether an annotation covers the diagnostic.
func (idx *allowIndex) suppress(d Diagnostic) bool {
	lines := idx.byFileLine[d.File]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Line, d.Line - 1} {
		for _, a := range lines[line] {
			if a.check == d.Check {
				return true
			}
		}
	}
	return false
}
