// Package lint is the repository's self-contained static-analysis engine,
// built only on the Go standard library (go/parser, go/ast, go/types,
// go/token — no x/tools). It machine-checks the invariants the rest of the
// codebase relies on by convention: bit-for-bit determinism of the
// extraction pipeline, the nil-safe observability contract of internal/obs,
// sync.Pool scratch hygiene in the staged engine, and consistent
// sync/atomic usage. See DESIGN.md "Static invariants" and cmd/skellint.
//
// A finding is suppressed by an annotation on the same line or the line
// directly above it:
//
//	//lint:allow <check> <reason>
//
// The reason is mandatory; a malformed or unknown-check annotation is
// itself reported (check name "allow").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"` // module-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Check)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Pkg    *Package
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Pkg.ModDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	p.report(Diagnostic{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer the suite ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, ObsNil, PoolPair, AtomicMix,
		SpanPair, ChunkShare, LockHold, Registration,
	}
}

// ByName resolves a comma-separated check list against All.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Result is the outcome of one Run.
type Result struct {
	Packages    int          `json:"packages"`
	Suppressed  int          `json:"suppressed"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Run executes the analyzers over the packages, applying the per-package
// scope configuration and //lint:allow suppression, and returns the
// surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) *Result {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		allows, malformed := collectAllows(pkg, known)
		res.Diagnostics = append(res.Diagnostics, malformed...)
		for _, a := range analyzers {
			if !cfg.Enabled(a.Name, pkg.Rel) {
				continue
			}
			var found []Diagnostic
			pass := &Pass{Pkg: pkg, report: func(d Diagnostic) {
				d.Check = a.Name
				found = append(found, d)
			}}
			a.Run(pass)
			for _, d := range found {
				if allows.suppress(d) {
					res.Suppressed++
					continue
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return res
}

// ---- shared AST/type helpers used by the analyzers ----

// calleeFunc resolves the called function or method of a call expression,
// or nil when the callee is not a statically known *types.Func.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring fn
// ("" for builtins/universe).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// rootObj resolves the object an lvalue-ish expression ultimately names:
// the variable for an identifier, the field for a selector chain.
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			return obj
		}
	}
	return nil
}

// exprMentions reports whether expr references obj anywhere inside it.
func exprMentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// forEachFuncBody invokes fn once per function body in the file: every
// FuncDecl body and every FuncLit body (each treated as its own scope).
func forEachFuncBody(f *ast.File, fn func(*ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			fn(d.Body)
		}
		return true
	})
}

// inspectSkippingFuncLits walks the subtree rooted at root without
// descending into nested function literals (they are separate scopes).
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return fn(n)
	})
}

// within reports whether pos falls inside node's source range.
func within(node ast.Node, pos token.Pos) bool {
	return pos >= node.Pos() && pos <= node.End()
}
