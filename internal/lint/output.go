package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteHuman renders the result as gcc-style file:line:col lines plus a
// one-line summary.
func (r *Result) WriteHuman(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	summary := fmt.Sprintf("skellint: %d finding(s) in %d package(s)", len(r.Diagnostics), r.Packages)
	if len(r.Diagnostics) == 0 {
		summary = fmt.Sprintf("skellint: ok (%d packages", r.Packages)
		if r.Suppressed > 0 {
			summary += fmt.Sprintf(", %d suppressed by //lint:allow", r.Suppressed)
		}
		summary += ")"
	}
	_, err := fmt.Fprintln(w, summary)
	return err
}

// jsonResult is the machine-readable exposition of a run.
type jsonResult struct {
	Packages    int          `json:"packages"`
	Suppressed  int          `json:"suppressed"`
	Findings    int          `json:"findings"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON renders the result as a single JSON object. Diagnostics is
// always a list (never null) so consumers can index unconditionally.
func (r *Result) WriteJSON(w io.Writer) error {
	out := jsonResult{
		Packages:    r.Packages,
		Suppressed:  r.Suppressed,
		Findings:    len(r.Diagnostics),
		Diagnostics: r.Diagnostics,
	}
	if out.Diagnostics == nil {
		out.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
