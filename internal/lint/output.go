package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteHuman renders the result as gcc-style file:line:col lines plus a
// one-line summary.
func (r *Result) WriteHuman(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	summary := fmt.Sprintf("skellint: %d finding(s) in %d package(s)", len(r.Diagnostics), r.Packages)
	if len(r.Diagnostics) == 0 {
		summary = fmt.Sprintf("skellint: ok (%d packages", r.Packages)
		if r.Suppressed > 0 {
			summary += fmt.Sprintf(", %d suppressed by //lint:allow", r.Suppressed)
		}
		summary += ")"
	}
	_, err := fmt.Fprintln(w, summary)
	return err
}

// jsonResult is the machine-readable exposition of a run.
type jsonResult struct {
	Packages    int          `json:"packages"`
	Suppressed  int          `json:"suppressed"`
	Findings    int          `json:"findings"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON renders the result as a single JSON object. Diagnostics is
// always a list (never null) so consumers can index unconditionally.
func (r *Result) WriteJSON(w io.Writer) error {
	out := jsonResult{
		Packages:    r.Packages,
		Suppressed:  r.Suppressed,
		Findings:    len(r.Diagnostics),
		Diagnostics: r.Diagnostics,
	}
	if out.Diagnostics == nil {
		out.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 output, the minimal subset GitHub code scanning ingests:
// one run, one driver with a rule per analyzer, one result per diagnostic
// with a physical location. Produced with encoding/json only.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders the result as a SARIF 2.1.0 log so findings surface
// as pull-request annotations. Every registered analyzer appears as a rule
// even when it found nothing, keeping rule indices stable across runs.
func (r *Result) WriteSARIF(w io.Writer) error {
	driver := sarifDriver{Name: "skellint"}
	for _, a := range All() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := []sarifResult{}
	for _, d := range r.Diagnostics {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.File},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
