package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// obsHandleNames is the nil-safe method-set contract of internal/obs: a nil
// pointer of any of these types is a valid disabled instrument, so call
// sites must never reach around the methods.
var obsHandleNames = map[string]bool{
	"Tracer": true, "Registry": true, "Span": true,
	"Counter": true, "Gauge": true, "Histogram": true,
}

// ObsNil enforces the observability contract outside internal/obs: the
// handle types are used only through their nil-safe methods. Direct field
// access reads through a possibly-nil pointer, and dereferencing (copying)
// a handle produces a value whose methods bypass the nil-receiver guards —
// both panic exactly when observability is disabled, the configuration the
// hot paths rely on.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc: "obs handles (*Tracer, *Registry, *Span, instruments) must be used " +
		"through their nil-safe method set: no field access, no dereference",
	Run: runObsNil,
}

func runObsNil(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := info.Selections[e]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if name, ok := obsHandle(sel.Recv()); ok {
					p.Reportf(e.Sel.Pos(), "direct access to field %s of nil-safe obs.%s: "+
						"go through the method set so a disabled (nil) handle stays inert",
						e.Sel.Name, name)
				}
			case *ast.StarExpr:
				if tv, ok := info.Types[e]; ok && tv.IsType() {
					return true // pointer type expression, not a dereference
				}
				xt, ok := info.Types[e.X]
				if !ok || !xt.IsValue() {
					return true
				}
				ptr, ok := xt.Type.Underlying().(*types.Pointer)
				if !ok {
					return true
				}
				if name, ok := obsHandle(ptr.Elem()); ok {
					p.Reportf(e.Pos(), "dereference of nil-safe *obs.%s: copying the handle "+
						"defeats the nil-receiver contract (and panics when observability is off); "+
						"keep the pointer", name)
				}
			}
			return true
		})
	}
}

// obsHandle reports whether t (possibly behind a pointer) is one of the
// nil-safe handle types of an internal/obs package, returning its name.
func obsHandle(t types.Type) (string, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if path != "internal/obs" && !strings.HasSuffix(path, "/internal/obs") {
		return "", false
	}
	if !obsHandleNames[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}
