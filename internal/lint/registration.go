package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Registration pins global registrations to startup. skeleton.Register
// panics on a duplicate name by design — that is only safe because every
// registration happens at init time, where a clash is a programming error
// caught on first run. The same goes for HTTP route tables: mutating a
// shared mux while requests are in flight is a race in net/http. So:
//
//   - skeleton.Register may only be called from an init function, from
//     main, or from a New* constructor;
//   - http.Handle / http.HandleFunc (the process-global DefaultServeMux)
//     are held to the same contexts;
//   - ServeMux.Handle / ServeMux.HandleFunc are fine anywhere when the mux
//     is local to the function (the build-then-return constructor idiom of
//     obshttp.Handler — including muxes received as parameters, which the
//     caller still owns), but registering on a captured or package-level
//     mux is startup-only.
var Registration = &Analyzer{
	Name: "registration",
	Doc: "skeleton.Register and shared-mux HTTP registration only from init, " +
		"main or New* constructors — never from request or extract paths",
	Run: runRegistration,
}

func runRegistration(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			allowed := registrationContext(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return true
				}
				switch {
				case isSkeletonRegister(fn):
					if !allowed {
						p.Reportf(call.Pos(), "skeleton.Register called from %s: backend "+
							"registration panics on duplicates and must happen at startup "+
							"(init, main or a New* constructor)", fd.Name.Name)
					}
				case isGlobalMuxRegister(fn):
					if !allowed {
						p.Reportf(call.Pos(), "http.%s registers on the process-global "+
							"DefaultServeMux from %s: route tables are wired at startup "+
							"(init, main or a New* constructor)", fn.Name(), fd.Name.Name)
					}
				case isServeMuxMethod(fn):
					if allowed {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					mux := rootObj(info, sel.X)
					if mux != nil && within(fd, mux.Pos()) {
						return true // function-local (or parameter) mux: constructor idiom
					}
					p.Reportf(call.Pos(), "ServeMux.%s on a shared mux from %s: mutating a "+
						"live route table races with request dispatch; register at startup "+
						"or build a local mux and swap it in", fn.Name(), fd.Name.Name)
				}
				return true
			})
		}
	}
}

// registrationContext reports whether fd is a sanctioned registration
// context: an init function, main, or a New* constructor.
func registrationContext(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	return name == "init" || name == "main" || strings.HasPrefix(name, "New")
}

// isSkeletonRegister matches the backend-registry entry point of an
// internal/skeleton package.
func isSkeletonRegister(fn *types.Func) bool {
	if fn.Name() != "Register" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	path := funcPkgPath(fn)
	return path == "internal/skeleton" || strings.HasSuffix(path, "/internal/skeleton")
}

// isGlobalMuxRegister matches net/http's package-level Handle/HandleFunc.
func isGlobalMuxRegister(fn *types.Func) bool {
	if fn.Name() != "Handle" && fn.Name() != "HandleFunc" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return funcPkgPath(fn) == "net/http"
}

// isServeMuxMethod matches (*http.ServeMux).Handle/HandleFunc.
func isServeMuxMethod(fn *types.Func) bool {
	if fn.Name() != "Handle" && fn.Name() != "HandleFunc" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ServeMux" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
