package lint

import "strings"

// Scope restricts a check to parts of the module tree. Prefixes are
// module-relative directories; "internal/core" covers that package and
// everything below it, "cmd" covers every command. An empty Include list
// means the check runs everywhere not excluded.
type Scope struct {
	Include []string
	Exclude []string
}

// Config maps check names to their package scope. Checks without an entry
// run on every package.
type Config struct {
	Scopes map[string]Scope
}

// DefaultConfig is the repository policy:
//
//   - determinism runs over the pipeline packages whose outputs must be a
//     pure function of the seed (core, graph, protocol, simnet, deploy)
//     and the backend seam above them (skeleton, localsep), plus
//     internal/obs (whose contract confines wall-clock to Time/Dur), the
//     CLIs (so a stray report timestamp needs a sanction comment), and the
//     module root ("" — the facade plus the churn/scorecard/ladder
//     harnesses, whose timing loops are the only sanctioned wall-clock).
//   - obsnil runs everywhere except inside internal/obs itself, which owns
//     the handle internals.
//   - poolpair and atomicmix run everywhere (the empty scope), which
//     includes internal/obshttp, internal/skeleton and every cmd: the pool
//     hygiene rules cover the staged extraction engine (internal/core) and
//     the simnet parallel round engine's pooled arena state, and atomicmix
//     guards the chunk-parallel stepping paths (internal/graph,
//     internal/simnet) where a stray plain counter beside an atomic one
//     would be a data race.
//   - spanpair runs everywhere except internal/obs (which implements the
//     Span lifecycle it checks): an unclosed span breaks the flight
//     recorder and skeltrace round accounting wherever it happens.
//   - chunkshare, lockhold and registration run everywhere (the empty
//     scope): the chunk-ownership rule binds every ParallelNodes/
//     ParallelChunks call site, the lock-hygiene rules target internal/obs
//     stream/recorder and internal/obshttp but cost nothing where no lock
//     is held, and registration guards skeleton.Register plus every HTTP
//     mux, wherever they are touched.
func DefaultConfig() *Config {
	return &Config{Scopes: map[string]Scope{
		"determinism": {Include: []string{
			"", "internal/core", "internal/graph", "internal/protocol",
			"internal/simnet", "internal/deploy", "internal/obs",
			"internal/obshttp", "internal/skeleton", "internal/localsep", "cmd",
		}},
		"obsnil":       {Exclude: []string{"internal/obs"}},
		"poolpair":     {},
		"atomicmix":    {},
		"spanpair":     {Exclude: []string{"internal/obs"}},
		"chunkshare":   {},
		"lockhold":     {},
		"registration": {},
	}}
}

// Enabled reports whether the named check applies to the package at the
// given module-relative directory.
func (c *Config) Enabled(check, rel string) bool {
	if c == nil {
		return true
	}
	sc, ok := c.Scopes[check]
	if !ok {
		return true
	}
	if len(sc.Include) > 0 && !matchAny(rel, sc.Include) {
		return false
	}
	return !matchAny(rel, sc.Exclude)
}

func matchAny(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
