package lint_test

import (
	"path/filepath"
	"testing"

	"bfskel/internal/lint"
)

// TestRepoIsLintClean runs the full analyzer suite over the repository
// itself. The repo must stay clean: sanctioned nondeterminism is annotated
// with //lint:allow, everything else is a regression.
func TestRepoIsLintClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("loading module at %s: %v", root, err)
	}
	pkgs, errs := l.LoadPatterns([]string{"./..."})
	for _, err := range errs {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from repo root")
	}
	for _, pkg := range pkgs {
		for _, te := range pkg.TypeErrors {
			t.Errorf("type error in %s: %v", pkg.Path, te)
		}
	}

	res := lint.Run(pkgs, lint.All(), lint.DefaultConfig())
	for _, d := range res.Diagnostics {
		t.Errorf("repo is not lint-clean: %s", d)
	}
	if res.Suppressed == 0 {
		t.Error("expected sanctioned //lint:allow sites in the repo, found none")
	}
}
