package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// AtomicMix catches the memory-model violation the race detector only sees
// when the schedule cooperates: a struct field that is accessed through
// sync/atomic anywhere in the package must be accessed that way everywhere.
// A plain read beside an atomic.AddInt64 is a data race even when it
// "usually works".
//
// Fields of the modern atomic.Int64-style wrapper types are safe by
// construction (no plain operations exist) and are not tracked; the check
// targets the legacy pattern of raw integer fields passed by address to
// the sync/atomic functions.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a struct field accessed via sync/atomic functions must never be " +
		"read or written non-atomically elsewhere in the package",
	Run: runAtomicMix,
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info

	// Pass A: fields whose address is taken by a sync/atomic call, plus the
	// selector nodes sanctioned by appearing inside those calls.
	atomicAt := make(map[*types.Var]token.Pos)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods of atomic.Int64 etc.: safe by type
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field, ok := info.Uses[sel.Sel].(*types.Var)
				if !ok || !field.IsField() {
					continue
				}
				if _, seen := atomicAt[field]; !seen {
					atomicAt[field] = call.Pos()
				}
				sanctioned[sel] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass B: every other selector resolving to one of those fields is a
	// mixed-model access.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			field, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !field.IsField() {
				return true
			}
			pos, ok := atomicAt[field]
			if !ok {
				return true
			}
			p.Reportf(sel.Sel.Pos(), "non-atomic access to field %s, which is accessed via "+
				"sync/atomic at %s: mixing atomic and plain access is a data race",
				field.Name(), p.shortPos(pos))
			return true
		})
	}
}

// shortPos renders a position module-relative for stable messages.
func (p *Pass) shortPos(pos token.Pos) string {
	position := p.Pkg.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Pkg.ModDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file + ":" + strconv.Itoa(position.Line)
}
