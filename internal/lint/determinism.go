package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's bit-for-bit reproducibility contract in
// the pipeline packages: a fixed seed must reproduce the paper's skeletons
// exactly, so wall-clock reads, ambient randomness and order-sensitive map
// iteration are all findings.
//
// Three rules:
//
//  1. no time.Now — wall-clock is nondeterministic. Sanctioned timing
//     sites (obs timestamps, Stats durations) carry //lint:allow.
//  2. no math/rand package-level calls — the global source is unseeded and
//     process-global; randomness must flow through a seeded *rand.Rand.
//     Seeded constructors (rand.New(rand.NewSource(seed))) are sanctioned
//     via //lint:allow at the construction site; *rand.Rand method calls
//     are always fine.
//  3. no map iteration that accumulates into an outer slice without a
//     subsequent sort, and no map iteration that writes output directly —
//     Go randomizes map order per run. Collect-then-sort is the blessed
//     pattern (see coarse.go's pairSegs walk).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbids time.Now, global math/rand and order-sensitive map iteration " +
		"in the deterministic pipeline packages",
	Run: runDeterminism,
}

func runDeterminism(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch funcPkgPath(fn) {
			case "time":
				if fn.Name() == "Now" {
					p.Reportf(call.Pos(), "call to time.Now: wall-clock reads break seed reproducibility; "+
						"sanctioned timing sites need //lint:allow determinism <reason>")
				}
			case "math/rand", "math/rand/v2":
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() == nil && fn.Name() != "NewSource" {
					p.Reportf(call.Pos(), "call to %s.%s: randomness must flow through a seeded *rand.Rand; "+
						"annotate sanctioned seeded constructors with //lint:allow determinism <reason>",
						funcPkgPath(fn), fn.Name())
				}
			}
			return true
		})
		forEachFuncBody(f, func(body *ast.BlockStmt) {
			checkMapRanges(p, body)
		})
	}
}

// checkMapRanges flags order-sensitive map iteration inside one function
// body: loop bodies that append to a slice declared outside the loop with
// no later sort of that slice, and loop bodies that print.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[r.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkOneMapRange(p, body, r)
		return true
	})
}

func checkOneMapRange(p *Pass, body *ast.BlockStmt, r *ast.RangeStmt) {
	info := p.Pkg.Info

	// Rule 3b: output emitted per iteration can never be repaired by a
	// later sort.
	inspectSkippingFuncLits(r.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn != nil && funcPkgPath(fn) == "fmt" && isPrintFunc(fn.Name()) {
			p.Reportf(call.Pos(), "fmt.%s inside iteration over a map: output order is "+
				"nondeterministic; iterate sorted keys instead", fn.Name())
		}
		return true
	})

	// Rule 3a: appends into outer slices, redeemable by a sort after the
	// loop anywhere later in the same function body.
	type target struct {
		obj  types.Object
		name string
	}
	var targets []target
	inspectSkippingFuncLits(r.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			obj := rootObj(info, as.Lhs[i])
			if obj == nil || within(r, obj.Pos()) {
				continue // loop-local accumulator: ordering is confined
			}
			targets = append(targets, target{obj: obj, name: obj.Name()})
		}
		return true
	})
	for _, t := range targets {
		if sortedAfter(info, body, r, t.obj) {
			continue
		}
		p.Reportf(r.Pos(), "iterates over a map and appends to %q in map order with no "+
			"later sort: the result ordering is nondeterministic (collect keys, sort, "+
			"then iterate — or sort %q after the loop)", t.name, t.name)
	}
}

// sortedAfter reports whether obj is passed to a sort/slices sorting call
// positioned after the range statement within the same function body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, r *ast.RangeStmt, obj types.Object) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= r.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !isSortFunc(fn) {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(info, arg, obj) {
				found = true
				break
			}
		}
		return true
	})
	return found
}

func isSortFunc(fn *types.Func) bool {
	switch funcPkgPath(fn) {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

func isPrintFunc(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}
