package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden output files")

// goldenResult is a fixed Result so the machine-readable output schemas are
// pinned: a consumer (CI annotation tooling, the SARIF uploader) can rely
// on field names and shapes not drifting silently.
func goldenResult() *Result {
	return &Result{
		Packages:   3,
		Suppressed: 2,
		Diagnostics: []Diagnostic{
			{
				Check:   "spanpair",
				File:    "internal/app/spanpair_bad.go",
				Line:    7,
				Col:     8,
				Message: "span sp is started but never Ended in this function",
			},
			{
				Check:   "lockhold",
				File:    "internal/app/lockhold_bad.go",
				Line:    18,
				Col:     2,
				Message: "channel send while holding mu",
			},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output; if the schema change is intended, "+
			"regenerate with `go test ./internal/lint -run TestGolden -update`\n got:\n%s\nwant:\n%s",
			name, got, want)
	}
}

func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResult().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.json", buf.Bytes())
}

func TestGoldenSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResult().WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findings.sarif", buf.Bytes())
}

// TestGoldenSARIFEmpty pins the clean-run shape: results must be [] (never
// null) and the rules table still lists every analyzer.
func TestGoldenSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Result{Packages: 3}).WriteSARIF(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "clean.sarif", buf.Bytes())
}
