package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHold keeps critical sections small and deadlock-free. While a
// sync.Mutex or RWMutex is held — from the Lock/RLock call to the matching
// same-function Unlock, or to the end of the function when the Unlock is
// deferred — three things are findings:
//
//   - a blocking channel send or receive (a select with a default branch is
//     non-blocking and exempt): the StreamSink fan-out contract is exactly
//     that the traced hot path can never be parked on a consumer;
//   - a call into net or net/http (minus a small pure allowlist): network
//     I/O under a lock turns one slow peer into a process-wide stall;
//   - a nested acquisition that deadlocks — re-acquiring the held mutex, or
//     taking two locks in opposite orders in different places in the
//     package (each inconsistent pair is reported at both sites).
//
// The region tracking is lexical and per-function; closures are separate
// scopes (they usually run elsewhere, where the lock is not held).
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc: "no blocking channel ops, net/net/http calls, or inconsistently " +
		"ordered nested locks while a sync.Mutex/RWMutex is held",
	Run: runLockHold,
}

// lockRegion is one held interval of one mutex inside a function body.
type lockRegion struct {
	key     types.Object // the mutex variable/field
	op      string       // "Lock" or "RLock"
	from    token.Pos    // end of the acquire call
	to      token.Pos    // matching release, or body end (deferred/missing)
	acquire *ast.CallExpr
}

func runLockHold(p *Pass) {
	// Lock-order pairs observed across the package: held -> acquired, with
	// the position of each acquisition. Inconsistent orders are reported
	// after all functions are scanned.
	type pairKey struct{ held, acquired types.Object }
	pairs := make(map[pairKey][]token.Pos)

	for _, f := range p.Pkg.Files {
		forEachFuncBody(f, func(body *ast.BlockStmt) {
			regions := collectLockRegions(p, body)
			for _, reg := range regions {
				checkHeldRegion(p, body, reg)
				// Nested acquisitions inside the region.
				for _, inner := range regions {
					if inner.acquire == reg.acquire ||
						inner.acquire.Pos() <= reg.from || inner.acquire.Pos() >= reg.to {
						continue
					}
					if inner.key == reg.key {
						if reg.op == "Lock" || inner.op == "Lock" {
							p.Reportf(inner.acquire.Pos(), "%s of %s while it is already held "+
								"(%s at %s): this deadlocks", inner.op, lockName(inner.key),
								reg.op, p.shortPos(reg.acquire.Pos()))
						}
						continue
					}
					if reg.key != nil && inner.key != nil {
						pairs[pairKey{reg.key, inner.key}] = append(
							pairs[pairKey{reg.key, inner.key}], inner.acquire.Pos())
					}
				}
			}
		})
	}

	for pk, positions := range pairs {
		if _, reversed := pairs[pairKey{pk.acquired, pk.held}]; !reversed {
			continue
		}
		for _, pos := range positions {
			p.Reportf(pos, "%s acquired while holding %s, but the opposite order also occurs "+
				"in this package: inconsistent lock ordering deadlocks under contention "+
				"(pick one global order)", lockName(pk.acquired), lockName(pk.held))
		}
	}
}

func lockName(obj types.Object) string {
	if obj == nil {
		return "a mutex"
	}
	return obj.Name()
}

// collectLockRegions finds each acquire in the body and the extent over
// which its mutex stays held: up to the first same-key non-deferred release
// after it, or to the end of the body when the release is deferred (or
// missing — callers that lock for their caller hold to the end too).
func collectLockRegions(p *Pass, body *ast.BlockStmt) []lockRegion {
	info := p.Pkg.Info
	defers := collectDefers(body)

	type mutexCall struct {
		call *ast.CallExpr
		key  types.Object
		op   string
	}
	var ops []mutexCall
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op := mutexOp(info, call); op != "" {
			ops = append(ops, mutexCall{call: call, key: key, op: op})
		}
		return true
	})

	var regions []lockRegion
	for _, acq := range ops {
		if acq.op != "Lock" && acq.op != "RLock" {
			continue
		}
		want := "Unlock"
		if acq.op == "RLock" {
			want = "RUnlock"
		}
		to := body.End()
		for _, rel := range ops {
			if rel.op != want || rel.key != acq.key || rel.call.Pos() <= acq.call.End() {
				continue
			}
			if underAnyDefer(defers, rel.call.Pos()) {
				continue // deferred release: held to the end of the body
			}
			if rel.call.Pos() < to {
				to = rel.call.Pos()
			}
		}
		regions = append(regions, lockRegion{
			key: acq.key, op: acq.op, from: acq.call.End(), to: to, acquire: acq.call,
		})
	}
	return regions
}

// checkHeldRegion flags blocking channel operations and net/net/http calls
// positioned inside one held region.
func checkHeldRegion(p *Pass, body *ast.BlockStmt, reg lockRegion) {
	info := p.Pkg.Info
	nonBlocking := nonBlockingCommStmts(body)
	inRegion := func(pos token.Pos) bool { return pos > reg.from && pos < reg.to }

	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SendStmt:
			if inRegion(e.Pos()) && !nonBlocking[e] {
				p.Reportf(e.Pos(), "channel send while holding %s (%s at %s): a full buffer "+
					"parks every other user of the lock; use a non-blocking select or move "+
					"the send outside the critical section", lockName(reg.key), reg.op,
					p.shortPos(reg.acquire.Pos()))
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW && inRegion(e.Pos()) && !nonBlocking[enclosingCommStmt(body, e)] {
				p.Reportf(e.Pos(), "channel receive while holding %s (%s at %s): the lock is "+
					"held until a sender shows up; receive outside the critical section",
					lockName(reg.key), reg.op, p.shortPos(reg.acquire.Pos()))
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && inRegion(e.Pos()) {
					p.Reportf(e.Pos(), "range over a channel while holding %s: the lock stays "+
						"held until the channel closes", lockName(reg.key))
				}
			}
		case *ast.CallExpr:
			if !inRegion(e.Pos()) {
				return true
			}
			fn := calleeFunc(info, e)
			if fn == nil || !isNetCall(fn) {
				return true
			}
			p.Reportf(e.Pos(), "call to %s.%s while holding %s (%s at %s): network I/O under "+
				"a lock turns one slow peer into a process-wide stall",
				funcPkgPath(fn), fn.Name(), lockName(reg.key), reg.op,
				p.shortPos(reg.acquire.Pos()))
		}
		return true
	})
}

// nonBlockingCommStmts returns the comm statements of every select that has
// a default branch — the sanctioned non-blocking channel idiom.
func nonBlockingCommStmts(body *ast.BlockStmt) map[ast.Stmt]bool {
	out := make(map[ast.Stmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm] = true
			}
		}
		return true
	})
	return out
}

// enclosingCommStmt returns the select comm statement containing the
// receive expression, if any (so `case v := <-ch:` under a default-bearing
// select is recognized as non-blocking).
func enclosingCommStmt(body *ast.BlockStmt, recv *ast.UnaryExpr) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CommClause)
		if !ok {
			return true
		}
		if cc.Comm != nil && within(cc.Comm, recv.Pos()) {
			found = cc.Comm
		}
		return true
	})
	return found
}

// mutexOp classifies call as one of the four sync.Mutex/RWMutex operations,
// returning the mutex object (variable or field) and the method name; op is
// "" for anything else.
func mutexOp(info *types.Info, call *ast.CallExpr) (key types.Object, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, ""
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return nil, ""
	}
	return rootObj(info, sel.X), sel.Sel.Name
}

// isNetCall reports whether fn lives in net or net/http and plausibly does
// I/O. Pure helpers (string splitting, status text, header map access) are
// allowlisted; net/url and net/netip never match (pure parsing packages).
func isNetCall(fn *types.Func) bool {
	path := funcPkgPath(fn)
	if path != "net" && path != "net/http" {
		return false
	}
	switch fn.Name() {
	case "JoinHostPort", "SplitHostPort", "ParseIP", "ParseCIDR", "CIDRMask", "IPv4",
		"StatusText", "CanonicalHeaderKey", "DetectContentType", "NewServeMux", "NewRequest":
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Header" {
			return false // http.Header is a plain map
		}
		switch fn.Name() {
		case "Header", "Context", "PathValue":
			return false
		}
	}
	return true
}
