package lint_test

import (
	"strings"
	"testing"

	"bfskel/internal/lint"
)

func TestByName(t *testing.T) {
	all, err := lint.ByName("determinism,poolpair")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Name != "determinism" || all[1].Name != "poolpair" {
		t.Fatalf("ByName returned %v", all)
	}
	if _, err := lint.ByName("nosuchcheck"); err == nil {
		t.Fatal("ByName accepted an unknown check")
	}
}

func TestConfigEnabled(t *testing.T) {
	cfg := lint.DefaultConfig()
	cases := []struct {
		check, rel string
		want       bool
	}{
		{"determinism", "internal/core", true},
		{"determinism", "internal/core/sub", true},
		{"determinism", "internal/corefake", false},
		{"determinism", "internal/lint", false},
		{"obsnil", "internal/obs", false},
		{"obsnil", "internal/core", true},
		{"poolpair", "anything/at/all", true},
	}
	for _, c := range cases {
		if got := cfg.Enabled(c.check, c.rel); got != c.want {
			t.Errorf("Enabled(%q, %q) = %v, want %v", c.check, c.rel, got, c.want)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Check: "determinism", File: "internal/core/coarse.go", Line: 49, Col: 2, Message: "boom"}
	got := d.String()
	if !strings.Contains(got, "internal/core/coarse.go:49:2") || !strings.Contains(got, "[determinism]") {
		t.Fatalf("Diagnostic.String() = %q", got)
	}
}
