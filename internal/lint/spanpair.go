package lint

import (
	"go/ast"
	"go/types"
)

// SpanPair is the tracing analogue of poolpair: every obs span opened with
// StartSpan must be closed with End on every path out of the function that
// owns it. A span that is never Ended keeps its subtree open forever — the
// flight recorder never finalizes the run, the span profile undercounts,
// and skeltrace's round accounting fails — and unlike a leaked pool object
// the damage is silent until someone reads the trace.
//
// Ownership transfers are recognized and exempt: a span assigned to a
// struct field belongs to the struct's lifecycle methods (the Extractor
// and skeleton.Run idiom), a span returned to the caller is the caller's
// to End (the NewRun idiom), and a span handed to another call or stored
// in a composite literal travels with its new owner. The immediate
// StartSpan(...).End() chain used for point markers is likewise fine. For
// spans owned locally, a deferred End (directly or inside a deferred
// closure) covers every path; otherwise each return after the start must
// be preceded by an End.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc: "every obs Span opened with StartSpan must be Ended on all return " +
		"paths (deferred End, branch End-then-return, or ownership hand-off)",
	Run: runSpanPair,
}

func runSpanPair(p *Pass) {
	for _, f := range p.Pkg.Files {
		forEachFuncBody(f, func(body *ast.BlockStmt) {
			checkSpanBody(p, body)
		})
	}
}

// spanStart is one StartSpan call owned by the scope under analysis.
type spanStart struct {
	call *ast.CallExpr
	obj  types.Object // local variable holding the span; nil if unnamed
}

func checkSpanBody(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	returns := collectReturns(body)
	defers := collectDefers(body)

	// Collect the StartSpan calls this scope owns. Nested function literals
	// are separate scopes (forEachFuncBody visits them on their own), so a
	// start inside a closure is attributed exactly once.
	var starts []spanStart
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSpanStartCall(info, call) {
			return true
		}
		starts = append(starts, spanStart{call: call})
		return true
	})
	if len(starts) == 0 {
		return
	}

	for i := range starts {
		st := &starts[i]
		owner, handedOff := spanDestination(info, body, st.call)
		if handedOff {
			continue // chained .End(), field store, call argument, composite literal
		}
		if escapesViaReturn(info, body, st.call, returns) {
			continue // accessor form: the caller owns the End
		}
		if owner == nil {
			p.Reportf(st.call.Pos(), "StartSpan result is discarded: the span can never be "+
				"Ended and its subtree stays open in the trace")
			continue
		}
		st.obj = owner

		// End calls on the owner anywhere inside the body, nested closures
		// included — an End inside a deferred literal still closes the span.
		var ends []*ast.CallExpr
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isSpanEndCall(info, call, owner) {
				ends = append(ends, call)
			}
			return true
		})
		if len(ends) == 0 {
			if mentionedInCallOrComposite(info, body, owner, st.call) {
				continue // handed off by value after the fact; new owner Ends it
			}
			p.Reportf(st.call.Pos(), "span %s is started but never Ended in this function: "+
				"close it with a deferred %s.End() or hand it to an owner that does",
				owner.Name(), owner.Name())
			continue
		}
		deferred := false
		for _, e := range ends {
			if underAnyDefer(defers, e.Pos()) {
				deferred = true
				break
			}
		}
		if deferred {
			continue
		}
		// No deferred End: every return after the start needs an End before
		// it (the branch End-then-return shape). Flag returns with none.
		for _, ret := range returns {
			if ret.Pos() <= st.call.End() {
				continue
			}
			covered := false
			for _, e := range ends {
				if e.End() > st.call.End() && e.End() <= ret.Pos() {
					covered = true
					break
				}
			}
			if !covered {
				p.Reportf(ret.Pos(), "return between StartSpan and the first %s.End(): the span "+
					"leaks open on this path (End before returning, or defer the End)", owner.Name())
			}
		}
	}
}

// isSpanStartCall reports whether call is Tracer.StartSpan or Span.StartSpan
// of an internal/obs package.
func isSpanStartCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartSpan" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	name, ok := obsHandle(sig.Recv().Type())
	return ok && (name == "Tracer" || name == "Span")
}

// isSpanEndCall reports whether call is owner.End(...) where owner holds an
// obs span.
func isSpanEndCall(info *types.Info, call *ast.CallExpr, owner types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if name, ok := obsHandle(sig.Recv().Type()); !ok || name != "Span" {
		return false
	}
	return rootObj(info, sel.X) == owner
}

// spanDestination classifies where a StartSpan result goes. handedOff is
// true when the span's lifecycle belongs to someone else: an immediate
// .End() chain, a struct-field store, a call argument, or a composite
// literal. Otherwise owner is the local variable the result is bound to
// (nil when the result is discarded).
func spanDestination(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) (owner types.Object, handedOff bool) {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch parent := n.(type) {
		case *ast.SelectorExpr:
			// StartSpan(...).End() / .Event(...) chain: used in place.
			if ast.Unparen(parent.X) == call {
				found, handedOff = true, true
			}
		case *ast.CallExpr:
			if parent == call {
				return true
			}
			for _, arg := range parent.Args {
				if ast.Unparen(arg) == call {
					found, handedOff = true, true // f(t.StartSpan(...)): callee owns it
				}
			}
		case *ast.CompositeLit:
			for _, elt := range parent.Elts {
				e := elt
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if ast.Unparen(e) == call {
					found, handedOff = true, true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range parent.Rhs {
				if ast.Unparen(rhs) != call || i >= len(parent.Lhs) {
					continue
				}
				lhs := ast.Unparen(parent.Lhs[i])
				if _, isSel := lhs.(*ast.SelectorExpr); isSel {
					found, handedOff = true, true // field store: struct lifecycle owns it
					return false
				}
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := rootObj(info, id); obj != nil {
						found, owner = true, obj
						return false
					}
				}
				found = true // assigned to _ or an index: treated as discarded
			}
		}
		return !found
	})
	return owner, handedOff
}

// mentionedInCallOrComposite reports whether obj is passed to any call or
// stored in any composite literal — a by-value hand-off of the span to a
// new owner (only uses after the start can exist, since that is where the
// object is defined).
func mentionedInCallOrComposite(info *types.Info, body *ast.BlockStmt, obj types.Object, start *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if e == start {
				return false
			}
			for _, arg := range e.Args {
				if exprMentions(info, arg, obj) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if exprMentions(info, elt, obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
