// Positive corpus for the obsnil analyzer: reaching around the nil-safe
// method set of the obs handles.
package app

import "example.com/skel/internal/obs"

func sinkOf(t *obs.Tracer) any {
	return t.Sink // want "direct access to field Sink of nil-safe obs.Tracer"
}

func spanID(s *obs.Span) uint64 {
	return s.ID // want "direct access to field ID of nil-safe obs.Span"
}

func copySpan(s *obs.Span) obs.Span {
	return *s // want "dereference of nil-safe \*obs.Span"
}
