// Negative corpus for the obsnil analyzer: method-set use is always fine,
// and //lint:allow sanctions a deliberate contract breach.
package app

import "example.com/skel/internal/obs"

func viaMethods(t *obs.Tracer) bool {
	sp := t.StartSpan("work")
	sp.End()
	return t.Enabled()
}

func sanctioned(t *obs.Tracer) any {
	return t.Sink //lint:allow obsnil test hook must see the raw sink
}
