// Negative corpus for the atomicmix analyzer: consistent atomic access,
// untouched sibling fields, and the //lint:allow sanction.
package app

import "sync/atomic"

func (h *hits) load() int64 {
	return atomic.LoadInt64(&h.n)
}

func (h *hits) swap(v int64) int64 {
	return atomic.SwapInt64(&h.n, v)
}

// other is never used atomically, so plain access is fine.
func (h *hits) readOther() int64 {
	return h.other
}

func (h *hits) approx() int64 {
	return h.n //lint:allow atomicmix racy read is acceptable for the debug display
}
