// Positive corpus for the lockhold analyzer: blocking operations and
// ordering hazards inside mutex critical sections.
package app

import (
	"net"
	"net/http"
	"sync"
)

type lockedFanout struct {
	mu sync.Mutex
	ch chan int
}

func (f *lockedFanout) blockingSend(v int) {
	f.mu.Lock()
	f.ch <- v // want "channel send while holding mu"
	f.mu.Unlock()
}

func (f *lockedFanout) blockingRecv() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return <-f.ch // want "channel receive while holding mu"
}

func (f *lockedFanout) netUnderLock(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, _ = net.Dial("tcp", addr)      // want "call to net.Dial while holding mu"
	_, _ = http.Get("http://" + addr) // want "call to net/http.Get while holding mu"
}

func (f *lockedFanout) relock() {
	f.mu.Lock()
	f.mu.Lock() // want "Lock of mu while it is already held"
	f.mu.Unlock()
	f.mu.Unlock()
}

type orderHazard struct {
	a, b sync.Mutex
}

func (o *orderHazard) lockAB() {
	o.a.Lock()
	o.b.Lock() // want "b acquired while holding a, but the opposite order also occurs"
	o.b.Unlock()
	o.a.Unlock()
}

func (o *orderHazard) lockBA() {
	o.b.Lock()
	o.a.Lock() // want "a acquired while holding b, but the opposite order also occurs"
	o.a.Unlock()
	o.b.Unlock()
}
