// Positive corpus for the registration analyzer: backend and mux
// registration from request/extraction paths.
package app

import (
	"net/http"

	"example.com/skel/internal/skeleton"
)

type dynamicBackend struct{ name string }

func (d dynamicBackend) Name() string { return d.name }

func handleExtract(name string) {
	skeleton.Register(dynamicBackend{name: name}) // want "skeleton.Register called from handleExtract"
}

func wireRoutesLate() {
	http.HandleFunc("/extract", func(w http.ResponseWriter, r *http.Request) {}) // want "http.HandleFunc registers on the process-global DefaultServeMux from wireRoutesLate"
}

var sharedMux = http.NewServeMux()

func (d dynamicBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sharedMux.HandleFunc("/dyn/"+d.name, func(w http.ResponseWriter, r *http.Request) {}) // want "ServeMux.HandleFunc on a shared mux from ServeHTTP"
}
