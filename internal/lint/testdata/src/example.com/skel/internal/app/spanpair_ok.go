// Negative corpus for the spanpair analyzer: every sanctioned span
// lifecycle shape, plus one annotated leak.
package app

import (
	"errors"

	"example.com/skel/internal/obs"
)

func spanDeferredEnd(t *obs.Tracer) {
	sp := t.StartSpan("work")
	defer sp.End()
	sp.Event("progress")
}

func spanDeferredClosureEnd(t *obs.Tracer) (err error) {
	sp := t.StartSpan("work")
	defer func() {
		sp.Event("done")
		sp.End()
	}()
	return nil
}

func spanBranchEndThenReturn(t *obs.Tracer, fail bool) error {
	sp := t.StartSpan("work")
	if fail {
		sp.End()
		return errors.New("failed")
	}
	sp.Event("ok")
	sp.End()
	return nil
}

func spanPointMarker(t *obs.Tracer) {
	t.StartSpan("marker").End()
}

// spanOwner holds its root span in a field; lifecycle methods End it.
type spanOwner struct {
	root *obs.Span
}

func (o *spanOwner) open(t *obs.Tracer) {
	o.root = t.StartSpan("run")
}

func (o *spanOwner) close() {
	o.root.End()
}

// newCallerOwnedSpan returns the span: the caller Ends it.
func newCallerOwnedSpan(t *obs.Tracer) *obs.Span {
	return t.StartSpan("caller-owned")
}

// spanHandOff passes the span by value to a helper that Ends it.
func spanHandOff(t *obs.Tracer) {
	sp := t.StartSpan("work")
	finishSpan(sp)
}

func finishSpan(sp *obs.Span) {
	sp.End()
}

// spanInComposite stores the span in a struct literal; the new owner Ends it.
func spanInComposite(t *obs.Tracer) *spanOwner {
	return &spanOwner{root: t.StartSpan("owned")}
}

func sanctionedSpanLeak(t *obs.Tracer) {
	sp := t.StartSpan("fire-and-forget") //lint:allow spanpair process exits before this trace is read
	sp.Event("launched")
}
