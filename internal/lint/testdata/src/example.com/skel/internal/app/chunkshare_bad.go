// Positive corpus for the chunkshare analyzer: parallel chunk callbacks
// writing to captured state they do not own.
package app

import "example.com/skel/internal/graph"

func chunkSharedCounter(g *graph.Graph) int {
	total := 0
	graph.ParallelNodes(g, nil, nil, func(w *graph.Walker, v int) {
		total += v // want "write to captured total inside a parallel chunk callback"
	})
	return total
}

func chunkSharedSlice(g *graph.Graph) []int {
	var out []int
	graph.ParallelNodes(g, nil, nil, func(w *graph.Walker, v int) {
		out = append(out, v) // want "write to captured out inside a parallel chunk callback"
	})
	return out
}

func chunkSharedMap(g *graph.Graph) map[int]bool {
	seen := make(map[int]bool)
	graph.ParallelChunks(g.N(), 4, func(ci, lo, hi int) {
		for v := lo; v < hi; v++ {
			seen[v] = true // want "write into captured map seen"
		}
	})
	return seen
}
