// Positive corpus for the spanpair analyzer: spans that leak open.
package app

import "example.com/skel/internal/obs"

func spanLeak(t *obs.Tracer) {
	sp := t.StartSpan("work") // want "span sp is started but never Ended"
	sp.Event("progress")
}

func spanDiscarded(t *obs.Tracer) {
	t.StartSpan("work") // want "StartSpan result is discarded"
}

func spanEarlyReturn(t *obs.Tracer, cond bool) {
	sp := t.StartSpan("work")
	if cond {
		return // want "return between StartSpan and the first sp.End"
	}
	sp.End()
}

func childSpanLeak(parent *obs.Span) {
	child := parent.StartSpan("stage") // want "span child is started but never Ended"
	child.Event("begin")
}
