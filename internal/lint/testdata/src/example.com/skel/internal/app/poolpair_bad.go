// Positive corpus for the poolpair analyzer: pooled scratch that leaks.
package app

import "sync"

type buffer struct{ data []byte }

func (b *buffer) use() {}

var pool = &sync.Pool{New: func() any { return new(buffer) }}

func leak() {
	b := pool.Get().(*buffer) // want "sync.Pool.Get result is never returned to the pool in leak"
	b.use()
}

func earlyReturn(cond bool) {
	b := pool.Get().(*buffer)
	if cond {
		return // want "return between sync.Pool.Get and its Put in earlyReturn"
	}
	pool.Put(b)
}

// engine wraps its pool behind an accessor/releaser pair, the Extractor
// idiom; call sites are held to the same pairing rules.
type engine struct {
	scratch *sync.Pool
}

func (e *engine) getBuf() *buffer      { return e.scratch.Get().(*buffer) }
func (e *engine) putBuf(b *buffer)     { e.scratch.Put(b) }
func (e *engine) run(f func() *buffer) {}

func (e *engine) leakWrapper() {
	b := e.getBuf() // want "getBuf result is never returned to the pool in leakWrapper"
	b.use()
}

func (e *engine) passesAccessorOnly() {
	e.run(e.getBuf) // want "pool accessor getBuf is passed around without its releasing counterpart putBuf"
}
