// Negative corpus for the poolpair analyzer: the blessed shapes — deferred
// release, straight-line Get/Put, pool accessors whose result escapes by
// design, paired wrapper hand-off — plus the //lint:allow sanction.
package app

func deferred() {
	b := pool.Get().(*buffer)
	defer pool.Put(b)
	b.use()
}

func straightLine() {
	b := pool.Get().(*buffer)
	b.use()
	pool.Put(b)
}

// fresh is a pool accessor: the Get result is the return value, so the
// caller owns the release.
func fresh() *buffer {
	return pool.Get().(*buffer)
}

func (e *engine) pairedWrapper() {
	b := e.getBuf()
	defer e.putBuf(b)
	b.use()
}

func (e *engine) runBoth(f func() *buffer, g func(*buffer)) {}

func (e *engine) passesBoth() {
	e.runBoth(e.getBuf, e.putBuf)
}

func sanctionedLeak() {
	b := pool.Get().(*buffer) //lint:allow poolpair one-shot tool path; process exits right after
	b.use()
}
