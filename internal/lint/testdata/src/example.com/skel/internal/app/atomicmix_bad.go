// Positive corpus for the atomicmix analyzer: a field touched by
// sync/atomic anywhere must be atomic everywhere.
package app

import "sync/atomic"

type hits struct {
	n     int64
	other int64
}

func (h *hits) inc() {
	atomic.AddInt64(&h.n, 1)
}

func (h *hits) read() int64 {
	return h.n // want "non-atomic access to field n, which is accessed via sync/atomic"
}

func (h *hits) reset() {
	h.n = 0 // want "non-atomic access to field n"
}
