// Negative corpus for the registration analyzer: the sanctioned
// registration sites — init, constructors, and caller-owned muxes.
package app

import (
	"net/http"

	"example.com/skel/internal/skeleton"
)

type staticBackend struct{}

func (staticBackend) Name() string { return "static" }

func init() {
	skeleton.Register(staticBackend{})
}

// NewControlPlane builds its mux locally and hands it to the caller: the
// obshttp.Handler idiom.
func NewControlPlane() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {})
	mux.Handle("/metrics", http.NotFoundHandler())
	return mux
}

// mountDebug registers on a mux its caller owns; a parameter is local to
// every call.
func mountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {})
}

type testHarness struct{ name string }

func (h testHarness) Name() string { return h.name }

func swapBackendForTest(name string) {
	skeleton.Register(testHarness{name: name}) //lint:allow registration test harness swaps backends between cases
}
