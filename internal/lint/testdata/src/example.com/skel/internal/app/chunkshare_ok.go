// Negative corpus for the chunkshare analyzer: the sanctioned ownership
// shapes for writing results out of a parallel chunk callback.
package app

import (
	"sync"
	"sync/atomic"

	"example.com/skel/internal/graph"
)

// chunkPerIndexSlot writes only to the slot owned by the chunk-local node
// index: disjoint slots, no race.
func chunkPerIndexSlot(g *graph.Graph) []int {
	out := make([]int, g.N())
	graph.ParallelNodes(g, nil, nil, func(w *graph.Walker, v int) {
		out[v] = v * v
	})
	return out
}

// chunkPerWorkerBuffer routes appends through the chunk-indexed buffer; the
// caller merges after the barrier.
func chunkPerWorkerBuffer(g *graph.Graph) [][]int {
	bufs := make([][]int, 4)
	graph.ParallelChunks(g.N(), 4, func(ci, lo, hi int) {
		for v := lo; v < hi; v++ {
			bufs[ci] = append(bufs[ci], v)
		}
	})
	return bufs
}

var chunkTotal int64

// chunkAtomicCounter aggregates through sync/atomic.
func chunkAtomicCounter(g *graph.Graph) int64 {
	atomic.StoreInt64(&chunkTotal, 0)
	graph.ParallelNodes(g, nil, nil, func(w *graph.Walker, v int) {
		atomic.AddInt64(&chunkTotal, int64(v))
	})
	return atomic.LoadInt64(&chunkTotal)
}

// chunkMutexGuarded reduces into shared state under a lock, accumulating
// chunk-locally first.
func chunkMutexGuarded(g *graph.Graph) int {
	var mu sync.Mutex
	total := 0
	graph.ParallelChunks(g.N(), 4, func(_, lo, hi int) {
		sub := 0
		for v := lo; v < hi; v++ {
			sub += v
		}
		mu.Lock()
		total += sub
		mu.Unlock()
	})
	return total
}

// chunkDerivedIndex writes through a slot derived from the chunk-local
// index; the derivation stays inside the callback.
func chunkDerivedIndex(g *graph.Graph, order []int) []int {
	out := make([]int, g.N())
	graph.ParallelRange(g, g.N(), nil, nil, func(w *graph.Walker, i int) {
		v := order[i]
		out[v] = i
	})
	return out
}

func sanctionedChunkWrite(g *graph.Graph) int {
	last := 0
	graph.ParallelNodes(g, nil, nil, func(w *graph.Walker, v int) {
		last = v //lint:allow chunkshare this call site pins maxChunks to 1, so writes are serial
	})
	return last
}
