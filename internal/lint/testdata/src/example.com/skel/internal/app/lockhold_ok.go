// Negative corpus for the lockhold analyzer: the sanctioned shapes for
// mixing locks with channels, the network, and other locks.
package app

import (
	"net"
	"sync"
)

type streamFan struct {
	mu   sync.Mutex
	subs []chan int
}

// emit is the StreamSink idiom: the send under the lock is non-blocking
// because the select has a default clause, so slow subscribers drop.
func (s *streamFan) emit(v int) {
	s.mu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- v:
		default:
		}
	}
	s.mu.Unlock()
}

// sendOutsideLock snapshots under the lock and blocks only after release.
func (s *streamFan) sendOutsideLock(v int) {
	s.mu.Lock()
	subs := append([]chan int(nil), s.subs...)
	s.mu.Unlock()
	for _, ch := range subs {
		ch <- v
	}
}

// dialBeforeLock does the blocking network work first, then takes the lock
// for the bookkeeping.
func (s *streamFan) dialBeforeLock(addr string) {
	conn, err := net.Dial("tcp", addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = conn, err
}

type consistentOrder struct {
	outer, inner sync.Mutex
}

// Both paths acquire outer before inner: one global order, no cycle.
func (o *consistentOrder) readPath() {
	o.outer.Lock()
	o.inner.Lock()
	o.inner.Unlock()
	o.outer.Unlock()
}

func (o *consistentOrder) writePath() {
	o.outer.Lock()
	o.inner.Lock()
	o.inner.Unlock()
	o.outer.Unlock()
}

func (s *streamFan) sanctionedDialUnderLock(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = net.Dial("tcp", addr) //lint:allow lockhold startup-only path, nothing else contends for mu yet
}
