// Positive corpus for the determinism analyzer: every construct here is a
// finding, matched against the expectation comments by TestAnalyzerCorpus.
package core

import (
	"fmt"
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want "call to time.Now"
}

func roll() int {
	return rand.Intn(6) // want "call to math/rand.Intn"
}

func freshRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "call to math/rand.New"
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "appends to \"out\" in map order with no later sort"
		out = append(out, k)
	}
	return out
}

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside iteration over a map"
	}
}
