// Negative corpus for the determinism analyzer: the blessed
// collect-then-sort shape and the //lint:allow suppression forms. No line
// here is a finding.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// sortedKeys iterates the map only to collect keys and sorts the result —
// the shape coarse.go uses; the later sort redeems the map-order append.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// loopLocal accumulates into a slice declared inside the loop, so no
// cross-iteration ordering escapes.
func loopLocal(m map[string][]int, want int) int {
	hits := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		if len(local) == want {
			hits++
		}
	}
	return hits
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) //lint:allow determinism seeded by caller; trailing-comment form
}

func stampSanctioned() int64 {
	//lint:allow determinism wall-clock timing only; preceding-line form
	return time.Now().UnixNano()
}
