// Package skeleton is a miniature stand-in for the real backend registry:
// just enough Register surface for the registration analyzer corpus.
package skeleton

// Backend is one pluggable skeleton extraction algorithm.
type Backend interface {
	Name() string
}

var registry = map[string]Backend{}

// Register adds a backend under its name, panicking on duplicates — which
// is only safe because registration happens at init time.
func Register(b Backend) {
	if _, dup := registry[b.Name()]; dup {
		panic("skeleton: duplicate backend " + b.Name())
	}
	registry[b.Name()] = b
}
