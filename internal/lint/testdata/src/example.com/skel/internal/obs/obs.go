// Package obs is a miniature stand-in for the real observability layer:
// just enough nil-safe handle surface for the obsnil analyzer corpus. The
// exported fields exist precisely so the corpus can violate the contract;
// the real package keeps them unexported. Field access in here is fine —
// obsnil is configured off inside internal/obs.
package obs

// Tracer is a nil-safe handle: a nil *Tracer is a valid disabled tracer.
type Tracer struct {
	Sink any
}

// Enabled reports whether the tracer records.
func (t *Tracer) Enabled() bool { return t != nil }

// StartSpan opens a span; nil tracers hand out nil spans.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{Name: name}
}

// Span is a nil-safe span handle.
type Span struct {
	ID   uint64
	Name string
}

// StartSpan opens a child span; nil spans hand out nil children.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{Name: name}
}

// Event records a point annotation; inert on nil.
func (s *Span) Event(name string) {}

// End closes the span; inert on nil.
func (s *Span) End() {}
