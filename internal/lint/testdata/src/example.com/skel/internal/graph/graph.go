// Package graph is a miniature stand-in for the real graph package: just
// enough of the chunk-parallel driver surface for the chunkshare analyzer
// corpus. The bodies run the callback serially — the analyzer only cares
// about the call shape and the package path.
package graph

// Graph is a placeholder node container.
type Graph struct{ n int }

// N returns the node count.
func (g *Graph) N() int { return g.n }

// Walker is a placeholder per-worker scratch carrier.
type Walker struct{ g *Graph }

// NewWalker creates a walker for g.
func NewWalker(g *Graph) *Walker { return &Walker{g: g} }

// ParallelNodes runs fn for every node, chunked across workers.
func ParallelNodes(g *Graph, acquire func() *Walker, release func(*Walker), fn func(w *Walker, v int)) {
	ParallelRange(g, g.N(), acquire, release, fn)
}

// ParallelRange is ParallelNodes over an arbitrary index space.
func ParallelRange(g *Graph, count int, acquire func() *Walker, release func(*Walker), fn func(w *Walker, i int)) {
	ParallelChunks(count, 1, func(_, lo, hi int) {
		w := NewWalker(g)
		for v := lo; v < hi; v++ {
			fn(w, v)
		}
	})
}

// ParallelChunks partitions 0..count-1 into chunks and runs fn per chunk.
func ParallelChunks(count, maxChunks int, fn func(ci, lo, hi int)) {
	if count > 0 {
		fn(0, 0, count)
	}
}
