package metrics_test

import (
	"math"
	"testing"

	"bfskel/internal/core"
	"bfskel/internal/geom"
	"bfskel/internal/metrics"
)

func rectPoly(w, h float64) *geom.Polygon {
	return geom.MustPolygon(geom.Ring{
		geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, h), geom.Pt(0, h),
	})
}

func TestEvaluateSkeletonBasics(t *testing.T) {
	poly := rectPoly(40, 10)
	// Nodes: a medial row at y=5 and boundary-ish rows.
	var pts []geom.Point
	var medialIDs []int32
	for x := 2.0; x <= 38; x += 2 {
		pts = append(pts, geom.Pt(x, 5))
		medialIDs = append(medialIDs, int32(len(pts)-1))
		pts = append(pts, geom.Pt(x, 1), geom.Pt(x, 9))
	}
	skel := core.NewSkeleton(len(pts))
	skel.AddPath(medialIDs)

	medial := geom.MedialAxis(poly, geom.MedialAxisOptions{GridStep: 0.5})
	rep := metrics.EvaluateSkeleton(poly, pts, skel, medial, 3)

	if rep.Nodes != len(medialIDs) {
		t.Errorf("Nodes = %d", rep.Nodes)
	}
	if rep.CycleRank != 0 || rep.Holes != 0 || !rep.HomotopyOK {
		t.Errorf("homotopy fields: %+v", rep)
	}
	if rep.MeanClearance <= rep.NetworkClearance {
		t.Errorf("medial row clearance %v not above network %v", rep.MeanClearance, rep.NetworkClearance)
	}
	if rep.MeanDistToMedial > 1 {
		t.Errorf("MeanDistToMedial = %v for exact medial nodes", rep.MeanDistToMedial)
	}
	if rep.MedialCoverage < 0.85 {
		t.Errorf("coverage = %v", rep.MedialCoverage)
	}
}

func TestEvaluateSkeletonDisconnected(t *testing.T) {
	poly := rectPoly(10, 10)
	pts := []geom.Point{geom.Pt(2, 5), geom.Pt(8, 5), geom.Pt(5, 5)}
	skel := core.NewSkeleton(3)
	skel.AddPath([]int32{0})
	skel.AddPath([]int32{1})
	rep := metrics.EvaluateSkeleton(poly, pts, skel, nil, 2)
	if rep.HomotopyOK {
		t.Error("two components should fail homotopy")
	}
}

func TestStability(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	a := core.NewSkeleton(3)
	a.AddPath([]int32{0, 1, 2})
	// Identical skeletons: stability 0.
	if got := metrics.Stability(pts, a, pts, a); got != 0 {
		t.Errorf("self stability = %v", got)
	}
	// Shifted copy.
	shifted := []geom.Point{geom.Pt(0, 3), geom.Pt(1, 3), geom.Pt(2, 3)}
	if got := metrics.Stability(pts, a, shifted, a); math.Abs(got-3) > 1e-9 {
		t.Errorf("shifted stability = %v, want 3", got)
	}
	// Empty skeleton: infinite.
	empty := core.NewSkeleton(3)
	if got := metrics.Stability(pts, a, pts, empty); !math.IsInf(got, 1) {
		t.Errorf("empty stability = %v", got)
	}
}

func TestBoundaryPR(t *testing.T) {
	poly := rectPoly(20, 20)
	pts := []geom.Point{
		geom.Pt(0.5, 10), // in band
		geom.Pt(10, 10),  // interior
		geom.Pt(19.5, 3), // in band
		geom.Pt(10, 0.5), // in band
	}
	// Detect nodes 0 and 1: one hit, one false positive.
	p, r := metrics.BoundaryPR(poly, pts, []int32{0, 1}, 1)
	if p != 0.5 {
		t.Errorf("precision = %v", p)
	}
	if math.Abs(r-1.0/3) > 1e-9 {
		t.Errorf("recall = %v", r)
	}
	// Empty detection.
	p, r = metrics.BoundaryPR(poly, pts, nil, 1)
	if p != 0 || r != 0 {
		t.Errorf("empty detection: %v, %v", p, r)
	}
}

func TestEvaluateSegmentation(t *testing.T) {
	cellOf := []int32{0, 0, 0, 1, 1, -1, 2, 2, 2, 2}
	rep := metrics.EvaluateSegmentation(cellOf)
	if rep.Cells != 3 {
		t.Errorf("Cells = %d", rep.Cells)
	}
	if rep.MaxSize != 4 {
		t.Errorf("MaxSize = %d", rep.MaxSize)
	}
	if math.Abs(rep.MeanSize-3) > 1e-9 {
		t.Errorf("MeanSize = %v", rep.MeanSize)
	}
	if math.Abs(rep.Balance-0.75) > 1e-9 {
		t.Errorf("Balance = %v", rep.Balance)
	}
	if math.Abs(rep.Assigned-0.9) > 1e-9 {
		t.Errorf("Assigned = %v", rep.Assigned)
	}
	empty := metrics.EvaluateSegmentation(nil)
	if empty.Cells != 0 || empty.Assigned != 0 {
		t.Errorf("empty segmentation: %+v", empty)
	}
}
