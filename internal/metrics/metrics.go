// Package metrics quantifies skeleton quality against the geometric ground
// truth. The paper argues quality visually; these metrics turn the visual
// claims — medial placement, homotopy preservation, stability across
// densities and radio models — into numbers the experiment harness can
// report and the tests can assert on.
package metrics

import (
	"math"

	"bfskel/internal/core"
	"bfskel/internal/geom"
)

// SkeletonReport summarises one extracted skeleton against ground truth.
type SkeletonReport struct {
	// Nodes and Edges of the skeleton; Components its connectivity.
	Nodes, Edges, Components int
	// CycleRank is the number of independent skeleton loops; Holes the
	// field's hole count. HomotopyOK reports CycleRank == Holes and
	// Components == 1.
	CycleRank  int
	Holes      int
	HomotopyOK bool
	// MeanClearance is the average geometric boundary distance of skeleton
	// nodes; NetworkClearance the same over all nodes. Their ratio is the
	// medial-placement signal (>1 means the skeleton sits inward).
	MeanClearance    float64
	NetworkClearance float64
	// MeanDistToMedial and HausdorffToMedial measure how far skeleton
	// nodes stray from the continuous medial axis, in field units.
	MeanDistToMedial  float64
	HausdorffToMedial float64
	// MedialCoverage is the fraction of medial-axis samples within
	// CoverageRadius of some skeleton node.
	MedialCoverage float64
	// CoverageRadius is the radius used for MedialCoverage.
	CoverageRadius float64
}

// EvaluateSkeleton builds a report for a skeleton over a deployed network.
// medial is the precomputed ground-truth axis (see geom.MedialAxis);
// coverageRadius is typically 2-3 radio ranges.
func EvaluateSkeleton(poly *geom.Polygon, pts []geom.Point, skel *core.Skeleton,
	medial []geom.MedialPoint, coverageRadius float64) SkeletonReport {

	rep := SkeletonReport{
		Nodes:          skel.NumNodes(),
		Edges:          skel.NumEdges(),
		Components:     skel.Components(),
		CycleRank:      skel.CycleRank(),
		Holes:          poly.NumHoles(),
		CoverageRadius: coverageRadius,
	}
	rep.HomotopyOK = rep.CycleRank == rep.Holes && rep.Components == 1

	rep.NetworkClearance = meanClearance(poly, pts, nil)
	nodes := skel.Nodes()
	rep.MeanClearance = meanClearance(poly, pts, nodes)

	if len(medial) > 0 && len(nodes) > 0 {
		rep.MeanDistToMedial, rep.HausdorffToMedial = distToMedial(pts, nodes, medial)
		rep.MedialCoverage = medialCoverage(pts, nodes, medial, coverageRadius)
	}
	return rep
}

// meanClearance averages the geometric boundary distance over the listed
// nodes (all nodes when the list is nil).
func meanClearance(poly *geom.Polygon, pts []geom.Point, nodes []int32) float64 {
	if nodes == nil {
		var sum float64
		for _, p := range pts {
			sum += poly.BoundaryDist(p)
		}
		if len(pts) == 0 {
			return 0
		}
		return sum / float64(len(pts))
	}
	if len(nodes) == 0 {
		return 0
	}
	var sum float64
	for _, v := range nodes {
		sum += poly.BoundaryDist(pts[v])
	}
	return sum / float64(len(nodes))
}

// distToMedial returns the mean and maximum distance from skeleton nodes to
// the nearest medial-axis sample.
func distToMedial(pts []geom.Point, nodes []int32, medial []geom.MedialPoint) (mean, max float64) {
	for _, v := range nodes {
		best := math.Inf(1)
		for _, m := range medial {
			if d := pts[v].Dist2(m.P); d < best {
				best = d
			}
		}
		d := math.Sqrt(best)
		mean += d
		if d > max {
			max = d
		}
	}
	mean /= float64(len(nodes))
	return mean, max
}

// medialCoverage returns the fraction of medial samples with a skeleton
// node within radius.
func medialCoverage(pts []geom.Point, nodes []int32, medial []geom.MedialPoint, radius float64) float64 {
	r2 := radius * radius
	covered := 0
	for _, m := range medial {
		for _, v := range nodes {
			if pts[v].Dist2(m.P) <= r2 {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(medial))
}

// Stability measures how much two skeletons of the same field differ: the
// symmetric mean nearest-neighbor distance between their node sets, in
// field units. Low values across densities and radio models back the
// paper's Figs. 5-7 stability claims.
func Stability(ptsA []geom.Point, a *core.Skeleton, ptsB []geom.Point, b *core.Skeleton) float64 {
	na, nb := a.Nodes(), b.Nodes()
	if len(na) == 0 || len(nb) == 0 {
		return math.Inf(1)
	}
	return (meanNearest(ptsA, na, ptsB, nb) + meanNearest(ptsB, nb, ptsA, na)) / 2
}

// meanNearest averages, over nodes of set A, the distance to the nearest
// node of set B.
func meanNearest(ptsA []geom.Point, a []int32, ptsB []geom.Point, b []int32) float64 {
	var sum float64
	for _, v := range a {
		best := math.Inf(1)
		for _, u := range b {
			if d := ptsA[v].Dist2(ptsB[u]); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(a))
}

// SkeletonDistance measures how far skeleton a strays from reference
// skeleton b over one deployment: the mean and maximum (Hausdorff)
// distance from a's nodes to the nearest node of b, in field units. Unlike
// Stability it is directed — the scorecard uses it to compare every backend
// against the bfskel reference. Both values are -1 when either skeleton is
// empty (a finite JSON-safe sentinel, unlike Stability's +Inf).
func SkeletonDistance(pts []geom.Point, a, b *core.Skeleton) (mean, hausdorff float64) {
	na, nb := a.Nodes(), b.Nodes()
	if len(na) == 0 || len(nb) == 0 {
		return -1, -1
	}
	for _, v := range na {
		best := math.Inf(1)
		for _, u := range nb {
			if d := pts[v].Dist2(pts[u]); d < best {
				best = d
			}
		}
		d := math.Sqrt(best)
		mean += d
		if d > hausdorff {
			hausdorff = d
		}
	}
	return mean / float64(len(na)), hausdorff
}

// BoundaryPR scores a detected boundary node set against the geometric
// truth: precision counts detected nodes within the band of the true
// boundary, recall counts band nodes that were detected.
func BoundaryPR(poly *geom.Polygon, pts []geom.Point, detected []int32, band float64) (precision, recall float64) {
	isDetected := make(map[int32]bool, len(detected))
	for _, v := range detected {
		isDetected[v] = true
	}
	var inBand, caught, hits int
	for v := range pts {
		near := poly.BoundaryDist(pts[v]) <= band
		if near {
			inBand++
			if isDetected[int32(v)] {
				caught++
			}
		}
		if isDetected[int32(v)] && near {
			hits++
		}
	}
	if len(detected) > 0 {
		precision = float64(hits) / float64(len(detected))
	}
	if inBand > 0 {
		recall = float64(caught) / float64(inBand)
	}
	return precision, recall
}

// SegmentationReport summarises the Voronoi-cell by-product.
type SegmentationReport struct {
	// Cells is the number of non-empty cells.
	Cells int
	// MeanSize and MaxSize describe the cell size distribution.
	MeanSize float64
	MaxSize  int
	// Balance is MeanSize/MaxSize in (0,1]; higher is more even.
	Balance float64
	// Assigned is the fraction of nodes belonging to some cell.
	Assigned float64
}

// EvaluateSegmentation scores the cell decomposition.
func EvaluateSegmentation(cellOf []int32) SegmentationReport {
	sizes := make(map[int32]int)
	assigned := 0
	for _, c := range cellOf {
		if c >= 0 {
			sizes[c]++
			assigned++
		}
	}
	rep := SegmentationReport{Cells: len(sizes)}
	if len(cellOf) > 0 {
		rep.Assigned = float64(assigned) / float64(len(cellOf))
	}
	if len(sizes) == 0 {
		return rep
	}
	for _, s := range sizes {
		rep.MeanSize += float64(s)
		if s > rep.MaxSize {
			rep.MaxSize = s
		}
	}
	rep.MeanSize /= float64(len(sizes))
	rep.Balance = rep.MeanSize / float64(rep.MaxSize)
	return rep
}
