package radio

// WithRange returns a copy of the model with its base range R replaced.
// It reports false for model types it does not know how to rescale.
// The network builder uses it to calibrate a probabilistic model against a
// target average degree.
func WithRange(m Model, r float64) (Model, bool) {
	switch t := m.(type) {
	case UDG:
		t.R = r
		return t, true
	case QUDG:
		t.R = r
		return t, true
	case LogNormal:
		t.R = r
		return t, true
	default:
		return m, false
	}
}

// BaseRange returns the model's base range R, if known.
func BaseRange(m Model) (float64, bool) {
	switch t := m.(type) {
	case UDG:
		return t.R, true
	case QUDG:
		return t.R, true
	case LogNormal:
		return t.R, true
	default:
		return 0, false
	}
}
