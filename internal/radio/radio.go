// Package radio implements the communication radio models of the paper's
// evaluation (Sec. IV): the Unit-Disk Graph, the Quasi-Unit-Disk Graph, and
// the log-normal shadowing model of Hekmat & Van Mieghem (paper Eq. 2).
//
// A Model maps a pairwise distance to a link probability. Link realisations
// are drawn by the network builder with a seeded RNG so that a (deployment,
// model, seed) triple always yields the same connectivity graph.
package radio

import (
	"fmt"
	"math"
)

// Model describes a symmetric stochastic link model.
type Model interface {
	// LinkProb returns the probability that two nodes separated by dist
	// share a link. Must be in [0, 1] and non-increasing beyond MaxRange.
	LinkProb(dist float64) float64
	// MaxRange returns a distance beyond which LinkProb is (effectively)
	// zero; the graph builder only examines pairs within this range.
	MaxRange() float64
	// String names the model for reports.
	String() string
}

// UDG is the Unit-Disk Graph model: nodes are connected iff their
// separation is no greater than R.
type UDG struct {
	// R is the communication radio range.
	R float64
}

var _ Model = UDG{}

// LinkProb implements Model.
func (m UDG) LinkProb(dist float64) float64 {
	if dist <= m.R {
		return 1
	}
	return 0
}

// MaxRange implements Model.
func (m UDG) MaxRange() float64 { return m.R }

// String implements Model.
func (m UDG) String() string { return fmt.Sprintf("UDG(R=%.3g)", m.R) }

// QUDG is the Quasi-Unit-Disk Graph model with parameters 0 <= Alpha < 1 and
// 0 < P < 1: a link surely exists below (1-Alpha)R, exists with probability
// P between (1-Alpha)R and (1+Alpha)R, and never exists beyond (1+Alpha)R.
type QUDG struct {
	R     float64
	Alpha float64
	P     float64
}

var _ Model = QUDG{}

// LinkProb implements Model.
func (m QUDG) LinkProb(dist float64) float64 {
	switch {
	case dist < (1-m.Alpha)*m.R:
		return 1
	case dist <= (1+m.Alpha)*m.R:
		return m.P
	default:
		return 0
	}
}

// MaxRange implements Model.
func (m QUDG) MaxRange() float64 { return (1 + m.Alpha) * m.R }

// String implements Model.
func (m QUDG) String() string {
	return fmt.Sprintf("QUDG(R=%.3g, alpha=%.2f, p=%.2f)", m.R, m.Alpha, m.P)
}

// LogNormal is the log-normal shadowing model of paper Eq. 2:
//
//	p(r^) = 1/2 * (1 - erf(alpha * log10(r^) / Epsilon)),  alpha = 10/sqrt(2)
//
// where r^ = dist/R is the normalized distance and Epsilon = sigma/eta is
// the ratio of the shadowing standard deviation to the path-loss exponent
// (0 <= Epsilon <= 6 empirically). Epsilon = 0 degenerates to UDG. Links
// shorter than R may be absent and links longer than R exist with non-zero
// probability — the model's defining feature.
type LogNormal struct {
	R       float64
	Epsilon float64
}

var _ Model = LogNormal{}

// logNormalAlpha is 10/sqrt(2) from Eq. 2 after converting natural log to
// log10 (the paper writes alpha = 10/(sqrt(2) * ln 10) against ln r^).
const logNormalAlpha = 10.0 / math.Sqrt2

// cutoffProb is the link probability below which we truncate the model's
// infinite tail; it bounds MaxRange so the graph builder stays near-linear.
const cutoffProb = 0.005

// LinkProb implements Model.
func (m LogNormal) LinkProb(dist float64) float64 {
	if m.Epsilon <= 0 {
		if dist <= m.R {
			return 1
		}
		return 0
	}
	if dist <= 0 {
		return 1
	}
	rhat := dist / m.R
	p := 0.5 * (1 - math.Erf(logNormalAlpha*math.Log10(rhat)/m.Epsilon))
	if p < cutoffProb {
		return 0
	}
	return p
}

// MaxRange implements Model. It returns the distance at which LinkProb
// crosses cutoffProb.
func (m LogNormal) MaxRange() float64 {
	if m.Epsilon <= 0 {
		return m.R
	}
	// Solve 1/2 (1 - erf(a*log10(rhat)/eps)) = cutoffProb for rhat.
	x := inverseErf(1 - 2*cutoffProb)
	return m.R * math.Pow(10, x*m.Epsilon/logNormalAlpha)
}

// String implements Model.
func (m LogNormal) String() string {
	return fmt.Sprintf("LogNormal(R=%.3g, eps=%.2f)", m.R, m.Epsilon)
}

// inverseErf computes the inverse error function by bisection; it is only
// used to size MaxRange, so a modest precision suffices.
func inverseErf(y float64) float64 {
	lo, hi := 0.0, 6.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if math.Erf(mid) < y {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
