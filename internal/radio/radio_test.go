package radio_test

import (
	"math"
	"testing"
	"testing/quick"

	"bfskel/internal/radio"
)

func TestUDG(t *testing.T) {
	m := radio.UDG{R: 5}
	tests := []struct {
		d    float64
		want float64
	}{
		{0, 1}, {4.99, 1}, {5, 1}, {5.01, 0}, {100, 0},
	}
	for _, tt := range tests {
		if got := m.LinkProb(tt.d); got != tt.want {
			t.Errorf("LinkProb(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
	if m.MaxRange() != 5 {
		t.Errorf("MaxRange = %v", m.MaxRange())
	}
}

func TestQUDG(t *testing.T) {
	m := radio.QUDG{R: 10, Alpha: 0.4, P: 0.3}
	tests := []struct {
		d    float64
		want float64
	}{
		{0, 1}, {5.9, 1}, {6.1, 0.3}, {13.9, 0.3}, {14.1, 0},
	}
	for _, tt := range tests {
		if got := m.LinkProb(tt.d); got != tt.want {
			t.Errorf("LinkProb(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
	if got := m.MaxRange(); got != 14 {
		t.Errorf("MaxRange = %v, want 14", got)
	}
}

func TestLogNormal(t *testing.T) {
	m := radio.LogNormal{R: 10, Epsilon: 2}
	// At the nominal range the probability is exactly 1/2.
	if got := m.LinkProb(10); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("LinkProb(R) = %v, want 0.5", got)
	}
	// Monotone non-increasing in distance.
	prev := 2.0
	for d := 0.5; d < 50; d += 0.5 {
		p := m.LinkProb(d)
		if p > prev+1e-12 {
			t.Fatalf("LinkProb not monotone at %v: %v > %v", d, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("LinkProb(%v) = %v out of [0,1]", d, p)
		}
		prev = p
	}
	// Long links exist with non-zero probability (the defining feature).
	if m.LinkProb(12) <= 0 {
		t.Error("link beyond R should have non-zero probability")
	}
	// Beyond MaxRange the probability is zero.
	if got := m.LinkProb(m.MaxRange() + 1); got != 0 {
		t.Errorf("LinkProb beyond MaxRange = %v", got)
	}
}

func TestLogNormalEpsilonZeroIsUDG(t *testing.T) {
	m := radio.LogNormal{R: 7, Epsilon: 0}
	if m.LinkProb(6.9) != 1 || m.LinkProb(7.1) != 0 {
		t.Error("epsilon=0 should degenerate to UDG")
	}
	if m.MaxRange() != 7 {
		t.Errorf("MaxRange = %v", m.MaxRange())
	}
}

// TestLogNormalRangeGrowsWithEpsilon: heavier shadowing reaches farther.
func TestLogNormalRangeGrowsWithEpsilon(t *testing.T) {
	prev := 0.0
	for _, eps := range []float64{0, 1, 2, 3, 4} {
		r := radio.LogNormal{R: 10, Epsilon: eps}.MaxRange()
		if r < prev {
			t.Fatalf("MaxRange decreased at eps=%v: %v < %v", eps, r, prev)
		}
		prev = r
	}
}

// TestProbabilityBounds is a property check across all models.
func TestProbabilityBounds(t *testing.T) {
	models := []radio.Model{
		radio.UDG{R: 3},
		radio.QUDG{R: 3, Alpha: 0.5, P: 0.4},
		radio.LogNormal{R: 3, Epsilon: 1.5},
	}
	f := func(d float64) bool {
		d = math.Abs(d)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			d = 1
		}
		d = math.Mod(d, 100)
		for _, m := range models {
			p := m.LinkProb(d)
			if p < 0 || p > 1 {
				return false
			}
			if d > m.MaxRange() && p != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithRangeAndBaseRange(t *testing.T) {
	for _, m := range []radio.Model{
		radio.UDG{R: 2},
		radio.QUDG{R: 2, Alpha: 0.1, P: 0.5},
		radio.LogNormal{R: 2, Epsilon: 1},
	} {
		r, ok := radio.BaseRange(m)
		if !ok || r != 2 {
			t.Errorf("%v: BaseRange = %v, %v", m, r, ok)
		}
		scaled, ok := radio.WithRange(m, 5)
		if !ok {
			t.Errorf("%v: WithRange failed", m)
		}
		if r, _ := radio.BaseRange(scaled); r != 5 {
			t.Errorf("%v: scaled range = %v", m, r)
		}
		// The original is unchanged (value semantics).
		if r, _ := radio.BaseRange(m); r != 2 {
			t.Errorf("%v: original mutated to %v", m, r)
		}
	}
}

func TestStrings(t *testing.T) {
	for _, m := range []radio.Model{
		radio.UDG{R: 2},
		radio.QUDG{R: 2, Alpha: 0.1, P: 0.5},
		radio.LogNormal{R: 2, Epsilon: 1},
	} {
		if m.String() == "" {
			t.Errorf("%T: empty String()", m)
		}
	}
}
