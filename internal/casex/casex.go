// Package casex implements the CASE baseline (Jiang et al.: "CASE:
// Connectivity-based skeleton extraction in wireless sensor networks"):
// given identified boundary cycles, CASE segments each boundary into
// branches at corner points, declares nodes whose nearest boundary nodes
// fall on two or more different branches as skeleton nodes, and connects
// and prunes them. Corner detection tames boundary noise — the improvement
// over MAP the paper highlights — at the cost of still requiring known
// boundaries, which is exactly the dependency the paper's algorithm
// removes.
package casex

import (
	"bfskel/internal/boundary"
	"bfskel/internal/core"
	"bfskel/internal/graph"
)

// Options configures the baseline.
type Options struct {
	// CornerWindow is the half-window (in along-cycle positions) of the
	// shortcut test (default 6).
	CornerWindow int
	// CornerRatio flags a corner when the graph shortcut between the two
	// window ends is below CornerRatio x the along-cycle arc (default 0.6).
	CornerRatio float64
	// TieSlack is the distance slack for recording several nearest
	// boundary nodes (default 1).
	TieSlack int32
	// PruneLen trims leaf skeleton branches shorter than this many hops
	// (default 3).
	PruneLen int
}

func (o Options) withDefaults() Options {
	if o.CornerWindow <= 0 {
		o.CornerWindow = 6
	}
	if o.CornerRatio <= 0 {
		o.CornerRatio = 0.6
	}
	if o.TieSlack <= 0 {
		o.TieSlack = 1
	}
	if o.PruneLen <= 0 {
		o.PruneLen = 3
	}
	return o
}

// Result is the extracted skeleton.
type Result struct {
	// Corners are the detected corner points, per boundary cycle.
	Corners [][]int32
	// BranchOf labels each boundary node with its branch ID (-1 for
	// non-boundary nodes).
	BranchOf []int
	// NumBranches is the number of boundary branches.
	NumBranches int
	// SkeletonNodes are the nodes whose nearest boundary nodes span two or
	// more branches, sorted.
	SkeletonNodes []int32
	// Skeleton is the connected, pruned structure.
	Skeleton *core.Skeleton
}

// Extract runs the CASE baseline on a graph with known boundary.
func Extract(g *graph.Graph, b *boundary.Result, opts Options) *Result {
	return extractStaged(g, b, opts, func(_ string, fn func()) { fn() })
}

// extractStaged is the CASE pipeline split into named stages, each run
// through the given hook — inline for the plain Extract entry point, or
// under a timed "stage.<name>" span when driven by the registry backend.
func extractStaged(g *graph.Graph, b *boundary.Result, opts Options,
	stage func(name string, fn func())) *Result {

	opts = opts.withDefaults()
	res := &Result{BranchOf: make([]int, g.N())}
	for i := range res.BranchOf {
		res.BranchOf[i] = -1
	}

	// Corner detection and branch labelling per cycle.
	stage("corners", func() {
		branch := 0
		for _, cycle := range b.Cycles {
			corners := detectCorners(g, cycle, opts)
			res.Corners = append(res.Corners, corners)
			branch = labelBranches(cycle, corners, res.BranchOf, branch)
		}
		res.NumBranches = branch
	})

	// Distance transform with branch-aware records; nodes whose nearest
	// boundary nodes span two or more branches become skeleton nodes.
	isSkel := make([]bool, g.N())
	stage("transform", func() {
		_, records := g.MultiSourceRecords(b.Nodes, opts.TieSlack)
		for v := 0; v < g.N(); v++ {
			if b.IsBoundary[v] {
				continue
			}
			seen := -1
			for _, r := range records[v] {
				br := res.BranchOf[r.Source]
				if br == -1 {
					continue
				}
				if seen == -1 {
					seen = br
					continue
				}
				if br != seen {
					isSkel[v] = true
					break
				}
			}
		}
		for v := 0; v < g.N(); v++ {
			if isSkel[v] {
				res.SkeletonNodes = append(res.SkeletonNodes, int32(v))
			}
		}
	})

	// Connect and prune into CASE's skeleton arcs.
	stage("connect", func() {
		res.Skeleton = core.NewSkeleton(g.N())
		core.ConnectWithin2(g, isSkel, res.Skeleton)
		core.PruneLeafBranches(res.Skeleton, opts.PruneLen)
	})
	return res
}

// detectCorners flags cycle positions where the graph shortcut between the
// window ends is much shorter than the along-cycle arc — the boundary turns
// back on itself — with non-maximum suppression inside the window.
func detectCorners(g *graph.Graph, cycle []int32, opts Options) []int32 {
	l := len(cycle)
	w := opts.CornerWindow
	if l < 4*w {
		return nil
	}
	ratio := make([]float64, l)
	for i := range cycle {
		a := cycle[(i-w+l)%l]
		b := cycle[(i+w)%l]
		arc := float64(2 * w)
		cut := hopDistCapped(g, a, b, int32(2*w+2))
		ratio[i] = float64(cut) / arc
	}
	var corners []int32
	for i := range cycle {
		if ratio[i] >= opts.CornerRatio {
			continue
		}
		// Non-maximum suppression: keep only the sharpest position in the
		// window.
		best := true
		for d := -w; d <= w; d++ {
			j := (i + d + l) % l
			if ratio[j] < ratio[i] || (ratio[j] == ratio[i] && j < i) {
				best = false
				break
			}
		}
		if best {
			corners = append(corners, cycle[i])
		}
	}
	return corners
}

// labelBranches splits the ordered cycle at its corners and assigns one
// branch ID per segment, returning the next free ID. A cycle without
// corners is one branch.
func labelBranches(cycle []int32, corners []int32, branchOf []int, next int) int {
	isCorner := make(map[int32]bool, len(corners))
	for _, c := range corners {
		isCorner[c] = true
	}
	if len(corners) == 0 {
		for _, v := range cycle {
			branchOf[v] = next
		}
		return next + 1
	}
	// Start labelling at the first corner so every segment is contiguous.
	start := 0
	for i, v := range cycle {
		if isCorner[v] {
			start = i
			break
		}
	}
	cur := next
	for i := 0; i < len(cycle); i++ {
		v := cycle[(start+i)%len(cycle)]
		if isCorner[v] && i > 0 {
			cur++
		}
		branchOf[v] = cur
	}
	return cur + 1
}

// hopDistCapped returns the hop distance between a and b, or cap+1 when it
// exceeds the cap.
func hopDistCapped(g *graph.Graph, a, b int32, cap int32) int32 {
	if a == b {
		return 0
	}
	dist := map[int32]int32{a: 0}
	queue := []int32{a}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du >= cap {
			continue
		}
		for _, v := range g.Neighbors(int(u)) {
			if _, seen := dist[v]; seen {
				continue
			}
			if v == b {
				return du + 1
			}
			dist[v] = du + 1
			queue = append(queue, v)
		}
	}
	return cap + 1
}
