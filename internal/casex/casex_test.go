package casex_test

import (
	"testing"

	"bfskel/internal/boundary"
	"bfskel/internal/casex"
	"bfskel/internal/nettest"
)

// TestExtractStar checks CASE on the star field: the boundary must split
// into several branches (the star has ten alternating corners) and the
// skeleton nodes must lie medially.
func TestExtractStar(t *testing.T) {
	net := nettest.Grid("star", 1394, 7, 1)
	b := boundary.Detect(net.Graph, boundary.Options{})
	res := casex.Extract(net.Graph, b, casex.Options{})

	t.Logf("branches=%d skeleton nodes=%d", res.NumBranches, len(res.SkeletonNodes))
	if res.NumBranches < 4 {
		t.Errorf("branches = %d, want >= 4 (star boundary has many corners)", res.NumBranches)
	}
	if len(res.SkeletonNodes) == 0 {
		t.Fatal("no skeleton nodes")
	}
	var all, skel float64
	for v := 0; v < net.Graph.N(); v++ {
		all += net.Shape.Poly.BoundaryDist(net.Points[v])
	}
	all /= float64(net.Graph.N())
	for _, v := range res.SkeletonNodes {
		skel += net.Shape.Poly.BoundaryDist(net.Points[v])
	}
	skel /= float64(len(res.SkeletonNodes))
	t.Logf("mean clearance: skeleton %.2f vs network %.2f", skel, all)
	if skel < 1.2*all {
		t.Errorf("skeleton mean clearance %.2f not above network mean %.2f", skel, all)
	}
}

// TestCornersOnConvexField checks that a field without sharp concavities
// (the smile's disk-like face) yields far fewer corners than the star.
func TestCornersOnConvexField(t *testing.T) {
	star := nettest.Grid("star", 1394, 7, 1)
	smile := nettest.Grid("smile", 1500, 7, 1)

	cornerCount := func(n *nettest.Network) int {
		b := boundary.Detect(n.Graph, boundary.Options{})
		res := casex.Extract(n.Graph, b, casex.Options{})
		total := 0
		for _, cs := range res.Corners {
			total += len(cs)
		}
		return total
	}
	cs, cm := cornerCount(star), cornerCount(smile)
	t.Logf("corners: star=%d smile=%d", cs, cm)
	if cs <= cm {
		t.Errorf("star should have more corners than the smile face (star=%d smile=%d)", cs, cm)
	}
}
