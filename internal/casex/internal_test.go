package casex

import (
	"testing"

	"bfskel/internal/graph"
)

func TestLabelBranches(t *testing.T) {
	branchOf := make([]int, 10)
	for i := range branchOf {
		branchOf[i] = -1
	}
	cycle := []int32{0, 1, 2, 3, 4, 5}

	// No corners: one branch.
	next := labelBranches(cycle, nil, branchOf, 0)
	if next != 1 {
		t.Fatalf("next = %d", next)
	}
	for _, v := range cycle {
		if branchOf[v] != 0 {
			t.Fatalf("node %d branch = %d", v, branchOf[v])
		}
	}

	// Two corners split the cycle into two contiguous branches.
	for i := range branchOf {
		branchOf[i] = -1
	}
	next = labelBranches(cycle, []int32{1, 4}, branchOf, 5)
	if next != 7 {
		t.Fatalf("next = %d, want 7 (two branches from base 5)", next)
	}
	// Starting at corner 1: positions 1,2,3 are one branch; 4,5,0 the other.
	if branchOf[1] != branchOf[2] || branchOf[2] != branchOf[3] {
		t.Errorf("first branch not contiguous: %v", branchOf[:6])
	}
	if branchOf[4] != branchOf[5] || branchOf[5] != branchOf[0] {
		t.Errorf("second branch not contiguous: %v", branchOf[:6])
	}
	if branchOf[1] == branchOf[4] {
		t.Errorf("branches not distinct: %v", branchOf[:6])
	}
}

func TestHopDistCapped(t *testing.T) {
	g := graph.New(6)
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(i, i+1)
	}
	g.SortAdjacency()
	if got := hopDistCapped(g, 0, 3, 10); got != 3 {
		t.Errorf("dist = %d", got)
	}
	if got := hopDistCapped(g, 0, 0, 10); got != 0 {
		t.Errorf("self dist = %d", got)
	}
	// Cap cuts the search.
	if got := hopDistCapped(g, 0, 5, 2); got != 3 {
		t.Errorf("capped = %d, want cap+1 = 3", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.CornerWindow != 6 || o.CornerRatio != 0.6 || o.TieSlack != 1 || o.PruneLen != 3 {
		t.Errorf("defaults = %+v", o)
	}
	custom := Options{CornerWindow: 3, CornerRatio: 0.5, TieSlack: 2, PruneLen: 5}.withDefaults()
	if custom.CornerWindow != 3 || custom.CornerRatio != 0.5 || custom.TieSlack != 2 || custom.PruneLen != 5 {
		t.Errorf("custom overridden: %+v", custom)
	}
}

// TestDetectCornersSyntheticL: an L-shaped boundary band on a grid has a
// sharp inner corner where the shortcut between window ends is much shorter
// than the arc; a straight band has none.
func TestDetectCornersSyntheticL(t *testing.T) {
	// Grid graph 20x20 with unit spacing and 8-neighborhood would be
	// overkill; instead build two explicit bands over a shared graph.
	//
	// The graph is a 2D lattice; the "cycle" is the ordered node list we
	// hand to detectCorners, mimicking an ordered boundary chain.
	const w = 21
	g := graph.New(w * w)
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < w; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(int(id(x, y)), int(id(x+1, y)))
			}
			if y+1 < w {
				g.AddEdge(int(id(x, y)), int(id(x, y+1)))
			}
			if x+1 < w && y+1 < w {
				g.AddEdge(int(id(x, y)), int(id(x+1, y+1))) // diagonals make the L cut shorter
			}
		}
	}
	g.SortAdjacency()

	// L-band: along the bottom row then up the right column.
	var lband []int32
	for x := 0; x < w; x++ {
		lband = append(lband, id(x, 0))
	}
	for y := 1; y < w; y++ {
		lband = append(lband, id(w-1, y))
	}
	opts := Options{CornerWindow: 6, CornerRatio: 0.8}.withDefaults()
	// detectCorners treats the list as circular; pad the ends far apart by
	// requiring len >= 4w, which holds (41 >= 24).
	corners := detectCorners(g, lband, opts)
	if len(corners) == 0 {
		t.Error("no corner found on an L band")
	}
	// The corner should be near the bend (w-1, 0).
	foundNearBend := false
	for _, c := range corners {
		x, y := int(c)%w, int(c)/w
		if y <= 3 && x >= w-4 {
			foundNearBend = true
		}
	}
	if !foundNearBend {
		t.Errorf("corners %v not near the bend", corners)
	}
}
