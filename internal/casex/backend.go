package casex

import (
	"bfskel/internal/boundary"
	"bfskel/internal/graph"
	"bfskel/internal/obs"
	"bfskel/internal/skeleton"
)

func init() { skeleton.Register(backend{}) }

// backend exposes CASE behind the registry seam, with the boundary
// substrate resolved through the pluggable provider in skeleton.Params.
type backend struct {
	// Opts configures the baseline; the zero value uses the defaults.
	Opts Options
}

// Name implements skeleton.Backend.
func (backend) Name() string { return "case" }

// Capabilities implements skeleton.Backend: CASE consumes a boundary
// substrate; its corner/branch construction gives no homotopy guarantee.
func (backend) Capabilities() skeleton.Capabilities {
	return skeleton.Capabilities{NeedsBoundary: true}
}

// Extract implements skeleton.Backend.
func (bk backend) Extract(g *graph.Graph, p skeleton.Params) (*skeleton.Result, *skeleton.Stats, error) {
	run := skeleton.NewRun(p, bk.Name(), g)
	var b *boundary.Result
	if err := run.Stage("boundary", func() (err error) {
		b, err = p.ResolveBoundary(g)
		return err
	}); err != nil {
		run.Fail(err)
		return nil, nil, err
	}
	res := extractStaged(g, b, bk.Opts, run.Hook())
	stats := run.Finish(
		obs.Int("branches", res.NumBranches),
		obs.Int("skelNodes", res.Skeleton.NumNodes()))
	stats.BoundaryNodes = len(b.Nodes)
	out := &skeleton.Result{
		Backend:  bk.Name(),
		Nodes:    res.Skeleton.Nodes(),
		Skeleton: res.Skeleton,
		Boundary: b.Nodes,
		Stats:    stats,
		Native:   res,
	}
	return out, stats, nil
}
