package shapes

import (
	"math"
	"testing"

	"bfskel/internal/geom"
)

// wantHoles is the paper-given hole count per field.
var wantHoles = map[string]int{
	"window":   4,
	"onehole":  1,
	"flower":   0,
	"smile":    3,
	"music":    0,
	"airplane": 0,
	"cactus":   0,
	"starhole": 1,
	"spiral":   0,
	"twoholes": 2,
	"star":     0,
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != len(wantHoles) {
		t.Fatalf("registry has %d shapes, want %d: %v", len(names), len(wantHoles), names)
	}
	for name, holes := range wantHoles {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Holes() != holes {
			t.Errorf("%s: holes = %d, want %d", name, s.Holes(), holes)
		}
		if s.Name != name {
			t.Errorf("%s: Name = %q", name, s.Name)
		}
		if s.Description == "" {
			t.Errorf("%s: empty description", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("expected error for unknown shape")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic on unknown shape")
		}
	}()
	MustByName("nonesuch")
}

func TestAllOrdered(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("All() not sorted at %d: %q >= %q", i, all[i-1].Name, all[i].Name)
		}
	}
}

// TestShapeGeometryValid checks structural invariants of every field:
// positive area, holes strictly inside the outer ring, holes pairwise
// disjoint (verified by sampling), and a non-trivial interior.
func TestShapeGeometryValid(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			pg := s.Poly
			if pg.Area() <= 0 {
				t.Fatalf("area = %v", pg.Area())
			}
			for hi, h := range pg.Holes {
				if h.Area() <= 0 {
					t.Errorf("hole %d area = %v", hi, h.Area())
				}
				for _, p := range h {
					if !pg.Outer.Contains(p) {
						t.Errorf("hole %d vertex %v outside outer ring", hi, p)
					}
					for hj, other := range pg.Holes {
						if hj != hi && other.Contains(p) {
							t.Errorf("hole %d vertex %v inside hole %d", hi, p, hj)
						}
					}
				}
			}
			// The interior must accept a decent fraction of bounding-box
			// samples (sanity against self-intersecting outlines).
			b := pg.Bounds()
			inside := 0
			const grid = 40
			for i := 0; i < grid; i++ {
				for j := 0; j < grid; j++ {
					p := geom.Pt(
						b.Min.X+(float64(i)+0.5)*b.Width()/grid,
						b.Min.Y+(float64(j)+0.5)*b.Height()/grid,
					)
					if pg.Contains(p) {
						inside++
					}
				}
			}
			frac := float64(inside) / (grid * grid)
			if frac < 0.15 {
				t.Errorf("only %.0f%% of bbox samples inside; outline may self-intersect", 100*frac)
			}
			// Area consistency: ring-formula area vs sampled area.
			sampled := frac * b.Width() * b.Height()
			if math.Abs(sampled-pg.Area())/pg.Area() > 0.1 {
				t.Errorf("sampled area %.0f vs ring area %.0f", sampled, pg.Area())
			}
		})
	}
}

func TestRingHelpers(t *testing.T) {
	rect := RectRing(1, 2, 4, 6)
	if got := rect.Area(); got != 12 {
		t.Errorf("RectRing area = %v", got)
	}
	circ := CircleRing(geom.Pt(0, 0), 10, 100)
	if got := circ.Area(); math.Abs(got-math.Pi*100)/(math.Pi*100) > 0.01 {
		t.Errorf("CircleRing area = %v, want ~%v", got, math.Pi*100)
	}
	star := StarRing(geom.Pt(0, 0), 10, 4, 5)
	if len(star) != 10 {
		t.Errorf("StarRing len = %d", len(star))
	}
	if star.Area() <= 0 || star.Area() >= math.Pi*100 {
		t.Errorf("StarRing area = %v out of range", star.Area())
	}
	polar := PolarRing(geom.Pt(0, 0), func(float64) float64 { return 5 }, 64)
	if got := polar.Area(); math.Abs(got-math.Pi*25)/(math.Pi*25) > 0.02 {
		t.Errorf("PolarRing const-radius area = %v", got)
	}
	band := ArcBandRing(geom.Pt(0, 0), 4, 6, 0, math.Pi, 32)
	wantBand := math.Pi * (36 - 16) / 2
	if got := band.Area(); math.Abs(got-wantBand)/wantBand > 0.05 {
		t.Errorf("ArcBandRing area = %v, want ~%v", got, wantBand)
	}
	// Degenerate inputs are clamped, not panics.
	if got := CircleRing(geom.Pt(0, 0), 1, 2); len(got) != 3 {
		t.Errorf("CircleRing clamp = %d vertices", len(got))
	}
	if got := StarRing(geom.Pt(0, 0), 2, 1, 1); len(got) != 6 {
		t.Errorf("StarRing clamp = %d vertices", len(got))
	}
}
