// Package shapes defines the deployment fields used in the paper's
// evaluation (Figs. 1 and 4): eleven regions of roughly 100x100 units, each
// a polygon with zero or more holes. The silhouettes are hand-crafted
// approximations; only their topology (holes, concavities, branches) and
// rough proportions matter to the skeleton algorithm.
package shapes

import (
	"fmt"
	"math"
	"sort"

	"bfskel/internal/geom"
)

// Shape is a named deployment field.
type Shape struct {
	// Name is the registry key, e.g. "window".
	Name string
	// Description explains which paper figure the shape reproduces.
	Description string
	// Poly is the region nodes are deployed in.
	Poly *geom.Polygon
}

// Holes returns the number of holes in the field — the number of genuine
// skeleton loops a homotopy-preserving skeleton must contain.
func (s Shape) Holes() int {
	return s.Poly.NumHoles()
}

// Registry of all shapes, constructed once at package load. The builders are
// deterministic pure functions of constants, per the "avoid init magic"
// guidance; building them eagerly keeps ByName allocation-free.
var registry = buildRegistry()

func buildRegistry() map[string]Shape {
	all := []Shape{
		window(),
		oneHole(),
		flower(),
		smile(),
		music(),
		airplane(),
		cactus(),
		starHole(),
		spiral(),
		twoHoles(),
		star(),
	}
	m := make(map[string]Shape, len(all))
	for _, s := range all {
		m[s.Name] = s
	}
	return m
}

// ByName returns the shape with the given name.
func ByName(name string) (Shape, error) {
	s, ok := registry[name]
	if !ok {
		return Shape{}, fmt.Errorf("shapes: unknown shape %q (known: %v)", name, Names())
	}
	return s, nil
}

// MustByName is like ByName but panics on unknown names. Intended for
// statically known scenario tables.
func MustByName(name string) Shape {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all registered shape names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered shape, sorted by name.
func All() []Shape {
	out := make([]Shape, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// --- ring construction helpers ---

// RectRing returns the axis-aligned rectangle [x0,x1] x [y0,y1] as a ring.
func RectRing(x0, y0, x1, y1 float64) geom.Ring {
	return geom.Ring{
		geom.Pt(x0, y0), geom.Pt(x1, y0), geom.Pt(x1, y1), geom.Pt(x0, y1),
	}
}

// CircleRing returns a regular n-gon approximating the circle of radius r
// around c.
func CircleRing(c geom.Point, r float64, n int) geom.Ring {
	if n < 3 {
		n = 3
	}
	out := make(geom.Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = geom.Pt(c.X+r*math.Cos(a), c.Y+r*math.Sin(a))
	}
	return out
}

// StarRing returns a star polygon with the given number of points,
// alternating between outer and inner radius around c.
func StarRing(c geom.Point, rOuter, rInner float64, points int) geom.Ring {
	if points < 3 {
		points = 3
	}
	out := make(geom.Ring, 0, 2*points)
	for i := 0; i < points; i++ {
		aOut := 2*math.Pi*float64(i)/float64(points) + math.Pi/2
		aIn := aOut + math.Pi/float64(points)
		out = append(out,
			geom.Pt(c.X+rOuter*math.Cos(aOut), c.Y+rOuter*math.Sin(aOut)),
			geom.Pt(c.X+rInner*math.Cos(aIn), c.Y+rInner*math.Sin(aIn)),
		)
	}
	return out
}

// PolarRing samples the polar curve r(theta) around c at n evenly spaced
// angles.
func PolarRing(c geom.Point, radius func(theta float64) float64, n int) geom.Ring {
	if n < 3 {
		n = 3
	}
	out := make(geom.Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		r := radius(a)
		out[i] = geom.Pt(c.X+r*math.Cos(a), c.Y+r*math.Sin(a))
	}
	return out
}

// ArcBandRing returns the closed band between radii rIn and rOut around c,
// spanning angles [a0, a1] (radians, a0 < a1), sampled with n points per arc.
func ArcBandRing(c geom.Point, rIn, rOut, a0, a1 float64, n int) geom.Ring {
	if n < 2 {
		n = 2
	}
	out := make(geom.Ring, 0, 2*n)
	for i := 0; i < n; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(n-1)
		out = append(out, geom.Pt(c.X+rOut*math.Cos(a), c.Y+rOut*math.Sin(a)))
	}
	for i := n - 1; i >= 0; i-- {
		a := a0 + (a1-a0)*float64(i)/float64(n-1)
		out = append(out, geom.Pt(c.X+rIn*math.Cos(a), c.Y+rIn*math.Sin(a)))
	}
	return out
}

// --- the eleven fields ---

// window is the Window-shaped network of Fig. 1: a square with a 2x2 grid of
// square panes (four holes). Its skeleton is a cross plus a surrounding
// frame with four genuine loops.
func window() Shape {
	outer := RectRing(0, 0, 100, 100)
	holes := []geom.Ring{
		RectRing(14, 14, 44, 44),
		RectRing(56, 14, 86, 44),
		RectRing(14, 56, 44, 86),
		RectRing(56, 56, 86, 86),
	}
	return Shape{
		Name:        "window",
		Description: "Fig. 1: square frame with 2x2 panes (4 holes)",
		Poly:        geom.MustPolygon(outer, holes...),
	}
}

// oneHole is Fig. 4(a): a square region with one concave (L-shaped) hole.
func oneHole() Shape {
	outer := RectRing(0, 0, 100, 100)
	hole := geom.Ring{
		geom.Pt(30, 30), geom.Pt(72, 30), geom.Pt(72, 48),
		geom.Pt(48, 48), geom.Pt(48, 72), geom.Pt(30, 72),
	}
	return Shape{
		Name:        "onehole",
		Description: "Fig. 4(a): square with one concave hole",
		Poly:        geom.MustPolygon(outer, hole),
	}
}

// flower is Fig. 4(b): a five-petal flower, no holes.
func flower() Shape {
	c := geom.Pt(50, 50)
	ring := PolarRing(c, func(a float64) float64 {
		return 30 + 16*math.Cos(5*a)
	}, 240)
	return Shape{
		Name:        "flower",
		Description: "Fig. 4(b): five-petal flower",
		Poly:        geom.MustPolygon(ring),
	}
}

// smile is Fig. 4(c): a face disk with two eye holes and a mouth-arc hole.
func smile() Shape {
	c := geom.Pt(50, 50)
	outer := CircleRing(c, 46, 180)
	eyeL := CircleRing(geom.Pt(34, 66), 7, 36)
	eyeR := CircleRing(geom.Pt(66, 66), 7, 36)
	// Mouth: an arc band in the lower half of the face, opening upward.
	mouth := ArcBandRing(c, 21, 30, math.Pi*1.15, math.Pi*1.85, 40)
	return Shape{
		Name:        "smile",
		Description: "Fig. 4(c): face with two eyes and a smile (3 holes)",
		Poly:        geom.MustPolygon(outer, eyeL, eyeR, mouth),
	}
}

// music is Fig. 4(d): an eighth-note silhouette (head, stem, flag).
func music() Shape {
	ring := geom.Ring{
		// right edge of head up to stem bottom
		geom.Pt(50, 20),
		// stem right edge up to the flag attachment
		geom.Pt(50, 66),
		// flag lower curve, out to the tip
		geom.Pt(58, 62), geom.Pt(65, 54), geom.Pt(67, 46), geom.Pt(65, 36),
		// flag outer curve back up-left to stem top
		geom.Pt(71, 46), geom.Pt(72, 58), geom.Pt(66, 72),
		geom.Pt(56, 82), geom.Pt(50, 86),
		// stem top and left edge down to the head
		geom.Pt(42, 86), geom.Pt(42, 30),
		// around the head counter-clockwise
		geom.Pt(34, 32), geom.Pt(24, 30), geom.Pt(16, 23), geom.Pt(14, 15),
		geom.Pt(20, 8), geom.Pt(31, 5), geom.Pt(41, 7), geom.Pt(48, 12),
	}
	return Shape{
		Name:        "music",
		Description: "Fig. 4(d): eighth-note silhouette",
		Poly:        geom.MustPolygon(ring),
	}
}

// airplane is Fig. 4(e): a top-view airplane silhouette, symmetric about
// y=50: fuselage, swept main wings, tailplanes.
func airplane() Shape {
	ring := geom.Ring{
		geom.Pt(94, 50), // nose
		geom.Pt(87, 55),
		geom.Pt(60, 57), // wing root, leading edge (top)
		geom.Pt(40, 87), // wing tip, leading edge
		geom.Pt(31, 85), // wing tip, trailing edge
		geom.Pt(44, 56), // wing root, trailing edge
		geom.Pt(19, 54), // tailplane root, leading edge
		geom.Pt(8, 69),  // tailplane tip
		geom.Pt(3, 66),
		geom.Pt(11, 52), // tailplane trailing edge at fuselage
		geom.Pt(3, 51),  // tail end
		geom.Pt(3, 49),
		geom.Pt(11, 48), // mirror of the top half
		geom.Pt(3, 34),
		geom.Pt(8, 31),
		geom.Pt(19, 46),
		geom.Pt(44, 44),
		geom.Pt(31, 15),
		geom.Pt(40, 13),
		geom.Pt(60, 43),
		geom.Pt(87, 45),
	}
	return Shape{
		Name:        "airplane",
		Description: "Fig. 4(e): top-view airplane silhouette",
		Poly:        geom.MustPolygon(ring),
	}
}

// cactus is Fig. 4(f): a saguaro cactus — vertical trunk with a left and a
// right arm.
func cactus() Shape {
	ring := geom.Ring{
		geom.Pt(42, 6), // trunk bottom-left, tracing clockwise
		geom.Pt(42, 46),
		geom.Pt(26, 46), // left arm, lower edge
		geom.Pt(20, 51),
		geom.Pt(20, 74), // left arm tip
		geom.Pt(32, 74),
		geom.Pt(32, 58), // left arm, inner edge
		geom.Pt(42, 58),
		geom.Pt(42, 88), // trunk upper-left
		geom.Pt(46, 94), // rounded top
		geom.Pt(54, 94),
		geom.Pt(58, 88),
		geom.Pt(58, 44), // trunk right edge down to right arm
		geom.Pt(68, 44), // right arm, inner edge
		geom.Pt(68, 62),
		geom.Pt(80, 62), // right arm tip
		geom.Pt(80, 35),
		geom.Pt(74, 30), // right arm, lower edge
		geom.Pt(58, 30),
		geom.Pt(58, 6),
	}
	return Shape{
		Name:        "cactus",
		Description: "Fig. 4(f): saguaro cactus with two arms",
		Poly:        geom.MustPolygon(ring),
	}
}

// starHole is Fig. 4(g): a square field with a star-shaped hole.
func starHole() Shape {
	outer := RectRing(0, 0, 100, 100)
	hole := StarRing(geom.Pt(50, 50), 30, 13, 5)
	return Shape{
		Name:        "starhole",
		Description: "Fig. 4(g): square with a star-shaped hole",
		Poly:        geom.MustPolygon(outer, hole),
	}
}

// spiral is Fig. 4(h): a spiral corridor (an Archimedean band of 2.5 turns).
func spiral() Shape {
	const (
		width = 10.0 // corridor width
		gap   = 6.0  // spacing between successive wraps
		turns = 2.5
		r0    = 6.0
	)
	c := geom.Pt(50, 50)
	pitch := (width + gap) / (2 * math.Pi)
	thetaMax := turns * 2 * math.Pi
	steps := int(thetaMax / 0.08)
	ring := make(geom.Ring, 0, 2*steps+2)
	// Inner edge outward.
	for i := 0; i <= steps; i++ {
		t := thetaMax * float64(i) / float64(steps)
		r := r0 + pitch*t
		ring = append(ring, geom.Pt(c.X+r*math.Cos(t), c.Y+r*math.Sin(t)))
	}
	// Outer edge back inward.
	for i := steps; i >= 0; i-- {
		t := thetaMax * float64(i) / float64(steps)
		r := r0 + pitch*t + width
		ring = append(ring, geom.Pt(c.X+r*math.Cos(t), c.Y+r*math.Sin(t)))
	}
	return Shape{
		Name:        "spiral",
		Description: "Fig. 4(h): spiral corridor, 2.5 turns",
		Poly:        geom.MustPolygon(ring),
	}
}

// twoHoles is Fig. 4(i): a square region with two round holes.
func twoHoles() Shape {
	outer := RectRing(0, 0, 100, 100)
	h1 := CircleRing(geom.Pt(30, 52), 14, 48)
	h2 := CircleRing(geom.Pt(71, 48), 14, 48)
	return Shape{
		Name:        "twoholes",
		Description: "Fig. 4(i): square with two holes",
		Poly:        geom.MustPolygon(outer, h1, h2),
	}
}

// star is Fig. 4(j): a five-pointed star region, no holes.
func star() Shape {
	ring := StarRing(geom.Pt(50, 50), 48, 20, 5)
	return Shape{
		Name:        "star",
		Description: "Fig. 4(j): five-pointed star",
		Poly:        geom.MustPolygon(ring),
	}
}
