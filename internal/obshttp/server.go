// Package obshttp serves the live observability plane over stdlib net/http:
// Prometheus metrics, the flight recorder's recent runs, an aggregated span
// profile (JSON or folded stacks for flamegraphs), a live trace stream
// (JSONL or SSE) tapped off a fan-out sink, a health probe and the standard
// net/http/pprof handlers — one process, one address, everything ROADMAP's
// skeleton-as-a-service needs mounted on day one.
//
//	GET /              endpoint index (text)
//	GET /healthz       liveness probe
//	GET /metrics       Prometheus text exposition
//	GET /runs          flight-recorder run summaries (JSON, newest first)
//	GET /runs/{id}     one full run record: params, result, profile, metrics
//	GET /profile       span profile merged over recorded runs
//	                   (?format=json | folded; folded feeds flamegraph tools)
//	GET /trace         live trace stream (?format=jsonl | sse), until the
//	                   client disconnects or ?limit=N records arrived
//	/debug/pprof/      runtime profiling
//
// Every handler tolerates missing backing state: a nil registry, recorder
// or stream serves an empty (not erroneous) response, so partial wiring
// stays operable.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"bfskel/internal/obs"
)

// Options wires the plane's backing state. Any field may be nil.
type Options struct {
	// Metrics backs GET /metrics.
	Metrics *obs.Registry
	// Recorder backs GET /runs and GET /profile.
	Recorder *obs.Recorder
	// Stream backs GET /trace.
	Stream *obs.StreamSink
}

// Handler builds the observability mux over the given state.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", handleIndex)
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /metrics", o.handleMetrics)
	mux.HandleFunc("GET /runs", o.handleRuns)
	mux.HandleFunc("GET /runs/{id}", o.handleRun)
	mux.HandleFunc("GET /profile", o.handleProfile)
	mux.HandleFunc("GET /trace", o.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `bfskel live observability plane
  /healthz           liveness probe
  /metrics           Prometheus text exposition
  /runs              recent runs (flight recorder, newest first)
  /runs/{id}         one run: params, result, span profile, metrics snapshot
  /profile           span profile over recorded runs (?format=json|folded)
  /trace             live trace stream (?format=jsonl|sse, ?limit=N)
  /debug/pprof/      runtime profiling
`)
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (o Options) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	o.Metrics.WritePrometheus(w)
}

// runsPayload is the GET /runs document.
type runsPayload struct {
	// Runs holds summaries (no profile/metrics/result payloads), newest
	// first; fetch /runs/{id} for the full record.
	Runs []obs.RunRecord `json:"runs"`
	// Retained and Evicted describe the ring: how many full records are
	// held and how many older ones the capacity bound dropped.
	Retained int    `json:"retained"`
	Evicted  uint64 `json:"evicted"`
}

func (o Options) handleRuns(w http.ResponseWriter, _ *http.Request) {
	full := o.Recorder.Runs()
	payload := runsPayload{
		Runs:     make([]obs.RunRecord, len(full)),
		Retained: len(full),
		Evicted:  o.Recorder.Evicted(),
	}
	for i, r := range full {
		payload.Runs[i] = r.Summary()
	}
	writeJSON(w, payload)
}

func (o Options) handleRun(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return
	}
	rec, ok := o.Recorder.Get(id)
	if !ok {
		http.Error(w, "run not found (evicted or never recorded)", http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

func (o Options) handleProfile(w http.ResponseWriter, r *http.Request) {
	p := o.Recorder.Profile()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, p)
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		p.WriteFolded(w)
	default:
		http.Error(w, fmt.Sprintf("unknown profile format %q (want json or folded)", format), http.StatusBadRequest)
	}
}

// handleTrace streams live records until the client goes away, the stream
// is closed, or an optional ?limit=N record budget is exhausted. Formats:
// jsonl (default; the same encoding -trace files use) and sse
// (text/event-stream, one record per data: line).
func (o Options) handleTrace(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" {
		if r.Header.Get("Accept") == "text/event-stream" {
			format = "sse"
		} else {
			format = "jsonl"
		}
	}
	if format != "jsonl" && format != "sse" {
		http.Error(w, fmt.Sprintf("unknown trace format %q (want jsonl or sse)", format), http.StatusBadRequest)
		return
	}
	if o.Stream == nil {
		http.Error(w, "no live trace stream attached", http.StatusServiceUnavailable)
		return
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}

	if format == "sse" {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	sub := o.Stream.Subscribe(4096)
	defer sub.Cancel()
	ctx := r.Context()
	sent := 0
	for {
		select {
		case <-ctx.Done():
			return
		case rec, ok := <-sub.C:
			if !ok {
				return
			}
			data, err := obs.EncodeJSONL(rec)
			if err != nil {
				continue
			}
			if format == "sse" {
				fmt.Fprintf(w, "data: %s\n\n", data)
			} else {
				w.Write(append(data, '\n'))
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
			if limit > 0 && sent >= limit {
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Server is a running observability endpoint.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port) and serves the plane in a
// background goroutine until Close.
func Serve(addr string, o Options) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(o), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(l)
	return &Server{l: l, srv: srv}, nil
}

// Addr returns the bound address (with the real port after ":0").
func (s *Server) Addr() string { return s.l.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server, severing live trace streams.
func (s *Server) Close() error { return s.srv.Close() }
