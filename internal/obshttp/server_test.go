package obshttp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bfskel/internal/obs"
)

// plane builds a fully wired observability plane fed by one tracer.
func plane() (Options, *obs.Tracer) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(8)
	stream := obs.NewStreamSink()
	tr := obs.NewTracer(obs.MultiSink{obs.NewRecorderSink(rec, reg), stream})
	return Options{Metrics: reg, Recorder: rec, Stream: stream}, tr
}

// emitRun produces one two-stage run with a metric.
func emitRun(o Options, tr *obs.Tracer, backend string) {
	o.Metrics.Counter(obs.Label("runs_total", "backend", backend)).Inc()
	root := tr.StartSpan("extract", obs.Str("backend", backend), obs.Int("nodes", 42))
	root.StartSpan("stage.identify").End()
	root.StartSpan("stage.voronoi").End()
	root.End(obs.Int("sites", 3))
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpointsRoundTrip(t *testing.T) {
	o, tr := plane()
	emitRun(o, tr, "bfskel")
	emitRun(o, tr, "case")
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, srv, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "# TYPE runs_total counter") ||
		!strings.Contains(body, `runs_total{backend="case"} 1`) {
		t.Errorf("/metrics payload:\n%s", body)
	}
	if strings.Count(body, "# TYPE runs_total counter") != 1 {
		t.Errorf("duplicate TYPE lines in /metrics:\n%s", body)
	}

	// /runs: summaries, newest first, no heavy payloads.
	code, body = get(t, srv, "/runs")
	if code != 200 {
		t.Fatalf("/runs = %d", code)
	}
	var runs struct {
		Runs     []obs.RunRecord `json:"runs"`
		Retained int             `json:"retained"`
		Evicted  uint64          `json:"evicted"`
	}
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs JSON: %v\n%s", err, body)
	}
	if runs.Retained != 2 || len(runs.Runs) != 2 {
		t.Fatalf("/runs retained=%d len=%d, want 2/2", runs.Retained, len(runs.Runs))
	}
	if runs.Runs[0].Backend != "case" || runs.Runs[1].Backend != "bfskel" {
		t.Errorf("/runs order: %s, %s (want newest first)", runs.Runs[0].Backend, runs.Runs[1].Backend)
	}
	if runs.Runs[0].Profile != nil || runs.Runs[0].Metrics != nil {
		t.Error("/runs summaries must not carry profile/metrics payloads")
	}

	// /runs/{id}: the full record.
	code, body = get(t, srv, fmt.Sprintf("/runs/%d", runs.Runs[1].ID))
	if code != 200 {
		t.Fatalf("/runs/{id} = %d", code)
	}
	var full obs.RunRecord
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatalf("/runs/{id} JSON: %v", err)
	}
	if full.Backend != "bfskel" || full.Profile.Empty() || full.Metrics == nil {
		t.Errorf("full record incomplete: backend=%q profileEmpty=%v metricsNil=%v",
			full.Backend, full.Profile.Empty(), full.Metrics == nil)
	}
	if full.Params["nodes"] != float64(42) || full.Result["sites"] != float64(3) {
		t.Errorf("full record params/result: %v / %v", full.Params, full.Result)
	}

	if code, _ := get(t, srv, "/runs/999"); code != http.StatusNotFound {
		t.Errorf("/runs/999 = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/runs/xyz"); code != http.StatusBadRequest {
		t.Errorf("/runs/xyz = %d, want 400", code)
	}
}

func TestProfileEndpoint(t *testing.T) {
	o, tr := plane()
	emitRun(o, tr, "bfskel")
	emitRun(o, tr, "bfskel")
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	code, body := get(t, srv, "/profile")
	if code != 200 {
		t.Fatalf("/profile = %d", code)
	}
	var p obs.Profile
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/profile JSON: %v\n%s", err, body)
	}
	if len(p.Roots) != 1 || p.Roots[0].Name != "extract" || p.Roots[0].Count != 2 {
		t.Errorf("/profile roots = %+v", p.Roots)
	}
	if !strings.Contains(body, "self_ns") {
		t.Error("/profile JSON missing derived self_ns")
	}

	code, body = get(t, srv, "/profile?format=folded")
	if code != 200 {
		t.Fatalf("/profile folded = %d", code)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed folded line %q", line)
		}
		if _, err := fmt.Sscanf(line[i+1:], "%d", new(int64)); err != nil {
			t.Errorf("folded value not integer in %q", line)
		}
	}
	if !strings.Contains(body, "extract;stage.identify") {
		t.Errorf("folded output missing stack path:\n%s", body)
	}

	if code, _ := get(t, srv, "/profile?format=pdf"); code != http.StatusBadRequest {
		t.Errorf("/profile?format=pdf = %d, want 400", code)
	}
}

func TestLiveTraceStream(t *testing.T) {
	o, tr := plane()
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace?limit=5")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/trace = %d", resp.StatusCode)
	}

	// Wait until the handler is subscribed, then emit while it streams.
	deadline := time.Now().Add(5 * time.Second)
	for o.Stream.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("trace handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	emitRun(o, tr, "bfskel")

	var recs []obs.Record
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		rec, err := obs.ParseJSONL(sc.Bytes())
		if err != nil {
			t.Fatalf("parse streamed line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 5 {
		t.Fatalf("streamed %d records, want 5 (limit)", len(recs))
	}
	if recs[0].Kind != obs.KindSpanStart || recs[0].Name != "extract" {
		t.Errorf("first streamed record = %+v", recs[0])
	}
	// The stream closed the subscription once the handler returned.
	deadline = time.Now().Add(5 * time.Second)
	for o.Stream.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("trace subscription leaked after handler returned")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLiveTraceSSE(t *testing.T) {
	o, tr := plane()
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/trace?format=sse&limit=2")
	if err != nil {
		t.Fatalf("GET /trace sse: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("sse content-type = %q", ct)
	}
	deadline := time.Now().Add(5 * time.Second)
	for o.Stream.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("trace handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	tr.StartSpan("x").End()

	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read sse: %v", err)
	}
	events := strings.Count(string(body), "data: ")
	if events != 2 {
		t.Errorf("sse delivered %d events, want 2:\n%s", events, body)
	}
}

func TestNilStateIsServable(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{}))
	defer srv.Close()

	if code, body := get(t, srv, "/metrics"); code != 200 || body != "" {
		t.Errorf("nil /metrics = %d %q", code, body)
	}
	code, body := get(t, srv, "/runs")
	if code != 200 {
		t.Fatalf("nil /runs = %d", code)
	}
	var runs runsPayload
	if err := json.Unmarshal([]byte(body), &runs); err != nil || runs.Retained != 0 {
		t.Errorf("nil /runs payload: %v %s", err, body)
	}
	if code, _ := get(t, srv, "/runs/1"); code != http.StatusNotFound {
		t.Errorf("nil /runs/1 = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/profile"); code != 200 {
		t.Errorf("nil /profile = %d", code)
	}
	if code, _ := get(t, srv, "/trace"); code != http.StatusServiceUnavailable {
		t.Errorf("nil /trace = %d, want 503", code)
	}
	if code, _ := get(t, srv, "/healthz"); code != 200 {
		t.Errorf("nil /healthz = %d", code)
	}
}

func TestServeRealListener(t *testing.T) {
	o, tr := plane()
	emitRun(o, tr, "bfskel")
	s, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Close()
	if !strings.Contains(s.Addr(), "127.0.0.1:") {
		t.Errorf("addr = %q", s.Addr())
	}
	resp, err := http.Get(s.URL() + "/runs")
	if err != nil {
		t.Fatalf("GET runs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/runs over real listener = %d", resp.StatusCode)
	}
	// pprof is mounted.
	resp2, err := http.Get(s.URL() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", resp2.StatusCode)
	}
}
