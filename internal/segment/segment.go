// Package segment implements the location-free shape segmentation
// application the paper motivates (Sec. I, refs. [12][18]): dividing an
// irregular network into nicely shaped pieces. Two methods are provided:
//
//   - MergeCells: the skeleton-based method sketched in the paper's
//     introduction — nearby skeleton nodes are merged into sinks, and each
//     Voronoi cell joins its site's sink, so every segment is a union of
//     cells along one structural part of the field.
//
//   - FlowToSinks: the classic distance-transform method (Zhu, Sarkar,
//     Gao) the paper describes: every node computes its hop distance to the
//     boundaries, "flows" to a parent with larger distance, and nodes
//     flowing to the same local maximum (sink) form a segment.
//
// Both consume only connectivity-derived inputs (the extraction result and
// the boundary by-product), so segmentation stays boundary- and
// location-free end to end.
package segment

import (
	"sort"

	"bfskel/internal/core"
	"bfskel/internal/graph"
)

// Result is a segmentation: a label per node plus the sink of each segment.
type Result struct {
	// SegmentOf labels every node with its segment's sink node ID (-1 when
	// unassigned).
	SegmentOf []int32
	// Sinks lists the distinct segment representatives, sorted.
	Sinks []int32
}

// NumSegments returns the number of segments.
func (r *Result) NumSegments() int { return len(r.Sinks) }

// Sizes returns the node count per sink.
func (r *Result) Sizes() map[int32]int {
	sizes := make(map[int32]int, len(r.Sinks))
	for _, s := range r.SegmentOf {
		if s >= 0 {
			sizes[s]++
		}
	}
	return sizes
}

// MergeCells merges Voronoi cells whose sites lie within mergeRadius hops
// of each other along the skeleton, and labels every node with its site's
// merged sink. Sites in the same structural part (one corridor, one branch)
// are chained along the skeleton and collapse into one segment; sites in
// different parts are separated by junctions farther apart than the radius.
func MergeCells(res *core.Result, mergeRadius int) *Result {
	parent := make(map[int32]int32, len(res.Sites))
	for _, s := range res.Sites {
		parent[s] = s
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	isSite := make(map[int32]bool, len(res.Sites))
	for _, s := range res.Sites {
		isSite[s] = true
	}
	// BFS along the skeleton from every site, unioning sites met within
	// the radius.
	for _, s := range res.Sites {
		dist := map[int32]int{s: 0}
		queue := []int32{s}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			if dist[u] >= mergeRadius {
				continue
			}
			for _, v := range res.Skeleton.Neighbors(u) {
				if _, seen := dist[v]; seen {
					continue
				}
				dist[v] = dist[u] + 1
				queue = append(queue, v)
				if isSite[v] {
					ra, rb := find(s), find(v)
					if ra != rb {
						parent[rb] = ra
					}
				}
			}
		}
	}

	out := &Result{SegmentOf: make([]int32, len(res.CellOf))}
	seen := make(map[int32]bool)
	for v, c := range res.CellOf {
		if c < 0 {
			out.SegmentOf[v] = -1
			continue
		}
		sink := find(c)
		out.SegmentOf[v] = sink
		if !seen[sink] {
			seen[sink] = true
			out.Sinks = append(out.Sinks, sink)
		}
	}
	sort.Slice(out.Sinks, func(i, j int) bool { return out.Sinks[i] < out.Sinks[j] })
	return out
}

// FlowToSinks runs the distance-transform segmentation: hop distances from
// the given boundary nodes; every node picks as parent its neighbor with
// the largest boundary distance (ties to the lowest ID) when that distance
// exceeds its own; local maxima become sinks. mergeRadius optionally unions
// sinks within that many hops of each other, absorbing the many shallow
// local maxima a discrete distance transform produces.
func FlowToSinks(g *graph.Graph, boundaryNodes []int32, mergeRadius int) *Result {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Unreachable
	}
	queue := make([]int32, 0, n)
	for _, b := range boundaryNodes {
		if dist[b] == graph.Unreachable {
			dist[b] = 0
			queue = append(queue, b)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == graph.Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}

	// Flow uphill: parent = the neighbor with the largest distance,
	// breaking plateau ties toward lower IDs (each plateau drains to its
	// lowest-ID member, which keeps the flow acyclic); nodes with no
	// higher-or-equal-lower-ID neighbor are their own parents (sinks).
	parent := make([]int32, n)
	for v := 0; v < n; v++ {
		parent[v] = int32(v)
		if dist[v] == graph.Unreachable {
			continue
		}
		best := int32(v)
		for _, u := range g.Neighbors(v) {
			if dist[u] == graph.Unreachable {
				continue
			}
			uphill := dist[u] > dist[best] ||
				(dist[u] == dist[best] && u < best)
			if uphill {
				best = u
			}
		}
		parent[v] = best
	}

	// Resolve every node to its sink (path compression over the DAG).
	sinkOf := make([]int32, n)
	for i := range sinkOf {
		sinkOf[i] = -1
	}
	var resolve func(v int32) int32
	resolve = func(v int32) int32 {
		if sinkOf[v] != -1 {
			return sinkOf[v]
		}
		if parent[v] == v {
			sinkOf[v] = v
			return v
		}
		sinkOf[v] = resolve(parent[v])
		return sinkOf[v]
	}
	for v := int32(0); int(v) < n; v++ {
		if dist[v] != graph.Unreachable {
			resolve(v)
		}
	}

	// Optionally merge nearby sinks; each merged group is represented by
	// its deepest sink (largest boundary distance, lowest ID on ties).
	if mergeRadius > 0 {
		remap := mergeNearbySinks(g, sinkOf, dist, mergeRadius)
		for v := range sinkOf {
			if sinkOf[v] >= 0 {
				sinkOf[v] = remap[sinkOf[v]]
			}
		}
	}

	out := &Result{SegmentOf: sinkOf}
	seen := make(map[int32]bool)
	for _, s := range sinkOf {
		if s >= 0 && !seen[s] {
			seen[s] = true
			out.Sinks = append(out.Sinks, s)
		}
	}
	sort.Slice(out.Sinks, func(i, j int) bool { return out.Sinks[i] < out.Sinks[j] })
	return out
}

// mergeNearbySinks unions sinks within radius hops of each other and maps
// every sink to its group's deepest member.
func mergeNearbySinks(g *graph.Graph, sinkOf []int32, dist []int32, radius int) map[int32]int32 {
	var sinks []int32
	seen := make(map[int32]bool)
	for _, s := range sinkOf {
		if s >= 0 && !seen[s] {
			seen[s] = true
			sinks = append(sinks, s)
		}
	}
	sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })

	parent := make(map[int32]int32, len(sinks))
	for _, s := range sinks {
		parent[s] = s
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	isSink := make(map[int32]bool, len(sinks))
	for _, s := range sinks {
		isSink[s] = true
	}
	for _, s := range sinks {
		dist := map[int32]int{s: 0}
		queue := []int32{s}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			if dist[u] >= radius {
				continue
			}
			for _, v := range g.Neighbors(int(u)) {
				if _, ok := dist[v]; ok {
					continue
				}
				dist[v] = dist[u] + 1
				queue = append(queue, v)
				if isSink[v] {
					ra, rb := find(s), find(v)
					if ra != rb {
						parent[rb] = ra
					}
				}
			}
		}
	}
	// Representative = the deepest sink of each group.
	deepest := make(map[int32]int32, len(sinks))
	for _, s := range sinks {
		r := find(s)
		cur, ok := deepest[r]
		if !ok || dist[s] > dist[cur] || (dist[s] == dist[cur] && s < cur) {
			deepest[r] = s
		}
	}
	remap := make(map[int32]int32, len(sinks))
	for _, s := range sinks {
		remap[s] = deepest[find(s)]
	}
	return remap
}
