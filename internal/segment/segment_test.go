package segment_test

import (
	"testing"

	"bfskel/internal/boundary"
	"bfskel/internal/core"
	"bfskel/internal/nettest"
	"bfskel/internal/segment"
)

func extract(t *testing.T, shape string, n int, deg float64) (*nettest.Network, *core.Result) {
	t.Helper()
	net := nettest.Grid(shape, n, deg, 1)
	res, err := core.Extract(net.Graph, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return net, res
}

// TestMergeCellsCactus: the cactus decomposes into a handful of structural
// segments (trunk pieces and arms), each contiguous and non-trivial.
func TestMergeCellsCactus(t *testing.T) {
	net, res := extract(t, "cactus", 2172, 6.7)
	seg := segment.MergeCells(res, 9)
	if seg.NumSegments() < 3 || seg.NumSegments() > 10 {
		t.Errorf("segments = %d, want a handful for trunk+arms", seg.NumSegments())
	}
	sizes := seg.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
		if s < 20 {
			t.Errorf("trivially small segment of %d nodes", s)
		}
	}
	if total != net.Graph.N() {
		t.Errorf("assigned %d of %d nodes", total, net.Graph.N())
	}
	// Segments are connected node sets.
	for _, sink := range seg.Sinks {
		var members []int32
		for v, s := range seg.SegmentOf {
			if s == sink {
				members = append(members, int32(v))
			}
		}
		sub, _ := net.Graph.Subgraph(members)
		if !sub.IsConnected() {
			t.Errorf("segment %d is disconnected (%d members)", sink, len(members))
		}
	}
}

// TestMergeCellsRadiusMonotone: a larger merge radius cannot produce more
// segments.
func TestMergeCellsRadiusMonotone(t *testing.T) {
	_, res := extract(t, "window", 2000, 6)
	prev := 1 << 30
	for _, radius := range []int{3, 6, 9, 15} {
		n := segment.MergeCells(res, radius).NumSegments()
		if n > prev {
			t.Errorf("radius %d: %d segments > previous %d", radius, n, prev)
		}
		prev = n
	}
}

// TestFlowToSinks: the flow segmentation assigns every interior node and
// produces connected segments whose sinks lie medially.
func TestFlowToSinks(t *testing.T) {
	net := nettest.Grid("cactus", 2172, 6.7, 1)
	b := boundary.Detect(net.Graph, boundary.Options{})
	seg := segment.FlowToSinks(net.Graph, b.Nodes, 6)
	if seg.NumSegments() < 2 {
		t.Fatalf("segments = %d", seg.NumSegments())
	}
	assigned := 0
	for _, s := range seg.SegmentOf {
		if s >= 0 {
			assigned++
		}
	}
	if assigned < net.Graph.N()*95/100 {
		t.Errorf("assigned %d of %d", assigned, net.Graph.N())
	}
	// Sinks are far from the boundary (they are distance-transform maxima).
	var sinkClear, allClear float64
	for _, s := range seg.Sinks {
		sinkClear += net.Shape.Poly.BoundaryDist(net.Points[s])
	}
	sinkClear /= float64(len(seg.Sinks))
	for _, p := range net.Points {
		allClear += net.Shape.Poly.BoundaryDist(p)
	}
	allClear /= float64(net.Graph.N())
	if sinkClear < 1.5*allClear {
		t.Errorf("sink clearance %.2f not clearly medial (network %.2f)", sinkClear, allClear)
	}
}

// TestFlowMergeReducesSinks: sink merging absorbs shallow local maxima.
func TestFlowMergeReducesSinks(t *testing.T) {
	net := nettest.Grid("star", 1394, 6.59, 1)
	b := boundary.Detect(net.Graph, boundary.Options{})
	raw := segment.FlowToSinks(net.Graph, b.Nodes, 0)
	merged := segment.FlowToSinks(net.Graph, b.Nodes, 6)
	if merged.NumSegments() >= raw.NumSegments() {
		t.Errorf("merge did not reduce sinks: %d -> %d", raw.NumSegments(), merged.NumSegments())
	}
	// A star wants roughly one segment per arm plus a center.
	if merged.NumSegments() < 2 || merged.NumSegments() > 12 {
		t.Errorf("merged segments = %d", merged.NumSegments())
	}
}
