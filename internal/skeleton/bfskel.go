package skeleton

import (
	"sync"

	"bfskel/internal/core"
	"bfskel/internal/graph"
)

func init() { Register(&coreBackend{}) }

// coreBackend exposes the paper's staged extraction pipeline
// (core.Extractor) as the "bfskel" registry backend. It wraps — never
// reimplements — the engine: a pool of engines keeps the pooled scratch
// (walkers, BFS buffers, arenas) and the batched MS-BFS path intact across
// calls, and the produced Result.Core is bit-identical to a direct
// core.Extractor run with the same graph and parameters.
type coreBackend struct {
	pool sync.Pool // of *core.Extractor
}

// Name implements Backend.
func (*coreBackend) Name() string { return "bfskel" }

// Capabilities implements Backend: boundary-free, produces the
// segmentation and boundary by-products, preserves homotopy by
// construction (genuine loops are kept during refinement).
func (*coreBackend) Capabilities() Capabilities {
	return Capabilities{Segmentation: true, Homotopy: true}
}

func (b *coreBackend) get(g *graph.Graph) *core.Extractor {
	if e, ok := b.pool.Get().(*core.Extractor); ok {
		e.Bind(g)
		return e
	}
	return core.NewExtractor(g)
}

func (b *coreBackend) put(e *core.Extractor) {
	e.Tracer, e.Metrics = nil, nil
	b.pool.Put(e)
}

// Extract implements Backend by delegating to the staged engine. The
// engine's own instrumentation already emits the canonical
// extract→stage.* span shape, so no Run wrapper is layered on top.
func (b *coreBackend) Extract(g *graph.Graph, p Params) (*Result, *Stats, error) {
	e := b.get(g)
	defer b.put(e)
	e.Tracer, e.Metrics = p.Tracer, p.Metrics
	res, err := e.Extract(p.EffectiveCore())
	if err != nil {
		return nil, nil, err
	}
	return &Result{
		Backend:  "bfskel",
		Nodes:    res.Skeleton.Nodes(),
		Skeleton: res.Skeleton,
		CellOf:   res.CellOf,
		Boundary: res.Boundary,
		Stats:    res.Stats,
		Core:     res,
		Native:   res,
	}, res.Stats, nil
}
