package skeleton

import (
	"sort"
	"strings"
	"testing"

	"bfskel/internal/graph"
)

// fakeBackend is a registerable stub for registry tests.
type fakeBackend struct{ name string }

func (f fakeBackend) Name() string               { return f.name }
func (f fakeBackend) Capabilities() Capabilities { return Capabilities{} }
func (f fakeBackend) Extract(*graph.Graph, Params) (*Result, *Stats, error) {
	return &Result{Backend: f.name}, &Stats{}, nil
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakeBackend{name: "zz-dup-test"})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering the same name did not panic")
		}
	}()
	Register(fakeBackend{name: "zz-dup-test"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering an empty name did not panic")
		}
	}()
	Register(fakeBackend{name: ""})
}

func TestGetUnknown(t *testing.T) {
	_, err := Get("no-such-backend")
	if err == nil {
		t.Fatal("Get on an unknown name returned no error")
	}
	if !strings.Contains(err.Error(), "no-such-backend") {
		t.Errorf("error does not name the missing backend: %v", err)
	}
	if !strings.Contains(err.Error(), "bfskel") {
		t.Errorf("error does not list the registered set: %v", err)
	}
}

func TestGetRegistered(t *testing.T) {
	Register(fakeBackend{name: "zz-get-test"})
	b, err := Get("zz-get-test")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "zz-get-test" {
		t.Errorf("Get returned backend %q", b.Name())
	}
}

func TestListSortedAndComplete(t *testing.T) {
	Register(fakeBackend{name: "aa-list-test"})
	Register(fakeBackend{name: "zz-list-test"})
	names := List()
	if !sort.StringsAreSorted(names) {
		t.Errorf("List() not sorted: %v", names)
	}
	want := map[string]bool{"aa-list-test": false, "bfskel": false, "zz-list-test": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("List() is missing %q: %v", n, names)
		}
	}
}
