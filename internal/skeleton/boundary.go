package skeleton

import (
	"sync"

	"bfskel/internal/boundary"
	"bfskel/internal/graph"
)

// BoundaryProvider resolves the boundary substrate that boundary-dependent
// backends (MAP, CASE) consume. The seam exists so the substrate is
// pluggable: the default connectivity-based detector, a precomputed or
// hand-crafted boundary (noise experiments), or an alternative recognition
// algorithm all plug in here without the backends knowing the difference.
type BoundaryProvider interface {
	// Boundary returns the boundary of g. Implementations must be safe for
	// concurrent use and deterministic per graph.
	Boundary(g *graph.Graph) (*boundary.Result, error)
}

// Detector is the default provider: the neighborhood-size boundary detector
// (Fekete et al.), memoizing the most recent graph so several backends
// resolving the same substrate over one graph pay for detection once.
type Detector struct {
	// Opts configures the detector; the zero value uses its defaults.
	Opts boundary.Options

	mu    sync.Mutex
	lastG *graph.Graph
	last  *boundary.Result
}

// Boundary detects (or returns the memoized) boundary of g.
func (d *Detector) Boundary(g *graph.Graph) (*boundary.Result, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lastG == g && d.last != nil {
		return d.last, nil
	}
	d.lastG, d.last = g, boundary.Detect(g, d.Opts)
	return d.last, nil
}

// Static returns a provider that always serves the given precomputed
// boundary, regardless of the graph — the seam the deprecated
// RunMAP/RunCASE facade wrappers and the noise-injection experiments use.
func Static(b *boundary.Result) BoundaryProvider { return staticProvider{b: b} }

type staticProvider struct{ b *boundary.Result }

func (p staticProvider) Boundary(*graph.Graph) (*boundary.Result, error) { return p.b, nil }
