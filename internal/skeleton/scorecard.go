package skeleton

import (
	"fmt"
	"strings"
)

// Score is one (scenario, backend) cell of the cross-backend scorecard:
// cost (wall time, allocations) plus the shared quality metrics. The
// geometry-aware fields are filled by the harness (internal/metrics via the
// facade) — this package only defines the machine-readable shape.
type Score struct {
	Backend  string `json:"backend"`
	Scenario string `json:"scenario"`

	// Network facts.
	N      int     `json:"n"`
	AvgDeg float64 `json:"avgDeg"`

	// Cost: one extraction's wall time and heap allocation.
	MsPerOp     float64 `json:"msPerOp"`
	AllocsPerOp uint64  `json:"allocsPerOp"`
	BytesPerOp  uint64  `json:"bytesPerOp"`
	// StageMs breaks MsPerOp down by pipeline stage.
	StageMs map[string]float64 `json:"stageMs,omitempty"`

	// Structure.
	Nodes      int  `json:"nodes"`
	Edges      int  `json:"edges"`
	Components int  `json:"components"`
	CycleRank  int  `json:"cycleRank"`
	Holes      int  `json:"holes"`
	HomotopyOK bool `json:"homotopyOK"`

	// Quality: medial placement (clearance ratio >1 means the skeleton
	// sits inward of the average node), coverage/distance against the
	// geometric medial axis, and distance against the bfskel reference
	// skeleton of the same network (-1 when no reference comparison was
	// possible).
	ClearanceRatio    float64 `json:"clearanceRatio"`
	MedialCoverage    float64 `json:"medialCoverage"`
	MeanDistToMedial  float64 `json:"meanDistToMedial"`
	HausdorffToMedial float64 `json:"hausdorffToMedial"`
	MeanDistToRef     float64 `json:"meanDistToRef"`
	HausdorffToRef    float64 `json:"hausdorffToRef"`

	// Err records a failed run (the other fields are zero then).
	Err string `json:"err,omitempty"`
}

// String renders one scorecard row for the text harness.
func (s Score) String() string {
	if s.Err != "" {
		return fmt.Sprintf("%-9s %-16s ERROR %s", s.Backend, s.Scenario, s.Err)
	}
	return fmt.Sprintf("%-9s %-16s n=%-5d deg=%-5.2f %8.1fms %7dKB nodes=%-4d comps=%-2d cycles=%d/%d homotopy=%-5v clr=%.2f cov=%.2f dref=%.2f",
		s.Backend, s.Scenario, s.N, s.AvgDeg, s.MsPerOp, s.BytesPerOp/1024,
		s.Nodes, s.Components, s.CycleRank, s.Holes, s.HomotopyOK,
		s.ClearanceRatio, s.MedialCoverage, s.MeanDistToRef)
}

// LadderRung is one row of the scale ladder: a single network size probed
// once, recording build and extraction wall time, the per-stage breakdown,
// and the process peak RSS after the run. The ladder complements the
// scorecard's quality matrix with a pure capacity axis (10^4 → 10^6 nodes).
type LadderRung struct {
	// Shape and N describe the requested field; Nodes and AvgDeg the
	// realised largest component actually extracted.
	Shape  string  `json:"shape"`
	N      int     `json:"n"`
	Nodes  int     `json:"nodes"`
	AvgDeg float64 `json:"avgDeg"`

	// BuildMs is the network-generation wall time (deployment + radio graph
	// + largest component), ExtractMs one full extraction.
	BuildMs   float64 `json:"buildMs"`
	ExtractMs float64 `json:"extractMs"`
	// StageMs breaks ExtractMs down by pipeline stage.
	StageMs map[string]float64 `json:"stageMs,omitempty"`
	// PeakRSSMB is the process peak resident set (VmHWM) after this rung —
	// monotone over a run, so the last rung bounds the whole ladder.
	PeakRSSMB float64 `json:"peakRssMb"`

	// Outcome facts: resolved flood kernel, elected sites, skeleton size.
	Kernel    string `json:"kernel"`
	Sites     int    `json:"sites"`
	SkelNodes int    `json:"skeletonNodes"`

	// Err records a failed rung (the other fields are zero then).
	Err string `json:"err,omitempty"`
}

// String renders one ladder row for the text harness.
func (r LadderRung) String() string {
	if r.Err != "" {
		return fmt.Sprintf("%-9s n=%-8d ERROR %s", r.Shape, r.N, r.Err)
	}
	return fmt.Sprintf("%-9s n=%-8d deg=%-5.2f build=%9.1fms extract=%9.1fms rss=%7.1fMB kernel=%-7s sites=%-5d skel=%d",
		r.Shape, r.Nodes, r.AvgDeg, r.BuildMs, r.ExtractMs, r.PeakRSSMB, r.Kernel, r.Sites, r.SkelNodes)
}

// Scorecard is the machine-readable cross-backend comparison: every
// requested backend run over every scenario through one quality harness.
type Scorecard struct {
	// Date is stamped by the writing command (not by library code, which
	// stays wall-clock free apart from timings).
	Date string `json:"date,omitempty"`
	// Seed is the deployment/link seed all scenarios were built with.
	Seed int64 `json:"seed"`
	// Backends and Scenarios list the matrix axes in run order.
	Backends  []string `json:"backends"`
	Scenarios []string `json:"scenarios"`
	// Scores holds one entry per (scenario, backend), scenario-major.
	Scores []Score `json:"scores"`
	// Ladder optionally holds scale-ladder rows measured alongside the
	// quality matrix (skelbench -ladder).
	Ladder []LadderRung `json:"ladder,omitempty"`
}

// String renders the scorecard as an aligned text table.
func (c *Scorecard) String() string {
	var b strings.Builder
	for i, s := range c.Scores {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s.String())
	}
	return b.String()
}
