package skeleton

import (
	"fmt"
	"strings"
)

// Score is one (scenario, backend) cell of the cross-backend scorecard:
// cost (wall time, allocations) plus the shared quality metrics. The
// geometry-aware fields are filled by the harness (internal/metrics via the
// facade) — this package only defines the machine-readable shape.
type Score struct {
	Backend  string `json:"backend"`
	Scenario string `json:"scenario"`

	// Network facts.
	N      int     `json:"n"`
	AvgDeg float64 `json:"avgDeg"`

	// Cost: one extraction's wall time and heap allocation.
	MsPerOp     float64 `json:"msPerOp"`
	AllocsPerOp uint64  `json:"allocsPerOp"`
	BytesPerOp  uint64  `json:"bytesPerOp"`
	// StageMs breaks MsPerOp down by pipeline stage.
	StageMs map[string]float64 `json:"stageMs,omitempty"`

	// Structure.
	Nodes      int  `json:"nodes"`
	Edges      int  `json:"edges"`
	Components int  `json:"components"`
	CycleRank  int  `json:"cycleRank"`
	Holes      int  `json:"holes"`
	HomotopyOK bool `json:"homotopyOK"`

	// Quality: medial placement (clearance ratio >1 means the skeleton
	// sits inward of the average node), coverage/distance against the
	// geometric medial axis, and distance against the bfskel reference
	// skeleton of the same network (-1 when no reference comparison was
	// possible).
	ClearanceRatio    float64 `json:"clearanceRatio"`
	MedialCoverage    float64 `json:"medialCoverage"`
	MeanDistToMedial  float64 `json:"meanDistToMedial"`
	HausdorffToMedial float64 `json:"hausdorffToMedial"`
	MeanDistToRef     float64 `json:"meanDistToRef"`
	HausdorffToRef    float64 `json:"hausdorffToRef"`

	// Err records a failed run (the other fields are zero then).
	Err string `json:"err,omitempty"`
}

// String renders one scorecard row for the text harness.
func (s Score) String() string {
	if s.Err != "" {
		return fmt.Sprintf("%-9s %-16s ERROR %s", s.Backend, s.Scenario, s.Err)
	}
	return fmt.Sprintf("%-9s %-16s n=%-5d deg=%-5.2f %8.1fms %7dKB nodes=%-4d comps=%-2d cycles=%d/%d homotopy=%-5v clr=%.2f cov=%.2f dref=%.2f",
		s.Backend, s.Scenario, s.N, s.AvgDeg, s.MsPerOp, s.BytesPerOp/1024,
		s.Nodes, s.Components, s.CycleRank, s.Holes, s.HomotopyOK,
		s.ClearanceRatio, s.MedialCoverage, s.MeanDistToRef)
}

// LadderRung is one row of the scale ladder: a single network size probed
// once, recording build and extraction wall time, the per-stage breakdown,
// and the process peak RSS after the run. The ladder complements the
// scorecard's quality matrix with a pure capacity axis (10^4 → 10^6 nodes).
type LadderRung struct {
	// Shape and N describe the requested field; Nodes and AvgDeg the
	// realised largest component actually extracted.
	Shape  string  `json:"shape"`
	N      int     `json:"n"`
	Nodes  int     `json:"nodes"`
	AvgDeg float64 `json:"avgDeg"`

	// BuildMs is the network-generation wall time (deployment + radio graph
	// + largest component), ExtractMs one full extraction.
	BuildMs   float64 `json:"buildMs"`
	ExtractMs float64 `json:"extractMs"`
	// StageMs breaks ExtractMs down by pipeline stage.
	StageMs map[string]float64 `json:"stageMs,omitempty"`
	// PeakRSSMB is the process peak resident set (VmHWM) after this rung —
	// monotone over a run, so the last rung bounds the whole ladder.
	PeakRSSMB float64 `json:"peakRssMb"`

	// Outcome facts: resolved flood kernel, elected sites, skeleton size.
	Kernel    string `json:"kernel"`
	Sites     int    `json:"sites"`
	SkelNodes int    `json:"skeletonNodes"`

	// Err records a failed rung (the other fields are zero then).
	Err string `json:"err,omitempty"`
}

// String renders one ladder row for the text harness.
func (r LadderRung) String() string {
	if r.Err != "" {
		return fmt.Sprintf("%-9s n=%-8d ERROR %s", r.Shape, r.N, r.Err)
	}
	return fmt.Sprintf("%-9s n=%-8d deg=%-5.2f build=%9.1fms extract=%9.1fms rss=%7.1fMB kernel=%-7s sites=%-5d skel=%d",
		r.Shape, r.Nodes, r.AvgDeg, r.BuildMs, r.ExtractMs, r.PeakRSSMB, r.Kernel, r.Sites, r.SkelNodes)
}

// ChurnHistBounds are the dirty-fraction histogram bucket upper bounds of
// ChurnRow.DirtyHist: bucket i counts updates whose dirty fraction was at
// most ChurnHistBounds[i] (and above the previous bound).
var ChurnHistBounds = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 1}

// ChurnRow is one churn rate's throughput measurement: a steady stream of
// failure/recovery batches of the given size driven through the
// incremental extractor, compared against from-scratch extraction on the
// same field. The churn bench complements the ladder's one-shot capacity
// axis with a sustained-update axis.
type ChurnRow struct {
	// Shape and N describe the requested field; Nodes and AvgDeg the
	// realised largest component the session ran on.
	Shape  string  `json:"shape"`
	N      int     `json:"n"`
	Nodes  int     `json:"nodes"`
	AvgDeg float64 `json:"avgDeg"`
	Kernel string  `json:"kernel,omitempty"`

	// Rate is the churn fraction per batch (BatchSize/Nodes); each of the
	// Batches updates fails BatchSize fresh nodes and recovers the
	// previous batch.
	Rate      float64 `json:"rate"`
	BatchSize int     `json:"batchSize"`
	Batches   int     `json:"batches"`

	// Throughput: sustained updates per second over the whole stream, the
	// mean and worst single update, the from-scratch baseline on the same
	// field, and their ratio (FullExtractMs / MeanUpdateMs).
	UpdatesPerSec float64 `json:"updatesPerSec"`
	MeanUpdateMs  float64 `json:"meanUpdateMs"`
	MaxUpdateMs   float64 `json:"maxUpdateMs"`
	FullExtractMs float64 `json:"fullExtractMs"`
	Speedup       float64 `json:"speedup"`

	// Repair shape: how many updates fell back to a full extraction, the
	// mean dirty fraction, and the dirty-fraction histogram over
	// ChurnHistBounds.
	Fallbacks     int     `json:"fallbacks"`
	MeanDirtyFrac float64 `json:"meanDirtyFrac"`
	DirtyHist     []int   `json:"dirtyHist,omitempty"`

	// Err records a failed row (the other fields may be partial then).
	Err string `json:"err,omitempty"`
}

// String renders one churn row for the text harness.
func (r ChurnRow) String() string {
	if r.Err != "" {
		return fmt.Sprintf("%-9s n=%-8d rate=%-7.4f ERROR %s", r.Shape, r.N, r.Rate, r.Err)
	}
	return fmt.Sprintf("%-9s n=%-8d rate=%-7.4f batch=%-5d %8.1f up/s mean=%8.2fms max=%8.2fms full=%8.1fms speedup=%6.1fx dirty=%5.3f fallbacks=%d/%d",
		r.Shape, r.Nodes, r.Rate, r.BatchSize, r.UpdatesPerSec,
		r.MeanUpdateMs, r.MaxUpdateMs, r.FullExtractMs, r.Speedup,
		r.MeanDirtyFrac, r.Fallbacks, r.Batches)
}

// Scorecard is the machine-readable cross-backend comparison: every
// requested backend run over every scenario through one quality harness.
type Scorecard struct {
	// Date is stamped by the writing command (not by library code, which
	// stays wall-clock free apart from timings).
	Date string `json:"date,omitempty"`
	// Seed is the deployment/link seed all scenarios were built with.
	Seed int64 `json:"seed"`
	// Backends and Scenarios list the matrix axes in run order.
	Backends  []string `json:"backends"`
	Scenarios []string `json:"scenarios"`
	// Scores holds one entry per (scenario, backend), scenario-major.
	Scores []Score `json:"scores"`
	// Ladder optionally holds scale-ladder rows measured alongside the
	// quality matrix (skelbench -ladder).
	Ladder []LadderRung `json:"ladder,omitempty"`
	// Churn optionally holds incremental-update throughput rows measured
	// alongside the quality matrix (skelbench -churn).
	Churn []ChurnRow `json:"churn,omitempty"`
}

// String renders the scorecard as an aligned text table.
func (c *Scorecard) String() string {
	var b strings.Builder
	for i, s := range c.Scores {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s.String())
	}
	return b.String()
}
