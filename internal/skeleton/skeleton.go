// Package skeleton is the pluggable skeleton-backend seam: one interface
// and registry behind which every skeleton-producing algorithm of the repo
// lives — the paper's boundary-free pipeline (backend "bfskel"), the
// boundary-dependent MAP and CASE baselines, and the local-separator
// backend — plus the canonical cross-backend result they all return.
//
// The seam exists so that comparative machinery (the experiment harness,
// the scorecard, the planned extraction service) can treat algorithms as
// interchangeable: every backend consumes the same *graph.Graph, resolves
// its boundary substrate (if it needs one) through the same pluggable
// provider, emits the same "extract" → "stage.<name>" span shape, and
// returns the same Result with per-stage timings.
package skeleton

import (
	"bfskel/internal/boundary"
	"bfskel/internal/core"
	"bfskel/internal/graph"
	"bfskel/internal/obs"
)

// Stats is the shared per-run instrumentation type: every backend reports
// its stage timings through the same structure the staged core engine
// attaches to its results.
type Stats = core.Stats

// Capabilities declares what a backend consumes and produces, so harness
// code can resolve substrates and interpret results without knowing the
// algorithm.
type Capabilities struct {
	// NeedsBoundary marks backends that consume a boundary substrate
	// (resolved through Params.Boundary). Boundary-free backends derive
	// everything from connectivity alone.
	NeedsBoundary bool
	// Segmentation marks backends whose Result carries a cell decomposition
	// (Result.CellOf).
	Segmentation bool
	// Homotopy marks backends designed to preserve the field's homotopy
	// type (loops around holes survive into the skeleton).
	Homotopy bool
}

// Params is the cross-backend configuration. The zero value is usable: it
// means paper-default pipeline parameters, boundary detection on demand,
// and no observability.
type Params struct {
	// Core carries the pipeline knobs of the paper's algorithm; the zero
	// value (K == 0) means core.DefaultParams(). Backends other than
	// "bfskel" read only the knobs that map onto their construction
	// (FloodKernel for flooding passes, K for neighborhood statistics).
	Core core.Params
	// Boundary resolves the boundary substrate for backends whose
	// Capabilities declare NeedsBoundary. Nil means a fresh
	// connectivity-based Detector per call; harness code that runs several
	// boundary-dependent backends over one graph should share one Detector
	// so the substrate is computed once.
	Boundary BoundaryProvider
	// Tracer, when non-nil, receives one "extract" span per run (attribute
	// "backend") with one "stage.<name>" child span per stage — the same
	// shape for every backend. Metrics, when non-nil, accumulates
	// skeleton_* counters and timing histograms labelled by backend.
	Tracer  *obs.Tracer
	Metrics *obs.Registry
}

// EffectiveCore returns the core pipeline parameters with the zero value
// defaulted to the paper's settings.
func (p Params) EffectiveCore() core.Params {
	if p.Core.K == 0 {
		return core.DefaultParams()
	}
	return p.Core
}

// ResolveBoundary resolves the boundary substrate through the configured
// provider (or a fresh detector when none is set).
func (p Params) ResolveBoundary(g *graph.Graph) (*boundary.Result, error) {
	if p.Boundary != nil {
		return p.Boundary.Boundary(g)
	}
	return (&Detector{}).Boundary(g)
}

// Result is the canonical cross-backend extraction result: the skeleton
// node/arc set plus the optional by-products a backend produces. Fields a
// backend does not produce stay nil.
type Result struct {
	// Backend names the producing backend.
	Backend string
	// Nodes are the skeleton node IDs, sorted ascending.
	Nodes []int32
	// Skeleton is the node-level skeleton structure (nodes + arcs).
	Skeleton *core.Skeleton
	// CellOf is the segmentation by-product: per-node cell/site assignment
	// (-1 unassigned). Nil for backends without Capabilities.Segmentation.
	CellOf []int32
	// Boundary is the boundary node set the backend consumed (baselines)
	// or produced as a by-product (bfskel). Nil when neither applies.
	Boundary []int32
	// Stats carries the run's per-stage timings and counters; identical to
	// the *Stats returned alongside the Result.
	Stats *Stats
	// Core is the full native pipeline result; non-nil only for the
	// "bfskel" backend, where it is bit-identical to a direct
	// core.Extractor run with the same parameters.
	Core *core.Result
	// Native holds the backend's algorithm-specific result (e.g.
	// *mapax.Result) for callers that know the backend.
	Native any
}

// Backend is one skeleton-extraction algorithm behind the registry seam.
// Implementations must be safe for concurrent Extract calls and
// deterministic: the same graph and parameters must produce the same
// Result, independent of GOMAXPROCS.
type Backend interface {
	// Name is the registry key (lower-case, stable).
	Name() string
	// Capabilities declares substrate needs and by-products.
	Capabilities() Capabilities
	// Extract runs the algorithm over g. The returned Stats equals
	// Result.Stats and carries one PhaseStats per executed stage.
	Extract(g *graph.Graph, p Params) (*Result, *Stats, error)
}
