package skeleton

import (
	"fmt"
	"sort"
	"sync"
)

// registry is the process-wide backend table. Built-in backends register
// from their package init functions ("bfskel" here; "map", "case" and
// "localsep" from their own packages when linked in), so the visible set is
// exactly the set of imported backend packages.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Backend)
)

// Register adds a backend under its Name. It panics on an empty name or a
// duplicate registration: backends are wired at init time, and a clash is
// a programming error, not a runtime condition.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("skeleton: Register with empty backend name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("skeleton: backend %q registered twice", name))
	}
	registry[name] = b
}

// Get returns the named backend, or an error naming the registered set.
func Get(name string) (Backend, error) {
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("skeleton: unknown backend %q (registered: %v)", name, List())
	}
	return b, nil
}

// List returns the registered backend names, sorted ascending, so every
// caller observes the same deterministic order regardless of registration
// sequence.
func List() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}
