package skeleton

import (
	"fmt"

	"bfskel/internal/graph"
)

// BatchJob is one extraction of a cross-backend batch.
type BatchJob struct {
	// G is the graph to extract from.
	G *graph.Graph
	// Backend names the algorithm; empty means "bfskel".
	Backend string
	// Params configures the run.
	Params Params
}

// ExtractBatch runs every job through the registry, sequentially and
// fail-fast. Consecutive "bfskel" jobs reuse the pooled staged engine
// (the backend holds an engine pool), and boundary-dependent jobs sharing
// one Params.Boundary provider resolve their substrate once per graph — so
// ordering jobs by graph maximises reuse, exactly as with core.ExtractBatch.
func ExtractBatch(jobs []BatchJob) ([]*Result, error) {
	out := make([]*Result, len(jobs))
	for i, job := range jobs {
		name := job.Backend
		if name == "" {
			name = "bfskel"
		}
		b, err := Get(name)
		if err != nil {
			return nil, fmt.Errorf("skeleton: batch job %d: %w", i, err)
		}
		res, _, err := b.Extract(job.G, job.Params)
		if err != nil {
			return nil, fmt.Errorf("skeleton: batch job %d (%s): %w", i, name, err)
		}
		out[i] = res
	}
	return out, nil
}
