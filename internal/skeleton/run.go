package skeleton

import (
	"time"

	"bfskel/internal/core"
	"bfskel/internal/graph"
	"bfskel/internal/obs"
)

// Run measures one backend extraction, giving every backend the same
// observable shape the staged core engine emits: an "extract" root span
// (attribute "backend") with one "stage.<name>" child span per stage, one
// PhaseStats entry per stage, and skeleton_* metrics labelled by backend.
// Backends that delegate to core.Extractor (the "bfskel" backend) do not
// use Run — the engine already emits exactly this shape itself.
type Run struct {
	backend string
	stats   *Stats
	tracer  *obs.Tracer
	metrics *obs.Registry
	root    *obs.Span
	start   time.Time
}

// NewRun opens the root span and the stats record for one extraction.
func NewRun(p Params, backend string, g *graph.Graph) *Run {
	r := &Run{
		backend: backend,
		stats:   &Stats{},
		tracer:  p.Tracer,
		metrics: p.Metrics,
	}
	r.root = p.Tracer.StartSpan("extract",
		obs.Str("backend", backend), obs.Int("nodes", g.N()))
	r.start = time.Now() //lint:allow determinism Stats.Total is wall-clock timing, not part of the result
	return r
}

// Stage runs one named stage under a "stage.<name>" child span, recording
// its wall time as a PhaseStats entry and a per-stage histogram sample.
func (r *Run) Stage(name string, fn func() error) error {
	span := r.root.StartSpan("stage." + name)
	t0 := time.Now() //lint:allow determinism PhaseStats.Duration is wall-clock timing, not part of the result
	err := fn()
	d := time.Since(t0)
	if err != nil {
		span.End(obs.Str("error", err.Error()))
	} else {
		span.End()
	}
	r.stats.Phases = append(r.stats.Phases, obsPhase(name, d))
	if m := r.metrics; m != nil {
		m.Histogram(obs.Label("skeleton_stage_seconds", "stage", r.backend+"."+name),
			obs.DurationBuckets).Observe(d.Seconds())
	}
	return err
}

// Hook adapts Stage to the func(name, fn) shape used by staged pipelines
// without error returns (mapax, casex, localsep).
func (r *Run) Hook() func(name string, fn func()) {
	return func(name string, fn func()) {
		r.Stage(name, func() error { fn(); return nil })
	}
}

// Finish closes the root span with the given end attributes and returns the
// completed stats.
func (r *Run) Finish(attrs ...obs.Attr) *Stats {
	r.stats.Total = time.Since(r.start)
	r.root.End(attrs...)
	if m := r.metrics; m != nil {
		m.Counter(obs.Label("skeleton_extract_runs_total", "backend", r.backend)).Inc()
		m.Histogram(obs.Label("skeleton_extract_seconds", "backend", r.backend),
			obs.DurationBuckets).Observe(r.stats.Total.Seconds())
	}
	return r.stats
}

// Fail closes the root span with an error attribute; used when a stage or
// substrate resolution failed and no result will be produced.
func (r *Run) Fail(err error) {
	r.root.End(obs.Str("error", err.Error()))
	if m := r.metrics; m != nil {
		m.Counter(obs.Label("skeleton_extract_errors_total", "backend", r.backend)).Inc()
	}
}

// PhaseStats is the shared per-stage record (one entry of Stats.Phases).
type PhaseStats = core.PhaseStats

// obsPhase builds one stage's PhaseStats entry.
func obsPhase(name string, d time.Duration) PhaseStats {
	return PhaseStats{Name: name, Duration: d}
}
