// Package nettest builds deterministic test networks for the internal
// packages' tests, mirroring the facade's jittered-grid construction
// without importing the facade (which would create an import cycle for
// packages the facade depends on).
package nettest

import (
	"math"

	"bfskel/internal/deploy"
	"bfskel/internal/geom"
	"bfskel/internal/graph"
	"bfskel/internal/radio"
	"bfskel/internal/shapes"
)

// Network bundles a built test network.
type Network struct {
	Shape  shapes.Shape
	Points []geom.Point
	Graph  *graph.Graph
	Radio  radio.Model
}

// Grid builds a jittered-grid UDG network with a calibrated radio range,
// restricted to its largest connected component.
func Grid(shapeName string, n int, deg float64, seed int64) *Network {
	shape := shapes.MustByName(shapeName)
	spacing := math.Sqrt(shape.Poly.Area() / float64(n))
	pts := deploy.PerturbedGrid(shape.Poly, spacing, 0.45*spacing, seed)
	r := math.Sqrt(deg * shape.Poly.Area() / (math.Pi * float64(len(pts))))
	for iter := 0; iter < 4; iter++ {
		g := graph.Build(pts, radio.UDG{R: r}, seed)
		actual := g.AvgDegree()
		if actual <= 0 {
			r *= 1.5
			continue
		}
		if math.Abs(actual-deg)/deg < 0.01 {
			break
		}
		r *= math.Sqrt(deg / actual)
	}
	model := radio.UDG{R: r}
	g := graph.Build(pts, model, seed)
	keep := g.LargestComponent()
	sub, orig := g.Subgraph(keep)
	kept := make([]geom.Point, len(orig))
	for i, v := range orig {
		kept[i] = pts[v]
	}
	return &Network{Shape: shape, Points: kept, Graph: sub, Radio: model}
}

// WithModel builds a jittered-grid network under an explicit radio model,
// restricted to its largest connected component.
func WithModel(shapeName string, n int, m radio.Model, seed int64) *Network {
	shape := shapes.MustByName(shapeName)
	spacing := math.Sqrt(shape.Poly.Area() / float64(n))
	pts := deploy.PerturbedGrid(shape.Poly, spacing, 0.45*spacing, seed)
	g := graph.Build(pts, m, seed)
	keep := g.LargestComponent()
	sub, orig := g.Subgraph(keep)
	kept := make([]geom.Point, len(orig))
	for i, v := range orig {
		kept[i] = pts[v]
	}
	return &Network{Shape: shape, Points: kept, Graph: sub, Radio: m}
}
