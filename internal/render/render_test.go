package render_test

import (
	"bytes"
	"image/png"
	"strings"
	"testing"

	"bfskel/internal/geom"
	"bfskel/internal/render"
)

func TestSceneSVG(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}
	s := render.NewScene(bounds, render.DefaultStyle())
	pg := geom.MustPolygon(geom.Ring{geom.Pt(1, 1), geom.Pt(9, 1), geom.Pt(9, 9), geom.Pt(1, 9)})
	s.Polygon(pg, "#000000", "none")
	pts := []geom.Point{geom.Pt(2, 2), geom.Pt(5, 5)}
	s.Nodes(pts, nil, "#ff0000", 2)
	s.Nodes(pts, []bool{true, false}, "#00ff00", 2)
	s.Edges(pts, [][2]int32{{0, 1}}, "#0000ff", 1)
	s.Polyline(pts, []int32{0, 1}, "#123456", 1)
	s.Polyline(pts, []int32{0}, "#123456", 1) // too short: no output
	s.Label(geom.Pt(3, 3), "hello", "#000", 12)

	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "<line", "<path", "hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// y-flip: the point at field (2,2) should render near the bottom.
	if !strings.HasPrefix(out, "<svg xmlns=") {
		t.Error("missing xmlns header")
	}
}

func TestRasterPNG(t *testing.T) {
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(20, 10)}
	r := render.NewRaster(bounds, 4)
	r.Dot(geom.Pt(5, 9), 3, render.Red)
	r.Line(geom.Pt(0, 0), geom.Pt(20, 10), render.Black)
	r.ThickLine(geom.Pt(0, 10), geom.Pt(20, 0), 2, render.Blue)
	r.Ring(geom.Ring{geom.Pt(2, 2), geom.Pt(18, 2), geom.Pt(18, 8)}, render.Green)

	var buf bytes.Buffer
	if err := r.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	// 24x14 field units (bounds expanded by 2) at 4 px/unit.
	if b.Dx() != 96 || b.Dy() != 56 {
		t.Errorf("bitmap %dx%d, want 96x56", b.Dx(), b.Dy())
	}
	// The dot pixel (off both diagonals) must be red.
	cx := int((5.0 - (-2.0)) * 4)
	cy := int((12.0 - 9.0) * 4)
	rr, gg, bb, _ := img.At(cx, cy).RGBA()
	if rr>>8 != 0xd6 || gg>>8 != 0x27 || bb>>8 != 0x28 {
		t.Errorf("center pixel = %x %x %x, want red", rr>>8, gg>>8, bb>>8)
	}
}
