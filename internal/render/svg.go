// Package render draws networks, fields and skeletons as SVG documents —
// the repository's regeneration of the paper's figures. It has no
// dependency on the pipeline beyond plain data (points, masks, polygons),
// so any stage can be visualised.
package render

import (
	"fmt"
	"io"
	"strings"

	"bfskel/internal/geom"
)

// Style selects colors and sizes for one SVG scene.
type Style struct {
	// Scale multiplies field coordinates into pixels.
	Scale float64
	// NodeRadius is the dot radius for ordinary nodes, in pixels.
	NodeRadius float64
	// Background is the page background color.
	Background string
}

// DefaultStyle renders a 100x100 field at 8 px/unit.
func DefaultStyle() Style {
	return Style{Scale: 8, NodeRadius: 1.6, Background: "#ffffff"}
}

// Scene accumulates layers and writes a single SVG document.
type Scene struct {
	style  Style
	bounds geom.Rect
	body   strings.Builder
}

// NewScene creates a scene covering the given field bounds.
func NewScene(bounds geom.Rect, style Style) *Scene {
	return &Scene{style: style, bounds: bounds.Expand(2)}
}

func (s *Scene) x(v float64) float64 { return (v - s.bounds.Min.X) * s.style.Scale }

// SVG uses a y-down coordinate system; fields use y-up, so flip.
func (s *Scene) y(v float64) float64 { return (s.bounds.Max.Y - v) * s.style.Scale }

// Polygon draws a field outline (outer ring plus holes) with the given
// stroke and fill colors.
func (s *Scene) Polygon(pg *geom.Polygon, stroke, fill string) {
	var d strings.Builder
	for _, ring := range pg.Rings() {
		for i, p := range ring {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&d, "%s%.1f %.1f ", cmd, s.x(p.X), s.y(p.Y))
		}
		d.WriteString("Z ")
	}
	fmt.Fprintf(&s.body,
		"<path d=%q fill=%q fill-rule=\"evenodd\" stroke=%q stroke-width=\"1\"/>\n",
		d.String(), fill, stroke)
}

// Nodes draws a dot for every point; mask (optional) selects a subset.
func (s *Scene) Nodes(pts []geom.Point, mask []bool, color string, radius float64) {
	if radius <= 0 {
		radius = s.style.NodeRadius
	}
	for i, p := range pts {
		if mask != nil && !mask[i] {
			continue
		}
		fmt.Fprintf(&s.body, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=%q/>\n",
			s.x(p.X), s.y(p.Y), radius, color)
	}
}

// Edges draws line segments between point pairs.
func (s *Scene) Edges(pts []geom.Point, pairs [][2]int32, color string, width float64) {
	for _, e := range pairs {
		a, b := pts[e[0]], pts[e[1]]
		fmt.Fprintf(&s.body,
			"<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=%q stroke-width=\"%.1f\"/>\n",
			s.x(a.X), s.y(a.Y), s.x(b.X), s.y(b.Y), color, width)
	}
}

// Polyline draws a connected path through the listed node IDs.
func (s *Scene) Polyline(pts []geom.Point, ids []int32, color string, width float64) {
	if len(ids) < 2 {
		return
	}
	var d strings.Builder
	for i, id := range ids {
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		fmt.Fprintf(&d, "%s%.1f %.1f ", cmd, s.x(pts[id].X), s.y(pts[id].Y))
	}
	fmt.Fprintf(&s.body, "<path d=%q fill=\"none\" stroke=%q stroke-width=\"%.1f\"/>\n",
		d.String(), color, width)
}

// Label places a text label at a field coordinate.
func (s *Scene) Label(p geom.Point, text, color string, size float64) {
	fmt.Fprintf(&s.body,
		"<text x=\"%.1f\" y=\"%.1f\" fill=%q font-size=\"%.0f\" font-family=\"sans-serif\">%s</text>\n",
		s.x(p.X), s.y(p.Y), color, size, text)
}

// WriteTo emits the complete SVG document.
func (s *Scene) WriteTo(w io.Writer) (int64, error) {
	width := s.bounds.Width() * s.style.Scale
	height := s.bounds.Height() * s.style.Scale
	n, err := fmt.Fprintf(w,
		"<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n"+
			"<rect width=\"100%%\" height=\"100%%\" fill=%q/>\n%s</svg>\n",
		width, height, width, height, s.style.Background, s.body.String())
	return int64(n), err
}
