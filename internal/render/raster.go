package render

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"bfskel/internal/geom"
)

// Raster draws the same primitives as Scene onto a bitmap, for environments
// without an SVG viewer and for the repository's self-checking golden
// images.
type Raster struct {
	img    *image.RGBA
	bounds geom.Rect
	scale  float64
}

// NewRaster creates a bitmap canvas covering the field bounds at the given
// pixels-per-unit scale.
func NewRaster(bounds geom.Rect, scale float64) *Raster {
	bounds = bounds.Expand(2)
	w := int(math.Ceil(bounds.Width() * scale))
	h := int(math.Ceil(bounds.Height() * scale))
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for i := range img.Pix {
		img.Pix[i] = 0xff // white background
	}
	return &Raster{img: img, bounds: bounds, scale: scale}
}

func (r *Raster) px(p geom.Point) (float64, float64) {
	return (p.X - r.bounds.Min.X) * r.scale, (r.bounds.Max.Y - p.Y) * r.scale
}

// Dot draws a filled disk at a field coordinate.
func (r *Raster) Dot(p geom.Point, radius float64, c color.RGBA) {
	cx, cy := r.px(p)
	r0 := int(math.Ceil(radius))
	for dy := -r0; dy <= r0; dy++ {
		for dx := -r0; dx <= r0; dx++ {
			if float64(dx*dx+dy*dy) <= radius*radius {
				r.img.SetRGBA(int(cx)+dx, int(cy)+dy, c)
			}
		}
	}
}

// Line draws a 1px line between field coordinates.
func (r *Raster) Line(a, b geom.Point, c color.RGBA) {
	x0, y0 := r.px(a)
	x1, y1 := r.px(b)
	steps := int(math.Max(math.Abs(x1-x0), math.Abs(y1-y0))) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		r.img.SetRGBA(int(x0+(x1-x0)*t), int(y0+(y1-y0)*t), c)
	}
}

// ThickLine draws a line with the given pixel width.
func (r *Raster) ThickLine(a, b geom.Point, width float64, c color.RGBA) {
	x0, y0 := r.px(a)
	x1, y1 := r.px(b)
	steps := int(math.Max(math.Abs(x1-x0), math.Abs(y1-y0))) + 1
	half := int(math.Ceil(width / 2))
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		px, py := int(x0+(x1-x0)*t), int(y0+(y1-y0)*t)
		for dy := -half; dy <= half; dy++ {
			for dx := -half; dx <= half; dx++ {
				r.img.SetRGBA(px+dx, py+dy, c)
			}
		}
	}
}

// Ring draws a polygon ring outline.
func (r *Raster) Ring(ring geom.Ring, c color.RGBA) {
	n := len(ring)
	for i := 0; i < n; i++ {
		r.Line(ring[i], ring[(i+1)%n], c)
	}
}

// EncodePNG writes the canvas as a PNG.
func (r *Raster) EncodePNG(w io.Writer) error {
	return png.Encode(w, r.img)
}

// Common colors used by the figure renders.
var (
	Gray   = color.RGBA{R: 0xbb, G: 0xbb, B: 0xbb, A: 0xff}
	Dim    = color.RGBA{R: 0xdd, G: 0xdd, B: 0xdd, A: 0xff}
	Black  = color.RGBA{A: 0xff}
	Red    = color.RGBA{R: 0xd6, G: 0x27, B: 0x28, A: 0xff}
	Blue   = color.RGBA{R: 0x1f, G: 0x77, B: 0xb4, A: 0xff}
	Green  = color.RGBA{R: 0x2c, G: 0xa0, B: 0x2c, A: 0xff}
	Purple = color.RGBA{R: 0x94, G: 0x67, B: 0xbd, A: 0xff}
	Orange = color.RGBA{R: 0xff, G: 0x7f, B: 0x0e, A: 0xff}
)
