package core

import (
	"testing"

	"bfskel/internal/nettest"
)

// TestDebugStarLoops prints, for the star field, each cycle the refiner
// examined and its verdict. Run with -v to inspect.
func TestDebugStarLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("debug diagnostics")
	}
	g := nettest.Grid("star", 1394, 6.59, 1).Graph
	p := DefaultParams()
	khop, _, index, sites, _, _ := identify(g, p)
	_ = khop
	cellOf, _, records := voronoi(g, sites, p.Alpha)
	edges, coarseSkel := coarse(g, index, records)
	t.Logf("sites=%d edges=%d coarse rank=%d", len(sites), len(edges), coarseSkel.CycleRank())

	w := newRefiner(g, p, index, records, cellOf)
	for _, e := range edges {
		w.edges = append(w.edges, wEdge{
			a: e.Pair.A, b: e.Pair.B, path: e.Path,
			connector: e.Connector, ends: e.EndNodes, segs: e.SegmentCount,
		})
	}
	w.dropRedundantParallels()
	w.debugf = t.Logf
	w.classifyLoops()
	skel := w.build()
	t.Logf("final rank=%d comps=%d", skel.CycleRank(), skel.Components())
}
