package core

import (
	"sort"

	"bfskel/internal/graph"
	"bfskel/internal/obs"
)

// Saturation guard thresholds: the fraction of the network a typical K-hop
// (resp. scope) ball may cover before the radius is reduced. When balls
// approach the network size — dense graphs, heavy-tailed radio models —
// neighborhood sizes stop discriminating and the index degenerates to a
// constant, so radii are shrunk until the counts are informative again.
const (
	kSaturationFraction     = 1.0 / 3
	scopeSaturationFraction = 1.0 / 6
)

// visitLogMaxNodes bounds the networks whose ball-sizing MS-BFS passes also
// record a settle log for centrality replay. The log holds one (node, bits)
// event per settle within L hops — O(n*avgBall_L) words — which is a fine
// trade below this size and a memory hazard above it.
const visitLogMaxNodes = 1 << 17

// identify runs Phase 1 (Sec. III-A) through a throwaway engine; the staged
// pipeline calls the Extractor method below so the scratch pools persist.
func identify(g *graph.Graph, p Params) (khop []int, cent []float64, index []float64, sites []int32, kEff, scopeEff int) {
	return NewExtractor(g).identify(p, nil)
}

// identify runs Phase 1 (Sec. III-A): every node computes its K-hop
// neighborhood size, its L-centrality and its index; nodes whose index is
// locally maximal within the scope radius become critical skeleton nodes.
// st, when non-nil, accumulates the phase's work counters.
//
// This is the centralized analogue of the two rounds of controlled
// flooding; package protocol implements the same computation as true node
// programs and the two are cross-checked in tests.
func (e *Extractor) identify(p Params, st *Stats) (khop []int, cent []float64, index []float64, sites []int32, kEff, scopeEff int) {
	g := e.g
	n := g.N()
	maxR := p.K
	if s := p.Scope(); s > maxR {
		maxR = s
	}
	kern := g.ResolveKernel(p.FloodKernel, maxR)
	if kern == graph.KernelBatched && p.L > maxR {
		// The batched centrality path reads |N_L| off the ball matrix
		// instead of counting during the walk, so the matrix must reach L.
		maxR = p.L
	}
	if st != nil {
		st.FloodKernel = kern.String()
	}
	e.event("kernel", obs.Str("flood", kern.String()))
	balls := e.ballSizes(kern, maxR, p.L)

	var medianK int
	kEff, medianK = effectiveRadius(balls, p.K, kSaturationFraction, &e.ints)
	scopeEff, _ = effectiveRadius(balls, p.Scope(), scopeSaturationFraction, &e.ints)
	if st != nil {
		st.BFSSweeps += n
		st.MedianKHopBall = medianK
		st.KAdjustments += p.K - kEff
		st.ScopeAdjustments += p.Scope() - scopeEff
	}
	if kEff < p.K {
		e.event("guard.adjust", obs.Str("kind", "k-saturation"), obs.Int("from", p.K), obs.Int("to", kEff))
	}
	if scopeEff < p.Scope() {
		e.event("guard.adjust", obs.Str("kind", "scope-saturation"), obs.Int("from", p.Scope()), obs.Int("to", scopeEff))
	}

	khop = make([]int, n)
	for v := range khop {
		khop[v] = balls[v][kEff-1]
	}

	// When hop balls outgrow the field's structural features (very dense or
	// heavy-tailed radio graphs), the index becomes a near-global gradient
	// with a single maximum. Shrink the scope, then K, until a minimal site
	// population elects; elections are cheap compared to the ball sweeps.
	minSites := 4
	if m := n / 512; m > minSites {
		minSites = m
	}
	cent = make([]float64, n)
	index = make([]float64, n)
	round := 0
	for {
		replayed := e.indexField(p, kern, khop, cent, index)
		sites = e.electSites(index, scopeEff)
		round++
		e.event("election", obs.Int("round", round), obs.Int("sites", len(sites)),
			obs.Int("k", kEff), obs.Int("scope", scopeEff))
		if st != nil {
			st.ElectionRounds++
			if replayed {
				// The centrality tallies were replayed from the ball-sizing
				// visit log; only the election swept the graph.
				st.BFSSweeps += n
			} else {
				st.BFSSweeps += 2 * n
			}
		}
		if len(sites) >= minSites {
			break
		}
		switch {
		case scopeEff > 1:
			scopeEff--
			e.event("guard.adjust", obs.Str("kind", "scope-min-sites"), obs.Int("to", scopeEff))
			if st != nil {
				st.ScopeAdjustments++
			}
		case kEff > 1:
			kEff--
			scopeEff = p.Scope()
			if scopeEff > kEff {
				scopeEff = kEff
			}
			e.event("guard.adjust", obs.Str("kind", "k-min-sites"), obs.Int("to", kEff))
			if st != nil {
				st.KAdjustments++
			}
			for v := range khop {
				khop[v] = balls[v][kEff-1]
			}
		default:
			return khop, cent, index, sites, kEff, scopeEff
		}
	}
	return khop, cent, index, sites, kEff, scopeEff
}

// ballSizes returns the cumulative ball-size matrix sizes[v][r-1] over the
// engine's pooled buffers; the rows stay valid until the next Extract or
// Bind call. On batched runs of bounded size the same MS-BFS passes also
// record the settle log that lets indexField replay the centrality tallies
// without a second sweep.
func (e *Extractor) ballSizes(kern graph.Kernel, maxR, logRadius int) [][]int {
	n := e.g.N()
	e.ballsFlat = growInts(e.ballsFlat, n*maxR)
	if cap(e.balls) < n {
		e.balls = make([][]int, n)
	}
	e.balls = e.balls[:n]
	for v := 0; v < n; v++ {
		e.balls[v] = e.ballsFlat[v*maxR : (v+1)*maxR : (v+1)*maxR]
	}
	if kern == graph.KernelBatched && n <= visitLogMaxNodes && logRadius <= maxR {
		e.g.BallSizesIntoKernelLogged(kern, maxR, logRadius, e.balls, &e.visitLog, e.getWalker, e.putWalker)
	} else {
		e.visitLog.Invalidate()
		e.g.BallSizesIntoKernel(kern, maxR, e.balls, e.getWalker, e.putWalker)
	}
	return e.balls
}

// indexField computes the L-centrality and index of every node (Defs. 3-4)
// into the provided per-node slices. Both kernels compute the same integer
// sum and count per node before a single float64 division, so the fields
// are bit-identical across kernels. It reports whether the tallies were
// replayed from the ball-sizing visit log instead of a fresh graph sweep
// (the settle events are weight-independent, so the replay stays valid as
// the election loop reweights khop across rounds).
func (e *Extractor) indexField(p Params, kern graph.Kernel, khop []int, cent, index []float64) bool {
	if kern == graph.KernelBatched {
		// The weighted tallies ride the same MS-BFS passes as ball sizing;
		// |N_L(v)| comes off the ball matrix (maxR covers L, see identify).
		n := e.g.N()
		e.wsums = growInts(e.wsums, n)
		wsums := e.wsums
		replayed := e.visitLog.Recorded() && e.visitLog.Radius() == p.L
		if replayed {
			e.visitLog.WeightedSumsInto(e.g, khop, wsums)
		} else {
			e.g.BallWeightedSumsInto(kern, p.L, khop, wsums, e.getWalker, e.putWalker)
		}
		for v := 0; v < n; v++ {
			cent[v] = float64(khop[v]+wsums[v]) / float64(1+e.balls[v][p.L-1])
			index[v] = (float64(khop[v]) + cent[v]) / 2
		}
		return replayed
	}
	graph.ParallelNodes(e.g, e.getWalker, e.putWalker, func(w *graph.Walker, v int) {
		// c_L(v): average K-hop size over N_L(v) plus v itself. Including v
		// makes c_L well defined for isolated nodes and only shifts all
		// values consistently, so local-maximum comparisons are unaffected.
		sum := khop[v]
		count := 1
		w.Walk(v, p.L, func(u, _ int32) {
			sum += khop[u]
			count++
		})
		cent[v] = float64(sum) / float64(count)
		index[v] = (float64(khop[v]) + cent[v]) / 2
	})
	return false
}

// electSites applies Def. 5: a node whose index is maximal within its
// scope-hop neighborhood (ties broken by node ID so exactly one node of an
// index plateau elects) identifies itself as a critical skeleton node. The
// flood stops as soon as a dominating neighbor disproves maximality.
func (e *Extractor) electSites(index []float64, scope int) []int32 {
	n := e.g.N()
	e.bools = growBools(e.bools, n)
	isSite := e.bools
	// Tombstoned nodes are isolated, which would make them trivially
	// maximal; they must never elect.
	dead := e.g.DeadMask()
	graph.ParallelNodes(e.g, e.getWalker, e.putWalker, func(w *graph.Walker, v int) {
		if dead != nil && dead[v] {
			isSite[v] = false
			return
		}
		maximal := true
		w.WalkUntil(v, scope, func(u, _ int32) bool {
			if index[u] > index[v] || (index[u] == index[v] && u < int32(v)) {
				maximal = false
				return false
			}
			return true
		})
		isSite[v] = maximal
	})
	count := 0
	for v := 0; v < n; v++ {
		if isSite[v] {
			count++
		}
	}
	sites := make([]int32, 0, count)
	for v := 0; v < n; v++ {
		if isSite[v] {
			sites = append(sites, int32(v))
		}
	}
	return sites
}

// effectiveRadius returns the largest radius r <= want whose median ball
// size stays below fraction*n (and at least 1), plus that radius' median
// ball size. Each candidate radius is tested by counting how many balls
// stay under the limit — sorted[n/2] <= limit exactly when at least n/2+1
// values do — so nothing is sorted inside the per-radius loop; one sort of
// the reusable scratch slice yields the returned median.
func effectiveRadius(balls [][]int, want int, fraction float64, scratch *[]int) (radius, median int) {
	n := len(balls)
	if n == 0 {
		return 1, 0
	}
	limit := fraction * float64(n)
	need := n/2 + 1
	radius = 1
	for r := want; r > 1; r-- {
		count := 0
		for v := range balls {
			if float64(balls[v][r-1]) <= limit {
				count++
			}
		}
		if count >= need {
			radius = r
			break
		}
	}
	sizes := growInts(*scratch, n)
	*scratch = sizes
	for v := range balls {
		sizes[v] = balls[v][radius-1]
	}
	sort.Ints(sizes)
	return radius, sizes[n/2]
}
