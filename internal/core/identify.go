package core

import (
	"runtime"
	"sort"
	"sync"

	"bfskel/internal/graph"
)

// Saturation guard thresholds: the fraction of the network a typical K-hop
// (resp. scope) ball may cover before the radius is reduced. When balls
// approach the network size — dense graphs, heavy-tailed radio models —
// neighborhood sizes stop discriminating and the index degenerates to a
// constant, so radii are shrunk until the counts are informative again.
const (
	kSaturationFraction     = 1.0 / 3
	scopeSaturationFraction = 1.0 / 6
)

// identify runs Phase 1 (Sec. III-A): every node computes its K-hop
// neighborhood size, its L-centrality and its index; nodes whose index is
// locally maximal within the scope radius become critical skeleton nodes.
//
// This is the centralized analogue of the two rounds of controlled
// flooding; package protocol implements the same computation as true node
// programs and the two are cross-checked in tests.
func identify(g *graph.Graph, p Params) (khop []int, cent []float64, index []float64, sites []int32, kEff, scopeEff int) {
	n := g.N()
	maxR := p.K
	if s := p.Scope(); s > maxR {
		maxR = s
	}
	balls := g.AllBallSizes(maxR)

	kEff = effectiveRadius(balls, p.K, kSaturationFraction)
	scopeEff = effectiveRadius(balls, p.Scope(), scopeSaturationFraction)

	khop = make([]int, n)
	for v := range khop {
		khop[v] = balls[v][kEff-1]
	}

	// When hop balls outgrow the field's structural features (very dense or
	// heavy-tailed radio graphs), the index becomes a near-global gradient
	// with a single maximum. Shrink the scope, then K, until a minimal site
	// population elects; elections are cheap compared to the ball sweeps.
	minSites := 4
	if m := n / 512; m > minSites {
		minSites = m
	}
	for {
		cent, index = indexField(g, p, khop)
		sites = electSites(g, index, scopeEff)
		if len(sites) >= minSites {
			break
		}
		switch {
		case scopeEff > 1:
			scopeEff--
		case kEff > 1:
			kEff--
			scopeEff = p.Scope()
			if scopeEff > kEff {
				scopeEff = kEff
			}
			for v := range khop {
				khop[v] = balls[v][kEff-1]
			}
		default:
			return khop, cent, index, sites, kEff, scopeEff
		}
	}
	return khop, cent, index, sites, kEff, scopeEff
}

// indexField computes the L-centrality and index of every node (Defs. 3-4).
func indexField(g *graph.Graph, p Params, khop []int) (cent, index []float64) {
	n := g.N()
	cent = make([]float64, n)
	index = make([]float64, n)
	parallelNodes(n, func(w *graph.Walker, v int) {
		// c_L(v): average K-hop size over N_L(v) plus v itself. Including v
		// makes c_L well defined for isolated nodes and only shifts all
		// values consistently, so local-maximum comparisons are unaffected.
		sum := khop[v]
		count := 1
		w.Walk(v, p.L, func(u, _ int32) {
			sum += khop[u]
			count++
		})
		cent[v] = float64(sum) / float64(count)
		index[v] = (float64(khop[v]) + cent[v]) / 2
	}, g)
	return cent, index
}

// electSites applies Def. 5: a node whose index is maximal within its
// scope-hop neighborhood (ties broken by node ID so exactly one node of an
// index plateau elects) identifies itself as a critical skeleton node.
func electSites(g *graph.Graph, index []float64, scope int) []int32 {
	n := g.N()
	isSite := make([]bool, n)
	parallelNodes(n, func(w *graph.Walker, v int) {
		maximal := true
		w.Walk(v, scope, func(u, _ int32) {
			if !maximal {
				return
			}
			if index[u] > index[v] || (index[u] == index[v] && u < int32(v)) {
				maximal = false
			}
		})
		isSite[v] = maximal
	}, g)
	var sites []int32
	for v := 0; v < n; v++ {
		if isSite[v] {
			sites = append(sites, int32(v))
		}
	}
	return sites
}

// effectiveRadius returns the largest radius r <= want whose median ball
// size stays below fraction*n, and at least 1.
func effectiveRadius(balls [][]int, want int, fraction float64) int {
	n := len(balls)
	if n == 0 {
		return 1
	}
	limit := fraction * float64(n)
	sizes := make([]int, n)
	for r := want; r > 1; r-- {
		for v := range balls {
			sizes[v] = balls[v][r-1]
		}
		sort.Ints(sizes)
		if float64(sizes[n/2]) <= limit {
			return r
		}
	}
	return 1
}

// parallelNodes runs fn over every node with one Walker per worker.
func parallelNodes(n int, fn func(w *graph.Walker, v int), g *graph.Graph) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			w := graph.NewWalker(g)
			for v := lo; v < hi; v++ {
				fn(w, v)
			}
		}(lo, hi)
	}
	wg.Wait()
}
