// Incremental re-extraction under churn. An IncrementalExtractor holds the
// full artifact state of its latest extraction (ball matrix, index fields,
// election flags, Voronoi records, skeleton) and, given a batch of node
// removals and revivals, repairs exactly the dirty region instead of
// re-running the pipeline from scratch:
//
//   - identify: base-graph BFS rings around the churn batch bound which ball
//     rows (radius maxR), centrality/index values (maxR+L) and election
//     outcomes (maxR+L+scope) can have changed; only those are recomputed,
//     64 sources per MS-BFS pass.
//   - voronoi: a fixpoint repair over the dirty node set — a dial (bucket)
//     multi-source BFS re-derives dmin with clean-boundary injections, then
//     per-site pruned floods rebuild the records, growing the dirty set
//     whenever a clean node's distance, membership or canonical parent is
//     contradicted, and restarting until nothing grows (see DESIGN.md for
//     the soundness argument).
//   - coarse: segment tuples are rebuilt (cheap), but pairs whose segment
//     lists, paths and two-hop surroundings are untouched reuse the previous
//     SiteEdge verbatim; only dirty pairs recompute connector, paths and
//     band end nodes.
//   - refine: the end-node cluster floods — the stage's dominant cost — are
//     cached per end node and invalidated by a one-hop dilation of the
//     skeleton-mask diff plus the adjacency patch list.
//   - boundary: recomputed outright over the counting-pass median.
//
// Correctness is pinned by equivalence: every Update result is bit-identical
// to a from-scratch Extract on the mutated graph (see incremental_test.go).
// When the dirty fraction exceeds Params.DirtyFallback — or a guard radius
// drifts, the previous election was multi-round, or the site population
// collapses — the update falls back to a full extraction transparently.
package core

import (
	"sort"
	"time"

	"bfskel/internal/graph"
	"bfskel/internal/obs"
)

// maxRepairAttempts bounds the voronoi fixpoint restarts; the dirty set
// grows monotonically, so hitting the bound means the region is unstable
// enough that a full extraction is the cheaper answer anyway.
const maxRepairAttempts = 64

// UpdateStats instruments one incremental update.
type UpdateStats struct {
	// Removed and Revived count the nodes whose alive status actually
	// flipped (requests targeting already-dead/alive nodes are ignored).
	Removed, Revived int
	// DirtyNodes is the final dirty-region size; DirtyFraction is it over
	// the node count.
	DirtyNodes    int
	DirtyFraction float64
	// RepairedCells counts the sites whose pruned zone was re-flooded.
	RepairedCells int
	// Attempts counts voronoi fixpoint rounds (1 = no growth restart).
	Attempts int
	// Fallback reports that this update ran a full extraction instead of
	// the incremental path, and why.
	Fallback       bool
	FallbackReason string
	// Duration is the update's wall-clock time.
	Duration time.Duration
}

// IncrementalExtractor maintains an extraction under node churn. It owns a
// staged engine (whose scratch pools it shares), the persistent per-node
// artifact state, and the flood caches that make repeated updates cheap.
// Like the Extractor it is not safe for concurrent use.
type IncrementalExtractor struct {
	e *Extractor
	p Params

	kern graph.Kernel
	maxR int // ball matrix width: max(K, Scope) (and L under the batched kernel)

	// Persistent identify state. khop/cent/index/isSite are mutable and
	// patched in place; the ball matrix itself lives in e.balls.
	khop     []int
	cent     []float64
	index    []float64
	isSite   []bool
	kEff     int
	scopeEff int
	rounds   int // election rounds of the last full extraction
	minSites int

	// Views into the latest Result (immutable once published).
	sites   []int32
	cellOf  []int32
	dmin    []int32
	records [][]SiteDist
	prev    *Result

	// wsum holds the batched-kernel centrality sums (Σ khop over N_L,
	// excluding the node itself), delta-maintained across updates so the
	// centrality ring never re-floods clean neighborhoods.
	wsum []int
	// satK/satS count, per candidate radius, the nodes whose ball size sits
	// at or under the K/scope saturation limit — the order statistics the
	// radius-drift guard needs, maintained from patched ball rows so the
	// guard never rescans the whole matrix.
	satK []int
	satS []int
	// tup is the sorted (pair, segment node) tuple array of the coarse
	// splice, patched in place between updates; tupScratch is the merge
	// target the arrays swap through. tupValid drops on every full run.
	tup        []pairSeg
	tupScratch []pairSeg
	tupValid   bool

	fcache endFloodCache
	uspan  *obs.Span // active Update span (nil outside Update)
	last   UpdateStats
	valid  bool
}

// NewIncrementalExtractor freezes the graph, enters overlay mode and runs
// the initial full extraction that seeds the persistent state. The graph
// must not be mutated except through Update.
func NewIncrementalExtractor(g *graph.Graph, p Params) (*IncrementalExtractor, error) {
	return NewIncrementalExtractorObs(g, p, nil, nil)
}

// NewIncrementalExtractorObs is NewIncrementalExtractor with the given
// tracer and metrics attached to the owned engine before the seed
// extraction runs, so the initial full run is traced like any fallback.
// Both handles may be nil.
func NewIncrementalExtractorObs(g *graph.Graph, p Params, tracer *obs.Tracer, metrics *obs.Registry) (*IncrementalExtractor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g.N() == 0 {
		return nil, ErrEmptyGraph
	}
	g.Freeze()
	g.BeginOverlay()
	ix := &IncrementalExtractor{e: NewExtractor(g), p: p}
	ix.e.Tracer, ix.e.Metrics = tracer, metrics
	ix.maxR = p.K
	if s := p.Scope(); s > ix.maxR {
		ix.maxR = s
	}
	ix.kern = g.ResolveKernel(p.FloodKernel, ix.maxR)
	if ix.kern == graph.KernelBatched && p.L > ix.maxR {
		ix.maxR = p.L
	}
	ix.minSites = 4
	if m := g.N() / 512; m > ix.minSites {
		ix.minSites = m
	}
	if _, err := ix.runFull(); err != nil {
		return nil, err
	}
	return ix, nil
}

// Extractor exposes the owned engine, e.g. to attach Tracer/Metrics.
func (ix *IncrementalExtractor) Extractor() *Extractor { return ix.e }

// Result returns the latest extraction result.
func (ix *IncrementalExtractor) Result() *Result { return ix.prev }

// LastUpdate returns the instrumentation of the most recent Update call.
func (ix *IncrementalExtractor) LastUpdate() UpdateStats { return ix.last }

// runFull executes a from-scratch extraction on the current (overlayed)
// graph and captures the persistent state the incremental path patches.
func (ix *IncrementalExtractor) runFull() (*Result, error) {
	res, err := ix.e.Extract(ix.p)
	if err != nil {
		ix.valid = false
		return nil, err
	}
	n := ix.e.g.N()
	ix.kEff, ix.scopeEff = res.EffectiveK, res.EffectiveScope
	ix.rounds = res.Stats.ElectionRounds
	ix.khop = growInts(ix.khop, n)
	copy(ix.khop, res.KHopSize)
	ix.cent = growFloats(ix.cent, n)
	copy(ix.cent, res.LCentrality)
	ix.index = growFloats(ix.index, n)
	copy(ix.index, res.Index)
	if cap(ix.isSite) < n {
		ix.isSite = make([]bool, n)
	}
	ix.isSite = ix.isSite[:n]
	for i := range ix.isSite {
		ix.isSite[i] = false
	}
	for _, s := range res.Sites {
		ix.isSite[s] = true
	}
	ix.sites = res.Sites
	ix.cellOf, ix.dmin, ix.records = res.CellOf, res.DistToSite, res.Records
	ix.prev = res
	if ix.kern == graph.KernelBatched {
		// The identify stage leaves its centrality sums on the engine,
		// computed with the khop weights of the final election round —
		// exactly the Σ khop over N_L the delta patch maintains.
		ix.wsum = growInts(ix.wsum, n)
		copy(ix.wsum, ix.e.wsums)
	}
	ix.tupValid = false
	ix.seedSaturation()
	ix.fcache.invalidateAll()
	ix.valid = true
	return res, nil
}

// seedSaturation rebuilds the per-radius saturation counts from the full
// ball matrix; one pass here replaces a whole-matrix rescan on every update.
func (ix *IncrementalExtractor) seedSaturation() {
	n := ix.e.g.N()
	kWant, sWant := ix.p.K, ix.p.Scope()
	ix.satK = growInts(ix.satK, kWant+1)
	ix.satS = growInts(ix.satS, sWant+1)
	for i := range ix.satK {
		ix.satK[i] = 0
	}
	for i := range ix.satS {
		ix.satS[i] = 0
	}
	limK := kSaturationFraction * float64(n)
	limS := scopeSaturationFraction * float64(n)
	for v := 0; v < n; v++ {
		row := ix.e.balls[v]
		for r := 2; r <= kWant; r++ {
			if float64(row[r-1]) <= limK {
				ix.satK[r]++
			}
		}
		for r := 2; r <= sWant; r++ {
			if float64(row[r-1]) <= limS {
				ix.satS[r]++
			}
		}
	}
}

// adjustSaturation applies one ball row's contribution to the saturation
// counts with the given sign (-1 before a row is patched, +1 after).
func (ix *IncrementalExtractor) adjustSaturation(rows [][]int, sign int) {
	n := ix.e.g.N()
	kWant, sWant := ix.p.K, ix.p.Scope()
	limK := kSaturationFraction * float64(n)
	limS := scopeSaturationFraction * float64(n)
	for _, row := range rows {
		for r := 2; r <= kWant; r++ {
			if float64(row[r-1]) <= limK {
				ix.satK[r] += sign
			}
		}
		for r := 2; r <= sWant; r++ {
			if float64(row[r-1]) <= limS {
				ix.satS[r] += sign
			}
		}
	}
}

// radiusFromCounts replays effectiveRadiusOnly's resolution off the counts:
// largest radius (scanning downward) whose saturated population reaches a
// strict majority, else 1.
func radiusFromCounts(cnt []int, want, n int) int {
	need := n/2 + 1
	for r := want; r > 1; r-- {
		if cnt[r] >= need {
			return r
		}
	}
	return 1
}

// Update applies one churn batch — node removals then revivals — and
// returns the post-batch extraction result, bit-identical to a full Extract
// on the mutated graph. The returned Result is immutable and independent of
// later updates (clean record rows are shared between consecutive results,
// which is safe because results are never mutated).
func (ix *IncrementalExtractor) Update(remove, revive []int32) (*Result, error) {
	e := ix.e
	g := e.g
	n := g.N()
	start := time.Now() //lint:allow determinism UpdateStats.Duration is wall-clock timing, not part of the result
	span := e.Tracer.StartSpan("update",
		obs.Int("remove", len(remove)), obs.Int("revive", len(revive)))
	ix.uspan = span
	defer func() { ix.uspan = nil }()

	sc := &e.inc
	sc.ensure(n)

	// Apply the churn through the overlay, tracking which nodes actually
	// flipped and the union of rebuilt adjacency windows. RemoveNodes and
	// ReviveNodes reuse one patch buffer, so the first result is copied out
	// before the second call.
	flipped := sc.seeds[:0]
	removed, revived := 0, 0
	for _, v := range remove {
		if g.Alive(v) {
			flipped = append(flipped, v)
			removed++
		}
	}
	newlyDead := flipped[:removed:removed]
	patched := sc.patched[:0]
	patched = append(patched, g.RemoveNodes(remove)...)
	for _, v := range revive {
		if !g.Alive(v) {
			flipped = append(flipped, v)
			revived++
		}
	}
	patched = append(patched, g.ReviveNodes(revive)...)
	sc.seeds, sc.patched = flipped, patched
	ix.last = UpdateStats{Removed: removed, Revived: revived}

	if len(flipped) == 0 {
		// Nothing changed; the previous result still holds.
		ix.last.Duration = time.Since(start) //lint:allow determinism wall-clock instrumentation only
		span.End(obs.Str("outcome", "no-op"))
		ix.observe()
		return ix.prev, nil
	}

	res, err := ix.update(flipped, newlyDead, patched)
	if err != nil {
		span.End(obs.Str("error", err.Error()))
		return nil, err
	}
	ix.last.Duration = time.Since(start) //lint:allow determinism wall-clock instrumentation only
	span.End(
		obs.Int("dirty", ix.last.DirtyNodes),
		obs.Int("repairedCells", ix.last.RepairedCells),
		obs.Int("attempts", ix.last.Attempts),
		obs.Str("fallback", ix.last.FallbackReason))
	ix.observe()
	return res, nil
}

// observe publishes the last update's counters to the engine's metrics.
func (ix *IncrementalExtractor) observe() {
	m := ix.e.Metrics
	if m == nil {
		return
	}
	m.Counter("bfskel_update_runs_total").Inc()
	m.Histogram("bfskel_update_seconds", obs.DurationBuckets).Observe(ix.last.Duration.Seconds())
	m.Gauge("bfskel_update_dirty_nodes").Set(float64(ix.last.DirtyNodes))
	m.Counter("bfskel_update_repaired_cells_total").Add(int64(ix.last.RepairedCells))
	if ix.last.Fallback {
		m.Counter("bfskel_update_fallbacks_total").Inc()
	}
}

// fallback records the reason and runs the full path.
func (ix *IncrementalExtractor) fallback(reason string) (*Result, error) {
	ix.last.Fallback = true
	ix.last.FallbackReason = reason
	ix.uspan.Event("update.fallback", obs.Str("reason", reason))
	return ix.runFull()
}

// update is the incremental path proper; flipped lists the nodes whose
// alive status changed (newlyDead is its removal prefix), patched the nodes
// whose adjacency windows were rebuilt.
func (ix *IncrementalExtractor) update(flipped, newlyDead, patched []int32) (*Result, error) {
	if !ix.valid {
		// A previous full extraction failed (e.g. ErrNoSites at high
		// churn); retry it — the state is only usable once it succeeds.
		return ix.fallback("stale-state")
	}
	if ix.rounds > 1 {
		// The last full run needed the min-site radius loop; the scoped
		// re-election below only replicates single-round elections.
		return ix.fallback("multi-round-election")
	}
	e := ix.e
	g := e.g
	n := g.N()
	p := ix.p
	sc := &e.inc

	// Dirty-region horizon: base-graph (pre-churn superset) BFS from the
	// flipped nodes. Every quantity recomputed below changes only within a
	// bounded base-distance of a flip — see DESIGN.md for the per-ring
	// arguments — so ring membership is read straight off this pass.
	horizon := ix.maxR + p.L + ix.scopeEff
	distD := sc.distD
	for i := range distD {
		distD[i] = graph.Unreachable
	}
	queue := sc.list[:0]
	for _, v := range flipped {
		if distD[v] < 0 {
			distD[v] = 0
			queue = append(queue, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := distD[u]
		if int(du) >= horizon {
			continue
		}
		for _, v := range g.BaseNeighbors(u) {
			if distD[v] < 0 {
				distD[v] = du + 1
				queue = append(queue, v)
			}
		}
	}

	// ---- identify: patch ball rows, index fields and election flags ----

	// Ball rows within maxR of a flip.
	srcs := sc.srcs[:0]
	for _, v := range queue {
		if int(distD[v]) <= ix.maxR {
			srcs = append(srcs, v)
		}
	}
	rows := sc.rows[:0]
	for _, v := range srcs {
		rows = append(rows, e.balls[v])
	}
	sc.rows = rows
	ix.adjustSaturation(rows, -1)
	g.BatchBallSizesInto(ix.maxR, srcs, rows, e.getWalker, e.putWalker)
	ix.adjustSaturation(rows, +1)
	var oldK []int
	if ix.kern == graph.KernelBatched {
		// Snapshot the pre-patch khop values: the centrality delta pass
		// below propagates exactly these integer differences.
		oldK = growInts(sc.oldK, len(srcs))
		sc.oldK = oldK
		for i, v := range srcs {
			oldK[i] = ix.khop[v]
		}
	}
	for _, v := range srcs {
		ix.khop[v] = e.balls[v][ix.kEff-1]
	}
	sc.srcs = srcs
	ix.uspan.Event("update.rings", obs.Int("balls", len(srcs)), obs.Int("horizon", horizon))

	// The saturation guards are global order statistics; if either radius
	// would resolve differently on the mutated graph, the whole field needs
	// rebuilding. The counts are kept in lockstep with the ball rows above,
	// so resolving off them matches effectiveRadiusOnly on the full matrix.
	if radiusFromCounts(ix.satK, p.K, n) != ix.kEff ||
		radiusFromCounts(ix.satS, p.Scope(), n) != ix.scopeEff {
		return ix.fallback("radius-drift")
	}

	// Centrality and index within maxR+L of a flip. Both kernels compute
	// the same integer sum and count before one float64 division, so either
	// realisation patches values bit-identical to the full path's.
	wlist := sc.elist[:0]
	wring := ix.maxR + p.L
	for _, v := range queue {
		if int(distD[v]) <= wring {
			wlist = append(wlist, v)
		}
	}
	if ix.kern == graph.KernelBatched {
		// Delta-patch the persistent sums instead of re-flooding the whole
		// ring. N_L membership can only change within L of a flip (an
		// entering or leaving member needs an old- or new-graph path of
		// length <= L through a flipped node), so those sums are rebuilt by
		// a fresh L-walk; every other affected sum moves by exactly the
		// khop deltas of the ball-ring nodes it contains, applied by one
		// L-walk per changed source. All arithmetic stays integer, so the
		// division below is bit-identical to the full path's.
		w := e.getWalker()
		khop, wsum := ix.khop, ix.wsum
		for _, v := range queue {
			if int(distD[v]) > p.L {
				continue
			}
			sum := 0
			w.Walk(int(v), p.L, func(u, _ int32) { sum += khop[u] })
			wsum[v] = sum
		}
		limit := int32(p.L)
		for i, v := range srcs {
			d := khop[v] - oldK[i]
			if d == 0 {
				continue
			}
			w.Walk(int(v), p.L, func(u, _ int32) {
				if distD[u] > limit {
					wsum[u] += d
				}
			})
		}
		e.putWalker(w)
		for _, v := range wlist {
			ix.cent[v] = float64(khop[v]+wsum[v]) / float64(1+e.balls[v][p.L-1])
			ix.index[v] = (float64(khop[v]) + ix.cent[v]) / 2
		}
	} else {
		khop, cent, index := ix.khop, ix.cent, ix.index
		graph.ParallelRange(g, len(wlist), e.getWalker, e.putWalker, func(w *graph.Walker, i int) {
			v := int(wlist[i])
			sum := khop[v]
			count := 1
			w.Walk(v, p.L, func(u, _ int32) {
				sum += khop[u]
				count++
			})
			cent[v] = float64(sum) / float64(count)
			index[v] = (float64(khop[v]) + cent[v]) / 2
		})
	}

	// Re-elect within maxR+L+scope of a flip (index values an election
	// reads live one scope-ball away from the last changed index).
	elist := wlist
	for _, v := range queue {
		if d := int(distD[v]); d > wring && d <= horizon {
			elist = append(elist, v)
		}
	}
	sc.elist = elist
	isSite, index, scope := ix.isSite, ix.index, ix.scopeEff
	dead := g.DeadMask()
	graph.ParallelRange(g, len(elist), e.getWalker, e.putWalker, func(w *graph.Walker, i int) {
		v := elist[i]
		if dead != nil && dead[v] {
			isSite[v] = false
			return
		}
		maximal := true
		w.WalkUntil(int(v), scope, func(u, _ int32) bool {
			if index[u] > index[v] || (index[u] == index[v] && u < v) {
				maximal = false
				return false
			}
			return true
		})
		isSite[v] = maximal
	})

	count := 0
	for v := 0; v < n; v++ {
		if isSite[v] {
			count++
		}
	}
	if count < ix.minSites {
		return ix.fallback("min-sites")
	}
	newSites := make([]int32, 0, count)
	for v := 0; v < n; v++ {
		if isSite[v] {
			newSites = append(newSites, int32(v))
		}
	}
	// Site diff against the previous election (both lists ascending).
	addS, rmS := sc.addS[:0], sc.rmS[:0]
	for i, j := 0, 0; i < len(ix.sites) || j < len(newSites); {
		switch {
		case j == len(newSites) || (i < len(ix.sites) && ix.sites[i] < newSites[j]):
			rmS = append(rmS, ix.sites[i])
			i++
		case i == len(ix.sites) || newSites[j] < ix.sites[i]:
			addS = append(addS, newSites[j])
			j++
		default:
			i++
			j++
		}
	}
	sc.addS, sc.rmS = addS, rmS
	ix.uspan.Event("update.election", obs.Int("sites", len(newSites)),
		obs.Int("gained", len(addS)), obs.Int("lost", len(rmS)))

	// ---- voronoi: fixpoint repair over the dirty region ----

	ncell := make([]int32, n)
	copy(ncell, ix.cellOf)
	ndist := make([]int32, n)
	copy(ndist, ix.dmin)
	nrec := make([][]SiteDist, n)
	copy(nrec, ix.records)

	r := &vrepair{
		g: g, alpha: p.Alpha, sc: sc,
		dirty: sc.dirty, list: sc.list[:0],
		ndist: ndist, nrec: nrec,
		prevRec: ix.records, prevDmin: ix.dmin,
		sites: newSites,
	}
	// Seed the dirty set: flipped nodes, rebuilt adjacency windows (their
	// sorted-neighbor parent scans changed), the zones of removed or
	// de-elected sites, newly elected sites, and — for distance increases —
	// the record-descendants of newly dead nodes.
	for _, v := range patched {
		r.markDirty(v)
	}
	for _, v := range flipped {
		r.markDirty(v) // dead nodes are not in patched's alive filter
	}
	if len(rmS) > 0 {
		rmMark := sc.rmMark
		for _, s := range rmS {
			rmMark[s] = true
		}
		for v := 0; v < n; v++ {
			if r.dirty[v] {
				continue
			}
			for _, rec := range ix.records[v] {
				if rmMark[rec.Site] {
					r.markDirty(int32(v))
					break
				}
			}
		}
		for _, s := range rmS {
			rmMark[s] = false
		}
	}
	for _, s := range addS {
		r.markDirty(s)
	}
	// Dead-node closure: a broken recorded parent chain can only raise
	// distances, and every broken chain passes through a newly dead node,
	// so dirty the downstream record-trees of exactly those.
	closure := append(sc.bv[:0], newlyDead...)
	for head := 0; head < len(closure); head++ {
		w := closure[head]
		for _, c := range g.BaseNeighbors(w) {
			if !g.Alive(c) || r.dirty[c] {
				continue
			}
			for _, rec := range ix.records[c] {
				if rec.Parent == w {
					r.markDirty(c)
					closure = append(closure, c)
					break
				}
			}
		}
	}
	sc.bv = closure[:0]

	maxDirty := int(p.dirtyFallback() * float64(n))
	for {
		r.attempts++
		if len(r.list) > maxDirty {
			ix.last.DirtyNodes = len(r.list)
			ix.last.DirtyFraction = float64(len(r.list)) / float64(n)
			r.release()
			return ix.fallback("dirty-fraction")
		}
		if r.attempts > maxRepairAttempts {
			ix.last.DirtyNodes = len(r.list)
			ix.last.DirtyFraction = float64(len(r.list)) / float64(n)
			r.release()
			return ix.fallback("repair-divergence")
		}
		r.grown = false
		for _, v := range r.list {
			r.nrec[v] = r.nrec[v][:0]
		}
		r.repairDmin()
		r.collectBoundary()
		r.collectSites()
		for _, s := range r.rs {
			r.repairSite(s)
		}
		if r.grown {
			continue
		}
		r.parentPass()
		if r.grown {
			continue
		}
		r.childrenPass()
		if !r.grown {
			break
		}
	}
	// Commit: derive cell assignments from the repaired records (nearest
	// recorded site, lowest ID on ties — the dmin flood's tie-break).
	for _, v := range r.list {
		recs := nrec[v]
		if len(recs) == 0 {
			ncell[v] = -1
			ndist[v] = graph.Unreachable
			continue
		}
		best := recs[0]
		for _, rec := range recs[1:] {
			if rec.D < best.D {
				best = rec
			}
		}
		ncell[v] = best.Site
		ndist[v] = best.D
	}
	ix.last.DirtyNodes = len(r.list)
	ix.last.DirtyFraction = float64(len(r.list)) / float64(n)
	ix.last.RepairedCells = len(r.rs)
	ix.last.Attempts = r.attempts
	ix.uspan.Event("update.repair", obs.Int("dirty", len(r.list)),
		obs.Int("cells", len(r.rs)), obs.Int("attempts", r.attempts))

	// ---- coarse: splice repaired pairs into the retained edge list ----

	// Special-node lists by merge-diff: clean record rows are shared with the
	// previous result, so only the dirty nodes can change class; splicing
	// their re-derived memberships into the previous sorted lists reproduces
	// specialNodes(nrec) without the O(n) row scan.
	ds := append(sc.ds[:0], r.list...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	sc.ds = ds
	segNodes := spliceClassList(ix.prev.SegmentNodes, ds, func(v int32) bool { return len(nrec[v]) >= 2 })
	vorNodes := spliceClassList(ix.prev.VoronoiNodes, ds, func(v int32) bool { return len(nrec[v]) >= 3 })
	edges, coarseSkel := ix.spliceCoarse(nrec, distD, wring, r.list)

	// ---- refine: loop classification with cached end floods ----

	w := e.newRefiner(p, ix.index, nrec, ncell)
	w.fcache = &ix.fcache
	ix.fcache.notePatched(patched)
	for _, se := range edges {
		w.edges = append(w.edges, wEdge{
			a: se.Pair.A, b: se.Pair.B, path: se.Path,
			connector: se.Connector, ends: se.EndNodes, segs: se.SegmentCount,
		})
	}
	w.dropRedundantParallels()
	w.classifyLoops()
	skel := w.build()
	pruneBranches(skel, pruneThreshold(p, edges))

	// ---- boundary ----

	boundary := e.boundaryByProduct(ix.khop)

	// ---- assemble and persist ----

	st := newStats()
	st.FloodKernel = ix.kern.String()
	st.ElectionRounds = 1
	st.Sites = len(newSites)
	st.SegmentNodes = len(segNodes)
	st.VoronoiNodes = len(vorNodes)
	st.Edges = len(edges)
	st.BoundaryNodes = len(boundary)
	res := &Result{
		Params:         p,
		EffectiveK:     ix.kEff,
		EffectiveScope: ix.scopeEff,
		KHopSize:       append([]int(nil), ix.khop...),
		LCentrality:    append([]float64(nil), ix.cent...),
		Index:          append([]float64(nil), ix.index...),
		Sites:          newSites,
		CellOf:         ncell,
		DistToSite:     ndist,
		Records:        nrec,
		SegmentNodes:   segNodes,
		VoronoiNodes:   vorNodes,
		Edges:          edges,
		Coarse:         coarseSkel,
		Loops:          w.loops,
		Skeleton:       skel,
		Boundary:       boundary,
		Stats:          st,
	}
	st.FakeLoops = res.NumFakeLoops()
	st.GenuineLoops = res.NumGenuineLoops()
	ix.sites = newSites
	ix.cellOf, ix.dmin, ix.records = ncell, ndist, nrec
	ix.prev = res
	r.release()
	return res, nil
}

// spliceCoarse rebuilds the Phase 3 edge list, reusing the previous pair's
// SiteEdge whenever its segment band, paths and two-hop surroundings are
// provably untouched; only dirty pairs recompute connector, reverse paths
// and band end nodes. Ring membership: a pair is dirty when any segment node
// is voronoi-dirty or within the index ring (which covers the two-hop
// adjacency reads of the band end-node sweep, since wring >= 2), or when any
// node of the retained path has repaired records.
func (ix *IncrementalExtractor) spliceCoarse(nrec [][]SiteDist, distD []int32, wring int, dirtyList []int32) ([]SiteEdge, *Skeleton) {
	e := ix.e
	g := e.g
	sc := &e.inc
	dirty := sc.dirty

	tuples := ix.patchTuples(nrec, dirtyList)

	isND := func(v int32) bool {
		return dirty[v] || (distD[v] >= 0 && int(distD[v]) <= wring)
	}
	prevEdges := ix.prev.Edges
	e.fld.ensure(g.N())
	skel := NewSkeleton(g.N())
	var edges []SiteEdge
	segs := make([]int32, 0, 64)
	reused := 0
	pi := 0
	for lo := 0; lo < len(tuples); {
		hi := lo
		pr := tuples[lo].pair
		for hi < len(tuples) && tuples[hi].pair == pr {
			hi++
		}
		segs = segs[:0]
		for _, t := range tuples[lo:hi] {
			segs = append(segs, t.v)
		}
		lo = hi
		for pi < len(prevEdges) && lessPair(prevEdges[pi].Pair, pr) {
			pi++
		}
		var pe *SiteEdge
		if pi < len(prevEdges) && prevEdges[pi].Pair == pr {
			pe = &prevEdges[pi]
		}
		// Clean test: same segment count with every current segment clean
		// forces identical segment lists (clean records are unchanged, so
		// current tuples are a subset of the previous ones), and a fully
		// clean path pins the reverse-path walk.
		clean := pe != nil && pe.SegmentCount == len(segs)
		if clean {
			for _, s := range segs {
				if isND(s) {
					clean = false
					break
				}
			}
		}
		if clean {
			for _, x := range pe.Path {
				if dirty[x] {
					clean = false
					break
				}
			}
		}
		if clean {
			edges = append(edges, *pe)
			skel.AddPath(pe.Path)
			reused++
			continue
		}
		connector := selectConnector(segs, ix.index)
		toA := pathToSite(nrec, connector, pr.A)
		toB := pathToSite(nrec, connector, pr.B)
		path := make([]int32, 0, len(toA)+len(toB)-1)
		for i := len(toA) - 1; i >= 0; i-- {
			path = append(path, toA[i])
		}
		path = append(path, toB[1:]...)
		skel.AddPath(path)
		e1, e2 := e.bandEndNodes(segs, connector)
		edges = append(edges, SiteEdge{
			Pair:         pr,
			Connector:    connector,
			Path:         path,
			EndNodes:     [2]int32{e1, e2},
			SegmentCount: len(segs),
		})
	}
	ix.uspan.Event("update.splice", obs.Int("edges", len(edges)), obs.Int("reused", reused))
	return edges, skel
}

// patchTuples maintains the sorted (pair, segment node) tuple array the
// coarse splice groups over. The first update after a full run rebuilds and
// sorts every tuple; later updates only delete the previous tuples of
// repaired nodes and merge in their rebuilt ones — clean record rows are
// shared between consecutive results, so every other tuple is unchanged by
// construction. The merge keeps the array in (A, B, v) order without
// re-sorting it.
func (ix *IncrementalExtractor) patchTuples(nrec [][]SiteDist, dirtyList []int32) []pairSeg {
	if !ix.tupValid {
		tuples := ix.tup[:0]
		for v := range nrec {
			tuples = appendPairTuples(tuples, nrec[v], int32(v))
		}
		sortPairSegs(tuples)
		ix.tup = tuples
		ix.tupValid = true
		return tuples
	}
	sc := &ix.e.inc
	del, add := sc.delT[:0], sc.addT[:0]
	for _, v := range dirtyList {
		del = appendPairTuples(del, ix.records[v], v)
		add = appendPairTuples(add, nrec[v], v)
	}
	sortPairSegs(del)
	sortPairSegs(add)
	sc.delT, sc.addT = del, add
	old := ix.tup
	out := ix.tupScratch[:0]
	j, k := 0, 0
	for i := 0; i < len(old); i++ {
		for k < len(add) && pairSegLess(add[k], old[i]) {
			out = append(out, add[k])
			k++
		}
		if j < len(del) && del[j] == old[i] {
			j++
			continue
		}
		out = append(out, old[i])
	}
	out = append(out, add[k:]...)
	if j != len(del) {
		// A deletion had no counterpart: the persistent array diverged from
		// the records (must not happen). Rebuild rather than splice garbage.
		ix.tupValid = false
		ix.tupScratch = out[:0]
		return ix.patchTuples(nrec, dirtyList)
	}
	ix.tup, ix.tupScratch = out, old[:0]
	return out
}

// appendPairTuples appends one (pair, v) tuple per site pair recorded at v.
func appendPairTuples(dst []pairSeg, recs []SiteDist, v int32) []pairSeg {
	if len(recs) < 2 {
		return dst
	}
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			dst = append(dst, pairSeg{pair: MakeSitePair(recs[i].Site, recs[j].Site), v: v})
		}
	}
	return dst
}

// pairSegLess orders tuples by (pair.A, pair.B, v), the coarse grouping
// order.
func pairSegLess(a, b pairSeg) bool {
	if a.pair.A != b.pair.A {
		return a.pair.A < b.pair.A
	}
	if a.pair.B != b.pair.B {
		return a.pair.B < b.pair.B
	}
	return a.v < b.v
}

func sortPairSegs(t []pairSeg) {
	sort.Slice(t, func(i, j int) bool { return pairSegLess(t[i], t[j]) })
}

// spliceClassList merges a previous sorted class-membership list with the
// sorted dirty-node list: dirty nodes re-derive membership through in, clean
// entries pass through untouched. The result is a fresh ascending slice,
// identical to rebuilding the list from the full record table.
func spliceClassList(prev []int32, dirty []int32, in func(int32) bool) []int32 {
	out := make([]int32, 0, len(prev)+len(dirty))
	j := 0
	for _, v := range prev {
		for j < len(dirty) && dirty[j] < v {
			if in(dirty[j]) {
				out = append(out, dirty[j])
			}
			j++
		}
		if j < len(dirty) && dirty[j] == v {
			if in(v) {
				out = append(out, v)
			}
			j++
			continue
		}
		out = append(out, v)
	}
	for ; j < len(dirty); j++ {
		if in(dirty[j]) {
			out = append(out, dirty[j])
		}
	}
	return out
}

// lessPair orders site pairs lexicographically, the coarse stage's output
// order.
func lessPair(a, b SitePair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// incScratch is the incremental-update scratch pooled on the engine: the
// dirty queue and flags, the dial buckets of the repair BFS passes, the
// per-site flood stamps, the ring source lists. The churn tombstone bitmap
// itself lives on the graph overlay. None of this escapes into results.
type incScratch struct {
	distD     []int32   // base-graph distance from the churn batch
	seeds     []int32   // flipped-node buffer
	patched   []int32   // rebuilt-window union of the batch
	dirty     []bool    // voronoi dirty flags (cleared after each update)
	list      []int32   // dirty queue / horizon BFS queue
	buckets   [][]int32 // dial queue of the repair BFS passes
	settled   []int32   // V1 settle stamps
	fdist     []int32   // per-site flood distances
	fstamp    []int32   // per-site flood stamps
	checked   []int32   // parent-pass dedup stamps
	smark     []int32   // repair-site dedup stamps
	epoch     int32     // shared stamp epoch
	bv, bu    []int32   // dirty-boundary edge list (dirty node, clean neighbor)
	rs        []int32   // sites to re-flood
	fqueueBuf []int32   // per-site flood settle order
	rows      [][]int   // ball-row views for the MS-BFS patch pass
	srcs      []int32   // ball-ring sources
	oldK      []int     // pre-patch khop snapshot of the ball ring
	delT      []pairSeg // coarse tuples dropped by the splice merge
	addT      []pairSeg // coarse tuples added by the splice merge
	rmMark    []bool    // removed-site mark
	addS      []int32   // gained sites
	rmS       []int32   // lost sites
	ds        []int32   // sorted dirty list for the class-list splice
	elist     []int32   // centrality/election ring
}

func (s *incScratch) ensure(n int) {
	s.distD = growInt32s(s.distD, n)
	s.dirty = growBools(s.dirty, n)
	s.settled = growInt32s(s.settled, n)
	s.fdist = growInt32s(s.fdist, n)
	s.fstamp = growInt32s(s.fstamp, n)
	s.checked = growInt32s(s.checked, n)
	s.smark = growInt32s(s.smark, n)
	s.rmMark = growBools(s.rmMark, n)
	if s.epoch > 1<<30 {
		// Stamp wrap: epochs are shared across updates; reset well before
		// int32 overflow.
		for i := range s.settled {
			s.settled[i], s.fstamp[i], s.checked[i], s.smark[i] = 0, 0, 0, 0
		}
		s.epoch = 0
	}
}

// vrepair is the voronoi fixpoint repair of one update. All BFS passes are
// serial — dirty regions are small by construction — and every distance
// queue is a dial (bucket) queue, so mixed-depth boundary injections settle
// in exact distance order.
type vrepair struct {
	g     *graph.Graph
	alpha int32
	sc    *incScratch

	dirty []bool
	list  []int32

	ndist []int32      // repaired dmin (dirty entries valid after repairDmin)
	nrec  [][]SiteDist // repaired records (dirty rows rebuilt per attempt)

	prevRec  [][]SiteDist // retained records (clean rows stay exact)
	prevDmin []int32      // retained dmin

	sites    []int32 // the new site list, ascending
	rs       []int32 // sites needing a re-flood, ascending
	grown    bool
	attempts int
}

// markDirty moves a node into the dirty set, dropping its retained record
// row (the repair rebuilds it from scratch).
func (r *vrepair) markDirty(v int32) {
	if !r.dirty[v] {
		r.dirty[v] = true
		r.list = append(r.list, v)
		r.nrec[v] = nil
	}
}

// release returns borrowed buffers to the scratch pool and clears the dirty
// flags for the next update.
func (r *vrepair) release() {
	for _, v := range r.list {
		r.dirty[v] = false
	}
	r.sc.list = r.list[:0]
	r.sc.rs = r.rs[:0]
}

// push appends v to the dial bucket at distance d.
func (r *vrepair) push(v, d int32) {
	for int(d) >= len(r.sc.buckets) {
		r.sc.buckets = append(r.sc.buckets, nil)
	}
	r.sc.buckets[d] = append(r.sc.buckets[d], v)
}

func (r *vrepair) resetBuckets() {
	for i := range r.sc.buckets {
		r.sc.buckets[i] = r.sc.buckets[i][:0]
	}
}

// repairDmin recomputes dmin over the dirty set: dirty sites seed at 0,
// and every clean->dirty edge injects the clean side's retained distance
// plus one (retained values are exact for clean nodes — any node whose
// distance could change is dirty by the seeding rules). When a wave reaches
// a clean node strictly below its retained distance the region grows and
// the flood continues through it in flight; distances settle in Dijkstra
// order either way.
func (r *vrepair) repairDmin() {
	sc := r.sc
	sc.epoch++
	ep := sc.epoch
	r.resetBuckets()
	for _, v := range r.list {
		r.ndist[v] = graph.Unreachable
	}
	for _, s := range r.sites {
		if r.dirty[s] {
			r.push(s, 0)
		}
	}
	for _, v := range r.list {
		for _, u := range r.g.Neighbors(int(v)) {
			if !r.dirty[u] && r.prevDmin[u] != graph.Unreachable {
				r.push(v, r.prevDmin[u]+1)
			}
		}
	}
	for d := 0; d < len(sc.buckets); d++ {
		for qi := 0; qi < len(sc.buckets[d]); qi++ {
			v := sc.buckets[d][qi]
			if sc.settled[v] == ep {
				continue
			}
			sc.settled[v] = ep
			r.ndist[v] = int32(d)
			for _, u := range r.g.Neighbors(int(v)) {
				if r.dirty[u] {
					if sc.settled[u] != ep {
						r.push(u, int32(d)+1)
					}
				} else if r.prevDmin[u] == graph.Unreachable || int32(d)+1 < r.prevDmin[u] {
					r.markDirty(u)
					r.ndist[u] = graph.Unreachable
					r.push(u, int32(d)+1)
				}
			}
		}
	}
}

// collectBoundary lists the dirty->clean edges; they feed the per-site
// injections and the parent pass. Dead nodes have empty adjacency, so every
// listed clean neighbor is alive.
func (r *vrepair) collectBoundary() {
	sc := r.sc
	sc.bv, sc.bu = sc.bv[:0], sc.bu[:0]
	for _, v := range r.list {
		for _, u := range r.g.Neighbors(int(v)) {
			if !r.dirty[u] {
				sc.bv = append(sc.bv, v)
				sc.bu = append(sc.bu, u)
			}
		}
	}
}

// collectSites gathers the sites whose pruned zones intersect the dirty
// region: dirty sites plus every site recorded at a clean node bordering a
// dirty one (slack monotonicity makes those records sufficient seeds; the
// ascending order reproduces the full path's per-node record order).
func (r *vrepair) collectSites() {
	sc := r.sc
	sc.epoch++
	ep := sc.epoch
	r.rs = sc.rs[:0]
	for _, s := range r.sites {
		if r.dirty[s] {
			sc.smark[s] = ep
			r.rs = append(r.rs, s)
		}
	}
	for _, u := range sc.bu {
		for _, rec := range r.prevRec[u] {
			if sc.smark[rec.Site] != ep {
				sc.smark[rec.Site] = ep
				r.rs = append(r.rs, rec.Site)
			}
		}
	}
	sort.Slice(r.rs, func(i, j int) bool { return r.rs[i] < r.rs[j] })
	sc.rs = r.rs
}

// repairSite re-floods one site's pruned zone across the dirty region. The
// flood seeds from the site (if dirty) and from boundary injections carrying
// clean-side record distances; it only traverses dirty nodes, growing the
// region in flight when a clean node's recorded distance is beaten or a new
// membership appears within the slack (equal arrivals are safe: an unchanged
// clean record implies the rest of its chain is unchanged too). Records are
// laid down in a settle pass with the canonical lowest-ID parent rule shared
// with both full-path realisations.
func (r *vrepair) repairSite(s int32) {
	sc := r.sc
	sc.epoch++
	ep := sc.epoch
	r.resetBuckets()
	g := r.g
	alpha := r.alpha
	if r.dirty[s] && r.ndist[s] != graph.Unreachable {
		r.push(s, 0)
	}
	for i, v := range sc.bv {
		if rec, ok := recordFor(r.prevRec, sc.bu[i], s); ok {
			r.push(v, rec.D+1)
		}
	}
	fq := sc.fqueueBuf[:0]
	for d := int32(0); int(d) < len(sc.buckets); d++ {
		for qi := 0; qi < len(sc.buckets[d]); qi++ {
			v := sc.buckets[d][qi]
			if sc.fstamp[v] == ep {
				continue
			}
			if r.dirty[v] {
				if r.ndist[v] == graph.Unreachable || d > r.ndist[v]+alpha {
					continue
				}
			} else {
				// Growth triggers at the clean boundary.
				rec, has := recordFor(r.prevRec, v, s)
				du := r.prevDmin[v]
				switch {
				case has && d < rec.D:
					// The zone moved inward: the recorded distance is beaten.
				case !has && du != graph.Unreachable && d <= du+alpha:
					// New membership within the slack.
				default:
					continue
				}
				r.markDirty(v)
				// The node's dmin itself is unchanged (repairDmin fixpointed
				// without touching it), so retain it.
				r.ndist[v] = du
				r.grown = true
			}
			sc.fstamp[v] = ep
			sc.fdist[v] = d
			fq = append(fq, v)
			for _, u := range g.Neighbors(int(v)) {
				if sc.fstamp[u] == ep {
					continue
				}
				bound := r.prevDmin[u]
				if r.dirty[u] {
					bound = r.ndist[u]
				}
				if bound == graph.Unreachable || d+1 > bound+alpha {
					continue
				}
				r.push(u, d+1)
			}
		}
	}
	// Settle pass: append records with the canonical parent — the first
	// (lowest-ID) neighbor in sorted adjacency one hop closer within the
	// site's visited set, where clean membership is witnessed by a retained
	// record.
	for _, v := range fq {
		d := sc.fdist[v]
		if d == 0 {
			r.nrec[v] = append(r.nrec[v], SiteDist{Site: s, D: 0, Parent: v})
			continue
		}
		parent := v
		for _, w := range g.Neighbors(int(v)) {
			var dw int32 = -2
			if sc.fstamp[w] == ep {
				dw = sc.fdist[w]
			} else if !r.dirty[w] {
				if rw, ok := recordFor(r.prevRec, w, s); ok {
					dw = rw.D
				}
			}
			if dw == d-1 {
				parent = w
				break
			}
		}
		r.nrec[v] = append(r.nrec[v], SiteDist{Site: s, D: d, Parent: parent})
	}
	sc.fqueueBuf = fq[:0]
}

// parentPass re-derives the canonical parent of every record held by a
// clean node bordering the dirty region: a dirty neighbor entering or
// leaving a site's visited set can change which lowest-ID neighbor is one
// hop closer even when the clean node's own distances are untouched. A
// mismatch dirties the node and restarts the fixpoint.
func (r *vrepair) parentPass() {
	sc := r.sc
	sc.epoch++
	ep := sc.epoch
	for _, u := range sc.bu {
		if sc.checked[u] == ep {
			continue
		}
		sc.checked[u] = ep
		if r.dirty[u] {
			continue
		}
		for _, rec := range r.prevRec[u] {
			if rec.D == 0 {
				continue
			}
			parent := u
			for _, w := range r.g.Neighbors(int(u)) {
				var dw int32 = -2
				if r.dirty[w] {
					if rw, ok := rowRecord(r.nrec[w], rec.Site); ok {
						dw = rw.D
					}
				} else if rw, ok := recordFor(r.prevRec, w, rec.Site); ok {
					dw = rw.D
				}
				if dw == rec.D-1 {
					parent = w
					break
				}
			}
			if parent != rec.Parent {
				r.markDirty(u)
				r.grown = true
				break
			}
		}
	}
}

// childrenPass dirties the clean record-children of every dirty node whose
// repaired record for their shared site changed distance or vanished — the
// child's recorded parent pointer (and possibly its own membership) hangs
// off that record. Only the pre-pass dirty list is scanned: freshly grown
// nodes have no repaired rows yet and restart the fixpoint anyway.
func (r *vrepair) childrenPass() {
	end := len(r.list)
	for li := 0; li < end; li++ {
		v := r.list[li]
		for _, rp := range r.prevRec[v] {
			if nr, ok := rowRecord(r.nrec[v], rp.Site); ok && nr.D == rp.D {
				continue
			}
			for _, c := range r.g.Neighbors(int(v)) {
				if r.dirty[c] {
					continue
				}
				if rc, ok := recordFor(r.prevRec, c, rp.Site); ok && rc.Parent == v {
					r.markDirty(c)
					r.grown = true
				}
			}
		}
	}
}

// rowRecord scans one record row for a site.
func rowRecord(recs []SiteDist, site int32) (SiteDist, bool) {
	for _, r := range recs {
		if r.Site == site {
			return r, true
		}
	}
	return SiteDist{}, false
}

// endFloodCache caches the refine stage's end-node cluster floods across
// incremental updates. An entry is the exact node set floodFrom(src, radius)
// returns; it stays valid while no flood-visible change — a skeleton-mask
// flip or a rebuilt adjacency window — lands on the set or its one-hop
// neighborhood (the flood reads adjacency of visited nodes and mask of
// visited nodes plus their neighbors). Claim replay over cached sets yields
// the same cluster partition as re-flooding: the partition is a pure
// function of the per-end node sets.
type endFloodCache struct {
	radius   int32
	prevMask []bool
	entries  map[int32]floodSet
	patched  []int32
	poison   []int32
	epoch    int32

	// Genuine-loop cache: the surviving-cycle report is a pure function of
	// the ordered non-deleted (site, site) edge list, so when that list
	// matches the previous update's, the previous loops are reused verbatim.
	genPairs   []SitePair
	genScratch []SitePair
	genLoops   []Loop
	genValid   bool
}

// floodSet is one cached end-node flood: the exact visited node set plus its
// ID range, which lets eviction skip sets that cannot contain a poisoned
// node (node IDs are spatially correlated under the grid layout, so the
// range test discards almost every entry in one comparison).
type floodSet struct {
	nodes  []int32
	lo, hi int32
}

// makeFloodSet copies the nodes and computes their range.
func makeFloodSet(nodes []int32) floodSet {
	fs := floodSet{nodes: append([]int32(nil), nodes...)}
	if len(nodes) == 0 {
		return fs
	}
	fs.lo, fs.hi = nodes[0], nodes[0]
	for _, v := range nodes[1:] {
		if v < fs.lo {
			fs.lo = v
		}
		if v > fs.hi {
			fs.hi = v
		}
	}
	return fs
}

// invalidateAll drops every entry (used after full extractions, whose
// classify mask is not captured).
func (c *endFloodCache) invalidateAll() {
	c.prevMask = nil
	c.patched = c.patched[:0]
	for k := range c.entries {
		delete(c.entries, k)
	}
	c.genValid = false
}

// notePatched records this update's rebuilt adjacency windows for the next
// begin call.
func (c *endFloodCache) notePatched(patched []int32) {
	c.patched = append(c.patched[:0], patched...)
}

// begin validates the cache against the current classify mask and flood
// radius, evicting poisoned entries, then snapshots the mask.
func (c *endFloodCache) begin(g *graph.Graph, mask []bool, radius int32) {
	n := g.N()
	if c.entries == nil {
		c.entries = make(map[int32]floodSet)
	}
	if cap(c.poison) < n {
		c.poison = make([]int32, n)
	}
	c.poison = c.poison[:n]
	if radius != c.radius || c.prevMask == nil || len(c.prevMask) != len(mask) {
		for k := range c.entries {
			delete(c.entries, k)
		}
		c.radius = radius
	} else {
		c.epoch++
		ep := c.epoch
		plo, phi := int32(n), int32(-1)
		mark := func(x int32) {
			c.poison[x] = ep
			if x < plo {
				plo = x
			}
			if x > phi {
				phi = x
			}
			for _, y := range g.Neighbors(int(x)) {
				c.poison[y] = ep
				if y < plo {
					plo = y
				}
				if y > phi {
					phi = y
				}
			}
		}
		for v := range mask {
			if mask[v] != c.prevMask[v] {
				mark(int32(v))
			}
		}
		for _, v := range c.patched {
			mark(v)
		}
		if phi >= 0 {
			for src, fs := range c.entries {
				if fs.hi < plo || fs.lo > phi {
					continue
				}
				bad := false
				for _, v := range fs.nodes {
					if c.poison[v] == ep {
						bad = true
						break
					}
				}
				if bad {
					delete(c.entries, src)
				}
			}
		}
	}
	if cap(c.prevMask) < len(mask) {
		c.prevMask = make([]bool, len(mask))
	}
	c.prevMask = c.prevMask[:len(mask)]
	copy(c.prevMask, mask)
	c.patched = c.patched[:0]
}
