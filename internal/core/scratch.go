package core

// Epoch-stamped flat scratch shared by the coarse and refine stages. The
// hundreds of small bounded floods and union-finds those stages run used to
// build a hash map each; with n-sized dist/stamp arrays a "cleared" state is
// one epoch increment, so per-flood cost is proportional to the flooded
// region and per-extraction allocation is zero once the pools are warm.

// floodScratch is per-node BFS state (dist/stamp/queue) plus an independent
// mark set (markStamp/markVal) for membership tests and node→value claims.
// Both stamps start over when the backing arrays are (re)allocated, so a
// fresh array's zeros never collide with a live epoch.
type floodScratch struct {
	dist  []int32
	stamp []int32
	epoch int32
	queue []int32

	markStamp []int32
	markVal   []int32
	markEpoch int32
}

// stampWrap bounds the epoch counters; far beyond any realistic extraction
// count, it keeps increments from ever wrapping into a stale stamp.
const stampWrap = 1 << 30

// ensure sizes the scratch to n nodes, invalidating all stamps when the
// arrays are replaced or an epoch counter nears wrap-around.
func (f *floodScratch) ensure(n int) {
	if cap(f.dist) < n || f.epoch >= stampWrap || f.markEpoch >= stampWrap {
		f.dist = make([]int32, n)
		f.stamp = make([]int32, n)
		f.markStamp = make([]int32, n)
		f.markVal = make([]int32, n)
		f.epoch, f.markEpoch = 0, 0
	}
	f.dist = f.dist[:n]
	f.stamp = f.stamp[:n]
	f.markStamp = f.markStamp[:n]
	f.markVal = f.markVal[:n]
	if cap(f.queue) < n {
		f.queue = make([]int32, 0, n)
	}
}

// beginMark starts a fresh (empty) mark set.
func (f *floodScratch) beginMark() { f.markEpoch++ }

// mark adds v to the mark set with an associated value.
func (f *floodScratch) mark(v int32, val int32) {
	f.markStamp[v] = f.markEpoch
	f.markVal[v] = val
}

// marked reports membership and the associated value.
func (f *floodScratch) marked(v int32) (int32, bool) {
	if f.markStamp[v] == f.markEpoch {
		return f.markVal[v], true
	}
	return 0, false
}

// stampedUF is a dense union-find over node IDs whose "all singletons"
// reset is one epoch increment: an element is initialized lazily the first
// time find touches it in the current epoch. It replaces the map-backed
// sparse union-find in the refine stage's forest and cycle tests.
type stampedUF struct {
	parent []int32
	stamp  []int32
	epoch  int32
}

// reset clears the structure to all-singletons over 0..n-1.
func (u *stampedUF) reset(n int) {
	if cap(u.parent) < n || u.epoch >= stampWrap {
		u.parent = make([]int32, n)
		u.stamp = make([]int32, n)
		u.epoch = 0
	}
	u.parent = u.parent[:n]
	u.stamp = u.stamp[:n]
	u.epoch++
}

func (u *stampedUF) find(x int32) int32 {
	if u.stamp[x] != u.epoch {
		u.stamp[x] = u.epoch
		u.parent[x] = x
		return x
	}
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b; it reports whether they were distinct.
func (u *stampedUF) union(a, b int32) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[rb] = ra
	return true
}
