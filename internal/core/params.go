// Package core implements the paper's contribution: connectivity-based,
// boundary-free skeleton extraction (Sec. III). The pipeline has four
// phases — skeleton node identification, Voronoi cell construction, coarse
// skeleton establishment and final clean-up — plus the two by-products
// (segmentation and network boundaries).
package core

import (
	"fmt"

	"bfskel/internal/graph"
)

// Params configures the extraction pipeline. The zero value is not valid;
// use DefaultParams (the paper's settings) and override fields as needed.
type Params struct {
	// K is the neighborhood-size radius: each node learns |N_K(p)|
	// (Def. 2). The paper uses K = 4.
	K int
	// L is the centrality radius: c_L(p) averages the K-hop neighborhood
	// sizes over the L-hop neighbors (Def. 3). The paper uses L = 4.
	L int
	// LocalMaxScope is the hop radius within which a node's index must be
	// maximal to self-identify as a critical skeleton node (Def. 5).
	// 0 means "use L".
	LocalMaxScope int
	// Alpha is the hop-count slack for segment nodes: a node almost
	// equidistant (difference <= Alpha) to two sites records both
	// (Sec. III-B; the paper uses Alpha = 1).
	Alpha int32
	// PruneLen is the maximum length (in hops) of a leaf skeleton branch
	// that gets trimmed during the final clean-up. 0 means automatic:
	// max(2, 0.4 x mean site-edge path length).
	PruneLen int
	// FakeLoopSlack is the extra hop allowance used by the interior-size
	// test that separates fake loops (contractible, small interior around a
	// Voronoi node) from genuine loops (around holes). The interior of a
	// candidate loop may extend at most maxConnectorDist + FakeLoopSlack
	// hops from its Voronoi hub to still count as fake.
	FakeLoopSlack int32
	// FloodKernel selects the BFS implementation behind the all-sources
	// flooding passes (ball sizing and centrality). graph.KernelAuto (the
	// zero value) cuts over to the bit-parallel MS-BFS kernel on large
	// frozen graphs and keeps the per-node walker otherwise;
	// graph.KernelWalker and graph.KernelBatched force one path. The
	// kernels produce identical results — only the sweep cost differs.
	FloodKernel graph.Kernel
	// DirtyFallback is the dirty-node fraction above which an incremental
	// update (IncrementalExtractor) abandons localized repair and falls
	// back to a full extraction. 0 means the default (0.25). It never
	// affects results — the incremental path is bit-identical to a full
	// extract either way — only where the crossover sits.
	DirtyFallback float64
}

// defaultDirtyFallback is the dirty-fraction threshold used when
// Params.DirtyFallback is zero.
const defaultDirtyFallback = 0.25

// dirtyFallback resolves the effective fallback threshold.
func (p Params) dirtyFallback() float64 {
	if p.DirtyFallback > 0 {
		return p.DirtyFallback
	}
	return defaultDirtyFallback
}

// DefaultParams returns the paper's default configuration (K = L = 4,
// Alpha = 1).
func DefaultParams() Params {
	return Params{
		K:             4,
		L:             4,
		Alpha:         1,
		FakeLoopSlack: 4,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("core: K must be >= 1, got %d", p.K)
	}
	if p.L < 1 {
		return fmt.Errorf("core: L must be >= 1, got %d", p.L)
	}
	if p.LocalMaxScope < 0 {
		return fmt.Errorf("core: LocalMaxScope must be >= 0, got %d", p.LocalMaxScope)
	}
	if p.Alpha < 0 {
		return fmt.Errorf("core: Alpha must be >= 0, got %d", p.Alpha)
	}
	if p.PruneLen < 0 {
		return fmt.Errorf("core: PruneLen must be >= 0, got %d", p.PruneLen)
	}
	if p.FakeLoopSlack < 0 {
		return fmt.Errorf("core: FakeLoopSlack must be >= 0, got %d", p.FakeLoopSlack)
	}
	if p.FloodKernel > graph.KernelBatched {
		return fmt.Errorf("core: unknown FloodKernel %d", p.FloodKernel)
	}
	if p.DirtyFallback < 0 || p.DirtyFallback > 1 {
		return fmt.Errorf("core: DirtyFallback must be in [0, 1], got %g", p.DirtyFallback)
	}
	return nil
}

// Scope returns the effective local-maximum scope: LocalMaxScope when set,
// otherwise L.
func (p Params) Scope() int {
	if p.LocalMaxScope > 0 {
		return p.LocalMaxScope
	}
	return p.L
}
