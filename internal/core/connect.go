package core

import "bfskel/internal/graph"

// ConnectWithin2 links the member-flagged nodes of g into skel: direct
// edges between members, plus 2-hop bridges through a single non-member
// node when no direct member link exists. This is the shared arc
// construction of the comparison backends — MAP's connected medial axis,
// CASE's skeleton arcs, and the local-separator backend all connect their
// selected node sets this way. Iteration is in ascending node ID, so the
// produced skeleton is deterministic.
func ConnectWithin2(g *graph.Graph, member []bool, skel *Skeleton) {
	for v := 0; v < g.N(); v++ {
		if !member[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if member[u] && int32(v) < u {
				skel.AddPath([]int32{int32(v), u})
			}
		}
		// 2-hop bridges, only when no direct member link exists.
		for _, w := range g.Neighbors(v) {
			if member[w] {
				continue
			}
			for _, u := range g.Neighbors(int(w)) {
				if member[u] && int32(v) < u && !g.HasEdge(v, int(u)) {
					skel.AddPath([]int32{int32(v), w, u})
				}
			}
		}
	}
}
