package core

import (
	"strings"
	"testing"

	"bfskel/internal/nettest"
)

// TestExtractorStats checks that the staged engine instruments every phase
// and that the work counters agree with the result it produced.
func TestExtractorStats(t *testing.T) {
	net := nettest.Grid("window", 800, 7, 3)
	x := NewExtractor(net.Graph)
	x.CollectMemStats = true
	res, err := x.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("Result.Stats is nil after an engine run")
	}

	wantPhases := []string{"identify", "voronoi", "coarse", "refine", "boundary"}
	if len(st.Phases) != len(wantPhases) {
		t.Fatalf("got %d phases, want %d: %+v", len(st.Phases), len(wantPhases), st.Phases)
	}
	for i, name := range wantPhases {
		ph := st.Phases[i]
		if ph.Name != name {
			t.Errorf("phase %d is %q, want %q", i, ph.Name, name)
		}
		if ph.Duration <= 0 {
			t.Errorf("phase %q has non-positive duration %v", ph.Name, ph.Duration)
		}
		if got, ok := st.Phase(name); !ok || got.Name != name {
			t.Errorf("Phase(%q) lookup failed (ok=%v)", name, ok)
		}
	}
	if st.Total <= 0 {
		t.Errorf("total duration %v, want > 0", st.Total)
	}

	if st.Sites != len(res.Sites) {
		t.Errorf("Stats.Sites = %d, want len(res.Sites) = %d", st.Sites, len(res.Sites))
	}
	if want := len(res.Sites) + 1; st.Floods != want {
		t.Errorf("Stats.Floods = %d, want joint flood + one per site = %d", st.Floods, want)
	}
	if st.BFSSweeps < net.Graph.N() {
		t.Errorf("Stats.BFSSweeps = %d, want at least one ball sweep per node (%d)",
			st.BFSSweeps, net.Graph.N())
	}
	if st.ElectionRounds < 1 {
		t.Errorf("Stats.ElectionRounds = %d, want >= 1", st.ElectionRounds)
	}
	if st.MedianKHopBall <= 0 {
		t.Errorf("Stats.MedianKHopBall = %d, want > 0", st.MedianKHopBall)
	}
	if st.SegmentNodes != len(res.SegmentNodes) {
		t.Errorf("Stats.SegmentNodes = %d, want %d", st.SegmentNodes, len(res.SegmentNodes))
	}
	if st.VoronoiNodes != len(res.VoronoiNodes) {
		t.Errorf("Stats.VoronoiNodes = %d, want %d", st.VoronoiNodes, len(res.VoronoiNodes))
	}
	if st.Edges != len(res.Edges) {
		t.Errorf("Stats.Edges = %d, want %d", st.Edges, len(res.Edges))
	}
	if st.FakeLoops != res.NumFakeLoops() {
		t.Errorf("Stats.FakeLoops = %d, want %d", st.FakeLoops, res.NumFakeLoops())
	}
	if st.GenuineLoops != res.NumGenuineLoops() {
		t.Errorf("Stats.GenuineLoops = %d, want %d", st.GenuineLoops, res.NumGenuineLoops())
	}
	if st.BoundaryNodes != len(res.Boundary) {
		t.Errorf("Stats.BoundaryNodes = %d, want %d", st.BoundaryNodes, len(res.Boundary))
	}
	if st.String() == "" {
		t.Error("Stats.String() is empty")
	}
}

// TestExtractorResultsIndependent checks the reuse contract at the data
// level: arrays of a previous result must not be overwritten by a later run
// on the same engine.
func TestExtractorResultsIndependent(t *testing.T) {
	net := nettest.Grid("window", 500, 7, 2)
	x := NewExtractor(net.Graph)
	first, err := x.Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot a few arrays, rerun, and compare.
	khop := append([]int(nil), first.KHopSize...)
	cellOf := append([]int32(nil), first.CellOf...)
	recLens := make([]int, len(first.Records))
	for v, r := range first.Records {
		recLens[v] = len(r)
	}

	p := DefaultParams()
	p.K, p.L = 3, 3
	if _, err := x.Extract(p); err != nil {
		t.Fatal(err)
	}

	for v := range khop {
		if first.KHopSize[v] != khop[v] {
			t.Fatalf("KHopSize[%d] changed from %d to %d after a later engine run",
				v, khop[v], first.KHopSize[v])
		}
		if first.CellOf[v] != cellOf[v] {
			t.Fatalf("CellOf[%d] changed from %d to %d after a later engine run",
				v, cellOf[v], first.CellOf[v])
		}
		if len(first.Records[v]) != recLens[v] {
			t.Fatalf("Records[%d] length changed from %d to %d after a later engine run",
				v, recLens[v], len(first.Records[v]))
		}
	}
}

// TestExtractBatchErrors checks the fail-fast contract and job indexing.
func TestExtractBatchErrors(t *testing.T) {
	net := nettest.Grid("window", 300, 7, 1)
	good := DefaultParams()
	bad := DefaultParams()
	bad.K = -1
	_, err := ExtractBatch([]BatchJob{
		{G: net.Graph, P: good},
		{G: net.Graph, P: bad},
	})
	if err == nil {
		t.Fatal("batch with an invalid job succeeded")
	}
	if want := "batch job 1"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the failing job (%q)", err, want)
	}
}
