package core

import (
	"math"
	"runtime"
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/nettest"
	"bfskel/internal/radio"
	"bfskel/internal/shapes"
)

// churnPlan deterministically picks the next batch of currently-alive nodes
// to remove (a seeded LCG keeps the suite reproducible without math/rand).
type churnPlan struct {
	state uint64
}

func (c *churnPlan) next(n int) int {
	c.state = c.state*6364136223846793005 + 1442695040888963407
	return int((c.state >> 33) % uint64(n))
}

// pickAlive draws k distinct alive nodes.
func (c *churnPlan) pickAlive(g *graph.Graph, k int) []int32 {
	seen := make(map[int32]bool, k)
	out := make([]int32, 0, k)
	for guard := 0; len(out) < k && guard < 100*k+1000; guard++ {
		v := int32(c.next(g.N()))
		if g.Alive(v) && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// pickDead draws up to k distinct dead nodes.
func (c *churnPlan) pickDead(g *graph.Graph, k int) []int32 {
	var dead []int32
	for v := 0; v < g.N(); v++ {
		if !g.Alive(int32(v)) {
			dead = append(dead, int32(v))
		}
	}
	if len(dead) <= k {
		return dead
	}
	out := make([]int32, 0, k)
	seen := make(map[int32]bool, k)
	for guard := 0; len(out) < k && guard < 100*k+1000; guard++ {
		v := dead[c.next(len(dead))]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// requireIncrementalEquivalence steps the incremental extractor through the
// given churn batches and, after every step, asserts the patched Result is
// bit-identical to a from-scratch extraction on the same mutated graph.
func requireIncrementalEquivalence(t *testing.T, name string, g *graph.Graph, p Params, batchSizes []int, seed uint64) {
	t.Helper()
	ix, err := NewIncrementalExtractor(g, p)
	if err != nil {
		t.Fatalf("%s: NewIncrementalExtractor: %v", name, err)
	}
	plan := &churnPlan{state: seed}
	for step, size := range batchSizes {
		var remove, revive []int32
		if step%3 == 2 {
			// Every third batch revives what it can instead of removing.
			revive = plan.pickDead(g, size)
		} else {
			remove = plan.pickAlive(g, size)
		}
		got, err := ix.Update(remove, revive)
		if err != nil {
			t.Fatalf("%s step %d: Update: %v", name, step, err)
		}
		want, err := NewExtractor(g).Extract(p)
		if err != nil {
			t.Fatalf("%s step %d: reference extract: %v", name, step, err)
		}
		requireEqualResults(t, nameStep(name, step, ix), got, want)
	}
}

func nameStep(name string, step int, ix *IncrementalExtractor) string {
	u := ix.LastUpdate()
	if u.Fallback {
		return name + "/step" + itoa(step) + "(fallback:" + u.FallbackReason + ")"
	}
	return name + "/step" + itoa(step)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// TestIncrementalSmoke: a quick single-shape pass under both kernels — the
// full matrix lives in TestIncrementalEquivalenceShapes below.
func TestIncrementalSmoke(t *testing.T) {
	for _, kern := range []graph.Kernel{graph.KernelWalker, graph.KernelBatched} {
		g := nettest.Grid("onehole", 700, 6.5, 3).Graph
		p := DefaultParams()
		p.FloodKernel = kern
		requireIncrementalEquivalence(t, "onehole/"+kern.String(), g, p,
			[]int{1, 1, 2, 8, 8, 8, 1}, 42)
	}
}

// TestIncrementalEquivalenceShapes: the property matrix — every registered
// shape under both link models, stepping churn batches of 1, 8 and 64
// removals (with revival batches interleaved), each step checked
// bit-identical against a from-scratch extraction on the mutated graph.
func TestIncrementalEquivalenceShapes(t *testing.T) {
	names := shapes.Names()
	if testing.Short() {
		names = []string{"window", "onehole", "spiral"}
	}
	const n = 500
	for _, name := range names {
		shape := shapes.MustByName(name)
		r := math.Sqrt(6.5 * shape.Poly.Area() / (math.Pi * n))
		nets := map[string]*graph.Graph{
			"udg":  nettest.Grid(name, n, 6.5, 1).Graph,
			"qudg": nettest.WithModel(name, n, radio.QUDG{R: r, Alpha: 0.4, P: 0.3}, 1).Graph,
		}
		for model, g := range nets {
			p := DefaultParams()
			requireIncrementalEquivalence(t, name+"/"+model, g, p,
				[]int{1, 1, 8, 8, 64, 64}, 7)
		}
	}
}

// TestIncrementalSmallBatchesStayIncremental: single-node churn must take
// the repair path, not the fallback — the whole point of the subsystem.
func TestIncrementalSmallBatchesStayIncremental(t *testing.T) {
	g := nettest.Grid("onehole", 700, 6.5, 3).Graph
	ix, err := NewIncrementalExtractor(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	plan := &churnPlan{state: 42}
	for step := 0; step < 3; step++ {
		if _, err := ix.Update(plan.pickAlive(g, 1), nil); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		u := ix.LastUpdate()
		if u.Fallback {
			t.Fatalf("step %d: single-node churn fell back (%s)", step, u.FallbackReason)
		}
		if u.DirtyNodes == 0 || u.Attempts == 0 || u.RepairedCells == 0 {
			t.Fatalf("step %d: repair stats empty: %+v", step, u)
		}
		if u.DirtyFraction > 0.2 {
			t.Fatalf("step %d: single-node churn dirtied %.0f%% of the field", step, 100*u.DirtyFraction)
		}
	}
}

// TestIncrementalFallbackTrigger: removing a third of the network in one
// batch must exceed DirtyFallback and trigger the full-extraction fallback —
// and the result must still be bit-identical to the reference.
func TestIncrementalFallbackTrigger(t *testing.T) {
	g := nettest.Grid("window", 600, 6.5, 5).Graph
	p := DefaultParams()
	ix, err := NewIncrementalExtractor(g, p)
	if err != nil {
		t.Fatal(err)
	}
	plan := &churnPlan{state: 99}
	remove := plan.pickAlive(g, g.N()/3)
	got, err := ix.Update(remove, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u := ix.LastUpdate(); !u.Fallback {
		t.Fatalf("mass removal did not fall back: %+v", u)
	}
	want, err := NewExtractor(g).Extract(p)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "fallback", got, want)
	// Reviving everything must also land on a correct result.
	got, err = ix.Update(nil, remove)
	if err != nil {
		t.Fatal(err)
	}
	want, err = NewExtractor(g).Extract(p)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "revive-all", got, want)
}

// TestIncrementalRepeatedDeterminism: the same seed and churn schedule yield
// the same Result sequence, run to run and across worker counts.
func TestIncrementalRepeatedDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runSequence := func(procs int) []*Result {
		runtime.GOMAXPROCS(procs)
		g := nettest.Grid("twoholes", 700, 6.5, 9).Graph
		p := DefaultParams()
		p.FloodKernel = graph.KernelBatched
		ix, err := NewIncrementalExtractor(g, p)
		if err != nil {
			t.Fatal(err)
		}
		plan := &churnPlan{state: 5}
		var out []*Result
		for step, size := range []int{1, 4, 4, 8, 2} {
			var remove, revive []int32
			if step%3 == 2 {
				revive = plan.pickDead(g, size)
			} else {
				remove = plan.pickAlive(g, size)
			}
			res, err := ix.Update(remove, revive)
			if err != nil {
				t.Fatalf("procs=%d step %d: %v", procs, step, err)
			}
			out = append(out, res)
		}
		return out
	}
	a := runSequence(1)
	b := runSequence(8)
	c := runSequence(1)
	for i := range a {
		requireEqualResults(t, "procs1-vs-8/step"+itoa(i), a[i], b[i])
		requireEqualResults(t, "rerun/step"+itoa(i), a[i], c[i])
	}
}

// TestIncrementalResultImmutability: a Result returned by Update must not be
// affected by later updates (clean record rows are shared, but never
// mutated).
func TestIncrementalResultImmutability(t *testing.T) {
	g := nettest.Grid("window", 500, 6.5, 11).Graph
	p := DefaultParams()
	ix, err := NewIncrementalExtractor(g, p)
	if err != nil {
		t.Fatal(err)
	}
	plan := &churnPlan{state: 3}
	first, err := ix.Update(plan.pickAlive(g, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := cloneResultFields(first)
	for step := 0; step < 4; step++ {
		if _, err := ix.Update(plan.pickAlive(g, 4), nil); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	requireEqualResults(t, "immutability", first, snapshot)
}

// cloneResultFields deep-copies the per-node fields compared by
// requireEqualResults so later mutation of the original would be caught.
func cloneResultFields(r *Result) *Result {
	c := *r
	c.KHopSize = append([]int(nil), r.KHopSize...)
	c.LCentrality = append([]float64(nil), r.LCentrality...)
	c.Index = append([]float64(nil), r.Index...)
	c.Sites = append([]int32(nil), r.Sites...)
	c.CellOf = append([]int32(nil), r.CellOf...)
	c.DistToSite = append([]int32(nil), r.DistToSite...)
	c.Records = make([][]SiteDist, len(r.Records))
	for v := range r.Records {
		c.Records[v] = append([]SiteDist(nil), r.Records[v]...)
	}
	c.SegmentNodes = append([]int32(nil), r.SegmentNodes...)
	c.VoronoiNodes = append([]int32(nil), r.VoronoiNodes...)
	c.Boundary = append([]int32(nil), r.Boundary...)
	c.Edges = make([]SiteEdge, len(r.Edges))
	for i, e := range r.Edges {
		e.Path = append([]int32(nil), e.Path...)
		c.Edges[i] = e
	}
	c.Coarse = r.Coarse.Clone()
	c.Skeleton = r.Skeleton.Clone()
	c.Loops = make([]Loop, len(r.Loops))
	for i, l := range r.Loops {
		l.Sites = append([]int32(nil), l.Sites...)
		c.Loops[i] = l
	}
	return &c
}

// BenchmarkIncrementalUpdate measures one steady-state churn update on a
// large field (fail a fresh batch, revive the previous one), the number the
// churn bench's updates/sec claim rests on.
func BenchmarkIncrementalUpdate(b *testing.B) {
	for _, size := range []int{1, 10, 100} {
		b.Run("batch"+itoa(size), func(b *testing.B) {
			g := nettest.Grid("window", 100000, 7, 1).Graph
			ix, err := NewIncrementalExtractor(g, DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			plan := &churnPlan{state: 1}
			var prev []int32
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := plan.pickAlive(g, size)
				if _, err := ix.Update(batch, prev); err != nil {
					b.Fatal(err)
				}
				prev = batch
			}
		})
	}
}
