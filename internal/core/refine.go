package core

import (
	"sort"

	"bfskel/internal/graph"
)

// refine runs Phase 4 (Sec. III-D): identify skeleton loops, decide which
// are genuine (caused by holes) and which are fake (caused by three or more
// mutually adjacent Voronoi cells or by redundant parallel connections),
// delete the fake ones by re-skeletonizing their interior through a hub
// node, and finally prune short leaf branches.
//
// Loop classification follows the paper's end-node flooding: every skeleton
// edge carries two end nodes (the extremes of its segment-node band). For a
// cycle in the site-level graph, walk its consecutive edges and measure the
// hop gap between their closest end nodes without crossing the coarse
// skeleton. Around a mere Voronoi meeting point the bands converge, so the
// "end node loop" stitched from these gaps is short — the loop is fake.
// Around a hole the end nodes lie on the hole boundary and the stitched
// loop has to travel the hole perimeter — the loop is genuine.
func refine(g *graph.Graph, p Params, index []float64, records [][]SiteDist,
	cellOf []int32, edges []SiteEdge, coarseSkel *Skeleton, st *Stats) ([]Loop, *Skeleton) {

	w := newRefiner(g, p, index, records, cellOf)
	for _, e := range edges {
		w.edges = append(w.edges, wEdge{
			a: e.Pair.A, b: e.Pair.B, path: e.Path,
			connector: e.Connector, ends: e.EndNodes, segs: e.SegmentCount,
		})
	}
	w.dropRedundantParallels()
	w.classifyLoops()
	skel := w.build()
	before := skel.NumNodes()
	pruneBranches(skel, pruneThreshold(p, edges))
	if st != nil {
		st.PrunedNodes += before - skel.NumNodes()
	}
	return w.loops, skel
}

// wEdge is a working (site-level) skeleton edge; refinement deletes some
// and appends hub-star replacements.
type wEdge struct {
	a, b      int32 // site (or hub) node IDs
	path      []int32
	connector int32
	ends      [2]int32
	segs      int
	deleted   bool
}

// refiner carries the mutable state of Phase 4.
type refiner struct {
	g       *graph.Graph
	p       Params
	index   []float64
	records [][]SiteDist
	cellOf  []int32
	edges   []wEdge
	loops   []Loop
	// Stamped BFS scratch shared by every bounded flood of the phase
	// (floodFrom, hopDistWithin): allocated once per refine call, so the
	// hundreds of small floods stop building a hash map each.
	dist  []int32
	stamp []int32
	epoch int32
	queue []int32
	// debugf, when non-nil, receives a trace of every classification.
	debugf func(format string, args ...any)
}

// newRefiner sets up the phase state, sizing the flood scratch to the graph.
func newRefiner(g *graph.Graph, p Params, index []float64, records [][]SiteDist, cellOf []int32) *refiner {
	n := g.N()
	return &refiner{
		g: g, p: p, index: index, records: records, cellOf: cellOf,
		dist:  make([]int32, n),
		stamp: make([]int32, n),
		queue: make([]int32, 0, n),
	}
}

// build assembles the node-level skeleton from the surviving edges. Paths
// of different edges share links (reverse paths to a common site coincide
// near the site), so the skeleton is always rebuilt rather than updated
// incrementally.
func (w *refiner) build() *Skeleton {
	skel := NewSkeleton(w.g.N())
	for _, e := range w.edges {
		if !e.deleted {
			skel.AddPath(e.path)
		}
	}
	return skel
}

// dropRedundantParallels removes duplicate connections between the same
// site pair whose connectors are close to each other — artifacts of a
// bisector band shattering into several components under sparse sampling.
func (w *refiner) dropRedundantParallels() {
	byPair := make(map[SitePair][]int)
	for i, e := range w.edges {
		byPair[MakeSitePair(e.a, e.b)] = append(byPair[MakeSitePair(e.a, e.b)], i)
	}
	nearLimit := 2*w.p.Alpha + 3
	for _, idxs := range byPair {
		if len(idxs) < 2 {
			continue
		}
		// Keep the widest band first; drop others whose connector is near a
		// kept one.
		sort.Slice(idxs, func(a, b int) bool {
			if w.edges[idxs[a]].segs != w.edges[idxs[b]].segs {
				return w.edges[idxs[a]].segs > w.edges[idxs[b]].segs
			}
			return w.edges[idxs[a]].connector < w.edges[idxs[b]].connector
		})
		kept := []int{idxs[0]}
		for _, ei := range idxs[1:] {
			redundant := false
			for _, kj := range kept {
				if w.hopDistWithin(w.edges[ei].connector, w.edges[kj].connector, nearLimit) {
					redundant = true
					break
				}
			}
			if redundant {
				w.edges[ei].deleted = true
			} else {
				kept = append(kept, ei)
			}
		}
	}
}

// classifyLoops realises the paper's end-node loop test in its junction
// form. Every edge's band carries two end nodes; where three or more
// Voronoi cells meet (no hole), the bands of the pairwise edges converge,
// so their end nodes cluster within a few hops of each other — the "end
// node loop is small" condition. The cycles among the edges meeting at such
// a junction cluster are exactly the fake loops: they are broken by
// deleting redundant edges, preferring to keep edges that do not run
// between two junctions and edges with more central connectors. Rings
// around holes never cluster on the hole side (their end nodes are
// separated by the hole-boundary arcs), so genuine loops survive.
func (w *refiner) classifyLoops() {
	skel := w.build()
	radius := w.junctionRadius()
	if w.debugf != nil {
		w.debugf("junction radius=%d", radius)
	}

	// Gather the end nodes of all active edges.
	type endRef struct {
		edge int
		node int32
	}
	var ends []endRef
	for i, e := range w.edges {
		if e.deleted {
			continue
		}
		ends = append(ends, endRef{edge: i, node: e.ends[0]})
		if e.ends[1] != e.ends[0] {
			ends = append(ends, endRef{edge: i, node: e.ends[1]})
		}
	}

	// Cluster end nodes: each floods up to the junction radius without
	// crossing the skeleton; end nodes whose floods touch are merged.
	uf := newUnionFind(len(ends))
	reachedBy := make(map[int32][]int) // graph node -> end indices
	for i, er := range ends {
		for _, v := range w.floodFrom(er.node, radius, skel) {
			for _, j := range reachedBy[v] {
				uf.union(i, j)
			}
			reachedBy[v] = append(reachedBy[v], i)
		}
	}
	clusters := make(map[int][]endRef)
	for i, er := range ends {
		r := uf.find(i)
		clusters[r] = append(clusters[r], er)
	}

	// An edge is "inter-junction" when both of its end nodes sit in
	// (possibly different) clusters of size > 1 — it crosses open space
	// between meeting points rather than reaching a boundary.
	clusterOf := make(map[endKey]int)
	clusterSize := make(map[int]int)
	for r, members := range clusters {
		for _, er := range members {
			clusterOf[endKey{er.edge, er.node}] = r
			clusterSize[r] = len(members)
		}
	}
	interJunction := func(ei int) bool {
		e := w.edges[ei]
		r0, ok0 := clusterOf[endKey{ei, e.ends[0]}]
		r1, ok1 := clusterOf[endKey{ei, e.ends[1]}]
		return ok0 && ok1 && clusterSize[r0] > 1 && clusterSize[r1] > 1
	}

	// Per cluster, break every cycle among its edges: add edges to a
	// spanning forest in keep-priority order; edges closing a cycle are
	// fake and get deleted.
	roots := make([]int, 0, len(clusters))
	for r, members := range clusters {
		if len(members) > 1 {
			roots = append(roots, r)
		}
	}
	sort.Ints(roots)
	for _, r := range roots {
		var edgeIdx []int
		seen := make(map[int]bool)
		siteSet := make(map[int32]bool)
		for _, er := range clusters[r] {
			if !seen[er.edge] && !w.edges[er.edge].deleted {
				seen[er.edge] = true
				edgeIdx = append(edgeIdx, er.edge)
				siteSet[w.edges[er.edge].a] = true
				siteSet[w.edges[er.edge].b] = true
			}
		}
		if len(edgeIdx) < 3 {
			continue // fewer than three edges cannot close a junction cycle
		}
		// Keep-priority: boundary-reaching edges first, then by descending
		// connector index, then by ID for determinism.
		sort.Slice(edgeIdx, func(a, b int) bool {
			ea, eb := edgeIdx[a], edgeIdx[b]
			ja, jb := interJunction(ea), interJunction(eb)
			if ja != jb {
				return !ja // non-inter-junction edges are kept first
			}
			ia, ib := w.index[w.edges[ea].connector], w.index[w.edges[eb].connector]
			if ia != ib {
				return ia > ib
			}
			return ea < eb
		})
		forest := newUnionFindSparse()
		for _, ei := range edgeIdx {
			if forest.union(w.edges[ei].a, w.edges[ei].b) {
				continue
			}
			// Closing a junction cycle: fake loop.
			w.edges[ei].deleted = true
			if w.debugf != nil {
				w.debugf("fake junction loop at cluster %d: deleting edge %d (%d-%d)",
					r, ei, w.edges[ei].a, w.edges[ei].b)
			}
			w.loops = append(w.loops, Loop{
				Kind:       LoopFake,
				Sites:      sortedSites(siteSet),
				Hub:        w.edges[ei].connector,
				EndLoopLen: 0,
			})
		}
	}

	// Report the surviving independent cycles as genuine loops.
	for _, ei := range w.nonTreeEdges() {
		if cycle := w.minimalCycle(ei); cycle != nil {
			w.loops = append(w.loops, Loop{
				Kind:  LoopGenuine,
				Sites: w.cycleSites(cycle),
				Hub:   -1,
			})
		}
	}
}

// endKey identifies one end of one edge.
type endKey struct {
	edge int
	node int32
}

// junctionRadius is the flood radius for end-node clustering. Junction
// pockets are a couple of hops wide at any density, but the arcs separating
// a hole ring's end nodes shrink (in hops) as the radio range grows, so the
// radius scales with the mean site-edge path length and is clamped to
// [Alpha+1, Alpha+3].
func (w *refiner) junctionRadius() int32 {
	total, count := 0, 0
	for _, e := range w.edges {
		if !e.deleted {
			total += len(e.path) - 1
			count++
		}
	}
	lo, hi := w.p.Alpha+1, w.p.Alpha+3
	if count == 0 {
		return lo
	}
	r := int32(total) / int32(count) / 3
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}

// floodFrom returns the nodes within the given hop radius of src, not
// entering skeleton nodes (the source is admitted even if on the skeleton).
// The returned slice aliases the refiner's queue scratch and is only valid
// until the next flood.
func (w *refiner) floodFrom(src int32, radius int32, skel *Skeleton) []int32 {
	w.epoch++
	w.stamp[src] = w.epoch
	w.dist[src] = 0
	w.queue = w.queue[:0]
	w.queue = append(w.queue, src)
	for head := 0; head < len(w.queue); head++ {
		u := w.queue[head]
		du := w.dist[u]
		if du >= radius {
			continue
		}
		for _, v := range w.g.Neighbors(int(u)) {
			if w.stamp[v] == w.epoch {
				continue
			}
			if skel.Contains(v) {
				continue
			}
			w.stamp[v] = w.epoch
			w.dist[v] = du + 1
			w.queue = append(w.queue, v)
		}
	}
	return w.queue
}

// nonTreeEdges returns, for the current site-level graph, the edges outside
// a BFS spanning forest — one per independent cycle.
func (w *refiner) nonTreeEdges() []int {
	uf := newUnionFindSparse()
	var nontree []int
	for i, e := range w.edges {
		if e.deleted {
			continue
		}
		if !uf.union(e.a, e.b) {
			nontree = append(nontree, i)
		}
	}
	return nontree
}

// minimalCycle returns a shortest site-level cycle through edge ei, as the
// ordered edge-index list, or nil if removing ei disconnects its endpoints
// (no cycle).
func (w *refiner) minimalCycle(ei int) []int {
	type hop struct {
		vertex  int32
		viaEdge int
	}
	adj := make(map[int32][]hop)
	for i, e := range w.edges {
		if e.deleted || i == ei {
			continue
		}
		adj[e.a] = append(adj[e.a], hop{vertex: e.b, viaEdge: i})
		adj[e.b] = append(adj[e.b], hop{vertex: e.a, viaEdge: i})
	}
	src, dst := w.edges[ei].a, w.edges[ei].b
	parent := map[int32]hop{src: {vertex: src, viaEdge: -1}}
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if u == dst {
			break
		}
		for _, h := range adj[u] {
			if _, seen := parent[h.vertex]; !seen {
				parent[h.vertex] = hop{vertex: u, viaEdge: h.viaEdge}
				queue = append(queue, h.vertex)
			}
		}
	}
	if _, ok := parent[dst]; !ok {
		return nil
	}
	cycle := []int{ei}
	for v := dst; v != src; {
		h := parent[v]
		cycle = append(cycle, h.viaEdge)
		v = h.vertex
	}
	return cycle
}

// cycleSites lists the distinct site vertices of a cycle.
func (w *refiner) cycleSites(cycle []int) []int32 {
	set := make(map[int32]bool, len(cycle))
	for _, ei := range cycle {
		set[w.edges[ei].a] = true
		set[w.edges[ei].b] = true
	}
	return sortedSites(set)
}

// hopDistWithin reports whether dst is within limit hops of src, over the
// refiner's stamped scratch.
func (w *refiner) hopDistWithin(src, dst int32, limit int32) bool {
	if src == dst {
		return true
	}
	w.epoch++
	w.stamp[src] = w.epoch
	w.dist[src] = 0
	w.queue = w.queue[:0]
	w.queue = append(w.queue, src)
	for head := 0; head < len(w.queue); head++ {
		u := w.queue[head]
		du := w.dist[u]
		if du >= limit {
			continue
		}
		for _, v := range w.g.Neighbors(int(u)) {
			if w.stamp[v] == w.epoch {
				continue
			}
			if v == dst {
				return true
			}
			w.stamp[v] = w.epoch
			w.dist[v] = du + 1
			w.queue = append(w.queue, v)
		}
	}
	return false
}

// hubPath builds the replacement path from the hub to a site: via the hub's
// own reverse path when recorded, otherwise via BFS restricted to the
// group's cells, falling back to an unrestricted BFS.
func hubPath(g *graph.Graph, records [][]SiteDist, cellOf []int32, sites map[int32]bool, hub, site int32) []int32 {
	if _, ok := recordFor(records, hub, site); ok {
		return pathToSite(records, hub, site)
	}
	if path := bfsPath(g, hub, site, func(v int32) bool { return sites[cellOf[v]] }); path != nil {
		return path
	}
	return bfsPath(g, hub, site, nil)
}

// bfsPath returns a shortest path from src to dst visiting only nodes
// allowed by the filter (nil means all); nil result if unreachable.
func bfsPath(g *graph.Graph, src, dst int32, allowed func(int32) bool) []int32 {
	parent := map[int32]int32{src: src}
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if u == dst {
			var rev []int32
			for v := dst; ; v = parent[v] {
				rev = append(rev, v)
				if parent[v] == v {
					break
				}
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
		for _, v := range g.Neighbors(int(u)) {
			if _, seen := parent[v]; seen {
				continue
			}
			if v != dst && allowed != nil && !allowed(v) {
				continue
			}
			parent[v] = u
			queue = append(queue, v)
		}
	}
	return nil
}

func sortedSites(m map[int32]bool) []int32 {
	out := make([]int32, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pruneThreshold resolves the branch-pruning length.
func pruneThreshold(p Params, edges []SiteEdge) int {
	if p.PruneLen > 0 {
		return p.PruneLen
	}
	if len(edges) == 0 {
		return 2
	}
	total := 0
	for _, e := range edges {
		total += len(e.Path) - 1
	}
	auto := int(0.4 * float64(total) / float64(len(edges)))
	if auto < 2 {
		auto = 2
	}
	return auto
}

// pruneBranches iteratively removes leaf branches shorter than minLen hops,
// the paper's final trimming step. A branch is the chain from a leaf to the
// first junction (skeleton degree >= 3); isolated paths (no junction) are
// never pruned away entirely.
func pruneBranches(skel *Skeleton, minLen int) {
	for {
		pruned := false
		for _, v := range skel.Nodes() {
			if skel.Degree(v) != 1 {
				continue
			}
			chain := []int32{v}
			prev := v
			cur := skel.Neighbors(v)[0]
			for skel.Degree(cur) == 2 {
				chain = append(chain, cur)
				next := skel.Neighbors(cur)[0]
				if next == prev {
					next = skel.Neighbors(cur)[1]
				}
				prev, cur = cur, next
			}
			if skel.Degree(cur) < 3 {
				continue // a free-standing path, not a branch
			}
			if len(chain) >= minLen {
				continue
			}
			for _, u := range chain {
				skel.RemoveNode(u)
			}
			pruned = true
		}
		if !pruned {
			return
		}
	}
}

// unionFind is a dense union-find over 0..n-1.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// unionFindSparse is a union-find over int32 keys created on demand; union
// reports whether the two elements were in different sets (i.e. the union
// did merge).
type unionFindSparse struct {
	parent map[int32]int32
}

func newUnionFindSparse() *unionFindSparse {
	return &unionFindSparse{parent: make(map[int32]int32)}
}

func (u *unionFindSparse) find(x int32) int32 {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
		return x
	}
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFindSparse) union(a, b int32) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[rb] = ra
	return true
}

// PruneLeafBranches removes leaf branches shorter than minLen hops from any
// skeleton. Exported because the CASE baseline shares the paper's pruning
// step.
func PruneLeafBranches(skel *Skeleton, minLen int) {
	pruneBranches(skel, minLen)
}
