package core

import (
	"math/bits"
	"sort"

	"bfskel/internal/graph"
)

// refine runs Phase 4 through a throwaway engine; the staged pipeline calls
// the Extractor method below so the scratch pools persist.
func refine(g *graph.Graph, p Params, index []float64, records [][]SiteDist,
	cellOf []int32, edges []SiteEdge, coarseSkel *Skeleton, st *Stats) ([]Loop, *Skeleton) {
	return NewExtractor(g).refine(p, index, records, cellOf, edges, coarseSkel, st)
}

// refine runs Phase 4 (Sec. III-D): identify skeleton loops, decide which
// are genuine (caused by holes) and which are fake (caused by three or more
// mutually adjacent Voronoi cells or by redundant parallel connections),
// delete the fake ones, and finally prune short leaf branches.
//
// Loop classification follows the paper's end-node flooding: every skeleton
// edge carries two end nodes (the extremes of its segment-node band). For a
// cycle in the site-level graph, walk its consecutive edges and measure the
// hop gap between their closest end nodes without crossing the coarse
// skeleton. Around a mere Voronoi meeting point the bands converge, so the
// "end node loop" stitched from these gaps is short — the loop is fake.
// Around a hole the end nodes lie on the hole boundary and the stitched
// loop has to travel the hole perimeter — the loop is genuine.
func (e *Extractor) refine(p Params, index []float64, records [][]SiteDist,
	cellOf []int32, edges []SiteEdge, coarseSkel *Skeleton, st *Stats) ([]Loop, *Skeleton) {

	w := e.newRefiner(p, index, records, cellOf)
	for _, se := range edges {
		w.edges = append(w.edges, wEdge{
			a: se.Pair.A, b: se.Pair.B, path: se.Path,
			connector: se.Connector, ends: se.EndNodes, segs: se.SegmentCount,
		})
	}
	w.dropRedundantParallels()
	w.classifyLoops()
	skel := w.build()
	before := skel.NumNodes()
	pruneBranches(skel, pruneThreshold(p, edges))
	if st != nil {
		st.PrunedNodes += before - skel.NumNodes()
	}
	return w.loops, skel
}

// wEdge is a working (site-level) skeleton edge; refinement deletes some
// of them.
type wEdge struct {
	a, b      int32 // site node IDs
	path      []int32
	connector int32
	ends      [2]int32
	segs      int
	deleted   bool
}

// refiner carries the mutable state of Phase 4. The bounded floods of the
// phase (floodFrom, hopDistWithin, the end-node clustering) run over the
// owning engine's stamped flood scratch, so the hundreds of small floods
// allocate nothing.
type refiner struct {
	e       *Extractor
	g       *graph.Graph
	p       Params
	index   []float64
	records [][]SiteDist
	cellOf  []int32
	edges   []wEdge
	loops   []Loop
	// fcache, when non-nil, caches the end-node cluster floods across
	// incremental updates (see endFloodCache); nil on full extractions.
	fcache *endFloodCache
	// debugf, when non-nil, receives a trace of every classification.
	debugf func(format string, args ...any)
}

// newRefiner sets up the phase state over a throwaway engine, preserving
// the historical constructor shape for the debug harness.
func newRefiner(g *graph.Graph, p Params, index []float64, records [][]SiteDist, cellOf []int32) *refiner {
	return NewExtractor(g).newRefiner(p, index, records, cellOf)
}

// newRefiner sets up the phase state, sizing the engine's flood scratch to
// the graph.
func (e *Extractor) newRefiner(p Params, index []float64, records [][]SiteDist, cellOf []int32) *refiner {
	e.fld.ensure(e.g.N())
	return &refiner{
		e: e, g: e.g, p: p, index: index, records: records, cellOf: cellOf,
	}
}

// build assembles the node-level skeleton from the surviving edges. Paths
// of different edges share links (reverse paths to a common site coincide
// near the site), so the skeleton is always rebuilt rather than updated
// incrementally.
func (w *refiner) build() *Skeleton {
	skel := NewSkeleton(w.g.N())
	for _, e := range w.edges {
		if !e.deleted {
			skel.AddPath(e.path)
		}
	}
	return skel
}

// dropRedundantParallels removes duplicate connections between the same
// site pair whose connectors are close to each other — artifacts of a
// bisector band shattering into several components under sparse sampling.
func (w *refiner) dropRedundantParallels() {
	type pairIdx struct {
		pair SitePair
		i    int
	}
	tuples := make([]pairIdx, 0, len(w.edges))
	for i, e := range w.edges {
		tuples = append(tuples, pairIdx{pair: MakeSitePair(e.a, e.b), i: i})
	}
	// Sort by (A, B, i) and walk the groups. Each group only examines and
	// deletes its own pair's edges, so the sorted group order yields the
	// same outcomes as any other order — but deterministically.
	sort.Slice(tuples, func(a, b int) bool {
		if tuples[a].pair.A != tuples[b].pair.A {
			return tuples[a].pair.A < tuples[b].pair.A
		}
		if tuples[a].pair.B != tuples[b].pair.B {
			return tuples[a].pair.B < tuples[b].pair.B
		}
		return tuples[a].i < tuples[b].i
	})
	nearLimit := 2*w.p.Alpha + 3
	kern := w.e.floodKernel(w.p.FloodKernel, int(nearLimit))
	var idxs []int
	for lo := 0; lo < len(tuples); {
		hi := lo
		pr := tuples[lo].pair
		for hi < len(tuples) && tuples[hi].pair == pr {
			hi++
		}
		idxs = idxs[:0]
		for _, t := range tuples[lo:hi] {
			idxs = append(idxs, t.i)
		}
		lo = hi
		if len(idxs) < 2 {
			continue
		}
		// Keep the widest band first; drop others whose connector is near a
		// kept one.
		sort.Slice(idxs, func(a, b int) bool {
			if w.edges[idxs[a]].segs != w.edges[idxs[b]].segs {
				return w.edges[idxs[a]].segs > w.edges[idxs[b]].segs
			}
			return w.edges[idxs[a]].connector < w.edges[idxs[b]].connector
		})
		// Under the batched kernel one 64-wide flood yields the exact
		// pairwise within-nearLimit matrix for the whole group; the
		// keep/delete scan below reads the same predicate either way.
		var reach []uint64
		if kern == graph.KernelBatched && len(idxs) <= 64 {
			conns := make([]int32, len(idxs))
			for j, ei := range idxs {
				conns[j] = w.edges[ei].connector
			}
			reach = make([]uint64, len(idxs))
			wk := w.e.getWalker()
			wk.BoundedReach(conns, nearLimit, conns, reach)
			w.e.putWalker(wk)
		}
		kept := []int{0}
		for a := 1; a < len(idxs); a++ {
			redundant := false
			for _, kj := range kept {
				if reach != nil {
					redundant = reach[a]&(uint64(1)<<uint(kj)) != 0
				} else {
					redundant = w.hopDistWithin(w.edges[idxs[a]].connector, w.edges[idxs[kj]].connector, nearLimit)
				}
				if redundant {
					break
				}
			}
			if redundant {
				w.edges[idxs[a]].deleted = true
			} else {
				kept = append(kept, a)
			}
		}
	}
}

// classifyLoops realises the paper's end-node loop test in its junction
// form. Every edge's band carries two end nodes; where three or more
// Voronoi cells meet (no hole), the bands of the pairwise edges converge,
// so their end nodes cluster within a few hops of each other — the "end
// node loop is small" condition. The cycles among the edges meeting at such
// a junction cluster are exactly the fake loops: they are broken by
// deleting redundant edges, preferring to keep edges that do not run
// between two junctions and edges with more central connectors. Rings
// around holes never cluster on the hole side (their end nodes are
// separated by the hole-boundary arcs), so genuine loops survive.
func (w *refiner) classifyLoops() {
	// The clustering floods only read skeleton membership, never adjacency,
	// so a pooled mask over the active edges' paths stands in for the full
	// skeleton build; the set bits are tracked for O(set) clearing below.
	mask := growBools(w.e.cmask, w.g.N())
	w.e.cmask = mask
	maskOn := w.e.cmaskOn[:0]
	for _, e := range w.edges {
		if e.deleted {
			continue
		}
		for _, v := range e.path {
			if !mask[v] {
				mask[v] = true
				maskOn = append(maskOn, v)
			}
		}
	}
	radius := w.junctionRadius()
	if w.debugf != nil {
		w.debugf("junction radius=%d", radius)
	}

	// Gather the end nodes of all active edges; endsOf maps each edge to
	// its one or two entries.
	type endRef struct {
		edge int
		node int32
	}
	var ends []endRef
	endsOf := make([][2]int32, len(w.edges))
	for i, e := range w.edges {
		endsOf[i] = [2]int32{-1, -1}
		if e.deleted {
			continue
		}
		endsOf[i][0] = int32(len(ends))
		ends = append(ends, endRef{edge: i, node: e.ends[0]})
		if e.ends[1] != e.ends[0] {
			endsOf[i][1] = int32(len(ends))
			ends = append(ends, endRef{edge: i, node: e.ends[1]})
		} else {
			endsOf[i][1] = endsOf[i][0]
		}
	}

	// Cluster end nodes: each floods up to the junction radius without
	// crossing the skeleton; end nodes whose floods touch are merged. The
	// merge is claim-based: the first end to touch a graph node becomes its
	// representative (the engine's mark scratch), and every later toucher
	// unions with it — the same partition as uniting all pairwise overlaps,
	// since all touchers of a node connect through its representative.
	// Claim order varies between the walker and batched realisations, so
	// nothing downstream may depend on union-find root identities; clusters
	// are keyed by their largest member index instead (see below).
	uf := newUnionFind(len(ends))
	fld := &w.e.fld
	fld.beginMark()
	claim := func(i int, v int32) {
		if rep, ok := fld.marked(v); ok {
			uf.union(i, int(rep))
		} else {
			fld.mark(v, int32(i))
		}
	}
	for i, er := range ends {
		claim(i, er.node)
	}
	if w.fcache != nil {
		// Incremental path: replay cached flood sets where still valid and
		// flood only the evicted ends. The cluster partition is a pure
		// function of the per-end node sets, so replayed claims produce the
		// same clusters as either kernel realisation.
		c := w.fcache
		c.begin(w.g, mask, radius)
		misses := 0
		for i, er := range ends {
			fs, ok := c.entries[er.node]
			if !ok {
				fs = makeFloodSet(w.floodFrom(er.node, radius, mask))
				c.entries[er.node] = fs
				misses++
			}
			for _, v := range fs.nodes {
				claim(i, v)
			}
		}
		if w.debugf != nil {
			w.debugf("end flood cache: %d ends, %d misses", len(ends), misses)
		}
	} else if kern := w.e.floodKernel(w.p.FloodKernel, int(radius)); kern == graph.KernelBatched {
		// 64 ends per bit-parallel flood; the skeleton mask blocks
		// expansion exactly like floodFrom's Contains check.
		wk := w.e.getWalker()
		srcs := make([]int32, 0, 64)
		for lo := 0; lo < len(ends); lo += 64 {
			hi := lo + 64
			if hi > len(ends) {
				hi = len(ends)
			}
			srcs = srcs[:0]
			for _, er := range ends[lo:hi] {
				srcs = append(srcs, er.node)
			}
			wk.BoundedBatch(srcs, radius, mask, func(v int32, bw uint64) {
				for b := bw; b != 0; b &= b - 1 {
					claim(lo+bits.TrailingZeros64(b), v)
				}
			})
		}
		w.e.putWalker(wk)
	} else {
		for i, er := range ends {
			for _, v := range w.floodFrom(er.node, radius, mask) {
				claim(i, v)
			}
		}
	}

	// Resolve clusters. The canonical cluster key is the largest member
	// index: it is a pure function of the partition (unlike the union-find
	// root, which depends on union order), and it equals the root the
	// historical serial unions produced, so cluster processing order — which
	// decides which shared edges get deleted first — is unchanged.
	root := make([]int, len(ends))
	size := make([]int, len(ends))
	maxMember := make([]int, len(ends))
	for i := range ends {
		root[i] = uf.find(i)
	}
	for i := range ends {
		r := root[i]
		size[r]++
		maxMember[r] = i // ascending i: the last write is the max
	}
	var order []int // roots of multi-member clusters, by max member
	for i := range ends {
		if root[i] == i && size[i] > 1 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return maxMember[order[a]] < maxMember[order[b]] })

	// Bucket members by root once (counting sort, ascending within each
	// cluster) so the per-cluster pass below reads its own slice instead of
	// rescanning every end node per cluster.
	offset := make([]int, len(ends)+1)
	for i := range ends {
		if root[i] == i {
			offset[i+1] = size[i]
		}
	}
	for i := 0; i < len(ends); i++ {
		offset[i+1] += offset[i]
	}
	members := make([]int32, len(ends))
	fill := make([]int, len(ends))
	for i := range ends {
		r := root[i]
		members[offset[r]+fill[r]] = int32(i)
		fill[r]++
	}

	// An edge is "inter-junction" when both of its end nodes sit in
	// (possibly different) clusters of size > 1 — it crosses open space
	// between meeting points rather than reaching a boundary.
	interJunction := func(ei int) bool {
		i0, i1 := endsOf[ei][0], endsOf[ei][1]
		if i0 < 0 {
			return false
		}
		return size[root[i0]] > 1 && size[root[i1]] > 1
	}

	// Per cluster, break every cycle among its edges: add edges to a
	// spanning forest in keep-priority order; edges closing a cycle are
	// fake and get deleted.
	edgeMark := make([]int32, len(w.edges))
	var clusterStamp int32
	var edgeIdx []int
	var clusterSites []int32
	for _, r := range order {
		clusterStamp++
		edgeIdx = edgeIdx[:0]
		clusterSites = clusterSites[:0]
		for _, mi := range members[offset[r] : offset[r]+size[r]] {
			ei := ends[mi].edge
			if edgeMark[ei] != clusterStamp && !w.edges[ei].deleted {
				edgeMark[ei] = clusterStamp
				edgeIdx = append(edgeIdx, ei)
				clusterSites = append(clusterSites, w.edges[ei].a, w.edges[ei].b)
			}
		}
		if len(edgeIdx) < 3 {
			continue // fewer than three edges cannot close a junction cycle
		}
		clusterSites = sortedSiteList(clusterSites)
		// Keep-priority: boundary-reaching edges first, then by descending
		// connector index, then by ID for determinism.
		sort.Slice(edgeIdx, func(a, b int) bool {
			ea, eb := edgeIdx[a], edgeIdx[b]
			ja, jb := interJunction(ea), interJunction(eb)
			if ja != jb {
				return !ja // non-inter-junction edges are kept first
			}
			ia, ib := w.index[w.edges[ea].connector], w.index[w.edges[eb].connector]
			if ia != ib {
				return ia > ib
			}
			return ea < eb
		})
		forest := &w.e.uf
		forest.reset(w.g.N())
		for _, ei := range edgeIdx {
			if forest.union(w.edges[ei].a, w.edges[ei].b) {
				continue
			}
			// Closing a junction cycle: fake loop.
			w.edges[ei].deleted = true
			if w.debugf != nil {
				w.debugf("fake junction loop at cluster %d: deleting edge %d (%d-%d)",
					maxMember[r], ei, w.edges[ei].a, w.edges[ei].b)
			}
			w.loops = append(w.loops, Loop{
				Kind:       LoopFake,
				Sites:      append([]int32(nil), clusterSites...),
				Hub:        w.edges[ei].connector,
				EndLoopLen: 0,
			})
		}
	}

	for _, v := range maskOn {
		mask[v] = false
	}
	w.e.cmaskOn = maskOn[:0]

	// Report the surviving independent cycles as genuine loops. The report
	// is a pure function of the ordered non-deleted site-pair list (the
	// spanning forest, adjacency traversal order and cycle tie-breaks all
	// follow that subsequence), so on the incremental path an unchanged list
	// replays the previous update's loops verbatim.
	if w.fcache != nil {
		c := w.fcache
		cur := c.genScratch[:0]
		for _, e := range w.edges {
			if !e.deleted {
				cur = append(cur, SitePair{A: e.a, B: e.b})
			}
		}
		c.genScratch = cur
		if c.genValid && len(cur) == len(c.genPairs) {
			same := true
			for i := range cur {
				if cur[i] != c.genPairs[i] {
					same = false
					break
				}
			}
			if same {
				w.loops = append(w.loops, c.genLoops...)
				return
			}
		}
		start := len(w.loops)
		w.reportGenuineLoops()
		c.genPairs, c.genScratch = cur, c.genPairs[:0]
		c.genLoops = append(c.genLoops[:0], w.loops[start:]...)
		c.genValid = true
		return
	}
	w.reportGenuineLoops()
}

// reportGenuineLoops appends the surviving independent cycles as genuine
// loops.
func (w *refiner) reportGenuineLoops() {
	nontree := w.nonTreeEdges()
	var siteAdj map[int32][]hop
	if len(nontree) > 0 {
		siteAdj = w.siteAdjacency()
	}
	for _, ei := range nontree {
		if cycle := w.minimalCycle(siteAdj, ei); cycle != nil {
			w.loops = append(w.loops, Loop{
				Kind:  LoopGenuine,
				Sites: w.cycleSites(cycle),
				Hub:   -1,
			})
		}
	}
}

// junctionRadius is the flood radius for end-node clustering. Junction
// pockets are a couple of hops wide at any density, but the arcs separating
// a hole ring's end nodes shrink (in hops) as the radio range grows, so the
// radius scales with the mean site-edge path length and is clamped to
// [Alpha+1, Alpha+3].
func (w *refiner) junctionRadius() int32 {
	total, count := 0, 0
	for _, e := range w.edges {
		if !e.deleted {
			total += len(e.path) - 1
			count++
		}
	}
	lo, hi := w.p.Alpha+1, w.p.Alpha+3
	if count == 0 {
		return lo
	}
	r := int32(total) / int32(count) / 3
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}

// floodFrom returns the nodes within the given hop radius of src, not
// entering skeleton nodes (the source is admitted even if on the skeleton);
// skel is the membership mask. The returned slice aliases the engine's queue
// scratch and is only valid until the next flood.
func (w *refiner) floodFrom(src int32, radius int32, skel []bool) []int32 {
	fld := &w.e.fld
	fld.epoch++
	epoch := fld.epoch
	dist, stamp := fld.dist, fld.stamp
	stamp[src] = epoch
	dist[src] = 0
	queue := fld.queue[:0]
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du >= radius {
			continue
		}
		for _, v := range w.g.Neighbors(int(u)) {
			if stamp[v] == epoch {
				continue
			}
			if skel[v] {
				continue
			}
			stamp[v] = epoch
			dist[v] = du + 1
			queue = append(queue, v)
		}
	}
	fld.queue = queue
	return queue
}

// nonTreeEdges returns, for the current site-level graph, the edges outside
// a BFS spanning forest — one per independent cycle.
func (w *refiner) nonTreeEdges() []int {
	uf := &w.e.uf
	uf.reset(w.g.N())
	var nontree []int
	for i, e := range w.edges {
		if e.deleted {
			continue
		}
		if !uf.union(e.a, e.b) {
			nontree = append(nontree, i)
		}
	}
	return nontree
}

// hop is one site-level adjacency entry: the neighboring site vertex and
// the edge index that reaches it.
type hop struct {
	vertex  int32
	viaEdge int
}

// siteAdjacency builds the site-level adjacency of all non-deleted edges
// once; minimalCycle shares it across non-tree edges, masking the probed
// edge by index instead of rebuilding the map per cycle.
func (w *refiner) siteAdjacency() map[int32][]hop {
	adj := make(map[int32][]hop, 2*len(w.edges))
	for i, e := range w.edges {
		if e.deleted {
			continue
		}
		adj[e.a] = append(adj[e.a], hop{vertex: e.b, viaEdge: i})
		adj[e.b] = append(adj[e.b], hop{vertex: e.a, viaEdge: i})
	}
	return adj
}

// minimalCycle returns a shortest site-level cycle through edge ei, as the
// ordered edge-index list, or nil if removing ei disconnects its endpoints
// (no cycle). adj is the full siteAdjacency; ei is masked during the walk,
// which traverses the same hops in the same order as an adjacency built
// without it.
func (w *refiner) minimalCycle(adj map[int32][]hop, ei int) []int {
	src, dst := w.edges[ei].a, w.edges[ei].b
	parent := map[int32]hop{src: {vertex: src, viaEdge: -1}}
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if u == dst {
			break
		}
		for _, h := range adj[u] {
			if h.viaEdge == ei {
				continue
			}
			if _, seen := parent[h.vertex]; !seen {
				parent[h.vertex] = hop{vertex: u, viaEdge: h.viaEdge}
				queue = append(queue, h.vertex)
			}
		}
	}
	if _, ok := parent[dst]; !ok {
		return nil
	}
	cycle := []int{ei}
	for v := dst; v != src; {
		h := parent[v]
		cycle = append(cycle, h.viaEdge)
		v = h.vertex
	}
	return cycle
}

// cycleSites lists the distinct site vertices of a cycle.
func (w *refiner) cycleSites(cycle []int) []int32 {
	out := make([]int32, 0, 2*len(cycle))
	for _, ei := range cycle {
		out = append(out, w.edges[ei].a, w.edges[ei].b)
	}
	return sortedSiteList(out)
}

// sortedSiteList sorts the list ascending and removes duplicates in place.
func sortedSiteList(list []int32) []int32 {
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	dedup := list[:0]
	var prev int32 = -1
	for _, s := range list {
		if len(dedup) == 0 || s != prev {
			dedup = append(dedup, s)
			prev = s
		}
	}
	return dedup
}

// hopDistWithin reports whether dst is within limit hops of src, over the
// engine's stamped scratch.
func (w *refiner) hopDistWithin(src, dst int32, limit int32) bool {
	if src == dst {
		return true
	}
	fld := &w.e.fld
	fld.epoch++
	epoch := fld.epoch
	dist, stamp := fld.dist, fld.stamp
	stamp[src] = epoch
	dist[src] = 0
	queue := fld.queue[:0]
	queue = append(queue, src)
	defer func() { fld.queue = queue[:0] }()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du >= limit {
			continue
		}
		for _, v := range w.g.Neighbors(int(u)) {
			if stamp[v] == epoch {
				continue
			}
			if v == dst {
				return true
			}
			stamp[v] = epoch
			dist[v] = du + 1
			queue = append(queue, v)
		}
	}
	return false
}

// pruneThreshold resolves the branch-pruning length.
func pruneThreshold(p Params, edges []SiteEdge) int {
	if p.PruneLen > 0 {
		return p.PruneLen
	}
	if len(edges) == 0 {
		return 2
	}
	total := 0
	for _, e := range edges {
		total += len(e.Path) - 1
	}
	auto := int(0.4 * float64(total) / float64(len(edges)))
	if auto < 2 {
		auto = 2
	}
	return auto
}

// pruneBranches iteratively removes leaf branches shorter than minLen hops,
// the paper's final trimming step. A branch is the chain from a leaf to the
// first junction (skeleton degree >= 3); isolated paths (no junction) are
// never pruned away entirely.
func pruneBranches(skel *Skeleton, minLen int) {
	// One node snapshot serves every pass: pruning only removes nodes, and
	// removed nodes drop to degree 0 and skip — the per-pass decisions are
	// identical to re-listing, without re-sorting the survivors each round.
	nodes := skel.Nodes()
	for {
		pruned := false
		for _, v := range nodes {
			if skel.Degree(v) != 1 {
				continue
			}
			chain := []int32{v}
			prev := v
			cur := skel.Neighbors(v)[0]
			for skel.Degree(cur) == 2 {
				chain = append(chain, cur)
				next := skel.Neighbors(cur)[0]
				if next == prev {
					next = skel.Neighbors(cur)[1]
				}
				prev, cur = cur, next
			}
			if skel.Degree(cur) < 3 {
				continue // a free-standing path, not a branch
			}
			if len(chain) >= minLen {
				continue
			}
			for _, u := range chain {
				skel.RemoveNode(u)
			}
			pruned = true
		}
		if !pruned {
			return
		}
	}
}

// unionFind is a dense union-find over 0..n-1.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// PruneLeafBranches removes leaf branches shorter than minLen hops from any
// skeleton. Exported because the CASE baseline shares the paper's pruning
// step.
func PruneLeafBranches(skel *Skeleton, minLen int) {
	pruneBranches(skel, minLen)
}
