package core

import (
	"math"
	"testing"

	"bfskel/internal/deploy"
	"bfskel/internal/graph"
	"bfskel/internal/radio"
	"bfskel/internal/shapes"
)

// buildTestNetworkLN builds a jittered-grid network under the log-normal
// radio model with the base range calibrated to a UDG target degree — the
// Fig. 7 construction.
func buildTestNetworkLN(t testing.TB, shapeName string, n int, deg float64, seed int64, eps float64) *graph.Graph {
	t.Helper()
	shape := shapes.MustByName(shapeName)
	spacing := math.Sqrt(shape.Poly.Area() / float64(n))
	pts := deploy.PerturbedGrid(shape.Poly, spacing, 0.45*spacing, seed)
	r := math.Sqrt(deg * shape.Poly.Area() / (math.Pi * float64(len(pts))))
	for iter := 0; iter < 4; iter++ {
		g := graph.Build(pts, radio.UDG{R: r}, seed)
		actual := g.AvgDegree()
		if actual > 0 && math.Abs(actual-deg)/deg < 0.01 {
			break
		}
		if actual > 0 {
			r *= math.Sqrt(deg / actual)
		} else {
			r *= 1.5
		}
	}
	g := graph.Build(pts, radio.LogNormal{R: r, Epsilon: eps}, seed)
	sub, _ := g.Subgraph(g.LargestComponent())
	return sub
}

// TestLogNormalHomotopy: under moderate shadowing (eps=1, the Fig. 7b
// regime) the window's four loops survive, even though sub-R links are
// missing and super-R links exist.
func TestLogNormalHomotopy(t *testing.T) {
	g := buildTestNetworkLN(t, "window", 2592, 5.19, 1, 1)
	res, err := Extract(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Skeleton.CycleRank(); got != 4 {
		t.Errorf("cycle rank = %d, want 4", got)
	}
	if comps := res.Skeleton.Components(); comps != 1 {
		t.Errorf("components = %d", comps)
	}
}
