package core

import (
	"runtime"
	"sort"

	"bfskel/internal/graph"
	"bfskel/internal/obs"
)

// voronoi runs Phase 2 (Sec. III-B): the sites flood simultaneously; each
// node keeps its nearest site, its hop distance and the reverse path, and
// nodes almost equidistant (slack Alpha) to several sites record all of
// them, becoming segment nodes (two records) or Voronoi nodes (three or
// more).
//
// Centralized realisation: a first multi-source BFS assigns the minimum
// distance dmin; then one pruned BFS per site visits exactly the nodes v
// with dist_s(v) <= dmin(v)+Alpha. The pruning is exact because along any
// shortest path toward s the slack dist_s - dmin never increases (triangle
// inequality in the hop metric), so the visited sets match the paper's
// forwarding rule while keeping total work near-linear.
func voronoi(g *graph.Graph, sites []int32, alpha int32) (cellOf, distToSite []int32, records [][]SiteDist) {
	return NewExtractor(g).voronoi(sites, alpha, graph.KernelAuto, nil)
}

// voronoi is the staged engine's Phase 2. Under the batched kernel the
// per-site pruned floods run 64 sites per bit-parallel pass over Z-curve
// site batches, and the dmin pass goes level-synchronous when several
// workers are available; both paths are bit-identical to the serial walker
// realisation (see voronoiPrunedBatched for the tie-break and parent
// arguments). The BFS scratch comes from the engine's pools, while
// everything that escapes into the Result is allocated fresh. st, when
// non-nil, accumulates the flood counters.
func (e *Extractor) voronoi(sites []int32, alpha int32, req graph.Kernel, st *Stats) (cellOf, distToSite []int32, records [][]SiteDist) {
	g := e.g
	n := g.N()
	cellOf = make([]int32, n)
	distToSite = make([]int32, n)
	records = make([][]SiteDist, n)
	for i := range cellOf {
		cellOf[i] = -1
		distToSite[i] = graph.Unreachable
	}
	if len(sites) == 0 {
		return cellOf, distToSite, records
	}
	// The pruned floods are unbounded in radius; resolve the kernel for a
	// radius comfortably past the cutover so only graph size decides.
	kern := e.floodKernel(req, n)

	// Pass 1: multi-source BFS for dmin; ties go to the lowest site ID.
	e.vorQueue = growInt32s(e.vorQueue, n)
	if kern == graph.KernelBatched && runtime.GOMAXPROCS(0) > 1 {
		e.voronoiDminParallel(sites, cellOf, distToSite)
	} else {
		e.voronoiDminSerial(sites, cellOf, distToSite)
	}
	if st != nil {
		st.Floods += 1 + len(sites)
	}
	e.event("floods", obs.Int("count", 1+len(sites)), obs.Int("sites", len(sites)))

	// Pass 2: per-site pruned floods recording (site, dist, parent) wherever
	// dist <= dmin + alpha. The recorded parent is canonical — the lowest-ID
	// neighbor one hop closer within the site's pruned visited set — so the
	// serial and batched realisations agree record for record.
	if kern == graph.KernelBatched {
		e.voronoiPrunedBatched(sites, alpha, distToSite, records)
	} else {
		e.voronoiPrunedSerial(sites, alpha, distToSite, records)
	}
	return cellOf, distToSite, records
}

// voronoiDminSerial is the FIFO multi-source dmin pass: sites are enqueued
// in increasing ID order, so the first discoverer of any node — and hence
// its cell — is its lowest-ID nearest site.
func (e *Extractor) voronoiDminSerial(sites []int32, cellOf, distToSite []int32) {
	g := e.g
	queue := e.vorQueue[:0]
	for _, s := range sites {
		distToSite[s] = 0
		cellOf[s] = s
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := distToSite[u]
		for _, v := range g.Neighbors(int(u)) {
			if distToSite[v] == graph.Unreachable {
				distToSite[v] = du + 1
				cellOf[v] = cellOf[u]
				queue = append(queue, v)
			}
		}
	}
}

// voronoiDminParallel is the level-synchronous dmin pass: each level's
// frontier expands in parallel chunks into per-chunk candidate buffers,
// a serial merge dedups them into the next frontier, and a second parallel
// sweep assigns each new node the minimum cellOf among its previous-level
// neighbors.
//
// Bit-identity with the serial FIFO pass: in that pass each level's queue
// segment is non-decreasing in cellOf (by induction — sites are enqueued
// ascending, and a node is appended by its first discoverer, which scans
// the segment in order), so the first discoverer of v IS its min-cellOf
// neighbor at the previous level. Computing that minimum directly gives the
// same assignment with no dependence on chunk boundaries or worker count.
func (e *Extractor) voronoiDminParallel(sites []int32, cellOf, distToSite []int32) {
	g := e.g
	n := g.N()
	e.vorQueue2 = growInt32s(e.vorQueue2, n)
	frontier := e.vorQueue[:0]
	next := e.vorQueue2[:0]
	for _, s := range sites {
		distToSite[s] = 0
		cellOf[s] = s
		frontier = append(frontier, s)
	}
	workers := runtime.GOMAXPROCS(0)
	if cap(e.vorCand) < workers {
		e.vorCand = make([][]int32, workers)
	}
	cand := e.vorCand[:workers]
	for d := int32(1); len(frontier) > 0; d++ {
		// Expand: collect unvisited-neighbor candidates per chunk. Reads of
		// distToSite are stable (writes happen only in the serial merge),
		// and each chunk writes only its own buffer.
		for ci := range cand {
			cand[ci] = cand[ci][:0]
		}
		graph.ParallelChunks(len(frontier), workers, func(ci, lo, hi int) {
			buf := cand[ci]
			for _, u := range frontier[lo:hi] {
				for _, v := range g.Neighbors(int(u)) {
					if distToSite[v] == graph.Unreachable {
						buf = append(buf, v)
					}
				}
			}
			cand[ci] = buf
		})
		// Merge in chunk order: the concatenation of per-chunk candidates
		// equals the serial scan order of the frontier, so the next frontier
		// comes out in serial BFS order for any worker count.
		next = next[:0]
		for _, buf := range cand {
			for _, v := range buf {
				if distToSite[v] == graph.Unreachable {
					distToSite[v] = d
					next = append(next, v)
				}
			}
		}
		// Assign cells: min cellOf over the previous-level neighbors.
		graph.ParallelChunks(len(next), workers, func(_, lo, hi int) {
			for _, v := range next[lo:hi] {
				best := int32(-1)
				for _, u := range g.Neighbors(int(v)) {
					if distToSite[u] == d-1 {
						if c := cellOf[u]; best == -1 || c < best {
							best = c
						}
					}
				}
				cellOf[v] = best
			}
		})
		frontier, next = next, frontier
	}
}

// voronoiPrunedSerial runs one pruned BFS per site over the stamped
// scratch. Parents are resolved after the flood by rescanning each visited
// node's sorted adjacency for the first (lowest-ID) neighbor one hop closer
// within the same flood — the canonical rule shared with the batched path.
func (e *Extractor) voronoiPrunedSerial(sites []int32, alpha int32, distToSite []int32, records [][]SiteDist) {
	g := e.g
	n := g.N()

	// First records go into one shared arena, one slot per node: nearly
	// every node records exactly its nearest site, so the per-node append
	// that used to allocate a tiny slice per node becomes a single
	// allocation. The arena is owned by the returned records — it escapes
	// with the Result, never into the engine's pools — and only nodes with
	// a second record (segment nodes) fall back to append's growth.
	arena := make([]SiteDist, n)
	addRecord := func(v int32, rec SiteDist) {
		if len(records[v]) == 0 {
			arena[v] = rec
			records[v] = arena[v : v+1 : v+1]
		} else {
			records[v] = append(records[v], rec)
		}
	}

	e.vorDist = growInt32s(e.vorDist, n)
	e.vorStamp = growInt32s(e.vorStamp, n)
	dist, stamp := e.vorDist, e.vorStamp
	for i := range stamp {
		stamp[i] = 0
	}
	var epoch int32
	queue := e.vorQueue[:0]
	for _, s := range sites {
		epoch++
		dist[s] = 0
		stamp[s] = epoch
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			for _, v := range g.Neighbors(int(u)) {
				if stamp[v] == epoch {
					continue
				}
				dv := du + 1
				if distToSite[v] == graph.Unreachable || dv > distToSite[v]+alpha {
					continue
				}
				stamp[v] = epoch
				dist[v] = dv
				queue = append(queue, v)
			}
		}
		for _, u := range queue {
			du := dist[u]
			if du == 0 {
				addRecord(u, SiteDist{Site: s, D: 0, Parent: u})
				continue
			}
			parent := u
			for _, w := range g.Neighbors(int(u)) {
				if stamp[w] == epoch && dist[w] == du-1 {
					parent = w
					break
				}
			}
			addRecord(u, SiteDist{Site: s, D: du, Parent: parent})
		}
	}
	e.vorQueue = queue[:cap(queue)]
}

// voronoiPrunedBatched runs the per-site pruned floods 64 sites per
// bit-parallel pass. Sites are batched along the Z-curve order so each
// batch's cells tile one compact patch (maximal frontier overlap), batches
// run in parallel with degree-weighted chunking, and a serial merge lays the
// records into an exactly-sized arena.
//
// Bit-identity with the serial path: the admission rule d <= dmin(v)+alpha
// depends only on (node, level), so each site's pruned visited set and
// distances are independent of its batch; the per-bit parent comes from the
// same lowest-ID-predecessor rule; and the merge sorts each node's records
// by site ID, the order the serial site loop produces.
func (e *Extractor) voronoiPrunedBatched(sites []int32, alpha int32, distToSite []int32, records [][]SiteDist) {
	g := e.g
	n := g.N()

	// Z-sort the sites. Rank by Build's Z-curve permutation when present
	// (ID order otherwise — then the sort is a no-op since sites arrive
	// sorted by ID).
	srt := growInt32s(e.vorSites, len(sites))
	copy(srt, sites)
	e.vorSites = srt
	if zorder := g.BatchOrder(); zorder != nil {
		rank := growInt32s(e.vorRank, n)
		e.vorRank = rank
		for i, v := range zorder {
			rank[v] = int32(i)
		}
		sort.Slice(srt, func(i, j int) bool {
			if rank[srt[i]] != rank[srt[j]] {
				return rank[srt[i]] < rank[srt[j]]
			}
			return srt[i] < srt[j]
		})
	}

	const batchSize = 64
	batches := (len(srt) + batchSize - 1) / batchSize
	if cap(e.vorVisits) < batches {
		e.vorVisits = append(e.vorVisits[:cap(e.vorVisits)], make([][]graph.PrunedVisit, batches-cap(e.vorVisits))...)
	}
	visits := e.vorVisits[:batches]
	offsets, _ := g.Offsets()
	batchWeight := func(b int) int {
		lo, hi := b*batchSize, (b+1)*batchSize
		if hi > len(srt) {
			hi = len(srt)
		}
		wsum := 0
		for _, s := range srt[lo:hi] {
			wsum += int(offsets[s+1] - offsets[s])
		}
		return wsum + 1
	}
	graph.ParallelRangeWeighted(g, batches, batchWeight, e.getWalker, e.putWalker, func(w *graph.Walker, b int) {
		lo, hi := b*batchSize, (b+1)*batchSize
		if hi > len(srt) {
			hi = len(srt)
		}
		visits[b] = w.PrunedBatch(srt[lo:hi], distToSite, alpha, visits[b][:0])
	})

	// Merge: count records per node (every site seeds its own record), lay
	// out an exactly-sized arena, append, then order each node's records by
	// site ID — the serial site-loop order.
	cnt := growInt32s(e.vorCnt, n)
	e.vorCnt = cnt
	for i := range cnt {
		cnt[i] = 0
	}
	total := len(sites)
	for _, s := range sites {
		cnt[s]++
	}
	for _, vis := range visits {
		total += len(vis)
		for _, pv := range vis {
			cnt[pv.V]++
		}
	}
	arena := make([]SiteDist, 0, total)
	off := 0
	for v := 0; v < n; v++ {
		if c := int(cnt[v]); c > 0 {
			records[v] = arena[off : off : off+c]
			off += c
		}
	}
	for _, s := range sites {
		records[s] = append(records[s], SiteDist{Site: s, D: 0, Parent: s})
	}
	for _, vis := range visits {
		for _, pv := range vis {
			records[pv.V] = append(records[pv.V], SiteDist{Site: pv.Src, D: pv.D, Parent: pv.Parent})
		}
	}
	for v := 0; v < n; v++ {
		recs := records[v]
		if len(recs) < 2 {
			continue
		}
		// Insertion sort by site: records per node are few (almost always
		// one or two) and site IDs are distinct within a node.
		for i := 1; i < len(recs); i++ {
			for j := i; j > 0 && recs[j].Site < recs[j-1].Site; j-- {
				recs[j], recs[j-1] = recs[j-1], recs[j]
			}
		}
	}
}

// specialNodes extracts the sorted segment-node and Voronoi-node lists from
// the per-node records.
func specialNodes(records [][]SiteDist) (segment, voronoiNodes []int32) {
	for v, recs := range records {
		switch {
		case len(recs) >= 3:
			voronoiNodes = append(voronoiNodes, int32(v))
			segment = append(segment, int32(v))
		case len(recs) == 2:
			segment = append(segment, int32(v))
		}
	}
	return segment, voronoiNodes
}

// recordFor returns the record of the given site at node v, if any.
func recordFor(records [][]SiteDist, v, site int32) (SiteDist, bool) {
	for _, r := range records[v] {
		if r.Site == site {
			return r, true
		}
	}
	return SiteDist{}, false
}

// pathToSite follows the recorded parents from v to the given site; it
// returns the node sequence v, ..., site. The reverse-path invariant holds
// because every recorded node's parent is also recorded for the same site.
func pathToSite(records [][]SiteDist, v, site int32) []int32 {
	var path []int32
	cur := v
	for {
		path = append(path, cur)
		if cur == site {
			return path
		}
		rec, ok := recordFor(records, cur, site)
		if !ok {
			// Should be unreachable by construction; return what we have so
			// a corrupted record manifests as a short path, not a hang.
			return path
		}
		if rec.Parent == cur {
			return path
		}
		cur = rec.Parent
	}
}
