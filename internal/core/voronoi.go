package core

import (
	"bfskel/internal/graph"
	"bfskel/internal/obs"
)

// voronoi runs Phase 2 (Sec. III-B): the sites flood simultaneously; each
// node keeps its nearest site, its hop distance and the reverse path, and
// nodes almost equidistant (slack Alpha) to several sites record all of
// them, becoming segment nodes (two records) or Voronoi nodes (three or
// more).
//
// Centralized realisation: a first multi-source BFS assigns the minimum
// distance dmin; then one pruned BFS per site visits exactly the nodes v
// with dist_s(v) <= dmin(v)+Alpha. The pruning is exact because along any
// shortest path toward s the slack dist_s - dmin never increases (triangle
// inequality in the hop metric), so the visited sets match the paper's
// forwarding rule while keeping total work near-linear.
func voronoi(g *graph.Graph, sites []int32, alpha int32) (cellOf, distToSite []int32, records [][]SiteDist) {
	return NewExtractor(g).voronoi(sites, alpha, nil)
}

// voronoi is the staged engine's Phase 2: the BFS scratch (distances,
// stamps, parents, queue) comes from the engine's pools, while everything
// that escapes into the Result is allocated fresh. st, when non-nil,
// accumulates the flood counters.
func (e *Extractor) voronoi(sites []int32, alpha int32, st *Stats) (cellOf, distToSite []int32, records [][]SiteDist) {
	g := e.g
	n := g.N()
	cellOf = make([]int32, n)
	distToSite = make([]int32, n)
	records = make([][]SiteDist, n)
	for i := range cellOf {
		cellOf[i] = -1
		distToSite[i] = graph.Unreachable
	}
	if len(sites) == 0 {
		return cellOf, distToSite, records
	}

	// Pass 1: plain multi-source BFS for dmin; ties go to the lowest site
	// ID because sites are enqueued in increasing ID order.
	e.vorQueue = growInt32s(e.vorQueue, n)
	queue := e.vorQueue[:0]
	for _, s := range sites {
		distToSite[s] = 0
		cellOf[s] = s
		queue = append(queue, s)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := distToSite[u]
		for _, v := range g.Neighbors(int(u)) {
			if distToSite[v] == graph.Unreachable {
				distToSite[v] = du + 1
				cellOf[v] = cellOf[u]
				queue = append(queue, v)
			}
		}
	}
	if st != nil {
		st.Floods += 1 + len(sites)
	}
	e.event("floods", obs.Int("count", 1+len(sites)), obs.Int("sites", len(sites)))

	// First records go into one shared arena, one slot per node: nearly
	// every node records exactly its nearest site, so the per-node append
	// that used to allocate a tiny slice per node becomes a single
	// allocation. The arena is owned by the returned records — it escapes
	// with the Result, never into the engine's pools — and only nodes with
	// a second record (segment nodes) fall back to append's growth.
	arena := make([]SiteDist, n)
	addRecord := func(v int32, rec SiteDist) {
		if len(records[v]) == 0 {
			arena[v] = rec
			records[v] = arena[v : v+1 : v+1]
		} else {
			records[v] = append(records[v], rec)
		}
	}

	// Pass 2: per-site pruned BFS recording (site, dist, parent) wherever
	// dist <= dmin + alpha.
	e.vorDist = growInt32s(e.vorDist, n)
	e.vorStamp = growInt32s(e.vorStamp, n)
	e.vorParent = growInt32s(e.vorParent, n)
	dist, stamp, parent := e.vorDist, e.vorStamp, e.vorParent
	for i := range stamp {
		stamp[i] = 0
	}
	var epoch int32
	for _, s := range sites {
		epoch++
		dist[s] = 0
		stamp[s] = epoch
		parent[s] = s
		queue = queue[:0]
		queue = append(queue, s)
		addRecord(s, SiteDist{Site: s, D: 0, Parent: s})
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			for _, v := range g.Neighbors(int(u)) {
				if stamp[v] == epoch {
					continue
				}
				dv := du + 1
				if distToSite[v] == graph.Unreachable || dv > distToSite[v]+alpha {
					continue
				}
				stamp[v] = epoch
				dist[v] = dv
				parent[v] = u
				queue = append(queue, v)
				addRecord(v, SiteDist{Site: s, D: dv, Parent: u})
			}
		}
	}
	return cellOf, distToSite, records
}

// specialNodes extracts the sorted segment-node and Voronoi-node lists from
// the per-node records.
func specialNodes(records [][]SiteDist) (segment, voronoiNodes []int32) {
	for v, recs := range records {
		switch {
		case len(recs) >= 3:
			voronoiNodes = append(voronoiNodes, int32(v))
			segment = append(segment, int32(v))
		case len(recs) == 2:
			segment = append(segment, int32(v))
		}
	}
	return segment, voronoiNodes
}

// recordFor returns the record of the given site at node v, if any.
func recordFor(records [][]SiteDist, v, site int32) (SiteDist, bool) {
	for _, r := range records[v] {
		if r.Site == site {
			return r, true
		}
	}
	return SiteDist{}, false
}

// pathToSite follows the recorded parents from v to the given site; it
// returns the node sequence v, ..., site. The reverse-path invariant holds
// because every recorded node's parent is also recorded for the same site.
func pathToSite(records [][]SiteDist, v, site int32) []int32 {
	var path []int32
	cur := v
	for {
		path = append(path, cur)
		if cur == site {
			return path
		}
		rec, ok := recordFor(records, cur, site)
		if !ok {
			// Should be unreachable by construction; return what we have so
			// a corrupted record manifests as a short path, not a hang.
			return path
		}
		if rec.Parent == cur {
			return path
		}
		cur = rec.Parent
	}
}
