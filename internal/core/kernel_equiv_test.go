package core

import (
	"runtime"
	"sort"
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/nettest"
)

// TestExtractKernelEquivalence: a full pipeline run is bit-identical under
// the walker and the batched MS-BFS flood kernels — every deterministic
// Result field matches, including the float64 index field (both kernels form
// the same integer sums before a single division), the per-node Voronoi
// records with their reverse-path parents, and the refined skeleton's full
// adjacency.
func TestExtractKernelEquivalence(t *testing.T) {
	for _, name := range []string{"window", "onehole", "twoholes", "spiral"} {
		g := nettest.Grid(name, 900, 6.5, 1).Graph
		results := make(map[graph.Kernel]*Result)
		for _, kern := range []graph.Kernel{graph.KernelWalker, graph.KernelBatched} {
			p := DefaultParams()
			p.FloodKernel = kern
			res, err := NewExtractor(g).Extract(p)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, kern, err)
			}
			want := kern.String()
			if res.Stats.FloodKernel != want {
				t.Fatalf("%s: Stats.FloodKernel = %q, want %q", name, res.Stats.FloodKernel, want)
			}
			results[kern] = res
		}
		requireEqualResults(t, name, results[graph.KernelWalker], results[graph.KernelBatched])
	}
}

// TestExtractSchedulerDeterminism: with the batched kernel, results are
// bit-identical whatever the worker count — the degree-weighted chunk
// scheduler changes only which goroutine computes what, never the values or
// their merge order.
func TestExtractSchedulerDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, name := range []string{"onehole", "spiral"} {
		g := nettest.Grid(name, 900, 6.5, 1).Graph
		p := DefaultParams()
		p.FloodKernel = graph.KernelBatched
		results := make(map[int]*Result)
		for _, procs := range []int{1, 8} {
			runtime.GOMAXPROCS(procs)
			res, err := NewExtractor(g).Extract(p)
			if err != nil {
				t.Fatalf("%s/procs=%d: %v", name, procs, err)
			}
			results[procs] = res
		}
		requireEqualResults(t, name+"/procs", results[1], results[8])
	}
}

// requireEqualResults asserts deep equality of every deterministic Result
// field between two runs.
func requireEqualResults(t *testing.T, name string, w, b *Result) {
	t.Helper()
	if w.EffectiveK != b.EffectiveK || w.EffectiveScope != b.EffectiveScope {
		t.Fatalf("%s: effective radii differ: (%d,%d) vs (%d,%d)",
			name, w.EffectiveK, w.EffectiveScope, b.EffectiveK, b.EffectiveScope)
	}
	for v := range w.KHopSize {
		if w.KHopSize[v] != b.KHopSize[v] {
			t.Fatalf("%s: KHopSize[%d] differs: %d vs %d", name, v, w.KHopSize[v], b.KHopSize[v])
		}
		if w.LCentrality[v] != b.LCentrality[v] {
			t.Fatalf("%s: LCentrality[%d] differs: %v vs %v", name, v, w.LCentrality[v], b.LCentrality[v])
		}
		if w.Index[v] != b.Index[v] {
			t.Fatalf("%s: Index[%d] differs: %v vs %v", name, v, w.Index[v], b.Index[v])
		}
		if w.CellOf[v] != b.CellOf[v] {
			t.Fatalf("%s: CellOf[%d] differs: %d vs %d", name, v, w.CellOf[v], b.CellOf[v])
		}
		if w.DistToSite[v] != b.DistToSite[v] {
			t.Fatalf("%s: DistToSite[%d] differs: %d vs %d", name, v, w.DistToSite[v], b.DistToSite[v])
		}
		if len(w.Records[v]) != len(b.Records[v]) {
			t.Fatalf("%s: Records[%d] lengths differ: %d vs %d", name, v, len(w.Records[v]), len(b.Records[v]))
		}
		for i := range w.Records[v] {
			if w.Records[v][i] != b.Records[v][i] {
				t.Fatalf("%s: Records[%d][%d] differs: %+v vs %+v", name, v, i, w.Records[v][i], b.Records[v][i])
			}
		}
	}
	if !equalInt32s(w.Sites, b.Sites) {
		t.Fatalf("%s: site sets differ: %d vs %d sites", name, len(w.Sites), len(b.Sites))
	}
	if !equalInt32s(w.SegmentNodes, b.SegmentNodes) {
		t.Fatalf("%s: segment node sets differ", name)
	}
	if !equalInt32s(w.VoronoiNodes, b.VoronoiNodes) {
		t.Fatalf("%s: Voronoi node sets differ", name)
	}
	if !equalInt32s(w.Boundary, b.Boundary) {
		t.Fatalf("%s: boundary sets differ", name)
	}
	if len(w.Edges) != len(b.Edges) {
		t.Fatalf("%s: edge counts differ: %d vs %d", name, len(w.Edges), len(b.Edges))
	}
	for i := range w.Edges {
		we, be := w.Edges[i], b.Edges[i]
		if we.Pair != be.Pair || we.Connector != be.Connector ||
			we.EndNodes != be.EndNodes || we.SegmentCount != be.SegmentCount {
			t.Fatalf("%s: Edges[%d] differs: %+v vs %+v", name, i, we, be)
		}
		if !equalInt32s(we.Path, be.Path) {
			t.Fatalf("%s: Edges[%d].Path differs", name, i)
		}
	}
	requireEqualSkeletons(t, name+": coarse", w.Coarse, b.Coarse)
	requireEqualSkeletons(t, name+": skeleton", w.Skeleton, b.Skeleton)
	if len(w.Loops) != len(b.Loops) {
		t.Fatalf("%s: loop counts differ: %d vs %d", name, len(w.Loops), len(b.Loops))
	}
	for i := range w.Loops {
		wl, bl := w.Loops[i], b.Loops[i]
		if wl.Kind != bl.Kind || wl.Hub != bl.Hub || !equalInt32s(wl.Sites, bl.Sites) {
			t.Fatalf("%s: Loops[%d] differs: %+v vs %+v", name, i, wl, bl)
		}
	}
}

// requireEqualSkeletons asserts two skeletons agree on nodes and adjacency.
func requireEqualSkeletons(t *testing.T, name string, w, b *Skeleton) {
	t.Helper()
	if !equalInt32s(w.Nodes(), b.Nodes()) {
		t.Fatalf("%s node sets differ", name)
	}
	for _, v := range w.Nodes() {
		wn := append([]int32(nil), w.Neighbors(v)...)
		bn := append([]int32(nil), b.Neighbors(v)...)
		sort.Slice(wn, func(i, j int) bool { return wn[i] < wn[j] })
		sort.Slice(bn, func(i, j int) bool { return bn[i] < bn[j] })
		if !equalInt32s(wn, bn) {
			t.Fatalf("%s adjacency differs at node %d: %v vs %v", name, v, wn, bn)
		}
	}
}

// TestExtractKernelAutoCutover: KernelAuto resolves to the batched kernel on
// a large frozen network and reports the choice in Stats.
func TestExtractKernelAutoCutover(t *testing.T) {
	g := nettest.Grid("window", 900, 6.5, 2).Graph
	res, err := NewExtractor(g).Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FloodKernel != "batched" {
		t.Fatalf("auto kernel on %d frozen nodes = %q, want batched", g.N(), res.Stats.FloodKernel)
	}
	id, ok := res.Stats.Phase("identify")
	if !ok {
		t.Fatal("identify phase missing from stats")
	}
	if id.Sweeps == 0 || id.Visited == 0 {
		t.Fatalf("identify phase work counters empty: sweeps=%d visited=%d", id.Sweeps, id.Visited)
	}
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
