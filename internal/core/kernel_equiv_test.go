package core

import (
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/nettest"
)

// TestExtractKernelEquivalence: a full pipeline run is bit-identical under
// the walker and the batched MS-BFS flood kernels — every deterministic
// Result field matches, including the float64 index field (both kernels form
// the same integer sums before a single division).
func TestExtractKernelEquivalence(t *testing.T) {
	for _, name := range []string{"window", "onehole", "twoholes", "spiral"} {
		g := nettest.Grid(name, 900, 6.5, 1).Graph
		results := make(map[graph.Kernel]*Result)
		for _, kern := range []graph.Kernel{graph.KernelWalker, graph.KernelBatched} {
			p := DefaultParams()
			p.FloodKernel = kern
			res, err := NewExtractor(g).Extract(p)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, kern, err)
			}
			want := kern.String()
			if res.Stats.FloodKernel != want {
				t.Fatalf("%s: Stats.FloodKernel = %q, want %q", name, res.Stats.FloodKernel, want)
			}
			results[kern] = res
		}
		w, b := results[graph.KernelWalker], results[graph.KernelBatched]
		if w.EffectiveK != b.EffectiveK || w.EffectiveScope != b.EffectiveScope {
			t.Fatalf("%s: effective radii differ: (%d,%d) vs (%d,%d)",
				name, w.EffectiveK, w.EffectiveScope, b.EffectiveK, b.EffectiveScope)
		}
		for v := range w.KHopSize {
			if w.KHopSize[v] != b.KHopSize[v] {
				t.Fatalf("%s: KHopSize[%d] walker=%d batched=%d", name, v, w.KHopSize[v], b.KHopSize[v])
			}
			if w.LCentrality[v] != b.LCentrality[v] {
				t.Fatalf("%s: LCentrality[%d] walker=%v batched=%v", name, v, w.LCentrality[v], b.LCentrality[v])
			}
			if w.Index[v] != b.Index[v] {
				t.Fatalf("%s: Index[%d] walker=%v batched=%v", name, v, w.Index[v], b.Index[v])
			}
			if w.CellOf[v] != b.CellOf[v] {
				t.Fatalf("%s: CellOf[%d] walker=%d batched=%d", name, v, w.CellOf[v], b.CellOf[v])
			}
		}
		if !equalInt32s(w.Sites, b.Sites) {
			t.Fatalf("%s: site sets differ: %d vs %d sites", name, len(w.Sites), len(b.Sites))
		}
		if !equalInt32s(w.Boundary, b.Boundary) {
			t.Fatalf("%s: boundary sets differ", name)
		}
		if len(w.Edges) != len(b.Edges) {
			t.Fatalf("%s: edge counts differ: %d vs %d", name, len(w.Edges), len(b.Edges))
		}
		if !equalInt32s(w.Skeleton.Nodes(), b.Skeleton.Nodes()) {
			t.Fatalf("%s: skeleton node sets differ", name)
		}
		if w.NumFakeLoops() != b.NumFakeLoops() || w.NumGenuineLoops() != b.NumGenuineLoops() {
			t.Fatalf("%s: loop verdicts differ: fake %d/%d genuine %d/%d", name,
				w.NumFakeLoops(), b.NumFakeLoops(), w.NumGenuineLoops(), b.NumGenuineLoops())
		}
	}
}

// TestExtractKernelAutoCutover: KernelAuto resolves to the batched kernel on
// a large frozen network and reports the choice in Stats.
func TestExtractKernelAutoCutover(t *testing.T) {
	g := nettest.Grid("window", 900, 6.5, 2).Graph
	res, err := NewExtractor(g).Extract(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FloodKernel != "batched" {
		t.Fatalf("auto kernel on %d frozen nodes = %q, want batched", g.N(), res.Stats.FloodKernel)
	}
	id, ok := res.Stats.Phase("identify")
	if !ok {
		t.Fatal("identify phase missing from stats")
	}
	if id.Sweeps == 0 || id.Visited == 0 {
		t.Fatalf("identify phase work counters empty: sweeps=%d visited=%d", id.Sweeps, id.Visited)
	}
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
