package core

import (
	"fmt"
	"strings"
	"time"
)

// PhaseStats instruments one named stage of an extraction run.
type PhaseStats struct {
	// Name is the stage name: identify, voronoi, coarse, refine, boundary.
	Name string
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// BytesAlloc is the heap allocated while the stage ran. It is collected
	// only when Extractor.CollectMemStats is set (0 otherwise), because the
	// underlying runtime.ReadMemStats call is stop-the-world.
	BytesAlloc uint64
	// Sweeps and Visited are the BFS work counters drained from the pooled
	// walkers while the stage ran: the number of sweeps started (one per
	// source for the walker kernel, one per source of each 64-wide batch
	// for the MS-BFS kernel — identical totals by construction) and the
	// number of (source, node) visits.
	Sweeps  int64
	Visited int64
}

// Stats instruments one run of the staged extraction engine: per-phase wall
// time plus the pipeline's work and outcome counters. The engine attaches
// it to the produced Result (Result.Stats). Runs entering the pipeline
// midway (CompleteFromVoronoi) only list the stages they executed.
type Stats struct {
	// Phases lists the executed stages in pipeline order.
	Phases []PhaseStats
	// Total is the wall-clock time of the whole run.
	Total time.Duration

	// BFSSweeps counts truncated per-node BFS sweeps (ball sizing,
	// centrality, and election each contribute one sweep per node).
	BFSSweeps int
	// Floods counts network-wide floods during Voronoi construction: the
	// multi-source minimum-distance pass plus one pruned flood per site.
	Floods int
	// ElectionRounds counts site-election attempts (> 1 when the min-site
	// guard had to shrink the radii and re-elect).
	ElectionRounds int
	// KAdjustments and ScopeAdjustments count the radius reductions applied
	// by the saturation and min-site guards (0 on ordinary networks).
	KAdjustments     int
	ScopeAdjustments int
	// MedianKHopBall is the component-median |N_K| ball size at the
	// effective K — the discriminating statistic the whole pipeline runs on.
	MedianKHopBall int
	// FloodKernel names the BFS kernel the flooding passes ran on
	// ("walker" or "batched") after resolving Params.FloodKernel.
	FloodKernel string

	// Outcome counters, echoing the sizes of the corresponding Result
	// fields so a run can be summarised without holding the Result.
	Sites        int
	SegmentNodes int
	VoronoiNodes int
	Edges        int
	FakeLoops    int
	GenuineLoops int
	// PrunedNodes counts skeleton nodes removed by the final branch
	// pruning.
	PrunedNodes int
	// BoundaryNodes is the size of the boundary by-product.
	BoundaryNodes int
}

// Phase returns the stats of the named stage, if it ran. A nil receiver
// (a result whose stats were dropped, e.g. by the JSON round trip) reports
// no phases.
func (s *Stats) Phase(name string) (PhaseStats, bool) {
	if s == nil {
		return PhaseStats{}, false
	}
	for _, p := range s.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStats{}, false
}

// String renders a one-line phase-timing summary. Phase names and
// durations are padded to fixed widths so multi-run printouts (parameter
// sweeps, repeated scenarios) column-align line over line. Safe on a nil
// receiver.
func (s *Stats) String() string {
	if s == nil {
		return "(no stats)"
	}
	nameW := len("total")
	for _, p := range s.Phases {
		if len(p.Name) > nameW {
			nameW = len(p.Name)
		}
	}
	var b strings.Builder
	for _, p := range s.Phases {
		fmt.Fprintf(&b, "%-*s=%-10s ", nameW, p.Name, p.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "%-*s=%s", nameW, "total", s.Total.Round(time.Microsecond))
	return b.String()
}
