package core
