package core

import (
	"sort"

	"bfskel/internal/graph"
)

// pairSeg is one (site pair, segment node) membership tuple; the coarse
// stage collects them flat and sorts once instead of building a per-pair
// map, so the grouping allocates nothing once the engine's buffer is warm.
type pairSeg struct {
	pair SitePair
	v    int32
}

// coarse runs Phase 3 through a throwaway engine; the staged pipeline calls
// the Extractor method below so the scratch pools persist.
func coarse(g *graph.Graph, index []float64, records [][]SiteDist) ([]SiteEdge, *Skeleton) {
	return NewExtractor(g).coarse(index, records)
}

// coarse runs Phase 3 (Sec. III-C): for every pair of adjacent Voronoi
// cells, the segment node with the largest index is selected as the
// connector; it sends a message along the reverse paths kept during Voronoi
// construction, building the two paths to its nearest sites, which together
// connect the sites. The union of all such paths is the coarse skeleton.
func (e *Extractor) coarse(index []float64, records [][]SiteDist) ([]SiteEdge, *Skeleton) {
	g := e.g
	// Collect (pair, segment node) tuples. A Voronoi node recording m >= 3
	// sites is a segment node for each of its m(m-1)/2 pairs.
	tuples := e.pairBuf[:0]
	for v := range records {
		recs := records[v]
		if len(recs) < 2 {
			continue
		}
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				tuples = append(tuples, pairSeg{pair: MakeSitePair(recs[i].Site, recs[j].Site), v: int32(v)})
			}
		}
	}
	e.pairBuf = tuples

	// Sort by (A, B, v) and walk the groups: pairs come out in sorted
	// (A, B) order — the edge list, the path union and the trace all follow
	// this order, and the fixed-seed determinism tests compare them
	// bit-for-bit — and each pair's segment nodes come out ascending by
	// node ID, the order the old per-pair map accumulated them in.
	sort.Slice(tuples, func(i, j int) bool {
		if tuples[i].pair.A != tuples[j].pair.A {
			return tuples[i].pair.A < tuples[j].pair.A
		}
		if tuples[i].pair.B != tuples[j].pair.B {
			return tuples[i].pair.B < tuples[j].pair.B
		}
		return tuples[i].v < tuples[j].v
	})

	e.fld.ensure(g.N())
	skel := NewSkeleton(g.N())
	var edges []SiteEdge
	segs := make([]int32, 0, 64)
	for lo := 0; lo < len(tuples); {
		hi := lo
		pr := tuples[lo].pair
		for hi < len(tuples) && tuples[hi].pair == pr {
			hi++
		}
		segs = segs[:0]
		for _, t := range tuples[lo:hi] {
			segs = append(segs, t.v)
		}
		lo = hi
		// The paper selects exactly one segment node per adjacent cell
		// pair, so each pair contributes one connection. (A hole encircled
		// by only two cells is therefore not representable — as in the
		// paper; enough sites form around any hole of non-trivial size.)
		connector := selectConnector(segs, index)
		toA := pathToSite(records, connector, pr.A)
		toB := pathToSite(records, connector, pr.B)
		// Full path A .. connector .. B.
		path := make([]int32, 0, len(toA)+len(toB)-1)
		for i := len(toA) - 1; i >= 0; i-- {
			path = append(path, toA[i])
		}
		path = append(path, toB[1:]...)
		skel.AddPath(path)
		e1, e2 := e.bandEndNodes(segs, connector)
		edges = append(edges, SiteEdge{
			Pair:         pr,
			Connector:    connector,
			Path:         path,
			EndNodes:     [2]int32{e1, e2},
			SegmentCount: len(segs),
		})
	}
	return edges, skel
}

// selectConnector picks the segment node with the largest index, breaking
// ties toward the lowest node ID for determinism.
func selectConnector(segs []int32, index []float64) int32 {
	best := segs[0]
	for _, v := range segs[1:] {
		if index[v] > index[best] || (index[v] == index[best] && v < best) {
			best = v
		}
	}
	return best
}

// bandEndNodes finds the two farthest-apart segment nodes of a pair's band
// (the paper's "end nodes", Sec. III-D) with a double BFS sweep restricted
// to the band.
func (e *Extractor) bandEndNodes(segs []int32, connector int32) (int32, int32) {
	if len(segs) == 1 {
		return segs[0], segs[0]
	}
	e.fld.beginMark()
	for _, v := range segs {
		e.fld.mark(v, 1)
	}
	e1 := e.farthestInBand(connector)
	e2 := e.farthestInBand(e1)
	return e1, e2
}

// farthestInBand runs a BFS from src that traverses band nodes (the current
// mark set, allowing the same one-hop bridges as bandComponents) and returns
// the farthest reached band node (src if none). The tie-break is explicit:
// among nodes at the maximum distance, the lowest node ID wins, so the
// selected end node is a pure function of the band — the mark set is only
// ever used for membership tests, never iterated.
func (e *Extractor) farthestInBand(src int32) int32 {
	g := e.g
	fld := &e.fld
	fld.epoch++
	epoch := fld.epoch
	dist, stamp := fld.dist, fld.stamp
	stamp[src] = epoch
	dist[src] = 0
	queue := fld.queue[:0]
	queue = append(queue, src)
	far := src
	visit := func(v, d int32) {
		if stamp[v] == epoch {
			return
		}
		stamp[v] = epoch
		dist[v] = d
		// Strictly farther wins; at equal distance the lower ID wins.
		if d > dist[far] || (d == dist[far] && v < far) {
			far = v
		}
		queue = append(queue, v)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if _, inBand := fld.marked(v); inBand {
				visit(v, du+1)
				continue
			}
			for _, w := range g.Neighbors(int(v)) {
				if _, inBand := fld.marked(w); inBand {
					visit(w, du+2)
				}
			}
		}
	}
	fld.queue = queue[:0]
	return far
}
