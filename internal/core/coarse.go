package core

import (
	"sort"

	"bfskel/internal/graph"
)

// coarse runs Phase 3 (Sec. III-C): for every pair of adjacent Voronoi
// cells, the segment node with the largest index is selected as the
// connector; it sends a message along the reverse paths kept during Voronoi
// construction, building the two paths to its nearest sites, which together
// connect the sites. The union of all such paths is the coarse skeleton.
func coarse(g *graph.Graph, index []float64, records [][]SiteDist) ([]SiteEdge, *Skeleton) {
	// Group segment nodes by unordered site pair. A Voronoi node recording
	// m >= 3 sites is a segment node for each of its m(m-1)/2 pairs.
	pairSegs := make(map[SitePair][]int32)
	for v := range records {
		recs := records[v]
		if len(recs) < 2 {
			continue
		}
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				p := MakeSitePair(recs[i].Site, recs[j].Site)
				pairSegs[p] = append(pairSegs[p], int32(v))
			}
		}
	}

	// Iterate pairs in sorted (A, B) order, never in map order: the edge
	// list, the path union and the trace all follow this order, and the
	// fixed-seed determinism tests compare them bit-for-bit. The
	// collect-keys-then-sort shape is what the determinism analyzer
	// (cmd/skellint) expects; walking pairSegs directly is a finding.
	pairs := make([]SitePair, 0, len(pairSegs))
	for p := range pairSegs {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})

	skel := NewSkeleton(g.N())
	var edges []SiteEdge
	for _, pr := range pairs {
		// The paper selects exactly one segment node per adjacent cell
		// pair, so each pair contributes one connection. (A hole encircled
		// by only two cells is therefore not representable — as in the
		// paper; enough sites form around any hole of non-trivial size.)
		segs := pairSegs[pr]
		connector := selectConnector(segs, index)
		toA := pathToSite(records, connector, pr.A)
		toB := pathToSite(records, connector, pr.B)
		// Full path A .. connector .. B.
		path := make([]int32, 0, len(toA)+len(toB)-1)
		for i := len(toA) - 1; i >= 0; i-- {
			path = append(path, toA[i])
		}
		path = append(path, toB[1:]...)
		skel.AddPath(path)
		e1, e2 := bandEndNodes(g, segs, connector)
		edges = append(edges, SiteEdge{
			Pair:         pr,
			Connector:    connector,
			Path:         path,
			EndNodes:     [2]int32{e1, e2},
			SegmentCount: len(segs),
		})
	}
	return edges, skel
}

// selectConnector picks the segment node with the largest index, breaking
// ties toward the lowest node ID for determinism.
func selectConnector(segs []int32, index []float64) int32 {
	best := segs[0]
	for _, v := range segs[1:] {
		if index[v] > index[best] || (index[v] == index[best] && v < best) {
			best = v
		}
	}
	return best
}

// bandEndNodes finds the two farthest-apart segment nodes of a pair's band
// (the paper's "end nodes", Sec. III-D) with a double BFS sweep restricted
// to the band.
func bandEndNodes(g *graph.Graph, segs []int32, connector int32) (int32, int32) {
	if len(segs) == 1 {
		return segs[0], segs[0]
	}
	inBand := make(map[int32]bool, len(segs))
	for _, v := range segs {
		inBand[v] = true
	}
	e1 := farthestInBand(g, connector, inBand)
	e2 := farthestInBand(g, e1, inBand)
	return e1, e2
}

// farthestInBand runs a BFS from src that traverses band nodes (allowing
// the same one-hop bridges as bandComponents) and returns the farthest
// reached band node (src if none). The tie-break is explicit: among nodes
// at the maximum distance, the lowest node ID wins, so the selected end
// node is a pure function of the band — inBand is only ever used for
// membership tests, never iterated.
func farthestInBand(g *graph.Graph, src int32, inBand map[int32]bool) int32 {
	dist := map[int32]int32{src: 0}
	queue := []int32{src}
	far := src
	visit := func(v, d int32) {
		if _, seen := dist[v]; seen {
			return
		}
		dist[v] = d
		// Strictly farther wins; at equal distance the lower ID wins.
		if d > dist[far] || (d == dist[far] && v < far) {
			far = v
		}
		queue = append(queue, v)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if inBand[v] {
				visit(v, du+1)
				continue
			}
			for _, w := range g.Neighbors(int(v)) {
				if inBand[w] {
					visit(w, du+2)
				}
			}
		}
	}
	return far
}
