package core

import (
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/nettest"
)

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(graph.New(0), DefaultParams()); err != ErrEmptyGraph {
		t.Errorf("empty graph err = %v", err)
	}
	bad := DefaultParams()
	bad.K = 0
	if _, err := Extract(graph.New(3), bad); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestVoronoiInvariants checks Phase 2 against the paper's guarantees on a
// real network: every record respects the Alpha slack, reverse paths are
// valid shortest paths, and — Theorem 4 — every Voronoi cell is connected.
func TestVoronoiInvariants(t *testing.T) {
	net := nettest.Grid("smile", 1500, 7, 2)
	g := net.Graph
	p := DefaultParams()
	_, _, _, sites, _, _ := identify(g, p)
	if len(sites) < 2 {
		t.Fatalf("only %d sites", len(sites))
	}
	cellOf, distToSite, records := voronoi(g, sites, p.Alpha)

	// Slack bound and reverse-path validity.
	for v := 0; v < g.N(); v++ {
		if distToSite[v] == graph.Unreachable {
			t.Fatalf("node %d unreachable from every site", v)
		}
		if len(records[v]) == 0 {
			t.Fatalf("node %d has no records", v)
		}
		for _, r := range records[v] {
			if r.D > distToSite[v]+p.Alpha {
				t.Fatalf("node %d records site %d at %d > dmin %d + alpha", v, r.Site, r.D, distToSite[v])
			}
			path := pathToSite(records, int32(v), r.Site)
			if int32(len(path)-1) != r.D {
				t.Fatalf("node %d: path length %d != recorded D %d", v, len(path)-1, r.D)
			}
			for i := 1; i < len(path); i++ {
				if !g.HasEdge(int(path[i-1]), int(path[i])) {
					t.Fatalf("node %d: reverse path uses non-edge %d-%d", v, path[i-1], path[i])
				}
			}
		}
	}

	// Theorem 4: the sub-region of each site is connected.
	for _, s := range sites {
		var members []int32
		for v := 0; v < g.N(); v++ {
			if cellOf[v] == s {
				members = append(members, int32(v))
			}
		}
		if len(members) == 0 {
			t.Fatalf("site %d owns no cell", s)
		}
		sub, _ := g.Subgraph(members)
		if !sub.IsConnected() {
			t.Fatalf("Voronoi cell of site %d is disconnected (%d members)", s, len(members))
		}
	}

	// The cell assignment matches the minimum distance (ties to the lowest
	// site ID).
	siteDist := make(map[int32][]int32, len(sites))
	for _, s := range sites {
		siteDist[s] = g.BFS(int(s))
	}
	for v := 0; v < g.N(); v++ {
		best, bestSite := int32(1<<30), int32(-1)
		for _, s := range sites {
			if d := siteDist[s][v]; d != graph.Unreachable && (d < best || (d == best && s < bestSite)) {
				best, bestSite = d, s
			}
		}
		if distToSite[v] != best || cellOf[v] != bestSite {
			t.Fatalf("node %d: cell %d@%d, want %d@%d", v, cellOf[v], distToSite[v], bestSite, best)
		}
	}
}

// TestIdentifyIndexDefinition checks Defs. 3 and 4 against direct
// recomputation on a small network.
func TestIdentifyIndexDefinition(t *testing.T) {
	net := nettest.Grid("star", 500, 7, 1)
	g := net.Graph
	p := DefaultParams()
	khop, cent, index, sites, kEff, scopeEff := identify(g, p)
	if kEff != p.K {
		t.Fatalf("saturation guard engaged on a normal network: kEff=%d", kEff)
	}
	if scopeEff > p.Scope() {
		t.Fatalf("scopeEff %d exceeds configured scope", scopeEff)
	}
	for v := 0; v < g.N(); v++ {
		if want := g.KHopCount(v, p.K); khop[v] != want {
			t.Fatalf("khop[%d] = %d, want %d", v, khop[v], want)
		}
		sum, count := khop[v], 1
		for _, u := range g.KHopNeighbors(v, p.L) {
			sum += khop[u]
			count++
		}
		want := float64(sum) / float64(count)
		if cent[v] != want {
			t.Fatalf("cent[%d] = %v, want %v", v, cent[v], want)
		}
		if index[v] != (float64(khop[v])+cent[v])/2 {
			t.Fatalf("index[%d] broken", v)
		}
	}
	// Def. 5: sites are exactly the local maxima under the tie-break.
	isSite := make(map[int32]bool, len(sites))
	for _, s := range sites {
		isSite[s] = true
	}
	for v := 0; v < g.N(); v++ {
		maximal := true
		for _, u := range g.KHopNeighbors(v, scopeEff) {
			if index[u] > index[v] || (index[u] == index[v] && u < int32(v)) {
				maximal = false
				break
			}
		}
		if maximal != isSite[int32(v)] {
			t.Fatalf("node %d: local max = %v, site = %v", v, maximal, isSite[int32(v)])
		}
	}
}

// TestExtractDeterministic: the same graph yields the identical skeleton.
func TestExtractDeterministic(t *testing.T) {
	net := nettest.Grid("twoholes", 1200, 7, 4)
	a, err := Extract(net.Graph, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(net.Graph, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	na, nb := a.Skeleton.Nodes(), b.Skeleton.Nodes()
	if len(na) != len(nb) {
		t.Fatalf("non-deterministic skeleton size: %d vs %d", len(na), len(nb))
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("non-deterministic skeleton at %d", i)
		}
	}
}

// TestHomotopyAcrossShapes: the headline invariant on a fast subset of the
// paper's fields (small networks for test speed).
func TestHomotopyAcrossShapes(t *testing.T) {
	tests := []struct {
		shape string
		n     int
		deg   float64
	}{
		{"window", 2592, 6},
		{"smile", 2924, 6.35}, // paper size: the eye holes need enough cells around them
		{"twoholes", 2000, 7},
		{"onehole", 1600, 7},
		{"star", 1000, 7},
		{"spiral", 1800, 9},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.shape, func(t *testing.T) {
			net := nettest.Grid(tt.shape, tt.n, tt.deg, 1)
			res, err := Extract(net.Graph, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Skeleton.CycleRank(), net.Shape.Holes(); got != want {
				t.Errorf("cycle rank = %d, want %d holes", got, want)
			}
			if comps := res.Skeleton.Components(); comps != 1 {
				t.Errorf("skeleton components = %d", comps)
			}
			if res.Skeleton.NumNodes() == 0 {
				t.Error("empty skeleton")
			}
		})
	}
}

// TestSegmentAndVoronoiNodeClassification: the special-node lists agree
// with the record counts.
func TestSegmentAndVoronoiNodeClassification(t *testing.T) {
	net := nettest.Grid("onehole", 1000, 7, 1)
	res, err := Extract(net.Graph, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	seg := make(map[int32]bool, len(res.SegmentNodes))
	for _, v := range res.SegmentNodes {
		seg[v] = true
	}
	vor := make(map[int32]bool, len(res.VoronoiNodes))
	for _, v := range res.VoronoiNodes {
		vor[v] = true
	}
	for v := int32(0); int(v) < net.Graph.N(); v++ {
		if res.IsSegmentNode(v) != seg[v] {
			t.Fatalf("segment classification mismatch at %d", v)
		}
		if res.IsVoronoiNode(v) != vor[v] {
			t.Fatalf("voronoi classification mismatch at %d", v)
		}
		if vor[v] && !seg[v] {
			t.Fatalf("voronoi node %d not a segment node", v)
		}
	}
}

// TestSkeletonNodesAreMedial: skeleton nodes average a clearly larger
// geometric clearance than the network (the "medially placed" claim).
func TestSkeletonNodesAreMedial(t *testing.T) {
	net := nettest.Grid("cactus", 1500, 7, 1)
	res, err := Extract(net.Graph, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var all, skel float64
	for v, p := range net.Points {
		d := net.Shape.Poly.BoundaryDist(p)
		all += d
		if res.Skeleton.Contains(int32(v)) {
			skel += d
		}
	}
	all /= float64(len(net.Points))
	skel /= float64(res.Skeleton.NumNodes())
	if skel < 1.3*all {
		t.Errorf("skeleton clearance %.2f not clearly above network mean %.2f", skel, all)
	}
}

// TestMinSiteGuard: on a dense clique-like graph the guard still elects a
// minimal site population instead of collapsing to one.
func TestMinSiteGuard(t *testing.T) {
	net := nettest.Grid("star", 900, 18, 1)
	khop, _, _, sites, kEff, scopeEff := identify(net.Graph, DefaultParams())
	if len(khop) != net.Graph.N() {
		t.Fatal("khop size")
	}
	if len(sites) < 4 {
		t.Errorf("guard failed: %d sites (kEff=%d scopeEff=%d)", len(sites), kEff, scopeEff)
	}
}
