package core

// SiteDist is one entry of a node's record of almost-equidistant sites.
type SiteDist struct {
	// Site is the critical skeleton node's ID.
	Site int32
	// D is the hop distance from the recording node to Site.
	D int32
	// Parent is the recording node's parent in the shortest-path tree
	// rooted at Site (the "reverse path" kept during Voronoi construction).
	Parent int32
}

// SitePair is an unordered pair of site IDs with A < B.
type SitePair struct {
	A, B int32
}

// MakeSitePair normalises the ordering.
func MakeSitePair(a, b int32) SitePair {
	if a > b {
		a, b = b, a
	}
	return SitePair{A: a, B: b}
}

// SiteEdge is a connection between two adjacent sites through a chosen
// segment node (Sec. III-C).
type SiteEdge struct {
	// Pair identifies the two sites.
	Pair SitePair
	// Connector is the segment node with the largest index among the
	// pair's segment nodes.
	Connector int32
	// Path is the full node path from Pair.A through Connector to Pair.B.
	Path []int32
	// EndNodes are the two farthest-apart segment nodes of the pair,
	// used during loop identification (Sec. III-D). They may coincide
	// with the connector for point-adjacent cells.
	EndNodes [2]int32
	// SegmentCount is the number of segment nodes between the two cells
	// (>1 means edge-adjacent, ==1 point-adjacent).
	SegmentCount int
}

// LoopKind classifies an identified skeleton loop.
type LoopKind int

// Loop classification outcomes.
const (
	// LoopGenuine is a loop caused by a hole; it is kept so the skeleton
	// stays homotopic to the network.
	LoopGenuine LoopKind = iota + 1
	// LoopFake is a loop caused by three or more mutually adjacent Voronoi
	// cells; it is merged and deleted during refinement.
	LoopFake
)

// String implements fmt.Stringer.
func (k LoopKind) String() string {
	switch k {
	case LoopGenuine:
		return "genuine"
	case LoopFake:
		return "fake"
	default:
		return "unknown"
	}
}

// Loop is an identified cycle of the coarse skeleton.
type Loop struct {
	Kind LoopKind
	// Sites are the sites on the loop.
	Sites []int32
	// Hub is the pocket node through which a deleted fake loop was
	// re-skeletonized (-1 for genuine loops).
	Hub int32
	// EndLoopLen is the measured end-node loop length that classified the
	// loop (fake loops only).
	EndLoopLen int32
}

// Skeleton is a node-level skeleton: a subset of network nodes plus the
// connectivity among them induced by the site-edge paths. Adjacency is a
// per-node offset into a shared chunk arena: skeleton degrees are tiny
// (mostly 2, a junction handful more), so lists start as 4-slot chunks and
// relocate within the arena on the rare spill. The layout keeps the
// per-node footprint at one int32 and makes Clone two bulk copies.
type Skeleton struct {
	n    int
	isOn []bool
	// off[v] is the arena index of v's chunk, 0 when v has no neighbors
	// (index 0 is a sentinel so the zero value means "none").
	off []int32
	// arena holds neighbor chunks laid out as [cap, len, entries...].
	arena []int32
	edges int
}

// skelChunk is the initial chunk capacity; skeleton degree rarely exceeds 4.
const skelChunk = 4

// NewSkeleton creates an empty skeleton over a network of n nodes.
func NewSkeleton(n int) *Skeleton {
	return &Skeleton{n: n, isOn: make([]bool, n), off: make([]int32, n), arena: make([]int32, 1, 64)}
}

// AddPath marks every node of the path as a skeleton node and links
// consecutive nodes.
func (s *Skeleton) AddPath(path []int32) {
	for i, v := range path {
		s.isOn[v] = true
		if i > 0 {
			s.addEdge(path[i-1], v)
		}
	}
}

// addEdge inserts an undirected edge once.
func (s *Skeleton) addEdge(u, v int32) {
	if u == v || s.hasEdge(u, v) {
		return
	}
	s.addNbr(u, v)
	s.addNbr(v, u)
	s.edges++
}

// addNbr appends w to v's chunk, allocating or relocating it in the arena as
// needed (a relocated chunk's old slots stay behind as dead arena words —
// bounded, since few nodes ever outgrow the initial capacity).
func (s *Skeleton) addNbr(v, w int32) {
	o := s.off[v]
	if o == 0 {
		o = int32(len(s.arena))
		s.arena = append(s.arena, skelChunk, 0, 0, 0, 0, 0)
		s.off[v] = o
	}
	c, l := s.arena[o], s.arena[o+1]
	if l == c {
		no := int32(len(s.arena))
		s.arena = append(s.arena, 2*c, l)
		s.arena = append(s.arena, s.arena[o+2:o+2+l]...)
		for i := l; i < 2*c; i++ {
			s.arena = append(s.arena, 0)
		}
		o = no
		s.off[v] = o
	}
	s.arena[o+2+s.arena[o+1]] = w
	s.arena[o+1]++
}

func (s *Skeleton) hasEdge(u, v int32) bool {
	for _, w := range s.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// RemoveNode deletes v and all its incident edges.
func (s *Skeleton) RemoveNode(v int32) {
	if !s.isOn[v] {
		return
	}
	s.isOn[v] = false
	for _, w := range s.Neighbors(v) {
		s.removeDirected(w, v)
		s.edges--
	}
	s.off[v] = 0
}

func (s *Skeleton) removeDirected(u, v int32) {
	nbrs := s.Neighbors(u)
	for i, w := range nbrs {
		if w == v {
			nbrs[i] = nbrs[len(nbrs)-1]
			s.arena[s.off[u]+1]--
			return
		}
	}
}

// RemoveEdge deletes the undirected edge {u, v} if present. Nodes left
// isolated remain skeleton nodes until explicitly removed.
func (s *Skeleton) RemoveEdge(u, v int32) {
	if !s.hasEdge(u, v) {
		return
	}
	s.removeDirected(u, v)
	s.removeDirected(v, u)
	s.edges--
}

// Contains reports whether v is a skeleton node.
func (s *Skeleton) Contains(v int32) bool { return s.isOn[v] }

// Mask returns a copy of the skeleton-membership mask over all n nodes.
func (s *Skeleton) Mask() []bool {
	out := make([]bool, len(s.isOn))
	copy(out, s.isOn)
	return out
}

// Nodes returns the sorted skeleton node IDs.
func (s *Skeleton) Nodes() []int32 {
	out := make([]int32, 0, 256)
	for v := int32(0); int(v) < s.n; v++ {
		if s.isOn[v] {
			out = append(out, v)
		}
	}
	return out
}

// Neighbors returns the skeleton-adjacent nodes of v. The returned slice is
// a live view into the arena: valid until the next addEdge, and mutated in
// place by edge removals.
func (s *Skeleton) Neighbors(v int32) []int32 {
	o := s.off[v]
	if o == 0 {
		return nil
	}
	return s.arena[o+2 : o+2+s.arena[o+1]]
}

// Degree returns the skeleton degree of v.
func (s *Skeleton) Degree(v int32) int {
	o := s.off[v]
	if o == 0 {
		return 0
	}
	return int(s.arena[o+1])
}

// NumNodes returns the number of skeleton nodes.
func (s *Skeleton) NumNodes() int {
	n := 0
	for _, on := range s.isOn {
		if on {
			n++
		}
	}
	return n
}

// NumEdges returns the number of skeleton edges.
func (s *Skeleton) NumEdges() int { return s.edges }

// CycleRank returns E - V + C, the number of independent cycles: it must
// equal the number of holes for the skeleton to be homotopic to the network
// region (Sec. III-D).
func (s *Skeleton) CycleRank() int {
	nodes := s.Nodes()
	if len(nodes) == 0 {
		return 0
	}
	seen := make(map[int32]bool, len(nodes))
	comps := 0
	var stack []int32
	for _, v := range nodes {
		if seen[v] {
			continue
		}
		comps++
		seen[v] = true
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range s.Neighbors(u) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return s.edges - len(nodes) + comps
}

// Components returns the number of connected components of the skeleton.
func (s *Skeleton) Components() int {
	nodes := s.Nodes()
	seen := make(map[int32]bool, len(nodes))
	comps := 0
	var stack []int32
	for _, v := range nodes {
		if seen[v] {
			continue
		}
		comps++
		seen[v] = true
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range s.Neighbors(u) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return comps
}

// Clone returns a deep copy of the skeleton.
func (s *Skeleton) Clone() *Skeleton {
	return &Skeleton{
		n:     s.n,
		isOn:  append([]bool(nil), s.isOn...),
		off:   append([]int32(nil), s.off...),
		arena: append([]int32(nil), s.arena...),
		edges: s.edges,
	}
}

// Result carries every artifact of one extraction run.
type Result struct {
	// Params echoes the configuration used.
	Params Params
	// EffectiveK and EffectiveScope are the radii actually used after the
	// saturation guard (see identify); they equal Params.K and the
	// configured scope on ordinary networks.
	EffectiveK     int
	EffectiveScope int

	// KHopSize is |N_K(p)| per node.
	KHopSize []int
	// LCentrality is c_L(p) per node (Def. 3).
	LCentrality []float64
	// Index is i(p) per node (Def. 4).
	Index []float64

	// Sites are the critical skeleton nodes (Def. 5), sorted by ID.
	Sites []int32
	// CellOf maps each node to the site whose Voronoi cell it belongs to
	// (-1 for nodes unreachable from every site).
	CellOf []int32
	// DistToSite is the hop distance to the nearest site (-1 unreachable).
	DistToSite []int32
	// Records holds, per node, the almost-equidistant sites it kept during
	// Voronoi construction (>= 2 entries makes it a segment node, >= 3 a
	// Voronoi node).
	Records [][]SiteDist
	// SegmentNodes and VoronoiNodes list those special nodes, sorted.
	SegmentNodes []int32
	VoronoiNodes []int32

	// Edges are the site-to-site connections of the coarse skeleton.
	Edges []SiteEdge
	// Coarse is the coarse skeleton before refinement.
	Coarse *Skeleton
	// Loops are the identified loops with their classification.
	Loops []Loop
	// Skeleton is the refined, final skeleton.
	Skeleton *Skeleton

	// Boundary is the boundary by-product: node IDs classified as
	// boundary nodes.
	Boundary []int32

	// Stats instruments the run that produced this result: per-phase wall
	// time plus work and outcome counters. The staged engine always
	// populates it; it is nil on results assembled by hand, and excluded
	// from result equality (two identical extractions differ only here).
	Stats *Stats `json:",omitempty"`
}

// IsSegmentNode reports whether v recorded two or more sites.
func (r *Result) IsSegmentNode(v int32) bool { return len(r.Records[v]) >= 2 }

// IsVoronoiNode reports whether v recorded three or more sites.
func (r *Result) IsVoronoiNode(v int32) bool { return len(r.Records[v]) >= 3 }

// NumGenuineLoops counts loops classified as genuine.
func (r *Result) NumGenuineLoops() int {
	n := 0
	for _, l := range r.Loops {
		if l.Kind == LoopGenuine {
			n++
		}
	}
	return n
}

// NumFakeLoops counts loops classified as fake.
func (r *Result) NumFakeLoops() int {
	n := 0
	for _, l := range r.Loops {
		if l.Kind == LoopFake {
			n++
		}
	}
	return n
}
