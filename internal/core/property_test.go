package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bfskel/internal/geom"
	"bfskel/internal/graph"
	"bfskel/internal/radio"
)

// randomNetwork builds a random geometric graph (largest component).
func randomNetwork(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*40, rng.Float64()*40)
	}
	g := graph.Build(pts, radio.UDG{R: 3.4}, seed)
	sub, _ := g.Subgraph(g.LargestComponent())
	return sub
}

// TestExtractionInvariants is a property check over random geometric
// graphs: whatever the topology, the pipeline's structural invariants must
// hold — skeleton edges are graph edges, skeleton nodes were deployed,
// cells point at real sites with consistent distances, and every coarse
// edge runs site-to-site through a connector that recorded both.
func TestExtractionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomNetwork(seed, 250+int(uint64(seed)%250))
		res, err := Extract(g, DefaultParams())
		if err == ErrNoSites {
			return true // degenerate but legal outcome on tiny cliques
		}
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}

		siteSet := make(map[int32]bool, len(res.Sites))
		for _, s := range res.Sites {
			siteSet[s] = true
		}
		// Skeleton structure is embedded in the graph.
		for _, v := range res.Skeleton.Nodes() {
			if int(v) >= g.N() {
				t.Logf("seed %d: skeleton node %d out of range", seed, v)
				return false
			}
			for _, u := range res.Skeleton.Neighbors(v) {
				if !g.HasEdge(int(v), int(u)) {
					t.Logf("seed %d: skeleton edge %d-%d not a graph edge", seed, v, u)
					return false
				}
			}
		}
		// Cells: every node points at a real site at its recorded distance.
		for v := 0; v < g.N(); v++ {
			c := res.CellOf[v]
			if c < 0 {
				t.Logf("seed %d: node %d unassigned", seed, v)
				return false
			}
			if !siteSet[c] {
				t.Logf("seed %d: cell of %d is non-site %d", seed, v, c)
				return false
			}
			if res.DistToSite[v] < 0 {
				return false
			}
		}
		// Coarse edges: endpoints are sites, the connector recorded both,
		// and the path runs endpoint to endpoint over graph edges.
		for _, e := range res.Edges {
			if !siteSet[e.Pair.A] || !siteSet[e.Pair.B] {
				t.Logf("seed %d: edge endpoints not sites", seed)
				return false
			}
			if _, ok := recordFor(res.Records, e.Connector, e.Pair.A); !ok {
				return false
			}
			if _, ok := recordFor(res.Records, e.Connector, e.Pair.B); !ok {
				return false
			}
			if e.Path[0] != e.Pair.A || e.Path[len(e.Path)-1] != e.Pair.B {
				t.Logf("seed %d: path endpoints wrong", seed)
				return false
			}
			for i := 1; i < len(e.Path); i++ {
				if !g.HasEdge(int(e.Path[i-1]), int(e.Path[i])) {
					t.Logf("seed %d: path uses non-edge", seed)
					return false
				}
			}
		}
		// Loops are classified, never unknown.
		for _, l := range res.Loops {
			if l.Kind != LoopGenuine && l.Kind != LoopFake {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCompleteFromVoronoiMatchesExtract: feeding Extract's own phase 1-2
// artifacts through CompleteFromVoronoi reproduces the identical skeleton.
func TestCompleteFromVoronoiMatchesExtract(t *testing.T) {
	g := randomNetwork(7, 400)
	want, err := Extract(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := CompleteFromVoronoi(g, want.Params, want.KHopSize, want.Index, want.Sites, want.Records)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := want.Skeleton.Nodes(), got.Skeleton.Nodes()
	if len(na) != len(nb) {
		t.Fatalf("skeleton sizes differ: %d vs %d", len(na), len(nb))
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("skeleton differs at %d", i)
		}
	}
	for v := range want.CellOf {
		if want.CellOf[v] != got.CellOf[v] || want.DistToSite[v] != got.DistToSite[v] {
			t.Fatalf("cell assignment differs at %d", v)
		}
	}
}

func TestCompleteFromVoronoiValidation(t *testing.T) {
	g := randomNetwork(1, 100)
	p := DefaultParams()
	if _, err := CompleteFromVoronoi(graph.New(0), p, nil, nil, nil, nil); err != ErrEmptyGraph {
		t.Errorf("empty graph err = %v", err)
	}
	if _, err := CompleteFromVoronoi(g, p, make([]int, g.N()), make([]float64, g.N()), nil, make([][]SiteDist, g.N())); err != ErrNoSites {
		t.Errorf("no sites err = %v", err)
	}
	if _, err := CompleteFromVoronoi(g, p, make([]int, 3), make([]float64, g.N()), []int32{0}, make([][]SiteDist, g.N())); err == nil {
		t.Error("size mismatch accepted")
	}
	bad := p
	bad.K = -1
	if _, err := CompleteFromVoronoi(g, bad, make([]int, g.N()), make([]float64, g.N()), []int32{0}, make([][]SiteDist, g.N())); err == nil {
		t.Error("invalid params accepted")
	}
}
