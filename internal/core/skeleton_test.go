package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSkeletonAddPath(t *testing.T) {
	s := NewSkeleton(10)
	s.AddPath([]int32{0, 1, 2, 3})
	if s.NumNodes() != 4 || s.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", s.NumNodes(), s.NumEdges())
	}
	// Re-adding the same path must not duplicate edges.
	s.AddPath([]int32{0, 1, 2, 3})
	if s.NumEdges() != 3 {
		t.Errorf("duplicate AddPath created edges: %d", s.NumEdges())
	}
	// Overlapping path shares the 2-3 link.
	s.AddPath([]int32{2, 3, 4})
	if s.NumNodes() != 5 || s.NumEdges() != 4 {
		t.Errorf("after overlap: nodes=%d edges=%d", s.NumNodes(), s.NumEdges())
	}
	if !s.Contains(4) || s.Contains(9) {
		t.Error("Contains wrong")
	}
	if s.Degree(2) != 2 || s.Degree(3) != 2 {
		t.Errorf("degrees: %d, %d", s.Degree(2), s.Degree(3))
	}
}

func TestSkeletonRemove(t *testing.T) {
	s := NewSkeleton(6)
	s.AddPath([]int32{0, 1, 2, 3, 0}) // a 4-cycle
	if s.CycleRank() != 1 {
		t.Fatalf("rank = %d", s.CycleRank())
	}
	s.RemoveEdge(1, 2)
	if s.CycleRank() != 0 || s.NumEdges() != 3 {
		t.Errorf("after RemoveEdge: rank=%d edges=%d", s.CycleRank(), s.NumEdges())
	}
	// Removing a missing edge is a no-op.
	s.RemoveEdge(0, 2)
	if s.NumEdges() != 3 {
		t.Error("RemoveEdge of absent edge changed state")
	}
	s.RemoveNode(0)
	if s.Contains(0) || s.NumEdges() != 1 {
		t.Errorf("after RemoveNode: contains=%v edges=%d", s.Contains(0), s.NumEdges())
	}
	// Removing a non-member is a no-op.
	s.RemoveNode(5)
	if s.NumNodes() != 3 {
		t.Errorf("nodes = %d", s.NumNodes())
	}
}

func TestSkeletonComponentsAndRank(t *testing.T) {
	s := NewSkeleton(12)
	s.AddPath([]int32{0, 1, 2, 0})  // triangle: rank 1
	s.AddPath([]int32{5, 6, 7})     // path: rank 0
	s.AddPath([]int32{8, 9, 10, 8}) // triangle: rank 1
	if got := s.Components(); got != 3 {
		t.Errorf("components = %d", got)
	}
	if got := s.CycleRank(); got != 2 {
		t.Errorf("rank = %d", got)
	}
	var empty Skeleton
	if empty.CycleRank() != 0 || empty.Components() != 0 {
		t.Error("empty skeleton rank/components")
	}
}

func TestSkeletonClone(t *testing.T) {
	s := NewSkeleton(5)
	s.AddPath([]int32{0, 1, 2})
	c := s.Clone()
	c.RemoveNode(1)
	if !s.Contains(1) || s.NumEdges() != 2 {
		t.Error("clone mutation leaked into the original")
	}
	if c.Contains(1) {
		t.Error("clone not mutated")
	}
}

func TestSkeletonNodesSorted(t *testing.T) {
	s := NewSkeleton(10)
	s.AddPath([]int32{7, 3, 9})
	s.isOn[5] = true // isolated member via mask only
	nodes := s.Nodes()
	want := []int32{3, 5, 7, 9}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
	mask := s.Mask()
	mask[3] = false // must be a copy
	if !s.Contains(3) {
		t.Error("Mask returned shared storage")
	}
}

// TestCycleRankProperty: for random skeletons, CycleRank == E - V + C.
func TestCycleRankProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		s := NewSkeleton(n)
		edges := 0
		for i := 0; i < 2*n; i++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			if a == b {
				continue
			}
			before := s.NumEdges()
			s.AddPath([]int32{a, b})
			if s.NumEdges() > before {
				edges++
			}
		}
		return s.CycleRank() == edges-len(s.Nodes())+s.Components()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPruneBranches(t *testing.T) {
	// A triangle with a short spur and a long tail.
	s := NewSkeleton(20)
	s.AddPath([]int32{0, 1, 2, 0})
	s.AddPath([]int32{1, 10})                 // spur of length 1
	s.AddPath([]int32{2, 11, 12, 13, 14, 15}) // tail of length 5
	pruneBranches(s, 3)
	if s.Contains(10) {
		t.Error("short spur survived pruning")
	}
	if !s.Contains(15) {
		t.Error("long tail pruned")
	}
	if s.CycleRank() != 1 {
		t.Errorf("rank after pruning = %d", s.CycleRank())
	}
	// A free-standing path (no junction) is never erased.
	p := NewSkeleton(5)
	p.AddPath([]int32{0, 1})
	pruneBranches(p, 10)
	if p.NumNodes() != 2 {
		t.Error("free-standing path erased")
	}
}

func TestPruneBranchesIterates(t *testing.T) {
	// Pruning one branch may expose another short one: star of three
	// 2-chains around node 0 plus a triangle keeping 0 a junction.
	s := NewSkeleton(20)
	s.AddPath([]int32{0, 1, 2, 0})
	s.AddPath([]int32{0, 3, 4}) // chain of 2 < minLen 3
	pruneBranches(s, 3)
	if s.Contains(3) || s.Contains(4) {
		t.Error("chain not pruned")
	}
}

func TestMakeSitePair(t *testing.T) {
	if p := MakeSitePair(5, 2); p.A != 2 || p.B != 5 {
		t.Errorf("pair = %v", p)
	}
	if p := MakeSitePair(2, 5); p.A != 2 || p.B != 5 {
		t.Errorf("pair = %v", p)
	}
}

func TestLoopKindString(t *testing.T) {
	if LoopGenuine.String() != "genuine" || LoopFake.String() != "fake" {
		t.Error("LoopKind strings")
	}
	if LoopKind(0).String() != "unknown" {
		t.Error("zero LoopKind string")
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"default", func(*Params) {}, false},
		{"zero K", func(p *Params) { p.K = 0 }, true},
		{"zero L", func(p *Params) { p.L = 0 }, true},
		{"negative scope", func(p *Params) { p.LocalMaxScope = -1 }, true},
		{"negative alpha", func(p *Params) { p.Alpha = -1 }, true},
		{"negative prune", func(p *Params) { p.PruneLen = -1 }, true},
		{"negative slack", func(p *Params) { p.FakeLoopSlack = -1 }, true},
		{"explicit scope", func(p *Params) { p.LocalMaxScope = 2 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	p := DefaultParams()
	if p.Scope() != p.L {
		t.Errorf("default scope = %d, want L", p.Scope())
	}
	p.LocalMaxScope = 2
	if p.Scope() != 2 {
		t.Errorf("explicit scope = %d", p.Scope())
	}
}

func TestStampedUnionFind(t *testing.T) {
	var uf stampedUF
	uf.reset(8)
	if !uf.union(1, 2) {
		t.Error("first union should merge")
	}
	if uf.union(2, 1) {
		t.Error("repeated union should not merge")
	}
	uf.union(3, 4)
	if uf.find(1) == uf.find(3) {
		t.Error("disjoint sets merged")
	}
	uf.union(2, 3)
	if uf.find(1) != uf.find(4) {
		t.Error("transitive union broken")
	}
	// An epoch reset must return every element to a singleton.
	uf.reset(8)
	if uf.find(1) == uf.find(2) {
		t.Error("reset did not clear prior unions")
	}
	if !uf.union(5, 6) {
		t.Error("post-reset union should merge")
	}
}

func TestUnionFindDense(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	if uf.find(0) != uf.find(1) || uf.find(0) == uf.find(3) {
		t.Error("dense union-find wrong")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(4) {
		t.Error("transitive union broken")
	}
}
