package core

import (
	"errors"
	"fmt"
	"sort"

	"bfskel/internal/graph"
)

// ErrEmptyGraph is returned when extraction is attempted on a graph with no
// nodes.
var ErrEmptyGraph = errors.New("core: empty graph")

// ErrNoSites is returned when no node identifies itself as a critical
// skeleton node; this indicates a degenerate network (e.g. a clique, where
// every node sees every other).
var ErrNoSites = errors.New("core: no critical skeleton nodes identified")

// Extract runs the full four-phase pipeline of Sec. III on the connectivity
// graph and returns every intermediate and final artifact. The graph should
// be connected; on a disconnected graph each component containing a site is
// processed and the rest is left unassigned.
//
// This is the one-shot compatibility form of the staged engine: it builds a
// throwaway Extractor per call. Callers running many extractions should
// hold one Extractor (or use ExtractBatch) so the scratch pools amortize.
func Extract(g *graph.Graph, p Params) (*Result, error) {
	return NewExtractor(g).Extract(p)
}

// CompleteFromVoronoi runs phases 3-4 (coarse skeleton establishment and
// final clean-up) plus the by-products on top of externally computed
// phase 1-2 artifacts — typically the outputs of the distributed protocols
// in package protocol — turning them into a full extraction result. The
// attached Stats instruments only the stages that ran.
//
// khop and index must cover every node; sites must be the elected critical
// skeleton nodes; records the per-node Voronoi records with reverse-path
// parents.
func CompleteFromVoronoi(g *graph.Graph, p Params, khop []int, index []float64,
	sites []int32, records [][]SiteDist) (*Result, error) {

	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g.N() == 0 {
		return nil, ErrEmptyGraph
	}
	if len(sites) == 0 {
		return nil, ErrNoSites
	}
	if len(khop) != g.N() || len(index) != g.N() || len(records) != g.N() {
		return nil, fmt.Errorf("core: artifact sizes (%d, %d, %d) do not match graph size %d",
			len(khop), len(index), len(records), g.N())
	}
	// Derive the cell assignment and distances from the records: the
	// nearest recorded site (lowest ID on ties), matching the flooding
	// semantics.
	n := g.N()
	cellOf := make([]int32, n)
	distToSite := make([]int32, n)
	for v := 0; v < n; v++ {
		cellOf[v] = -1
		distToSite[v] = graph.Unreachable
		for _, r := range records[v] {
			better := distToSite[v] == graph.Unreachable ||
				r.D < distToSite[v] ||
				(r.D == distToSite[v] && r.Site < cellOf[v])
			if better {
				distToSite[v] = r.D
				cellOf[v] = r.Site
			}
		}
	}
	res := &Result{
		Params:         p,
		EffectiveK:     p.K,
		EffectiveScope: p.Scope(),
		KHopSize:       khop,
		Index:          index,
		Sites:          sites,
		CellOf:         cellOf,
		DistToSite:     distToSite,
		Records:        records,
	}
	rs := &runState{e: NewExtractor(g), g: g, p: p, res: res, stats: newStats()}
	rs.stats.Sites = len(sites)
	if err := rs.runStages(stages[2:]); err != nil {
		return nil, err
	}
	return res, nil
}

// boundaryByProduct classifies boundary nodes from the K-hop neighborhood
// sizes: nodes close to a boundary see markedly fewer K-hop neighbors than
// interior nodes (the observation of Fekete et al. the paper builds on).
// A node is a boundary node when its K-hop size is below boundaryFraction
// of the component median.
func (e *Extractor) boundaryByProduct(khop []int) []int32 {
	const boundaryFraction = 0.85
	if len(khop) == 0 {
		return nil
	}
	median := float64(medianKHop(khop, &e.ints))
	cut := boundaryFraction * median
	var out []int32
	for v, s := range khop {
		if float64(s) < cut && e.g.Degree(v) > 0 {
			out = append(out, int32(v))
		}
	}
	return out
}

// medianKHop returns the order statistic khop-sorted[len/2] — the exact
// value the historical sort-based median produced — via a counting pass
// when the value range is compact (ball sizes are bounded by the network
// size, so this is the common case) and a sort of the scratch buffer
// otherwise. The incremental update path recomputes the boundary stage per
// churn batch, so the O(n log n) sort would dominate its budget.
func medianKHop(khop []int, scratch *[]int) int {
	n := len(khop)
	maxV := 0
	for _, s := range khop {
		if s > maxV {
			maxV = s
		}
	}
	if maxV <= 4*n {
		counts := growInts(*scratch, maxV+1)
		*scratch = counts
		for i := range counts {
			counts[i] = 0
		}
		for _, s := range khop {
			counts[s]++
		}
		// sorted[n/2] is the (n/2+1)-th smallest value.
		need := n/2 + 1
		seen := 0
		for v, c := range counts {
			seen += c
			if seen >= need {
				return v
			}
		}
	}
	sorted := growInts(*scratch, n)
	*scratch = sorted
	copy(sorted, khop)
	sort.Ints(sorted)
	return sorted[n/2]
}
