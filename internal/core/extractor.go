package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bfskel/internal/graph"
	"bfskel/internal/obs"
)

// Extractor is the staged extraction engine: it runs the pipeline stages
// Identify → Voronoi → Coarse → Refine → Boundary over one graph while
// owning every piece of reusable scratch state — the ball-size matrix, BFS
// distance/stamp/queue buffers, a Walker pool, per-node flag arrays sized
// to the graph — so repeated extractions (parameter sweeps, the experiment
// harness, benchmarks) stop paying the allocation cost of a cold start.
//
// Reuse contract: an Extractor is NOT safe for concurrent use; run one
// extraction at a time per engine and create several engines for
// parallelism (they share nothing). Every *Result it returns is fully
// independent — no Result field aliases engine scratch — so results stay
// valid across later Extract and Bind calls and across engine disposal.
type Extractor struct {
	g *graph.Graph

	// CollectMemStats enables per-phase allocation accounting
	// (Stats.Phases[i].BytesAlloc) via runtime.ReadMemStats. Off by
	// default: the read is stop-the-world and would distort benchmarks.
	CollectMemStats bool

	// Tracer, when non-nil, receives one "extract" span per run with one
	// "stage.<name>" child span per pipeline stage, plus events for guard
	// adjustments, election rounds and flood counts. The per-stage
	// PhaseStats attached to results are derived views over these spans
	// (same stage boundaries, same measured duration). Nil disables
	// tracing at the cost of a few nil checks per stage.
	Tracer *obs.Tracer
	// Metrics, when non-nil, accumulates run/stage counters and timing
	// histograms across extractions (see DESIGN.md for the name taxonomy).
	Metrics *obs.Registry

	walkers *sync.Pool // of *graph.Walker bound to g

	// root and span track the active run's trace spans; sweeps/visited
	// aggregate BFS work drained from pooled walkers (atomic: walkers are
	// released from parallel workers).
	root    *obs.Span
	span    *obs.Span
	sweeps  atomic.Int64
	visited atomic.Int64

	// Reusable scratch; none of it escapes into results.
	ballsFlat []int                 // n*maxR cumulative ball sizes (identify)
	balls     [][]int               // row views into ballsFlat
	wsums     []int                 // batched-kernel centrality sums (identify)
	ints      []int                 // median / boundary sort scratch
	bools     []bool                // electSites maximality flags
	visitLog  graph.VisitLog        // identify: recorded ball flood for centrality replay
	vorDist   []int32               // voronoi: per-site BFS distances
	vorStamp  []int32               // voronoi: visit stamps
	vorQueue  []int32               // voronoi: BFS queue / dmin frontier
	vorQueue2 []int32               // voronoi: dmin next frontier (parallel pass)
	vorRank   []int32               // voronoi: node -> Z-curve rank for site batching
	vorSites  []int32               // voronoi: Z-sorted site buffer
	vorCnt    []int32               // voronoi: per-node record counts for arena layout
	vorVisits [][]graph.PrunedVisit // voronoi: per-batch pruned-flood outputs
	vorCand   [][]int32             // voronoi: per-chunk frontier candidates (parallel dmin)
	fld       floodScratch          // coarse/refine: stamped BFS + mark scratch
	uf        stampedUF             // refine: dense stamped union-find over node IDs
	pairBuf   []pairSeg             // coarse: (pair, segment node) tuples
	cmask     []bool                // refine: classify skeleton-membership mask
	cmaskOn   []int32               // refine: set bits of cmask, for O(set) clearing
	inc       incScratch            // incremental updates: dirty queue, dial buckets, repair stamps
}

// NewExtractor creates a staged engine bound to g. The scratch pools are
// filled lazily on first use.
func NewExtractor(g *graph.Graph) *Extractor {
	e := &Extractor{}
	e.rebind(g)
	return e
}

// Bind re-targets the engine at a different graph, keeping whatever
// scratch capacity carries over (buffers only grow). Binding the current
// graph is a no-op, preserving the Walker pool.
func (e *Extractor) Bind(g *graph.Graph) {
	if e.g != g {
		e.rebind(g)
	}
}

func (e *Extractor) rebind(g *graph.Graph) {
	e.g = g
	// Walkers hold per-graph buffers; a graph change invalidates the pool.
	e.walkers = &sync.Pool{New: func() any { return graph.NewWalker(g) }}
}

// Graph returns the graph the engine is bound to.
func (e *Extractor) Graph() *graph.Graph { return e.g }

func (e *Extractor) getWalker() *graph.Walker { return e.walkers.Get().(*graph.Walker) }

func (e *Extractor) putWalker(w *graph.Walker) {
	// Drain the walker's BFS work tally into the per-stage aggregate. This
	// runs a handful of times per stage (once per worker), so the atomics
	// are noise.
	sweeps, visited := w.TakeCounts()
	e.sweeps.Add(int64(sweeps))
	e.visited.Add(int64(visited))
	e.walkers.Put(w)
}

// event annotates the active stage span; inert when tracing is off.
func (e *Extractor) event(name string, attrs ...obs.Attr) {
	e.span.Event(name, attrs...)
}

// Extract runs the full staged pipeline and returns the result with its
// instrumentation attached (Result.Stats).
func (e *Extractor) Extract(p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e.g.N() == 0 {
		return nil, ErrEmptyGraph
	}
	rs := &runState{e: e, g: e.g, p: p, res: &Result{Params: p}, stats: newStats()}
	if err := rs.runStages(stages); err != nil {
		return nil, err
	}
	return rs.res, nil
}

// BatchJob is one extraction of a batch: a graph plus its parameters.
type BatchJob struct {
	G *graph.Graph
	P Params
}

// ExtractBatch runs every job through a single pooled engine, amortizing
// scratch allocations across many networks and parameter sets. Jobs over
// the same *graph.Graph reuse the full pool (including Walkers); a graph
// change rebinds the engine and only carries the buffer capacity over, so
// ordering jobs by graph maximises reuse. It fails fast on the first
// erroring job.
func ExtractBatch(jobs []BatchJob) ([]*Result, error) {
	return ExtractBatchObs(jobs, nil, nil)
}

// ExtractBatchObs is ExtractBatch with the given tracer and metrics
// attached to the shared engine; each job's run emits its own "extract"
// span tree. Both handles may be nil.
func ExtractBatchObs(jobs []BatchJob, tracer *obs.Tracer, metrics *obs.Registry) ([]*Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	e := NewExtractor(jobs[0].G)
	e.Tracer, e.Metrics = tracer, metrics
	out := make([]*Result, len(jobs))
	for i, job := range jobs {
		e.Bind(job.G)
		res, err := e.Extract(job.P)
		if err != nil {
			return nil, fmt.Errorf("core: batch job %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// stage is one named phase of the staged engine.
type stage interface {
	name() string
	run(rs *runState) error
}

// stages is the full pipeline in execution order. CompleteFromVoronoi
// enters at coarseStage with externally computed phase 1-2 artifacts.
var stages = []stage{
	identifyStage{}, voronoiStage{}, coarseStage{}, refineStage{}, boundaryStage{},
}

// runState carries one extraction through the stage pipeline.
type runState struct {
	e     *Extractor
	g     *graph.Graph
	p     Params
	res   *Result
	stats *Stats
}

func newStats() *Stats {
	return &Stats{Phases: make([]PhaseStats, 0, len(stages))}
}

// runStages executes the given pipeline suffix, wrapping the run in an
// "extract" trace span with one child span per stage, and attaches the
// stats to the result. PhaseStats are derived views over the stage spans:
// both share the stage boundaries and the single duration measurement
// taken in runStage.
func (rs *runState) runStages(todo []stage) error {
	e := rs.e
	e.root = e.Tracer.StartSpan("extract",
		obs.Int("nodes", rs.g.N()), obs.Int("k", rs.p.K), obs.Int("l", rs.p.L),
		obs.Int("scope", rs.p.Scope()), obs.Int("alpha", int(rs.p.Alpha)),
		obs.Int("stages", len(todo)))
	start := time.Now() //lint:allow determinism Stats.Total is wall-clock timing, not part of the result
	for _, st := range todo {
		if err := rs.runStage(st); err != nil {
			e.root.End(obs.Str("error", err.Error()))
			e.root = nil
			return err
		}
	}
	rs.stats.Total = time.Since(start)
	rs.res.Stats = rs.stats
	e.root.End(
		obs.Int("sites", rs.stats.Sites), obs.Int("edges", rs.stats.Edges),
		obs.Int("boundaryNodes", rs.stats.BoundaryNodes))
	e.root = nil
	if m := e.Metrics; m != nil {
		m.Counter("bfskel_extract_runs_total").Inc()
		m.Histogram("bfskel_extract_seconds", obs.DurationBuckets).Observe(rs.stats.Total.Seconds())
		m.Gauge("bfskel_extract_sites").Set(float64(rs.stats.Sites))
		m.Counter("bfskel_election_rounds_total").Add(int64(rs.stats.ElectionRounds))
		m.Counter(obs.Label("bfskel_guard_adjustments_total", "kind", "k")).Add(int64(rs.stats.KAdjustments))
		m.Counter(obs.Label("bfskel_guard_adjustments_total", "kind", "scope")).Add(int64(rs.stats.ScopeAdjustments))
		m.Counter("bfskel_voronoi_floods_total").Add(int64(rs.stats.Floods))
	}
	return nil
}

func (rs *runState) runStage(st stage) error {
	e := rs.e
	var before runtime.MemStats
	if e.CollectMemStats {
		runtime.ReadMemStats(&before)
	}
	sweeps0, visited0 := e.sweeps.Load(), e.visited.Load()
	e.span = e.root.StartSpan("stage." + st.name())
	t0 := time.Now() //lint:allow determinism PhaseStats.Duration is wall-clock timing, not part of the result
	err := st.run(rs)
	d := time.Since(t0)
	sweeps, visited := e.sweeps.Load()-sweeps0, e.visited.Load()-visited0
	if err != nil {
		e.span.End(obs.Int64("sweeps", sweeps), obs.Int64("visited", visited),
			obs.Str("error", err.Error()))
	} else {
		e.span.End(obs.Int64("sweeps", sweeps), obs.Int64("visited", visited))
	}
	e.span = nil
	ps := PhaseStats{Name: st.name(), Duration: d, Sweeps: sweeps, Visited: visited}
	if e.CollectMemStats {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		ps.BytesAlloc = after.TotalAlloc - before.TotalAlloc
	}
	rs.stats.Phases = append(rs.stats.Phases, ps)
	if m := e.Metrics; m != nil {
		m.Histogram(obs.Label("bfskel_stage_seconds", "stage", st.name()), obs.DurationBuckets).Observe(d.Seconds())
		m.Counter("bfskel_bfs_sweeps_total").Add(sweeps)
		m.Counter("bfskel_bfs_visited_nodes_total").Add(visited)
	}
	return err
}

// identifyStage is Phase 1 (Sec. III-A): neighborhood statistics and site
// election.
type identifyStage struct{}

func (identifyStage) name() string { return "identify" }

func (identifyStage) run(rs *runState) error {
	khop, cent, index, sites, kEff, scopeEff := rs.e.identify(rs.p, rs.stats)
	if len(sites) == 0 {
		return ErrNoSites
	}
	rs.res.EffectiveK = kEff
	rs.res.EffectiveScope = scopeEff
	rs.res.KHopSize = khop
	rs.res.LCentrality = cent
	rs.res.Index = index
	rs.res.Sites = sites
	rs.stats.Sites = len(sites)
	return nil
}

// voronoiStage is Phase 2 (Sec. III-B): cell construction with
// almost-equidistant records.
type voronoiStage struct{}

func (voronoiStage) name() string { return "voronoi" }

func (voronoiStage) run(rs *runState) error {
	rs.res.CellOf, rs.res.DistToSite, rs.res.Records =
		rs.e.voronoi(rs.res.Sites, rs.p.Alpha, rs.p.FloodKernel, rs.stats)
	return nil
}

// coarseStage is Phase 3 (Sec. III-C): connecting adjacent cells through
// max-index segment nodes.
type coarseStage struct{}

func (coarseStage) name() string { return "coarse" }

func (coarseStage) run(rs *runState) error {
	res := rs.res
	res.SegmentNodes, res.VoronoiNodes = specialNodes(res.Records)
	res.Edges, res.Coarse = rs.e.coarse(res.Index, res.Records)
	rs.stats.SegmentNodes = len(res.SegmentNodes)
	rs.stats.VoronoiNodes = len(res.VoronoiNodes)
	rs.stats.Edges = len(res.Edges)
	return nil
}

// refineStage is Phase 4 (Sec. III-D): loop classification and pruning.
type refineStage struct{}

func (refineStage) name() string { return "refine" }

func (refineStage) run(rs *runState) error {
	res := rs.res
	res.Loops, res.Skeleton = rs.e.refine(rs.p, res.Index, res.Records,
		res.CellOf, res.Edges, res.Coarse, rs.stats)
	rs.stats.FakeLoops = res.NumFakeLoops()
	rs.stats.GenuineLoops = res.NumGenuineLoops()
	return nil
}

// boundaryStage computes the boundary by-product (Sec. III-E) from the
// Phase 1 neighborhood statistics.
type boundaryStage struct{}

func (boundaryStage) name() string { return "boundary" }

func (boundaryStage) run(rs *runState) error {
	rs.res.Boundary = rs.e.boundaryByProduct(rs.res.KHopSize)
	rs.stats.BoundaryNodes = len(rs.res.Boundary)
	return nil
}

// floodKernel resolves a kernel request for a flood of radius k and, when
// the batched kernel is chosen, freezes the graph up front — Freeze mutates
// the graph and must never run inside parallel workers.
func (e *Extractor) floodKernel(req graph.Kernel, k int) graph.Kernel {
	kern := e.g.ResolveKernel(req, k)
	if kern == graph.KernelBatched {
		e.g.Freeze()
	}
	return kern
}

// Scratch growth helpers: keep capacity, reallocate only when the bound
// graph outgrew the buffer.

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growInt32s(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
