package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bfskel/internal/graph"
)

// Extractor is the staged extraction engine: it runs the pipeline stages
// Identify → Voronoi → Coarse → Refine → Boundary over one graph while
// owning every piece of reusable scratch state — the ball-size matrix, BFS
// distance/stamp/queue buffers, a Walker pool, per-node flag arrays sized
// to the graph — so repeated extractions (parameter sweeps, the experiment
// harness, benchmarks) stop paying the allocation cost of a cold start.
//
// Reuse contract: an Extractor is NOT safe for concurrent use; run one
// extraction at a time per engine and create several engines for
// parallelism (they share nothing). Every *Result it returns is fully
// independent — no Result field aliases engine scratch — so results stay
// valid across later Extract and Bind calls and across engine disposal.
type Extractor struct {
	g *graph.Graph

	// CollectMemStats enables per-phase allocation accounting
	// (Stats.Phases[i].BytesAlloc) via runtime.ReadMemStats. Off by
	// default: the read is stop-the-world and would distort benchmarks.
	CollectMemStats bool

	walkers *sync.Pool // of *graph.Walker bound to g

	// Reusable scratch; none of it escapes into results.
	ballsFlat []int    // n*maxR cumulative ball sizes (identify)
	balls     [][]int  // row views into ballsFlat
	ints      []int    // median / boundary sort scratch
	bools     []bool   // electSites maximality flags
	vorDist   []int32  // voronoi: per-site BFS distances
	vorStamp  []int32  // voronoi: visit stamps
	vorParent []int32  // voronoi: reverse-path parents
	vorQueue  []int32  // voronoi: BFS queue
}

// NewExtractor creates a staged engine bound to g. The scratch pools are
// filled lazily on first use.
func NewExtractor(g *graph.Graph) *Extractor {
	e := &Extractor{}
	e.rebind(g)
	return e
}

// Bind re-targets the engine at a different graph, keeping whatever
// scratch capacity carries over (buffers only grow). Binding the current
// graph is a no-op, preserving the Walker pool.
func (e *Extractor) Bind(g *graph.Graph) {
	if e.g != g {
		e.rebind(g)
	}
}

func (e *Extractor) rebind(g *graph.Graph) {
	e.g = g
	// Walkers hold per-graph buffers; a graph change invalidates the pool.
	e.walkers = &sync.Pool{New: func() any { return graph.NewWalker(g) }}
}

// Graph returns the graph the engine is bound to.
func (e *Extractor) Graph() *graph.Graph { return e.g }

func (e *Extractor) getWalker() *graph.Walker  { return e.walkers.Get().(*graph.Walker) }
func (e *Extractor) putWalker(w *graph.Walker) { e.walkers.Put(w) }

// Extract runs the full staged pipeline and returns the result with its
// instrumentation attached (Result.Stats).
func (e *Extractor) Extract(p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if e.g.N() == 0 {
		return nil, ErrEmptyGraph
	}
	rs := &runState{e: e, g: e.g, p: p, res: &Result{Params: p}, stats: newStats()}
	if err := rs.runStages(stages); err != nil {
		return nil, err
	}
	return rs.res, nil
}

// BatchJob is one extraction of a batch: a graph plus its parameters.
type BatchJob struct {
	G *graph.Graph
	P Params
}

// ExtractBatch runs every job through a single pooled engine, amortizing
// scratch allocations across many networks and parameter sets. Jobs over
// the same *graph.Graph reuse the full pool (including Walkers); a graph
// change rebinds the engine and only carries the buffer capacity over, so
// ordering jobs by graph maximises reuse. It fails fast on the first
// erroring job.
func ExtractBatch(jobs []BatchJob) ([]*Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	e := NewExtractor(jobs[0].G)
	out := make([]*Result, len(jobs))
	for i, job := range jobs {
		e.Bind(job.G)
		res, err := e.Extract(job.P)
		if err != nil {
			return nil, fmt.Errorf("core: batch job %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// stage is one named phase of the staged engine.
type stage interface {
	name() string
	run(rs *runState) error
}

// stages is the full pipeline in execution order. CompleteFromVoronoi
// enters at coarseStage with externally computed phase 1-2 artifacts.
var stages = []stage{
	identifyStage{}, voronoiStage{}, coarseStage{}, refineStage{}, boundaryStage{},
}

// runState carries one extraction through the stage pipeline.
type runState struct {
	e     *Extractor
	g     *graph.Graph
	p     Params
	res   *Result
	stats *Stats
}

func newStats() *Stats {
	return &Stats{Phases: make([]PhaseStats, 0, len(stages))}
}

// runStages executes the given pipeline suffix, timing each stage, and
// attaches the stats to the result.
func (rs *runState) runStages(todo []stage) error {
	start := time.Now()
	for _, st := range todo {
		if err := rs.runStage(st); err != nil {
			return err
		}
	}
	rs.stats.Total = time.Since(start)
	rs.res.Stats = rs.stats
	return nil
}

func (rs *runState) runStage(st stage) error {
	var before runtime.MemStats
	if rs.e.CollectMemStats {
		runtime.ReadMemStats(&before)
	}
	t0 := time.Now()
	err := st.run(rs)
	ps := PhaseStats{Name: st.name(), Duration: time.Since(t0)}
	if rs.e.CollectMemStats {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		ps.BytesAlloc = after.TotalAlloc - before.TotalAlloc
	}
	rs.stats.Phases = append(rs.stats.Phases, ps)
	return err
}

// identifyStage is Phase 1 (Sec. III-A): neighborhood statistics and site
// election.
type identifyStage struct{}

func (identifyStage) name() string { return "identify" }

func (identifyStage) run(rs *runState) error {
	khop, cent, index, sites, kEff, scopeEff := rs.e.identify(rs.p, rs.stats)
	if len(sites) == 0 {
		return ErrNoSites
	}
	rs.res.EffectiveK = kEff
	rs.res.EffectiveScope = scopeEff
	rs.res.KHopSize = khop
	rs.res.LCentrality = cent
	rs.res.Index = index
	rs.res.Sites = sites
	rs.stats.Sites = len(sites)
	return nil
}

// voronoiStage is Phase 2 (Sec. III-B): cell construction with
// almost-equidistant records.
type voronoiStage struct{}

func (voronoiStage) name() string { return "voronoi" }

func (voronoiStage) run(rs *runState) error {
	rs.res.CellOf, rs.res.DistToSite, rs.res.Records =
		rs.e.voronoi(rs.res.Sites, rs.p.Alpha, rs.stats)
	return nil
}

// coarseStage is Phase 3 (Sec. III-C): connecting adjacent cells through
// max-index segment nodes.
type coarseStage struct{}

func (coarseStage) name() string { return "coarse" }

func (coarseStage) run(rs *runState) error {
	res := rs.res
	res.SegmentNodes, res.VoronoiNodes = specialNodes(res.Records)
	res.Edges, res.Coarse = coarse(rs.g, res.Index, res.Records)
	rs.stats.SegmentNodes = len(res.SegmentNodes)
	rs.stats.VoronoiNodes = len(res.VoronoiNodes)
	rs.stats.Edges = len(res.Edges)
	return nil
}

// refineStage is Phase 4 (Sec. III-D): loop classification and pruning.
type refineStage struct{}

func (refineStage) name() string { return "refine" }

func (refineStage) run(rs *runState) error {
	res := rs.res
	res.Loops, res.Skeleton = refine(rs.g, rs.p, res.Index, res.Records,
		res.CellOf, res.Edges, res.Coarse, rs.stats)
	rs.stats.FakeLoops = res.NumFakeLoops()
	rs.stats.GenuineLoops = res.NumGenuineLoops()
	return nil
}

// boundaryStage computes the boundary by-product (Sec. III-E) from the
// Phase 1 neighborhood statistics.
type boundaryStage struct{}

func (boundaryStage) name() string { return "boundary" }

func (boundaryStage) run(rs *runState) error {
	rs.res.Boundary = rs.e.boundaryByProduct(rs.res.KHopSize)
	rs.stats.BoundaryNodes = len(rs.res.Boundary)
	return nil
}

// Scratch growth helpers: keep capacity, reallocate only when the bound
// graph outgrew the buffer.

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growInt32s(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}
