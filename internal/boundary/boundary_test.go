package boundary_test

import (
	"testing"

	"bfskel/internal/boundary"
	"bfskel/internal/nettest"
)

// TestDetectWindow checks the detector against the geometric truth on the
// window field: most detected nodes must lie within a band of the true
// boundary (precision), and every boundary ring should contribute a cycle.
func TestDetectWindow(t *testing.T) {
	net := nettest.Grid("window", 2592, 7, 1)
	res := boundary.Detect(net.Graph, boundary.Options{})
	if len(res.Nodes) == 0 {
		t.Fatal("no boundary nodes detected")
	}

	// Precision against a geometric band of width 2.5R.
	band := 0.0
	if u, ok := net.Radio.(interface{ MaxRange() float64 }); ok {
		band = 2.5 * u.MaxRange()
	}
	hits := 0
	for _, v := range res.Nodes {
		if net.Shape.Poly.BoundaryDist(net.Points[v]) <= band {
			hits++
		}
	}
	precision := float64(hits) / float64(len(res.Nodes))
	t.Logf("detected=%d precision=%.2f cycles=%d", len(res.Nodes), precision, len(res.Cycles))
	if precision < 0.9 {
		t.Errorf("precision %.2f < 0.9", precision)
	}

	// The window has 5 boundary curves (outer + 4 panes); chaining may
	// fragment sparse stretches, so require at least 5 substantial chains.
	substantial := 0
	for _, c := range res.Cycles {
		if len(c) >= 10 {
			substantial++
		}
	}
	if substantial < 5 {
		t.Errorf("substantial cycles = %d, want >= 5", substantial)
	}
}

// TestDetectRecallStar checks that boundary coverage (recall against the
// near-boundary node population) is reasonable on a hole-free field.
func TestDetectRecallStar(t *testing.T) {
	net := nettest.Grid("star", 1394, 7, 1)
	res := boundary.Detect(net.Graph, boundary.Options{})
	band := 1.2
	if u, ok := net.Radio.(interface{ MaxRange() float64 }); ok {
		band = 1.2 * u.MaxRange()
	}
	var near, caught int
	for v := 0; v < net.Graph.N(); v++ {
		if net.Shape.Poly.BoundaryDist(net.Points[v]) <= band {
			near++
			if res.IsBoundary[v] {
				caught++
			}
		}
	}
	recall := float64(caught) / float64(near)
	t.Logf("near-boundary=%d caught=%d recall=%.2f", near, caught, recall)
	if recall < 0.8 {
		t.Errorf("recall %.2f < 0.8", recall)
	}
}

// TestCycleOf: membership queries resolve to the right chain.
func TestCycleOf(t *testing.T) {
	net := nettest.Grid("star", 1000, 7, 1)
	res := boundary.Detect(net.Graph, boundary.Options{})
	if len(res.Cycles) == 0 {
		t.Fatal("no cycles")
	}
	for ci, cycle := range res.Cycles {
		for _, v := range cycle {
			if got := res.CycleOf(v); got != ci {
				t.Fatalf("CycleOf(%d) = %d, want %d", v, got, ci)
			}
		}
	}
	// A non-boundary node belongs to no cycle.
	for v := int32(0); int(v) < net.Graph.N(); v++ {
		if !res.IsBoundary[v] {
			if got := res.CycleOf(v); got != -1 {
				t.Fatalf("CycleOf(non-boundary %d) = %d", v, got)
			}
			break
		}
	}
}
