// Package boundary provides connectivity-based boundary recognition — the
// substrate that the MAP and CASE baselines assume as given input, and the
// yardstick for the skeleton pipeline's boundary by-product.
//
// The detector follows the statistical observation of Fekete et al. (the
// paper's reference [8]): nodes near a boundary see markedly fewer K-hop
// neighbors than interior nodes. Detected nodes are then organised into
// boundary cycles, which MAP and CASE need to reason about boundary
// branches.
package boundary

import (
	"sort"

	"bfskel/internal/graph"
)

// Options configures the detector.
type Options struct {
	// K is the neighborhood radius used for the size statistic (default 4).
	K int
	// Fraction is the detection threshold: a node is a boundary candidate
	// when its K-hop size is below Fraction x the component median
	// (default 0.85, which on calibration fields detects the boundary band
	// with precision ~1.0).
	Fraction float64
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 4
	}
	if o.Fraction <= 0 {
		o.Fraction = 0.85
	}
	return o
}

// Result carries the detected boundary.
type Result struct {
	// Nodes are the boundary nodes, sorted by ID.
	Nodes []int32
	// IsBoundary is the membership mask.
	IsBoundary []bool
	// Cycles groups the boundary nodes into closed chains (one per
	// boundary curve: the outer boundary plus one per hole), each ordered
	// along the curve. Small fragments that could not be chained are
	// returned as open chains.
	Cycles [][]int32
	// KHop is the statistic used (|N_K| per node).
	KHop []int
}

// CycleOf returns the index of the cycle containing v, or -1.
func (r *Result) CycleOf(v int32) int {
	for i, c := range r.Cycles {
		for _, u := range c {
			if u == v {
				return i
			}
		}
	}
	return -1
}

// Detect runs the neighborhood-size boundary detector.
func Detect(g *graph.Graph, opts Options) *Result {
	opts = opts.withDefaults()
	khop := g.AllKHopCounts(opts.K)
	n := g.N()
	res := &Result{IsBoundary: make([]bool, n), KHop: khop}
	if n == 0 {
		return res
	}
	sorted := make([]int, n)
	copy(sorted, khop)
	sort.Ints(sorted)
	cut := opts.Fraction * float64(sorted[n/2])
	for v := 0; v < n; v++ {
		if float64(khop[v]) < cut && g.Degree(v) > 0 {
			res.IsBoundary[v] = true
			res.Nodes = append(res.Nodes, int32(v))
		}
	}
	res.Cycles = chainCycles(g, res.IsBoundary)
	return res
}

// chainCycles groups boundary nodes into chains: connected components of
// the boundary-induced subgraph, each ordered by a farthest-point double
// sweep so consecutive chain entries are near each other along the curve.
func chainCycles(g *graph.Graph, isBoundary []bool) [][]int32 {
	n := g.N()
	seen := make([]bool, n)
	var cycles [][]int32
	for v := 0; v < n; v++ {
		if !isBoundary[v] || seen[v] {
			continue
		}
		// Collect the component over boundary nodes (allowing one
		// intermediate non-boundary hop so sparse sampling does not break
		// the chain).
		comp := boundaryComponent(g, int32(v), isBoundary, seen)
		if len(comp) < 3 {
			cycles = append(cycles, comp)
			continue
		}
		cycles = append(cycles, orderChain(g, comp, isBoundary))
	}
	// Largest cycle first: callers treat Cycles[0] as the outer boundary.
	sort.Slice(cycles, func(i, j int) bool { return len(cycles[i]) > len(cycles[j]) })
	return cycles
}

// boundaryComponent gathers the boundary nodes reachable from start through
// boundary nodes, bridging single non-boundary hops.
func boundaryComponent(g *graph.Graph, start int32, isBoundary []bool, seen []bool) []int32 {
	var comp []int32
	queue := []int32{start}
	seen[start] = true
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		comp = append(comp, u)
		for _, w := range g.Neighbors(int(u)) {
			if isBoundary[w] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
				continue
			}
			for _, x := range g.Neighbors(int(w)) {
				if isBoundary[x] && !seen[x] {
					seen[x] = true
					queue = append(queue, x)
				}
			}
		}
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	return comp
}

// orderChain orders a boundary component along the curve: BFS distances
// from an extreme node give a 1D coordinate along the (locally path-like)
// boundary band.
func orderChain(g *graph.Graph, comp []int32, isBoundary []bool) []int32 {
	inComp := make(map[int32]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	// Double sweep to find an extreme, then order by distance from it.
	far := bandFarthest(g, comp[0], inComp)
	dist := bandDistances(g, far, inComp)
	ordered := make([]int32, len(comp))
	copy(ordered, comp)
	sort.Slice(ordered, func(i, j int) bool {
		di, dj := dist[ordered[i]], dist[ordered[j]]
		if di != dj {
			return di < dj
		}
		return ordered[i] < ordered[j]
	})
	return ordered
}

// bandFarthest returns the farthest component node from src under band BFS.
func bandFarthest(g *graph.Graph, src int32, inComp map[int32]bool) int32 {
	dist := bandDistances(g, src, inComp)
	far := src
	for v, d := range dist {
		if d > dist[far] || (d == dist[far] && v < far) {
			far = v
		}
	}
	return far
}

// bandDistances runs BFS over component nodes, bridging one non-member hop.
func bandDistances(g *graph.Graph, src int32, inComp map[int32]bool) map[int32]int32 {
	dist := map[int32]int32{src: 0}
	queue := []int32{src}
	visit := func(v, d int32, queueP *[]int32) {
		if _, ok := dist[v]; !ok {
			dist[v] = d
			*queueP = append(*queueP, v)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range g.Neighbors(int(u)) {
			if inComp[w] {
				visit(w, du+1, &queue)
				continue
			}
			for _, x := range g.Neighbors(int(w)) {
				if inComp[x] {
					visit(x, du+2, &queue)
				}
			}
		}
	}
	return dist
}
