package route_test

import (
	"testing"

	"bfskel/internal/core"
	"bfskel/internal/graph"
	"bfskel/internal/nettest"
	"bfskel/internal/route"
)

func gridGraph(w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				g.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	g.SortAdjacency()
	return g
}

func TestShortestPathRouter(t *testing.T) {
	g := gridGraph(5, 5)
	r := route.NewShortestPath(g)
	path, err := r.Route(0, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 9 { // 8 hops across the grid
		t.Errorf("path length = %d, want 9", len(path))
	}
	validatePath(t, g, path, 0, 24)
	// Repeated query from the same source exercises the cache.
	path2, err := r.Route(0, 12)
	if err != nil {
		t.Fatal(err)
	}
	validatePath(t, g, path2, 0, 12)
	// Unreachable.
	iso := graph.New(2)
	ri := route.NewShortestPath(iso)
	if _, err := ri.Route(0, 1); err == nil {
		t.Error("expected unreachable error")
	}
}

func TestSkeletonRouter(t *testing.T) {
	g := gridGraph(7, 7)
	// Skeleton: the middle row.
	skel := core.NewSkeleton(g.N())
	var row []int32
	for x := 0; x < 7; x++ {
		row = append(row, int32(3*7+x))
	}
	skel.AddPath(row)
	r, err := route.NewSkeleton(g, skel)
	if err != nil {
		t.Fatal(err)
	}
	// Anchors point into the middle row.
	if a := r.Anchor(0); a < 21 || a > 27 {
		t.Errorf("anchor of 0 = %d", a)
	}
	path, err := r.Route(0, 48)
	if err != nil {
		t.Fatal(err)
	}
	validatePath(t, g, path, 0, 48)
	// The route passes through skeleton territory (middle row).
	touched := false
	for _, v := range path {
		if skel.Contains(v) {
			touched = true
			break
		}
	}
	if !touched {
		t.Error("skeleton route avoided the skeleton")
	}
	// Degenerate: both endpoints anchor at the same skeleton node.
	short, err := r.Route(21, 22)
	if err != nil {
		t.Fatal(err)
	}
	validatePath(t, g, short, 21, 22)

	if _, err := route.NewSkeleton(g, core.NewSkeleton(g.N())); err == nil {
		t.Error("empty skeleton accepted")
	}
}

func validatePath(t *testing.T, g *graph.Graph, path []int32, s, d int32) {
	t.Helper()
	if len(path) == 0 || path[0] != s || path[len(path)-1] != d {
		t.Fatalf("path endpoints wrong: %v (want %d..%d)", path, s, d)
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(int(path[i-1]), int(path[i])) {
			t.Fatalf("path uses non-edge %d-%d", path[i-1], path[i])
		}
	}
}

func TestMeasureLoad(t *testing.T) {
	net := nettest.Grid("star", 800, 7, 1)
	res, err := core.Extract(net.Graph, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sp := route.NewShortestPath(net.Graph)
	rep, err := route.MeasureLoad(net.Graph, sp, 100, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 || rep.Pairs > 100 {
		t.Errorf("pairs = %d", rep.Pairs)
	}
	// Shortest path routed against itself has stretch exactly 1.
	if rep.MeanStretch != 1 {
		t.Errorf("shortest-path stretch = %v", rep.MeanStretch)
	}
	if rep.MaxLoad < rep.P99Load {
		t.Errorf("max %d < p99 %d", rep.MaxLoad, rep.P99Load)
	}

	sk, err := route.NewSkeleton(net.Graph, res.Skeleton)
	if err != nil {
		t.Fatal(err)
	}
	skRep, err := route.MeasureLoad(net.Graph, sk, 100, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skRep.MeanStretch < 1 {
		t.Errorf("skeleton stretch = %v < 1", skRep.MeanStretch)
	}
	if skRep.MeanStretch > 3 {
		t.Errorf("skeleton stretch = %v implausibly high", skRep.MeanStretch)
	}
}
