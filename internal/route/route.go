// Package route implements the skeleton-aided naming and routing scheme the
// paper motivates in Sec. I: each node is named by its nearest skeleton
// node and its hop distance to it; messages travel source -> anchor ->
// along the skeleton -> anchor -> destination, keeping traffic near the
// medial axis and away from boundary nodes. A plain shortest-path router is
// the load-balance baseline.
package route

import (
	"errors"
	"math/rand"
	"sort"

	"bfskel/internal/core"
	"bfskel/internal/graph"
)

// ErrUnreachable is returned when no route exists between the endpoints.
var ErrUnreachable = errors.New("route: unreachable destination")

// Router computes a node path between two endpoints.
type Router interface {
	// Route returns the node sequence from s to t (inclusive).
	Route(s, t int32) ([]int32, error)
}

// ShortestPath routes along BFS shortest paths; it caches the BFS tree per
// source so repeated queries from one source are cheap, and rebuilds it in
// place through a walker's allocation-free BFSPathsInto when the source
// changes.
type ShortestPath struct {
	g          *graph.Graph
	w          *graph.Walker
	lastSrc    int32
	lastDist   []int32
	lastParent []int32
}

var _ Router = (*ShortestPath)(nil)

// NewShortestPath creates the baseline router.
func NewShortestPath(g *graph.Graph) *ShortestPath {
	return &ShortestPath{
		g:          g,
		w:          graph.NewWalker(g),
		lastSrc:    -1,
		lastDist:   make([]int32, g.N()),
		lastParent: make([]int32, g.N()),
	}
}

// Route implements Router.
func (r *ShortestPath) Route(s, t int32) ([]int32, error) {
	if r.lastSrc != s {
		r.w.BFSPathsInto(int(s), r.lastDist, r.lastParent)
		r.lastSrc = s
	}
	path := graph.PathTo(r.lastParent, int(t))
	if path == nil {
		return nil, ErrUnreachable
	}
	return path, nil
}

// Skeleton is the skeleton-aided router. Naming: every node stores its
// anchor (nearest skeleton node), its distance, and the reverse path. A
// route is the concatenation source->anchor, anchor->anchor along the
// skeleton, anchor->destination.
type Skeleton struct {
	g *graph.Graph
	// anchor and toAnchor name every node: the nearest skeleton node and
	// the next hop toward it.
	anchor []int32
	parent []int32
	skel   *core.Skeleton
}

var _ Router = (*Skeleton)(nil)

// NewSkeleton builds the naming scheme (one multi-source BFS from all
// skeleton nodes).
func NewSkeleton(g *graph.Graph, skel *core.Skeleton) (*Skeleton, error) {
	nodes := skel.Nodes()
	if len(nodes) == 0 {
		return nil, errors.New("route: empty skeleton")
	}
	n := g.N()
	r := &Skeleton{
		g:      g,
		anchor: make([]int32, n),
		parent: make([]int32, n),
		skel:   skel,
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Unreachable
		r.anchor[i] = -1
		r.parent[i] = -1
	}
	queue := make([]int32, 0, n)
	for _, v := range nodes {
		dist[v] = 0
		r.anchor[v] = v
		r.parent[v] = v
		queue = append(queue, v)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == graph.Unreachable {
				dist[v] = dist[u] + 1
				r.anchor[v] = r.anchor[u]
				r.parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return r, nil
}

// Anchor returns v's name: its nearest skeleton node.
func (r *Skeleton) Anchor(v int32) int32 { return r.anchor[v] }

// Route implements Router.
func (r *Skeleton) Route(s, t int32) ([]int32, error) {
	as, at := r.anchor[s], r.anchor[t]
	if as < 0 || at < 0 {
		return nil, ErrUnreachable
	}
	head := r.pathToAnchor(s)
	spine, err := r.skeletonPath(as, at)
	if err != nil {
		return nil, err
	}
	tail := r.pathToAnchor(t)
	// Concatenate head + spine[1:] + reversed(tail)[1:].
	path := append([]int32{}, head...)
	path = append(path, spine[1:]...)
	for i := len(tail) - 2; i >= 0; i-- {
		path = append(path, tail[i])
	}
	return compactPath(path), nil
}

// pathToAnchor follows the naming parents from v to its anchor.
func (r *Skeleton) pathToAnchor(v int32) []int32 {
	path := []int32{v}
	for r.parent[v] != v {
		v = r.parent[v]
		path = append(path, v)
	}
	return path
}

// skeletonPath runs BFS within the skeleton structure between two skeleton
// nodes.
func (r *Skeleton) skeletonPath(a, b int32) ([]int32, error) {
	if a == b {
		return []int32{a}, nil
	}
	parent := map[int32]int32{a: a}
	queue := []int32{a}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if u == b {
			var rev []int32
			for v := b; ; v = parent[v] {
				rev = append(rev, v)
				if parent[v] == v {
					break
				}
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, nil
		}
		for _, v := range r.skel.Neighbors(u) {
			if _, seen := parent[v]; !seen {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return nil, ErrUnreachable
}

// compactPath removes immediate backtracking (u, v, u) introduced at the
// anchor joints.
func compactPath(path []int32) []int32 {
	out := path[:0:0]
	for _, v := range path {
		if len(out) >= 2 && out[len(out)-2] == v {
			out = out[:len(out)-1]
			continue
		}
		if len(out) >= 1 && out[len(out)-1] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// LoadReport summarises a routing workload.
type LoadReport struct {
	// Pairs is the number of routed source/destination pairs.
	Pairs int
	// MeanStretch is the mean ratio of the router's path length to the
	// shortest path length.
	MeanStretch float64
	// MaxLoad is the highest per-node traversal count; P99Load the 99th
	// percentile.
	MaxLoad, P99Load int
	// BoundaryShare is the fraction of total traversals that crossed the
	// given boundary node set — the paper's load-balance concern.
	BoundaryShare float64
	// Load is the per-node traversal count.
	Load []int
}

// MeasureLoad routes `pairs` random source/destination pairs and aggregates
// per-node load; isBoundary (optional) attributes boundary traffic.
func MeasureLoad(g *graph.Graph, r Router, pairs int, seed int64, isBoundary []bool) (LoadReport, error) {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	rep := LoadReport{Load: make([]int, n)}
	sp := NewShortestPath(g)
	var stretchSum float64
	for i := 0; i < pairs; i++ {
		s := int32(rng.Intn(n))
		t := int32(rng.Intn(n))
		if s == t {
			continue
		}
		path, err := r.Route(s, t)
		if err != nil {
			return rep, err
		}
		base, err := sp.Route(s, t)
		if err != nil {
			return rep, err
		}
		if len(base) > 1 {
			stretchSum += float64(len(path)-1) / float64(len(base)-1)
		} else {
			stretchSum += 1
		}
		rep.Pairs++
		for _, v := range path {
			rep.Load[v]++
		}
	}
	if rep.Pairs > 0 {
		rep.MeanStretch = stretchSum / float64(rep.Pairs)
	}
	total := 0
	boundaryTotal := 0
	sorted := make([]int, n)
	for v, l := range rep.Load {
		total += l
		sorted[v] = l
		if isBoundary != nil && isBoundary[v] {
			boundaryTotal += l
		}
	}
	sort.Ints(sorted)
	if n > 0 {
		rep.MaxLoad = sorted[n-1]
		rep.P99Load = sorted[n*99/100]
	}
	if total > 0 && isBoundary != nil {
		rep.BoundaryShare = float64(boundaryTotal) / float64(total)
	}
	return rep, nil
}
