package geom

import (
	"errors"
	"math"
)

// Ring is a closed polygonal chain. The closing edge from the last vertex
// back to the first is implicit; callers must not repeat the first vertex.
type Ring []Point

// ErrDegenerateRing is returned when a ring has fewer than three vertices.
var ErrDegenerateRing = errors.New("geom: ring needs at least 3 vertices")

// SignedArea returns the signed area of the ring: positive for
// counter-clockwise orientation, negative for clockwise.
func (r Ring) SignedArea() float64 {
	var a float64
	n := len(r)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += r[i].Cross(r[j])
	}
	return a / 2
}

// Area returns the absolute area enclosed by the ring.
func (r Ring) Area() float64 {
	return math.Abs(r.SignedArea())
}

// Perimeter returns the total edge length of the ring.
func (r Ring) Perimeter() float64 {
	var l float64
	n := len(r)
	for i := 0; i < n; i++ {
		l += r[i].Dist(r[(i+1)%n])
	}
	return l
}

// Bounds returns the axis-aligned bounding rectangle of the ring.
func (r Ring) Bounds() Rect {
	if len(r) == 0 {
		return Rect{}
	}
	b := Rect{Min: r[0], Max: r[0]}
	for _, p := range r[1:] {
		b.Min.X = math.Min(b.Min.X, p.X)
		b.Min.Y = math.Min(b.Min.Y, p.Y)
		b.Max.X = math.Max(b.Max.X, p.X)
		b.Max.Y = math.Max(b.Max.Y, p.Y)
	}
	return b
}

// Contains reports whether p lies strictly inside the ring, using the
// even-odd (ray crossing) rule. Points exactly on an edge are reported as
// outside; deployments sample interior points so the boundary set has
// measure zero for our purposes.
func (r Ring) Contains(p Point) bool {
	inside := false
	n := len(r)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := r[i], r[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Dist returns the minimum distance from p to any edge of the ring.
func (r Ring) Dist(p Point) float64 {
	return math.Sqrt(r.Dist2(p))
}

// Dist2 returns the squared minimum distance from p to any edge of the ring.
func (r Ring) Dist2(p Point) float64 {
	best := math.Inf(1)
	n := len(r)
	for i := 0; i < n; i++ {
		d := (Segment{A: r[i], B: r[(i+1)%n]}).Dist2(p)
		if d < best {
			best = d
		}
	}
	return best
}

// ClosestPoint returns the point on the ring's edges nearest to p.
func (r Ring) ClosestPoint(p Point) Point {
	best := math.Inf(1)
	var bp Point
	n := len(r)
	for i := 0; i < n; i++ {
		c := (Segment{A: r[i], B: r[(i+1)%n]}).ClosestPoint(p)
		if d := p.Dist2(c); d < best {
			best = d
			bp = c
		}
	}
	return bp
}

// Reverse returns a copy of the ring with opposite orientation.
func (r Ring) Reverse() Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[len(r)-1-i] = p
	}
	return out
}

// Translate returns a copy of the ring shifted by d.
func (r Ring) Translate(d Point) Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[i] = p.Add(d)
	}
	return out
}

// Scale returns a copy of the ring scaled about the origin by s.
func (r Ring) Scale(s float64) Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[i] = p.Scale(s)
	}
	return out
}

// Polygon is a region bounded by one outer ring and zero or more hole rings.
// Holes must lie strictly inside the outer ring and must not overlap each
// other; the constructors in package shapes maintain this invariant.
type Polygon struct {
	Outer Ring
	Holes []Ring
}

// NewPolygon validates and constructs a polygon.
func NewPolygon(outer Ring, holes ...Ring) (*Polygon, error) {
	if len(outer) < 3 {
		return nil, ErrDegenerateRing
	}
	for _, h := range holes {
		if len(h) < 3 {
			return nil, ErrDegenerateRing
		}
	}
	return &Polygon{Outer: outer, Holes: holes}, nil
}

// MustPolygon is like NewPolygon but panics on invalid input. It is intended
// for statically known shape definitions.
func MustPolygon(outer Ring, holes ...Ring) *Polygon {
	p, err := NewPolygon(outer, holes...)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether p lies inside the polygon (inside the outer ring
// and outside every hole).
func (pg *Polygon) Contains(p Point) bool {
	if !pg.Outer.Contains(p) {
		return false
	}
	for _, h := range pg.Holes {
		if h.Contains(p) {
			return false
		}
	}
	return true
}

// Bounds returns the bounding rectangle of the outer ring.
func (pg *Polygon) Bounds() Rect {
	return pg.Outer.Bounds()
}

// Area returns the polygon area (outer area minus hole areas).
func (pg *Polygon) Area() float64 {
	a := pg.Outer.Area()
	for _, h := range pg.Holes {
		a -= h.Area()
	}
	return a
}

// NumHoles returns the number of holes, which equals the number of genuine
// skeleton loops the extracted skeleton must carry to be homotopic to the
// region.
func (pg *Polygon) NumHoles() int {
	return len(pg.Holes)
}

// BoundaryDist returns the distance from p to the nearest boundary edge
// (outer ring or any hole ring). For interior points this is the Euclidean
// distance transform value, i.e. the radius of the maximal disk centered at
// p that fits inside the region.
func (pg *Polygon) BoundaryDist(p Point) float64 {
	best := pg.Outer.Dist2(p)
	for _, h := range pg.Holes {
		if d := h.Dist2(p); d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}

// NearestBoundaryPoint returns the closest point on any boundary ring to p.
func (pg *Polygon) NearestBoundaryPoint(p Point) Point {
	bp := pg.Outer.ClosestPoint(p)
	best := p.Dist2(bp)
	for _, h := range pg.Holes {
		c := h.ClosestPoint(p)
		if d := p.Dist2(c); d < best {
			best = d
			bp = c
		}
	}
	return bp
}

// Rings returns all boundary rings, outer first.
func (pg *Polygon) Rings() []Ring {
	out := make([]Ring, 0, 1+len(pg.Holes))
	out = append(out, pg.Outer)
	out = append(out, pg.Holes...)
	return out
}
