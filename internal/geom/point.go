// Package geom provides the planar-geometry substrate for the skeleton
// extraction pipeline: points, segments, rings, polygons with holes, and
// continuous-domain medial-axis utilities used as ground truth.
//
// Everything operates in plain float64 Euclidean coordinates. The package is
// deliberately dependency-free; it is the lowest layer of the repository.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point {
	return Point{X: x, Y: y}
}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point {
	return Point{X: p.X + q.X, Y: p.Y + q.Y}
}

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point {
	return Point{X: p.X - q.X, Y: p.Y - q.Y}
}

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point {
	return Point{X: p.X * s, Y: p.Y * s}
}

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 {
	return p.X*q.X + p.Y*q.Y
}

// Cross returns the z component of the cross product p x q.
func (p Point) Cross(q Point) float64 {
	return p.X*q.Y - p.Y*q.X
}

// Norm returns the Euclidean length of p seen as a vector.
func (p Point) Norm() float64 {
	return math.Hypot(p.X, p.Y)
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids a
// square root and is the preferred comparison primitive on hot paths.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y)
}

// Segment is a closed line segment between two points.
type Segment struct {
	A, B Point
}

// Len returns the length of the segment.
func (s Segment) Len() float64 {
	return s.A.Dist(s.B)
}

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point {
	return Point{X: (s.A.X + s.B.X) / 2, Y: (s.A.Y + s.B.Y) / 2}
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / l2
	switch {
	case t <= 0:
		return s.A
	case t >= 1:
		return s.B
	default:
		return s.A.Add(d.Scale(t))
	}
}

// Dist returns the distance from p to the segment.
func (s Segment) Dist(p Point) float64 {
	return p.Dist(s.ClosestPoint(p))
}

// Dist2 returns the squared distance from p to the segment.
func (s Segment) Dist2(p Point) float64 {
	return p.Dist2(s.ClosestPoint(p))
}

// Rect is an axis-aligned bounding rectangle.
type Rect struct {
	Min, Max Point
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Expand returns the rectangle grown by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{
		Min: Point{X: r.Min.X - m, Y: r.Min.Y - m},
		Max: Point{X: r.Max.X + m, Y: r.Max.Y + m},
	}
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{X: math.Min(r.Min.X, o.Min.X), Y: math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{X: math.Max(r.Max.X, o.Max.X), Y: math.Max(r.Max.Y, o.Max.Y)},
	}
}
