package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func unitSquare() Ring {
	return Ring{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
}

func TestRingArea(t *testing.T) {
	sq := unitSquare()
	if got := sq.SignedArea(); !almostEq(got, 1, 1e-12) {
		t.Errorf("ccw signed area = %v, want 1", got)
	}
	if got := sq.Reverse().SignedArea(); !almostEq(got, -1, 1e-12) {
		t.Errorf("cw signed area = %v, want -1", got)
	}
	if got := sq.Area(); !almostEq(got, 1, 1e-12) {
		t.Errorf("area = %v", got)
	}
	if got := sq.Perimeter(); !almostEq(got, 4, 1e-12) {
		t.Errorf("perimeter = %v", got)
	}
	tri := Ring{Pt(0, 0), Pt(4, 0), Pt(0, 3)}
	if got := tri.Area(); !almostEq(got, 6, 1e-12) {
		t.Errorf("triangle area = %v, want 6", got)
	}
}

func TestRingContains(t *testing.T) {
	sq := unitSquare()
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(0.5, 0.5), true},
		{Pt(0.01, 0.99), true},
		{Pt(-0.1, 0.5), false},
		{Pt(1.1, 0.5), false},
		{Pt(0.5, -0.01), false},
		{Pt(2, 2), false},
	}
	for _, tt := range tests {
		if got := sq.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Concave ring: an L shape.
	l := Ring{Pt(0, 0), Pt(2, 0), Pt(2, 1), Pt(1, 1), Pt(1, 2), Pt(0, 2)}
	if !l.Contains(Pt(0.5, 1.5)) {
		t.Error("L should contain (0.5,1.5)")
	}
	if l.Contains(Pt(1.5, 1.5)) {
		t.Error("L should not contain (1.5,1.5)")
	}
}

func TestRingDistAndClosest(t *testing.T) {
	sq := unitSquare()
	if got := sq.Dist(Pt(0.5, 0.5)); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("center dist = %v, want 0.5", got)
	}
	if got := sq.Dist(Pt(2, 0.5)); !almostEq(got, 1, 1e-12) {
		t.Errorf("outside dist = %v, want 1", got)
	}
	cp := sq.ClosestPoint(Pt(0.5, -3))
	if cp.Dist(Pt(0.5, 0)) > 1e-12 {
		t.Errorf("closest = %v, want (0.5,0)", cp)
	}
}

func TestRingTransforms(t *testing.T) {
	sq := unitSquare()
	tr := sq.Translate(Pt(2, 3))
	if tr[0] != Pt(2, 3) {
		t.Errorf("translate = %v", tr[0])
	}
	if !almostEq(tr.Area(), sq.Area(), 1e-12) {
		t.Error("translate changed area")
	}
	sc := sq.Scale(3)
	if !almostEq(sc.Area(), 9, 1e-12) {
		t.Errorf("scaled area = %v, want 9", sc.Area())
	}
}

// TestRingScaleAreaProperty: scaling by s multiplies the area by s^2.
func TestRingScaleAreaProperty(t *testing.T) {
	f := func(s float64) bool {
		s = math.Mod(math.Abs(s), 100) + 0.1
		sq := unitSquare()
		return almostEq(sq.Scale(s).Area(), s*s*sq.Area(), 1e-6*s*s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolygonValidation(t *testing.T) {
	if _, err := NewPolygon(Ring{Pt(0, 0), Pt(1, 0)}); err != ErrDegenerateRing {
		t.Errorf("short outer: err = %v", err)
	}
	if _, err := NewPolygon(unitSquare(), Ring{Pt(0, 0)}); err != ErrDegenerateRing {
		t.Errorf("short hole: err = %v", err)
	}
	if _, err := NewPolygon(unitSquare()); err != nil {
		t.Errorf("valid: err = %v", err)
	}
}

func TestPolygonWithHole(t *testing.T) {
	outer := Ring{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	hole := Ring{Pt(4, 4), Pt(6, 4), Pt(6, 6), Pt(4, 6)}
	pg := MustPolygon(outer, hole)

	if pg.NumHoles() != 1 {
		t.Errorf("NumHoles = %d", pg.NumHoles())
	}
	if !almostEq(pg.Area(), 100-4, 1e-9) {
		t.Errorf("Area = %v, want 96", pg.Area())
	}
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(5, 5), false}, // inside the hole
		{Pt(11, 5), false},
		{Pt(4.5, 1), true},
	}
	for _, tt := range tests {
		if got := pg.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Boundary distance accounts for the hole edge.
	if got := pg.BoundaryDist(Pt(3, 5)); !almostEq(got, 1, 1e-9) {
		t.Errorf("BoundaryDist = %v, want 1 (hole edge)", got)
	}
	np := pg.NearestBoundaryPoint(Pt(3, 5))
	if np.Dist(Pt(4, 5)) > 1e-9 {
		t.Errorf("NearestBoundaryPoint = %v, want (4,5)", np)
	}
	if got := len(pg.Rings()); got != 2 {
		t.Errorf("Rings = %d", got)
	}
}

// TestContainsTranslationInvariance: containment is invariant under
// translating both polygon and point.
func TestContainsTranslationInvariance(t *testing.T) {
	outer := Ring{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)}
	hole := Ring{Pt(4, 4), Pt(6, 4), Pt(6, 6), Pt(4, 6)}
	f := func(px, py, dx, dy float64) bool {
		px = math.Mod(math.Abs(px), 12) - 1
		py = math.Mod(math.Abs(py), 12) - 1
		dx, dy = clampF(dx), clampF(dy)
		pg := MustPolygon(outer, hole)
		moved := MustPolygon(outer.Translate(Pt(dx, dy)), hole.Translate(Pt(dx, dy)))
		return pg.Contains(Pt(px, py)) == moved.Contains(Pt(px+dx, py+dy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBounds(t *testing.T) {
	r := Ring{Pt(-1, 2), Pt(3, -4), Pt(0, 7)}
	b := r.Bounds()
	if b.Min != Pt(-1, -4) || b.Max != Pt(3, 7) {
		t.Errorf("Bounds = %v", b)
	}
	var empty Ring
	if got := empty.Bounds(); got != (Rect{}) {
		t.Errorf("empty Bounds = %v", got)
	}
}
