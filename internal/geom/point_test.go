package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if got := p.Add(q); got != Pt(4, 2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3*1+4*(-2) {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 3*(-2)-4*1 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestDistAndDist2(t *testing.T) {
	tests := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-2, 0), Pt(2, 0), 4},
	}
	for _, tt := range tests {
		if got := tt.a.Dist(tt.b); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.a.Dist2(tt.b); !almostEq(got, tt.want*tt.want, 1e-12) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want*tt.want)
		}
	}
}

// TestDistSymmetry is a property check: distance is symmetric and satisfies
// the triangle inequality.
func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(clampF(ax), clampF(ay)), Pt(clampF(bx), clampF(by)), Pt(clampF(cx), clampF(cy))
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampF folds arbitrary float64s (including NaN/Inf from quick) into a
// sane coordinate range.
func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Segment{A: Pt(0, 0), B: Pt(10, 0)}
	tests := []struct {
		p    Point
		want Point
	}{
		{Pt(5, 3), Pt(5, 0)},    // projects inside
		{Pt(-4, 2), Pt(0, 0)},   // clamps to A
		{Pt(14, -2), Pt(10, 0)}, // clamps to B
	}
	for _, tt := range tests {
		if got := s.ClosestPoint(tt.p); got.Dist(tt.want) > 1e-12 {
			t.Errorf("ClosestPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := s.Dist(Pt(5, 3)); !almostEq(got, 3, 1e-12) {
		t.Errorf("Dist = %v, want 3", got)
	}
	// Degenerate segment.
	d := Segment{A: Pt(1, 1), B: Pt(1, 1)}
	if got := d.ClosestPoint(Pt(4, 5)); got != Pt(1, 1) {
		t.Errorf("degenerate ClosestPoint = %v", got)
	}
	if got := s.Len(); got != 10 {
		t.Errorf("Len = %v", got)
	}
	if got := s.Midpoint(); got != Pt(5, 0) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 2)}
	if r.Width() != 4 || r.Height() != 2 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Pt(2, 1)) || r.Contains(Pt(5, 1)) {
		t.Error("Contains wrong")
	}
	e := r.Expand(1)
	if e.Min != Pt(-1, -1) || e.Max != Pt(5, 3) {
		t.Errorf("Expand = %v", e)
	}
	u := r.Union(Rect{Min: Pt(-2, 1), Max: Pt(1, 5)})
	if u.Min != Pt(-2, 0) || u.Max != Pt(4, 5) {
		t.Errorf("Union = %v", u)
	}
}
