package geom

import (
	"math"
	"testing"
)

// circleRing builds an n-gon circle (duplicated from shapes to keep geom
// dependency-free).
func circleRing(c Point, r float64, n int) Ring {
	ring := make(Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		ring[i] = Pt(c.X+r*math.Cos(a), c.Y+r*math.Sin(a))
	}
	return ring
}

// TestMedialAxisRectangle: the medial axis of a long rectangle is its
// horizontal center line plus short diagonal spurs at the ends; all samples
// must sit near y=5 or on the 45-degree corner bisectors.
func TestMedialAxisRectangle(t *testing.T) {
	pg := MustPolygon(Ring{Pt(0, 0), Pt(40, 0), Pt(40, 10), Pt(0, 10)})
	axis := MedialAxis(pg, MedialAxisOptions{GridStep: 0.5})
	if len(axis) == 0 {
		t.Fatal("no medial samples")
	}
	for _, m := range axis {
		onCenter := math.Abs(m.P.Y-5) < 0.75
		// Corner bisectors: clearance equals distance to both walls.
		onBisector := math.Abs(m.Clearance-math.Min(m.P.X, 40-m.P.X)) < 0.75
		if !onCenter && !onBisector {
			t.Fatalf("sample %v (clearance %.2f) is off the rectangle's medial axis", m.P, m.Clearance)
		}
	}
	// The axis must span most of the rectangle's length.
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, m := range axis {
		minX = math.Min(minX, m.P.X)
		maxX = math.Max(maxX, m.P.X)
	}
	if maxX-minX < 30 {
		t.Errorf("axis spans [%.1f, %.1f], want most of [0,40]", minX, maxX)
	}
}

// TestMedialAxisAnnulus: the medial axis of an annulus is the mid circle.
func TestMedialAxisAnnulus(t *testing.T) {
	c := Pt(0, 0)
	pg := MustPolygon(circleRing(c, 10, 90), circleRing(c, 4, 60))
	axis := MedialAxis(pg, MedialAxisOptions{GridStep: 0.4, MinClearance: 1.6})
	if len(axis) == 0 {
		t.Fatal("no medial samples")
	}
	// The polygonal circle approximation adds short vertex-bisector spurs
	// near the rings; the bulk of the axis must still be the mid circle.
	onMid := 0
	for _, m := range axis {
		if math.Abs(m.P.Dist(c)-7) <= 1 {
			onMid++
		}
	}
	if frac := float64(onMid) / float64(len(axis)); frac < 0.9 {
		t.Errorf("only %.0f%% of samples on the mid circle", 100*frac)
	}
}

// TestMedialClearanceMatchesBoundaryDist: each sample's clearance is its
// boundary distance.
func TestMedialClearanceMatchesBoundaryDist(t *testing.T) {
	pg := MustPolygon(Ring{Pt(0, 0), Pt(20, 0), Pt(20, 20), Pt(0, 20)})
	axis := MedialAxis(pg, MedialAxisOptions{GridStep: 1})
	for _, m := range axis {
		if d := pg.BoundaryDist(m.P); !almostEq(d, m.Clearance, 1e-9) {
			t.Fatalf("clearance %.3f != boundary dist %.3f at %v", m.Clearance, d, m.P)
		}
	}
}

// TestIntersectionArea: a disk fully inside the region has intersection
// area ~pi r^2; a disk centered on a straight boundary edge has about half.
func TestIntersectionArea(t *testing.T) {
	pg := MustPolygon(Ring{Pt(0, 0), Pt(100, 0), Pt(100, 100), Pt(0, 100)})
	full := IntersectionArea(pg, Pt(50, 50), 10, 0.25)
	if math.Abs(full-math.Pi*100)/(math.Pi*100) > 0.03 {
		t.Errorf("interior disk area = %.1f, want ~%.1f", full, math.Pi*100)
	}
	half := IntersectionArea(pg, Pt(50, 0), 10, 0.25)
	if math.Abs(half-math.Pi*50)/(math.Pi*50) > 0.06 {
		t.Errorf("edge disk area = %.1f, want ~%.1f", half, math.Pi*50)
	}
}

// TestTheorem1Monotonicity reproduces paper Theorem 1 numerically: moving
// from a skeleton point toward the boundary along a chord, the disk-region
// intersection area does not increase.
func TestTheorem1Monotonicity(t *testing.T) {
	pg := MustPolygon(Ring{Pt(0, 0), Pt(100, 0), Pt(100, 20), Pt(0, 20)})
	// The skeleton point (50,10); its chord runs straight down to (50,0).
	const r = 8.0
	prev := math.Inf(1)
	for _, y := range []float64{10, 8, 6, 4, 2} {
		area := IntersectionArea(pg, Pt(50, y), r, 0.2)
		if area > prev*1.01 {
			t.Fatalf("area increased toward boundary at y=%v: %.1f > %.1f", y, area, prev)
		}
		prev = area
	}
}

// TestTheorem3Centrality reproduces paper Theorem 3 numerically: the
// epsilon-centrality of a skeleton point exceeds that of points on its
// chord toward the boundary.
func TestTheorem3Centrality(t *testing.T) {
	pg := MustPolygon(Ring{Pt(0, 0), Pt(100, 0), Pt(100, 20), Pt(0, 20)})
	const (
		r   = 8.0
		eps = 2.0
	)
	center := Centrality(pg, Pt(50, 10), r, eps, 0.5)
	toward := Centrality(pg, Pt(50, 5), r, eps, 0.5)
	nearer := Centrality(pg, Pt(50, 3), r, eps, 0.5)
	if !(center > toward && toward > nearer) {
		t.Errorf("centrality not decreasing along chord: %.1f, %.1f, %.1f", center, toward, nearer)
	}
}

// TestSampleBoundarySpacing: samples are spaced at most the requested step.
func TestSampleBoundarySpacing(t *testing.T) {
	pg := MustPolygon(Ring{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)})
	step := 0.5
	samples := SampleBoundary(pg, step)
	want := int(pg.Outer.Perimeter() / step)
	if len(samples) < want {
		t.Errorf("samples = %d, want >= %d", len(samples), want)
	}
	for _, s := range samples {
		if pg.BoundaryDist(s) > 1e-9 {
			t.Fatalf("sample %v off the boundary", s)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{math.Pi / 2, 0, math.Pi / 2},
		{-math.Pi / 2, math.Pi / 2, -math.Pi},
		{3 * math.Pi, 0, math.Pi},
	}
	for _, tt := range tests {
		if got := angleDiff(tt.a, tt.b); !almostEq(math.Abs(got), math.Abs(tt.want), 1e-9) {
			t.Errorf("angleDiff(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPointIndexWithin(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(5, 5), Pt(-3, 2)}
	idx := newPointIndex(pts, 2)
	got := idx.within(Pt(0, 0), 1.5)
	if len(got) != 2 { // (0,0) and (1,0)
		t.Errorf("within = %v, want 2 points", got)
	}
	if got := idx.within(Pt(100, 100), 1); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
}
