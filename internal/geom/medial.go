package geom

import "math"

// MedialAxisOptions controls the grid-based approximation of a polygon's
// continuous medial axis (Blum's skeleton), which serves as ground truth for
// evaluating extracted discrete skeletons.
type MedialAxisOptions struct {
	// GridStep is the spacing of the sample lattice. Smaller values give a
	// denser, more accurate axis at quadratic cost. If zero, a step of
	// 1/200 of the larger bounding-box dimension is used.
	GridStep float64
	// BoundaryStep is the spacing of boundary samples used to locate
	// tangent points. If zero, GridStep/2 is used.
	BoundaryStep float64
	// MinAngle is the minimal angle (radians) the two nearest boundary
	// points must subtend at a medial point. Blum's definition requires two
	// distinct tangent points; the angle threshold suppresses the unstable
	// branches caused by boundary vertices. Defaults to 0.6 rad (~34°).
	MinAngle float64
	// Tol is the slack allowed between the distances to the two tangent
	// points, as a fraction of the clearance. Defaults to 0.15.
	Tol float64
	// MinClearance drops samples closer to the boundary than this; it
	// suppresses the short vertex-bisector spurs that polygonal
	// approximations of smooth curves would otherwise sprout. Defaults to
	// 3x GridStep.
	MinClearance float64
}

func (o MedialAxisOptions) withDefaults(b Rect) MedialAxisOptions {
	if o.GridStep <= 0 {
		o.GridStep = math.Max(b.Width(), b.Height()) / 200
	}
	if o.BoundaryStep <= 0 {
		o.BoundaryStep = o.GridStep / 2
	}
	if o.MinAngle <= 0 {
		o.MinAngle = 0.6
	}
	if o.Tol <= 0 {
		o.Tol = 0.15
	}
	if o.MinClearance <= 0 {
		o.MinClearance = 3 * o.GridStep
	}
	return o
}

// MedialPoint is a sample of the approximate medial axis: its location and
// clearance (radius of the maximal inscribed disk centered there).
type MedialPoint struct {
	P         Point
	Clearance float64
}

// MedialAxis approximates the continuous medial axis of the polygon by
// scanning a lattice of interior points and keeping those whose nearest
// boundary samples split into two well-separated clusters — the discrete
// analogue of "the maximal disk touches the boundary at two or more tangent
// points" (Blum's definition, paper Sec. II-B).
func MedialAxis(pg *Polygon, opts MedialAxisOptions) []MedialPoint {
	b := pg.Bounds()
	opts = opts.withDefaults(b)
	samples := SampleBoundary(pg, opts.BoundaryStep)
	idx := newPointIndex(samples, opts.BoundaryStep*4)

	var out []MedialPoint
	for y := b.Min.Y; y <= b.Max.Y; y += opts.GridStep {
		for x := b.Min.X; x <= b.Max.X; x += opts.GridStep {
			p := Point{X: x, Y: y}
			if !pg.Contains(p) {
				continue
			}
			clearance := pg.BoundaryDist(p)
			if clearance < opts.MinClearance {
				continue // too close to the boundary to be medial
			}
			if hasTwoTangents(p, clearance, idx, opts) {
				out = append(out, MedialPoint{P: p, Clearance: clearance})
			}
		}
	}
	return out
}

// hasTwoTangents reports whether the near-boundary samples of p split into
// two directions separated by at least MinAngle.
func hasTwoTangents(p Point, clearance float64, idx *pointIndex, opts MedialAxisOptions) bool {
	maxDist := clearance * (1 + opts.Tol)
	near := idx.within(p, maxDist)
	if len(near) < 2 {
		return false
	}
	// Find the direction of the nearest sample, then look for another
	// near-sample at sufficient angular separation.
	best := math.Inf(1)
	var ref Point
	for _, q := range near {
		if d := p.Dist2(q); d < best {
			best = d
			ref = q
		}
	}
	refAngle := math.Atan2(ref.Y-p.Y, ref.X-p.X)
	for _, q := range near {
		a := math.Atan2(q.Y-p.Y, q.X-p.X)
		diff := math.Abs(angleDiff(a, refAngle))
		if diff >= opts.MinAngle {
			return true
		}
	}
	return false
}

// angleDiff returns the signed difference between two angles in (-π, π].
func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// SampleBoundary returns points spaced at most step apart along every
// boundary ring of the polygon.
func SampleBoundary(pg *Polygon, step float64) []Point {
	var out []Point
	for _, r := range pg.Rings() {
		n := len(r)
		for i := 0; i < n; i++ {
			a, b := r[i], r[(i+1)%n]
			l := a.Dist(b)
			segs := int(math.Ceil(l / step))
			if segs < 1 {
				segs = 1
			}
			for s := 0; s < segs; s++ {
				t := float64(s) / float64(segs)
				out = append(out, a.Add(b.Sub(a).Scale(t)))
			}
		}
	}
	return out
}

// IntersectionArea estimates λ(D_i(c, r)) — the area of the intersection of
// the disk D(c, r) with the polygon (paper Sec. II-B) — by lattice sampling
// with the given step.
func IntersectionArea(pg *Polygon, c Point, r, step float64) float64 {
	if step <= 0 {
		step = r / 50
	}
	var inside int
	var total int
	r2 := r * r
	for y := c.Y - r; y <= c.Y+r; y += step {
		for x := c.X - r; x <= c.X+r; x += step {
			p := Point{X: x, Y: y}
			if p.Dist2(c) > r2 {
				continue
			}
			total++
			if pg.Contains(p) {
				inside++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return math.Pi * r2 * float64(inside) / float64(total)
}

// Centrality estimates the ε-centrality C_R^ε(c) of Definition 1: the
// average intersection area λ(D_i(v, r)) over points v in the ε-disk around
// c, computed by lattice sampling with the given step inside the ε-disk.
func Centrality(pg *Polygon, c Point, r, eps, step float64) float64 {
	if step <= 0 {
		step = eps / 8
	}
	var sum float64
	var count int
	eps2 := eps * eps
	for y := c.Y - eps; y <= c.Y+eps; y += step {
		for x := c.X - eps; x <= c.X+eps; x += step {
			v := Point{X: x, Y: y}
			if v.Dist2(c) > eps2 {
				continue
			}
			sum += IntersectionArea(pg, v, r, r/20)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// pointIndex is a uniform-grid spatial index over a fixed point set.
type pointIndex struct {
	cell   float64
	origin Point
	cols   int
	rows   int
	bins   map[int][]Point
}

func newPointIndex(pts []Point, cell float64) *pointIndex {
	if cell <= 0 {
		cell = 1
	}
	idx := &pointIndex{cell: cell, bins: make(map[int][]Point, len(pts))}
	if len(pts) == 0 {
		return idx
	}
	b := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b.Min.X = math.Min(b.Min.X, p.X)
		b.Min.Y = math.Min(b.Min.Y, p.Y)
		b.Max.X = math.Max(b.Max.X, p.X)
		b.Max.Y = math.Max(b.Max.Y, p.Y)
	}
	idx.origin = b.Min
	idx.cols = int(b.Width()/cell) + 1
	idx.rows = int(b.Height()/cell) + 1
	for _, p := range pts {
		k := idx.key(p)
		idx.bins[k] = append(idx.bins[k], p)
	}
	return idx
}

func (idx *pointIndex) key(p Point) int {
	cx := int((p.X - idx.origin.X) / idx.cell)
	cy := int((p.Y - idx.origin.Y) / idx.cell)
	return cy*idx.cols + cx
}

// within returns all indexed points at distance <= r from p.
func (idx *pointIndex) within(p Point, r float64) []Point {
	var out []Point
	r2 := r * r
	cx0 := int((p.X - r - idx.origin.X) / idx.cell)
	cx1 := int((p.X + r - idx.origin.X) / idx.cell)
	cy0 := int((p.Y - r - idx.origin.Y) / idx.cell)
	cy1 := int((p.Y + r - idx.origin.Y) / idx.cell)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			if cx < 0 || cy < 0 || cx >= idx.cols || cy >= idx.rows {
				continue
			}
			for _, q := range idx.bins[cy*idx.cols+cx] {
				if p.Dist2(q) <= r2 {
					out = append(out, q)
				}
			}
		}
	}
	return out
}
