package graph

import (
	"math/rand"
	"testing"

	"bfskel/internal/geom"
	"bfskel/internal/radio"
)

// overlayTestGraph builds a moderately sized random UDG for churn tests.
func overlayTestGraph(t *testing.T, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 600)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*40, rng.Float64()*40)
	}
	return Build(pts, radio.UDG{R: 3.2}, seed)
}

// rebuildAlive constructs a fresh graph with the same alive adjacency as the
// overlayed graph (dead nodes isolated), the reference for kernel checks.
func rebuildAlive(g *Graph) *Graph {
	fresh := New(g.N())
	for v := 0; v < g.N(); v++ {
		if !g.Alive(int32(v)) {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				fresh.AddEdge(v, int(u))
			}
		}
	}
	fresh.SortAdjacency()
	return fresh
}

func TestOverlayRemoveReviveRoundTrip(t *testing.T) {
	g := overlayTestGraph(t, 7)
	n := g.N()
	wantEdges := g.NumEdges()
	baseAdj := make([][]int32, n)
	for v := 0; v < n; v++ {
		baseAdj[v] = append([]int32(nil), g.Neighbors(v)...)
	}

	rng := rand.New(rand.NewSource(99))
	var batch []int32
	for _, v := range rng.Perm(n)[:64] {
		batch = append(batch, int32(v))
	}
	patched := g.RemoveNodes(batch)
	if len(patched) == 0 {
		t.Fatal("RemoveNodes reported no patched nodes")
	}
	if got := g.AliveCount(); got != n-64 {
		t.Fatalf("AliveCount = %d, want %d", got, n-64)
	}
	// Windows must equal the base rows filtered by liveness, stay sorted,
	// and dead nodes must be fully detached.
	edgeCount := 0
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		if !g.Alive(int32(v)) {
			if len(nbrs) != 0 {
				t.Fatalf("dead node %d keeps %d neighbors", v, len(nbrs))
			}
			continue
		}
		want := baseAdj[v][:0:0]
		for _, u := range baseAdj[v] {
			if g.Alive(u) {
				want = append(want, u)
			}
		}
		if len(nbrs) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", v, len(nbrs), len(want))
		}
		for i := range nbrs {
			if nbrs[i] != want[i] {
				t.Fatalf("node %d: neighbor[%d] = %d, want %d", v, i, nbrs[i], want[i])
			}
		}
		edgeCount += len(nbrs)
	}
	if got := g.NumEdges(); got != edgeCount/2 {
		t.Fatalf("NumEdges = %d, recount says %d", got, edgeCount/2)
	}

	// Revive half, then everything: the graph must return to its base state.
	g.ReviveNodes(batch[:32])
	g.ReviveNodes(batch)
	if got := g.AliveCount(); got != n {
		t.Fatalf("AliveCount after revive = %d, want %d", got, n)
	}
	if got := g.NumEdges(); got != wantEdges {
		t.Fatalf("NumEdges after revive = %d, want %d", got, wantEdges)
	}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		if len(nbrs) != len(baseAdj[v]) {
			t.Fatalf("node %d: %d neighbors after revive, want %d", v, len(nbrs), len(baseAdj[v]))
		}
		for i := range nbrs {
			if nbrs[i] != baseAdj[v][i] {
				t.Fatalf("node %d: neighbor[%d] = %d after revive, want %d", v, i, nbrs[i], baseAdj[v][i])
			}
		}
	}
}

func TestOverlayKernelsMatchRebuiltGraph(t *testing.T) {
	g := overlayTestGraph(t, 11)
	n := g.N()
	rng := rand.New(rand.NewSource(5))
	var batch []int32
	for _, v := range rng.Perm(n)[:48] {
		batch = append(batch, int32(v))
	}
	g.RemoveNodes(batch)
	ref := rebuildAlive(g)

	// The batched MS-BFS kernel over the overlayed CSR must agree with the
	// walker kernel over a freshly built graph with the same alive edges.
	const k = 4
	var sources []int32
	for v := int32(0); v < int32(n); v += 3 {
		sources = append(sources, v)
	}
	got := g.BatchBallSizes(k, sources)
	want := ref.BatchBallSizes(k, sources)
	for i, src := range sources {
		for r := 0; r < k; r++ {
			if got[i][r] != want[i][r] {
				t.Fatalf("ball size of %d at r=%d: overlay %d, rebuilt %d", src, r+1, got[i][r], want[i][r])
			}
		}
	}

	// Pruned batch: bound every node by its distance to a site set, then
	// compare visits against the rebuilt graph.
	sites := []int32{sources[0], sources[1], sources[2]}
	bound := make([]int32, n)
	for v := range bound {
		bound[v] = Unreachable
	}
	q := sites
	for _, s := range sites {
		bound[s] = 0
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, v := range g.Neighbors(int(u)) {
			if bound[v] == Unreachable {
				bound[v] = bound[u] + 1
				q = append(q, v)
			}
		}
	}
	wg, wr := NewWalker(g), NewWalker(ref)
	gotV := wg.PrunedBatch(sites, bound, 1, nil)
	wantV := wr.PrunedBatch(sites, bound, 1, nil)
	if len(gotV) != len(wantV) {
		t.Fatalf("pruned visits: overlay %d, rebuilt %d", len(gotV), len(wantV))
	}
	for i := range gotV {
		if gotV[i] != wantV[i] {
			t.Fatalf("pruned visit %d: overlay %+v, rebuilt %+v", i, gotV[i], wantV[i])
		}
	}
}
