// Multi-source breadth-first search with bit-parallel frontiers, after
// Then et al., "The More the Merrier: Efficient Multi-Source Graph
// Traversal" (VLDB 2015). The all-sources truncated flooding that opens the
// paper's pipeline (|N_k(v)| for every node, Sec. III-A) runs one BFS per
// node; MS-BFS advances up to 64 sources together, one bit per source, so a
// node shared by many balls is expanded once per level per batch instead of
// once per source, and the whole sweep runs over the frozen CSR arrays.
//
// Per-source results are exact — the bitmasks keep every source's
// visited set separate — so outputs are bit-identical to the walker path
// regardless of batch boundaries or worker count.
package graph

import "math/bits"

// Kernel selects the truncated-BFS implementation behind the all-sources
// flooding entry points (BallSizesInto, AllKHopCounts, BallWeightedSumsInto).
type Kernel uint8

const (
	// KernelAuto picks per call: the batched MS-BFS kernel on large frozen
	// graphs with a non-trivial radius, the walker otherwise.
	KernelAuto Kernel = iota
	// KernelWalker forces one truncated BFS per source over pooled walker
	// scratch (the PR 1 path).
	KernelWalker
	// KernelBatched forces the bit-parallel MS-BFS kernel; it freezes the
	// graph if needed.
	KernelBatched
)

// String names the kernel for stats and trace attributes.
func (k Kernel) String() string {
	switch k {
	case KernelWalker:
		return "walker"
	case KernelBatched:
		return "batched"
	default:
		return "auto"
	}
}

// msbfsBatch is the number of sources one kernel pass advances together:
// one bit of a machine word per source.
const msbfsBatch = 64

// smallSourceFactor gates the arbitrary-source batch helpers: below
// N/smallSourceFactor sources, per-source walker sweeps beat the MS-BFS
// batches even on frozen graphs (both paths produce identical values).
const smallSourceFactor = 16

// Automatic cutover bounds: below either, the per-source walker wins — the
// batch bookkeeping needs enough sources and enough frontier overlap (radius
// >= 2) to amortize.
const (
	kernelCutoverNodes = 512
	kernelCutoverK     = 2
)

// resolveKernel turns a kernel request into the concrete kernel this call
// will run, given the flooding radius k. KernelBatched is honored by
// freezing on demand; KernelAuto never mutates the graph.
func (g *Graph) resolveKernel(kern Kernel, k int) Kernel {
	switch kern {
	case KernelWalker:
		return KernelWalker
	case KernelBatched:
		g.Freeze()
		return KernelBatched
	default:
		if g.frozen && k >= kernelCutoverK && g.N() >= kernelCutoverNodes {
			return KernelBatched
		}
		return KernelWalker
	}
}

// ResolveKernel reports which concrete kernel a request would run for a
// flooding of radius k, without mutating the graph. Exported so callers can
// record the decision (core.Stats, trace attributes).
func (g *Graph) ResolveKernel(kern Kernel, k int) Kernel {
	if kern == KernelBatched {
		return KernelBatched
	}
	return g.resolveKernel(kern, k)
}

// msbfsScratch holds one worker's MS-BFS state: one word of source bits per
// node for the visited set, the current frontier and the next frontier, plus
// the frontier node lists and a touched list for O(visited) reset.
type msbfsScratch struct {
	seen     []uint64
	frontier []uint64
	next     []uint64
	cur      []int32
	nxt      []int32
	touched  []int32
	srcs     []int32 // batch source buffer for range drivers
	rows     [][]int // batch row views for range drivers
}

func newMSBFSScratch(n int) *msbfsScratch {
	return &msbfsScratch{
		seen:     make([]uint64, n),
		frontier: make([]uint64, n),
		next:     make([]uint64, n),
		srcs:     make([]int32, 0, msbfsBatch),
		rows:     make([][]int, 0, msbfsBatch),
	}
}

// run floods up to 64 sources simultaneously, truncated at k hops, over the
// frozen CSR arrays. For source i it adds the number of nodes first reached
// at hop d to rows[i][min(d-1, len(rows[i])-1)] — per-radius tallies for
// k-wide rows, a running total for width-1 rows — and, when weight is
// non-nil, adds weight[v] for every reached v to wsums[i]. Either rows or
// wsums may be nil. Settle events within logRadius hops are appended to log
// as (node, source-bits) pairs — a replayable record of which sources
// reached which nodes — and the grown log is returned alongside the total
// number of (source, node) visits, the same tally the walker's visited
// counter produces. Pass logRadius 0 to disable logging.
//
// The scratch arrays must be all-zero on entry; run re-zeroes everything it
// touched before returning, so the cost of repeated runs is proportional to
// the flooded region only.
func (s *msbfsScratch) run(g *Graph, k int, sources []int32, rows [][]int, weight []int, wsums []int, log []VisitEvent, logRadius int) ([]VisitEvent, int) {
	if k <= 0 || len(sources) == 0 {
		return log, 0
	}
	offsets, targets, ends, ok := g.csrEff()
	if !ok || len(sources) > msbfsBatch {
		panic("graph: msbfs kernel needs a frozen graph and at most 64 sources")
	}
	// Locals pin the scratch slice headers so element stores inside the hot
	// loops cannot force header reloads.
	seen, frontier, next := s.seen, s.frontier, s.next
	cur := s.cur[:0]
	touched := s.touched[:0]
	for i, src := range sources {
		bit := uint64(1) << uint(i)
		if seen[src] == 0 {
			touched = append(touched, src)
		}
		if frontier[src] == 0 {
			cur = append(cur, src)
		}
		seen[src] |= bit
		frontier[src] |= bit
	}
	visited := 0
	for d := 1; d <= k && len(cur) > 0; d++ {
		// Expand: OR every frontier word into the neighbors' next words,
		// masking off bits already seen. seen[] is only updated in the
		// settle half, so the mask is stable across the whole level; the
		// filter keeps interior nodes (every bit seen) out of next/nxt
		// entirely, so the common already-visited edge costs one load and
		// no store.
		nxt := s.nxt[:0]
		for _, u := range cur {
			f := frontier[u]
			for _, v := range targets[offsets[u]:ends[u]] {
				add := f &^ seen[v]
				if add == 0 {
					continue
				}
				old := next[v]
				if nv := old | add; nv != old {
					if old == 0 {
						nxt = append(nxt, v)
					}
					next[v] = nv
				}
			}
		}
		s.nxt = nxt
		for _, u := range cur {
			frontier[u] = 0
		}
		cur = cur[:0]
		// Settle: every queued node carries first-time bits (the expand
		// mask guarantees it); tally them per source and promote them to
		// the next frontier.
		var cnt [msbfsBatch]int
		for _, v := range nxt {
			newBits := next[v]
			next[v] = 0
			if seen[v] == 0 {
				touched = append(touched, v)
			}
			seen[v] |= newBits
			frontier[v] = newBits
			cur = append(cur, v)
			visited += bits.OnesCount64(newBits)
			if d <= logRadius {
				log = append(log, VisitEvent{V: v, Bits: newBits})
			}
			if weight == nil {
				for b := newBits; b != 0; b &= b - 1 {
					cnt[bits.TrailingZeros64(b)]++
				}
			} else {
				wv := weight[v]
				for b := newBits; b != 0; b &= b - 1 {
					i := bits.TrailingZeros64(b)
					cnt[i]++
					wsums[i] += wv
				}
			}
		}
		if rows != nil {
			for i := range sources {
				if cnt[i] != 0 {
					row := rows[i]
					r := d - 1
					if r >= len(row) {
						r = len(row) - 1
					}
					row[r] += cnt[i]
				}
			}
		}
	}
	for _, u := range cur {
		frontier[u] = 0
	}
	for _, v := range touched {
		seen[v] = 0
	}
	s.cur = cur[:0]
	s.touched = touched[:0]
	return log, visited
}

// runBatch floods one batch through the walker's MS-BFS scratch, crediting
// the work to the walker's counters so pooled-engine observability sees the
// batched kernel exactly like walker sweeps.
func (w *Walker) runBatch(k int, sources []int32, rows [][]int, weight []int, wsums []int) {
	w.runBatchLogged(k, sources, rows, weight, wsums, nil, 0)
}

// runBatchLogged is runBatch with the settle log threaded through; the grown
// log slice is returned so per-batch log buffers can live outside the walker.
func (w *Walker) runBatchLogged(k int, sources []int32, rows [][]int, weight []int, wsums []int, log []VisitEvent, logRadius int) []VisitEvent {
	if w.ms == nil {
		w.ms = newMSBFSScratch(w.g.N())
	}
	log, visited := w.ms.run(w.g, k, sources, rows, weight, wsums, log, logRadius)
	w.s.sweeps += len(sources)
	w.s.visited += visited
	return log
}

// batchSource maps a batch slot to its source node: the i-th node of the
// spatial Z-curve ordering when Build derived one, the i-th node ID
// otherwise.
func (g *Graph) batchSource(i int) int32 {
	if len(g.batchOrder) == g.N() {
		return g.batchOrder[i]
	}
	return int32(i)
}

// ballSizesBatched fills out[v] (len k each, overwritten) with cumulative
// ball sizes for every node, batching 64 spatially grouped sources per
// kernel pass. Rows of width 1 degenerate to plain |N_k| counts.
func (g *Graph) ballSizesBatched(k int, out [][]int, acquire func() *Walker, release func(*Walker)) {
	n := g.N()
	batches := (n + msbfsBatch - 1) / msbfsBatch
	ParallelRange(g, batches, acquire, release, func(w *Walker, b int) {
		lo := b * msbfsBatch
		hi := lo + msbfsBatch
		if hi > n {
			hi = n
		}
		if w.ms == nil {
			w.ms = newMSBFSScratch(n)
		}
		srcs := w.ms.srcs[:0]
		rows := w.ms.rows[:0]
		for i := lo; i < hi; i++ {
			v := g.batchSource(i)
			srcs = append(srcs, v)
			row := out[v]
			for r := range row {
				row[r] = 0
			}
			rows = append(rows, row)
		}
		w.ms.srcs, w.ms.rows = srcs, rows
		w.runBatch(k, srcs, rows, nil, nil)
		for _, row := range rows {
			for r := 1; r < len(row); r++ {
				row[r] += row[r-1]
			}
		}
	})
}

// BatchBallSizes computes, for each source, the cumulative ball sizes
// |N_r(source)| for r in 1..k (excluding the source), indexed out[i][r-1].
// It is AllBallSizes over an arbitrary source set: sources are advanced 64
// at a time by the MS-BFS kernel when the graph is frozen, per-source walker
// sweeps otherwise. Duplicate sources are allowed and computed per entry.
func (g *Graph) BatchBallSizes(k int, sources []int32) [][]int {
	if k < 0 {
		k = 0
	}
	out := make([][]int, len(sources))
	flat := make([]int, len(sources)*k)
	for i := range out {
		out[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	if len(sources) == 0 || k == 0 {
		return out
	}
	if !g.frozen {
		ParallelRange(g, len(sources), nil, nil, func(w *Walker, i int) {
			ballSizesWalker(w, int(sources[i]), out[i])
		})
		return out
	}
	batches := (len(sources) + msbfsBatch - 1) / msbfsBatch
	ParallelRange(g, batches, nil, nil, func(w *Walker, b int) {
		lo := b * msbfsBatch
		hi := lo + msbfsBatch
		if hi > len(sources) {
			hi = len(sources)
		}
		rows := out[lo:hi]
		w.runBatch(k, sources[lo:hi], rows, nil, nil)
		for _, row := range rows {
			for r := 1; r < len(row); r++ {
				row[r] += row[r-1]
			}
		}
	})
	return out
}

// BatchBallSizesInto recomputes the cumulative ball-size rows of an
// arbitrary source set in place: rows[i] (len k, overwritten) receives
// |N_r(sources[i])| for r in 1..k. This is BatchBallSizes writing into
// caller-owned rows — the incremental extractor patches exactly the dirty
// rows of its persistent ball matrix with it. Sources run 64 per MS-BFS
// pass on frozen graphs, per-source walker sweeps otherwise; the values are
// identical either way.
func (g *Graph) BatchBallSizesInto(k int, sources []int32, rows [][]int, acquire func() *Walker, release func(*Walker)) {
	if len(sources) == 0 || k <= 0 {
		return
	}
	if !g.frozen || len(sources)*smallSourceFactor < g.N() {
		// Small source sets: per-source sweeps cost the sum of the ball
		// volumes, which undercuts the per-batch frontier machinery of the
		// MS-BFS path long before the set grows to a graph-sized fraction.
		ParallelRange(g, len(sources), acquire, release, func(w *Walker, i int) {
			ballSizesWalker(w, int(sources[i]), rows[i][:k])
		})
		return
	}
	batches := (len(sources) + msbfsBatch - 1) / msbfsBatch
	ParallelRange(g, batches, acquire, release, func(w *Walker, b int) {
		lo := b * msbfsBatch
		hi := lo + msbfsBatch
		if hi > len(sources) {
			hi = len(sources)
		}
		if w.ms == nil {
			w.ms = newMSBFSScratch(g.N())
		}
		batchRows := w.ms.rows[:0]
		for i := lo; i < hi; i++ {
			row := rows[i][:k]
			for r := range row {
				row[r] = 0
			}
			batchRows = append(batchRows, row)
		}
		w.ms.rows = batchRows
		w.runBatch(k, sources[lo:hi], batchRows, nil, nil)
		for _, row := range batchRows {
			for r := 1; r < len(row); r++ {
				row[r] += row[r-1]
			}
		}
	})
}

// BatchWeightedSums computes, for each source, the sum of weight[u] over all
// u in N_k(source) (excluding the source itself) into out[i]. This is
// BallWeightedSumsInto over an arbitrary source set — the incremental
// extractor re-derives the centrality sums of dirty nodes with it. Exact
// per source under both kernels.
func (g *Graph) BatchWeightedSums(k int, sources []int32, weight []int, out []int, acquire func() *Walker, release func(*Walker)) {
	if len(sources) == 0 {
		return
	}
	if !g.frozen || len(sources)*smallSourceFactor < g.N() {
		ParallelRange(g, len(sources), acquire, release, func(w *Walker, i int) {
			sum := 0
			w.Walk(int(sources[i]), k, func(u, _ int32) { sum += weight[u] })
			out[i] = sum
		})
		return
	}
	batches := (len(sources) + msbfsBatch - 1) / msbfsBatch
	ParallelRange(g, batches, acquire, release, func(w *Walker, b int) {
		lo := b * msbfsBatch
		hi := lo + msbfsBatch
		if hi > len(sources) {
			hi = len(sources)
		}
		var wbuf [msbfsBatch]int
		wb := wbuf[:hi-lo]
		w.runBatch(k, sources[lo:hi], nil, weight, wb)
		copy(out[lo:hi], wb)
	})
}

// BallWeightedSumsInto computes, for every node v, the sum of weight[u] over
// all u in N_k(v) (excluding v itself) into out (len >= N, overwritten).
// This is the bulk form of the centrality accumulation (Def. 3): one walker
// sweep per node, or — for the batched kernel — a per-level weighted tally
// rolled into the same MS-BFS passes as the ball sizes. Results are
// identical across kernels.
func (g *Graph) BallWeightedSumsInto(kern Kernel, k int, weight []int, out []int, acquire func() *Walker, release func(*Walker)) {
	n := g.N()
	if g.resolveKernel(kern, k) == KernelWalker {
		ParallelNodes(g, acquire, release, func(w *Walker, v int) {
			sum := 0
			w.Walk(v, k, func(u, _ int32) { sum += weight[u] })
			out[v] = sum
		})
		return
	}
	batches := (n + msbfsBatch - 1) / msbfsBatch
	ParallelRange(g, batches, acquire, release, func(w *Walker, b int) {
		lo := b * msbfsBatch
		hi := lo + msbfsBatch
		if hi > n {
			hi = n
		}
		if w.ms == nil {
			w.ms = newMSBFSScratch(n)
		}
		srcs := w.ms.srcs[:0]
		for i := lo; i < hi; i++ {
			srcs = append(srcs, g.batchSource(i))
		}
		w.ms.srcs = srcs
		var wbuf [msbfsBatch]int
		wb := wbuf[:len(srcs)]
		w.runBatch(k, srcs, nil, weight, wb)
		for i, v := range srcs {
			out[v] = wb[i]
		}
	})
}

// ballSizesWalker fills one node's cumulative ball-size row with a walker
// sweep; shared by the walker paths of BallSizesInto and BatchBallSizes.
func ballSizesWalker(w *Walker, v int, counts []int) {
	for r := range counts {
		counts[r] = 0
	}
	w.Walk(v, len(counts), func(_, d int32) { counts[d-1]++ })
	for r := 1; r < len(counts); r++ {
		counts[r] += counts[r-1]
	}
}
