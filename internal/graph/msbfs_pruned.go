// Batched variants of the pruned and bounded floods used outside the
// identify stage: the Voronoi stage's per-site slack-pruned BFS and the
// refine stage's radius-bounded floods. Same bit-parallel frontier scheme as
// msbfs.go, with two twists: a per-(node, level) admission bound (the
// Voronoi dmin+alpha prune — the check depends only on the node and the
// level, never on which source is flooding, so batching cannot change which
// nodes any single source visits), and a min-ID parent choice resolved by
// rescanning each settled node's sorted adjacency against the still-intact
// previous-level frontier.
package graph

import "math/bits"

// PrunedVisit is one settle of a slack-pruned batched flood: source Src
// reached node V at hop distance D through Parent, the lowest-ID neighbor
// of V at distance D-1 within Src's pruned visited set. Seeds (D=0) are not
// emitted.
type PrunedVisit struct {
	V      int32
	Src    int32
	D      int32
	Parent int32
}

// PrunedBatch floods up to 64 sources simultaneously under the admission
// rule d <= bound[v]+slack (nodes with bound[v] < 0 admit nothing): exactly
// the Voronoi stage's per-site pruned flood, batched. Every admitted settle
// is appended to buf as a PrunedVisit whose Parent is the canonical min-ID
// predecessor; the grown buffer is returned. Requires a frozen graph and
// sorted adjacency (Build guarantees both).
func (w *Walker) PrunedBatch(sources []int32, bound []int32, slack int32, buf []PrunedVisit) []PrunedVisit {
	if len(sources) == 0 {
		return buf
	}
	g := w.g
	offsets, targets, ends, ok := g.csrEff()
	if !ok || len(sources) > msbfsBatch {
		panic("graph: pruned batch kernel needs a frozen graph and at most 64 sources")
	}
	if w.ms == nil {
		w.ms = newMSBFSScratch(g.N())
	}
	s := w.ms
	seen, frontier, next := s.seen, s.frontier, s.next
	cur := s.cur[:0]
	touched := s.touched[:0]
	for i, src := range sources {
		bit := uint64(1) << uint(i)
		if seen[src] == 0 {
			touched = append(touched, src)
		}
		if frontier[src] == 0 {
			cur = append(cur, src)
		}
		seen[src] |= bit
		frontier[src] |= bit
	}
	emitted := 0
	for d := int32(1); len(cur) > 0; d++ {
		nxt := s.nxt[:0]
		for _, u := range cur {
			f := frontier[u]
			for _, v := range targets[offsets[u]:ends[u]] {
				if b := bound[v]; b < 0 || d > b+slack {
					continue
				}
				add := f &^ seen[v]
				if add == 0 {
					continue
				}
				old := next[v]
				if nv := old | add; nv != old {
					if old == 0 {
						nxt = append(nxt, v)
					}
					next[v] = nv
				}
			}
		}
		s.nxt = nxt
		// Settle phase A: resolve parents while frontier still holds only
		// level d-1 bits. Scanning v's sorted adjacency ascending and taking
		// the first neighbor carrying each still-needed bit yields the min-ID
		// predecessor per source. (Clearing the old frontier first would be
		// wrong the other way around too: a neighbor settled earlier in this
		// same level would already carry its level-d bits.)
		for _, v := range nxt {
			newBits := next[v]
			var parents [msbfsBatch]int32
			needed := newBits
			for _, u := range targets[offsets[v]:ends[v]] {
				avail := frontier[u] & needed
				if avail == 0 {
					continue
				}
				for b := avail; b != 0; b &= b - 1 {
					parents[bits.TrailingZeros64(b)] = u
				}
				needed &^= avail
				if needed == 0 {
					break
				}
			}
			for b := newBits; b != 0; b &= b - 1 {
				i := bits.TrailingZeros64(b)
				buf = append(buf, PrunedVisit{V: v, Src: sources[i], D: d, Parent: parents[i]})
			}
			emitted += bits.OnesCount64(newBits)
		}
		for _, u := range cur {
			frontier[u] = 0
		}
		cur = cur[:0]
		// Settle phase B: promote the new bits to the next frontier.
		for _, v := range nxt {
			newBits := next[v]
			next[v] = 0
			if seen[v] == 0 {
				touched = append(touched, v)
			}
			seen[v] |= newBits
			frontier[v] = newBits
			cur = append(cur, v)
		}
	}
	for _, v := range touched {
		seen[v] = 0
	}
	s.cur = cur[:0]
	s.touched = touched[:0]
	w.s.sweeps += len(sources)
	w.s.visited += emitted
	return buf
}

// BoundedBatch floods up to 64 sources simultaneously, truncated at radius
// hops, never expanding into nodes with blocked[v] set (sources are seeded
// regardless): the batched form of the refine stage's skeleton-avoiding
// floodFrom. visit is called once per settled (node, bits) pair in level
// order; seeds are not reported. Requires a frozen graph.
func (w *Walker) BoundedBatch(sources []int32, radius int32, blocked []bool, visit func(v int32, bits uint64)) {
	w.boundedBatch(sources, radius, blocked, visit, nil, nil)
}

// BoundedReach floods up to 64 sources simultaneously, truncated at radius
// hops, and records which sources reached each probe: bit i of reach[j] is
// set iff probes[j] lies within radius hops of sources[i] (a probe that IS
// source i counts, distance 0). reach must have len(probes) entries; they
// are overwritten. Requires a frozen graph.
func (w *Walker) BoundedReach(sources []int32, radius int32, probes []int32, reach []uint64) {
	w.boundedBatch(sources, radius, nil, nil, probes, reach)
}

// boundedBatch is the shared truncated bit-parallel flood under an optional
// blocked set, reporting settles through visit and probing seen-words for
// probe nodes before the reset.
func (w *Walker) boundedBatch(sources []int32, radius int32, blocked []bool, visit func(v int32, bits uint64), probes []int32, reach []uint64) {
	for j := range reach {
		reach[j] = 0
	}
	if len(sources) == 0 || radius <= 0 {
		for j, p := range probes {
			for i, src := range sources {
				if p == src {
					reach[j] |= uint64(1) << uint(i)
				}
			}
		}
		return
	}
	g := w.g
	offsets, targets, ends, ok := g.csrEff()
	if !ok || len(sources) > msbfsBatch {
		panic("graph: bounded batch kernel needs a frozen graph and at most 64 sources")
	}
	if w.ms == nil {
		w.ms = newMSBFSScratch(g.N())
	}
	s := w.ms
	seen, frontier, next := s.seen, s.frontier, s.next
	cur := s.cur[:0]
	touched := s.touched[:0]
	for i, src := range sources {
		bit := uint64(1) << uint(i)
		if seen[src] == 0 {
			touched = append(touched, src)
		}
		if frontier[src] == 0 {
			cur = append(cur, src)
		}
		seen[src] |= bit
		frontier[src] |= bit
	}
	visited := 0
	for d := int32(1); d <= radius && len(cur) > 0; d++ {
		nxt := s.nxt[:0]
		for _, u := range cur {
			f := frontier[u]
			for _, v := range targets[offsets[u]:ends[u]] {
				if blocked != nil && blocked[v] {
					continue
				}
				add := f &^ seen[v]
				if add == 0 {
					continue
				}
				old := next[v]
				if nv := old | add; nv != old {
					if old == 0 {
						nxt = append(nxt, v)
					}
					next[v] = nv
				}
			}
		}
		s.nxt = nxt
		for _, u := range cur {
			frontier[u] = 0
		}
		cur = cur[:0]
		for _, v := range nxt {
			newBits := next[v]
			next[v] = 0
			if seen[v] == 0 {
				touched = append(touched, v)
			}
			seen[v] |= newBits
			frontier[v] = newBits
			cur = append(cur, v)
			visited += bits.OnesCount64(newBits)
			if visit != nil {
				visit(v, newBits)
			}
		}
	}
	for j, p := range probes {
		reach[j] = seen[p]
	}
	for _, u := range cur {
		frontier[u] = 0
	}
	for _, v := range touched {
		seen[v] = 0
	}
	s.cur = cur[:0]
	s.touched = touched[:0]
	w.s.sweeps += len(sources)
	w.s.visited += visited
}
