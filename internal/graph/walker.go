package graph

// Walker performs repeated truncated BFS sweeps over one graph while
// reusing its internal buffers, so per-sweep cost is proportional to the
// visited neighborhood only. It is the per-goroutine BFS execution context:
// the batched MS-BFS kernel hangs its bitmask scratch off the same walker
// (allocated on first batched use), so one pool serves both kernels and the
// work counters drain through one place. A Walker is not safe for
// concurrent use; create one per goroutine.
type Walker struct {
	g  *Graph
	s  *khopScratch
	ms *msbfsScratch
}

// NewWalker creates a walker for g.
func NewWalker(g *Graph) *Walker {
	return &Walker{g: g, s: newKHopScratch(g.N())}
}

// BFSInto is a full (untruncated) BFS from src into the caller-provided
// dist slice (len N, overwritten; Unreachable marks other components). The
// queue comes from the walker's scratch, so repeated calls allocate nothing.
func (w *Walker) BFSInto(src int, dist []int32) {
	w.bfsInto(src, dist, nil)
}

// BFSPathsInto is BFSInto plus a parent array for shortest-path
// reconstruction (parent[src] == src, Unreachable where unvisited), both
// caller-provided and overwritten.
func (w *Walker) BFSPathsInto(src int, dist, parent []int32) {
	w.bfsInto(src, dist, parent)
}

func (w *Walker) bfsInto(src int, dist, parent []int32) {
	s := w.s
	s.sweeps++
	for i := range dist {
		dist[i] = Unreachable
	}
	if parent != nil {
		for i := range parent {
			parent[i] = Unreachable
		}
		parent[src] = int32(src)
	}
	dist[src] = 0
	s.queue = s.queue[:0]
	s.queue = append(s.queue, int32(src))
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		du := dist[u]
		for _, v := range w.g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				if parent != nil {
					parent[v] = u
				}
				s.queue = append(s.queue, v)
				s.visited++
			}
		}
	}
}

// Walk runs BFS from src truncated at k hops, calling visit(v, d) for every
// node reached at hop distance d in 1..k. src itself is not visited.
func (w *Walker) Walk(src, k int, visit func(v, d int32)) {
	w.s.run(w.g, src, k, visit)
}

// WalkUntil is Walk with early termination: the sweep stops as soon as
// visit returns false. Use it when the answer can be decided before the
// whole k-hop ball is flooded (e.g. local-maximum tests).
func (w *Walker) WalkUntil(src, k int, visit func(v, d int32) bool) {
	w.s.runUntil(w.g, src, k, visit)
}

// Count returns |N_k(src)| using the walker's buffers.
func (w *Walker) Count(src, k int) int {
	n := 0
	w.s.run(w.g, src, k, func(_, _ int32) { n++ })
	return n
}

// TakeCounts drains the walker's work counters: the number of truncated BFS
// sweeps run and nodes visited since the last drain. Pools (core.Extractor)
// drain on release, turning per-walker tallies into per-stage aggregates
// for the observability layer.
func (w *Walker) TakeCounts() (sweeps, visited int) {
	sweeps, visited = w.s.sweeps, w.s.visited
	w.s.sweeps, w.s.visited = 0, 0
	return sweeps, visited
}
