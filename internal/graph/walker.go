package graph

// Walker performs repeated truncated BFS sweeps over one graph while
// reusing its internal buffers, so per-sweep cost is proportional to the
// visited neighborhood only. A Walker is not safe for concurrent use; create
// one per goroutine.
type Walker struct {
	g *Graph
	s *khopScratch
}

// NewWalker creates a walker for g.
func NewWalker(g *Graph) *Walker {
	return &Walker{g: g, s: newKHopScratch(g.N())}
}

// Walk runs BFS from src truncated at k hops, calling visit(v, d) for every
// node reached at hop distance d in 1..k. src itself is not visited.
func (w *Walker) Walk(src, k int, visit func(v, d int32)) {
	w.s.run(w.g, src, k, visit)
}

// WalkUntil is Walk with early termination: the sweep stops as soon as
// visit returns false. Use it when the answer can be decided before the
// whole k-hop ball is flooded (e.g. local-maximum tests).
func (w *Walker) WalkUntil(src, k int, visit func(v, d int32) bool) {
	w.s.runUntil(w.g, src, k, visit)
}

// Count returns |N_k(src)| using the walker's buffers.
func (w *Walker) Count(src, k int) int {
	n := 0
	w.s.run(w.g, src, k, func(_, _ int32) { n++ })
	return n
}

// TakeCounts drains the walker's work counters: the number of truncated BFS
// sweeps run and nodes visited since the last drain. Pools (core.Extractor)
// drain on release, turning per-walker tallies into per-stage aggregates
// for the observability layer.
func (w *Walker) TakeCounts() (sweeps, visited int) {
	sweeps, visited = w.s.sweeps, w.s.visited
	w.s.sweeps, w.s.visited = 0, 0
	return sweeps, visited
}
