package graph_test

import (
	"math"
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/nettest"
	"bfskel/internal/radio"
	"bfskel/internal/shapes"
)

// equivNetworks builds one small UDG and one QUDG network per deployment
// shape — the full shape catalogue times both link models the paper
// evaluates on.
func equivNetworks(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	nets := make(map[string]*graph.Graph)
	for _, name := range shapes.Names() {
		shape := shapes.MustByName(name)
		udg := nettest.Grid(name, 240, 6.5, 1)
		nets[name+"/udg"] = udg.Graph
		// Mirror the fig6 setting: quasi-UDG with a gray zone.
		r := math.Sqrt(6.5 * shape.Poly.Area() / (math.Pi * 240))
		qudg := nettest.WithModel(name, 240, radio.QUDG{R: r, Alpha: 0.4, P: 0.3}, 1)
		nets[name+"/qudg"] = qudg.Graph
	}
	return nets
}

// TestKernelEquivalenceShapes: the batched MS-BFS kernel and the per-node
// walker produce identical AllKHopCounts, BallSizesInto and
// BallWeightedSumsInto results on every shape, both link models, k in 2..6.
func TestKernelEquivalenceShapes(t *testing.T) {
	for name, g := range equivNetworks(t) {
		n := g.N()
		if n == 0 {
			t.Fatalf("%s: empty network", name)
		}
		weight := make([]int, n)
		for v := range weight {
			weight[v] = g.Degree(v) + v%7
		}
		for k := 2; k <= 6; k++ {
			wc := g.AllKHopCountsKernel(graph.KernelWalker, k)
			bc := g.AllKHopCountsKernel(graph.KernelBatched, k)
			for v := range wc {
				if wc[v] != bc[v] {
					t.Fatalf("%s k=%d: AllKHopCounts[%d] walker=%d batched=%d", name, k, v, wc[v], bc[v])
				}
			}
			wb := ballRows(n, k)
			bb := ballRows(n, k)
			g.BallSizesIntoKernel(graph.KernelWalker, k, wb, nil, nil)
			g.BallSizesIntoKernel(graph.KernelBatched, k, bb, nil, nil)
			for v := 0; v < n; v++ {
				for r := 0; r < k; r++ {
					if wb[v][r] != bb[v][r] {
						t.Fatalf("%s k=%d: ball[%d][%d] walker=%d batched=%d", name, k, v, r, wb[v][r], bb[v][r])
					}
				}
			}
			ws := make([]int, n)
			bs := make([]int, n)
			g.BallWeightedSumsInto(graph.KernelWalker, k, weight, ws, nil, nil)
			g.BallWeightedSumsInto(graph.KernelBatched, k, weight, bs, nil, nil)
			for v := range ws {
				if ws[v] != bs[v] {
					t.Fatalf("%s k=%d: weighted sum[%d] walker=%d batched=%d", name, k, v, ws[v], bs[v])
				}
			}
		}
	}
}

func ballRows(n, k int) [][]int {
	out := make([][]int, n)
	flat := make([]int, n*k)
	for v := range out {
		out[v] = flat[v*k : (v+1)*k : (v+1)*k]
	}
	return out
}

// TestKernelEquivalenceDisconnected: kernels agree on graphs with several
// components and isolated nodes, where floods must stay inside their
// component.
func TestKernelEquivalenceDisconnected(t *testing.T) {
	g := graph.New(600)
	// Component A: path 0..249. Component B: cycle 250..549. 550..599 isolated.
	for i := 0; i+1 < 250; i++ {
		g.AddEdge(i, i+1)
	}
	for i := 250; i < 550; i++ {
		next := i + 1
		if next == 550 {
			next = 250
		}
		g.AddEdge(i, next)
	}
	g.SortAdjacency()
	for k := 0; k <= 5; k++ {
		wc := g.AllKHopCountsKernel(graph.KernelWalker, k)
		bc := g.AllKHopCountsKernel(graph.KernelBatched, k)
		for v := range wc {
			if wc[v] != bc[v] {
				t.Fatalf("k=%d: counts[%d] walker=%d batched=%d", k, v, wc[v], bc[v])
			}
		}
	}
	for v := 550; v < 600; v++ {
		if c := g.KHopCount(v, 4); c != 0 {
			t.Fatalf("isolated node %d has count %d", v, c)
		}
	}
}

// TestKernelK0AndEmpty: k=0 yields all-zero counts and leaves empty ball
// rows untouched, on both kernels; empty graphs are a no-op.
func TestKernelK0AndEmpty(t *testing.T) {
	g := graph.New(700)
	for i := 0; i+1 < 700; i++ {
		g.AddEdge(i, i+1)
	}
	g.SortAdjacency()
	for _, kern := range []graph.Kernel{graph.KernelWalker, graph.KernelBatched, graph.KernelAuto} {
		for _, c := range g.AllKHopCountsKernel(kern, 0) {
			if c != 0 {
				t.Fatalf("kernel %v: k=0 count %d", kern, c)
			}
		}
		g.BallSizesIntoKernel(kern, 0, ballRows(g.N(), 0), nil, nil)
	}
	empty := graph.New(0)
	empty.SortAdjacency()
	if got := empty.AllKHopCountsKernel(graph.KernelBatched, 3); len(got) != 0 {
		t.Fatalf("empty graph counts = %v", got)
	}
}

// TestBatchBallSizes: the arbitrary-source entry matches per-source
// KHopCount at every radius, splits across batch boundaries correctly, and
// handles duplicates and unfrozen graphs.
func TestBatchBallSizes(t *testing.T) {
	net := nettest.Grid("window", 400, 6.5, 3)
	g := net.Graph
	sources := make([]int32, 0, 150)
	for v := 0; v < 140; v++ { // spans three 64-wide batches
		sources = append(sources, int32(v*2%g.N()))
	}
	sources = append(sources, sources[0], sources[1]) // duplicates
	const k = 4
	out := g.BatchBallSizes(k, sources)
	if len(out) != len(sources) {
		t.Fatalf("rows = %d, want %d", len(out), len(sources))
	}
	for i, s := range sources {
		for r := 1; r <= k; r++ {
			if want := g.KHopCount(int(s), r); out[i][r-1] != want {
				t.Fatalf("source %d r=%d: got %d, want %d", s, r, out[i][r-1], want)
			}
		}
	}
	// Unfrozen graphs fall back to walker sweeps with identical results.
	thawed := graph.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				thawed.AddEdge(v, int(w))
			}
		}
	}
	if thawed.Frozen() {
		t.Fatal("hand-built graph unexpectedly frozen")
	}
	out2 := thawed.BatchBallSizes(k, sources)
	for i := range out {
		for r := 0; r < k; r++ {
			if out[i][r] != out2[i][r] {
				t.Fatalf("frozen/thawed mismatch at %d/%d", i, r)
			}
		}
	}
	if got := g.BatchBallSizes(3, nil); len(got) != 0 {
		t.Fatalf("nil sources rows = %d", len(got))
	}
}

// TestFreezeSemantics: freezing keeps the adjacency API intact, AddEdge
// thaws without corrupting neighboring rows, and re-freezing restores the
// CSR form.
func TestFreezeSemantics(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.SortAdjacency()
	if !g.Frozen() {
		t.Fatal("SortAdjacency did not freeze")
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("frozen Neighbors(1) = %v", got)
	}
	before2 := append([]int32(nil), g.Neighbors(2)...)
	g.AddEdge(1, 4) // thaw; must not clobber node 2's window
	if g.Frozen() {
		t.Fatal("AddEdge did not thaw")
	}
	if got := g.Neighbors(2); len(got) != len(before2) || got[0] != before2[0] || got[1] != before2[1] {
		t.Fatalf("AddEdge corrupted neighbor row: %v, want %v", got, before2)
	}
	if !g.HasEdge(1, 4) || !g.HasEdge(4, 1) {
		t.Fatal("thawed edge missing")
	}
	g.SortAdjacency()
	if !g.Frozen() {
		t.Fatal("re-freeze failed")
	}
	if got := g.Neighbors(1); len(got) != 3 || got[2] != 4 {
		t.Fatalf("refrozen Neighbors(1) = %v", got)
	}
	// Kernel equivalence survives the thaw/refreeze cycle.
	w := g.AllKHopCountsKernel(graph.KernelWalker, 2)
	b := g.AllKHopCountsKernel(graph.KernelBatched, 2)
	for v := range w {
		if w[v] != b[v] {
			t.Fatalf("counts[%d] walker=%d batched=%d", v, w[v], b[v])
		}
	}
}

// TestWalkerBFSInto: the allocation-free full-BFS variants match BFS and
// BFSPaths across repeated reuse of one walker.
func TestWalkerBFSInto(t *testing.T) {
	net := nettest.Grid("onehole", 200, 6.0, 2)
	g := net.Graph
	w := graph.NewWalker(g)
	dist := make([]int32, g.N())
	parent := make([]int32, g.N())
	for _, src := range []int{0, g.N() / 2, g.N() - 1} {
		w.BFSInto(src, dist)
		want := g.BFS(src)
		for v := range want {
			if dist[v] != want[v] {
				t.Fatalf("BFSInto(%d): dist[%d] = %d, want %d", src, v, dist[v], want[v])
			}
		}
		w.BFSPathsInto(src, dist, parent)
		wd, wp := g.BFSPaths(src)
		for v := range wd {
			if dist[v] != wd[v] {
				t.Fatalf("BFSPathsInto(%d): dist[%d] mismatch", src, v)
			}
			if dist[v] != graph.Unreachable && v != src {
				p := parent[v]
				if p == graph.Unreachable || dist[p]+1 != dist[v] {
					t.Fatalf("BFSPathsInto(%d): bad parent of %d", src, v)
				}
			}
		}
		_ = wp
	}
}
