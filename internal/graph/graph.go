// Package graph provides the connectivity-graph substrate: a compact
// undirected adjacency structure plus the breadth-first primitives the
// skeleton pipeline is built from (full, truncated, multi-source and
// obstacle-avoiding BFS).
//
// Nodes are dense integer IDs 0..N-1. Hop distances use int32; -1 means
// unreachable.
package graph

import (
	"math"
	"sort"

	"bfskel/internal/geom"
	"bfskel/internal/radio"
)

// Unreachable marks nodes a BFS did not reach.
const Unreachable int32 = -1

// Graph is an undirected graph over nodes 0..N-1.
type Graph struct {
	adj   [][]int32
	edges int
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate edges
// must be avoided by the caller (Build guarantees this).
func (g *Graph) AddEdge(u, v int) {
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.edges++
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// AvgDegree returns the average node degree 2E/N.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// HasEdge reports whether u and v are adjacent. O(deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// SortAdjacency sorts every adjacency list; Build calls it so iteration
// order (and thus every downstream tie-break) is deterministic.
func (g *Graph) SortAdjacency() {
	for _, nbrs := range g.adj {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
}

// Build constructs the connectivity graph for the given node positions under
// a radio model. Probabilistic links are drawn once per unordered pair with
// the pair-seeded deterministic coin, so the same (positions, model, seed)
// always produces the same graph. A uniform spatial hash keeps the pair scan
// near-linear for bounded-range models.
func Build(pts []geom.Point, m radio.Model, seed int64) *Graph {
	g := New(len(pts))
	if len(pts) == 0 {
		return g
	}
	maxR := m.MaxRange()
	if maxR <= 0 {
		return g
	}
	cells := newCellIndex(pts, maxR)
	maxR2 := maxR * maxR
	for i := range pts {
		cells.forNeighborCandidates(i, func(j int) {
			if j <= i {
				return // each unordered pair once
			}
			d2 := pts[i].Dist2(pts[j])
			if d2 > maxR2 {
				return
			}
			p := m.LinkProb(math.Sqrt(d2))
			if p <= 0 {
				return
			}
			if p >= 1 || pairCoin(seed, i, j) < p {
				g.AddEdge(i, j)
			}
		})
	}
	g.SortAdjacency()
	return g
}

// pairCoin returns a deterministic uniform [0,1) value for the unordered
// pair (i, j) under the given seed, via a splitmix64-style mix.
func pairCoin(seed int64, i, j int) float64 {
	x := uint64(seed)<<1 ^ 0x9e3779b97f4a7c15
	x ^= uint64(i)*0xbf58476d1ce4e5b9 + uint64(j)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// cellIndex is a uniform-grid bucketing of points used by Build.
type cellIndex struct {
	pts    []geom.Point
	cell   float64
	minX   float64
	minY   float64
	cols   int
	rows   int
	bucket map[int][]int
}

func newCellIndex(pts []geom.Point, cell float64) *cellIndex {
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	ci := &cellIndex{
		pts:    pts,
		cell:   cell,
		minX:   minX,
		minY:   minY,
		cols:   int((maxX-minX)/cell) + 1,
		rows:   int((maxY-minY)/cell) + 1,
		bucket: make(map[int][]int, len(pts)),
	}
	for i, p := range pts {
		k := ci.key(p)
		ci.bucket[k] = append(ci.bucket[k], i)
	}
	return ci
}

func (ci *cellIndex) key(p geom.Point) int {
	cx := int((p.X - ci.minX) / ci.cell)
	cy := int((p.Y - ci.minY) / ci.cell)
	return cy*ci.cols + cx
}

// forNeighborCandidates calls fn for every point in the 3x3 cell block
// around point i.
func (ci *cellIndex) forNeighborCandidates(i int, fn func(j int)) {
	p := ci.pts[i]
	cx := int((p.X - ci.minX) / ci.cell)
	cy := int((p.Y - ci.minY) / ci.cell)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || y < 0 || x >= ci.cols || y >= ci.rows {
				continue
			}
			for _, j := range ci.bucket[y*ci.cols+x] {
				if j != i {
					fn(j)
				}
			}
		}
	}
}
