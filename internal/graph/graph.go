// Package graph provides the connectivity-graph substrate: a compact
// undirected adjacency structure plus the breadth-first primitives the
// skeleton pipeline is built from (full, truncated, multi-source and
// obstacle-avoiding BFS).
//
// Nodes are dense integer IDs 0..N-1. Hop distances use int32; -1 means
// unreachable.
package graph

import (
	"math"
	"sort"

	"bfskel/internal/geom"
	"bfskel/internal/radio"
)

// Unreachable marks nodes a BFS did not reach.
const Unreachable int32 = -1

// Graph is an undirected graph over nodes 0..N-1.
//
// A graph has two physical states. While it is being built, each adjacency
// list is an independently allocated slice. Freeze (called by Build and
// SortAdjacency) compacts all lists into one CSR (compressed sparse row)
// pair — offsets/targets — and rewires the per-node lists to views into it,
// so iteration keeps the same API but walks one contiguous array. The
// bit-parallel MS-BFS kernel (msbfs.go) requires the frozen form.
type Graph struct {
	adj   [][]int32
	edges int

	// CSR form, valid while frozen: the neighbors of v are
	// targets[offsets[v]:offsets[v+1]], and adj[v] aliases that window.
	offsets []int32
	targets []int32
	frozen  bool

	// batchOrder is an optional node permutation grouping spatially close
	// nodes (Z-curve over Build's cell grid). The batched MS-BFS kernel
	// forms its 64-source batches along it so the sources' balls overlap
	// maximally; nil means ID order. Per-source results are exact, so the
	// ordering affects cost only, never output.
	batchOrder []int32

	// ov, when non-nil, is the churn overlay (overlay.go): tombstoned
	// nodes plus shortened adjacency windows, applied without thawing.
	ov *overlay
}

// New returns an empty graph with n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate edges
// must be avoided by the caller (Build guarantees this). Adding an edge to a
// frozen graph thaws it: the CSR arrays go stale until the next Freeze, and
// the two touched lists are copied out of the shared arena on append (their
// views are capacity-capped, so append cannot clobber a neighbor's window).
func (g *Graph) AddEdge(u, v int) {
	if g.ov != nil {
		panic("graph: AddEdge on an overlayed graph; mutate via RemoveNodes/ReviveNodes")
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.edges++
	g.frozen = false
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The returned slice is shared
// with the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// AvgDegree returns the average node degree 2E/N.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// HasEdge reports whether u and v are adjacent. O(deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// BatchOrder exposes the Z-curve node permutation recorded by Build, or nil
// when none is set (then ID order stands in). Callers that group work into
// 64-wide MS-BFS batches (the core Voronoi stage sorts its sites along it)
// read this to co-locate sources; the slice is shared and must not be
// modified.
func (g *Graph) BatchOrder() []int32 {
	if len(g.batchOrder) == g.N() {
		return g.batchOrder
	}
	return nil
}

// SortAdjacency sorts every adjacency list and freezes the graph into its
// CSR form; Build calls it so iteration order (and thus every downstream
// tie-break) is deterministic.
func (g *Graph) SortAdjacency() {
	for _, nbrs := range g.adj {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
	g.Freeze()
}

// Build constructs the connectivity graph for the given node positions under
// a radio model. Probabilistic links are drawn once per unordered pair with
// the pair-seeded deterministic coin, so the same (positions, model, seed)
// always produces the same graph. A uniform spatial hash keeps the pair scan
// near-linear for bounded-range models.
func Build(pts []geom.Point, m radio.Model, seed int64) *Graph {
	g := New(len(pts))
	if len(pts) == 0 {
		return g
	}
	maxR := m.MaxRange()
	if maxR <= 0 {
		return g
	}
	cells := newCellIndex(pts, maxR)
	maxR2 := maxR * maxR
	for i := range pts {
		cells.forNeighborCandidates(i, func(j int) {
			if j <= i {
				return // each unordered pair once
			}
			d2 := pts[i].Dist2(pts[j])
			if d2 > maxR2 {
				return
			}
			p := m.LinkProb(math.Sqrt(d2))
			if p <= 0 {
				return
			}
			if p >= 1 || pairCoin(seed, i, j) < p {
				g.AddEdge(i, j)
			}
		})
	}
	g.SortAdjacency()
	g.batchOrder = cells.zOrder()
	return g
}

// pairCoin returns a deterministic uniform [0,1) value for the unordered
// pair (i, j) under the given seed, via a splitmix64-style mix.
func pairCoin(seed int64, i, j int) float64 {
	x := uint64(seed)<<1 ^ 0x9e3779b97f4a7c15
	x ^= uint64(i)*0xbf58476d1ce4e5b9 + uint64(j)*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// cellIndex is a uniform-grid bucketing of points used by Build. The grid is
// stored as a counting-sorted flat layout (start/items, the same CSR idea as
// the frozen adjacency): cell c holds items[start[c]:start[c+1]], each bucket
// keeping ascending point order. A hash map fallback covers degenerate
// inputs whose bounding box spans far more cells than points — there the
// dense array would be mostly empty padding.
type cellIndex struct {
	pts   []geom.Point
	cell  float64
	minX  float64
	minY  float64
	cols  int
	rows  int
	start []int32
	items []int32
	// bucket is the sparse fallback; nil when the dense grid is in use.
	bucket map[int][]int32
}

// sparseCellFactor bounds the dense grid: when the bounding box covers more
// than this many cells per point, Build falls back to hashed buckets.
const sparseCellFactor = 4

func newCellIndex(pts []geom.Point, cell float64) *cellIndex {
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	ci := &cellIndex{pts: pts, cell: cell, minX: minX, minY: minY}
	// Cell counts are compared in floating point first so a pathological
	// extent/cell ratio cannot overflow the int conversion.
	colsF := math.Floor((maxX-minX)/cell) + 1
	rowsF := math.Floor((maxY-minY)/cell) + 1
	if colsF*rowsF > float64(sparseCellFactor*len(pts)+64) {
		ci.bucket = make(map[int][]int32, len(pts))
		for i, p := range pts {
			k := sparseKey(ci.cellOf(p))
			ci.bucket[k] = append(ci.bucket[k], int32(i))
		}
		return ci
	}
	ci.cols, ci.rows = int(colsF), int(rowsF)
	cells := ci.cols * ci.rows
	ci.start = make([]int32, cells+1)
	for _, p := range pts {
		ci.start[ci.key(p)+1]++
	}
	for c := 0; c < cells; c++ {
		ci.start[c+1] += ci.start[c]
	}
	ci.items = make([]int32, len(pts))
	cursor := make([]int32, cells)
	for i, p := range pts {
		k := ci.key(p)
		ci.items[ci.start[k]+cursor[k]] = int32(i)
		cursor[k]++
	}
	return ci
}

// cellOf returns the integer grid coordinates of p.
func (ci *cellIndex) cellOf(p geom.Point) (cx, cy int) {
	return int((p.X - ci.minX) / ci.cell), int((p.Y - ci.minY) / ci.cell)
}

func (ci *cellIndex) key(p geom.Point) int {
	cx, cy := ci.cellOf(p)
	return cy*ci.cols + cx
}

// sparseKey packs grid coordinates into a map key without needing the cell
// count; a collision only adds candidates, which Build's distance check
// filters out.
func sparseKey(cx, cy int) int {
	return cy<<32 ^ cx
}

// zOrder returns the point IDs grouped by grid cell with the cells visited
// along the Z-curve (Morton order), so any run of consecutive entries covers
// a compact 2D patch — the source ordering the MS-BFS kernel batches by.
// Returns nil (ID order) for the sparse fallback, where the grid has no
// dense coordinates to interleave.
func (ci *cellIndex) zOrder() []int32 {
	if ci.bucket != nil {
		return nil
	}
	type zCell struct {
		key  uint64
		cell int32
	}
	occupied := make([]zCell, 0, len(ci.pts))
	for c := 0; c < ci.cols*ci.rows; c++ {
		if ci.start[c+1] > ci.start[c] {
			occupied = append(occupied, zCell{morton(c%ci.cols, c/ci.cols), int32(c)})
		}
	}
	sort.Slice(occupied, func(a, b int) bool { return occupied[a].key < occupied[b].key })
	order := make([]int32, 0, len(ci.items))
	for _, zc := range occupied {
		order = append(order, ci.items[ci.start[zc.cell]:ci.start[zc.cell+1]]...)
	}
	return order
}

// morton interleaves the bits of x and y (x in the even positions) into one
// Z-curve key.
func morton(x, y int) uint64 {
	return spreadBits(uint32(x)) | spreadBits(uint32(y))<<1
}

// spreadBits inserts a zero bit between every bit of x.
func spreadBits(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// forNeighborCandidates calls fn for every point in the 3x3 cell block
// around point i.
func (ci *cellIndex) forNeighborCandidates(i int, fn func(j int)) {
	cx, cy := ci.cellOf(ci.pts[i])
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			var cellPts []int32
			if ci.bucket != nil {
				cellPts = ci.bucket[sparseKey(x, y)]
			} else {
				if x < 0 || y < 0 || x >= ci.cols || y >= ci.rows {
					continue
				}
				k := y*ci.cols + x
				cellPts = ci.items[ci.start[k]:ci.start[k+1]]
			}
			for _, j := range cellPts {
				if int(j) != i {
					fn(int(j))
				}
			}
		}
	}
}
