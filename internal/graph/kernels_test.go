package graph_test

import (
	"math/bits"
	"sort"
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/nettest"
)

// prunedNets builds a few topologies exercising the pruned and bounded batch
// kernels: a dense grid field, a field with a hole, and a handmade
// disconnected graph.
func prunedNets(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	nets := map[string]*graph.Graph{
		"window":  nettest.Grid("window", 240, 6.5, 1).Graph,
		"onehole": nettest.Grid("onehole", 240, 6.5, 1).Graph,
	}
	d := graph.New(120)
	for v := 0; v < 59; v++ { // path component
		d.AddEdge(v, v+1)
	}
	for v := 60; v < 110; v++ { // cycle component
		d.AddEdge(v, 60+(v-60+1)%50)
	}
	// 110..119 isolated
	d.Freeze()
	nets["disconnected"] = d
	return nets
}

// testSources picks a spread of source nodes, more than one 64-batch worth
// on the larger nets.
func testSources(n, stride int) []int32 {
	var out []int32
	for v := 0; v < n; v += stride {
		out = append(out, int32(v))
	}
	return out
}

// bruteDmin computes the multi-source hop distance to the nearest source.
func bruteDmin(g *graph.Graph, sources []int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = graph.Unreachable
	}
	queue := append([]int32(nil), sources...)
	for _, s := range sources {
		dist[s] = 0
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// brutePruned runs the serial slack-pruned flood from one source and returns
// the visits with min-ID parents — the reference semantics for PrunedBatch.
func brutePruned(g *graph.Graph, src int32, bound []int32, slack int32) []graph.PrunedVisit {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Unreachable
	}
	dist[src] = 0
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		d := dist[u] + 1
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] >= 0 {
				continue
			}
			if b := bound[v]; b >= 0 && d > b+slack {
				continue
			}
			dist[v] = d
			queue = append(queue, v)
		}
	}
	var out []graph.PrunedVisit
	for _, v := range queue[1:] { // seeds are not emitted
		parent := int32(-1)
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] == dist[v]-1 && (parent < 0 || u < parent) {
				parent = u
			}
		}
		out = append(out, graph.PrunedVisit{V: v, Src: src, D: dist[v], Parent: parent})
	}
	return out
}

func sortVisits(vs []graph.PrunedVisit) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Src != vs[j].Src {
			return vs[i].Src < vs[j].Src
		}
		if vs[i].V != vs[j].V {
			return vs[i].V < vs[j].V
		}
		return vs[i].D < vs[j].D
	})
}

// TestPrunedBatchBruteForce: PrunedBatch reproduces, per source, the serial
// slack-pruned flood — the same visited sets, levels, and canonical min-ID
// parents — for every slack the pipeline uses.
func TestPrunedBatchBruteForce(t *testing.T) {
	for name, g := range prunedNets(t) {
		g.Freeze()
		sources := testSources(g.N(), 17)
		bound := bruteDmin(g, sources)
		for _, slack := range []int32{0, 1, 2} {
			var want []graph.PrunedVisit
			for _, s := range sources {
				want = append(want, brutePruned(g, s, bound, slack)...)
			}
			var got []graph.PrunedVisit
			w := graph.NewWalker(g)
			for lo := 0; lo < len(sources); lo += 64 {
				hi := lo + 64
				if hi > len(sources) {
					hi = len(sources)
				}
				got = w.PrunedBatch(sources[lo:hi], bound, slack, got)
			}
			sortVisits(want)
			sortVisits(got)
			if len(want) != len(got) {
				t.Fatalf("%s slack=%d: visit counts differ: want %d got %d", name, slack, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s slack=%d: visit %d differs: want %+v got %+v", name, slack, i, want[i], got[i])
				}
			}
		}
	}
}

// bruteBounded floods from src up to radius, never expanding into blocked
// nodes (the source is admitted regardless), and returns dist per node
// (Unreachable outside the ball).
func bruteBounded(g *graph.Graph, src int32, radius int32, blocked []bool) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = graph.Unreachable
	}
	dist[src] = 0
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if dist[u] >= radius {
			continue
		}
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] >= 0 {
				continue
			}
			if blocked != nil && blocked[v] {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	return dist
}

// TestBoundedBatchBruteForce: BoundedBatch settles exactly the nodes the
// serial bounded flood reaches (excluding the seeds themselves), with the
// correct per-source levels, under a blocked mask.
func TestBoundedBatchBruteForce(t *testing.T) {
	for name, g := range prunedNets(t) {
		g.Freeze()
		n := g.N()
		blocked := make([]bool, n)
		for v := 0; v < n; v += 5 {
			blocked[v] = true
		}
		sources := testSources(n, 13)
		if len(sources) > 64 {
			sources = sources[:64]
		}
		for _, radius := range []int32{1, 2, 4} {
			// got[i] = set of nodes source i settled.
			got := make([]map[int32]bool, len(sources))
			for i := range got {
				got[i] = make(map[int32]bool)
			}
			w := graph.NewWalker(g)
			w.BoundedBatch(sources, radius, blocked, func(v int32, bw uint64) {
				for b := bw; b != 0; b &= b - 1 {
					i := bits.TrailingZeros64(b)
					if got[i][v] {
						t.Fatalf("%s radius=%d: node %d settled twice for source %d", name, radius, v, sources[i])
					}
					got[i][v] = true
				}
			})
			for i, s := range sources {
				dist := bruteBounded(g, s, radius, blocked)
				for v := 0; v < n; v++ {
					settled := got[i][int32(v)]
					wantSettled := dist[v] > 0 // seeds (dist 0) are not reported
					if settled != wantSettled {
						t.Fatalf("%s radius=%d src=%d node=%d: settled=%v want %v (dist %d)",
							name, radius, s, v, settled, wantSettled, dist[v])
					}
				}
			}
		}
	}
}

// TestBoundedReachBruteForce: the reach matrix bit (j, i) is set exactly
// when probe j is within the radius of source i, seeds included.
func TestBoundedReachBruteForce(t *testing.T) {
	for name, g := range prunedNets(t) {
		g.Freeze()
		n := g.N()
		sources := testSources(n, 29)
		if len(sources) > 64 {
			sources = sources[:64]
		}
		probes := append([]int32(nil), sources...)
		for v := 3; v < n && len(probes) < 70; v += 31 {
			probes = append(probes, int32(v))
		}
		for _, radius := range []int32{1, 3} {
			reach := make([]uint64, len(probes))
			w := graph.NewWalker(g)
			w.BoundedReach(sources, radius, probes, reach)
			for i, s := range sources {
				dist := bruteBounded(g, s, radius, nil)
				for j, p := range probes {
					got := reach[j]&(uint64(1)<<uint(i)) != 0
					want := dist[p] >= 0
					if got != want {
						t.Fatalf("%s radius=%d: reach[probe %d][src %d] = %v, want %v (dist %d)",
							name, radius, p, s, got, want, dist[p])
					}
				}
			}
		}
	}
}

// TestVisitLogReplay: the settle log recorded during ball sizing replays
// weighted sums identical to a fresh BallWeightedSumsInto sweep, for any
// weight vector, and reports its recorded state truthfully.
func TestVisitLogReplay(t *testing.T) {
	g := nettest.Grid("onehole", 400, 6.5, 1).Graph
	g.Freeze()
	n := g.N()
	maxR := 4
	for _, logRadius := range []int{2, 4} {
		var lg graph.VisitLog
		balls := ballRows(n, maxR)
		g.BallSizesIntoKernelLogged(graph.KernelBatched, maxR, logRadius, balls, &lg, nil, nil)
		if !lg.Recorded() {
			t.Fatalf("logRadius=%d: log not recorded on batched run", logRadius)
		}
		if lg.Radius() != logRadius {
			t.Fatalf("logRadius=%d: Radius() = %d", logRadius, lg.Radius())
		}
		// The logged pass must still produce correct ball sizes.
		ref := ballRows(n, maxR)
		g.BallSizesIntoKernel(graph.KernelBatched, maxR, ref, nil, nil)
		for v := 0; v < n; v++ {
			for r := 0; r < maxR; r++ {
				if balls[v][r] != ref[v][r] {
					t.Fatalf("logRadius=%d: ball[%d][%d] = %d, want %d", logRadius, v, r, balls[v][r], ref[v][r])
				}
			}
		}
		for trial, mod := range []int{7, 13} {
			weight := make([]int, n)
			for v := range weight {
				weight[v] = g.Degree(v)*trial + v%mod
			}
			want := make([]int, n)
			g.BallWeightedSumsInto(graph.KernelBatched, logRadius, weight, want, nil, nil)
			got := make([]int, n)
			lg.WeightedSumsInto(g, weight, got)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("logRadius=%d trial=%d: replayed sum[%d] = %d, want %d",
						logRadius, trial, v, got[v], want[v])
				}
			}
		}
	}
	// A walker-resolved run must invalidate any prior log.
	var lg graph.VisitLog
	balls := ballRows(n, maxR)
	g.BallSizesIntoKernelLogged(graph.KernelBatched, maxR, 2, balls, &lg, nil, nil)
	g.BallSizesIntoKernelLogged(graph.KernelWalker, maxR, 2, balls, &lg, nil, nil)
	if lg.Recorded() {
		t.Fatal("log still recorded after walker-resolved sweep")
	}
}

// TestParallelChunksWeighted: every index is covered exactly once by
// contiguous ascending chunks, whatever the weights (including degenerate
// ones), and boundaries are reproducible across calls.
func TestParallelChunksWeighted(t *testing.T) {
	cases := []struct {
		name   string
		count  int
		weight func(i int) int
	}{
		{"uniform", 100, func(i int) int { return 1 }},
		{"skewed", 100, func(i int) int { return i * i }},
		{"front-heavy", 257, func(i int) int { return 1000 - 3*i }},
		{"zeroes", 64, func(i int) int { return 0 }},
		{"negative", 64, func(i int) int { return -5 }},
		{"single", 1, func(i int) int { return 9 }},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			type span struct{ ci, lo, hi int }
			collect := func() []span {
				ch := make(chan span, tc.count+workers)
				graph.ParallelChunksWeighted(tc.count, workers, tc.weight, func(ci, lo, hi int) {
					ch <- span{ci, lo, hi}
				})
				close(ch)
				var spans []span
				for s := range ch {
					spans = append(spans, s)
				}
				sort.Slice(spans, func(i, j int) bool { return spans[i].ci < spans[j].ci })
				return spans
			}
			spans := collect()
			covered := 0
			for i, s := range spans {
				if s.ci != i {
					t.Fatalf("%s/workers=%d: chunk indices not dense: %+v", tc.name, workers, spans)
				}
				if s.hi <= s.lo {
					t.Fatalf("%s/workers=%d: empty chunk %+v", tc.name, workers, s)
				}
				if i > 0 && s.lo != spans[i-1].hi {
					t.Fatalf("%s/workers=%d: chunks not contiguous: %+v", tc.name, workers, spans)
				}
				covered += s.hi - s.lo
			}
			if covered != tc.count || spans[0].lo != 0 || spans[len(spans)-1].hi != tc.count {
				t.Fatalf("%s/workers=%d: coverage wrong: %+v", tc.name, workers, spans)
			}
			again := collect()
			if len(again) != len(spans) {
				t.Fatalf("%s/workers=%d: chunking not reproducible", tc.name, workers)
			}
			for i := range again {
				if again[i] != spans[i] {
					t.Fatalf("%s/workers=%d: chunking not reproducible: %+v vs %+v", tc.name, workers, spans[i], again[i])
				}
			}
		}
	}
}

// TestParallelRangeDegreeWeighting: ParallelRange over a frozen graph's node
// range remains a correct cover (the degree weighting only moves chunk
// boundaries).
func TestParallelRangeDegreeWeighting(t *testing.T) {
	g := nettest.Grid("window", 300, 6.5, 1).Graph
	g.Freeze()
	n := g.N()
	hit := make([]int32, n)
	graph.ParallelRange(g, n, nil, nil, func(w *graph.Walker, v int) {
		hit[v]++
	})
	for v, h := range hit {
		if h != 1 {
			t.Fatalf("node %d visited %d times", v, h)
		}
	}
}
