package graph_test

import (
	"math/rand"
	"testing"

	"bfskel/internal/geom"
	"bfskel/internal/graph"
	"bfskel/internal/radio"
)

// TestMultiSourceRecordsBruteForce: for every node, the recorded sources
// are exactly those with true distance <= dmin + slack, with correct
// distances and valid reverse-path parents.
func TestMultiSourceRecordsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 250)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*30, rng.Float64()*30)
	}
	g := graph.Build(pts, radio.UDG{R: 4}, 1)
	sources := []int32{3, 77, 150, 200}
	const slack = 1

	dmin, records := g.MultiSourceRecords(sources, slack)

	// True distances per source.
	trueDist := make(map[int32][]int32, len(sources))
	for _, s := range sources {
		trueDist[s] = g.BFS(int(s))
	}
	for v := 0; v < g.N(); v++ {
		// dmin correctness.
		want := graph.Unreachable
		for _, s := range sources {
			d := trueDist[s][v]
			if d != graph.Unreachable && (want == graph.Unreachable || d < want) {
				want = d
			}
		}
		if dmin[v] != want {
			t.Fatalf("dmin[%d] = %d, want %d", v, dmin[v], want)
		}
		if want == graph.Unreachable {
			continue
		}
		// Record set correctness.
		got := make(map[int32]int32)
		for _, r := range records[v] {
			got[r.Source] = r.D
		}
		for _, s := range sources {
			d := trueDist[s][v]
			shouldRecord := d != graph.Unreachable && d <= want+slack
			rec, ok := got[s]
			if shouldRecord != ok {
				t.Fatalf("node %d source %d: recorded=%v, want %v (d=%d dmin=%d)", v, s, ok, shouldRecord, d, want)
			}
			if ok && rec != d {
				t.Fatalf("node %d source %d: recorded d=%d, true %d", v, s, rec, d)
			}
		}
		// Parent validity: the parent is an adjacent node one hop closer.
		for _, r := range records[v] {
			if r.D == 0 {
				continue
			}
			if !g.HasEdge(v, int(r.Parent)) {
				t.Fatalf("node %d: parent %d not adjacent", v, r.Parent)
			}
			if trueDist[r.Source][r.Parent] != r.D-1 {
				t.Fatalf("node %d: parent %d not one hop closer to %d", v, r.Parent, r.Source)
			}
		}
	}
}

func TestMultiSourceRecordsEdgeCases(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	// No sources.
	dmin, records := g.MultiSourceRecords(nil, 1)
	for v := range dmin {
		if dmin[v] != graph.Unreachable || len(records[v]) != 0 {
			t.Fatalf("empty sources produced records at %d", v)
		}
	}
	// Duplicate sources are tolerated.
	dmin, records = g.MultiSourceRecords([]int32{0, 0}, 1)
	if dmin[0] != 0 || len(records[0]) != 1 {
		t.Errorf("duplicate source handling: dmin=%d records=%v", dmin[0], records[0])
	}
	// Unreachable node keeps no records.
	if len(records[2]) != 0 || dmin[2] != graph.Unreachable {
		t.Errorf("isolated node recorded: %v", records[2])
	}
}
