package graph_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bfskel/internal/geom"
	"bfskel/internal/graph"
	"bfskel/internal/radio"
)

// pathGraph builds 0-1-2-...-n-1.
func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	g.SortAdjacency()
	return g
}

// cycleGraph builds a ring of n nodes.
func cycleGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	g.SortAdjacency()
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := pathGraph(4)
	if g.N() != 4 || g.NumEdges() != 3 {
		t.Fatalf("N=%d E=%d", g.N(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Errorf("degrees wrong")
	}
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Errorf("HasEdge wrong")
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v", got)
	}
	if empty := graph.New(0); empty.AvgDegree() != 0 {
		t.Error("empty AvgDegree")
	}
}

func TestBFS(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFS(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	// Disconnected node.
	g2 := graph.New(3)
	g2.AddEdge(0, 1)
	d := g2.BFS(0)
	if d[2] != graph.Unreachable {
		t.Errorf("unreachable dist = %d", d[2])
	}
}

func TestBFSPathsAndPathTo(t *testing.T) {
	g := cycleGraph(6)
	dist, parent := g.BFSPaths(0)
	if dist[3] != 3 {
		t.Errorf("dist[3] = %d", dist[3])
	}
	path := graph.PathTo(parent, 3)
	if len(path) != 4 || path[0] != 0 || path[3] != 3 {
		t.Errorf("path = %v", path)
	}
	for i := 1; i < len(path); i++ {
		if !g.HasEdge(int(path[i-1]), int(path[i])) {
			t.Errorf("path edge %v-%v missing", path[i-1], path[i])
		}
	}
	// Unreachable.
	g2 := graph.New(2)
	_, p2 := g2.BFSPaths(0)
	if got := graph.PathTo(p2, 1); got != nil {
		t.Errorf("unreachable path = %v", got)
	}
}

func TestBFSBlocked(t *testing.T) {
	g := pathGraph(5)
	blocked := make([]bool, 5)
	blocked[2] = true
	dist := g.BFSBlocked(0, blocked)
	if dist[1] != 1 {
		t.Errorf("dist[1] = %d", dist[1])
	}
	if dist[3] != graph.Unreachable || dist[4] != graph.Unreachable {
		t.Errorf("blocked BFS leaked past node 2: %v", dist)
	}
}

func TestKHop(t *testing.T) {
	g := pathGraph(10)
	if got := g.KHopCount(0, 3); got != 3 {
		t.Errorf("KHopCount(0,3) = %d", got)
	}
	if got := g.KHopCount(5, 2); got != 4 {
		t.Errorf("KHopCount(5,2) = %d", got)
	}
	nbrs := g.KHopNeighbors(0, 2)
	if len(nbrs) != 2 {
		t.Errorf("KHopNeighbors = %v", nbrs)
	}
	counts := g.AllKHopCounts(2)
	for v, want := range []int{2, 3, 4, 4, 4, 4, 4, 4, 3, 2} {
		if counts[v] != want {
			t.Errorf("AllKHopCounts[%d] = %d, want %d", v, counts[v], want)
		}
	}
}

// TestAllBallSizesCumulative: ball sizes are cumulative and match
// KHopCount at every radius.
func TestAllBallSizesCumulative(t *testing.T) {
	g := cycleGraph(12)
	balls := g.AllBallSizes(4)
	for v := 0; v < g.N(); v++ {
		prev := 0
		for r := 1; r <= 4; r++ {
			if balls[v][r-1] < prev {
				t.Fatalf("ball sizes not cumulative at %d r=%d", v, r)
			}
			prev = balls[v][r-1]
			if want := g.KHopCount(v, r); balls[v][r-1] != want {
				t.Fatalf("ball[%d][%d] = %d, want %d", v, r, balls[v][r-1], want)
			}
		}
	}
}

func TestComponents(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	label, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if label[0] != label[2] || label[3] != label[4] || label[0] == label[3] || label[5] == label[0] {
		t.Errorf("labels = %v", label)
	}
	lc := g.LargestComponent()
	if len(lc) != 3 || lc[0] != 0 {
		t.Errorf("largest = %v", lc)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if !pathGraph(4).IsConnected() {
		t.Error("path graph reported disconnected")
	}
	if !graph.New(0).IsConnected() {
		t.Error("empty graph should count as connected")
	}
}

func TestSubgraph(t *testing.T) {
	g := cycleGraph(6)
	sub, orig := g.Subgraph([]int32{0, 1, 2, 5})
	if sub.N() != 4 {
		t.Fatalf("sub N = %d", sub.N())
	}
	// Edges kept: 0-1, 1-2, 5-0 => 3 edges.
	if sub.NumEdges() != 3 {
		t.Errorf("sub E = %d", sub.NumEdges())
	}
	if orig[3] != 5 {
		t.Errorf("orig mapping = %v", orig)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := pathGraph(7)
	if got := g.Eccentricity(3); got != 3 {
		t.Errorf("Eccentricity(3) = %d", got)
	}
	if got := g.DiameterLowerBound(3); got != 6 {
		t.Errorf("DiameterLowerBound = %d", got)
	}
}

// TestBuildMatchesBruteForce: the spatial-hash builder produces exactly the
// brute-force UDG edge set.
func TestBuildMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(60)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*30, rng.Float64()*30)
		}
		const r = 4.0
		g := graph.Build(pts, radio.UDG{R: r}, seed)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := pts[i].Dist(pts[j]) <= r
				if g.HasEdge(i, j) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestBuildDeterministic: probabilistic models give identical graphs for
// identical seeds.
func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*40, rng.Float64()*40)
	}
	m := radio.QUDG{R: 4, Alpha: 0.4, P: 0.3}
	a := graph.Build(pts, m, 9)
	b := graph.Build(pts, m, 9)
	c := graph.Build(pts, m, 10)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge count")
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("node %d adjacency differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d adjacency differs at %d", v, i)
			}
		}
	}
	if a.NumEdges() == c.NumEdges() {
		// Different seed *may* coincide in edge count, but full equality
		// would be suspicious; check some node differs.
		same := true
		for v := 0; v < a.N() && same; v++ {
			na, nc := a.Neighbors(v), c.Neighbors(v)
			if len(na) != len(nc) {
				same = false
			}
		}
		if same {
			t.Log("warning: different seeds produced same degree sequence (possible but unlikely)")
		}
	}
}

// TestQUDGEdgeFractions: in the gray zone, roughly fraction P of pairs link.
func TestQUDGEdgeFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 800)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
	}
	m := radio.QUDG{R: 4, Alpha: 0.5, P: 0.3}
	g := graph.Build(pts, m, 3)
	var sure, gray, grayLinked int
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].Dist(pts[j])
			switch {
			case d < 2:
				sure++
				if !g.HasEdge(i, j) {
					t.Fatalf("missing sure link %d-%d", i, j)
				}
			case d <= 6:
				gray++
				if g.HasEdge(i, j) {
					grayLinked++
				}
			default:
				if g.HasEdge(i, j) {
					t.Fatalf("link beyond (1+alpha)R: %d-%d at %v", i, j, d)
				}
			}
		}
	}
	frac := float64(grayLinked) / float64(gray)
	if math.Abs(frac-0.3) > 0.03 {
		t.Errorf("gray-zone link fraction = %.3f, want ~0.3 (%d/%d)", frac, grayLinked, gray)
	}
	_ = sure
}

func TestWalker(t *testing.T) {
	g := pathGraph(8)
	w := graph.NewWalker(g)
	if got := w.Count(0, 3); got != 3 {
		t.Errorf("Count = %d", got)
	}
	// Repeated use must not leak state.
	if got := w.Count(7, 2); got != 2 {
		t.Errorf("second Count = %d", got)
	}
	visited := 0
	w.Walk(4, 2, func(v, d int32) {
		visited++
		if d < 1 || d > 2 {
			t.Errorf("walk dist %d out of range", d)
		}
	})
	if visited != 4 {
		t.Errorf("Walk visited %d", visited)
	}
}
