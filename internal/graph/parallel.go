package graph

import (
	"runtime"
	"sync"
)

// ParallelNodes runs fn(w, v) for every node of g, partitioning the node
// range into contiguous chunks across up to GOMAXPROCS workers. Each worker
// obtains one Walker through acquire and hands it back through release when
// its chunk is done; passing nil for both makes every worker create (and
// drop) a fresh Walker. The acquire/release pair is how callers pool
// Walkers across repeated sweeps — see core.Extractor.
//
// fn runs concurrently across chunks: it must only write state owned by v
// (per-node slots of preallocated slices are fine). The chunking is
// deterministic, so any per-node output is independent of the worker count.
func ParallelNodes(g *Graph, acquire func() *Walker, release func(*Walker), fn func(w *Walker, v int)) {
	ParallelRange(g, g.N(), acquire, release, fn)
}

// ParallelRange is ParallelNodes over an arbitrary index space 0..count-1:
// the unit of work need not be a node (the MS-BFS drivers use one index per
// 64-source batch). The same ownership and determinism rules apply.
//
// When the index space is exactly the node range of a frozen graph, chunks
// are sized by CSR edge count rather than node count: per-node BFS work is
// proportional to the flooded neighborhood, and degree is its cheapest
// deterministic proxy, so skewed topologies keep the worker pool saturated
// instead of leaving one worker with all the dense chunks.
func ParallelRange(g *Graph, count int, acquire func() *Walker, release func(*Walker), fn func(w *Walker, i int)) {
	var weight func(i int) int
	if count == g.N() && g.frozen {
		if offsets, _, ok := g.csr(); ok {
			weight = func(i int) int { return int(offsets[i+1]-offsets[i]) + 1 }
		}
	}
	ParallelRangeWeighted(g, count, weight, acquire, release, fn)
}

// ParallelRangeWeighted is ParallelRange under an explicit per-index work
// weight (nil means uniform). The MS-BFS batch drivers weight each 64-source
// batch by the summed degree of its sources. Weights only move the chunk
// boundaries — which indices exist and what fn may write is unchanged — and
// the boundaries depend only on (count, weights, GOMAXPROCS), so outputs
// stay deterministic for any worker count.
func ParallelRangeWeighted(g *Graph, count int, weight func(i int) int, acquire func() *Walker, release func(*Walker), fn func(w *Walker, i int)) {
	body := func(_, lo, hi int) {
		var w *Walker
		if acquire != nil {
			w = acquire()
		} else {
			w = NewWalker(g)
		}
		for v := lo; v < hi; v++ {
			fn(w, v)
		}
		if release != nil {
			release(w)
		}
	}
	if weight == nil {
		ParallelChunks(count, runtime.GOMAXPROCS(0), body)
		return
	}
	ParallelChunksWeighted(count, runtime.GOMAXPROCS(0), weight, body)
}

// ParallelChunks partitions 0..count-1 into at most maxChunks contiguous
// chunks and runs fn(ci, lo, hi) concurrently, one goroutine per chunk;
// chunk ci covers the half-open range [lo, hi). It is the scheduling
// primitive under ParallelNodes/ParallelRange, exposed for callers that
// need per-chunk state other than a Walker (the simnet round engine keys
// its per-worker send queues by ci).
//
// The chunk boundaries depend only on count and maxChunks, and chunk ci
// always covers lower indices than chunk ci+1, so callers that combine
// per-chunk results in ci order observe a deterministic global order
// regardless of scheduling. fn must confine its writes to state owned by
// its chunk or its indices. With a single chunk, fn runs inline on the
// calling goroutine. A panic in any chunk is re-raised on the calling
// goroutine after all chunks finish.
func ParallelChunks(count, maxChunks int, fn func(ci, lo, hi int)) {
	if count <= 0 {
		return
	}
	workers := maxChunks
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		fn(0, 0, count)
		return
	}
	chunk := (count + workers - 1) / workers
	var cuts []int
	for lo := 0; lo < count; lo += chunk {
		cuts = append(cuts, lo)
	}
	cuts = append(cuts, count)
	runChunks(cuts, fn)
}

// ParallelChunksWeighted is ParallelChunks with chunk boundaries balancing
// the total per-index weight instead of the index count: chunk ci ends at
// the first index whose weight prefix reaches (ci+1)/workers of the total.
// Weights below 1 count as 1. The boundaries are a pure function of
// (count, maxChunks, weights), so the same determinism contract applies.
func ParallelChunksWeighted(count, maxChunks int, weight func(i int) int, fn func(ci, lo, hi int)) {
	if count <= 0 {
		return
	}
	workers := maxChunks
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		fn(0, 0, count)
		return
	}
	total := 0
	for i := 0; i < count; i++ {
		w := weight(i)
		if w < 1 {
			w = 1
		}
		total += w
	}
	cuts := make([]int, 1, workers+1)
	acc, next := 0, 1
	for i := 0; i < count-1 && next < workers; i++ {
		w := weight(i)
		if w < 1 {
			w = 1
		}
		acc += w
		if acc*workers >= total*next {
			cuts = append(cuts, i+1)
			next++
		}
	}
	cuts = append(cuts, count)
	runChunks(cuts, fn)
}

// runChunks runs fn over the half-open ranges [cuts[ci], cuts[ci+1]),
// one goroutine per chunk, re-raising the first chunk panic on the calling
// goroutine after all chunks finish.
func runChunks(cuts []int, fn func(ci, lo, hi int)) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked bool
		panicVal any
	)
	for ci := 0; ci+1 < len(cuts); ci++ {
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !panicked {
						panicked, panicVal = true, r
					}
					mu.Unlock()
				}
			}()
			fn(ci, lo, hi)
		}(ci, cuts[ci], cuts[ci+1])
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}
