package graph

import (
	"runtime"
	"sync"
)

// ParallelNodes runs fn(w, v) for every node of g, partitioning the node
// range into contiguous chunks across up to GOMAXPROCS workers. Each worker
// obtains one Walker through acquire and hands it back through release when
// its chunk is done; passing nil for both makes every worker create (and
// drop) a fresh Walker. The acquire/release pair is how callers pool
// Walkers across repeated sweeps — see core.Extractor.
//
// fn runs concurrently across chunks: it must only write state owned by v
// (per-node slots of preallocated slices are fine). The chunking is
// deterministic, so any per-node output is independent of the worker count.
func ParallelNodes(g *Graph, acquire func() *Walker, release func(*Walker), fn func(w *Walker, v int)) {
	ParallelRange(g, g.N(), acquire, release, fn)
}

// ParallelRange is ParallelNodes over an arbitrary index space 0..count-1:
// the unit of work need not be a node (the MS-BFS drivers use one index per
// 64-source batch). The same ownership and determinism rules apply.
func ParallelRange(g *Graph, count int, acquire func() *Walker, release func(*Walker), fn func(w *Walker, i int)) {
	ParallelChunks(count, runtime.GOMAXPROCS(0), func(_, lo, hi int) {
		var w *Walker
		if acquire != nil {
			w = acquire()
		} else {
			w = NewWalker(g)
		}
		for v := lo; v < hi; v++ {
			fn(w, v)
		}
		if release != nil {
			release(w)
		}
	})
}

// ParallelChunks partitions 0..count-1 into at most maxChunks contiguous
// chunks and runs fn(ci, lo, hi) concurrently, one goroutine per chunk;
// chunk ci covers the half-open range [lo, hi). It is the scheduling
// primitive under ParallelNodes/ParallelRange, exposed for callers that
// need per-chunk state other than a Walker (the simnet round engine keys
// its per-worker send queues by ci).
//
// The chunk boundaries depend only on count and maxChunks, and chunk ci
// always covers lower indices than chunk ci+1, so callers that combine
// per-chunk results in ci order observe a deterministic global order
// regardless of scheduling. fn must confine its writes to state owned by
// its chunk or its indices. With a single chunk, fn runs inline on the
// calling goroutine. A panic in any chunk is re-raised on the calling
// goroutine after all chunks finish.
func ParallelChunks(count, maxChunks int, fn func(ci, lo, hi int)) {
	if count <= 0 {
		return
	}
	workers := maxChunks
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		fn(0, 0, count)
		return
	}
	chunk := (count + workers - 1) / workers
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked bool
		panicVal any
	)
	for ci := 0; ci*chunk < count; ci++ {
		lo, hi := ci*chunk, (ci+1)*chunk
		if hi > count {
			hi = count
		}
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !panicked {
						panicked, panicVal = true, r
					}
					mu.Unlock()
				}
			}()
			fn(ci, lo, hi)
		}(ci, lo, hi)
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}
