package graph

import (
	"runtime"
	"sync"
)

// ParallelNodes runs fn(w, v) for every node of g, partitioning the node
// range into contiguous chunks across up to GOMAXPROCS workers. Each worker
// obtains one Walker through acquire and hands it back through release when
// its chunk is done; passing nil for both makes every worker create (and
// drop) a fresh Walker. The acquire/release pair is how callers pool
// Walkers across repeated sweeps — see core.Extractor.
//
// fn runs concurrently across chunks: it must only write state owned by v
// (per-node slots of preallocated slices are fine). The chunking is
// deterministic, so any per-node output is independent of the worker count.
func ParallelNodes(g *Graph, acquire func() *Walker, release func(*Walker), fn func(w *Walker, v int)) {
	ParallelRange(g, g.N(), acquire, release, fn)
}

// ParallelRange is ParallelNodes over an arbitrary index space 0..count-1:
// the unit of work need not be a node (the MS-BFS drivers use one index per
// 64-source batch). The same ownership and determinism rules apply.
func ParallelRange(g *Graph, count int, acquire func() *Walker, release func(*Walker), fn func(w *Walker, i int)) {
	n := count
	if n == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var w *Walker
			if acquire != nil {
				w = acquire()
			} else {
				w = NewWalker(g)
			}
			for v := lo; v < hi; v++ {
				fn(w, v)
			}
			if release != nil {
				release(w)
			}
		}(lo, hi)
	}
	wg.Wait()
}
