package graph

// Freeze compacts the adjacency lists into a CSR (compressed sparse row)
// layout: one offsets array and one flat targets array holding every list
// back to back. The per-node lists are rewired to capacity-capped views into
// the arena, so Neighbors iteration — the inner loop of every BFS — walks a
// single contiguous array instead of chasing per-node allocations, and the
// bit-parallel MS-BFS kernel can index edges directly.
//
// Build and SortAdjacency freeze automatically; hand-built graphs stay
// usable unfrozen (they just keep the pointer-chasing layout and the walker
// BFS kernel). Freezing an already-frozen graph is a no-op. Freeze mutates
// the graph and must not run concurrently with readers.
func (g *Graph) Freeze() {
	if g.frozen {
		return
	}
	n := len(g.adj)
	if cap(g.offsets) < n+1 {
		g.offsets = make([]int32, n+1)
	}
	g.offsets = g.offsets[:n+1]
	total := 0
	for v, nbrs := range g.adj {
		g.offsets[v] = int32(total)
		total += len(nbrs)
	}
	g.offsets[n] = int32(total)
	// The targets arena is always freshly allocated: after a thaw the old
	// lists still alias the previous arena, so compacting in place would
	// overwrite rows that are yet to be copied.
	targets := make([]int32, total)
	for v, nbrs := range g.adj {
		lo, hi := g.offsets[v], g.offsets[v+1]
		copy(targets[lo:hi], nbrs)
		g.adj[v] = targets[lo:hi:hi]
	}
	g.targets = targets
	g.frozen = true
}

// Frozen reports whether the graph is in its CSR form.
func (g *Graph) Frozen() bool { return g.frozen }

// csr returns the CSR arrays; ok is false while the graph is thawed (then
// the arrays may be stale and must not be used).
func (g *Graph) csr() (offsets, targets []int32, ok bool) {
	return g.offsets, g.targets, g.frozen
}

// Offsets exposes the frozen CSR offsets array (length N+1): node v's
// adjacency occupies positions offsets[v]..offsets[v+1] of the edge arena,
// so offsets[v+1]-offsets[v] is its degree. Callers that lay out per-node
// buffers with degree capacity (the simnet round engine's inbox arena) index
// them with the same array instead of recomputing a prefix sum. ok is false
// while the graph is thawed; the slice is shared and must not be modified.
func (g *Graph) Offsets() (offsets []int32, ok bool) {
	return g.offsets, g.frozen
}
