package graph

// SourceRecord is one entry of a node's almost-nearest source set.
type SourceRecord struct {
	// Source is the source node's ID.
	Source int32
	// D is the hop distance from the recording node to Source.
	D int32
	// Parent is the recording node's parent in the shortest-path tree
	// rooted at Source.
	Parent int32
}

// MultiSourceRecords computes, for every node, the set of sources whose hop
// distance is within slack of the nearest source, with reverse-path
// parents: the generic form of the paper's Voronoi flooding, also used by
// the MAP and CASE baselines for their boundary distance transforms.
//
// It runs one plain multi-source BFS for the minimum distances, then one
// pruned BFS per source that only visits nodes with d_s(v) <= dmin(v)+slack
// — exact, because the slack never increases along a shortest path toward
// the source — so total work is proportional to the records produced.
func (g *Graph) MultiSourceRecords(sources []int32, slack int32) (dmin []int32, records [][]SourceRecord) {
	n := g.N()
	dmin = make([]int32, n)
	records = make([][]SourceRecord, n)
	for i := range dmin {
		dmin[i] = Unreachable
	}
	if len(sources) == 0 {
		return dmin, records
	}

	queue := make([]int32, 0, n)
	for _, s := range sources {
		if dmin[s] == Unreachable {
			dmin[s] = 0
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dmin[u]
		for _, v := range g.adj[u] {
			if dmin[v] == Unreachable {
				dmin[v] = du + 1
				queue = append(queue, v)
			}
		}
	}

	dist := make([]int32, n)
	stamp := make([]int32, n)
	seen := make(map[int32]bool, len(sources))
	var epoch int32
	for _, s := range sources {
		if seen[s] {
			continue // duplicate source
		}
		seen[s] = true
		epoch++
		dist[s] = 0
		stamp[s] = epoch
		queue = queue[:0]
		queue = append(queue, s)
		records[s] = append(records[s], SourceRecord{Source: s, D: 0, Parent: s})
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			du := dist[u]
			for _, v := range g.adj[u] {
				if stamp[v] == epoch {
					continue
				}
				dv := du + 1
				if dmin[v] == Unreachable || dv > dmin[v]+slack {
					continue
				}
				stamp[v] = epoch
				dist[v] = dv
				queue = append(queue, v)
				records[v] = append(records[v], SourceRecord{Source: s, D: dv, Parent: u})
			}
		}
	}
	return dmin, records
}
