// Visit-log fusion for the batched MS-BFS kernel. The identify stage runs
// two all-sources floods per election round over the same radius — ball
// sizes, then a weighted centrality sum — and the second flood visits
// exactly the nodes the first one did. Recording the first flood's settle
// events (node, source-bits) lets the weighted pass be replayed as a linear
// scan of the log instead of a second graph traversal; the log is
// weight-independent, so one recording serves every replay radius-matching
// round. Integer sums are commutative, so replayed results are bit-identical
// to a fresh sweep.
package graph

import (
	"math/bits"
	"runtime"
)

// VisitEvent records one batched-kernel settle: source i of the batch
// reached node V iff bit i of Bits is set.
type VisitEvent struct {
	V    int32
	Bits uint64
}

// VisitLog holds the settle events of one all-sources batched flood, one
// event list per 64-source batch (batch b covers batch slots b*64..). A log
// is only meaningful for the (graph, radius) it was recorded against;
// callers gate replays on Recorded and Radius.
type VisitLog struct {
	n       int
	radius  int
	batches [][]VisitEvent
	valid   bool
}

// Reset prepares the log to record an n-source flood truncated at radius
// hops, retaining the per-batch buffers from previous recordings.
func (lg *VisitLog) Reset(n, radius int) {
	lg.n, lg.radius, lg.valid = n, radius, true
	nb := (n + msbfsBatch - 1) / msbfsBatch
	if cap(lg.batches) < nb {
		lg.batches = append(lg.batches[:cap(lg.batches)], make([][]VisitEvent, nb-cap(lg.batches))...)
	}
	lg.batches = lg.batches[:nb]
	for b := range lg.batches {
		lg.batches[b] = lg.batches[b][:0]
	}
}

// Invalidate marks the log unusable (recorded against a walker path or a
// stale graph). Buffers are retained.
func (lg *VisitLog) Invalidate() { lg.valid = false }

// Recorded reports whether the log holds a complete batched recording.
func (lg *VisitLog) Recorded() bool { return lg != nil && lg.valid }

// Radius returns the truncation radius of the recording.
func (lg *VisitLog) Radius() int { return lg.radius }

// Events returns the total number of recorded settle events.
func (lg *VisitLog) Events() int {
	total := 0
	for _, b := range lg.batches {
		total += len(b)
	}
	return total
}

// BallSizesIntoKernelLogged is BallSizesIntoKernel recording the settle
// events of the first logRadius levels into lg. When the request resolves to
// the walker kernel there is nothing to record: lg is invalidated and the
// sweep runs as usual. The rows written to out are identical either way.
func (g *Graph) BallSizesIntoKernelLogged(kern Kernel, k, logRadius int, out [][]int, lg *VisitLog, acquire func() *Walker, release func(*Walker)) {
	if k <= 0 || g.N() == 0 {
		lg.Invalidate()
		return
	}
	if g.resolveKernel(kern, k) == KernelWalker {
		lg.Invalidate()
		ParallelNodes(g, acquire, release, func(w *Walker, v int) {
			ballSizesWalker(w, v, out[v])
		})
		return
	}
	n := g.N()
	lg.Reset(n, logRadius)
	logs := lg.batches
	batches := len(logs)
	ParallelRange(g, batches, acquire, release, func(w *Walker, b int) {
		lo := b * msbfsBatch
		hi := lo + msbfsBatch
		if hi > n {
			hi = n
		}
		if w.ms == nil {
			w.ms = newMSBFSScratch(n)
		}
		srcs := w.ms.srcs[:0]
		rows := w.ms.rows[:0]
		for i := lo; i < hi; i++ {
			v := g.batchSource(i)
			srcs = append(srcs, v)
			row := out[v]
			for r := range row {
				row[r] = 0
			}
			rows = append(rows, row)
		}
		w.ms.srcs, w.ms.rows = srcs, rows
		logs[b] = w.runBatchLogged(k, srcs, rows, nil, nil, logs[b], logRadius)
		for _, row := range rows {
			for r := 1; r < len(row); r++ {
				row[r] += row[r-1]
			}
		}
	})
}

// WeightedSumsInto replays the recording: out[v] receives the sum of
// weight[u] over all u within Radius hops of v (excluding v), for every
// node — the same values BallWeightedSumsInto computes with a full kernel
// sweep, at the cost of one linear pass over the log. The caller must have
// checked Recorded and that Radius matches the wanted flooding radius.
func (lg *VisitLog) WeightedSumsInto(g *Graph, weight []int, out []int) {
	ParallelChunksWeighted(len(lg.batches), runtime.GOMAXPROCS(0), func(b int) int {
		return len(lg.batches[b]) + 1
	}, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			base := b * msbfsBatch
			cnt := lg.n - base
			if cnt > msbfsBatch {
				cnt = msbfsBatch
			}
			var sums [msbfsBatch]int
			for _, ev := range lg.batches[b] {
				wv := weight[ev.V]
				for bitsLeft := ev.Bits; bitsLeft != 0; bitsLeft &= bitsLeft - 1 {
					sums[bits.TrailingZeros64(bitsLeft)] += wv
				}
			}
			for i := 0; i < cnt; i++ {
				out[g.batchSource(base+i)] = sums[i]
			}
		}
	})
}
