// Thaw-free CSR overlay for node churn. Removing or reviving nodes through
// the overlay keeps the graph frozen: a tombstone bitmap marks dead nodes and
// every affected adjacency window is re-filtered in place against a pristine
// copy of the CSR arena, with a per-node effective-end array consulted by the
// bit-parallel kernels. The walker paths need no changes at all — the
// per-node list views are rewired to the shortened windows.
//
// The overlay supports exactly the churn model of the incremental extractor:
// node IDs are stable, removals tombstone a node and detach its edges, and
// additions revive previously removed nodes (restoring their base edges to
// whatever endpoints are alive). Because base adjacency is a superset of
// every effective adjacency, windows can always be rebuilt by filtering the
// pristine arena, which also keeps them sorted — the property every
// canonical tie-break in the pipeline relies on.
package graph

import "sort"

// overlay carries the churn state of a frozen graph.
type overlay struct {
	dead      []bool
	deadCount int
	// baseTargets is the pristine CSR arena captured when the overlay was
	// created; it is never modified and backs window rebuilds and the
	// base-adjacency accessors used for dirty-region bounds.
	baseTargets []int32
	// ends[v] is the effective end of v's window in the working arena:
	// the live neighbors of v are targets[offsets[v]:ends[v]].
	ends []int32
	// patchBuf accumulates the nodes whose windows a mutation rebuilt.
	patchBuf []int32
}

// BeginOverlay puts the graph into overlay mode: the CSR arena is cloned so
// the base adjacency stays pristine, and subsequent RemoveNodes/ReviveNodes
// calls edit the clone in place without ever thawing. Requires a frozen
// graph; calling it again is a no-op. While an overlay is active AddEdge
// must not be used (it would thaw the graph out from under the overlay).
func (g *Graph) BeginOverlay() {
	if g.ov != nil {
		return
	}
	if !g.frozen {
		panic("graph: BeginOverlay requires a frozen graph")
	}
	n := g.N()
	work := make([]int32, len(g.targets))
	copy(work, g.targets)
	ends := make([]int32, n)
	for v := 0; v < n; v++ {
		ends[v] = g.offsets[v+1]
	}
	ov := &overlay{
		dead:        make([]bool, n),
		baseTargets: g.targets,
		ends:        ends,
	}
	g.targets = work
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		g.adj[v] = work[lo:hi:hi]
	}
	g.ov = ov
}

// HasOverlay reports whether the graph is in overlay mode.
func (g *Graph) HasOverlay() bool { return g.ov != nil }

// Alive reports whether v is currently alive. Graphs without an overlay
// have every node alive.
func (g *Graph) Alive(v int32) bool { return g.ov == nil || !g.ov.dead[v] }

// DeadMask returns the tombstone bitmap (true = removed), or nil when the
// graph has no overlay or no dead nodes. The slice is shared and must not
// be modified.
func (g *Graph) DeadMask() []bool {
	if g.ov == nil || g.ov.deadCount == 0 {
		return nil
	}
	return g.ov.dead
}

// AliveCount returns the number of alive nodes.
func (g *Graph) AliveCount() int {
	if g.ov == nil {
		return g.N()
	}
	return g.N() - g.ov.deadCount
}

// BaseNeighbors returns v's adjacency in the base (pre-churn) graph, dead
// endpoints included. Without an overlay it is identical to Neighbors. The
// slice is shared and must not be modified.
func (g *Graph) BaseNeighbors(v int32) []int32 {
	if g.ov == nil {
		return g.adj[v]
	}
	return g.ov.baseTargets[g.offsets[v]:g.offsets[v+1]]
}

// RemoveNodes tombstones the given nodes and detaches their edges. Nodes
// already dead are ignored. It returns the sorted list of nodes whose
// adjacency windows were rebuilt — the removed nodes plus their alive
// neighbors — which incremental callers use to seed dirty regions and
// invalidate flood caches. The returned slice is reused by the next
// mutation.
func (g *Graph) RemoveNodes(nodes []int32) []int32 {
	g.BeginOverlay()
	ov := g.ov
	fresh := ov.patchBuf[:0]
	for _, v := range nodes {
		if !ov.dead[v] {
			ov.dead[v] = true
			ov.deadCount++
			fresh = append(fresh, v)
		}
	}
	// Edge accounting over the pre-rebuild windows: each edge from a newly
	// dead node to a survivor counts once, edges between two newly dead
	// nodes count once via the lower-ID endpoint.
	for _, v := range fresh {
		for _, u := range g.adj[v] {
			if !ov.dead[u] || (u > v && isIn(fresh, u)) {
				g.edges--
			}
		}
	}
	patched := g.rebuildAround(fresh)
	ov.patchBuf = patched
	return patched
}

// ReviveNodes brings previously removed nodes back, restoring their base
// edges to alive endpoints. Nodes already alive are ignored. Like
// RemoveNodes it returns the sorted list of rebuilt nodes (the revived
// nodes plus their alive neighbors); the slice is reused by the next
// mutation.
func (g *Graph) ReviveNodes(nodes []int32) []int32 {
	g.BeginOverlay()
	ov := g.ov
	fresh := ov.patchBuf[:0]
	for _, v := range nodes {
		if ov.dead[v] {
			ov.dead[v] = false
			ov.deadCount--
			fresh = append(fresh, v)
		}
	}
	// Edge accounting over base adjacency against the post-revive alive
	// set: revived-to-survivor edges count once, revived-to-revived once.
	for _, v := range fresh {
		for _, u := range g.BaseNeighbors(v) {
			if !ov.dead[u] && (!isIn(fresh, u) || u > v) {
				g.edges++
			}
		}
	}
	patched := g.rebuildAround(fresh)
	ov.patchBuf = patched
	return patched
}

// rebuildAround re-filters the adjacency windows of every node in fresh and
// of their alive base neighbors, returning the sorted, deduplicated list of
// rebuilt nodes (reusing fresh's backing array where possible).
func (g *Graph) rebuildAround(fresh []int32) []int32 {
	ov := g.ov
	patched := fresh
	for _, v := range fresh {
		for _, u := range g.BaseNeighbors(v) {
			if !ov.dead[u] {
				patched = append(patched, u)
			}
		}
	}
	sort.Slice(patched, func(i, j int) bool { return patched[i] < patched[j] })
	dedup := patched[:0]
	var prev int32 = -1
	for _, v := range patched {
		if len(dedup) == 0 || v != prev {
			dedup = append(dedup, v)
			prev = v
		}
	}
	for _, v := range dedup {
		g.rebuildWindow(v)
	}
	return dedup
}

// rebuildWindow re-filters v's window from the pristine base adjacency:
// dead nodes keep an empty window, alive nodes keep exactly their alive
// base neighbors. Filtering the sorted base row preserves sorted order.
func (g *Graph) rebuildWindow(v int32) {
	ov := g.ov
	lo, hi := g.offsets[v], g.offsets[v+1]
	end := lo
	if !ov.dead[v] {
		for _, u := range ov.baseTargets[lo:hi] {
			if !ov.dead[u] {
				g.targets[end] = u
				end++
			}
		}
	}
	ov.ends[v] = end
	g.adj[v] = g.targets[lo:end:hi]
}

// isIn reports membership in a small unsorted batch (churn batches are tens
// of nodes; a linear scan beats building a set).
func isIn(batch []int32, v int32) bool {
	for _, b := range batch {
		if b == v {
			return true
		}
	}
	return false
}

// csrEff returns the CSR arrays together with the per-node effective end
// array the kernels iterate by: node u's live neighbors are
// targets[offsets[u]:ends[u]]. Without an overlay, ends aliases
// offsets[1:], so the no-churn path costs nothing extra.
func (g *Graph) csrEff() (offsets, targets, ends []int32, ok bool) {
	if g.ov != nil {
		return g.offsets, g.targets, g.ov.ends, g.frozen
	}
	if len(g.offsets) > 0 {
		return g.offsets, g.targets, g.offsets[1:], g.frozen
	}
	return g.offsets, g.targets, nil, g.frozen
}
