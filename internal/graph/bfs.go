package graph

import "sync"

// BFS returns hop distances from src to every node (Unreachable for nodes in
// other components).
func (g *Graph) BFS(src int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSPaths returns hop distances and a parent array (parent[src] == src,
// Unreachable elsewhere when unvisited) for shortest-path reconstruction.
func (g *Graph) BFSPaths(src int) (dist, parent []int32) {
	dist = make([]int32, g.N())
	parent = make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = Unreachable
	}
	dist[src] = 0
	parent[src] = int32(src)
	queue := []int32{int32(src)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// PathTo reconstructs the path from the BFS source to dst using a parent
// array from BFSPaths. Returns nil if dst was unreachable.
func PathTo(parent []int32, dst int) []int32 {
	if parent[dst] == Unreachable {
		return nil
	}
	var rev []int32
	for v := int32(dst); ; v = parent[v] {
		rev = append(rev, v)
		if parent[v] == v {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BFSBlocked is BFS that never enters nodes with blocked[v] == true (the
// source is always entered). It implements the paper's "limited flooding
// without crossing the coarse skeleton" (Sec. III-D).
func (g *Graph) BFSBlocked(src int, blocked []bool) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.adj[u] {
			if dist[v] == Unreachable && !blocked[v] {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// khopScratch holds reusable buffers for truncated BFS sweeps, plus
// since-last-drain work counters (see Walker.TakeCounts).
type khopScratch struct {
	stamp   []int32
	dist    []int32
	queue   []int32
	epoch   int32
	sweeps  int
	visited int
}

func newKHopScratch(n int) *khopScratch {
	return &khopScratch{
		stamp: make([]int32, n),
		dist:  make([]int32, n),
		queue: make([]int32, 0, n),
	}
}

// run performs BFS from src truncated at k hops and calls visit(node, dist)
// for every reached node other than src.
func (s *khopScratch) run(g *Graph, src, k int, visit func(v, d int32)) {
	s.sweeps++
	s.epoch++
	s.stamp[src] = s.epoch
	s.dist[src] = 0
	s.queue = s.queue[:0]
	s.queue = append(s.queue, int32(src))
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		du := s.dist[u]
		if int(du) == k {
			continue
		}
		for _, v := range g.adj[u] {
			if s.stamp[v] != s.epoch {
				s.stamp[v] = s.epoch
				s.dist[v] = du + 1
				s.queue = append(s.queue, v)
				s.visited++
				if visit != nil {
					visit(v, du+1)
				}
			}
		}
	}
}

// runUntil is run with early termination: visit returning false abandons
// the sweep immediately. The scratch stays consistent for the next sweep
// (the epoch stamp makes partially filled buffers harmless).
func (s *khopScratch) runUntil(g *Graph, src, k int, visit func(v, d int32) bool) {
	s.sweeps++
	s.epoch++
	s.stamp[src] = s.epoch
	s.dist[src] = 0
	s.queue = s.queue[:0]
	s.queue = append(s.queue, int32(src))
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		du := s.dist[u]
		if int(du) == k {
			continue
		}
		for _, v := range g.adj[u] {
			if s.stamp[v] != s.epoch {
				s.stamp[v] = s.epoch
				s.dist[v] = du + 1
				s.queue = append(s.queue, v)
				s.visited++
				if !visit(v, du+1) {
					return
				}
			}
		}
	}
}

// KHopNeighbors returns the nodes at hop distance 1..k from src.
func (g *Graph) KHopNeighbors(src, k int) []int32 {
	s := newKHopScratch(g.N())
	var out []int32
	s.run(g, src, k, func(v, _ int32) { out = append(out, v) })
	return out
}

// KHopCount returns |N_k(src)|, the k-hop neighborhood size of src
// excluding src itself.
func (g *Graph) KHopCount(src, k int) int {
	s := newKHopScratch(g.N())
	n := 0
	s.run(g, src, k, func(_, _ int32) { n++ })
	return n
}

// AllKHopCounts computes |N_k(v)| for every node, in parallel. This is the
// centralized analogue of the paper's first round of controlled flooding
// (Sec. III-A). The kernel is chosen automatically; see AllKHopCountsKernel.
func (g *Graph) AllKHopCounts(k int) []int {
	return g.AllKHopCountsKernel(KernelAuto, k)
}

// AllKHopCountsKernel is AllKHopCounts under an explicit kernel choice. The
// batched kernel runs the counts as width-1 rows through the MS-BFS sweeps;
// both kernels produce identical results.
func (g *Graph) AllKHopCountsKernel(kern Kernel, k int) []int {
	n := g.N()
	out := make([]int, n)
	if k <= 0 || n == 0 {
		return out
	}
	if g.resolveKernel(kern, k) == KernelWalker {
		ParallelNodes(g, nil, nil, func(w *Walker, v int) {
			out[v] = w.Count(v, k)
		})
		return out
	}
	rows := make([][]int, n)
	for v := range rows {
		rows[v] = out[v : v+1 : v+1]
	}
	g.ballSizesBatched(k, rows, nil, nil)
	return out
}

// AllBallSizes computes, for every node v and every radius r in 1..k, the
// cumulative ball size |N_r(v)| (excluding v), in parallel. The result is
// indexed sizes[v][r-1]. It backs the saturation guard: when balls approach
// the network size, neighborhood counts stop being informative.
func (g *Graph) AllBallSizes(k int) [][]int {
	n := g.N()
	out := make([][]int, n)
	flat := make([]int, n*k)
	for v := range out {
		out[v] = flat[v*k : (v+1)*k : (v+1)*k]
	}
	g.BallSizesInto(k, out, nil, nil)
	return out
}

// BallSizesInto is AllBallSizes over caller-provided row buffers (each row
// must have length k; previous contents are overwritten), with an optional
// Walker acquire/release pair for pooling — see ParallelNodes. The kernel is
// chosen automatically; see BallSizesIntoKernel.
func (g *Graph) BallSizesInto(k int, out [][]int, acquire func() *Walker, release func(*Walker)) {
	g.BallSizesIntoKernel(KernelAuto, k, out, acquire, release)
}

// BallSizesIntoKernel is BallSizesInto under an explicit kernel choice:
// per-source walker sweeps, or the bit-parallel MS-BFS kernel advancing 64
// sources per pass (msbfs.go). Both kernels produce identical results; only
// the sweep cost differs.
func (g *Graph) BallSizesIntoKernel(kern Kernel, k int, out [][]int, acquire func() *Walker, release func(*Walker)) {
	if k <= 0 || g.N() == 0 {
		return
	}
	if g.resolveKernel(kern, k) == KernelWalker {
		ParallelNodes(g, acquire, release, func(w *Walker, v int) {
			ballSizesWalker(w, v, out[v])
		})
		return
	}
	g.ballSizesBatched(k, out, acquire, release)
}

// Components labels connected components; it returns the label of each node
// and the component count. Labels are assigned in increasing order of the
// smallest node ID in the component.
func (g *Graph) Components() (label []int, count int) {
	label = make([]int, g.N())
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	for v := 0; v < g.N(); v++ {
		if label[v] != -1 {
			continue
		}
		label[v] = count
		queue = queue[:0]
		queue = append(queue, int32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.adj[u] {
				if label[w] == -1 {
					label[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return label, count
}

// LargestComponent returns the node set of the largest connected component,
// sorted by node ID.
func (g *Graph) LargestComponent() []int32 {
	label, count := g.Components()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range label {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]int32, 0, sizes[best])
	for v, l := range label {
		if l == best {
			out = append(out, int32(v))
		}
	}
	return out
}

// IsConnected reports whether the graph is a single connected component.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	_, count := g.Components()
	return count == 1
}

// invIndex is a pooled dense inverse-index array for Subgraph: new-graph
// position by original node ID, -1 elsewhere. The backing array is kept
// all -1 between uses (entries are restored after each call), so a call
// costs O(len(keep)) bookkeeping instead of building a hash map per call.
type invIndex struct {
	pos []int32
}

var invIndexPool = sync.Pool{New: func() any { return &invIndex{} }}

// grow returns the index sized for n nodes, preserving the all -1 invariant
// for any newly allocated tail.
func (ii *invIndex) grow(n int) []int32 {
	if cap(ii.pos) < n {
		ii.pos = make([]int32, n)
		for i := range ii.pos {
			ii.pos[i] = -1
		}
	}
	return ii.pos[:n]
}

// Subgraph returns the induced subgraph over keep (node IDs in the original
// graph) plus the mapping back to original IDs. Node i of the subgraph is
// keep[i].
func (g *Graph) Subgraph(keep []int32) (*Graph, []int32) {
	ii := invIndexPool.Get().(*invIndex)
	defer invIndexPool.Put(ii)
	index := ii.grow(g.N())
	for i, v := range keep {
		index[v] = int32(i)
	}
	sub := New(len(keep))
	for i, v := range keep {
		for _, w := range g.adj[v] {
			if j := index[w]; j > int32(i) {
				sub.AddEdge(i, int(j))
			}
		}
	}
	if len(g.batchOrder) == g.N() {
		// Carry the spatial batch ordering over: keep's nodes in the
		// parent's Z-curve order, renamed to subgraph IDs.
		sub.batchOrder = make([]int32, 0, len(keep))
		for _, v := range g.batchOrder {
			if j := index[v]; j >= 0 {
				sub.batchOrder = append(sub.batchOrder, j)
			}
		}
	}
	for _, v := range keep {
		index[v] = -1
	}
	sub.SortAdjacency()
	orig := make([]int32, len(keep))
	copy(orig, keep)
	return sub, orig
}

// Eccentricity returns the maximum finite hop distance from src.
func (g *Graph) Eccentricity(src int) int {
	dist := g.BFS(src)
	max := 0
	for _, d := range dist {
		if d != Unreachable && int(d) > max {
			max = int(d)
		}
	}
	return max
}

// DiameterLowerBound estimates the hop diameter with a double BFS sweep.
func (g *Graph) DiameterLowerBound(src int) int {
	dist := g.BFS(src)
	far := src
	for v, d := range dist {
		if d != Unreachable && int(d) > int(dist[far]) {
			far = v
		}
	}
	return g.Eccentricity(far)
}
