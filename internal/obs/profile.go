package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Profile is a span-aggregation tree computed from a record stream: one node
// per distinct span call path (root span name, child span name, ...), each
// carrying how many spans completed at that path and their summed wall time.
// Self time — the part of a node's total not covered by its children — falls
// out of the tree, so a profile renders directly as folded stacks for
// flamegraph tools (WriteFolded) or as a JSON tree (/profile?format=json).
//
// Profiles are plain values: build one per run (the flight recorder does),
// then Merge them to aggregate across runs. A nil *Profile is a valid empty
// profile.
type Profile struct {
	// Roots holds the top-level span paths, sorted by name.
	Roots []*ProfileNode `json:"roots,omitempty"`
}

// ProfileNode is one span call path of a Profile.
type ProfileNode struct {
	// Name is the span name at this path element.
	Name string
	// Count is how many spans completed at this path.
	Count int64
	// Total is the summed wall time of those spans.
	Total time.Duration
	// Children are the sub-span paths, sorted by name.
	Children []*ProfileNode
}

// Self is the node's total minus the time covered by its children, clamped
// at zero (children of still-open or clock-skewed spans can overshoot).
func (n *ProfileNode) Self() time.Duration {
	if n == nil {
		return 0
	}
	s := n.Total
	for _, c := range n.Children {
		s -= c.Total
	}
	if s < 0 {
		return 0
	}
	return s
}

// profileNodeJSON is the wire form of a ProfileNode; Self is materialized so
// consumers need not recompute the tree invariant.
type profileNodeJSON struct {
	Name     string         `json:"name"`
	Count    int64          `json:"count"`
	TotalNS  int64          `json:"total_ns"`
	SelfNS   int64          `json:"self_ns"`
	Children []*ProfileNode `json:"children,omitempty"`
}

// MarshalJSON renders the node with its derived self time.
func (n *ProfileNode) MarshalJSON() ([]byte, error) {
	return json.Marshal(profileNodeJSON{
		Name:     n.Name,
		Count:    n.Count,
		TotalNS:  n.Total.Nanoseconds(),
		SelfNS:   n.Self().Nanoseconds(),
		Children: n.Children,
	})
}

// UnmarshalJSON restores the node from its wire form (SelfNS is derived and
// therefore dropped).
func (n *ProfileNode) UnmarshalJSON(data []byte) error {
	var in profileNodeJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	n.Name, n.Count, n.Total, n.Children = in.Name, in.Count, time.Duration(in.TotalNS), in.Children
	return nil
}

// child returns the named child, creating (and keeping the slice sorted) on
// first use.
func childNode(nodes []*ProfileNode, name string) ([]*ProfileNode, *ProfileNode) {
	i := sort.Search(len(nodes), func(i int) bool { return nodes[i].Name >= name })
	if i < len(nodes) && nodes[i].Name == name {
		return nodes, nodes[i]
	}
	n := &ProfileNode{Name: name}
	nodes = append(nodes, nil)
	copy(nodes[i+1:], nodes[i:])
	nodes[i] = n
	return nodes, n
}

// Merge folds other into p path by path. Merging nil or an empty profile is
// a no-op; p must be non-nil.
func (p *Profile) Merge(other *Profile) {
	if other == nil {
		return
	}
	p.Roots = mergeNodes(p.Roots, other.Roots)
}

func mergeNodes(dst, src []*ProfileNode) []*ProfileNode {
	for _, s := range src {
		var d *ProfileNode
		dst, d = childNode(dst, s.Name)
		d.Count += s.Count
		d.Total += s.Total
		d.Children = mergeNodes(d.Children, s.Children)
	}
	return dst
}

// Empty reports whether the profile holds no completed spans.
func (p *Profile) Empty() bool { return p == nil || len(p.Roots) == 0 }

// WriteFolded renders the profile as folded stacks — one
// "root;child;leaf <value>" line per path, value = self time in
// microseconds — the input format of flamegraph.pl, inferno and speedscope.
// Paths with zero self time and zero count are skipped. Output is sorted by
// path, so it is deterministic given the profile.
func (p *Profile) WriteFolded(w io.Writer) error {
	if p == nil {
		return nil
	}
	var b strings.Builder
	var walk func(prefix string, nodes []*ProfileNode)
	walk = func(prefix string, nodes []*ProfileNode) {
		for _, n := range nodes {
			path := n.Name
			if prefix != "" {
				path = prefix + ";" + n.Name
			}
			if self := n.Self().Microseconds(); self > 0 || len(n.Children) == 0 {
				fmt.Fprintf(&b, "%s %d\n", path, self)
			}
			walk(path, n.Children)
		}
	}
	walk("", p.Roots)
	_, err := io.WriteString(w, b.String())
	return err
}

// ProfileBuilder accumulates a Profile from a record stream — any mix of
// interleaved spans, as long as each span's start precedes its end (the
// order every Tracer sink observes). Events are ignored; spans that never
// end contribute structure (their children still aggregate) but no time.
// The zero value is not ready; use NewProfileBuilder. Not safe for
// concurrent use — feed it from one goroutine (or a Sink, which the tracer
// already serializes).
type ProfileBuilder struct {
	profile Profile
	open    map[uint64]*ProfileNode // span ID -> its path node
}

// NewProfileBuilder creates an empty builder.
func NewProfileBuilder() *ProfileBuilder {
	return &ProfileBuilder{open: make(map[uint64]*ProfileNode)}
}

// Add feeds one record into the profile.
func (b *ProfileBuilder) Add(r Record) {
	switch r.Kind {
	case KindSpanStart:
		if parent, ok := b.open[r.Parent]; ok && r.Parent != 0 {
			var n *ProfileNode
			parent.Children, n = childNode(parent.Children, r.Name)
			b.open[r.ID] = n
			return
		}
		var n *ProfileNode
		b.profile.Roots, n = childNode(b.profile.Roots, r.Name)
		b.open[r.ID] = n
	case KindSpanEnd:
		n, ok := b.open[r.ID]
		if !ok {
			return
		}
		delete(b.open, r.ID)
		n.Count++
		n.Total += r.Dur
	}
}

// Profile returns the accumulated profile. The builder may keep being fed;
// the returned profile shares its nodes, so snapshot (or stop adding)
// before handing it out across goroutines.
func (b *ProfileBuilder) Profile() *Profile { return &b.profile }

// BuildProfile aggregates a complete record slice (e.g. a parsed trace
// file or a ring sink's contents) into a Profile.
func BuildProfile(recs []Record) *Profile {
	b := NewProfileBuilder()
	for _, r := range recs {
		b.Add(r)
	}
	return b.Profile()
}
