package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and histograms. Instruments are
// created on first use and live for the registry's lifetime; all operations
// are safe for concurrent use. A nil *Registry is a valid disabled registry:
// it hands out nil instruments whose methods no-op.
//
// Names follow the Prometheus convention and may carry an inline label set,
// e.g. `bfskel_stage_seconds{stage="identify"}`; the exposition writer
// splices histogram `le` labels into an existing label set correctly.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls reuse the first buckets).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		h = &Histogram{buckets: bs, counts: make([]atomic.Int64, len(bs))}
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper bounds,
// cumulative at exposition time) plus a sum and total count. Observe is
// lock-free — atomic per-bucket counters plus an atomic-bits CAS loop for
// the sum — so instrumented parallel workers never serialize on a mutex.
type Histogram struct {
	buckets []float64      // sorted upper bounds, immutable after creation
	counts  []atomic.Int64 // per-bucket (non-cumulative) counts
	sumBits atomic.Uint64  // float64 bits of the observation sum
	count   atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// The bucket list is short (a dozen bounds); a linear scan beats a
	// binary search at this size and costs no branches on the common
	// smallest-bucket case.
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// DurationBuckets are the default bucket bounds (seconds) for phase and
// run timings: 100µs .. ~100s in roughly 3x steps.
var DurationBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100,
}

// HistogramSnapshot is the serialisable state of one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is the sum of all observations.
	Sum float64 `json:"sum"`
	// Buckets holds cumulative counts per upper bound, in bound order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot is a point-in-time, JSON-marshalable copy of every instrument —
// the machine-readable form embedded in skelbench -json reports.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current state of every instrument. A nil registry
// yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sumBits.Load()),
	}
	cum := int64(0)
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		out.Buckets = append(out.Buckets, BucketCount{LE: ub, Count: cum})
	}
	return out
}

// splitName separates an inline label set from a metric name:
// `a{b="c"}` -> (`a`, `b="c"`); a plain name comes back with empty labels.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// joinLabels merges an existing label set with one extra pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4), sorted by name for stable output.
// Labeled series of the same base name form one metric family: the sort
// groups them adjacently and exactly one # TYPE line introduces each
// family (the exposition format forbids repeating it per series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var b strings.Builder
	lastFamily := ""
	family := func(base, kind string) {
		if base != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
			lastFamily = base
		}
	}
	for _, name := range sortedKeys(snap.Counters) {
		base, labels := splitName(name)
		family(base, "counter")
		fmt.Fprintf(&b, "%s %d\n", promName(base, labels), snap.Counters[name])
	}
	lastFamily = ""
	for _, name := range sortedKeys(snap.Gauges) {
		base, labels := splitName(name)
		family(base, "gauge")
		fmt.Fprintf(&b, "%s %g\n", promName(base, labels), snap.Gauges[name])
	}
	lastFamily = ""
	for _, name := range sortedKeys(snap.Histograms) {
		base, labels := splitName(name)
		h := snap.Histograms[name]
		family(base, "histogram")
		for _, bc := range h.Buckets {
			le := joinLabels(labels, fmt.Sprintf("le=%q", formatLE(bc.LE)))
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, le, bc.Count)
		}
		inf := joinLabels(labels, `le="+Inf"`)
		fmt.Fprintf(&b, "%s_bucket%s %d\n", base, inf, h.Count)
		fmt.Fprintf(&b, "%s_sum%s %g\n", base, bracketed(labels), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, bracketed(labels), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatLE(v float64) string { return fmt.Sprintf("%g", v) }

func bracketed(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func promName(base, labels string) string { return base + bracketed(labels) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Label formats a metric name with one inline label pair, e.g.
// Label("x_seconds", "stage", "identify") -> `x_seconds{stage="identify"}`.
func Label(name, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}
