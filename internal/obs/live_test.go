package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden pins the full exposition output: one # TYPE line per
// metric family (labeled series group under a single header), `le` labels
// spliced into existing label sets, and %q-escaped label values.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("runs_total", "backend", "bfskel")).Add(2)
	r.Counter(Label("runs_total", "backend", "case")).Add(1)
	r.Counter("plain_total").Add(5)
	r.Gauge("sites").Set(31.5)
	r.Gauge(Label("weird", "path", `a"b\c`)).Set(1)
	h := r.Histogram(Label("stage_seconds", "stage", "identify"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h2 := r.Histogram(Label("stage_seconds", "stage", "voronoi"), []float64{0.1, 1})
	h2.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	want := `# TYPE plain_total counter
plain_total 5
# TYPE runs_total counter
runs_total{backend="bfskel"} 2
runs_total{backend="case"} 1
# TYPE sites gauge
sites 31.5
# TYPE weird gauge
weird{path="a\"b\\c"} 1
# TYPE stage_seconds histogram
stage_seconds_bucket{stage="identify",le="0.1"} 1
stage_seconds_bucket{stage="identify",le="1"} 2
stage_seconds_bucket{stage="identify",le="+Inf"} 2
stage_seconds_sum{stage="identify"} 0.55
stage_seconds_count{stage="identify"} 2
stage_seconds_bucket{stage="voronoi",le="0.1"} 0
stage_seconds_bucket{stage="voronoi",le="1"} 0
stage_seconds_bucket{stage="voronoi",le="+Inf"} 1
stage_seconds_sum{stage="voronoi"} 2
stage_seconds_count{stage="voronoi"} 1
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Exactly one TYPE header per family, never one per series.
	if n := strings.Count(buf.String(), "# TYPE stage_seconds histogram"); n != 1 {
		t.Errorf("stage_seconds family declared %d times, want 1", n)
	}
	if n := strings.Count(buf.String(), "# TYPE runs_total counter"); n != 1 {
		t.Errorf("runs_total family declared %d times, want 1", n)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%3) * 5) // 0, 5 or 10: spans three buckets
			}
		}(w)
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	wantSum := 0.0
	for w := 0; w < workers; w++ {
		wantSum += float64(w%3) * 5 * per
	}
	if s.Sum != wantSum {
		t.Errorf("sum = %g, want %g", s.Sum, wantSum)
	}
	if last := s.Buckets[len(s.Buckets)-1].Count; last != workers*per {
		t.Errorf("cumulative top bucket = %d, want %d", last, workers*per)
	}
}

// traceRun emits one synthetic two-stage run through the tracer.
func traceRun(tr *Tracer, backend string, n int) {
	attrs := []Attr{Int("nodes", n)}
	if backend != "" {
		attrs = append([]Attr{Str("backend", backend)}, attrs...)
	}
	root := tr.StartSpan("extract", attrs...)
	s1 := root.StartSpan("stage.identify")
	s1.Event("election", Int("round", 1))
	s1.End()
	root.StartSpan("stage.voronoi").End()
	root.End(Int("sites", 4))
}

func TestRecorderRunRecords(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(8)
	tr := NewTracer(NewRecorderSink(rec, reg))

	traceRun(tr, "", 100)
	traceRun(tr, "case", 200)

	runs := rec.Runs()
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	// Newest first.
	if runs[0].ID != 2 || runs[1].ID != 1 {
		t.Errorf("run order = %d,%d, want 2,1", runs[0].ID, runs[1].ID)
	}
	latest := runs[0]
	if latest.Backend != "case" || latest.Name != "extract" {
		t.Errorf("latest run backend=%q name=%q", latest.Backend, latest.Name)
	}
	if runs[1].Backend != "bfskel" {
		t.Errorf(`extract run without backend attr = %q, want default "bfskel"`, runs[1].Backend)
	}
	if latest.Spans != 3 || latest.Events != 1 {
		t.Errorf("spans=%d events=%d, want 3/1", latest.Spans, latest.Events)
	}
	if latest.Params["nodes"] != 200 || latest.Result["sites"] != 4 {
		t.Errorf("params/result not captured: %v / %v", latest.Params, latest.Result)
	}
	if latest.Digest == runs[1].Digest {
		t.Error("different params produced equal digests")
	}
	if latest.Metrics == nil {
		t.Error("run record missing metrics snapshot")
	}
	if latest.Profile.Empty() {
		t.Fatal("run record missing span profile")
	}
	root := latest.Profile.Roots[0]
	if root.Name != "extract" || root.Count != 1 || len(root.Children) != 2 {
		t.Errorf("profile root = %+v", root)
	}

	got, ok := rec.Get(1)
	if !ok || got.ID != 1 {
		t.Errorf("Get(1) = %+v, %v", got, ok)
	}
	if _, ok := rec.Get(99); ok {
		t.Error("Get(99) found a phantom run")
	}

	// Same params -> same digest.
	traceRun(tr, "case", 200)
	if d := rec.Runs()[0].Digest; d != latest.Digest {
		t.Errorf("equal params digest mismatch: %s vs %s", d, latest.Digest)
	}

	// The record must round-trip through JSON (the /runs payload).
	data, err := json.Marshal(latest)
	if err != nil {
		t.Fatalf("marshal run record: %v", err)
	}
	var back RunRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal run record: %v", err)
	}
	if back.ID != latest.ID || back.Digest != latest.Digest || back.Profile.Empty() {
		t.Errorf("round-trip lost data: %+v", back)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(3)
	tr := NewTracer(NewRecorderSink(rec, nil))
	for i := 0; i < 5; i++ {
		traceRun(tr, "bfskel", i)
	}
	if rec.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", rec.Len())
	}
	if rec.Evicted() != 2 {
		t.Errorf("evicted = %d, want 2", rec.Evicted())
	}
	runs := rec.Runs()
	if runs[0].ID != 5 || runs[2].ID != 3 {
		t.Errorf("retained IDs %d..%d, want 5..3", runs[0].ID, runs[2].ID)
	}
	if _, ok := rec.Get(2); ok {
		t.Error("evicted run still retrievable")
	}
	if got, ok := rec.Get(4); !ok || got.ID != 4 {
		t.Errorf("Get(4) after eviction = %+v, %v", got, ok)
	}
}

func TestRecorderConcurrentWriters(t *testing.T) {
	rec := NewRecorder(64)
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One tracer per goroutine: Emit ordering is per-tracer, and
			// concurrent batch drivers each hold their own spans; the
			// recorder itself must take the concurrent Adds.
			tr := NewTracer(NewRecorderSink(rec, nil))
			for i := 0; i < per; i++ {
				traceRun(tr, fmt.Sprintf("w%d", w), i)
			}
		}(w)
	}
	wg.Wait()
	if rec.Len() != 64 {
		t.Errorf("ring holds %d, want 64", rec.Len())
	}
	if rec.Evicted() != workers*per-64 {
		t.Errorf("evicted = %d, want %d", rec.Evicted(), workers*per-64)
	}
	runs := rec.Runs()
	for i, r := range runs {
		if want := uint64(workers*per - i); r.ID != want {
			t.Fatalf("runs[%d].ID = %d, want %d (newest first, contiguous)", i, r.ID, want)
		}
	}
}

// TestRecorderInterleavedRuns checks that two runs whose spans interleave in
// the record stream (concurrent extractions through one tracer) are grouped
// by parent links, not by arrival order.
func TestRecorderInterleavedRuns(t *testing.T) {
	rec := NewRecorder(8)
	sink := NewRecorderSink(rec, nil)
	// Drive the sink directly with a hand-interleaved sequence.
	sink.Emit(Record{Kind: KindSpanStart, ID: 1, Name: "extract", Attrs: []Attr{Int("nodes", 1)}})
	sink.Emit(Record{Kind: KindSpanStart, ID: 2, Name: "extract", Attrs: []Attr{Int("nodes", 2)}})
	sink.Emit(Record{Kind: KindSpanStart, ID: 3, Parent: 2, Name: "stage.identify"})
	sink.Emit(Record{Kind: KindSpanStart, ID: 4, Parent: 1, Name: "stage.identify"})
	sink.Emit(Record{Kind: KindEvent, Span: 3, Name: "election"})
	sink.Emit(Record{Kind: KindSpanEnd, ID: 4, Name: "stage.identify", Dur: time.Millisecond})
	sink.Emit(Record{Kind: KindSpanEnd, ID: 3, Name: "stage.identify", Dur: 2 * time.Millisecond})
	sink.Emit(Record{Kind: KindSpanEnd, ID: 2, Name: "extract", Dur: 5 * time.Millisecond})
	sink.Emit(Record{Kind: KindSpanEnd, ID: 1, Name: "extract", Dur: 4 * time.Millisecond})

	runs := rec.Runs()
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	// Root 2 ended first, so it is run ID 1.
	first, second := runs[1], runs[0]
	if first.Params["nodes"] != 2 || second.Params["nodes"] != 1 {
		t.Errorf("runs grouped wrong: first.nodes=%v second.nodes=%v", first.Params["nodes"], second.Params["nodes"])
	}
	if first.Events != 1 || second.Events != 0 {
		t.Errorf("events attributed wrong: %d/%d, want 1/0", first.Events, second.Events)
	}
	if first.WallNS != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("first run wall = %d", first.WallNS)
	}
	// Both sink maps must be drained once all runs completed.
	if len(sink.open) != 0 || len(sink.spanRun) != 0 {
		t.Errorf("sink leaks state: open=%d spanRun=%d", len(sink.open), len(sink.spanRun))
	}
}

func TestProfileBuildMergeFolded(t *testing.T) {
	ring := NewRingSink(0)
	tr := NewTracer(ring)
	traceRun(tr, "bfskel", 10)
	traceRun(tr, "bfskel", 10)
	p := BuildProfile(ring.Records())

	if len(p.Roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(p.Roots))
	}
	root := p.Roots[0]
	if root.Name != "extract" || root.Count != 2 {
		t.Errorf("root = %s count=%d, want extract/2", root.Name, root.Count)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	// Children sorted by name.
	if root.Children[0].Name != "stage.identify" || root.Children[1].Name != "stage.voronoi" {
		t.Errorf("children order: %s, %s", root.Children[0].Name, root.Children[1].Name)
	}
	if root.Self() > root.Total {
		t.Errorf("self %v exceeds total %v", root.Self(), root.Total)
	}

	// Merge doubles the counts.
	merged := &Profile{}
	merged.Merge(p)
	merged.Merge(p)
	if merged.Roots[0].Count != 4 {
		t.Errorf("merged root count = %d, want 4", merged.Roots[0].Count)
	}

	var buf bytes.Buffer
	if err := merged.WriteFolded(&buf); err != nil {
		t.Fatalf("folded: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"extract;stage.identify ", "extract;stage.voronoi "} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	// Folded lines are "path value" with integer values.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		parts := strings.Split(line, " ")
		if len(parts) != 2 {
			t.Errorf("malformed folded line %q", line)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	merged.WriteFolded(&buf2)
	if buf2.String() != out {
		t.Error("folded output not deterministic")
	}
}

func TestStreamSinkFanOutAndDrops(t *testing.T) {
	s := NewStreamSink()
	tr := NewTracer(s)

	// No subscribers: emit must be a no-op (and not panic).
	tr.StartSpan("x").End()

	a := s.Subscribe(16)
	b := s.Subscribe(2)
	if s.Subscribers() != 2 {
		t.Fatalf("subscribers = %d, want 2", s.Subscribers())
	}
	for i := 0; i < 5; i++ {
		tr.StartSpan("s", Int("i", i)).End()
	}
	// a (buf 16) holds all 10 records; b (buf 2) dropped 8.
	if got := len(a.C); got != 10 {
		t.Errorf("subscriber a buffered %d, want 10", got)
	}
	if got, want := b.Dropped(), int64(8); got != want {
		t.Errorf("subscriber b dropped %d, want %d", got, want)
	}
	rec := <-a.C
	if rec.Kind != KindSpanStart || rec.Name != "s" {
		t.Errorf("first streamed record = %+v", rec)
	}
	if len(rec.Attrs) != 1 || rec.Attrs[0].Key != "i" {
		t.Errorf("streamed attrs = %v", rec.Attrs)
	}

	a.Cancel()
	a.Cancel() // idempotent
	if s.Subscribers() != 1 {
		t.Errorf("subscribers after cancel = %d, want 1", s.Subscribers())
	}
	// Channel closed after drain.
	for range a.C {
	}
	b.Cancel()

	// Emit after everyone left: fast path again.
	tr.StartSpan("y").End()
}

func TestStreamSinkConcurrent(t *testing.T) {
	s := NewStreamSink()
	tr := NewTracer(s)
	sub := s.Subscribe(1 << 14)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.StartSpan("w").End()
			}
		}()
	}
	done := make(chan int)
	go func() {
		n := 0
		for range sub.C {
			n++
		}
		done <- n
	}()
	wg.Wait()
	sub.Cancel()
	n := <-done
	if int64(n)+sub.Dropped() != 4*500*2 {
		t.Errorf("received %d + dropped %d != %d emitted", n, sub.Dropped(), 4*500*2)
	}
}

// A nil *JSONLSink must be inert in a fan-out: NewLiveObsScope-style wiring
// passes an optional trace sink unconditionally, and a typed-nil pointer
// survives interface nil checks.
func TestJSONLSinkNilReceiver(t *testing.T) {
	var s *JSONLSink
	tr := NewTracer(MultiSink{s})
	tr.StartSpan("x").End()
	if err := s.Flush(); err != nil {
		t.Errorf("nil Flush = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
	if err := s.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
}
