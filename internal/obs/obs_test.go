package obs

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestTracerSpanEventSequence(t *testing.T) {
	sink := NewRingSink(0)
	tr := NewTracer(sink)

	root := tr.StartSpan("extract", Int("nodes", 10))
	child := root.StartSpan("stage.identify")
	child.Event("election", Int("round", 1), Int("sites", 4))
	child.End(Int64("sweeps", 30))
	root.End()

	recs := sink.Records()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	wantKinds := []RecordKind{KindSpanStart, KindSpanStart, KindEvent, KindSpanEnd, KindSpanEnd}
	for i, k := range wantKinds {
		if recs[i].Kind != k {
			t.Errorf("record %d: kind %v, want %v", i, recs[i].Kind, k)
		}
	}
	if recs[0].ID != 1 || recs[0].Parent != 0 {
		t.Errorf("root span: id=%d parent=%d, want 1/0", recs[0].ID, recs[0].Parent)
	}
	if recs[1].ID != 2 || recs[1].Parent != 1 {
		t.Errorf("child span: id=%d parent=%d, want 2/1", recs[1].ID, recs[1].Parent)
	}
	if recs[2].Span != 2 || recs[2].Name != "election" {
		t.Errorf("event: span=%d name=%q, want 2/election", recs[2].Span, recs[2].Name)
	}
	if recs[3].Name != "stage.identify" {
		t.Errorf("span end carries name %q, want stage.identify", recs[3].Name)
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	span := tr.StartSpan("x")
	if span != nil {
		t.Fatal("nil tracer produced a non-nil span")
	}
	// None of these may panic.
	span.Event("e")
	span.End()
	if child := span.StartSpan("y"); child != nil {
		t.Error("nil span produced a non-nil child")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)

	s := tr.StartSpan("phase.voronoi", Int("sites", 7))
	s.Event("round", Int("round", 3), Int("messages", 42))
	s.End(Int("rounds", 9))
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	var recs []Record
	scan := bufio.NewScanner(&buf)
	for scan.Scan() {
		rec, err := ParseJSONL(scan.Bytes())
		if err != nil {
			t.Fatalf("parse %q: %v", scan.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Kind != KindSpanStart || recs[0].Name != "phase.voronoi" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Kind != KindEvent || recs[1].Span != recs[0].ID {
		t.Errorf("event not tied to span: %+v", recs[1])
	}
	var msgs float64 = -1
	for _, a := range recs[1].Attrs {
		if a.Key == "messages" {
			msgs = a.Val.(float64)
		}
	}
	if msgs != 42 {
		t.Errorf("messages attr = %v, want 42", msgs)
	}
	if recs[2].Kind != KindSpanEnd || recs[2].Dur <= 0 {
		t.Errorf("span end = %+v", recs[2])
	}
}

func TestRingSinkCapacity(t *testing.T) {
	sink := NewRingSink(2)
	tr := NewTracer(sink)
	for i := 0; i < 4; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(sink.Records()); got != 2 {
		t.Fatalf("ring holds %d records, want 2", got)
	}
	if sink.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", sink.Dropped())
	}
}

func TestCanonExcludesTime(t *testing.T) {
	run := func() string {
		sink := NewRingSink(0)
		tr := NewTracer(sink)
		s := tr.StartSpan("extract", Int("n", 3))
		s.Event("guard.adjust", Str("kind", "scope"), Int("to", 2))
		s.End(Int("sites", 5))
		return sink.Canon()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("canonical traces differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "guard.adjust") || !strings.Contains(a, "kind=scope") {
		t.Errorf("canonical form lost content:\n%s", a)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Counter("a_total").Inc()
	r.Gauge("g").Set(2.5)
	h := r.Histogram(Label("d_seconds", "stage", "identify"), []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	s := r.Snapshot()
	if s.Counters["a_total"] != 4 {
		t.Errorf("counter = %d, want 4", s.Counters["a_total"])
	}
	if s.Gauges["g"] != 2.5 {
		t.Errorf("gauge = %g, want 2.5", s.Gauges["g"])
	}
	hs := s.Histograms[`d_seconds{stage="identify"}`]
	if hs.Count != 3 || hs.Sum != 100.55 {
		t.Errorf("histogram count=%d sum=%g, want 3/100.55", hs.Count, hs.Sum)
	}
	// Cumulative buckets: <=0.1 holds 1, <=1 holds 2, <=10 holds 2.
	want := []int64{1, 2, 2}
	for i, bc := range hs.Buckets {
		if bc.Count != want[i] {
			t.Errorf("bucket le=%g count=%d, want %d", bc.LE, bc.Count, want[i])
		}
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", DurationBuckets).Observe(1)
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry exposition: %v", err)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("bfskel_sim_messages_total").Add(12)
	r.Gauge("bfskel_sites").Set(31)
	r.Histogram(Label("bfskel_stage_seconds", "stage", "voronoi"), []float64{0.1, 1}).Observe(0.2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE bfskel_sim_messages_total counter",
		"bfskel_sim_messages_total 12",
		"# TYPE bfskel_sites gauge",
		"bfskel_sites 31",
		"# TYPE bfskel_stage_seconds histogram",
		`bfskel_stage_seconds_bucket{stage="voronoi",le="0.1"} 0`,
		`bfskel_stage_seconds_bucket{stage="voronoi",le="1"} 1`,
		`bfskel_stage_seconds_bucket{stage="voronoi",le="+Inf"} 1`,
		`bfskel_stage_seconds_sum{stage="voronoi"} 0.2`,
		`bfskel_stage_seconds_count{stage="voronoi"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
