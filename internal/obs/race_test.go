package obs

import (
	"sync"
	"testing"
)

// These tests exist for the race detector (the CI race job runs them with
// -race): they hammer the two concurrency-critical paths of the live
// observability plane — StreamSink fan-out with subscriptions churning
// under emits, and the lock-free Histogram.Observe against Snapshot — and
// assert the cheap invariants that survive interleaving.

func TestStreamSinkSubscribeRacesEmit(t *testing.T) {
	s := NewStreamSink()
	const (
		emitters  = 4
		churners  = 4
		perWorker = 500
	)
	var wg sync.WaitGroup
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Emit(Record{
					Kind:  KindEvent,
					Name:  "race-test",
					Attrs: []Attr{{Key: "i", Val: int64(i)}},
				})
			}
		}()
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sub := s.Subscribe(4)
				// Drain whatever arrived while subscribed, then cancel —
				// including a second Cancel to exercise the once path.
				for len(sub.C) > 0 {
					<-sub.C
				}
				sub.Cancel()
				sub.Cancel()
				_ = sub.Dropped()
			}
		}()
	}
	wg.Wait()
	if n := s.Subscribers(); n != 0 {
		t.Fatalf("subscribers after all cancelled = %d, want 0", n)
	}
	// The sink must still deliver once the churn is over.
	sub := s.Subscribe(1)
	defer sub.Cancel()
	s.Emit(Record{Kind: KindEvent, Name: "after"})
	r := <-sub.C
	if r.Name != "after" {
		t.Fatalf("post-churn record = %q, want %q", r.Name, "after")
	}
}

// TestStreamSinkCancelledSubscriberDoesNotReceive pins the Cancel contract
// under concurrency: after Cancel returns, C is closed, so a racing Emit
// must never deliver on it (a send on the closed channel would panic).
func TestStreamSinkCancelledSubscriberDoesNotReceive(t *testing.T) {
	s := NewStreamSink()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Emit(Record{Kind: KindEvent, Name: "spin"})
			}
		}
	}()
	for i := 0; i < 200; i++ {
		sub := s.Subscribe(1)
		sub.Cancel()
		// Receiving from the closed channel must yield only buffered
		// records, then the zero Record.
		for r := range sub.C {
			if r.Name != "spin" {
				t.Fatalf("unexpected record %q", r.Name)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramObserveRacesSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("race_seconds", DurationBuckets)
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%7) * 0.001)
			}
		}(w)
	}
	// Snapshot concurrently with the observers; each snapshot must be
	// internally sane even when torn across buckets.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := reg.Snapshot()
			hs, ok := s.Histograms["race_seconds"]
			if !ok {
				t.Error("histogram missing from snapshot")
				return
			}
			if hs.Count < 0 {
				t.Errorf("negative count %d", hs.Count)
				return
			}
			var prev int64
			for _, b := range hs.Buckets {
				if b.Count < prev {
					t.Errorf("cumulative bucket counts decreased: %d after %d", b.Count, prev)
					return
				}
				prev = b.Count
			}
		}
	}()
	wg.Wait()
	<-done

	final := reg.Snapshot().Histograms["race_seconds"]
	if want := int64(workers * perW); final.Count != want {
		t.Fatalf("final count = %d, want %d", final.Count, want)
	}
	last := final.Buckets[len(final.Buckets)-1]
	if last.Count != final.Count {
		t.Fatalf("largest bucket holds %d of %d observations", last.Count, final.Count)
	}
}
