package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// RunRecord is one completed top-level traced operation — an "extract" run
// of any skeleton backend, a "protocol" run of the four distributed phases —
// as retained by the flight Recorder. It is self-contained and
// JSON-marshalable: the root span's start attributes become Params, its end
// attributes become Result, the run's span tree collapses into a per-run
// span Profile, and (when the recorder sink holds a registry) Metrics is
// the registry snapshot taken at completion.
type RunRecord struct {
	// ID is the recorder-assigned sequence number (1-based, monotonic).
	ID uint64 `json:"id"`
	// Name is the root span name ("extract", "protocol", ...).
	Name string `json:"name"`
	// Backend names the skeleton backend, when the root span declares one
	// ("extract" roots without the attribute are the core engine, i.e.
	// "bfskel").
	Backend string `json:"backend,omitempty"`
	// Digest fingerprints the run's parameters: an FNV-1a hash over the
	// root span name and its sorted start attributes. Two runs with equal
	// digests asked for the same computation.
	Digest string `json:"digest"`
	// Start is the root span's wall-clock start time.
	Start time.Time `json:"start"`
	// WallNS is the root span's duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Params holds the root span's start attributes.
	Params map[string]any `json:"params,omitempty"`
	// Result holds the root span's end attributes.
	Result map[string]any `json:"result,omitempty"`
	// Error is the root span's "error" end attribute, when the run failed.
	Error string `json:"error,omitempty"`
	// Spans and Events count the records observed inside the run.
	Spans  int `json:"spans"`
	Events int `json:"events"`
	// Profile is the run's span-aggregation tree (per-span-name count,
	// total and derived self time).
	Profile *Profile `json:"profile,omitempty"`
	// Metrics is the registry snapshot at run completion, when the
	// recorder sink was built over a registry.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// Summary returns a copy of the record without its heavyweight payloads
// (Profile, Metrics, Result) — the shape run listings serve.
func (r RunRecord) Summary() RunRecord {
	r.Profile, r.Metrics, r.Result = nil, nil, nil
	return r
}

// Recorder is the flight recorder: a bounded, concurrency-safe ring of the
// most recent completed RunRecords. It answers "what did this process just
// do" while the process is still running — the substrate behind the /runs
// and /profile endpoints. A nil *Recorder is a valid disabled recorder.
type Recorder struct {
	mu      sync.Mutex
	cap     int
	runs    []RunRecord // oldest first
	nextID  uint64
	evicted uint64
}

// DefaultRecorderCapacity bounds a Recorder built with capacity <= 0.
const DefaultRecorderCapacity = 256

// NewRecorder creates a flight recorder retaining up to capacity completed
// runs (<= 0 means DefaultRecorderCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{cap: capacity}
}

// Add retains the record, assigning and returning its run ID. The oldest
// record is evicted when the ring is full. Safe for concurrent use.
func (r *Recorder) Add(rec RunRecord) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	rec.ID = r.nextID
	if len(r.runs) == r.cap {
		copy(r.runs, r.runs[1:])
		r.runs[len(r.runs)-1] = rec
		r.evicted++
		return rec.ID
	}
	r.runs = append(r.runs, rec)
	return rec.ID
}

// Runs returns the retained records, newest first. The slice is a copy;
// records share their (immutable once recorded) payload pointers.
func (r *Recorder) Runs() []RunRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RunRecord, len(r.runs))
	for i, rec := range r.runs {
		out[len(out)-1-i] = rec
	}
	return out
}

// Get returns the record with the given run ID, if still retained.
func (r *Recorder) Get(id uint64) (RunRecord, bool) {
	if r == nil {
		return RunRecord{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// IDs are sequential and the ring is contiguous, so the offset is direct.
	if len(r.runs) == 0 {
		return RunRecord{}, false
	}
	first := r.runs[0].ID
	if id < first || id >= first+uint64(len(r.runs)) {
		return RunRecord{}, false
	}
	return r.runs[id-first], true
}

// Len returns how many records are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.runs)
}

// Evicted returns how many records the capacity bound has dropped.
func (r *Recorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// Profile merges the span profiles of every retained run into one
// aggregated tree — the process-lifetime flamegraph view (bounded by the
// ring, so it describes the recent past, not all of history).
func (r *Recorder) Profile() *Profile {
	merged := &Profile{}
	for _, run := range r.Runs() {
		merged.Merge(run.Profile)
	}
	return merged
}

// openRun accumulates one in-flight root span inside a RecorderSink.
type openRun struct {
	root    Record
	pb      *ProfileBuilder
	members []uint64 // every span ID mapped into this run
	spans   int
	events  int
}

// RecorderSink feeds a Recorder from a tracer's record stream: it follows
// the span parent links to group records into runs (one per root span) and,
// when a root span ends, finalizes a RunRecord — params digest, span
// profile, optional metrics snapshot — into the recorder. Interleaved runs
// (batch drivers) are grouped correctly; records outside any run are
// ignored. Emit relies on the tracer's per-emit lock for ordering, so a
// RecorderSink must not be shared between tracers.
type RecorderSink struct {
	rec     *Recorder
	metrics *Registry
	open    map[uint64]*openRun // root span ID -> building run
	spanRun map[uint64]uint64   // span ID -> root span ID
}

// NewRecorderSink builds a sink recording completed runs into rec. When
// metrics is non-nil, every finalized record carries a registry snapshot.
func NewRecorderSink(rec *Recorder, metrics *Registry) *RecorderSink {
	return &RecorderSink{
		rec:     rec,
		metrics: metrics,
		open:    make(map[uint64]*openRun),
		spanRun: make(map[uint64]uint64),
	}
}

// Emit implements Sink.
func (s *RecorderSink) Emit(r Record) {
	switch r.Kind {
	case KindSpanStart:
		if r.Parent == 0 {
			if len(r.Attrs) > 0 {
				r.Attrs = append([]Attr(nil), r.Attrs...)
			}
			run := &openRun{root: r, pb: NewProfileBuilder(), spans: 1}
			run.pb.Add(r)
			run.members = append(run.members, r.ID)
			s.open[r.ID] = run
			s.spanRun[r.ID] = r.ID
			return
		}
		rootID, ok := s.spanRun[r.Parent]
		if !ok {
			return
		}
		run := s.open[rootID]
		s.spanRun[r.ID] = rootID
		run.members = append(run.members, r.ID)
		run.spans++
		run.pb.Add(r)
	case KindSpanEnd:
		rootID, ok := s.spanRun[r.ID]
		if !ok {
			return
		}
		run := s.open[rootID]
		run.pb.Add(r)
		if r.ID != rootID {
			return
		}
		s.finalize(run, r)
		for _, id := range run.members {
			delete(s.spanRun, id)
		}
		delete(s.open, rootID)
	case KindEvent:
		if rootID, ok := s.spanRun[r.Span]; ok {
			s.open[rootID].events++
		}
	}
}

// finalize turns a completed root span into a RunRecord.
func (s *RecorderSink) finalize(run *openRun, end Record) {
	rec := RunRecord{
		Name:    run.root.Name,
		Start:   run.root.Time,
		WallNS:  end.Dur.Nanoseconds(),
		Params:  attrsToMap(run.root.Attrs),
		Result:  attrsToMap(end.Attrs),
		Spans:   run.spans,
		Events:  run.events,
		Profile: run.pb.Profile(),
	}
	rec.Digest = paramsDigest(run.root.Name, run.root.Attrs)
	if b, ok := rec.Params["backend"].(string); ok {
		rec.Backend = b
	} else if run.root.Name == "extract" {
		rec.Backend = "bfskel"
	}
	if e, ok := rec.Result["error"].(string); ok {
		rec.Error = e
	}
	if s.metrics != nil {
		snap := s.metrics.Snapshot()
		rec.Metrics = &snap
	}
	s.rec.Add(rec)
}

// attrsToMap copies attributes into a JSON-friendly map.
func attrsToMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// paramsDigest fingerprints a run's identity: root span name plus its
// sorted start attributes, FNV-1a hashed and hex-rendered.
func paramsDigest(name string, attrs []Attr) string {
	keys := make([]string, 0, len(attrs))
	byKey := make(map[string]any, len(attrs))
	for _, a := range attrs {
		keys = append(keys, a.Key)
		byKey[a.Key] = a.Val
	}
	sort.Strings(keys)
	h := fnv.New64a()
	fmt.Fprintf(h, "%s", name)
	for _, k := range keys {
		fmt.Fprintf(h, "|%s=%v", k, byKey[k])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
