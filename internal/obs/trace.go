// Package obs is the observability layer of the repository: a
// dependency-light structured tracer (spans and events over pluggable
// sinks) plus a metrics registry with snapshot and Prometheus-text
// exposition. Both substrates of the pipeline — the staged extraction
// engine in package core and the message-passing simulator in package
// simnet — emit into it, so one trace of a full distributed run yields a
// phase → round → node breakdown of where time, messages and BFS work go.
//
// Everything is nil-safe: a nil *Tracer produces nil *Spans whose methods
// no-op, and a nil *Registry hands out nil instruments whose methods no-op.
// Disabled observability therefore costs a handful of nil checks, which
// keeps the instrumented hot paths within noise of the uninstrumented ones.
//
// Determinism contract: span IDs are assigned sequentially per Tracer and
// every record field except the wall-clock ones (Time, Dur) is a pure
// function of the computation. Two runs over the same inputs emit identical
// record sequences up to timestamps — see Record.Canon and the trace
// determinism test.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// RecordKind discriminates the three record types a Tracer emits.
type RecordKind uint8

// Record kinds.
const (
	// KindSpanStart opens a span: ID, Parent, Name and Attrs are set.
	KindSpanStart RecordKind = iota + 1
	// KindSpanEnd closes a span: ID, Name, Dur and (optional) Attrs are set.
	KindSpanEnd
	// KindEvent is a point annotation inside a span: Span, Name, Attrs.
	KindEvent
)

// String names the kind as it appears in the JSONL encoding.
func (k RecordKind) String() string {
	switch k {
	case KindSpanStart:
		return "span"
	case KindSpanEnd:
		return "end"
	case KindEvent:
		return "event"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Attr is one key/value annotation. Attrs keep their declaration order in
// memory (and in Canon) so traces stay deterministic; only the JSON
// encoding sorts keys (a property of encoding/json maps).
type Attr struct {
	Key string
	Val any
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Val: v} }

// Int64 builds a 64-bit integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Val: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Val: v} }

// F64 builds a float attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, Val: v} }

// Any builds an attribute holding an arbitrary JSON-marshalable value
// (e.g. a per-node counter slice).
func Any(key string, v any) Attr { return Attr{Key: key, Val: v} }

// Record is one emitted trace record. Time and Dur are the only
// non-deterministic fields.
type Record struct {
	Kind   RecordKind
	ID     uint64 // span ID (span start/end)
	Parent uint64 // parent span ID (span start; 0 = root)
	Span   uint64 // enclosing span ID (events)
	Name   string
	Time   time.Time
	Dur    time.Duration // span end only
	Attrs  []Attr
}

// Canon renders the record without its wall-clock fields, in attribute
// declaration order. Two runs of a deterministic computation produce equal
// Canon sequences; the trace determinism test compares exactly this.
func (r Record) Canon() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s id=%d parent=%d span=%d name=%s", r.Kind, r.ID, r.Parent, r.Span, r.Name)
	for _, a := range r.Attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Val)
	}
	return b.String()
}

// Sink receives records as the tracer emits them. Emit is called under the
// tracer's lock, so a Sink needs no synchronisation of its own; it must not
// retain the Attrs slice beyond the call unless it copies.
type Sink interface {
	Emit(r Record)
}

// Tracer emits structured spans and events to a sink. All methods are safe
// for concurrent use; a nil *Tracer is a valid disabled tracer.
type Tracer struct {
	mu     sync.Mutex
	sink   Sink
	nextID uint64
}

// NewTracer creates a tracer writing to sink.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink}
}

// Enabled reports whether the tracer actually records.
func (t *Tracer) Enabled() bool { return t != nil }

// StartSpan opens a root span. On a nil tracer it returns a nil span whose
// methods no-op.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	return t.startSpan(0, name, attrs)
}

func (t *Tracer) startSpan(parent uint64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	now := time.Now() //lint:allow determinism Record.Time is wall-clock by contract; Canon strips it
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.sink.Emit(Record{Kind: KindSpanStart, ID: id, Parent: parent, Name: name, Time: now, Attrs: attrs})
	t.mu.Unlock()
	return &Span{t: t, id: id, name: name, start: now}
}

func (t *Tracer) emit(r Record) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink.Emit(r)
	t.mu.Unlock()
}

// Span is one open span. A nil *Span is valid and inert, so callers never
// need to guard instrumentation sites.
type Span struct {
	t     *Tracer
	id    uint64
	name  string
	start time.Time
}

// StartSpan opens a child span.
func (s *Span) StartSpan(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(s.id, name, attrs)
}

// Event records a point annotation inside the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	//lint:allow determinism Record.Time is wall-clock by contract; Canon strips it
	s.t.emit(Record{Kind: KindEvent, Span: s.id, Name: name, Time: time.Now(), Attrs: attrs})
}

// End closes the span, recording its duration and any final attributes.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now() //lint:allow determinism Record.Time/Dur are wall-clock by contract; Canon strips them
	s.t.emit(Record{Kind: KindSpanEnd, ID: s.id, Name: s.name, Time: now, Dur: now.Sub(s.start), Attrs: attrs})
}

// RingSink keeps the last N records in memory — the test and debugging
// sink. It copies attribute slices, so records stay valid after Emit
// returns.
type RingSink struct {
	cap     int
	records []Record
	dropped int
}

// NewRingSink creates a ring sink holding up to capacity records
// (capacity <= 0 means unbounded).
func NewRingSink(capacity int) *RingSink {
	return &RingSink{cap: capacity}
}

// Emit implements Sink.
func (r *RingSink) Emit(rec Record) {
	if len(rec.Attrs) > 0 {
		rec.Attrs = append([]Attr(nil), rec.Attrs...)
	}
	if r.cap > 0 && len(r.records) == r.cap {
		copy(r.records, r.records[1:])
		r.records[len(r.records)-1] = rec
		r.dropped++
		return
	}
	r.records = append(r.records, rec)
}

// Records returns the retained records, oldest first. The slice is owned by
// the sink; callers must not mutate it while tracing continues.
func (r *RingSink) Records() []Record { return r.records }

// Dropped returns how many records were evicted by the capacity bound.
func (r *RingSink) Dropped() int { return r.dropped }

// Canon renders every retained record's canonical (timestamp-free) form,
// one per line — the comparable form for determinism tests.
func (r *RingSink) Canon() string {
	var b strings.Builder
	for _, rec := range r.records {
		b.WriteString(rec.Canon())
		b.WriteByte('\n')
	}
	return b.String()
}

// jsonRecord is the JSONL wire form of a Record.
type jsonRecord struct {
	Kind   string         `json:"kind"`
	ID     uint64         `json:"id,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Span   uint64         `json:"span,omitempty"`
	Name   string         `json:"name"`
	TS     int64          `json:"ts_us"`
	DurNS  int64          `json:"dur_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// JSONLSink streams records as one JSON object per line. Writes are
// buffered; call Flush (or Close) before reading the output. The first
// write error is retained and reported by Err/Close, so emit sites stay
// error-free.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer // underlying closer, if any
	err error
}

// NewJSONLSink creates a JSONL sink over w. If w is an io.Closer, Close
// closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit implements Sink. A nil *JSONLSink is inert, so an optional trace
// file can be wired unconditionally into a fan-out.
func (s *JSONLSink) Emit(rec Record) {
	if s == nil || s.err != nil {
		return
	}
	data, err := EncodeJSONL(rec)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		s.err = err
	}
}

// EncodeJSONL renders one record in the JSONL wire encoding (without the
// trailing newline) — the inverse of ParseJSONL. The live /trace endpoint
// and the JSONLSink share this encoding, so a streamed trace and a -trace
// file are interchangeable inputs to cmd/skeltrace.
func EncodeJSONL(rec Record) ([]byte, error) {
	out := jsonRecord{
		Kind:   rec.Kind.String(),
		ID:     rec.ID,
		Parent: rec.Parent,
		Span:   rec.Span,
		Name:   rec.Name,
		TS:     rec.Time.UnixMicro(),
		DurNS:  rec.Dur.Nanoseconds(),
	}
	if len(rec.Attrs) > 0 {
		out.Attrs = make(map[string]any, len(rec.Attrs))
		for _, a := range rec.Attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	return json.Marshal(out)
}

// Flush drains the write buffer.
func (s *JSONLSink) Flush() error {
	if s == nil {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first write or encoding error, if any.
func (s *JSONLSink) Err() error {
	if s == nil {
		return nil
	}
	return s.err
}

// Close flushes and closes the underlying writer (when closable).
func (s *JSONLSink) Close() error {
	if s == nil {
		return nil
	}
	flushErr := s.Flush()
	if s.c != nil {
		if err := s.c.Close(); flushErr == nil {
			flushErr = err
		}
	}
	return flushErr
}

// MultiSink fans records out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(rec Record) {
	for _, s := range m {
		s.Emit(rec)
	}
}

// ParseJSONL decodes one line of the JSONL encoding back into a Record.
// Attribute order is not preserved (JSON objects are unordered); keys come
// back sorted. Numeric attribute values decode as float64, per
// encoding/json.
func ParseJSONL(line []byte) (Record, error) {
	var in jsonRecord
	if err := json.Unmarshal(line, &in); err != nil {
		return Record{}, err
	}
	rec := Record{
		ID:     in.ID,
		Parent: in.Parent,
		Span:   in.Span,
		Name:   in.Name,
		Time:   time.UnixMicro(in.TS),
		Dur:    time.Duration(in.DurNS),
	}
	switch in.Kind {
	case "span":
		rec.Kind = KindSpanStart
	case "end":
		rec.Kind = KindSpanEnd
	case "event":
		rec.Kind = KindEvent
	default:
		return Record{}, fmt.Errorf("obs: unknown record kind %q", in.Kind)
	}
	if len(in.Attrs) > 0 {
		keys := make([]string, 0, len(in.Attrs))
		for k := range in.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rec.Attrs = make([]Attr, 0, len(keys))
		for _, k := range keys {
			rec.Attrs = append(rec.Attrs, Attr{Key: k, Val: in.Attrs[k]})
		}
	}
	return rec, nil
}
