package obs

import (
	"sync"
	"sync/atomic"
)

// StreamSink fans a tracer's record stream out to live subscribers — the
// substrate behind the /trace endpoint. Emit never blocks: each subscriber
// has a bounded buffer and records that do not fit are dropped (and
// counted), so a slow or stalled consumer cannot back-pressure the traced
// hot path. With no subscribers, Emit is two atomic loads and returns
// without copying anything.
type StreamSink struct {
	subs atomic.Int64 // live subscriber count, checked before taking mu
	mu   sync.Mutex
	byID map[uint64]*Subscription
	next uint64
}

// NewStreamSink creates a fan-out sink with no subscribers.
func NewStreamSink() *StreamSink {
	return &StreamSink{byID: make(map[uint64]*Subscription)}
}

// Emit implements Sink.
func (s *StreamSink) Emit(r Record) {
	if s.subs.Load() == 0 {
		return
	}
	// One shared copy of the attrs for all subscribers; the emitting caller
	// owns the original slice and subscribers must treat records as
	// read-only.
	if len(r.Attrs) > 0 {
		r.Attrs = append([]Attr(nil), r.Attrs...)
	}
	s.mu.Lock()
	for _, sub := range s.byID {
		select {
		case sub.ch <- r:
		default:
			sub.dropped.Add(1)
		}
	}
	s.mu.Unlock()
}

// Subscribe registers a new live consumer with the given channel buffer
// (<= 0 means 1024 records). Cancel the subscription when done; records
// emitted while the buffer is full are dropped for that subscriber only.
func (s *StreamSink) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 1024
	}
	sub := &Subscription{s: s, ch: make(chan Record, buf)}
	sub.C = sub.ch
	s.mu.Lock()
	s.next++
	sub.id = s.next
	s.byID[sub.id] = sub
	s.mu.Unlock()
	s.subs.Add(1)
	return sub
}

// Subscribers returns the number of live subscriptions.
func (s *StreamSink) Subscribers() int { return int(s.subs.Load()) }

// Subscription is one live tap on a StreamSink.
type Subscription struct {
	// C delivers the records. It is closed by Cancel, after which no more
	// records arrive.
	C  <-chan Record
	s  *StreamSink
	id uint64

	ch      chan Record
	dropped atomic.Int64
	once    sync.Once
}

// Cancel removes the subscription and closes C. Safe to call more than
// once.
func (sub *Subscription) Cancel() {
	sub.once.Do(func() {
		sub.s.mu.Lock()
		delete(sub.s.byID, sub.id)
		sub.s.mu.Unlock()
		sub.s.subs.Add(-1)
		close(sub.ch)
	})
}

// Dropped returns how many records this subscriber missed because its
// buffer was full.
func (sub *Subscription) Dropped() int64 { return sub.dropped.Load() }
