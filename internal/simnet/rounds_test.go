package simnet_test

import (
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/obs"
	"bfskel/internal/simnet"
)

// star builds a hub-and-spokes graph: node 0 adjacent to all others.
func star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	g.SortAdjacency()
	return g
}

// TestPerRoundAccounting pins the per-round counters: with RecordRounds and
// RecordPerNode set, the per-round message counts sum exactly to
// Stats.Messages, the per-node send counters do too, the per-node receive
// counters sum to the per-round deliveries, and a round event fires per
// recorded round.
func TestPerRoundAccounting(t *testing.T) {
	const n = 12
	g := line(n)
	nodes := make([]*relay, n)
	programs := make([]simnet.Program, n)
	for i := range nodes {
		nodes[i] = &relay{start: i == 0}
		programs[i] = nodes[i]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(0)
	span := obs.NewTracer(ring).StartSpan("sim")
	sim.RecordRounds, sim.RecordPerNode, sim.Span = true, true, span
	stats, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	span.End()

	if len(stats.PerRound) != stats.Rounds+1 {
		t.Fatalf("PerRound has %d entries, want rounds+1 = %d", len(stats.PerRound), stats.Rounds+1)
	}
	msgs, deliveries := 0, 0
	for i, r := range stats.PerRound {
		if r.Round != i {
			t.Errorf("PerRound[%d].Round = %d", i, r.Round)
		}
		msgs += r.Messages
		deliveries += r.Deliveries
	}
	if msgs != stats.Messages {
		t.Errorf("per-round messages sum to %d, Stats.Messages = %d", msgs, stats.Messages)
	}
	sent, recv := 0, 0
	for _, s := range stats.NodeSent {
		sent += s
	}
	for _, r := range stats.NodeRecv {
		recv += r
	}
	if sent != stats.Messages {
		t.Errorf("NodeSent sums to %d, Stats.Messages = %d", sent, stats.Messages)
	}
	if recv != deliveries {
		t.Errorf("NodeRecv sums to %d, per-round deliveries = %d", recv, deliveries)
	}

	events := 0
	for _, rec := range ring.Records() {
		if rec.Kind == obs.KindEvent && rec.Name == "round" {
			events++
		}
	}
	if events != len(stats.PerRound) {
		t.Errorf("%d round events for %d recorded rounds", events, len(stats.PerRound))
	}
}

// TestBroadcastCountsOneTransmission pins the paper's message accounting: a
// wireless broadcast is one transmission regardless of how many neighbors
// hear it, i.e. one per active node per round.
func TestBroadcastCountsOneTransmission(t *testing.T) {
	const n = 6
	g := star(n)
	nodes := make([]*echoOnce, n)
	programs := make([]simnet.Program, n)
	for i := range nodes {
		nodes[i] = &echoOnce{}
		programs[i] = nodes[i]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		t.Fatal(err)
	}
	sim.RecordRounds, sim.RecordPerNode = true, true
	stats, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every node broadcast exactly once (at Init): n transmissions total,
	// even though the hub alone reaches n-1 listeners.
	if stats.Messages != n {
		t.Fatalf("Messages = %d, want %d (one per broadcasting node)", stats.Messages, n)
	}
	if stats.PerRound[0].Messages != n {
		t.Errorf("round 0 messages = %d, want %d", stats.PerRound[0].Messages, n)
	}
	for v, s := range stats.NodeSent {
		if s != 1 {
			t.Errorf("NodeSent[%d] = %d, want 1", v, s)
		}
	}
	// The hub hears every spoke; each spoke hears only the hub.
	if stats.NodeRecv[0] != n-1 {
		t.Errorf("hub received %d, want %d", stats.NodeRecv[0], n-1)
	}
	for v := 1; v < n; v++ {
		if stats.NodeRecv[v] != 1 {
			t.Errorf("spoke %d received %d, want 1", v, stats.NodeRecv[v])
		}
	}
}
