// The parallel round engine: an allocation-free rewrite of the serial
// reference loop. Three ideas, in the order they appear below:
//
//   - Arena mailboxes. Instead of one heap slice per inbox, all inboxes of
//     a round live in one flat []Envelope arena laid out with CSR degree
//     offsets (a synchronous round delivers at most degree envelopes per
//     node). Two arenas alternate — round r is read from one while round
//     r+1's deliveries are written into the other.
//   - A jitter wheel. With Jitter > 0 a round can deliver more than degree
//     envelopes per node, so deliveries are staged into Jitter+1
//     round-indexed buffers and compacted into a per-round arena when their
//     round comes up. The wheel replaces the pending map[int][]delivery.
//   - Deterministic chunked stepping. Touched nodes (ascending IDs) are
//     split into contiguous chunks, one goroutine per chunk; each chunk
//     appends its sends to a private queue. Queues are merged in chunk
//     order — i.e. ascending sender ID, FIFO per sender — which is exactly
//     the enqueue order of the serial engine, so inbox order, jitter draws,
//     and every counter are bit-identical to the reference.
//
// Packed payloads ride per-worker word buffers that are round-ring-buffered
// (a word written at send round r is readable until round r+1+Jitter, so a
// ring of Jitter+2 buffers recycles them without copies or GC traffic).
package simnet

import (
	"runtime"
	"slices"
	"sync"

	"bfskel/internal/graph"
)

// sendOp is one queued transmission: a unicast (to >= 0) or a broadcast
// (to == -1), carrying either a generic payload or a packed window into the
// worker's word buffer.
type sendOp struct {
	from   int32
	to     int32
	kind   uint8
	packed bool
	woff   int32
	wlen   int32
	gen    any
}

// parWorker is the per-chunk send queue. Exactly one stepping goroutine
// owns a worker at a time; the merge phase (single-goroutine) drains all of
// them after the chunks join.
type parWorker struct {
	ops  []sendOp
	msgs int
	// words is the current round's packed-word buffer, one slot of ring.
	words []uint64
	ring  [][]uint64
}

func (w *parWorker) push(op sendOp) {
	w.ops = append(w.ops, op)
	w.msgs++
}

func (w *parWorker) pushPacked(from, to int32, kind uint8, words []uint64) {
	off := int32(len(w.words))
	w.words = append(w.words, words...)
	w.ops = append(w.ops, sendOp{
		from: from, to: to, kind: kind, packed: true,
		woff: off, wlen: int32(len(words)),
	})
	w.msgs++
}

// parEngine holds the run-scoped state of the parallel engine.
type parEngine struct {
	s  *Sim
	nw int // worker/chunk budget (GOMAXPROCS at engine build)

	workers []parWorker

	// Synchronous mode (Jitter == 0): double-buffered degree-offset arenas.
	off         []int32 // inbox window of node v: [off[v], off[v+1])
	offBuf      []int32 // owned prefix-sum buffer for unfrozen graphs
	arena       [2][]Envelope
	fill        [2][]int32
	cur         int     // arena read this round; cur^1 collects next round
	touched     []int32 // receivers stepping this round, ascending
	touchedNext []int32 // receivers of the round being collected, unsorted
	// overflow holds deliveries beyond a window's degree capacity (only
	// possible for programs that unicast the same neighbor repeatedly in
	// one round); it is rare enough to pay an allocation when it happens.
	overflow     []delivery
	overflowNext []delivery
	extras       map[int32][]Envelope

	// Jittered mode: round-indexed staging wheel plus a compacted per-round
	// arena (windows sized by actual arrivals, not degree).
	wheel  [][]delivery
	jarena []Envelope
	cnt    []int32 // arrivals per node this round
	pos    []int32 // scatter cursor; ends at each window's upper bound
}

// parEnginePool recycles engine state — mailbox arenas, wheels, worker
// queues and their word rings — across runs. The protocol's four phases
// each build a fresh Sim over the same graph; without recycling, every
// phase would reallocate and re-zero megabytes of arena.
var parEnginePool sync.Pool

// getParEngine takes a pooled engine (or builds one) and fits it to the
// simulation. Release with putParEngine, typically deferred.
func getParEngine(s *Sim) *parEngine {
	e, _ := parEnginePool.Get().(*parEngine)
	if e == nil {
		e = &parEngine{}
	}
	e.fit(s)
	return e
}

// putParEngine scrubs the payload-bearing buffers (so pooled scratch never
// pins a previous run's Sim, programs or generic payloads) and returns the
// engine to the pool.
func putParEngine(e *parEngine) {
	e.s = nil
	e.off = nil
	clear(e.arena[0])
	clear(e.arena[1])
	clear(e.jarena[:cap(e.jarena)])
	for i := range e.wheel {
		clear(e.wheel[i][:cap(e.wheel[i])])
		e.wheel[i] = e.wheel[i][:0]
	}
	clear(e.overflow[:cap(e.overflow)])
	clear(e.overflowNext[:cap(e.overflowNext)])
	e.extras = nil
	for i := range e.workers {
		w := &e.workers[i]
		clear(w.ops[:cap(w.ops)])
		w.ops, w.msgs, w.words = w.ops[:0], 0, nil
	}
	parEnginePool.Put(e)
}

// fitInt32 resizes s to length n, zeroing the reused prefix when asked.
func fitInt32(s []int32, n int, zero bool) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	if zero {
		clear(s)
	}
	return s
}

// fit sizes the engine for one run of s. Buffers are reused at their grown
// capacity; everything state-like is reset.
func (e *parEngine) fit(s *Sim) {
	n := s.g.N()
	e.s = s
	e.nw = runtime.GOMAXPROCS(0)
	if e.nw < 1 {
		e.nw = 1
	}
	if len(e.workers) < e.nw {
		e.workers = append(e.workers, make([]parWorker, e.nw-len(e.workers))...)
	}
	e.workers = e.workers[:e.nw]
	ringLen := 2
	if s.Jitter > 0 {
		ringLen = s.Jitter + 2
	}
	for i := range e.workers {
		w := &e.workers[i]
		for len(w.ring) < ringLen {
			w.ring = append(w.ring, nil)
		}
		w.ring = w.ring[:ringLen]
	}
	e.cur = 0
	e.touched, e.touchedNext = e.touched[:0], e.touchedNext[:0]
	e.overflow, e.overflowNext = e.overflow[:0], e.overflowNext[:0]
	e.extras = nil
	if s.Jitter > 0 {
		for len(e.wheel) < s.Jitter+1 {
			e.wheel = append(e.wheel, nil)
		}
		e.wheel = e.wheel[:s.Jitter+1]
		for i := range e.wheel {
			e.wheel[i] = e.wheel[i][:0]
		}
		e.cnt = fitInt32(e.cnt, n, true)
		e.pos = fitInt32(e.pos, n, false)
		return
	}
	if off, ok := s.g.Offsets(); ok {
		e.off = off
	} else {
		e.offBuf = fitInt32(e.offBuf, n+1, false)
		total := int32(0)
		for v := 0; v < n; v++ {
			e.offBuf[v] = total
			total += int32(s.g.Degree(v))
		}
		e.offBuf[n] = total
		e.off = e.offBuf
	}
	total := int(e.off[n])
	for i := range e.arena {
		if cap(e.arena[i]) < total {
			e.arena[i] = make([]Envelope, total)
		} else {
			e.arena[i] = e.arena[i][:total]
		}
	}
	e.fill[0] = fitInt32(e.fill[0], n, true)
	e.fill[1] = fitInt32(e.fill[1], n, true)
}

// runParallel executes the same round loop as runSerial on the arena
// engine. The observable sequence — message counts per round, deliveries,
// touched sets, inbox order, jitter draws — is identical by construction.
func (s *Sim) runParallel(limit int) (Stats, error) {
	e := getParEngine(s)
	defer putParEngine(e)
	record := s.RecordRounds || s.Span != nil
	e.bindWords()
	e.runChunks(len(s.programs), func(ctx *Context, v int) {
		ctx.node = v
		s.programs[v].Init(ctx)
	})
	msgs := e.merge()
	if record {
		s.noteRound(0, msgs, 0, len(s.programs))
	}
	for {
		if s.inFlight == 0 {
			s.stats.Rounds = s.round
			return s.stats, nil
		}
		s.round++
		if s.round > limit {
			return s.stats, ErrRoundLimit
		}
		var deliveries int
		if s.Jitter > 0 {
			deliveries = e.distributeJittered()
		} else {
			deliveries = e.swapSync()
		}
		s.inFlight -= deliveries
		e.bindWords()
		touched := e.touched
		jittered := s.Jitter > 0
		e.runChunks(len(touched), func(ctx *Context, i int) {
			v := int(touched[i])
			ctx.node = v
			s.programs[v].Step(ctx, e.inbox(v, jittered))
			if jittered {
				e.cnt[v] = 0
			} else {
				e.fill[e.cur][v] = 0
			}
		})
		msgs = e.merge()
		if record {
			s.noteRound(s.round, msgs, deliveries, len(touched))
		}
	}
}

// bindWords points every worker's packed-word buffer at this round's ring
// slot. A slot is reused after ring-length rounds, which is past the last
// round any envelope referencing it can be delivered (Jitter+1 later), so
// the recycle never clobbers live payload words.
func (e *parEngine) bindWords() {
	slot := e.s.round % len(e.workers[0].ring)
	for i := range e.workers {
		w := &e.workers[i]
		w.words = w.ring[slot][:0]
	}
}

// runChunks steps indices 0..count-1 across contiguous chunks, handing each
// chunk one reusable Context wired to its send queue (one Context per chunk
// rather than per step: the pointer escapes into the Program interface
// call, so a fresh Context per node would be a heap allocation per step).
// With one chunk everything runs inline.
func (e *parEngine) runChunks(count int, fn func(ctx *Context, i int)) {
	graph.ParallelChunks(count, e.nw, func(ci, lo, hi int) {
		ctx := Context{sim: e.s, w: &e.workers[ci]}
		for i := lo; i < hi; i++ {
			fn(&ctx, i)
		}
	})
}

// inbox returns node v's inbox view for this round. The view aliases the
// arena (capacity-capped); the rare sync-mode overflow path concatenates
// the window with the spilled tail.
func (e *parEngine) inbox(v int, jittered bool) []Envelope {
	if jittered {
		end := e.pos[v]
		start := end - e.cnt[v]
		return e.jarena[start:end:end]
	}
	lo := int(e.off[v])
	hi := lo + int(e.fill[e.cur][v])
	window := e.arena[e.cur][lo:hi:hi]
	if e.extras != nil {
		if ex := e.extras[int32(v)]; len(ex) > 0 {
			merged := make([]Envelope, 0, len(window)+len(ex))
			return append(append(merged, window...), ex...)
		}
	}
	return window
}

// merge drains the per-worker send queues in chunk order — ascending sender
// ID, FIFO per sender, matching the serial engine's enqueue order exactly —
// and routes every transmission into next-round mailboxes (or the jitter
// wheel). It runs on the driving goroutine, so the shared counters and the
// jitter RNG need no synchronisation.
func (e *parEngine) merge() (roundMsgs int) {
	s := e.s
	for wi := range e.workers {
		w := &e.workers[wi]
		for _, op := range w.ops {
			env := Envelope{From: int(op.from)}
			if op.packed {
				env.packed, env.kind = true, op.kind
				env.words = w.words[op.woff : op.woff+op.wlen : op.woff+op.wlen]
			} else {
				env.Payload = op.gen
			}
			if op.to < 0 {
				for _, nb := range s.g.Neighbors(int(op.from)) {
					e.enqueue(int(nb), env)
				}
			} else {
				e.enqueue(int(op.to), env)
			}
		}
		roundMsgs += w.msgs
		s.stats.Messages += w.msgs
		w.ring[s.round%len(w.ring)] = w.words // keep the grown buffer
		w.ops, w.msgs = w.ops[:0], 0
	}
	return roundMsgs
}

// enqueue routes one envelope to its destination mailbox: the next-round
// arena window in synchronous mode, the staging wheel under jitter. The
// jitter draw happens here, in merged deterministic order, so jittered runs
// are bit-identical across engines and worker counts.
func (e *parEngine) enqueue(to int, env Envelope) {
	s := e.s
	s.inFlight++
	if s.Jitter > 0 {
		arrival := s.round + 1 + s.ensureRNG().Intn(s.Jitter+1)
		slot := arrival % len(e.wheel)
		e.wheel[slot] = append(e.wheel[slot], delivery{to: to, env: env})
		return
	}
	nxt := e.cur ^ 1
	f := e.fill[nxt][to]
	at := int(e.off[to]) + int(f)
	if at < int(e.off[to+1]) {
		if f == 0 {
			e.touchedNext = append(e.touchedNext, int32(to))
		}
		e.arena[nxt][at] = env
		e.fill[nxt][to] = f + 1
		return
	}
	e.overflowNext = append(e.overflowNext, delivery{to: to, env: env})
}

// swapSync flips the double-buffered arenas at the top of a synchronous
// round: the mailboxes collected last round become current, the touched
// list is sorted into step order, and receive counters are stamped now —
// at delivery, not enqueue.
func (e *parEngine) swapSync() (deliveries int) {
	s := e.s
	e.cur ^= 1
	e.touched, e.touchedNext = e.touchedNext, e.touched[:0]
	e.overflow, e.overflowNext = e.overflowNext, e.overflow[:0]
	slices.Sort(e.touched)
	fill := e.fill[e.cur]
	for _, v := range e.touched {
		deliveries += int(fill[v])
	}
	deliveries += len(e.overflow)
	if s.stats.NodeRecv != nil {
		for _, v := range e.touched {
			s.stats.NodeRecv[v] += int(fill[v])
		}
		for _, d := range e.overflow {
			s.stats.NodeRecv[d.to]++
		}
	}
	e.extras = nil
	if len(e.overflow) > 0 {
		e.extras = make(map[int32][]Envelope, len(e.overflow))
		for _, d := range e.overflow {
			e.extras[int32(d.to)] = append(e.extras[int32(d.to)], d.env)
		}
	}
	return deliveries
}

// distributeJittered compacts this round's wheel slot into per-node
// windows: count arrivals per node, lay the windows out back to back in
// slot order, then scatter. Window order equals staging order, which equals
// the serial engine's pending-slice order.
func (e *parEngine) distributeJittered() (deliveries int) {
	s := e.s
	idx := s.round % len(e.wheel)
	slot := e.wheel[idx]
	e.touched = e.touched[:0]
	for i := range slot {
		to := slot[i].to
		if e.cnt[to] == 0 {
			e.touched = append(e.touched, int32(to))
		}
		e.cnt[to]++
	}
	slices.Sort(e.touched)
	total := int32(0)
	for _, v := range e.touched {
		e.pos[v] = total
		total += e.cnt[v]
	}
	if cap(e.jarena) < int(total) {
		e.jarena = make([]Envelope, total)
	} else {
		e.jarena = e.jarena[:total]
	}
	for i := range slot {
		d := &slot[i]
		e.jarena[e.pos[d.to]] = d.env
		e.pos[d.to]++
	}
	if s.stats.NodeRecv != nil {
		for _, v := range e.touched {
			s.stats.NodeRecv[v] += int(e.cnt[v])
		}
	}
	e.wheel[idx] = slot[:0]
	return len(slot)
}
