// Package simnet is a synchronous round-based message-passing simulator for
// distributed node programs. Each sensor runs a Program; in every round all
// messages sent in the previous round are delivered, and each node with a
// non-empty inbox takes a step. The simulator counts messages and rounds,
// which backs the complexity measurements of paper Sec. V-A (message
// complexity O((k+l+1)n), time complexity O(sqrt(n))).
//
// Two round engines execute the same Program/Context contract (see Engine):
// a straightforward serial reference engine, and an allocation-free engine
// that steps the touched nodes in parallel chunks and merges their send
// queues deterministically. Every observable number — Stats.Messages,
// Rounds, PerRound, per-node counters, inbox contents and order — is
// bit-identical between the two.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"bfskel/internal/graph"
	"bfskel/internal/obs"
)

// ErrRoundLimit is returned when a simulation does not quiesce within the
// configured round budget.
var ErrRoundLimit = errors.New("simnet: round limit exceeded")

// Envelope is a delivered message. The generic Payload carries arbitrary
// program-defined bodies; messages sent with SendPacked/BroadcastPacked
// travel on the typed fast path instead and are read back with Packed.
// Envelopes (and any packed words they expose) are engine-owned: they are
// valid only for the duration of the Step call that receives them.
type Envelope struct {
	// From is the sending node's ID.
	From int
	// Payload is the protocol-defined message body; nil for messages sent
	// on the packed fast path.
	Payload any

	// Packed fast-path body: a kind tag plus opaque words, arena-allocated
	// by the round engine so built-in protocols send without boxing.
	kind   uint8
	packed bool
	words  []uint64
}

// Packed returns the typed fast-path body of the message: the
// protocol-defined kind tag and the packed words. ok is false for generic
// (Payload) messages. The words alias engine-owned memory and must not be
// retained beyond the Step call.
func (e Envelope) Packed() (kind uint8, words []uint64, ok bool) {
	return e.kind, e.words, e.packed
}

// Context is handed to a Program during Init and Step; it exposes the node's
// identity, its neighbor list, and the send primitives.
type Context struct {
	sim  *Sim
	node int
	// w is the parallel engine's per-chunk send queue; nil while the serial
	// engine is stepping, in which case sends deliver immediately.
	w *parWorker
}

// ID returns the node's ID.
func (c *Context) ID() int { return c.node }

// Neighbors returns the node's neighbor IDs. The slice is shared and must
// not be modified.
func (c *Context) Neighbors() []int32 { return c.sim.g.Neighbors(c.node) }

// Degree returns the node's degree.
func (c *Context) Degree() int { return c.sim.g.Degree(c.node) }

// Send queues a message to a neighbor for delivery next round. Sending to a
// non-neighbor is a protocol bug and panics, mirroring the physical
// impossibility of the radio reaching a non-neighbor.
func (c *Context) Send(to int, payload any) {
	if !c.sim.g.HasEdge(c.node, to) {
		panic(fmt.Sprintf("simnet: node %d sent to non-neighbor %d", c.node, to))
	}
	if c.w != nil {
		c.w.push(sendOp{from: int32(c.node), to: int32(to), gen: payload})
	} else {
		c.sim.deliver(to, Envelope{From: c.node, Payload: payload})
		c.sim.stats.Messages++
	}
	c.sim.noteSend(c.node)
}

// SendPacked is Send on the typed fast path: the message body is a
// protocol-defined kind tag plus packed words. The engine copies the words
// before returning, so the caller may reuse the backing slice immediately
// (the idiom is a per-program scratch buffer refilled every Step).
func (c *Context) SendPacked(to int, kind uint8, words []uint64) {
	if !c.sim.g.HasEdge(c.node, to) {
		panic(fmt.Sprintf("simnet: node %d sent to non-neighbor %d", c.node, to))
	}
	if c.w != nil {
		c.w.pushPacked(int32(c.node), int32(to), kind, words)
	} else {
		c.sim.deliver(to, Envelope{
			From: c.node, kind: kind, packed: true,
			words: append([]uint64(nil), words...),
		})
		c.sim.stats.Messages++
	}
	c.sim.noteSend(c.node)
}

// Broadcast queues the payload to every neighbor as a single wireless
// transmission: it counts one message regardless of the neighbor count,
// matching the paper's accounting (one flooding retransmission = one
// message), under which skeleton extraction costs O((k+l+1)n) messages.
func (c *Context) Broadcast(payload any) {
	if c.sim.g.Degree(c.node) == 0 {
		return
	}
	if c.w != nil {
		c.w.push(sendOp{from: int32(c.node), to: -1, gen: payload})
	} else {
		env := Envelope{From: c.node, Payload: payload}
		for _, v := range c.sim.g.Neighbors(c.node) {
			c.sim.deliver(int(v), env)
		}
		c.sim.stats.Messages++
	}
	c.sim.noteSend(c.node)
}

// BroadcastPacked is Broadcast on the typed fast path; see SendPacked for
// the copy contract. All neighbors receive views of one shared copy.
func (c *Context) BroadcastPacked(kind uint8, words []uint64) {
	if c.sim.g.Degree(c.node) == 0 {
		return
	}
	if c.w != nil {
		c.w.pushPacked(int32(c.node), -1, kind, words)
	} else {
		env := Envelope{
			From: c.node, kind: kind, packed: true,
			words: append([]uint64(nil), words...),
		}
		for _, v := range c.sim.g.Neighbors(c.node) {
			c.sim.deliver(int(v), env)
		}
		c.sim.stats.Messages++
	}
	c.sim.noteSend(c.node)
}

// Program is a per-node protocol state machine.
type Program interface {
	// Init runs once, before round 1; the node may send initial messages.
	Init(ctx *Context)
	// Step runs whenever the node has incoming messages; inbox holds all
	// messages delivered this round, in deterministic (sender, FIFO) order.
	// The inbox (and any packed words) is engine-owned scratch, valid only
	// until Step returns.
	Step(ctx *Context, inbox []Envelope)
}

// RoundStats records one synchronous round of a simulation. Round 0 covers
// the Init pass (every node runs, initial messages are sent); rounds 1..R
// cover the Step passes.
type RoundStats struct {
	// Round is the round index.
	Round int `json:"round"`
	// Messages is the number of transmissions initiated during this round
	// (broadcast = 1 transmission, matching Stats.Messages accounting).
	Messages int `json:"messages"`
	// Deliveries is the number of envelopes handed to inboxes this round.
	Deliveries int `json:"deliveries"`
	// Active is the number of nodes that took a step (or Init) this round.
	Active int `json:"active"`
}

// Stats summarises a finished simulation.
type Stats struct {
	// Rounds is the number of synchronous rounds until quiescence.
	Rounds int
	// Messages is the total number of node-to-node messages delivered.
	Messages int
	// Engine names the round engine that executed the run ("serial" or
	// "parallel"), after resolving Sim.Engine.
	Engine string `json:",omitempty"`

	// PerRound holds one entry per executed round (index 0 = Init) when
	// Sim.RecordRounds was set; nil otherwise. The Messages entries sum to
	// Stats.Messages exactly.
	PerRound []RoundStats `json:",omitempty"`
	// NodeSent and NodeRecv count per-node transmissions and received
	// envelopes when Sim.RecordPerNode was set; nil otherwise. A broadcast
	// counts one send for the transmitter and one receive per neighbor.
	// Receives are counted when the envelope is handed to the inbox, so
	// messages still in flight at an ErrRoundLimit abort are not included.
	NodeSent []int `json:",omitempty"`
	NodeRecv []int `json:",omitempty"`
}

// Sim drives a set of Programs over a connectivity graph.
type Sim struct {
	g        *graph.Graph
	programs []Program
	round    int
	rng      *rand.Rand
	stats    Stats

	// Serial-engine delivery state.
	inboxes  [][]Envelope
	pending  map[int][]delivery
	inFlight int

	// MaxRounds bounds the simulation; 0 means 4*N + 64 rounds, generous
	// for any flood-based protocol on a connected graph.
	MaxRounds int
	// Jitter adds a uniform 0..Jitter extra rounds of delay to every
	// message, breaking the synchrony assumption ("messages travel at
	// approximately the same speed", Sec. III-B): protocols that carry hop
	// counters in their payloads must stay correct regardless. 0 keeps the
	// simulation synchronous.
	Jitter int
	// JitterSeed makes jittered runs reproducible.
	JitterSeed int64
	// Engine selects the round engine (EngineAuto, the zero value, picks
	// the parallel engine on large graphs). Outputs and statistics are
	// identical either way.
	Engine Engine

	// RecordRounds enables per-round accounting into Stats.PerRound.
	RecordRounds bool
	// RecordPerNode enables per-node send/receive counters into
	// Stats.NodeSent / Stats.NodeRecv.
	RecordPerNode bool
	// Span, when non-nil, receives one "round" trace event per executed
	// round (including round 0 / Init) with message, delivery and
	// active-node counts — the round-by-round curve behind the paper's
	// O(sqrt(n)) claim.
	Span *obs.Span
}

// delivery is an in-flight message with its destination.
type delivery struct {
	to  int
	env Envelope
}

// New creates a simulator. programs must have exactly one entry per graph
// node.
func New(g *graph.Graph, programs []Program) (*Sim, error) {
	if len(programs) != g.N() {
		return nil, fmt.Errorf("simnet: %d programs for %d nodes", len(programs), g.N())
	}
	return &Sim{g: g, programs: programs}, nil
}

// noteSend and noteRecv feed the optional per-node counters.
func (s *Sim) noteSend(from int) {
	if s.stats.NodeSent != nil {
		s.stats.NodeSent[from]++
	}
}

func (s *Sim) noteRecv(to int) {
	if s.stats.NodeRecv != nil {
		s.stats.NodeRecv[to]++
	}
}

// ensureRNG lazily builds the shared jitter source.
func (s *Sim) ensureRNG() *rand.Rand {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(s.JitterSeed)) //lint:allow determinism seeded from JitterSeed; same seed, same jitter
	}
	return s.rng
}

// deliver queues a message on the serial engine, without touching the
// transmission counter. With jitter enabled the arrival is delayed by
// 0..Jitter extra rounds.
func (s *Sim) deliver(to int, env Envelope) {
	arrival := s.round + 1
	if s.Jitter > 0 {
		arrival += s.ensureRNG().Intn(s.Jitter + 1)
	}
	s.pending[arrival] = append(s.pending[arrival], delivery{to: to, env: env})
	s.inFlight++
}

// Run executes Init on every node and then rounds until no messages are in
// flight (quiescence) or the round budget is exhausted.
func (s *Sim) Run() (Stats, error) {
	limit := s.MaxRounds
	if limit <= 0 {
		limit = 4*s.g.N() + 64
	}
	s.round = 0
	if s.RecordPerNode {
		s.stats.NodeSent = make([]int, s.g.N())
		s.stats.NodeRecv = make([]int, s.g.N())
	}
	eng := s.resolveEngine()
	s.stats.Engine = eng.String()
	if eng == EngineParallel {
		return s.runParallel(limit)
	}
	return s.runSerial(limit)
}

// runSerial is the reference engine: one node at a time, immediate
// (round-buffered) delivery through a pending map.
func (s *Sim) runSerial(limit int) (Stats, error) {
	if s.inboxes == nil {
		s.inboxes = make([][]Envelope, s.g.N())
	}
	if s.pending == nil {
		s.pending = make(map[int][]delivery)
	}
	record := s.RecordRounds || s.Span != nil
	sent := s.stats.Messages
	// One Context for the whole run: the pointer escapes into the Program
	// interface calls, so a per-node Context would heap-allocate per step.
	ctx := Context{sim: s}
	for v := range s.programs {
		ctx.node = v
		s.programs[v].Init(&ctx)
	}
	if record {
		s.noteRound(0, s.stats.Messages-sent, 0, len(s.programs))
	}
	for {
		if s.inFlight == 0 {
			s.stats.Rounds = s.round
			return s.stats, nil
		}
		s.round++
		if s.round > limit {
			return s.stats, ErrRoundLimit
		}
		arrivals := s.pending[s.round]
		delete(s.pending, s.round)
		s.inFlight -= len(arrivals)
		touched := s.distribute(arrivals)
		sent = s.stats.Messages
		for _, v := range touched {
			ctx.node = v
			s.programs[v].Step(&ctx, s.inboxes[v])
			s.inboxes[v] = s.inboxes[v][:0]
		}
		if record {
			s.noteRound(s.round, s.stats.Messages-sent, len(arrivals), len(touched))
		}
	}
}

// noteRound records one round's accounting into Stats.PerRound and, when a
// trace span is attached, as a "round" event.
func (s *Sim) noteRound(round, messages, deliveries, active int) {
	if s.RecordRounds {
		s.stats.PerRound = append(s.stats.PerRound, RoundStats{
			Round: round, Messages: messages, Deliveries: deliveries, Active: active,
		})
	}
	s.Span.Event("round",
		obs.Int("round", round), obs.Int("messages", messages),
		obs.Int("deliveries", deliveries), obs.Int("active", active))
}

// distribute hands this round's arrivals to their inboxes and returns the
// receiving node IDs in ascending order (deterministic step order).
// Receives are counted here — at delivery into the inbox — rather than at
// enqueue time, so jittered in-flight messages are never stamped rounds
// early and an ErrRoundLimit abort does not count messages that were never
// delivered.
func (s *Sim) distribute(arrivals []delivery) []int {
	var touched []int
	for _, d := range arrivals {
		if len(s.inboxes[d.to]) == 0 {
			touched = append(touched, d.to)
		}
		s.inboxes[d.to] = append(s.inboxes[d.to], d.env)
		s.noteRecv(d.to)
	}
	sort.Ints(touched)
	return touched
}

// Stats returns the counters accumulated so far.
func (s *Sim) Stats() Stats { return s.stats }
