package simnet

import (
	"os"
	"sync"
)

// Engine selects the round-execution strategy behind Sim.Run. Both engines
// honor the same Program/Context contract and produce bit-identical
// statistics, inbox contents and inbox order (the engine-parity property
// tests in internal/protocol enforce this); they differ only in cost.
type Engine uint8

const (
	// EngineAuto picks per run: the parallel engine on graphs with at
	// least engineCutoverNodes nodes, the serial engine otherwise. The
	// BFSKEL_SIMNET_ENGINE environment variable ("serial" or "parallel")
	// overrides the automatic choice — CI uses it to force the parallel
	// engine under the race detector.
	EngineAuto Engine = iota
	// EngineSerial forces the reference engine: one node at a time,
	// map-buffered pending deliveries.
	EngineSerial
	// EngineParallel forces the arena engine: double-buffered mailbox
	// arenas, a jitter wheel, and chunk-parallel stepping with
	// deterministic send-queue merging.
	EngineParallel
)

// String names the engine for stats and trace attributes.
func (e Engine) String() string {
	switch e {
	case EngineSerial:
		return "serial"
	case EngineParallel:
		return "parallel"
	default:
		return "auto"
	}
}

// engineCutoverNodes is the EngineAuto threshold: below it the serial
// engine's near-zero setup wins; above it the arena engine's allocation-free
// rounds (and, with GOMAXPROCS > 1, parallel stepping) dominate.
const engineCutoverNodes = 256

// resolveEngine turns the configured engine into the one this run uses.
func (s *Sim) resolveEngine() Engine {
	e := s.Engine
	if e == EngineAuto {
		e = envEngine()
	}
	if e == EngineAuto {
		if s.g.N() >= engineCutoverNodes {
			return EngineParallel
		}
		return EngineSerial
	}
	return e
}

// envEngine reads the BFSKEL_SIMNET_ENGINE override once per process.
// Unrecognised values keep the automatic choice.
var envEngine = sync.OnceValue(func() Engine {
	switch os.Getenv("BFSKEL_SIMNET_ENGINE") {
	case "serial":
		return EngineSerial
	case "parallel":
		return EngineParallel
	}
	return EngineAuto
})
