package simnet_test

import (
	"errors"
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// echoOnce broadcasts a token at Init and records everything it hears.
type echoOnce struct {
	heard []int
}

func (p *echoOnce) Init(ctx *simnet.Context) {
	ctx.Broadcast(ctx.ID())
}

func (p *echoOnce) Step(_ *simnet.Context, inbox []simnet.Envelope) {
	for _, env := range inbox {
		if id, ok := env.Payload.(int); ok {
			p.heard = append(p.heard, id)
		}
	}
}

// relay floods a token with a TTL.
type relay struct {
	start bool
	seen  bool
}

type ttlMsg struct{ ttl int }

func (p *relay) Init(ctx *simnet.Context) {
	if p.start {
		p.seen = true
		ctx.Broadcast(ttlMsg{ttl: 2})
	}
}

func (p *relay) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	for _, env := range inbox {
		m, ok := env.Payload.(ttlMsg)
		if !ok {
			continue
		}
		if !p.seen {
			p.seen = true
			if m.ttl > 0 {
				ctx.Broadcast(ttlMsg{ttl: m.ttl - 1})
			}
		}
	}
}

func line(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	g.SortAdjacency()
	return g
}

func TestProgramCountMismatch(t *testing.T) {
	g := line(3)
	if _, err := simnet.New(g, make([]simnet.Program, 2)); err == nil {
		t.Error("expected error for program count mismatch")
	}
}

func TestBroadcastDelivery(t *testing.T) {
	g := line(3)
	nodes := []*echoOnce{{}, {}, {}}
	programs := []simnet.Program{nodes[0], nodes[1], nodes[2]}
	sim, err := simnet.New(g, programs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// One broadcast per node = 3 transmissions.
	if stats.Messages != 3 {
		t.Errorf("messages = %d, want 3", stats.Messages)
	}
	if stats.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", stats.Rounds)
	}
	// The middle node hears both ends; the ends hear only the middle.
	if len(nodes[1].heard) != 2 {
		t.Errorf("middle heard %v", nodes[1].heard)
	}
	if len(nodes[0].heard) != 1 || nodes[0].heard[0] != 1 {
		t.Errorf("end heard %v", nodes[0].heard)
	}
}

func TestTTLFloodRounds(t *testing.T) {
	g := line(6)
	nodes := make([]*relay, 6)
	programs := make([]simnet.Program, 6)
	for i := range nodes {
		nodes[i] = &relay{start: i == 0}
		programs[i] = nodes[i]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// TTL 2 from node 0 reaches nodes 0..3 (Init + two relays).
	for i, p := range nodes {
		want := i <= 3
		if p.seen != want {
			t.Errorf("node %d seen = %v, want %v", i, p.seen, want)
		}
	}
}

// chatter never quiesces: it rebroadcasts every message forever.
type chatter struct{}

func (chatter) Init(ctx *simnet.Context) { ctx.Broadcast(0) }
func (chatter) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	ctx.Broadcast(0)
}

func TestRoundLimit(t *testing.T) {
	g := line(2)
	sim, err := simnet.New(g, []simnet.Program{chatter{}, chatter{}})
	if err != nil {
		t.Fatal(err)
	}
	sim.MaxRounds = 10
	if _, err := sim.Run(); !errors.Is(err, simnet.ErrRoundLimit) {
		t.Errorf("err = %v, want ErrRoundLimit", err)
	}
}

// unicaster sends a single direct message.
type unicaster struct {
	to    int
	heard int
}

func (p *unicaster) Init(ctx *simnet.Context) {
	if p.to >= 0 {
		ctx.Send(p.to, "ping")
	}
}

func (p *unicaster) Step(_ *simnet.Context, inbox []simnet.Envelope) {
	p.heard += len(inbox)
}

func TestSendUnicast(t *testing.T) {
	g := line(3)
	nodes := []*unicaster{{to: 1}, {to: -1}, {to: -1}}
	sim, err := simnet.New(g, []simnet.Program{nodes[0], nodes[1], nodes[2]})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 1 {
		t.Errorf("messages = %d, want 1", stats.Messages)
	}
	if nodes[1].heard != 1 || nodes[2].heard != 0 {
		t.Errorf("delivery wrong: %d, %d", nodes[1].heard, nodes[2].heard)
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	g := line(3)
	nodes := []*unicaster{{to: 2}, {to: -1}, {to: -1}} // 0 and 2 are not adjacent
	sim, err := simnet.New(g, []simnet.Program{nodes[0], nodes[1], nodes[2]})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-neighbor send")
		}
	}()
	_, _ = sim.Run()
}

// TestJitterDeterminism: the same jitter seed reproduces the same run; a
// different seed generally changes the round count.
func TestJitterDeterminism(t *testing.T) {
	run := func(seed int64) simnet.Stats {
		g := line(12)
		nodes := make([]*relay, 12)
		programs := make([]simnet.Program, 12)
		for i := range nodes {
			nodes[i] = &relay{start: i == 0}
			programs[i] = nodes[i]
		}
		sim, err := simnet.New(g, programs)
		if err != nil {
			t.Fatal(err)
		}
		sim.Jitter, sim.JitterSeed = 3, seed
		stats, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	a, b := run(1), run(1)
	if a.Messages != b.Messages || a.Rounds != b.Rounds {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestJitterStretchesRounds: jitter can only delay quiescence.
func TestJitterStretchesRounds(t *testing.T) {
	build := func(jitter int) simnet.Stats {
		g := line(10)
		programs := make([]simnet.Program, 10)
		nodes := make([]*relay, 10)
		for i := range nodes {
			nodes[i] = &relay{start: i == 0}
			programs[i] = nodes[i]
		}
		sim, _ := simnet.New(g, programs)
		sim.Jitter, sim.JitterSeed = jitter, 7
		stats, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	if build(4).Rounds < build(0).Rounds {
		t.Error("jittered run finished before the synchronous one")
	}
}
