package simnet_test

import (
	"errors"
	"fmt"
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// grid builds a side x side 4-neighbor lattice — degree-4 nodes like a
// dense sensor deployment, without the deployment machinery.
func grid(side int) *graph.Graph {
	g := graph.New(side * side)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < side {
				g.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	g.SortAdjacency()
	return g
}

// genChatter rebroadcasts a generic payload every round; packedChatter does
// the same on the typed fast path. Both saturate the simulator: every node
// transmits every round, so the benchmark measures raw delivery throughput.
type genChatter struct{}

func (genChatter) Init(ctx *simnet.Context) { ctx.Broadcast(0) }
func (genChatter) Step(ctx *simnet.Context, _ []simnet.Envelope) {
	ctx.Broadcast(0)
}

type packedChatter struct{ buf [1]uint64 }

func (p *packedChatter) Init(ctx *simnet.Context) { ctx.BroadcastPacked(1, p.buf[:]) }
func (p *packedChatter) Step(ctx *simnet.Context, _ []simnet.Envelope) {
	ctx.BroadcastPacked(1, p.buf[:])
}

// BenchmarkRoundEngine measures simulator delivery throughput with both
// engines on both payload paths: a 4096-node lattice running 32 saturated
// rounds per iteration, reported as deliveries per second.
func BenchmarkRoundEngine(b *testing.B) {
	g := grid(64)
	const rounds = 32
	for _, payload := range []string{"generic", "packed"} {
		for _, eng := range []simnet.Engine{simnet.EngineSerial, simnet.EngineParallel} {
			b.Run(fmt.Sprintf("payload=%s/%v", payload, eng), func(b *testing.B) {
				b.ReportAllocs()
				deliveries := 0
				for i := 0; i < b.N; i++ {
					programs := make([]simnet.Program, g.N())
					for v := range programs {
						if payload == "packed" {
							programs[v] = &packedChatter{}
						} else {
							programs[v] = genChatter{}
						}
					}
					sim, err := simnet.New(g, programs)
					if err != nil {
						b.Fatal(err)
					}
					sim.Engine = eng
					sim.MaxRounds = rounds
					sim.RecordRounds = true
					stats, err := sim.Run()
					if !errors.Is(err, simnet.ErrRoundLimit) {
						b.Fatalf("expected round-limit stop, got %v", err)
					}
					for _, r := range stats.PerRound {
						deliveries += r.Deliveries
					}
				}
				b.ReportMetric(float64(deliveries)/b.Elapsed().Seconds(), "deliveries/s")
			})
		}
	}
}
