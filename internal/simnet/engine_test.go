package simnet_test

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"

	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// mixProgram floods a TTL token, alternating packed and generic encodings
// per node, and records every delivery in arrival order — a sensitive probe
// of inbox order, payload routing and counter parity across engines.
type mixProgram struct {
	log []string
}

type ttlTok struct {
	ID  int32
	TTL int32
}

func (p *mixProgram) send(ctx *simnet.Context, id, ttl int32) {
	if ctx.ID()%2 == 0 {
		ctx.BroadcastPacked(7, []uint64{uint64(uint32(id))<<32 | uint64(uint32(ttl))})
	} else {
		ctx.Broadcast(ttlTok{ID: id, TTL: ttl})
	}
}

func (p *mixProgram) Init(ctx *simnet.Context) {
	p.send(ctx, int32(ctx.ID()), 2)
}

func (p *mixProgram) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	for _, env := range inbox {
		var id, ttl int32
		packed := false
		if kind, ws, ok := env.Packed(); ok {
			if kind != 7 || len(ws) != 1 {
				continue
			}
			id, ttl = int32(uint32(ws[0]>>32)), int32(uint32(ws[0]))
			packed = true
		} else if tok, ok := env.Payload.(ttlTok); ok {
			id, ttl = tok.ID, tok.TTL
		} else {
			continue
		}
		p.log = append(p.log, fmt.Sprintf("%d<-%d id=%d ttl=%d packed=%v",
			ctx.ID(), env.From, id, ttl, packed))
		if ttl > 0 {
			p.send(ctx, id, ttl-1)
		}
	}
}

// doubleSender unicasts two messages to its first neighbor at Init —
// exceeding the degree-capacity inbox window of middle line nodes, which
// exercises the parallel engine's overflow spill path.
type doubleSender struct {
	got []int
}

func (p *doubleSender) Init(ctx *simnet.Context) {
	if ctx.ID()%2 == 0 && ctx.Degree() > 0 {
		nb := int(ctx.Neighbors()[0])
		ctx.Send(nb, ctx.ID()*10)
		ctx.Send(nb, ctx.ID()*10+1)
	}
}

func (p *doubleSender) Step(_ *simnet.Context, inbox []simnet.Envelope) {
	for _, env := range inbox {
		if v, ok := env.Payload.(int); ok {
			p.got = append(p.got, v)
		}
	}
}

// runEngine executes one fresh simulation with the given engine forced.
func runEngine(t *testing.T, g *graph.Graph, build func() []simnet.Program,
	eng simnet.Engine, jitter int, maxRounds int) ([]simnet.Program, simnet.Stats, error) {
	t.Helper()
	programs := build()
	sim, err := simnet.New(g, programs)
	if err != nil {
		t.Fatal(err)
	}
	sim.Engine = eng
	sim.Jitter, sim.JitterSeed = jitter, 42
	sim.MaxRounds = maxRounds
	sim.RecordRounds, sim.RecordPerNode = true, true
	stats, err := sim.Run()
	return programs, stats, err
}

// assertStatsEqual compares everything observable except the engine name.
func assertStatsEqual(t *testing.T, label string, serial, parallel simnet.Stats) {
	t.Helper()
	serial.Engine, parallel.Engine = "", ""
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("%s: stats diverge\nserial:   %+v\nparallel: %+v", label, serial, parallel)
	}
}

// TestEngineParityMixedPayloads checks that serial and parallel engines
// produce identical inbox sequences, stats, per-round accounting and
// per-node counters for a program mixing packed and generic payloads, with
// and without jitter.
func TestEngineParityMixedPayloads(t *testing.T) {
	for _, g := range map[string]*graph.Graph{"line12": line(12), "star9": star(9)} {
		for _, jitter := range []int{0, 2} {
			label := fmt.Sprintf("jitter=%d", jitter)
			build := func() []simnet.Program {
				ps := make([]simnet.Program, g.N())
				for i := range ps {
					ps[i] = &mixProgram{}
				}
				return ps
			}
			sp, ss, err := runEngine(t, g, build, simnet.EngineSerial, jitter, 0)
			if err != nil {
				t.Fatal(err)
			}
			pp, ps, err := runEngine(t, g, build, simnet.EngineParallel, jitter, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ss.Engine != "serial" || ps.Engine != "parallel" {
				t.Fatalf("%s: engines not forced: %q vs %q", label, ss.Engine, ps.Engine)
			}
			assertStatsEqual(t, label, ss, ps)
			for v := range sp {
				sl, pl := sp[v].(*mixProgram).log, pp[v].(*mixProgram).log
				if !reflect.DeepEqual(sl, pl) {
					t.Fatalf("%s: node %d inbox sequence diverges\nserial:   %v\nparallel: %v",
						label, v, sl, pl)
				}
			}
		}
	}
}

// TestEngineParityOverflow drives more unicasts into a node than its degree
// — the parallel engine must spill past its degree-capacity window and
// still deliver in the serial order.
func TestEngineParityOverflow(t *testing.T) {
	g := line(6)
	build := func() []simnet.Program {
		ps := make([]simnet.Program, g.N())
		for i := range ps {
			ps[i] = &doubleSender{}
		}
		return ps
	}
	sp, ss, err := runEngine(t, g, build, simnet.EngineSerial, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pp, ps, err := runEngine(t, g, build, simnet.EngineParallel, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertStatsEqual(t, "overflow", ss, ps)
	for v := range sp {
		sg, pg := sp[v].(*doubleSender).got, pp[v].(*doubleSender).got
		if !reflect.DeepEqual(sg, pg) {
			t.Fatalf("node %d delivery order diverges: serial %v vs parallel %v", v, sg, pg)
		}
	}
	if got := sp[1].(*doubleSender).got; len(got) != 4 {
		t.Fatalf("node 1 should receive 4 unicasts (2 each from nodes 0 and 2), got %v", got)
	}
}

// TestRecvCountedAtDeliveryJitter pins the receive-counter bugfix: receives
// are stamped when an envelope reaches an inbox, not when it is enqueued.
// Under jitter the two moments are rounds apart, so the per-node receive
// total must always equal the delivered total — on both engines.
func TestRecvCountedAtDeliveryJitter(t *testing.T) {
	g := line(8)
	build := func() []simnet.Program {
		ps := make([]simnet.Program, g.N())
		for i := range ps {
			ps[i] = &mixProgram{}
		}
		return ps
	}
	for _, eng := range []simnet.Engine{simnet.EngineSerial, simnet.EngineParallel} {
		_, stats, err := runEngine(t, g, build, eng, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		recv, delivered := 0, 0
		for _, c := range stats.NodeRecv {
			recv += c
		}
		for _, r := range stats.PerRound {
			delivered += r.Deliveries
		}
		if recv != delivered {
			t.Errorf("%v: NodeRecv total %d != delivered total %d", eng, recv, delivered)
		}
	}
}

// TestRecvNotCountedOnAbort aborts a jittered run at the round limit while
// messages are still in flight: the undelivered messages must not appear in
// NodeRecv (the pre-fix engine counted them at enqueue time).
func TestRecvNotCountedOnAbort(t *testing.T) {
	g := line(8)
	build := func() []simnet.Program {
		ps := make([]simnet.Program, g.N())
		for i := range ps {
			ps[i] = &mixProgram{}
		}
		return ps
	}
	for _, eng := range []simnet.Engine{simnet.EngineSerial, simnet.EngineParallel} {
		_, stats, err := runEngine(t, g, build, eng, 3, 1)
		if !errors.Is(err, simnet.ErrRoundLimit) {
			t.Fatalf("%v: expected ErrRoundLimit, got %v", eng, err)
		}
		recv, delivered := 0, 0
		for _, c := range stats.NodeRecv {
			recv += c
		}
		for _, r := range stats.PerRound {
			delivered += r.Deliveries
		}
		if recv != delivered {
			t.Errorf("%v: NodeRecv total %d != delivered total %d at abort", eng, recv, delivered)
		}
		// With Jitter=3 most Init transmissions are still in flight after
		// round 1; if receives were counted at enqueue, recv would cover
		// every neighbor of every Init broadcast.
		sent := 0
		for _, r := range stats.PerRound {
			sent += r.Messages
		}
		if sent == 0 || recv >= 2*(g.N()-1) {
			t.Errorf("%v: abort test not probing in-flight messages (sent=%d recv=%d)", eng, sent, recv)
		}
	}
}

// TestEngineAutoSelection checks the size cutover (small graph -> serial)
// and the explicit forcing, honoring the CI environment override.
func TestEngineAutoSelection(t *testing.T) {
	g := line(4)
	build := func() []simnet.Program {
		ps := make([]simnet.Program, g.N())
		for i := range ps {
			ps[i] = &mixProgram{}
		}
		return ps
	}
	if os.Getenv("BFSKEL_SIMNET_ENGINE") == "" {
		_, stats, err := runEngine(t, g, build, simnet.EngineAuto, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Engine != "serial" {
			t.Errorf("auto on %d nodes picked %q, want serial", g.N(), stats.Engine)
		}
	}
	_, stats, err := runEngine(t, g, build, simnet.EngineParallel, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Engine != "parallel" {
		t.Errorf("forced parallel reported %q", stats.Engine)
	}
}
