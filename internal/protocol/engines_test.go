package protocol_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"bfskel/internal/core"
	"bfskel/internal/deploy"
	"bfskel/internal/graph"
	"bfskel/internal/protocol"
	"bfskel/internal/radio"
	"bfskel/internal/shapes"
)

// buildModelNetwork is buildNetwork parameterized by radio model: a
// jittered-grid deployment on the named shape, realised as UDG or QUDG and
// restricted to the largest component.
func buildModelNetwork(t testing.TB, shapeName string, n int, deg float64, seed int64, qudg bool) *graph.Graph {
	t.Helper()
	shape := shapes.MustByName(shapeName)
	spacing := math.Sqrt(shape.Poly.Area() / float64(n))
	pts := deploy.PerturbedGrid(shape.Poly, spacing, 0.45*spacing, seed)
	r := math.Sqrt(deg * shape.Poly.Area() / (math.Pi * float64(len(pts))))
	model := func(r float64) radio.Model {
		if qudg {
			return radio.QUDG{R: r, Alpha: 0.4, P: 0.3}
		}
		return radio.UDG{R: r}
	}
	for iter := 0; iter < 4; iter++ {
		g := graph.Build(pts, model(r), seed)
		if actual := g.AvgDegree(); actual > 0 {
			if math.Abs(actual-deg)/deg < 0.01 {
				break
			}
			r *= math.Sqrt(deg / actual)
		} else {
			r *= 1.5
		}
	}
	g := graph.Build(pts, model(r), seed)
	sub, _ := g.Subgraph(g.LargestComponent())
	return sub
}

// runWithEngine executes the full four-phase protocol with one engine
// forced and all statistics recorded.
func runWithEngine(t *testing.T, g *graph.Graph, jitter int, eng protocol.Engine) *protocol.Result {
	t.Helper()
	params := core.DefaultParams()
	res, err := protocol.RunOpts(g, params.K, params.L, params.Scope(), params.Alpha, protocol.Options{
		Jitter: jitter, Seed: 5, Engine: eng,
		RecordRounds: true, RecordPerNode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineParity is the property test behind the engine contract: across
// deployment shapes, radio models and jitter settings, the serial and
// parallel engines must produce bit-identical protocol outputs — K-hop
// sizes, centralities, indices, elected sites, Voronoi records including
// parents — and identical statistics: message and round totals, per-round
// breakdowns and per-node counters.
func TestEngineParity(t *testing.T) {
	shapeNames := []string{"window", "smile", "star", "onehole", "flower"}
	for _, shapeName := range shapeNames {
		for _, qudg := range []bool{false, true} {
			for _, jitter := range []int{0, 2} {
				name := fmt.Sprintf("%s/qudg=%v/jitter=%d", shapeName, qudg, jitter)
				t.Run(name, func(t *testing.T) {
					g := buildModelNetwork(t, shapeName, 700, 7, 11, qudg)
					serial := runWithEngine(t, g, jitter, protocol.EngineSerial)
					parallel := runWithEngine(t, g, jitter, protocol.EngineParallel)
					for i := range serial.PhaseStats {
						if serial.PhaseStats[i].Engine != "serial" ||
							parallel.PhaseStats[i].Engine != "parallel" {
							t.Fatalf("phase %d: engines not forced: %q vs %q", i,
								serial.PhaseStats[i].Engine, parallel.PhaseStats[i].Engine)
						}
						serial.PhaseStats[i].Engine, parallel.PhaseStats[i].Engine = "", ""
					}
					if !reflect.DeepEqual(serial, parallel) {
						for i := range serial.PhaseStats {
							if !reflect.DeepEqual(serial.PhaseStats[i], parallel.PhaseStats[i]) {
								t.Errorf("phase %s stats diverge", protocol.PhaseNames[i])
							}
						}
						t.Fatalf("serial and parallel engine results diverge on %s", name)
					}
				})
			}
		}
	}
}

// TestJitterSeedInvariance pins the protocol's jitter robustness end to
// end: the elected sites and the Voronoi cell structure must not depend on
// the jitter seed (message timing), matching the synchronous run exactly.
func TestJitterSeedInvariance(t *testing.T) {
	g := buildModelNetwork(t, "window", 900, 7, 11, false)
	params := core.DefaultParams()
	run := func(jitter int, seed int64) *protocol.Result {
		res, err := protocol.RunOpts(g, params.K, params.L, params.Scope(), params.Alpha,
			protocol.Options{Jitter: jitter, Seed: seed, Engine: protocol.EngineParallel})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sync := run(0, 0)
	for _, seed := range []int64{1, 7, 42} {
		jittered := run(2, seed)
		if !reflect.DeepEqual(sync.KHop, jittered.KHop) {
			t.Fatalf("seed %d: K-hop sizes depend on jitter", seed)
		}
		if !reflect.DeepEqual(sync.Index, jittered.Index) {
			t.Fatalf("seed %d: indices depend on jitter", seed)
		}
		if !reflect.DeepEqual(sync.Sites, jittered.Sites) {
			t.Fatalf("seed %d: elected sites depend on jitter: %v vs %v",
				seed, sync.Sites, jittered.Sites)
		}
		for v := range sync.Records {
			if !sameRecordSet(sync.Records[v], jittered.Records[v]) {
				t.Fatalf("seed %d: node %d site records depend on jitter", seed, v)
			}
		}
	}
}
