package protocol

import (
	"testing"

	"bfskel/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	g.SortAdjacency()
	return g
}

func TestRunNeighborhoodPath(t *testing.T) {
	g := pathGraph(8)
	khop, stats, err := runNeighborhood(g, 2, phaseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4, 4, 4, 4, 3, 2}
	for v := range want {
		if khop[v] != want[v] {
			t.Errorf("khop[%d] = %d, want %d", v, khop[v], want[v])
		}
	}
	// Set-broadcast: at most k transmissions per node.
	if stats.Messages > 2*g.N() {
		t.Errorf("messages = %d > 2n", stats.Messages)
	}
}

func TestRunCentralityPath(t *testing.T) {
	g := pathGraph(5)
	khop := []int{1, 2, 3, 4, 5} // synthetic sizes for checkable averages
	cent, index, _, err := runCentrality(g, 1, khop, phaseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// c_1(v) averages khop over v and its direct neighbors.
	want := []float64{(1 + 2) / 2.0, (1 + 2 + 3) / 3.0, (2 + 3 + 4) / 3.0, (3 + 4 + 5) / 3.0, (4 + 5) / 2.0}
	for v := range want {
		if cent[v] != want[v] {
			t.Errorf("cent[%d] = %v, want %v", v, cent[v], want[v])
		}
		if index[v] != (float64(khop[v])+cent[v])/2 {
			t.Errorf("index[%d] broken", v)
		}
	}
}

func TestRunElectionPath(t *testing.T) {
	g := pathGraph(7)
	// Two separated peaks at 1 and 5.
	index := []float64{1, 9, 2, 3, 2, 8, 1}
	sites, _, err := runElection(g, 2, index, phaseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 5 {
		t.Errorf("sites = %v, want [1 5]", sites)
	}
	// With scope 4 the peaks see each other; only the higher survives.
	sites, _, err = runElection(g, 4, index, phaseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0] != 1 {
		t.Errorf("scope-4 sites = %v, want [1]", sites)
	}
}

func TestRunElectionTieBreak(t *testing.T) {
	g := pathGraph(3)
	index := []float64{5, 5, 5}
	sites, _, err := runElection(g, 2, index, phaseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0] != 0 {
		t.Errorf("tie-break sites = %v, want [0]", sites)
	}
}

func TestRunVoronoiPath(t *testing.T) {
	g := pathGraph(9)
	records, _, err := runVoronoi(g, []int32{0, 8}, 1, phaseOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Node 4 is equidistant (4 vs 4): records both sites.
	if len(records[4]) != 2 {
		t.Fatalf("node 4 records = %v", records[4])
	}
	// Nodes 3 and 5 are within slack 1 of the far site (3 vs 5? no: 3 and
	// 5 -> |3-5| = 2 > 1), so they record only their near site... check:
	// node 3: d(0)=3, d(8)=5 -> only site 0.
	if len(records[3]) != 1 || records[3][0].Site != 0 || records[3][0].D != 3 {
		t.Errorf("node 3 records = %v", records[3])
	}
	// Reverse-path parents step toward the site.
	if records[3][0].Parent != 2 {
		t.Errorf("node 3 parent = %d", records[3][0].Parent)
	}
	// Sites record themselves at distance 0.
	if len(records[0]) == 0 || records[0][0].D != 0 || records[0][0].Site != 0 {
		t.Errorf("site record = %v", records[0])
	}
}

func TestRunValidation(t *testing.T) {
	g := pathGraph(3)
	if _, err := Run(g, 0, 1, 1, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RunJittered(g, 1, 1, 1, 1, -1, 0); err == nil {
		t.Error("negative jitter accepted")
	}
}
