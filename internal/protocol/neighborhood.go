package protocol

import (
	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// idHop is one flooded node identity with the hop count it has traveled —
// the "counter" of the paper's controlled-flooding description. Carrying
// the counter in the payload (rather than inferring distance from delivery
// rounds) keeps the protocol correct when message timing is not uniform.
type idHop struct {
	ID   int32
	Hops int32
}

// idBatch is one transmission's set of newly learned identities.
type idBatch struct {
	Entries []idHop
}

// neighborhoodProgram learns the node's K-hop neighborhood by controlled
// flooding (paper Sec. III-A, first round of flooding): each entry carries
// its hop counter; a node records unknown IDs and re-forwards them while
// the counter is below K, batching everything learned in one step into a
// single transmission.
type neighborhoodProgram struct {
	k     int32
	known map[int32]int32 // ID -> smallest hop counter heard
	fresh []idHop
}

var _ simnet.Program = (*neighborhoodProgram)(nil)

func (p *neighborhoodProgram) Init(ctx *simnet.Context) {
	p.known = map[int32]int32{int32(ctx.ID()): 0}
	ctx.Broadcast(idBatch{Entries: []idHop{{ID: int32(ctx.ID()), Hops: 1}}})
}

func (p *neighborhoodProgram) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	p.fresh = p.fresh[:0]
	for _, env := range inbox {
		batch, ok := env.Payload.(idBatch)
		if !ok {
			continue
		}
		for _, e := range batch.Entries {
			// Record the smallest hop counter per ID; under message jitter
			// an identity can first arrive via a longer route, and the
			// shorter one must still be re-forwarded so fringe nodes within
			// the K-hop horizon are not missed.
			if prev, seen := p.known[e.ID]; seen && prev <= e.Hops {
				continue
			}
			p.known[e.ID] = e.Hops
			if e.Hops < p.k {
				p.fresh = append(p.fresh, idHop{ID: e.ID, Hops: e.Hops + 1})
			}
		}
	}
	if len(p.fresh) > 0 {
		entries := make([]idHop, len(p.fresh))
		copy(entries, p.fresh)
		ctx.Broadcast(idBatch{Entries: entries})
	}
}

// size returns |N_k| (the node itself excluded).
func (p *neighborhoodProgram) size() int { return len(p.known) - 1 }

// runNeighborhood executes the K-hop discovery phase.
func runNeighborhood(g *graph.Graph, k int, po phaseOpts) ([]int, simnet.Stats, error) {
	programs := make([]simnet.Program, g.N())
	nodes := make([]*neighborhoodProgram, g.N())
	for v := range programs {
		nodes[v] = &neighborhoodProgram{k: int32(k)}
		programs[v] = nodes[v]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		return nil, simnet.Stats{}, err
	}
	po.configure(sim)
	stats, err := sim.Run()
	if err != nil {
		return nil, stats, err
	}
	khop := make([]int, g.N())
	for v, p := range nodes {
		khop[v] = p.size()
	}
	return khop, stats, nil
}
