package protocol

import (
	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// idHop is one flooded node identity with the hop count it has traveled —
// the "counter" of the paper's controlled-flooding description. Carrying
// the counter in the payload (rather than inferring distance from delivery
// rounds) keeps the protocol correct when message timing is not uniform.
type idHop struct {
	ID   int32
	Hops int32
}

// idBatch is one transmission's set of newly learned identities (the
// generic-payload form; the program itself transmits kindIDBatch packed
// words but still accepts this shape on receive).
type idBatch struct {
	Entries []idHop
}

// neighborhoodProgram learns the node's K-hop neighborhood by controlled
// flooding (paper Sec. III-A, first round of flooding): each entry carries
// its hop counter; a node records unknown IDs and re-forwards them while
// the counter is below K, batching everything learned in one step into a
// single transmission. Batches travel as kindIDBatch packed words — one
// word per (ID, hops) entry — and the dedup table is a flatmap, so a step
// allocates only when the table grows.
type neighborhoodProgram struct {
	k     int32
	known flatmap[int32] // ID -> smallest hop counter heard
	words []uint64       // scratch: this step's re-forward batch
}

var _ simnet.Program = (*neighborhoodProgram)(nil)

func (p *neighborhoodProgram) Init(ctx *simnet.Context) {
	// Geometric estimate of |N_k|: a k-hop disk holds about degree * k^2
	// nodes on a roughly uniform deployment.
	p.known.reserve(ctx.Degree() * int(p.k) * int(p.k))
	p.known.put(int32(ctx.ID()), 0)
	p.words = make([]uint64, 0, 64) // one alloc up front beats append growth
	p.words = append(p.words, packPair(int32(ctx.ID()), 1))
	ctx.BroadcastPacked(kindIDBatch, p.words)
}

func (p *neighborhoodProgram) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	p.words = p.words[:0]
	for _, env := range inbox {
		if kind, ws, ok := env.Packed(); ok {
			if kind != kindIDBatch {
				continue
			}
			for _, w := range ws {
				id, hops := unpackPair(w)
				p.learn(id, hops)
			}
			continue
		}
		batch, ok := env.Payload.(idBatch)
		if !ok {
			continue
		}
		for _, e := range batch.Entries {
			p.learn(e.ID, e.Hops)
		}
	}
	if len(p.words) > 0 {
		ctx.BroadcastPacked(kindIDBatch, p.words)
	}
}

// learn records the smallest hop counter per ID and queues the entry for
// re-forwarding while it is still inside the K-hop horizon. Under message
// jitter an identity can first arrive via a longer route, and the shorter
// one must still be re-forwarded so fringe nodes within the horizon are not
// missed.
func (p *neighborhoodProgram) learn(id, hops int32) {
	if prev, seen := p.known.get(id); seen && prev <= hops {
		return
	}
	p.known.put(id, hops)
	if hops < p.k {
		p.words = append(p.words, packPair(id, hops+1))
	}
}

// size returns |N_k| (the node itself excluded).
func (p *neighborhoodProgram) size() int { return p.known.len() - 1 }

// runNeighborhood executes the K-hop discovery phase.
func runNeighborhood(g *graph.Graph, k int, po phaseOpts) ([]int, simnet.Stats, error) {
	programs := make([]simnet.Program, g.N())
	nodes := make([]*neighborhoodProgram, g.N())
	for v := range programs {
		nodes[v] = &neighborhoodProgram{k: int32(k)}
		programs[v] = nodes[v]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		return nil, simnet.Stats{}, err
	}
	po.configure(sim)
	stats, err := sim.Run()
	if err != nil {
		return nil, stats, err
	}
	khop := make([]int, g.N())
	for v, p := range nodes {
		khop[v] = p.size()
	}
	return khop, stats, nil
}
