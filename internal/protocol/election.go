package protocol

import (
	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// claim is a candidate maximum flooded during site election, carrying its
// hop counter.
type claim struct {
	ID    int32
	Index float64
	Hops  int32
}

// beats reports whether c wins over o under the election order: higher
// index first, lower ID on ties (matching core.electSites).
func (c claim) beats(o claim) bool {
	return c.Index > o.Index || (c.Index == o.Index && c.ID < o.ID)
}

// electionProgram decides Def. 5 by scope-bounded max-flooding: every node
// floods its own (index, ID) claim with a hop counter; claims stop either
// at the scope horizon or where a strictly better claim is already known. A
// node elects itself when no better claim arrived. Minimum-hop
// re-forwarding keeps each claim's horizon exact under jitter. The
// absorption rule can, in rare corner configurations, withhold a dominated
// claim from a node near the edge of both horizons and elect one extra
// site; the pipeline tolerates extra sites by construction (fake-loop
// clean-up), and on the evaluation networks the election matches the
// centralized Def. 5 exactly (see the cross-check test).
type electionProgram struct {
	scope int32
	own   claim
	best  claim
	hops  int32     // smallest hop counter the best claim arrived with
	buf   [2]uint64 // scratch: kindClaim wire form
}

var _ simnet.Program = (*electionProgram)(nil)

func (p *electionProgram) Init(ctx *simnet.Context) {
	p.best = p.own
	p.hops = 0
	p.buf[0], p.buf[1] = packClaim(claim{ID: p.own.ID, Index: p.own.Index, Hops: 1})
	ctx.BroadcastPacked(kindClaim, p.buf[:])
}

func (p *electionProgram) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	improved := false
	for _, env := range inbox {
		var c claim
		if kind, ws, ok := env.Packed(); ok {
			if kind != kindClaim || len(ws) != 2 {
				continue
			}
			c = unpackClaim(ws[0], ws[1])
		} else if gc, ok := env.Payload.(claim); ok {
			c = gc
		} else {
			continue
		}
		switch {
		case c.beats(p.best):
			p.best, p.hops = c, c.Hops
			improved = true
		case c.ID == p.best.ID && c.Hops < p.hops:
			// The reigning claim arrived again via a shorter route: its
			// remaining reach grows, so it must be re-flooded.
			p.hops = c.Hops
			improved = true
		}
	}
	if improved && p.hops < p.scope {
		p.buf[0], p.buf[1] = packClaim(claim{ID: p.best.ID, Index: p.best.Index, Hops: p.hops + 1})
		ctx.BroadcastPacked(kindClaim, p.buf[:])
	}
}

// isSite reports whether the node's own claim survived.
func (p *electionProgram) isSite() bool { return p.best.ID == p.own.ID }

// runElection executes the site election phase.
func runElection(g *graph.Graph, scope int, index []float64, po phaseOpts) ([]int32, simnet.Stats, error) {
	programs := make([]simnet.Program, g.N())
	nodes := make([]*electionProgram, g.N())
	for v := range programs {
		nodes[v] = &electionProgram{
			scope: int32(scope),
			own:   claim{ID: int32(v), Index: index[v]},
		}
		programs[v] = nodes[v]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		return nil, simnet.Stats{}, err
	}
	po.configure(sim)
	stats, err := sim.Run()
	if err != nil {
		return nil, stats, err
	}
	var sites []int32
	for v, p := range nodes {
		if p.isSite() {
			sites = append(sites, int32(v))
		}
	}
	return sites, stats, nil
}
