package protocol

import (
	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// sizeEntry carries one node's K-hop neighborhood size with the hop counter
// it has traveled.
type sizeEntry struct {
	ID   int32
	Size int32
	Hops int32
}

// sizeBatch is one transmission's set of newly learned sizes.
type sizeBatch struct {
	Entries []sizeEntry
}

// centralityProgram is the second round of controlled flooding (paper
// Sec. III-A): each node broadcasts its K-hop neighborhood size within its
// L-hop neighbors, then computes its L-centrality and index. Hop counters
// travel in the payload with minimum-hop re-forwarding, so the phase is
// exact under message jitter.
type centralityProgram struct {
	l     int32
	own   sizeEntry
	sizes map[int32]int32 // ID -> K-hop size
	hops  map[int32]int32 // ID -> smallest hop counter heard
	fresh []sizeEntry
}

var _ simnet.Program = (*centralityProgram)(nil)

func (p *centralityProgram) Init(ctx *simnet.Context) {
	p.sizes = map[int32]int32{p.own.ID: p.own.Size}
	p.hops = map[int32]int32{p.own.ID: 0}
	ctx.Broadcast(sizeBatch{Entries: []sizeEntry{{ID: p.own.ID, Size: p.own.Size, Hops: 1}}})
}

func (p *centralityProgram) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	p.fresh = p.fresh[:0]
	for _, env := range inbox {
		batch, ok := env.Payload.(sizeBatch)
		if !ok {
			continue
		}
		for _, e := range batch.Entries {
			if prev, seen := p.hops[e.ID]; seen && prev <= e.Hops {
				continue
			}
			p.hops[e.ID] = e.Hops
			p.sizes[e.ID] = e.Size
			if e.Hops < p.l {
				p.fresh = append(p.fresh, sizeEntry{ID: e.ID, Size: e.Size, Hops: e.Hops + 1})
			}
		}
	}
	if len(p.fresh) > 0 {
		entries := make([]sizeEntry, len(p.fresh))
		copy(entries, p.fresh)
		ctx.Broadcast(sizeBatch{Entries: entries})
	}
}

// centrality returns c_L(p): the average K-hop size over the learned L-hop
// neighborhood including the node itself (matching core.indexField).
func (p *centralityProgram) centrality() float64 {
	var sum int64
	for _, s := range p.sizes {
		sum += int64(s)
	}
	return float64(sum) / float64(len(p.sizes))
}

// runCentrality executes the centrality phase and derives the index.
func runCentrality(g *graph.Graph, l int, khop []int, po phaseOpts) (cent, index []float64, stats simnet.Stats, err error) {
	programs := make([]simnet.Program, g.N())
	nodes := make([]*centralityProgram, g.N())
	for v := range programs {
		nodes[v] = &centralityProgram{
			l:   int32(l),
			own: sizeEntry{ID: int32(v), Size: int32(khop[v])},
		}
		programs[v] = nodes[v]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		return nil, nil, simnet.Stats{}, err
	}
	po.configure(sim)
	stats, err = sim.Run()
	if err != nil {
		return nil, nil, stats, err
	}
	cent = make([]float64, g.N())
	index = make([]float64, g.N())
	for v, p := range nodes {
		cent[v] = p.centrality()
		index[v] = (float64(khop[v]) + cent[v]) / 2
	}
	return cent, index, stats, nil
}
