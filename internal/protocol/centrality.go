package protocol

import (
	"bfskel/internal/graph"
	"bfskel/internal/simnet"
)

// sizeEntry carries one node's K-hop neighborhood size with the hop counter
// it has traveled.
type sizeEntry struct {
	ID   int32
	Size int32
	Hops int32
}

// sizeBatch is one transmission's set of newly learned sizes (the
// generic-payload form; the program transmits kindSizeBatch packed words
// but still accepts this shape on receive).
type sizeBatch struct {
	Entries []sizeEntry
}

// sizeHop is the flatmap record of one learned neighbor: its K-hop size and
// the smallest hop counter it arrived with.
type sizeHop struct {
	size int32
	hops int32
}

// centralityProgram is the second round of controlled flooding (paper
// Sec. III-A): each node broadcasts its K-hop neighborhood size within its
// L-hop neighbors, then computes its L-centrality and index. Hop counters
// travel in the payload with minimum-hop re-forwarding, so the phase is
// exact under message jitter. Batches travel as kindSizeBatch packed words
// — two words per (ID, size, hops) entry — over a single flatmap table.
type centralityProgram struct {
	l     int32
	own   sizeEntry
	tab   flatmap[sizeHop] // ID -> (K-hop size, smallest hop counter heard)
	words []uint64         // scratch: this step's re-forward batch
}

var _ simnet.Program = (*centralityProgram)(nil)

func (p *centralityProgram) Init(ctx *simnet.Context) {
	// Geometric estimate of |N_l|, as in neighborhoodProgram.Init.
	p.tab.reserve(ctx.Degree() * int(p.l) * int(p.l))
	p.tab.put(p.own.ID, sizeHop{size: p.own.Size, hops: 0})
	p.words = make([]uint64, 0, 128) // one alloc up front beats append growth
	p.words = append(p.words, packPair(p.own.ID, p.own.Size), 1)
	ctx.BroadcastPacked(kindSizeBatch, p.words)
}

func (p *centralityProgram) Step(ctx *simnet.Context, inbox []simnet.Envelope) {
	p.words = p.words[:0]
	for _, env := range inbox {
		if kind, ws, ok := env.Packed(); ok {
			if kind != kindSizeBatch {
				continue
			}
			for i := 0; i+1 < len(ws); i += 2 {
				id, size := unpackPair(ws[i])
				p.learn(id, size, int32(ws[i+1]))
			}
			continue
		}
		batch, ok := env.Payload.(sizeBatch)
		if !ok {
			continue
		}
		for _, e := range batch.Entries {
			p.learn(e.ID, e.Size, e.Hops)
		}
	}
	if len(p.words) > 0 {
		ctx.BroadcastPacked(kindSizeBatch, p.words)
	}
}

// learn applies minimum-hop dedup and queues in-horizon entries for
// re-forwarding, exactly as neighborhoodProgram.learn.
func (p *centralityProgram) learn(id, size, hops int32) {
	if prev, seen := p.tab.get(id); seen && prev.hops <= hops {
		return
	}
	p.tab.put(id, sizeHop{size: size, hops: hops})
	if hops < p.l {
		p.words = append(p.words, packPair(id, size), uint64(hops+1))
	}
}

// centrality returns c_L(p): the average K-hop size over the learned L-hop
// neighborhood including the node itself (matching core.indexField). The
// sum is integer, so the result is independent of table iteration order.
func (p *centralityProgram) centrality() float64 {
	var sum int64
	for _, s := range p.tab.slots {
		if s.key != -1 {
			sum += int64(s.val.size)
		}
	}
	return float64(sum) / float64(p.tab.len())
}

// runCentrality executes the centrality phase and derives the index.
func runCentrality(g *graph.Graph, l int, khop []int, po phaseOpts) (cent, index []float64, stats simnet.Stats, err error) {
	programs := make([]simnet.Program, g.N())
	nodes := make([]*centralityProgram, g.N())
	for v := range programs {
		nodes[v] = &centralityProgram{
			l:   int32(l),
			own: sizeEntry{ID: int32(v), Size: int32(khop[v])},
		}
		programs[v] = nodes[v]
	}
	sim, err := simnet.New(g, programs)
	if err != nil {
		return nil, nil, simnet.Stats{}, err
	}
	po.configure(sim)
	stats, err = sim.Run()
	if err != nil {
		return nil, nil, stats, err
	}
	cent = make([]float64, g.N())
	index = make([]float64, g.N())
	for v, p := range nodes {
		cent[v] = p.centrality()
		index[v] = (float64(khop[v]) + cent[v]) / 2
	}
	return cent, index, stats, nil
}
